// Bit-identity of the parallel aggregator: analyze(trace, threads=N)
// must produce exactly the same AnalysisResult — every double compared
// by its bit pattern, not by tolerance — as the serial path, for every
// bundled application model. The per-call-stack key sharding keeps each
// floating-point fold in serial stream order (docs/threading.md), so any
// divergence here is a determinism bug, not rounding.
//
// These tests also double as the TSan target for the aggregator's worker
// fan-out (ci.sh runs the 'ParallelAggregation' filter under the tsan
// preset).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/memsim/tier.hpp"
#include "ecohmem/profiler/profiler.hpp"
#include "ecohmem/runtime/engine.hpp"

namespace ecohmem::analyzer {
namespace {

/// Bitwise double equality: NaNs of the same pattern compare equal,
/// -0.0 != +0.0. Exactly the "bit-identical" contract.
void expect_bits(double a, double b, const char* what) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, 8);
  std::memcpy(&ub, &b, 8);
  EXPECT_EQ(ua, ub) << what << ": " << a << " vs " << b;
}

void expect_identical(const AnalysisResult& serial, const AnalysisResult& parallel) {
  ASSERT_EQ(serial.sites.size(), parallel.sites.size());
  for (std::size_t i = 0; i < serial.sites.size(); ++i) {
    const SiteRecord& a = serial.sites[i];
    const SiteRecord& b = parallel.sites[i];
    EXPECT_EQ(a.stack, b.stack) << "site " << i;
    EXPECT_EQ(a.callstack, b.callstack) << "site " << i;
    EXPECT_EQ(a.max_size, b.max_size) << "site " << i;
    EXPECT_EQ(a.peak_live_bytes, b.peak_live_bytes) << "site " << i;
    EXPECT_EQ(a.alloc_count, b.alloc_count) << "site " << i;
    expect_bits(a.load_misses, b.load_misses, "load_misses");
    expect_bits(a.store_misses, b.store_misses, "store_misses");
    expect_bits(a.avg_load_latency_ns, b.avg_load_latency_ns, "avg_load_latency_ns");
    EXPECT_EQ(a.first_alloc, b.first_alloc) << "site " << i;
    EXPECT_EQ(a.last_free, b.last_free) << "site " << i;
    expect_bits(a.total_lifetime_ns, b.total_lifetime_ns, "total_lifetime_ns");
    expect_bits(a.mean_lifetime_ns, b.mean_lifetime_ns, "mean_lifetime_ns");
    expect_bits(a.exec_bw_gbs, b.exec_bw_gbs, "exec_bw_gbs");
    expect_bits(a.alloc_time_system_bw_gbs, b.alloc_time_system_bw_gbs,
                "alloc_time_system_bw_gbs");
    expect_bits(a.exec_time_system_bw_gbs, b.exec_time_system_bw_gbs,
                "exec_time_system_bw_gbs");
    EXPECT_EQ(a.has_writes, b.has_writes) << "site " << i;
    ASSERT_EQ(a.windows.size(), b.windows.size()) << "site " << i;
    for (std::size_t w = 0; w < a.windows.size(); ++w) {
      EXPECT_EQ(a.windows[w].start, b.windows[w].start) << "site " << i << " window " << w;
      EXPECT_EQ(a.windows[w].end, b.windows[w].end) << "site " << i << " window " << w;
    }
  }

  ASSERT_EQ(serial.system_bw.size(), parallel.system_bw.size());
  for (std::size_t i = 0; i < serial.system_bw.size(); ++i) {
    EXPECT_EQ(serial.system_bw[i].time, parallel.system_bw[i].time) << "bw point " << i;
    expect_bits(serial.system_bw[i].gbs, parallel.system_bw[i].gbs, "system_bw");
  }
  expect_bits(serial.observed_peak_bw_gbs, parallel.observed_peak_bw_gbs, "observed_peak");

  ASSERT_EQ(serial.functions.size(), parallel.functions.size());
  for (std::size_t i = 0; i < serial.functions.size(); ++i) {
    EXPECT_EQ(serial.functions[i].name, parallel.functions[i].name) << "function " << i;
    expect_bits(serial.functions[i].load_samples, parallel.functions[i].load_samples,
                "load_samples");
    expect_bits(serial.functions[i].avg_load_latency_ns,
                parallel.functions[i].avg_load_latency_ns, "function latency");
  }

  EXPECT_EQ(serial.trace_end, parallel.trace_end);
  expect_bits(serial.unattributed_samples, parallel.unattributed_samples, "unattributed");
}

/// Profiles `app` through the execution engine (the ecohmem-profile path)
/// and checks serial vs parallel analysis for several worker counts.
void check_app(const std::string& app) {
  apps::AppOptions opt;
  opt.iterations = 2;
  const runtime::Workload workload = apps::make_app(app, opt);
  const auto sys = memsim::paper_system(6);
  ASSERT_TRUE(sys.has_value()) << sys.error();

  profiler::Profiler prof;
  runtime::EngineOptions eopt;
  eopt.observer = &prof;
  runtime::ExecutionEngine engine(&*sys, eopt);
  runtime::FixedTierMode mode(&*sys, 1);
  const auto metrics = engine.run(workload, mode);
  ASSERT_TRUE(metrics.has_value()) << metrics.error();
  const trace::Trace t = prof.take_trace();
  ASSERT_FALSE(t.events.empty());

  AnalyzerOptions serial_opt;
  const auto serial = analyze(t, serial_opt);
  ASSERT_TRUE(serial.has_value()) << serial.error();

  for (const int threads : {1, 2, 3, 4, 8}) {
    AnalyzerOptions parallel_opt;
    parallel_opt.threads = threads;
    // Disable the hardware-concurrency clamp so every worker count runs
    // the real shard/merge path even on a 1-core CI host — the clamp
    // only sheds oversubscription, so being bit-identical with it off
    // proves it is bit-identical with it on.
    parallel_opt.clamp_threads = false;
    const auto parallel = analyze(t, parallel_opt);
    ASSERT_TRUE(parallel.has_value()) << "threads=" << threads << ": " << parallel.error();
    SCOPED_TRACE(app + " threads=" + std::to_string(threads));
    expect_identical(*serial, *parallel);
  }
}

TEST(ParallelAggregation, MiniFe) { check_app("minife"); }
TEST(ParallelAggregation, MiniMd) { check_app("minimd"); }
TEST(ParallelAggregation, Lulesh) { check_app("lulesh"); }
TEST(ParallelAggregation, Hpcg) { check_app("hpcg"); }
TEST(ParallelAggregation, CloverLeaf3d) { check_app("cloverleaf3d"); }
TEST(ParallelAggregation, PhaseShift) { check_app("phase-shift"); }

TEST(ParallelAggregation, MalformedTraceFailsIdenticallyInParallel) {
  // A double free must produce the same error string for every thread
  // count (the replay that detects it is serial by design).
  trace::Trace t;
  const trace::StackId s = t.stacks.intern(bom::CallStack{{{0, 0x10}}});
  t.events.emplace_back(trace::AllocEvent{1, 7, 0x1000, 64, s, trace::AllocKind::kMalloc});
  t.events.emplace_back(trace::FreeEvent{2, 7});
  t.events.emplace_back(trace::FreeEvent{3, 7});

  AnalyzerOptions serial_opt;
  const auto serial = analyze(t, serial_opt);
  ASSERT_FALSE(serial.has_value());
  AnalyzerOptions parallel_opt;
  parallel_opt.threads = 4;
  parallel_opt.clamp_threads = false;
  const auto parallel = analyze(t, parallel_opt);
  ASSERT_FALSE(parallel.has_value());
  EXPECT_EQ(serial.error(), parallel.error());
}

TEST(ParallelAggregation, OutOfTableFunctionIdsSurviveTheArenaMerge) {
  // Samples naming function ids past the function table land in the
  // per-shard overflow map; the merged result must match the serial path
  // bit for bit, including the historical rule that a store-only sample
  // still materializes its function's entry with zero load samples.
  trace::Trace t;
  const trace::StackId s = t.stacks.intern(bom::CallStack{{{0, 0x10}}});
  const std::uint32_t fn = t.functions.intern("known");
  t.events.emplace_back(trace::AllocEvent{1, 1, 0x1000, 4096, s, trace::AllocKind::kMalloc});
  t.events.emplace_back(trace::SampleEvent{2, 0x1004, 2.0, 120.0, false, fn});
  t.events.emplace_back(trace::SampleEvent{3, 0x1008, 1.5, 90.0, false, /*fn=*/7777});
  t.events.emplace_back(trace::SampleEvent{4, 0x100c, 1.0, 0.0, true, /*fn=*/8888});
  t.events.emplace_back(trace::FreeEvent{5, 1});

  AnalyzerOptions serial_opt;
  const auto serial = analyze(t, serial_opt);
  ASSERT_TRUE(serial.has_value()) << serial.error();
  for (const int threads : {2, 8}) {
    AnalyzerOptions parallel_opt;
    parallel_opt.threads = threads;
    parallel_opt.clamp_threads = false;
    const auto parallel = analyze(t, parallel_opt);
    ASSERT_TRUE(parallel.has_value()) << parallel.error();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(*serial, *parallel);
  }
}

}  // namespace
}  // namespace ecohmem::analyzer
