#include "ecohmem/analyzer/aggregator.hpp"

#include <gtest/gtest.h>

namespace ecohmem::analyzer {
namespace {

using trace::AllocEvent;
using trace::AllocKind;
using trace::FreeEvent;
using trace::SampleEvent;
using trace::StackId;
using trace::Trace;
using trace::UncoreBwEvent;

Trace simple_trace() {
  Trace t;
  t.sample_rate_hz = 100.0;
  const StackId site_a = t.stacks.intern(bom::CallStack{{{0, 0x10}}});
  const StackId site_b = t.stacks.intern(bom::CallStack{{{0, 0x20}}});
  const std::uint32_t fn = t.functions.intern("kernel");

  // Object 1 at site A: [100ns, 1s), 4 KiB at 0x1000.
  t.events.emplace_back(AllocEvent{100, 1, 0x1000, 4096, site_a, AllocKind::kMalloc});
  // Object 2 at site B: [200ns, end), 64 KiB at 0x10000.
  t.events.emplace_back(AllocEvent{200, 2, 0x10000, 65536, site_b, AllocKind::kMalloc});

  // Samples: loads on object 1 (weight 10 each), store on object 2.
  t.events.emplace_back(SampleEvent{500, 0x1000 + 64, 10.0, 200.0, false, fn});
  t.events.emplace_back(SampleEvent{600, 0x1000 + 128, 10.0, 100.0, false, fn});
  t.events.emplace_back(SampleEvent{700, 0x10000 + 64, 5.0, 0.0, true, fn});
  // Unattributed sample (no live object there).
  t.events.emplace_back(SampleEvent{800, 0xdead0000, 2.0, 0.0, false, fn});

  t.events.emplace_back(FreeEvent{1'000'000'000, 1});
  return t;
}

TEST(Analyzer, AggregatesPerSite) {
  const auto result = analyze(simple_trace());
  ASSERT_TRUE(result.has_value()) << result.error();
  ASSERT_EQ(result->sites.size(), 2u);

  const SiteRecord& a = result->sites[0];
  EXPECT_EQ(a.alloc_count, 1u);
  EXPECT_EQ(a.max_size, 4096u);
  EXPECT_DOUBLE_EQ(a.load_misses, 20.0);
  EXPECT_DOUBLE_EQ(a.store_misses, 0.0);
  EXPECT_FALSE(a.has_writes);
  // Weighted latency: (10*200 + 10*100) / 20 = 150.
  EXPECT_DOUBLE_EQ(a.avg_load_latency_ns, 150.0);

  const SiteRecord& b = result->sites[1];
  EXPECT_DOUBLE_EQ(b.store_misses, 5.0);
  EXPECT_TRUE(b.has_writes);
}

TEST(Analyzer, LifetimeWindows) {
  const auto result = analyze(simple_trace());
  ASSERT_TRUE(result.has_value());
  const SiteRecord& a = result->sites[0];
  ASSERT_EQ(a.windows.size(), 1u);
  EXPECT_EQ(a.windows[0].start, 100u);
  EXPECT_EQ(a.windows[0].end, 1'000'000'000u);
  // Object 2 never freed: window closed at trace end.
  const SiteRecord& b = result->sites[1];
  ASSERT_EQ(b.windows.size(), 1u);
  EXPECT_EQ(b.windows[0].end, result->trace_end);
}

TEST(Analyzer, UnattributedSamplesCounted) {
  const auto result = analyze(simple_trace());
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->unattributed_samples, 2.0);
}

TEST(Analyzer, PeakLiveBytesTracksOverlap) {
  Trace t;
  const StackId site = t.stacks.intern(bom::CallStack{{{0, 0x10}}});
  t.events.emplace_back(AllocEvent{10, 1, 0x1000, 100, site, AllocKind::kMalloc});
  t.events.emplace_back(AllocEvent{20, 2, 0x2000, 100, site, AllocKind::kMalloc});
  t.events.emplace_back(FreeEvent{30, 1});
  t.events.emplace_back(AllocEvent{40, 3, 0x3000, 100, site, AllocKind::kMalloc});
  t.events.emplace_back(FreeEvent{50, 2});
  t.events.emplace_back(FreeEvent{60, 3});
  const auto result = analyze(t);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->sites[0].alloc_count, 3u);
  EXPECT_EQ(result->sites[0].peak_live_bytes, 200u);
  EXPECT_EQ(result->sites[0].max_size, 100u);
}

TEST(Analyzer, RejectsUnknownFree) {
  Trace t;
  t.events.emplace_back(FreeEvent{10, 99});
  EXPECT_FALSE(analyze(t).has_value());
}

TEST(Analyzer, RejectsInvalidStackId) {
  Trace t;
  t.events.emplace_back(AllocEvent{10, 1, 0x1000, 64, 42, AllocKind::kMalloc});
  EXPECT_FALSE(analyze(t).has_value());
}

TEST(Analyzer, UncoreEventsDriveBandwidthTimeline) {
  Trace t;
  const StackId site = t.stacks.intern(bom::CallStack{{{0, 0x10}}});
  AnalyzerOptions opt;
  opt.bw_bin_ns = 1000;
  opt.alloc_window_ns = 1000;

  // High-bandwidth plateau before the allocation at t=10000.
  for (Ns time = 1000; time <= 10'000; time += 1000) {
    t.events.emplace_back(UncoreBwEvent{time, 1000, 20.0, 5.0});
  }
  t.events.emplace_back(AllocEvent{10'000, 1, 0x1000, 64, site, AllocKind::kMalloc});
  t.events.emplace_back(FreeEvent{20'000, 1});

  const auto result = analyze(t, opt);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->observed_peak_bw_gbs, 25.0, 1.0);
  EXPECT_GT(result->sites[0].alloc_time_system_bw_gbs, 10.0);
}

TEST(Analyzer, ExecBwDerivedFromCountersOverLifetime) {
  Trace t;
  const StackId site = t.stacks.intern(bom::CallStack{{{0, 0x10}}});
  const std::uint32_t fn = t.functions.intern("k");
  t.events.emplace_back(AllocEvent{0, 1, 0x1000, 1 << 20, site, AllocKind::kMalloc});
  // 1000 weighted misses over a 64000 ns lifetime = 1000*64B/64000ns = 1 GB/s.
  t.events.emplace_back(SampleEvent{100, 0x1000, 1000.0, 150.0, false, fn});
  t.events.emplace_back(FreeEvent{64'000, 1});
  const auto result = analyze(t);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->sites[0].exec_bw_gbs, 1.0, 0.01);
}

TEST(Analyzer, FunctionProfilesAggregateLoadSamples) {
  const auto result = analyze(simple_trace());
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->functions.size(), 1u);
  EXPECT_EQ(result->functions[0].name, "kernel");
  EXPECT_DOUBLE_EQ(result->functions[0].load_samples, 22.0);  // includes unattributed
}

TEST(ClassifyRegion, PaperThresholds) {
  // B_low < 20%, B_mid 20-40%, B_high > 40% of peak.
  EXPECT_EQ(classify_region(1.0, 10.0), BandwidthRegion::kLow);
  EXPECT_EQ(classify_region(3.0, 10.0), BandwidthRegion::kMid);
  EXPECT_EQ(classify_region(4.0, 10.0), BandwidthRegion::kMid);
  EXPECT_EQ(classify_region(5.0, 10.0), BandwidthRegion::kHigh);
  EXPECT_EQ(to_string(BandwidthRegion::kLow), "B_low");
  EXPECT_EQ(to_string(BandwidthRegion::kMid), "B_mid");
  EXPECT_EQ(to_string(BandwidthRegion::kHigh), "B_high");
}

TEST(LiveWindow, Containment) {
  const LiveWindow outer{10, 100};
  const LiveWindow inner{20, 90};
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_EQ(outer.duration(), 90u);
}

}  // namespace
}  // namespace ecohmem::analyzer
