#include <gtest/gtest.h>

#include "ecohmem/baselines/kernel_tiering.hpp"
#include "ecohmem/baselines/profdp.hpp"
#include "ecohmem/core/ecohmem.hpp"
#include "ecohmem/runtime/engine.hpp"

namespace ecohmem::baselines {
namespace {

memsim::MemorySystem paper() { return *memsim::paper_system(6); }

/// Hot small object + cold big object; DRAM can hold only the hot one.
runtime::Workload skewed_workload(int iters) {
  runtime::WorkloadBuilder b("skewed");
  const auto mod = b.add_module("s.x", 1 << 20, 0);
  const auto hot_site = b.add_site(mod, "hot", "s.cc", 1);
  const auto cold_site = b.add_site(mod, "cold", "s.cc", 2);
  const auto hot =
      b.add_object(hot_site, 1ull << 30, runtime::AccessPattern::kRandom, 0.2, 0.5, 0.0);
  const auto cold =
      b.add_object(cold_site, 60ull << 30, runtime::AccessPattern::kSequential, 0.0, 0.5, 0.8);
  const auto k = b.add_kernel("k", 1e9, 1e8,
                              {runtime::KernelAccess{hot, 2e7, 1e6, 1ull << 30},
                               runtime::KernelAccess{cold, 1e8, 1e7, 8.0 * (1ull << 30)}});
  b.alloc(hot).alloc(cold);
  for (int i = 0; i < iters; ++i) b.run_kernel(k);
  b.free(hot).free(cold);
  return b.build();
}

TEST(KernelTiering, MetadataTaxShrinksUsableDram) {
  const auto sys = paper();
  KernelTieringMode mode(&sys, 0, 1);
  // 0.5% of 3 TB PMem ~ 15 GB; of the 16 GB DRAM, ~1 GB remains.
  EXPECT_LT(mode.usable_dram(), 2ull << 30);
  EXPECT_GT(mode.usable_dram(), 0u);
}

TEST(KernelTiering, TaxConfigurable) {
  const auto sys = paper();
  TieringOptions opt;
  opt.metadata_fraction = 0.0;
  KernelTieringMode mode(&sys, 0, 1, opt);
  EXPECT_EQ(mode.usable_dram(), sys.tier(0).capacity());
}

TEST(KernelTiering, PromotesHotObjectOverTime) {
  // Allocate the cold object first so first-touch leaves the hot one in
  // PMem; reactive migration must then promote the hot object's pages.
  runtime::WorkloadBuilder b("reactive");
  const auto mod = b.add_module("r.x", 1 << 20, 0);
  const auto cold_site = b.add_site(mod, "cold", "r.cc", 1);
  const auto hot_site = b.add_site(mod, "hot", "r.cc", 2);
  const auto cold =
      b.add_object(cold_site, 60ull << 30, runtime::AccessPattern::kSequential, 0.0, 0.5, 0.8);
  const auto hot =
      b.add_object(hot_site, 1ull << 30, runtime::AccessPattern::kRandom, 0.2, 0.5, 0.0);
  const auto k = b.add_kernel("k", 1e9, 1e8,
                              {runtime::KernelAccess{hot, 2e7, 1e6, 1ull << 30},
                               runtime::KernelAccess{cold, 1e7, 1e6, 8.0 * (1ull << 30)}});
  b.alloc(cold).alloc(hot);
  for (int i = 0; i < 10; ++i) b.run_kernel(k);
  b.free(cold).free(hot);
  const runtime::Workload w = b.build();

  const auto sys = paper();
  KernelTieringMode mode(&sys, 0, 1);
  runtime::ExecutionEngine engine(&sys, {});
  const auto metrics = engine.run(w, mode);
  ASSERT_TRUE(metrics.has_value()) << metrics.error();
  EXPECT_GT(mode.migrated_bytes(), 0.0);
  // Steady state: some traffic lands on DRAM.
  EXPECT_GT(metrics->tier_traffic[0].read_bytes, 0.0);
}

TEST(KernelTiering, BetweenPmemOnlyAndProactivePlacement) {
  const auto sys = paper();
  const runtime::Workload w = skewed_workload(10);
  runtime::ExecutionEngine engine(&sys, {});

  runtime::FixedTierMode all_pmem(&sys, 1);
  const auto pmem_run = engine.run(w, all_pmem);
  KernelTieringMode tiering(&sys, 0, 1);
  const auto tier_run = engine.run(w, tiering);
  ASSERT_TRUE(pmem_run && tier_run);
  // Reactive migration must beat everything-in-PMem on this workload.
  EXPECT_LT(tier_run->total_ns, pmem_run->total_ns);
}

TEST(KernelTiering, FreeReleasesDram) {
  const auto sys = paper();
  TieringOptions opt;
  opt.metadata_fraction = 0.0;
  KernelTieringMode mode(&sys, 0, 1, opt);
  const runtime::ObjectSpec spec;
  const runtime::SiteSpec site;
  const auto addr = mode.on_alloc(0, spec, site, 4ull << 30);
  ASSERT_TRUE(addr.has_value());
  ASSERT_TRUE(mode.on_free(0, *addr).ok());
  // All DRAM free again: a full-size allocation fits entirely.
  const auto addr2 = mode.on_alloc(1, spec, site, sys.tier(0).capacity());
  ASSERT_TRUE(addr2.has_value());
}

TEST(KernelTiering, RejectsUnknownFree) {
  const auto sys = paper();
  KernelTieringMode mode(&sys, 0, 1);
  EXPECT_FALSE(mode.on_free(7, 0x1234).ok());
}

// ------------------------------------------------------------- ProfDP

TEST(ProfDP, ProducesFourVariants) {
  const auto sys = paper();
  const runtime::Workload w = skewed_workload(5);
  ProfDPOptions opt;
  opt.dram_limit = 12ull << 30;
  const auto variants = profdp_placements(w, sys, {}, opt);
  ASSERT_TRUE(variants.has_value()) << variants.error();
  ASSERT_EQ(variants->size(), 4u);
  EXPECT_EQ((*variants)[0].name, "latency-sum");
  EXPECT_EQ((*variants)[3].name, "bandwidth-avg");
}

TEST(ProfDP, LatencyRankingPutsHotObjectInDram) {
  const auto sys = paper();
  const runtime::Workload w = skewed_workload(5);
  ProfDPOptions opt;
  opt.dram_limit = 12ull << 30;
  const auto variants = profdp_placements(w, sys, {}, opt);
  ASSERT_TRUE(variants.has_value());
  // The 1 GiB random-access object is the clear latency-sensitivity
  // winner and fits the budget; the 60 GiB stream does not.
  for (const auto& v : *variants) {
    Bytes dram_bytes = 0;
    for (const auto& d : v.placement.decisions) {
      if (d.tier == "dram") dram_bytes += d.footprint;
    }
    EXPECT_LE(dram_bytes, opt.dram_limit) << v.name;
  }
  const auto& lat_sum = (*variants)[0];
  bool hot_in_dram = false;
  for (const auto& d : lat_sum.placement.decisions) {
    if (d.footprint <= (2ull << 30) && d.tier == "dram") hot_in_dram = true;
  }
  EXPECT_TRUE(hot_in_dram);
}

TEST(ProfDP, PlacementsExecutableViaFlexMalloc) {
  const auto sys = paper();
  const runtime::Workload w = skewed_workload(5);
  ProfDPOptions opt;
  opt.dram_limit = 12ull << 30;
  const auto variants = profdp_placements(w, sys, {}, opt);
  ASSERT_TRUE(variants.has_value());
  const auto baseline = core::run_memory_mode(w, sys);
  ASSERT_TRUE(baseline.has_value());
  for (const auto& v : *variants) {
    const auto run = core::run_with_placement(w, sys, v.placement, opt.dram_limit);
    ASSERT_TRUE(run.has_value()) << v.name << ": " << run.error();
    EXPECT_GT(run->total_ns, 0u);
  }
}

TEST(ProfDP, RequiresTwoTierSystem) {
  auto spec = memsim::ddr4_dram_spec();
  spec.is_fallback = true;
  const auto single = memsim::MemorySystem::create({spec});
  ASSERT_TRUE(single.has_value());
  const runtime::Workload w = skewed_workload(2);
  EXPECT_FALSE(profdp_placements(w, *single, {}, {}).has_value());
}

}  // namespace
}  // namespace ecohmem::baselines
