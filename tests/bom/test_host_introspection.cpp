#include "ecohmem/bom/host_introspection.hpp"

#include <gtest/gtest.h>

namespace ecohmem::bom {
namespace {

constexpr const char* kMapsSample =
    "00400000-00452000 r-xp 00000000 08:02 173521 /usr/bin/dbus-daemon\n"
    "00651000-00652000 r--p 00051000 08:02 173521 /usr/bin/dbus-daemon\n"
    "7f3c00000000-7f3c00021000 rw-p 00000000 00:00 0\n"
    "7f3c04000000-7f3c041c0000 r-xp 00000000 08:02 13 /usr/lib/libc-2.31.so\n"
    "7f3c041c0000-7f3c041c2000 r-xp 001c0000 08:02 13 /usr/lib/libc-2.31.so\n"
    "7fff0a000000-7fff0a021000 r-xp 00000000 00:00 0 [vdso]\n";

TEST(HostMaps, ParsesExecutableFileMappings) {
  const auto table = modules_from_maps_text(kMapsSample);
  ASSERT_TRUE(table.has_value()) << table.error();
  EXPECT_EQ(table->size(), 2u);  // dbus-daemon + libc; rw/anon/[vdso] skipped
  EXPECT_TRUE(table->find("dbus-daemon").has_value());
  EXPECT_TRUE(table->find("libc-2.31.so").has_value());
}

TEST(HostMaps, MergesSplitTextSegments) {
  const auto table = modules_from_maps_text(kMapsSample);
  ASSERT_TRUE(table.has_value());
  const auto libc = table->find("libc-2.31.so");
  ASSERT_TRUE(libc.has_value());
  const auto& m = table->module(*libc);
  EXPECT_EQ(m.base, 0x7f3c04000000u);
  EXPECT_EQ(m.text_size, 0x1c2000u);  // both executable segments covered
}

TEST(HostMaps, ResolveRealAddressRange) {
  const auto table = modules_from_maps_text(kMapsSample);
  ASSERT_TRUE(table.has_value());
  const auto frame = table->resolve(0x00400000u + 0x1234);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(table->module(frame->module).name, "dbus-daemon");
  EXPECT_EQ(frame->offset, 0x1234u);
  EXPECT_FALSE(table->resolve(0x7fff0a000010u).has_value());  // vdso skipped
}

TEST(HostMaps, RejectsEmptyAndGarbage) {
  EXPECT_FALSE(modules_from_maps_text("").has_value());
  EXPECT_FALSE(modules_from_maps_text("not a maps file\n").has_value());
}

TEST(HostMaps, SelfDiscoverySeesThisBinary) {
  const auto table = modules_from_self();
  ASSERT_TRUE(table.has_value()) << table.error();
  EXPECT_GT(table->size(), 0u);
  // An address inside this test's own code must resolve to some module.
  const auto self_addr =
      reinterpret_cast<std::uint64_t>(&modules_from_self);
  EXPECT_TRUE(table->resolve(self_addr).has_value());
}

// Separate noinline call paths give distinct, repeatable stacks. The
// volatile markers defeat identical-code-folding, which would otherwise
// merge the two functions (and their stacks).
volatile int g_path_a_marker = 1;
volatile int g_path_b_marker = 2;

[[gnu::noinline]] CallStack capture_via_path_a(const ModuleTable& table) {
  g_path_a_marker = g_path_a_marker + 1;
  return capture_callstack(table, /*skip=*/0);
}
[[gnu::noinline]] CallStack capture_via_path_b(const ModuleTable& table) {
  g_path_b_marker = g_path_b_marker + 2;
  return capture_callstack(table, /*skip=*/0);
}

TEST(HostCapture, CapturesNonEmptyResolvableStack) {
  const auto table = modules_from_self();
  ASSERT_TRUE(table.has_value());
  const CallStack stack = capture_via_path_a(*table);
  ASSERT_FALSE(stack.empty());
  for (const auto& f : stack.frames) {
    EXPECT_LT(f.module, table->size());
    EXPECT_LT(f.offset, table->module(f.module).text_size);
  }
}

TEST(HostCapture, DifferentCallPathsGiveDifferentStacks) {
  const auto table = modules_from_self();
  ASSERT_TRUE(table.has_value());
  const CallStack a = capture_via_path_a(*table);
  const CallStack b = capture_via_path_b(*table);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  // Sanitizer interceptors add their own frames to ::backtrace, shifting
  // the skip window: the innermost resolved frame can be capture_callstack
  // itself for both paths. The stacks still differ at the caller frame.
  EXPECT_NE(a.frames, b.frames);
#else
  EXPECT_NE(a.frames.front(), b.frames.front());  // innermost frame differs
#endif
}

TEST(HostCapture, SameCallSiteIsStable) {
  const auto table = modules_from_self();
  ASSERT_TRUE(table.has_value());
  CallStackHash hash;
  // Capture twice from the *same* source location (a loop body): the
  // full stacks, including the caller frame, must be identical.
  std::size_t hashes[2] = {0, 1};
  for (int i = 0; i < 2; ++i) hashes[i] = hash(capture_via_path_a(*table));
  EXPECT_EQ(hashes[0], hashes[1]);
}

TEST(HostCapture, DepthLimitRespected) {
  const auto table = modules_from_self();
  ASSERT_TRUE(table.has_value());
  const CallStack stack = capture_callstack(*table, 0, 2);
  EXPECT_LE(stack.depth(), 2u);
}

}  // namespace
}  // namespace ecohmem::bom
