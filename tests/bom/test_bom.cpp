#include <gtest/gtest.h>

#include "ecohmem/bom/format.hpp"
#include "ecohmem/bom/frame.hpp"
#include "ecohmem/bom/module_table.hpp"
#include "ecohmem/bom/symbols.hpp"

namespace ecohmem::bom {
namespace {

ModuleTable two_modules() {
  ModuleTable mt;
  mt.add_module("app.x", 1 << 20, 4 << 20);
  mt.add_module("libfoo.so", 2 << 20, 8 << 20);
  return mt;
}

TEST(Frame, EqualityAndOrdering) {
  const Frame a{0, 0x10};
  const Frame b{0, 0x10};
  const Frame c{1, 0x10};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(CallStackHash, EqualStacksHashEqual) {
  const CallStack s1{{{0, 0x10}, {1, 0x20}}};
  const CallStack s2{{{0, 0x10}, {1, 0x20}}};
  const CallStack s3{{{0, 0x10}, {1, 0x21}}};
  CallStackHash h;
  EXPECT_EQ(h(s1), h(s2));
  EXPECT_NE(h(s1), h(s3));  // not guaranteed, but catastrophic if equal here
}

TEST(ModuleTable, AbsoluteAddressesFollowBases) {
  ModuleTable mt = two_modules();
  Rng rng(1);
  mt.assign_bases(false, rng);
  const Frame f{1, 0x400};
  EXPECT_EQ(mt.absolute_address(f), mt.module(1).base + 0x400);
}

TEST(ModuleTable, AslrChangesBasesButNotOffsets) {
  // The core BOM property (§VI): absolute addresses change between runs,
  // (module, offset) frames do not.
  ModuleTable run1 = two_modules();
  ModuleTable run2 = two_modules();
  Rng rng1(11);
  Rng rng2(22);
  run1.assign_bases(true, rng1);
  run2.assign_bases(true, rng2);

  const Frame f{1, 0x400};
  EXPECT_NE(run1.absolute_address(f), run2.absolute_address(f));
  // Resolving each run's absolute address recovers the same frame.
  EXPECT_EQ(run1.resolve(run1.absolute_address(f)).value(), f);
  EXPECT_EQ(run2.resolve(run2.absolute_address(f)).value(), f);
}

TEST(ModuleTable, ModulesDoNotOverlap) {
  ModuleTable mt = two_modules();
  Rng rng(3);
  mt.assign_bases(true, rng);
  const auto& a = mt.module(0);
  const auto& b = mt.module(1);
  EXPECT_TRUE(a.base + a.text_size <= b.base || b.base + b.text_size <= a.base);
}

TEST(ModuleTable, ResolveOutsideAnyModule) {
  ModuleTable mt = two_modules();
  Rng rng(5);
  mt.assign_bases(false, rng);
  EXPECT_FALSE(mt.resolve(1).has_value());
}

TEST(ModuleTable, FindByName) {
  ModuleTable mt = two_modules();
  EXPECT_EQ(mt.find("libfoo.so").value(), 1u);
  EXPECT_FALSE(mt.find("missing.so").has_value());
}

TEST(ModuleTable, DebugInfoTotals) {
  ModuleTable mt = two_modules();
  EXPECT_EQ(mt.total_debug_info(), Bytes{(4u << 20) + (8u << 20)});
}

TEST(SymbolTable, TranslatesToNearestPrecedingEntry) {
  ModuleTable mt = two_modules();
  SymbolTable st(&mt);
  st.add_entry(0, {0x100, "main.cc", 10});
  st.add_entry(0, {0x200, "main.cc", 50});
  EXPECT_EQ(st.translate(Frame{0, 0x150}).value(), (SourceLocation{"main.cc", 10}));
  EXPECT_EQ(st.translate(Frame{0, 0x200}).value(), (SourceLocation{"main.cc", 50}));
  EXPECT_EQ(st.translate(Frame{0, 0x9999}).value(), (SourceLocation{"main.cc", 50}));
}

TEST(SymbolTable, FailsBelowFirstEntryAndOnUnknownModule) {
  ModuleTable mt = two_modules();
  SymbolTable st(&mt);
  st.add_entry(0, {0x100, "main.cc", 10});
  EXPECT_FALSE(st.translate(Frame{0, 0x50}).has_value());
  EXPECT_FALSE(st.translate(Frame{1, 0x100}).has_value());  // no debug info
}

TEST(SymbolTable, CostMeterAccumulates) {
  ModuleTable mt = two_modules();
  SymbolTable st(&mt);
  st.add_entry(0, {0x100, "a_rather_long_source_file_name.cc", 10});
  ASSERT_TRUE(st.translate(Frame{0, 0x150}).has_value());
  EXPECT_EQ(st.cost().frames_translated, 1u);
  EXPECT_GT(st.cost().string_bytes_built, 0u);
  EXPECT_GT(st.cost().estimated_ns(), 0.0);
  st.reset_cost();
  EXPECT_EQ(st.cost().frames_translated, 0u);
}

TEST(Format, BomRoundTrip) {
  ModuleTable mt = two_modules();
  const CallStack cs{{{0, 0x1a2b}, {1, 0x44c8}}};
  const std::string text = format_bom(cs, mt);
  EXPECT_EQ(text, "app.x!0x1a2b > libfoo.so!0x44c8");
  EXPECT_EQ(parse_bom(text, mt).value(), cs);
}

TEST(Format, BomParseErrors) {
  ModuleTable mt = two_modules();
  EXPECT_FALSE(parse_bom("", mt).has_value());
  EXPECT_FALSE(parse_bom("app.x@0x10", mt).has_value());
  EXPECT_FALSE(parse_bom("ghost.so!0x10", mt).has_value());
  EXPECT_FALSE(parse_bom("app.x!zz", mt).has_value());
}

TEST(Format, HumanRoundTrip) {
  const HumanStack hs{{"src/Vector.hpp", 88}, {"src/driver.cpp", 120}};
  const std::string text = format_human(hs);
  EXPECT_EQ(text, "src/Vector.hpp:88 > src/driver.cpp:120");
  EXPECT_EQ(parse_human(text).value(), hs);
}

TEST(Format, HumanHandlesWindowsStylePathsWithColons) {
  // rfind(':') must pick the line separator, not a path colon.
  const auto hs = parse_human("C:/src/a.cc:12");
  ASSERT_TRUE(hs.has_value());
  EXPECT_EQ((*hs)[0].file, "C:/src/a.cc");
  EXPECT_EQ((*hs)[0].line, 12u);
}

TEST(Format, HumanParseErrors) {
  EXPECT_FALSE(parse_human("").has_value());
  EXPECT_FALSE(parse_human("no_line_number").has_value());
  EXPECT_FALSE(parse_human("file.cc:").has_value());
  EXPECT_FALSE(parse_human("file.cc:notanumber").has_value());
}

TEST(Format, DetectsBomSyntax) {
  EXPECT_TRUE(looks_like_bom("app.x!0x1a2b"));
  EXPECT_FALSE(looks_like_bom("src/file.cc:12"));
}

}  // namespace
}  // namespace ecohmem::bom
