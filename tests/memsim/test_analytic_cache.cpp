#include "ecohmem/memsim/analytic_cache.hpp"

#include <gtest/gtest.h>

namespace ecohmem::memsim {
namespace {

constexpr Bytes kLlc = 64ull * 1024 * 1024;

TEST(AnalyticCache, PureStreamMissesEverything) {
  AnalyticCacheModel model(kLlc);
  // 1 GiB stream, one load per line, no reuse, no prefetch.
  const double lines = 1024.0 * 1024 * 1024 / 64;
  const auto out = model.evaluate({{lines, 0.0, 1024.0 * 1024 * 1024, 0.0, 0.0}});
  EXPECT_NEAR(out.per_object[0].load_misses, lines, lines * 0.01);
  EXPECT_DOUBLE_EQ(out.per_object[0].prefetched_loads, 0.0);
}

TEST(AnalyticCache, PrefetchSplitsDemandFromFills) {
  AnalyticCacheModel model(kLlc);
  const double lines = 1024.0 * 1024 * 1024 / 64;
  const auto out = model.evaluate({{lines, 0.0, 1024.0 * 1024 * 1024, 0.0, 0.8}});
  const auto& m = out.per_object[0];
  EXPECT_NEAR(m.load_misses, 0.2 * lines, lines * 0.01);
  EXPECT_NEAR(m.prefetched_loads, 0.8 * lines, lines * 0.01);
  // Total memory read traffic is unchanged by prefetch.
  EXPECT_NEAR(m.read_lines(), lines, lines * 0.01);
}

TEST(AnalyticCache, ResidentObjectMostlyHits) {
  AnalyticCacheModel model(kLlc);
  // 1 MiB object touched a million times with high friendliness.
  const double footprint = 1024.0 * 1024;
  const auto out = model.evaluate({{1e6, 0.0, footprint, 0.95, 0.0}});
  EXPECT_LT(out.per_object[0].load_misses, 1e6 * 0.1);
  EXPECT_GT(out.llc_hit_ratio, 0.9);
}

TEST(AnalyticCache, CapacityPressureRaisesMisses) {
  AnalyticCacheModel model(kLlc);
  const double footprint = 8.0 * 1024 * 1024 * 1024;  // 8 GiB >> LLC
  const auto big = model.evaluate({{1e8, 0.0, footprint, 0.9, 0.0}});
  const auto small = model.evaluate({{1e8, 0.0, 1024.0 * 1024, 0.9, 0.0}});
  EXPECT_GT(big.per_object[0].load_misses, 9.0 * small.per_object[0].load_misses);
}

TEST(AnalyticCache, StoresContributeToStoreMisses) {
  AnalyticCacheModel model(kLlc);
  const double lines = 1e7;
  const auto out = model.evaluate({{0.0, lines, 1024.0 * 1024 * 1024, 0.0, 0.0}});
  EXPECT_GT(out.per_object[0].store_misses, 0.5 * lines);
  EXPECT_DOUBLE_EQ(out.total_load_misses, out.per_object[0].load_misses);
}

TEST(AnalyticCache, CompetingObjectsShareResidency) {
  AnalyticCacheModel model(kLlc);
  const double footprint = 48.0 * 1024 * 1024;  // each fits alone, not both
  const KernelObjectAccess obj{1e7, 0.0, footprint, 0.9, 0.0};
  const auto alone = model.evaluate({obj});
  const auto together = model.evaluate({obj, obj});
  EXPECT_GT(together.per_object[0].load_misses, alone.per_object[0].load_misses);
}

TEST(AnalyticCache, EmptyKernelIsNeutral) {
  AnalyticCacheModel model(kLlc);
  const auto out = model.evaluate({});
  EXPECT_DOUBLE_EQ(out.total_load_misses, 0.0);
  EXPECT_DOUBLE_EQ(out.llc_hit_ratio, 1.0);
}

TEST(AnalyticCache, MissesNeverExceedRequests) {
  AnalyticCacheModel model(kLlc);
  for (const double friendliness : {0.0, 0.3, 0.7, 1.0}) {
    for (const double pe : {0.0, 0.5, 0.9}) {
      const double loads = 5e6;
      const double stores = 2e6;
      const auto out =
          model.evaluate({{loads, stores, 2.0 * 1024 * 1024 * 1024, friendliness, pe}});
      const auto& m = out.per_object[0];
      EXPECT_LE(m.load_misses + m.prefetched_loads, loads * 1.001);
      EXPECT_LE(m.store_misses, stores * 1.001);
      EXPECT_GE(m.load_misses, 0.0);
      EXPECT_GE(m.store_misses, 0.0);
    }
  }
}

/// Property sweep over prefetch efficiency: demand misses decrease
/// monotonically while total read traffic stays constant.
class PrefetchSweep : public ::testing::TestWithParam<double> {};

TEST_P(PrefetchSweep, DemandDecreasesTrafficConstant) {
  AnalyticCacheModel model(kLlc);
  const double lines = 1e7;
  const double pe = GetParam();
  const auto out = model.evaluate({{lines, 0.0, 4.0 * 1024 * 1024 * 1024, 0.0, pe}});
  const auto base = model.evaluate({{lines, 0.0, 4.0 * 1024 * 1024 * 1024, 0.0, 0.0}});
  EXPECT_NEAR(out.per_object[0].read_lines(), base.per_object[0].read_lines(), 1.0);
  EXPECT_NEAR(out.per_object[0].load_misses, base.per_object[0].load_misses * (1.0 - pe),
              lines * 0.001);
}

INSTANTIATE_TEST_SUITE_P(Efficiencies, PrefetchSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

}  // namespace
}  // namespace ecohmem::memsim
