// Cross-validation of the analytic LLC model against the reference
// set-associative cache simulation, on address streams where both are
// feasible (DESIGN.md D1). The analytic model trades exactness for
// scale; these tests pin down where its predictions must agree with the
// simulator and within what tolerance.

#include <gtest/gtest.h>

#include "ecohmem/memsim/analytic_cache.hpp"
#include "ecohmem/memsim/cache.hpp"
#include "ecohmem/memsim/stream_generator.hpp"

namespace ecohmem::memsim {
namespace {

/// Runs a stream through a scaled-down hierarchy and returns the LLC
/// load-miss count.
std::uint64_t simulate_llc_misses(const std::vector<MemoryRef>& refs, Bytes llc_bytes) {
  CacheHierarchy h({32 * 1024, 8, kCacheLine}, {256 * 1024, 8, kCacheLine},
                   {llc_bytes, 16, kCacheLine});
  for (const auto& r : refs) h.access(r.address, r.is_write);
  return h.llc_load_misses();
}

constexpr Bytes kLlc = 4ull * 1024 * 1024;  // small LLC keeps tests fast

TEST(StreamGenerator, SequentialCoversBufferInOrder) {
  Rng rng(1);
  StreamSpec spec;
  spec.base = 0x10000;
  spec.size = 1024 * kCacheLine;
  spec.accesses = 1024;
  const auto refs = generate_stream(spec, rng);
  ASSERT_EQ(refs.size(), 1024u);
  EXPECT_EQ(refs[0].address, 0x10000u);
  EXPECT_EQ(refs[1].address, 0x10000u + kCacheLine);
  EXPECT_EQ(refs.back().address, 0x10000u + 1023 * kCacheLine);
}

TEST(StreamGenerator, RandomStaysInBounds) {
  Rng rng(2);
  StreamSpec spec;
  spec.base = 0x1000;
  spec.size = 64 * kCacheLine;
  spec.accesses = 5000;
  spec.pattern = StreamPattern::kRandom;
  for (const auto& r : generate_stream(spec, rng)) {
    EXPECT_GE(r.address, spec.base);
    EXPECT_LT(r.address, spec.base + spec.size);
  }
}

TEST(StreamGenerator, WriteFractionHonored) {
  Rng rng(3);
  StreamSpec spec;
  spec.size = 1024 * kCacheLine;
  spec.accesses = 20000;
  spec.write_fraction = 0.25;
  std::size_t writes = 0;
  for (const auto& r : generate_stream(spec, rng)) writes += r.is_write ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(writes) / 20000.0, 0.25, 0.02);
}

TEST(StreamGenerator, InterleaveKeepsAllReferences) {
  Rng rng(4);
  StreamSpec a;
  a.base = 0;
  a.size = 128 * kCacheLine;
  a.accesses = 100;
  StreamSpec b = a;
  b.base = 1 << 20;
  b.accesses = 250;
  const auto refs = interleave_streams({a, b}, rng);
  EXPECT_EQ(refs.size(), 350u);
  // Round-robin: the first two references come from different buffers.
  EXPECT_LT(refs[0].address, 1u << 20);
  EXPECT_GE(refs[1].address, 1u << 20);
}

// ------------------------------------------------- analytic vs simulated

TEST(AnalyticValidation, ColdSequentialSweep) {
  // One pass over a buffer 4x the LLC: virtually every line is a miss in
  // both worlds.
  Rng rng(11);
  StreamSpec spec;
  spec.base = 1 << 24;
  spec.size = 4 * kLlc;
  spec.accesses = spec.size / kCacheLine;
  const auto simulated = simulate_llc_misses(generate_stream(spec, rng), kLlc);

  AnalyticCacheModel model(kLlc);
  const auto predicted = model.evaluate(
      {{static_cast<double>(spec.accesses), 0.0, static_cast<double>(spec.size), 0.0, 0.0}});

  EXPECT_NEAR(static_cast<double>(simulated), predicted.total_load_misses,
              predicted.total_load_misses * 0.05);
}

TEST(AnalyticValidation, ResidentBufferRepeatedSweeps) {
  // A buffer at 1/8 of the LLC swept 8 times: after the cold pass it
  // stays resident; both models must report ~cold-only misses.
  Rng rng(12);
  StreamSpec spec;
  spec.base = 1 << 24;
  spec.size = kLlc / 8;
  spec.accesses = 8 * spec.size / kCacheLine;
  const auto simulated = simulate_llc_misses(generate_stream(spec, rng), kLlc);

  AnalyticCacheModel model(kLlc);
  const auto predicted = model.evaluate(
      {{static_cast<double>(spec.accesses), 0.0, static_cast<double>(spec.size),
        /*friendliness=*/0.95, 0.0}});

  const double cold = static_cast<double>(spec.size) / kCacheLine;
  EXPECT_LT(static_cast<double>(simulated), cold * 1.3);
  EXPECT_LT(predicted.total_load_misses, cold * 1.8);
}

TEST(AnalyticValidation, ThrashingRandomBuffer) {
  // Random access over a buffer 8x the LLC: hit probability ~ LLC/size in
  // both worlds.
  Rng rng(13);
  StreamSpec spec;
  spec.base = 1 << 24;
  spec.size = 8 * kLlc;
  spec.accesses = 400'000;
  spec.pattern = StreamPattern::kRandom;
  const auto simulated = simulate_llc_misses(generate_stream(spec, rng), kLlc);

  AnalyticCacheModel model(kLlc);
  // friendliness ~1: random reuse *would* hit if resident; residency is
  // what limits it.
  const auto predicted = model.evaluate(
      {{static_cast<double>(spec.accesses), 0.0, static_cast<double>(spec.size), 1.0, 0.0}});

  const double sim_ratio = static_cast<double>(simulated) / static_cast<double>(spec.accesses);
  const double pred_ratio = predicted.total_load_misses / static_cast<double>(spec.accesses);
  EXPECT_NEAR(sim_ratio, pred_ratio, 0.15);
  EXPECT_GT(sim_ratio, 0.75);  // mostly missing, per both models
}

TEST(AnalyticValidation, CompetitionEvictsTheLargerWorkingSet) {
  // Two random-access buffers: alone each fits; together they thrash.
  // The analytic residency share must move in the same direction as the
  // simulator.
  Rng rng1(14);
  Rng rng2(14);
  StreamSpec a;
  a.base = 1 << 24;
  a.size = 3 * kLlc / 4;
  a.accesses = 200'000;
  a.pattern = StreamPattern::kRandom;
  StreamSpec b = a;
  b.base = 1 << 26;

  const auto alone = simulate_llc_misses(generate_stream(a, rng1), kLlc);
  const auto together = simulate_llc_misses(interleave_streams({a, b}, rng2), kLlc);

  AnalyticCacheModel model(kLlc);
  const KernelObjectAccess acc{static_cast<double>(a.accesses), 0.0,
                               static_cast<double>(a.size), 1.0, 0.0};
  const auto p_alone = model.evaluate({acc});
  const auto p_together = model.evaluate({acc, acc});

  // Both worlds: competition at least doubles the per-buffer miss count.
  EXPECT_GT(static_cast<double>(together) / 2.0, static_cast<double>(alone) * 1.5);
  EXPECT_GT(p_together.per_object[0].load_misses, p_alone.per_object[0].load_misses * 1.5);
}

/// Parameterized agreement sweep: per-pattern miss ratios of the two
/// models stay within an absolute tolerance.
struct ValidationCase {
  const char* name;
  StreamPattern pattern;
  Bytes size;
  double hot_fraction;  ///< fraction of the buffer that is hot — the
                        ///< analytic model's `footprint` is the hot
                        ///< working set, not the raw extent
  double friendliness;
  double tolerance;
};

class AnalyticAgreement : public ::testing::TestWithParam<ValidationCase> {};

TEST_P(AnalyticAgreement, MissRatioWithinTolerance) {
  const auto& c = GetParam();
  Rng rng(42);
  StreamSpec spec;
  spec.base = 1 << 24;
  spec.size = c.size;
  spec.accesses = 300'000;
  spec.pattern = c.pattern;
  const auto simulated = simulate_llc_misses(generate_stream(spec, rng), kLlc);

  AnalyticCacheModel model(kLlc);
  const double hot_footprint = static_cast<double>(spec.size) * c.hot_fraction;
  const auto predicted = model.evaluate(
      {{static_cast<double>(spec.accesses), 0.0, hot_footprint, c.friendliness, 0.0}});

  const double sim = static_cast<double>(simulated) / static_cast<double>(spec.accesses);
  const double pred = predicted.total_load_misses / static_cast<double>(spec.accesses);
  EXPECT_NEAR(sim, pred, c.tolerance) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, AnalyticAgreement,
    ::testing::Values(
        ValidationCase{"random_2x_llc", StreamPattern::kRandom, 2 * kLlc, 1.0, 1.0, 0.25},
        ValidationCase{"random_8x_llc", StreamPattern::kRandom, 8 * kLlc, 1.0, 1.0, 0.15},
        ValidationCase{"random_16x_llc", StreamPattern::kRandom, 16 * kLlc, 1.0, 1.0, 0.10},
        // 90% of accesses to 10% of the buffer: the hot tenth fits the
        // LLC; model it as the hot working set with ~0.9 reusability.
        ValidationCase{"hotcold_4x_llc", StreamPattern::kHotCold, 4 * kLlc, 0.1, 0.9, 0.2}),
    [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace ecohmem::memsim
