#include "ecohmem/memsim/bandwidth_meter.hpp"

#include <gtest/gtest.h>

namespace ecohmem::memsim {
namespace {

TEST(BandwidthMeter, SingleBinAverage) {
  BandwidthMeter m(1, 1000);
  m.add(0, 0, 1000, 500.0);  // 500 B over 1000 ns = 0.5 GB/s
  const auto series = m.series(0);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].gbs, 0.5);
}

TEST(BandwidthMeter, SmearsAcrossBins) {
  BandwidthMeter m(1, 1000);
  m.add(0, 500, 2500, 2000.0);  // uniform over 2 us spanning 3 bins
  const auto series = m.series(0);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].gbs, 0.5);   // 500 B in bin 0
  EXPECT_DOUBLE_EQ(series[1].gbs, 1.0);   // 1000 B in bin 1
  EXPECT_DOUBLE_EQ(series[2].gbs, 0.5);   // 500 B in bin 2
}

TEST(BandwidthMeter, TotalBytesConserved) {
  BandwidthMeter m(1, 777);
  m.add(0, 123, 98765, 1.0e6);
  double total = 0.0;
  for (const auto& p : m.series(0)) total += p.gbs * 777.0;
  EXPECT_NEAR(total, 1.0e6, 1.0);
}

TEST(BandwidthMeter, AverageOverWindow) {
  BandwidthMeter m(1, 1000);
  m.add(0, 0, 1000, 1000.0);
  m.add(0, 1000, 2000, 3000.0);
  EXPECT_DOUBLE_EQ(m.average_gbs(0, 0, 2000), 2.0);
  EXPECT_DOUBLE_EQ(m.average_gbs(0, 0, 1000), 1.0);
  EXPECT_DOUBLE_EQ(m.average_gbs(0, 500, 1500), 2.0);  // half of each bin
}

TEST(BandwidthMeter, PeakPicksLargestBin) {
  BandwidthMeter m(1, 1000);
  m.add(0, 0, 1000, 100.0);
  m.add(0, 3000, 4000, 900.0);
  EXPECT_DOUBLE_EQ(m.peak_gbs(0), 0.9);
}

TEST(BandwidthMeter, TiersAreIndependent) {
  BandwidthMeter m(2, 1000);
  m.add(0, 0, 1000, 100.0);
  m.add(1, 0, 1000, 700.0);
  EXPECT_DOUBLE_EQ(m.peak_gbs(0), 0.1);
  EXPECT_DOUBLE_EQ(m.peak_gbs(1), 0.7);
}

TEST(BandwidthMeter, IgnoresInvalidInput) {
  BandwidthMeter m(1, 1000);
  m.add(5, 0, 1000, 100.0);   // bad tier
  m.add(0, 0, 1000, -5.0);    // negative bytes
  EXPECT_TRUE(m.series(0).empty());
  EXPECT_DOUBLE_EQ(m.average_gbs(0, 0, 0), 0.0);  // empty window
}

TEST(BandwidthMeter, ZeroLengthIntervalTreatedAsPoint) {
  BandwidthMeter m(1, 1000);
  m.add(0, 500, 500, 64.0);
  EXPECT_NEAR(m.peak_gbs(0), 64.0 / 1000.0, 1e-12);
}

}  // namespace
}  // namespace ecohmem::memsim
