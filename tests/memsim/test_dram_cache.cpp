#include "ecohmem/memsim/dram_cache.hpp"

#include <gtest/gtest.h>

namespace ecohmem::memsim {
namespace {

constexpr Bytes kDram = 16ull * 1024 * 1024 * 1024;

TEST(DramCache, FittingWorkloadHitsAtLocality) {
  DramCacheModel model(kDram);
  const auto out = model.evaluate({{1e6, 0.0, 1.0e9, 0.8}});
  EXPECT_NEAR(out.per_object[0].hit_ratio, 0.8, 1e-9);
}

TEST(DramCache, OversubscriptionLowersHitRatio) {
  DramCacheModel model(kDram);
  const auto fits = model.evaluate({{1e6, 0.0, 8.0e9, 0.8}});
  const auto spills = model.evaluate({{1e6, 0.0, 64.0e9, 0.8}});
  EXPECT_LT(spills.per_object[0].hit_ratio, fits.per_object[0].hit_ratio);
}

TEST(DramCache, ConflictAlphaPenalizesBeyondProportional) {
  // alpha > 1 means the hit ratio drops faster than the capacity ratio.
  DramCacheModel direct_mapped(kDram, 1.1);
  DramCacheModel ideal(kDram, 1.0);
  const std::vector<DramCacheTraffic> t = {{1e6, 0.0, 64.0e9, 1.0}};
  EXPECT_LT(direct_mapped.evaluate(t).per_object[0].hit_ratio,
            ideal.evaluate(t).per_object[0].hit_ratio);
}

TEST(DramCache, LoadTrafficSplit) {
  DramCacheModel model(kDram);
  const double misses = 1e6;
  const auto out = model.evaluate({{misses, 0.0, 1.0e9, 0.5}});
  const auto& o = out.per_object[0];
  const double line = 64.0;
  // Hits read DRAM; misses read PMem and fill DRAM.
  EXPECT_NEAR(o.dram_read_bytes, 0.5 * misses * line, 1.0);
  EXPECT_NEAR(o.pmem_read_bytes, 0.5 * misses * line, 1.0);
  EXPECT_NEAR(o.dram_write_bytes, 0.5 * misses * line, 1.0);
  EXPECT_DOUBLE_EQ(o.pmem_write_bytes, 0.0);
}

TEST(DramCache, StoreTrafficIncludesWritebackAndFill) {
  DramCacheModel model(kDram);
  const double stores = 1e6;
  const auto out = model.evaluate({{0.0, stores, 1.0e9, 0.5}});
  const auto& o = out.per_object[0];
  const double line = 64.0;
  EXPECT_NEAR(o.dram_write_bytes, stores * line, 1.0);              // all land in cache
  EXPECT_NEAR(o.pmem_write_bytes, 0.5 * stores * line, 1.0);       // eventual writeback
  EXPECT_NEAR(o.pmem_read_bytes, 0.5 * stores * line, 1.0);        // write-allocate fill
}

TEST(DramCache, AggregateHitRatioIsRequestWeighted) {
  DramCacheModel model(kDram);
  const auto out = model.evaluate({
      {3e6, 0.0, 1.0e9, 1.0},  // hot, perfect locality
      {1e6, 0.0, 1.0e9, 0.0},  // zero locality
  });
  EXPECT_NEAR(out.hit_ratio, 0.75, 1e-9);
}

TEST(DramCache, EmptyTrafficIsPerfect) {
  DramCacheModel model(kDram);
  const auto out = model.evaluate({});
  EXPECT_DOUBLE_EQ(out.hit_ratio, 1.0);
  EXPECT_DOUBLE_EQ(out.pmem_read_bytes, 0.0);
}

TEST(DramCache, MissOverheadPositive) {
  DramCacheModel model(kDram);
  EXPECT_GT(model.miss_overhead_ns(), 0.0);
}

/// Property sweep: aggregate traffic is conserved — every load miss byte
/// appears exactly once as DRAM read or PMem read.
class DramCacheSweep : public ::testing::TestWithParam<double> {};

TEST_P(DramCacheSweep, LoadBytesConserved) {
  DramCacheModel model(kDram);
  const double locality = GetParam();
  const double misses = 2.5e6;
  const auto out = model.evaluate({{misses, 0.0, 24.0e9, locality}});
  EXPECT_NEAR(out.dram_read_bytes + out.pmem_read_bytes, misses * 64.0, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Localities, DramCacheSweep,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8, 1.0));

}  // namespace
}  // namespace ecohmem::memsim
