#include "ecohmem/memsim/tier.hpp"

#include <gtest/gtest.h>

namespace ecohmem::memsim {
namespace {

TEST(MemoryTier, IdleLatencyAtZeroUtilization) {
  MemoryTier dram(ddr4_dram_spec());
  EXPECT_DOUBLE_EQ(dram.read_latency_ns(0.0), 90.0);
  MemoryTier pmem(optane_pmem_spec(6));
  EXPECT_DOUBLE_EQ(pmem.read_latency_ns(0.0), 185.0);
}

TEST(MemoryTier, Fig2CalibrationPointsAt22GBs) {
  // The paper's §VII example numbers: at 22 GB/s read-only traffic,
  // DRAM ~117 ns and PMem ~239 ns.
  MemoryTier dram(ddr4_dram_spec());
  EXPECT_NEAR(dram.read_latency_at(22.0, 0.0), 117.0, 3.0);
  MemoryTier pmem(optane_pmem_spec(6));
  EXPECT_NEAR(pmem.read_latency_at(22.0, 0.0), 239.0, 6.0);
}

TEST(MemoryTier, PaperLatencyGapAtHighBandwidth) {
  // "At 22 GB/s, PMem costs 2.3x higher latency than DRAM." — the
  // paper's own example numbers (117 ns vs 239 ns) give 2.04x; we
  // calibrate against those.
  MemoryTier dram(ddr4_dram_spec());
  MemoryTier pmem(optane_pmem_spec(6));
  const double ratio = pmem.read_latency_at(22.0, 0.0) / dram.read_latency_at(22.0, 0.0);
  EXPECT_NEAR(ratio, 2.04, 0.15);
}

TEST(MemoryTier, LatencyMonotoneInUtilization) {
  MemoryTier pmem(optane_pmem_spec(6));
  double prev = 0.0;
  for (double u = 0.0; u <= 1.0; u += 0.05) {
    const double lat = pmem.read_latency_ns(u);
    EXPECT_GE(lat, prev);
    prev = lat;
  }
}

TEST(MemoryTier, WritesConsumeMoreUtilizationOnPmem) {
  MemoryTier pmem(optane_pmem_spec(6));
  // Same byte rate as writes loads the device much harder than as reads.
  EXPECT_GT(pmem.utilization(0.0, 5.0), pmem.utilization(5.0, 0.0));
}

TEST(MemoryTier, UtilizationClamped) {
  MemoryTier pmem(optane_pmem_spec(6));
  EXPECT_LE(pmem.utilization(1000.0, 1000.0), kMaxUtilization);
}

TEST(MemoryTier, DeliverableReadShrinksWithWriteLoad) {
  MemoryTier pmem(optane_pmem_spec(6));
  const double free_read = pmem.deliverable_read_gbs(0.0);
  const double loaded_read = pmem.deliverable_read_gbs(5.0);
  EXPECT_GT(free_read, loaded_read);
  EXPECT_GE(loaded_read, 0.0);
}

TEST(MemoryTier, Pmem2HasThirdOfBandwidth) {
  const TierSpec six = optane_pmem_spec(6);
  const TierSpec two = optane_pmem_spec(2);
  EXPECT_NEAR(two.peak_read_gbs, six.peak_read_gbs / 3.0, 1e-9);
  EXPECT_NEAR(two.peak_write_gbs, six.peak_write_gbs / 3.0, 1e-9);
  EXPECT_EQ(two.capacity, six.capacity / 3);
}

TEST(MemorySystem, PaperSystemHasDramThenPmem) {
  const auto sys = paper_system();
  ASSERT_TRUE(sys.has_value());
  ASSERT_EQ(sys->tier_count(), 2u);
  EXPECT_EQ(sys->tier(0).name(), "dram");
  EXPECT_EQ(sys->tier(1).name(), "pmem");
  EXPECT_EQ(sys->fallback_index(), 1u);
}

TEST(MemorySystem, TierIndexLookup) {
  const auto sys = paper_system();
  ASSERT_TRUE(sys.has_value());
  EXPECT_EQ(sys->tier_index("pmem").value(), 1u);
  EXPECT_FALSE(sys->tier_index("hbm").has_value());
}

TEST(MemorySystem, RejectsDuplicateNames) {
  auto a = ddr4_dram_spec();
  auto b = ddr4_dram_spec();
  b.is_fallback = true;
  EXPECT_FALSE(MemorySystem::create({a, b}).has_value());
}

TEST(MemorySystem, RequiresExactlyOneFallback) {
  auto dram = ddr4_dram_spec();
  auto pmem = optane_pmem_spec();
  pmem.is_fallback = false;
  EXPECT_FALSE(MemorySystem::create({dram, pmem}).has_value());
  dram.is_fallback = true;
  pmem.is_fallback = true;
  EXPECT_FALSE(MemorySystem::create({dram, pmem}).has_value());
}

TEST(MemorySystem, RejectsDegenerateSpecs) {
  auto pmem = optane_pmem_spec();
  auto zero_cap = ddr4_dram_spec(0);
  EXPECT_FALSE(MemorySystem::create({zero_cap, pmem}).has_value());

  auto bad_lat = ddr4_dram_spec();
  bad_lat.loaded_read_ns = bad_lat.idle_read_ns - 1;
  EXPECT_FALSE(MemorySystem::create({bad_lat, pmem}).has_value());

  EXPECT_FALSE(MemorySystem::create({}).has_value());
}

TEST(MemorySystem, SortsByPerformanceRank) {
  auto dram = ddr4_dram_spec();
  auto pmem = optane_pmem_spec();
  // Deliberately pass pmem first; creation must order dram (rank 0) first.
  const auto sys = MemorySystem::create({pmem, dram});
  ASSERT_TRUE(sys.has_value());
  EXPECT_EQ(sys->tier(0).name(), "dram");
}

/// Property sweep: for every tier spec, latency at the reference
/// utilization equals the configured loaded latency.
class TierParamTest : public ::testing::TestWithParam<TierSpec> {};

TEST_P(TierParamTest, LoadedLatencyAnchoredAtReferenceUtilization) {
  MemoryTier tier(GetParam());
  EXPECT_NEAR(tier.read_latency_ns(kReferenceUtilization), GetParam().loaded_read_ns, 1e-9);
  EXPECT_NEAR(tier.write_latency_ns(kReferenceUtilization), GetParam().loaded_write_ns, 1e-9);
}

TEST_P(TierParamTest, LatencyBoundedAtSaturation) {
  MemoryTier tier(GetParam());
  const double at_max = tier.read_latency_ns(kMaxUtilization);
  EXPECT_GT(at_max, GetParam().loaded_read_ns);
  EXPECT_LT(at_max, GetParam().loaded_read_ns * 10.0);  // finite blow-up
}

INSTANTIATE_TEST_SUITE_P(AllTiers, TierParamTest,
                         ::testing::Values(ddr4_dram_spec(), optane_pmem_spec(6),
                                           optane_pmem_spec(2), hbm2_spec()),
                         [](const auto& param_info) {
                           return param_info.param.name + "_" +
                                  std::to_string(param_info.param.capacity >> 30);
                         });

}  // namespace
}  // namespace ecohmem::memsim
