#include "ecohmem/memsim/cache.hpp"

#include <gtest/gtest.h>

namespace ecohmem::memsim {
namespace {

CacheGeometry tiny_cache() { return CacheGeometry{1024, 2, 64}; }  // 8 sets x 2 ways

TEST(SetAssocCache, ColdMissThenHit) {
  SetAssocCache c(tiny_cache());
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x103f, false).hit);  // same line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, LruEviction) {
  SetAssocCache c(tiny_cache());
  // Three lines mapping to the same set (stride = sets * line = 512).
  c.access(0x0000, false);
  c.access(0x0200, false);
  c.access(0x0000, false);          // refresh line 0
  c.access(0x0400, false);          // evicts 0x0200 (LRU)
  EXPECT_TRUE(c.probe(0x0000));
  EXPECT_FALSE(c.probe(0x0200));
  EXPECT_TRUE(c.probe(0x0400));
}

TEST(SetAssocCache, DirtyEvictionReportsWriteback) {
  SetAssocCache c(tiny_cache());
  c.access(0x0000, true);  // dirty
  c.access(0x0200, false);
  const auto r = c.access(0x0400, false);  // evicts dirty 0x0000
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.evicted_line, 0x0000u);
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(SetAssocCache, CleanEvictionNoWriteback) {
  SetAssocCache c(tiny_cache());
  c.access(0x0000, false);
  c.access(0x0200, false);
  const auto r = c.access(0x0400, false);
  EXPECT_FALSE(r.writeback);
  EXPECT_TRUE(r.evicted_valid);
}

TEST(SetAssocCache, FlushInvalidatesEverything) {
  SetAssocCache c(tiny_cache());
  c.access(0x0000, true);
  c.flush();
  EXPECT_FALSE(c.probe(0x0000));
}

TEST(SetAssocCache, GeometryDerivedSets) {
  const CacheGeometry l1{32 * 1024, 8, 64};
  EXPECT_EQ(l1.num_sets(), 64u);
  EXPECT_EQ(tiny_cache().num_sets(), 8u);
}

TEST(CacheHierarchy, MissesPropagateDownward) {
  auto h = CacheHierarchy::xeon_8260l();
  EXPECT_EQ(h.access(0x10000, false), HitLevel::kMemory);
  EXPECT_EQ(h.access(0x10000, false), HitLevel::kL1);
  EXPECT_EQ(h.llc_load_misses(), 1u);
}

TEST(CacheHierarchy, L1EvictionStillHitsInL2) {
  auto h = CacheHierarchy::xeon_8260l();
  h.access(0x0, false);
  // Sweep enough distinct lines to evict line 0 from the 32 KiB L1 but
  // not the 1 MiB L2.
  for (std::uint64_t a = 64 * 1024; a < 64 * 1024 + 64 * 1024; a += 64) {
    h.access(a, false);
  }
  EXPECT_EQ(h.access(0x0, false), HitLevel::kL2);
}

TEST(CacheHierarchy, StoreMissCountsAsL1StoreMiss) {
  auto h = CacheHierarchy::xeon_8260l();
  h.access(0x40, true);
  EXPECT_EQ(h.l1_store_misses(), 1u);
  h.access(0x40, true);
  EXPECT_EQ(h.l1_store_misses(), 1u);  // now resident
}

TEST(CacheHierarchy, StreamingMissesEveryLineOnce) {
  auto h = CacheHierarchy::xeon_8260l();
  const std::uint64_t lines = 4096;
  for (std::uint64_t i = 0; i < lines; ++i) h.access(i * 64, false);
  EXPECT_EQ(h.llc_load_misses(), lines);
}

TEST(CacheHierarchy, WorkingSetSmallerThanLlcStopsMissing) {
  auto h = CacheHierarchy::xeon_8260l();
  const std::uint64_t lines = 1024;  // 64 KiB, fits everywhere beyond L1
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t i = 0; i < lines; ++i) h.access(i * 64, false);
  }
  EXPECT_EQ(h.llc_load_misses(), lines);  // only the cold pass misses
}

TEST(CacheHierarchy, FlushResetsCounters) {
  auto h = CacheHierarchy::xeon_8260l();
  h.access(0x0, false);
  h.flush();
  EXPECT_EQ(h.llc_load_misses(), 0u);
  EXPECT_EQ(h.access(0x0, false), HitLevel::kMemory);
}

}  // namespace
}  // namespace ecohmem::memsim
