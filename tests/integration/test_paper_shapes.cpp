// The paper's headline results as regression tests, at full model length
// (the same runs the benchmarks print). Each assertion encodes a row of
// EXPERIMENTS.md with a tolerance band, so that any future change to the
// engine, the algorithms or the workload models that breaks a reproduced
// shape fails CI rather than silently drifting.

#include <gtest/gtest.h>

#include "ecohmem/apps/apps.hpp"
#include "ecohmem/baselines/kernel_tiering.hpp"
#include "ecohmem/core/ecohmem.hpp"

namespace ecohmem::core {
namespace {

constexpr Bytes GiB = 1024ull * 1024 * 1024;

double speedup(const std::string& app, Bytes dram, double store_coef, bool bw) {
  const auto sys = *memsim::paper_system(6);
  WorkflowOptions opt;
  opt.dram_limit = dram;
  opt.store_coef = store_coef;
  opt.bandwidth_aware = bw;
  const auto result = run_workflow(apps::make_app(app), sys, opt);
  EXPECT_TRUE(result.has_value());
  return result ? result->speedup() : 0.0;
}

TEST(PaperShapes, Fig6_MiniFeLargeAndDramInsensitive) {
  // Paper: 2.22x, "significant performance improvement even when
  // reducing our DRAM limit to 4 GB".
  const double at12 = speedup("minife", 12 * GiB, 0.0, false);
  const double at4 = speedup("minife", 4 * GiB, 0.0, false);
  EXPECT_GT(at12, 1.8);
  EXPECT_GT(at4, 1.7);
  EXPECT_GT(at4, at12 * 0.85);
}

TEST(PaperShapes, Fig6_HpcgLarge) {
  EXPECT_GT(speedup("hpcg", 12 * GiB, 0.0, false), 1.55);  // paper 1.67
  EXPECT_GT(speedup("hpcg", 4 * GiB, 0.0, false), 1.3);
}

TEST(PaperShapes, Fig6_SmallWinsForMiniMdAndLulesh) {
  const double minimd = speedup("minimd", 12 * GiB, 0.0, false);
  EXPECT_GT(minimd, 1.02);  // paper 1.08
  EXPECT_LT(minimd, 1.25);
  const double lulesh = speedup("lulesh", 12 * GiB, 0.0, false);
  EXPECT_GT(lulesh, 0.98);  // paper 1.07
  EXPECT_LT(lulesh, 1.15);
}

TEST(PaperShapes, Fig6_CloverleafStoresMatter) {
  // Paper: +19% at 12 GB from the store channel; 10% slowdown at 4 GB.
  const double loads = speedup("cloverleaf3d", 12 * GiB, 0.0, false);
  const double stores = speedup("cloverleaf3d", 12 * GiB, 0.125, false);
  EXPECT_GT(loads, 1.15);           // paper 1.39
  EXPECT_GT(stores, loads * 1.08);  // the §VIII-A effect
  EXPECT_LT(speedup("cloverleaf3d", 4 * GiB, 0.0, false), 1.02);
}

TEST(PaperShapes, TableVIII_OpenFoamBaseFailsBwAwareRecovers) {
  const double base = speedup("openfoam", 11 * GiB, 0.0, false);
  const double bw = speedup("openfoam", 11 * GiB, 0.0, true);
  EXPECT_LT(base, 0.75);  // paper 0.50
  EXPECT_GT(bw, 1.0);     // paper 1.061
  EXPECT_LT(bw, 1.3);
}

TEST(PaperShapes, TableVIII_LammpsNearNeutral) {
  const double base = speedup("lammps", 14 * GiB, 0.0, false);
  const double bw = speedup("lammps", 16 * GiB, 0.0, true);
  EXPECT_GT(base, 0.93);  // paper ~0.96-0.99
  EXPECT_LT(base, 1.03);
  EXPECT_GT(bw, 0.93);
  EXPECT_LT(bw, 1.04);
}

TEST(PaperShapes, TableVIII_LuleshBandwidthAwareGain) {
  const double base = speedup("lulesh", 12 * GiB, 0.0, false);
  const double bw = speedup("lulesh", 12 * GiB, 0.0, true);
  EXPECT_GT(bw, base * 1.08);  // paper: 1.07 -> 1.19
}

TEST(PaperShapes, TableVI_BoundednessOrdering) {
  const auto sys = *memsim::paper_system(6);
  const auto lammps = run_memory_mode(apps::make_lammps(), sys);
  const auto minife = run_memory_mode(apps::make_minife(), sys);
  const auto clover = run_memory_mode(apps::make_cloverleaf3d(), sys);
  ASSERT_TRUE(lammps && minife && clover);
  EXPECT_LT(lammps->memory_bound_fraction(), 0.35);
  EXPECT_GT(minife->memory_bound_fraction(), 0.85);
  EXPECT_GT(clover->memory_bound_fraction(), 0.85);
  // MiniFE's hit ratio is the lowest of the five (headroom).
  const auto minimd = run_memory_mode(apps::make_minimd(), sys);
  ASSERT_TRUE(minimd.has_value());
  EXPECT_LT(minife->dram_cache_hit_ratio, minimd->dram_cache_hit_ratio);
}

TEST(PaperShapes, Fig6_KernelTieringBetweenBaselineAndEcoHmem) {
  const auto sys = *memsim::paper_system(6);
  for (const std::string app : {"minife", "hpcg"}) {
    const runtime::Workload w = apps::make_app(app);
    const auto baseline = run_memory_mode(w, sys);
    ASSERT_TRUE(baseline.has_value());
    baselines::KernelTieringMode tiering(&sys, 0, sys.fallback_index());
    runtime::ExecutionEngine engine(&sys, {});
    const auto tier_run = engine.run(w, tiering);
    ASSERT_TRUE(tier_run.has_value());
    const double tier_speedup = tier_run->speedup_over(*baseline);
    EXPECT_GT(tier_speedup, 1.05) << app;  // beats memory mode...
    EXPECT_LT(tier_speedup, speedup(app, 12 * GiB, 0.0, false)) << app;  // ...not ecoHMEM
  }
}

TEST(PaperShapes, Fig7_BandwidthAwareCutsPmemPeak) {
  const auto sys = *memsim::paper_system(6);
  const runtime::Workload w = apps::make_lulesh();
  WorkflowOptions base_opt;
  base_opt.dram_limit = 12 * GiB;
  WorkflowOptions bw_opt = base_opt;
  bw_opt.bandwidth_aware = true;
  const auto base = run_workflow(w, sys, base_opt);
  const auto bw = run_workflow(w, sys, bw_opt);
  ASSERT_TRUE(base && bw);

  auto peak = [&sys](const runtime::RunMetrics& m) {
    double p = 0.0;
    for (const auto& pt : m.tier_bw[sys.fallback_index()]) p = std::max(p, pt.gbs);
    return p;
  };
  EXPECT_LT(peak(bw->production_metrics), peak(base->production_metrics) * 0.8);
}

TEST(PaperShapes, Fig6_Pmem2DegradesAbsolutePerformance) {
  const auto sys6 = *memsim::paper_system(6);
  const auto sys2 = *memsim::paper_system(2);
  for (const std::string app : {"minife", "hpcg"}) {
    const runtime::Workload w = apps::make_app(app);
    WorkflowOptions opt;
    opt.dram_limit = 12 * GiB;
    const auto r6 = run_workflow(w, sys6, opt);
    const auto r2 = run_workflow(w, sys2, opt);
    ASSERT_TRUE(r6 && r2);
    EXPECT_GT(r2->production_metrics.total_ns, r6->production_metrics.total_ns) << app;
    EXPECT_GT(r2->speedup(), 1.0) << app;  // still above memory mode (paper)
  }
}

}  // namespace
}  // namespace ecohmem::core
