#include "ecohmem/core/autotune.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ecohmem/analyzer/site_report.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/apps/synthetic.hpp"

namespace ecohmem::core {
namespace {

TEST(Autotune, FindsBestConfigurationForOpenFoam) {
  // The interesting case: base-12G is a slowdown; the tuner must land on
  // a bandwidth-aware candidate.
  apps::AppOptions app_opt;
  app_opt.iterations = 6;
  const auto w = apps::make_openfoam(app_opt);
  const auto sys = *memsim::paper_system(6);

  AutotuneSpace space;
  space.dram_limits = {11ull << 30};
  space.store_coefs = {0.0};
  space.bandwidth_aware = {false, true};
  const auto result = autotune(w, sys, space);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_TRUE(result->best.options.bandwidth_aware);
  EXPECT_GT(result->best.speedup, 0.9);
  ASSERT_EQ(result->all.size(), 2u);
}

TEST(Autotune, BestIsMaxOverAllCandidates) {
  const auto w = apps::make_synthetic({.seed = 11, .phases = 3});
  const auto sys = *memsim::paper_system(6);
  AutotuneSpace space;
  space.dram_limits = {2ull << 30, 8ull << 30};
  space.store_coefs = {0.0, 0.125};
  space.bandwidth_aware = {false};
  const auto result = autotune(w, sys, space);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->all.size(), 4u);
  for (const auto& c : result->all) {
    ASSERT_TRUE(c.ok) << c.error;
    EXPECT_LE(c.speedup, result->best.speedup + 1e-12);
  }
}

TEST(Autotune, DeterministicAcrossParallelism) {
  const auto w = apps::make_synthetic({.seed = 12, .phases = 3});
  const auto sys = *memsim::paper_system(6);
  const auto serial = autotune(w, sys, {}, /*max_parallelism=*/1);
  const auto parallel = autotune(w, sys, {}, /*max_parallelism=*/8);
  ASSERT_TRUE(serial && parallel);
  ASSERT_EQ(serial->all.size(), parallel->all.size());
  for (std::size_t i = 0; i < serial->all.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial->all[i].speedup, parallel->all[i].speedup) << i;
  }
  EXPECT_DOUBLE_EQ(serial->best.speedup, parallel->best.speedup);
}

TEST(Autotune, EmptySpaceFails) {
  const auto w = apps::make_synthetic({.seed = 13, .phases = 2});
  const auto sys = *memsim::paper_system(6);
  AutotuneSpace space;
  space.dram_limits.clear();
  EXPECT_FALSE(autotune(w, sys, space).has_value());
}

// ------------------------------------------------------- site reports

TEST(SiteReport, TableContainsEverySite) {
  const auto w = apps::make_synthetic({.seed = 14, .phases = 2});
  const auto sys = *memsim::paper_system(6);
  WorkflowOptions opt;
  opt.dram_limit = 8ull << 30;
  const auto run = run_workflow(w, sys, opt);
  ASSERT_TRUE(run.has_value());

  const auto text = analyzer::site_table_to_string(run->analysis, *w.modules);
  EXPECT_NE(text.find("call stack"), std::string::npos);
  EXPECT_NE(text.find("peak system bandwidth"), std::string::npos);
  // One line per site plus header/footer.
  const auto lines = static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
  EXPECT_GE(lines, run->analysis.sites.size() + 2);
}

TEST(SiteReport, TopNTruncates) {
  const auto w = apps::make_synthetic({.seed = 15, .phases = 2});
  const auto sys = *memsim::paper_system(6);
  WorkflowOptions opt;
  opt.dram_limit = 8ull << 30;
  const auto run = run_workflow(w, sys, opt);
  ASSERT_TRUE(run.has_value());

  analyzer::SiteReportOptions ropt;
  ropt.top = 3;
  const auto text = analyzer::site_table_to_string(run->analysis, *w.modules, ropt);
  const auto lines = static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
  EXPECT_EQ(lines, 3u + 2u);  // header + 3 rows + footer
}

TEST(SiteReport, CsvRoundTripsColumnCount) {
  const auto w = apps::make_synthetic({.seed = 16, .phases = 2});
  const auto sys = *memsim::paper_system(6);
  WorkflowOptions opt;
  opt.dram_limit = 8ull << 30;
  const auto run = run_workflow(w, sys, opt);
  ASSERT_TRUE(run.has_value());

  std::ostringstream out;
  analyzer::write_site_csv(out, run->analysis, *w.modules);
  std::istringstream in(out.str());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  const auto header_cols = std::count(header.begin(), header.end(), ',') + 1;
  EXPECT_EQ(header_cols, 14);
  std::string row;
  std::size_t rows = 0;
  while (std::getline(in, row)) {
    EXPECT_EQ(std::count(row.begin(), row.end(), ',') + 1, header_cols);
    ++rows;
  }
  EXPECT_EQ(rows, run->analysis.sites.size());
}

}  // namespace
}  // namespace ecohmem::core
