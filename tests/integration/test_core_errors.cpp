// Error paths and lesser-used options of the core workflow API, plus the
// CLI argument parser the ecohmem-* tools share.

#include <gtest/gtest.h>

#include "../../tools/cli_common.hpp"
#include "ecohmem/apps/synthetic.hpp"
#include "ecohmem/core/ecohmem.hpp"

namespace ecohmem {
namespace {

TEST(CoreErrors, SingleTierSystemCannotRunMemoryMode) {
  auto spec = memsim::ddr4_dram_spec();
  spec.is_fallback = true;
  const auto sys = memsim::MemorySystem::create({spec});
  ASSERT_TRUE(sys.has_value());
  const auto w = apps::make_synthetic({.seed = 3, .phases = 2});
  EXPECT_FALSE(core::run_memory_mode(w, *sys).has_value());
  EXPECT_FALSE(core::run_workflow(w, *sys).has_value());
}

TEST(CoreErrors, RunWithPlacementHumanReadableFormat) {
  const auto sys = *memsim::paper_system(6);
  const auto w = apps::make_synthetic({.seed = 4, .phases = 2});
  core::WorkflowOptions opt;
  opt.dram_limit = 8ull << 30;
  const auto base = core::run_workflow(w, sys, opt);
  ASSERT_TRUE(base.has_value());

  const auto run = core::run_with_placement(w, sys, base->placement, 8ull << 30,
                                            advisor::ReportFormat::kHumanReadable);
  ASSERT_TRUE(run.has_value()) << run.error();
  EXPECT_GT(run->alloc_overhead_ns, 0.0);  // HR matching is metered
}

TEST(CoreErrors, HumanReadableWithoutSymbolsFails) {
  const auto sys = *memsim::paper_system(6);
  auto w = apps::make_synthetic({.seed = 5, .phases = 2});
  core::WorkflowOptions opt;
  opt.dram_limit = 8ull << 30;
  const auto base = core::run_workflow(w, sys, opt);
  ASSERT_TRUE(base.has_value());

  w.symbols = nullptr;  // stripped binary
  EXPECT_FALSE(core::run_with_placement(w, sys, base->placement, 8ull << 30,
                                        advisor::ReportFormat::kHumanReadable)
                   .has_value());
}

TEST(CoreErrors, TinyDramBudgetStillRuns) {
  // Everything spills to the fallback; the workflow must not fail.
  const auto sys = *memsim::paper_system(6);
  const auto w = apps::make_synthetic({.seed = 6, .phases = 2});
  core::WorkflowOptions opt;
  opt.dram_limit = 1 << 20;  // 1 MiB
  const auto result = core::run_workflow(w, sys, opt);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_LE(result->placement.footprint_in("dram"), Bytes{1u << 20});
}

TEST(CliArgs, FlagsValuesAndPositionals) {
  const char* argv[] = {"tool", "--app", "lulesh", "pos1", "--bandwidth-aware",
                        "--dram-limit", "12GB", "pos2"};
  cli::Args args(8, const_cast<char**>(argv), {"bandwidth-aware"});
  EXPECT_EQ(args.get("app"), "lulesh");
  EXPECT_TRUE(args.has("bandwidth-aware"));
  EXPECT_EQ(args.get_bytes("dram-limit", 0), 12ull << 30);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.positional()[1], "pos2");
}

TEST(CliArgs, DefaultsAndMalformedValues) {
  const char* argv[] = {"tool", "--rate", "abc"};
  cli::Args args(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("rate", 100.0), 100.0);  // parse failure -> default
  EXPECT_DOUBLE_EQ(args.get_double("missing", 7.0), 7.0);
  EXPECT_EQ(args.get("missing", "x"), "x");
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, TrailingFlagWithoutValueIsBoolean) {
  const char* argv[] = {"tool", "--verbose"};
  cli::Args args(2, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose"), "true");
}

}  // namespace
}  // namespace ecohmem
