#include <gtest/gtest.h>

#include "ecohmem/apps/apps.hpp"
#include "ecohmem/core/ecohmem.hpp"
#include "ecohmem/flexmalloc/flexmalloc.hpp"
#include "ecohmem/profiler/profiler.hpp"

namespace ecohmem::core {
namespace {

constexpr Bytes GiB = 1024ull * 1024 * 1024;

memsim::MemorySystem paper() { return *memsim::paper_system(6); }

WorkflowOptions opts(Bytes dram, double store_coef = 0.0, bool bw = false) {
  WorkflowOptions o;
  o.dram_limit = dram;
  o.store_coef = store_coef;
  o.bandwidth_aware = bw;
  return o;
}

TEST(Workflow, EndToEndProducesAllArtifacts) {
  apps::AppOptions app_opt;
  app_opt.iterations = 5;
  const auto w = apps::make_minife(app_opt);
  const auto sys = paper();
  const auto result = run_workflow(w, sys, opts(12 * GiB));
  ASSERT_TRUE(result.has_value()) << result.error();

  EXPECT_GT(result->analysis.sites.size(), 3u);
  EXPECT_GT(result->placement.decisions.size(), 3u);
  EXPECT_FALSE(result->report_text.empty());
  EXPECT_GT(result->baseline_metrics.total_ns, 0u);
  EXPECT_GT(result->production_metrics.total_ns, 0u);
  EXPECT_EQ(result->effective_dram_limit, 12 * GiB);
  EXPECT_FALSE(result->bandwidth_aware.has_value());
}

TEST(Workflow, HeadlineSpeedupsHoldAtReducedIterations) {
  // Shape checks from Fig. 6 at 12 GB, Loads config (full-length runs are
  // exercised by the benchmarks; 6-8 iterations keep tests quick).
  const auto sys = paper();
  apps::AppOptions app_opt;
  app_opt.iterations = 8;

  const auto minife = run_workflow(apps::make_minife(app_opt), sys, opts(12 * GiB));
  ASSERT_TRUE(minife.has_value());
  EXPECT_GT(minife->speedup(), 1.4);

  const auto hpcg = run_workflow(apps::make_hpcg(app_opt), sys, opts(12 * GiB));
  ASSERT_TRUE(hpcg.has_value());
  EXPECT_GT(hpcg->speedup(), 1.3);

  const auto lammps = run_workflow(apps::make_lammps(app_opt), sys, opts(14 * GiB));
  ASSERT_TRUE(lammps.has_value());
  EXPECT_GT(lammps->speedup(), 0.9);
  EXPECT_LT(lammps->speedup(), 1.08);  // short runs amortize comm losses less
}

TEST(Workflow, StoresHelpCloverleaf) {
  // §VIII-A: Loads+stores captures the write-dominated work arrays.
  const auto sys = paper();
  apps::AppOptions app_opt;
  app_opt.iterations = 8;
  const auto w = apps::make_cloverleaf3d(app_opt);
  const auto loads = run_workflow(w, sys, opts(12 * GiB, 0.0));
  const auto stores = run_workflow(w, sys, opts(12 * GiB, 0.125));
  ASSERT_TRUE(loads && stores);
  EXPECT_GT(stores->speedup(), loads->speedup() * 1.05);
}

TEST(Workflow, BandwidthAwareRescuesOpenFoam) {
  // §VIII-C/Table VIII: base fails, bandwidth-aware recovers.
  const auto sys = paper();
  apps::AppOptions app_opt;
  app_opt.iterations = 8;
  const auto w = apps::make_openfoam(app_opt);
  const auto base = run_workflow(w, sys, opts(11 * GiB, 0.0, false));
  const auto bw = run_workflow(w, sys, opts(11 * GiB, 0.0, true));
  ASSERT_TRUE(base && bw);
  EXPECT_LT(base->speedup(), 0.8);
  EXPECT_GT(bw->speedup(), 0.95);
  ASSERT_TRUE(bw->bandwidth_aware.has_value());
  EXPECT_GT(bw->bandwidth_aware->swaps, 0u);
  EXPECT_GT(bw->bandwidth_aware->streaming_moved, 0u);
}

TEST(Workflow, BandwidthAwareImprovesLulesh) {
  const auto sys = paper();
  apps::AppOptions app_opt;
  app_opt.iterations = 8;
  const auto w = apps::make_lulesh(app_opt);
  const auto base = run_workflow(w, sys, opts(12 * GiB, 0.0, false));
  const auto bw = run_workflow(w, sys, opts(12 * GiB, 0.0, true));
  ASSERT_TRUE(base && bw);
  EXPECT_GT(bw->speedup(), base->speedup() * 1.04);
}

TEST(Workflow, SmallerDramLimitNeverHelps) {
  const auto sys = paper();
  apps::AppOptions app_opt;
  app_opt.iterations = 6;
  const auto w = apps::make_hpcg(app_opt);
  const auto big = run_workflow(w, sys, opts(12 * GiB));
  const auto small = run_workflow(w, sys, opts(4 * GiB));
  ASSERT_TRUE(big && small);
  EXPECT_GE(big->speedup(), small->speedup() * 0.98);
}

TEST(Workflow, HumanReadableFormatCostsPerformance) {
  // §VIII-D: per-rank debug info shrinks the DRAM budget and matching
  // costs more; the BOM format preserves the win.
  const auto sys = paper();
  apps::AppOptions app_opt;
  app_opt.iterations = 8;
  const auto w = apps::make_openfoam(app_opt);

  auto bw_opts = opts(11 * GiB, 0.0, true);
  const auto bom_run = run_workflow(w, sys, bw_opts);
  bw_opts.format = advisor::ReportFormat::kHumanReadable;
  const auto hr_run = run_workflow(w, sys, bw_opts);
  ASSERT_TRUE(bom_run && hr_run) << (bom_run ? hr_run.error() : bom_run.error());

  EXPECT_LT(hr_run->effective_dram_limit, bom_run->effective_dram_limit);
  EXPECT_LT(hr_run->speedup(), bom_run->speedup());
  EXPECT_GT(hr_run->production_metrics.alloc_overhead_ns,
            bom_run->production_metrics.alloc_overhead_ns);
}

TEST(Workflow, ReportSurvivesAslrRebase) {
  // The §VI property end to end: a report produced in one run matches in
  // a process whose modules are loaded at different bases.
  const auto sys = paper();
  apps::AppOptions app_opt;
  app_opt.iterations = 4;
  auto w = apps::make_minife(app_opt);
  const auto result = run_workflow(w, sys, opts(12 * GiB));
  ASSERT_TRUE(result.has_value());

  Rng rng(1234);
  w.modules->assign_bases(/*aslr=*/true, rng);  // "new process"

  const auto parsed = flexmalloc::parse_report(result->report_text, *w.modules);
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  auto fm = flexmalloc::FlexMalloc::create(
      {{"dram", 12 * GiB}, {"pmem", sys.tier(1).capacity()}}, *parsed, w.symbols.get());
  ASSERT_TRUE(fm.has_value()) << fm.error();
  for (const auto& site : w.sites) {
    const auto alloc = fm->malloc(site.stack, 64);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_TRUE(alloc->matched) << site.label;
  }
}

TEST(Workflow, ProductionDramUsageRespectsLimit) {
  const auto sys = paper();
  apps::AppOptions app_opt;
  app_opt.iterations = 6;
  const auto w = apps::make_cloverleaf3d(app_opt);
  const auto result = run_workflow(w, sys, opts(8 * GiB));
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->placement.footprint_in("dram"), 8 * GiB);
}

TEST(Workflow, DeterministicAcrossRuns) {
  const auto sys = paper();
  apps::AppOptions app_opt;
  app_opt.iterations = 5;
  const auto w = apps::make_lulesh(app_opt);
  const auto r1 = run_workflow(w, sys, opts(12 * GiB, 0.0, true));
  const auto r2 = run_workflow(w, sys, opts(12 * GiB, 0.0, true));
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r1->production_metrics.total_ns, r2->production_metrics.total_ns);
  EXPECT_EQ(r1->report_text, r2->report_text);
}

TEST(Workflow, RejectsExternalObserver) {
  const auto sys = paper();
  apps::AppOptions app_opt;
  app_opt.iterations = 2;
  runtime::EngineOptions eopt;
  profiler::Profiler prof;
  eopt.observer = &prof;
  EXPECT_FALSE(run_workflow(apps::make_minife(app_opt), sys, opts(12 * GiB), eopt).has_value());
}

TEST(Workflow, Pmem2ConfigurationDegradesEverything) {
  // Fig. 6 PMem-2: removing DIMMs lowers absolute performance in both
  // modes; MiniFE keeps a solid win over memory mode.
  const auto sys6 = paper();
  const auto sys2 = *memsim::paper_system(2);
  apps::AppOptions app_opt;
  app_opt.iterations = 6;
  const auto w = apps::make_minife(app_opt);
  const auto r6 = run_workflow(w, sys6, opts(12 * GiB));
  const auto r2 = run_workflow(w, sys2, opts(12 * GiB));
  ASSERT_TRUE(r6 && r2);
  EXPECT_GT(r2->production_metrics.total_ns, r6->production_metrics.total_ns);
  EXPECT_GT(r2->speedup(), 1.2);
}

/// Sampling-noise robustness (DESIGN.md D5): the production speedup is
/// stable across profiling seeds.
class WorkflowSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkflowSeedSweep, SpeedupStableUnderSamplingNoise) {
  const auto sys = paper();
  apps::AppOptions app_opt;
  app_opt.iterations = 6;
  const auto w = apps::make_minife(app_opt);
  auto o = opts(12 * GiB);
  o.profile_seed = GetParam();
  const auto result = run_workflow(w, sys, o);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->speedup(), 1.4);
  EXPECT_LT(result->speedup(), 2.6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkflowSeedSweep,
                         ::testing::Values(1u, 7u, 99u, 1234u, 0xabcdefu));

}  // namespace
}  // namespace ecohmem::core
