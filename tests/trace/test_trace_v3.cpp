// Tests for the v3 indexed trace format: round trips (bulk writer and
// streaming block writer), the mmap TraceReader's block API and parallel
// read_all, the bounded-memory TraceStreamer, and malformed-index
// rejection — every corruption must fail with an offset-bearing Status,
// never crash.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "ecohmem/trace/codec.hpp"
#include "ecohmem/trace/events.hpp"
#include "ecohmem/trace/trace_file.hpp"
#include "ecohmem/trace/trace_reader.hpp"

namespace ecohmem::trace {
namespace {

std::string tmp_path(const std::string& name) { return ::testing::TempDir() + name; }

bom::ModuleTable test_modules() {
  bom::ModuleTable mt;
  mt.add_module("a.x", 1 << 20, 2 << 20);
  mt.add_module("b.so", 1 << 20, 1 << 20);
  return mt;
}

/// Deterministic event generator shared by the in-memory and streaming
/// tests: a mix of allocs, frees, samples, uncore readings and markers
/// with non-decreasing timestamps, delivered through a callback so large
/// streams never have to be materialized.
void synth_events(std::size_t n, std::uint64_t seed, StackId s0, StackId s1, std::uint32_t fn,
                  const std::function<void(const Event&)>& sink) {
  std::uint64_t x = seed * 2654435761ull + 1;
  const auto rnd = [&x] {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 33;
  };
  Ns time = 0;
  std::uint64_t next_id = 1;
  std::uint64_t next_addr = 0x100000;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> live;  // object id, address
  for (std::size_t i = 0; i < n; ++i) {
    time += rnd() % 50;
    switch (rnd() % 8) {
      case 0:
      case 1: {
        const Bytes size = 64 + rnd() % 8192;
        sink(AllocEvent{time, next_id, next_addr, size, (i % 2) != 0 ? s0 : s1,
                        AllocKind::kMalloc});
        live.emplace_back(next_id, next_addr);
        next_addr += size + 64;
        ++next_id;
        break;
      }
      case 2:
        if (live.empty()) {
          sink(MarkerEvent{time, fn, true});
        } else {
          const std::size_t k = rnd() % live.size();
          sink(FreeEvent{time, live[k].first});
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
        }
        break;
      case 3:
        sink(UncoreBwEvent{time, 1000 + rnd() % 1000, static_cast<double>(rnd() % 100) * 0.25,
                           static_cast<double>(rnd() % 50) * 0.25});
        break;
      default:
        sink(SampleEvent{time,
                         live.empty() ? 0x10 : live[rnd() % live.size()].second + rnd() % 64,
                         1.0 + static_cast<double>(rnd() % 8) * 0.5,
                         static_cast<double>(rnd() % 400), rnd() % 4 == 0, fn});
    }
  }
}

Trace synth_trace(std::size_t n, std::uint64_t seed) {
  Trace t;
  t.sample_rate_hz = 1000.0;
  const StackId s0 = t.stacks.intern(bom::CallStack{{{0, 0x10}}});
  const StackId s1 = t.stacks.intern(bom::CallStack{{{0, 0x20}, {1, 0x8}}});
  const std::uint32_t fn = t.functions.intern("synth");
  synth_events(n, seed, s0, s1, fn, [&t](const Event& e) { t.events.push_back(e); });
  return t;
}

/// Canonical byte form used for exact equality checks: the v1 plain
/// encoding is injective over (header tables, events), so two traces are
/// identical iff their v1 bytes are.
std::string v1_bytes(const Trace& t, const bom::ModuleTable& modules) {
  std::stringstream ss;
  EXPECT_TRUE(write_trace(ss, t, modules).ok());
  return ss.str();
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t get_u64(const std::string& bytes, std::size_t off) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + off, 8);
  return v;
}

void put_u64(std::string& bytes, std::size_t off, std::uint64_t v) {
  std::memcpy(bytes.data() + off, &v, 8);
}

/// Writes `t` as a v3 file and returns its bytes.
std::string v3_file_bytes(const std::string& path, const Trace& t,
                          const bom::ModuleTable& modules, std::uint64_t block_events) {
  TraceWriteOptions opt;
  opt.indexed = true;
  opt.block_events = block_events;
  EXPECT_TRUE(save_trace(path, t, modules, opt).ok());
  return read_bytes(path);
}

TEST(TraceV3, SaveLoadRoundTripMultiBlock) {
  const Trace original = synth_trace(10'000, 42);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("v3_roundtrip.trc");
  v3_file_bytes(path, original, modules, 256);

  const auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(loaded->modules.size(), modules.size());
  EXPECT_EQ(v1_bytes(loaded->trace, loaded->modules), v1_bytes(original, modules));
}

TEST(TraceV3, ReaderExposesBlockMetadata) {
  const Trace original = synth_trace(10'000, 7);
  const std::string path = tmp_path("v3_blocks.trc");
  v3_file_bytes(path, original, test_modules(), 256);

  const auto reader = TraceReader::open(path);
  ASSERT_TRUE(reader.has_value()) << reader.error();
  EXPECT_EQ(reader->version(), 3u);
  EXPECT_TRUE(reader->indexed());
  EXPECT_EQ(reader->event_count(), 10'000u);
  ASSERT_EQ(reader->block_count(), static_cast<std::size_t>((10'000 + 255) / 256));

  std::uint64_t cumulative = 0;
  Ns last_first_time = 0;
  for (std::size_t i = 0; i < reader->block_count(); ++i) {
    const TraceBlockInfo& b = reader->block(i);
    EXPECT_EQ(b.first_event_index, cumulative) << "block " << i;
    EXPECT_GT(b.event_count, 0u);
    EXPECT_GE(b.first_time, last_first_time);
    cumulative += b.event_count;
    last_first_time = b.first_time;
  }
  EXPECT_EQ(cumulative, reader->event_count());

  std::vector<Event> block0;
  ASSERT_TRUE(reader->decode_block(0, block0).ok());
  ASSERT_EQ(block0.size(), 256u);
  EXPECT_EQ(event_time(block0.front()), event_time(original.events.front()));
}

TEST(TraceV3, ReadAllIsBitIdenticalForEveryThreadCount) {
  const Trace original = synth_trace(20'000, 99);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("v3_threads.trc");
  v3_file_bytes(path, original, modules, 512);

  const auto reader = TraceReader::open(path);
  ASSERT_TRUE(reader.has_value()) << reader.error();
  const std::string expected = v1_bytes(original, modules);
  for (const int threads : {1, 2, 4, 7}) {
    const auto bundle = reader->read_all(threads);
    ASSERT_TRUE(bundle.has_value()) << "threads=" << threads << ": " << bundle.error();
    EXPECT_EQ(v1_bytes(bundle->trace, bundle->modules), expected) << "threads=" << threads;
  }
}

TEST(TraceV3, BlockWriterIsByteIdenticalToBulkWriter) {
  const Trace t = synth_trace(5'000, 3);
  const bom::ModuleTable modules = test_modules();
  const std::string bulk_path = tmp_path("v3_bulk.trc");
  const std::string stream_path = tmp_path("v3_stream.trc");
  const std::string bulk = v3_file_bytes(bulk_path, t, modules, 300);

  auto writer =
      TraceBlockWriter::create(stream_path, t.stacks, t.functions, modules, t.sample_rate_hz, 300);
  ASSERT_TRUE(writer.has_value()) << writer.error();
  for (const Event& e : t.events) ASSERT_TRUE(writer->add(e).ok());
  ASSERT_TRUE(writer->finish().ok());
  EXPECT_EQ(writer->events_written(), t.events.size());

  EXPECT_EQ(read_bytes(stream_path), bulk);
}

TEST(TraceV3, BlockWriterRejectsOutOfTableStack) {
  const Trace t = synth_trace(10, 1);
  auto writer = TraceBlockWriter::create(tmp_path("v3_badstack.trc"), t.stacks, t.functions,
                                         test_modules(), t.sample_rate_hz, 16);
  ASSERT_TRUE(writer.has_value()) << writer.error();
  EXPECT_FALSE(writer->add(AllocEvent{1, 1, 0x1000, 64, /*stack=*/999, AllocKind::kMalloc}).ok());
}

TEST(TraceV3, V1ToV3PropertyRoundTrip) {
  // Property: for any trace, v1 -> decode -> v3 -> decode preserves the
  // canonical bytes exactly.
  const bom::ModuleTable modules = test_modules();
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const Trace original = synth_trace(777 + 111 * seed, seed);
    std::stringstream v1;
    ASSERT_TRUE(write_trace(v1, original, modules).ok());
    const auto from_v1 = read_trace(v1);
    ASSERT_TRUE(from_v1.has_value()) << from_v1.error();

    const std::string path = tmp_path("v3_prop_" + std::to_string(seed) + ".trc");
    v3_file_bytes(path, from_v1->trace, from_v1->modules, 128);
    const auto from_v3 = load_trace(path);
    ASSERT_TRUE(from_v3.has_value()) << from_v3.error();
    EXPECT_EQ(v1_bytes(from_v3->trace, from_v3->modules), v1_bytes(original, modules))
        << "seed " << seed;
  }
}

TEST(TraceV3, StreamerVisitsEveryEventInOrder) {
  const Trace original = synth_trace(4'000, 11);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("v3_streamer.trc");
  v3_file_bytes(path, original, modules, 128);

  const auto streamer = TraceStreamer::open(path);
  ASSERT_TRUE(streamer.has_value()) << streamer.error();
  EXPECT_EQ(streamer->version(), 3u);
  EXPECT_EQ(streamer->event_count(), original.events.size());

  Trace streamed;
  streamed.sample_rate_hz = streamer->sample_rate_hz();
  streamed.stacks = streamer->stacks();
  streamed.functions = streamer->functions();
  ASSERT_TRUE(
      streamer->for_each([&streamed](const Event& e) { streamed.events.push_back(e); }).ok());
  EXPECT_EQ(v1_bytes(streamed, streamer->modules()), v1_bytes(original, modules));
}

// ---------------------------------------------------------------------------
// Malformed v3 inputs. Every case must fail with an offset-bearing
// Status through both the mmap reader and the bulk loader, never crash.

struct CorruptionCase {
  std::string bytes;
  std::uint64_t entry_count = 0;
  std::uint64_t footer_offset = 0;
};

CorruptionCase valid_v3(const std::string& name) {
  CorruptionCase c;
  const Trace t = synth_trace(2'000, 21);
  c.bytes = v3_file_bytes(tmp_path(name), t, test_modules(), 128);
  c.entry_count = get_u64(c.bytes, c.bytes.size() - 24);
  c.footer_offset = get_u64(c.bytes, c.bytes.size() - 16);
  EXPECT_GE(c.entry_count, 2u);
  return c;
}

void expect_rejected_with_offset(const std::string& path, const std::string& bytes) {
  write_bytes(path, bytes);
  const auto reader = TraceReader::open(path);
  ASSERT_FALSE(reader.has_value());
  EXPECT_NE(reader.error().find("offset"), std::string::npos) << reader.error();
  const auto loaded = load_trace(path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().find("offset"), std::string::npos) << loaded.error();
}

TEST(TraceV3, RejectsTruncatedFooter) {
  CorruptionCase c = valid_v3("v3_trunc_src.trc");
  c.bytes.resize(c.bytes.size() - 10);
  expect_rejected_with_offset(tmp_path("v3_trunc.trc"), c.bytes);
}

TEST(TraceV3, RejectsOutOfRangeBlockOffset) {
  CorruptionCase c = valid_v3("v3_badoff_src.trc");
  // Second index entry: point its block offset past the file end.
  put_u64(c.bytes, c.footer_offset + 24, c.bytes.size() + 4096);
  expect_rejected_with_offset(tmp_path("v3_badoff.trc"), c.bytes);
}

TEST(TraceV3, RejectsEventCountMismatch) {
  CorruptionCase c = valid_v3("v3_badcount_src.trc");
  // First index entry's count field no longer sums to the header total.
  put_u64(c.bytes, c.footer_offset + 8, get_u64(c.bytes, c.footer_offset + 8) + 3);
  expect_rejected_with_offset(tmp_path("v3_badcount.trc"), c.bytes);
}

TEST(TraceV3, RejectsIndexPastEof) {
  CorruptionCase c = valid_v3("v3_pasteof_src.trc");
  // Trailer's footer offset points beyond the end of the file.
  put_u64(c.bytes, c.bytes.size() - 16, c.bytes.size() + 100);
  expect_rejected_with_offset(tmp_path("v3_pasteof.trc"), c.bytes);
}

TEST(TraceV3, RejectsTruncationAtEveryPrefix) {
  const CorruptionCase c = valid_v3("v3_prefix_src.trc");
  const std::string path = tmp_path("v3_prefix.trc");
  // A coarse sweep plus the sensitive tail region byte by byte.
  for (std::size_t cut = 0; cut < c.bytes.size();
       cut += (cut + 64 < c.footer_offset ? 997 : 1)) {
    write_bytes(path, c.bytes.substr(0, cut));
    EXPECT_FALSE(TraceReader::open(path).has_value()) << "prefix " << cut;
    EXPECT_FALSE(load_trace(path).has_value()) << "prefix " << cut;
  }
}

// ---------------------------------------------------------------------------
// Compressed blocks (v3 + per-block kBlockCompressedFlag). Decoded data
// must be bit-identical to the uncompressed file through every consumer,
// and the uncompressed writer's bytes must not change at all.

std::string v3c_file_bytes(const std::string& path, const Trace& t,
                           const bom::ModuleTable& modules, std::uint64_t block_events) {
  TraceWriteOptions opt;
  opt.indexed = true;
  opt.block_events = block_events;
  opt.compress = true;
  EXPECT_TRUE(save_trace(path, t, modules, opt).ok());
  return read_bytes(path);
}

TEST(TraceV3Compressed, RoundTripIsBitIdenticalToUncompressed) {
  const Trace original = synth_trace(10'000, 42);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("v3c_roundtrip.trc");
  const std::string bytes = v3c_file_bytes(path, original, modules, 256);

  // Every index entry of an all-compressed file carries the flag bit and
  // a masked count that still sums to the header total.
  const std::uint64_t entry_count = get_u64(bytes, bytes.size() - 24);
  const std::uint64_t footer_offset = get_u64(bytes, bytes.size() - 16);
  ASSERT_GE(entry_count, 2u);
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    const std::uint64_t raw = get_u64(bytes, footer_offset + i * 24 + 8);
    EXPECT_NE(raw & codec::kBlockCompressedFlag, 0u) << "entry " << i;
    total += raw & codec::kBlockCountMask;
  }
  EXPECT_EQ(total, original.events.size());

  const auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(v1_bytes(loaded->trace, loaded->modules), v1_bytes(original, modules));
}

TEST(TraceV3Compressed, CompressedFileIsSmaller) {
  const Trace t = synth_trace(20'000, 17);
  const std::string plain = v3_file_bytes(tmp_path("v3c_size_u.trc"), t, test_modules(), 4096);
  const std::string packed = v3c_file_bytes(tmp_path("v3c_size_c.trc"), t, test_modules(), 4096);
  EXPECT_LT(packed.size(), plain.size());
}

TEST(TraceV3Compressed, UncompressedWriterBytesAreUnchangedByTheOption) {
  // compress=false must be byte-for-byte the PR-4 v3 format: the option
  // defaulting off cannot perturb existing files.
  const Trace t = synth_trace(5'000, 3);
  TraceWriteOptions off;
  off.indexed = true;
  off.block_events = 300;
  off.compress = false;
  const std::string path = tmp_path("v3c_off.trc");
  ASSERT_TRUE(save_trace(path, t, test_modules(), off).ok());
  EXPECT_EQ(read_bytes(path), v3_file_bytes(tmp_path("v3c_off_ref.trc"), t, test_modules(), 300));
}

TEST(TraceV3Compressed, ReaderDecodesBlocksAndAllThreadCounts) {
  const Trace original = synth_trace(20'000, 99);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("v3c_threads.trc");
  v3c_file_bytes(path, original, modules, 512);

  const auto reader = TraceReader::open(path);
  ASSERT_TRUE(reader.has_value()) << reader.error();
  EXPECT_EQ(reader->event_count(), original.events.size());

  std::vector<Event> block0;
  ASSERT_TRUE(reader->decode_block(0, block0).ok());
  ASSERT_EQ(block0.size(), 512u);
  EXPECT_EQ(event_time(block0.front()), event_time(original.events.front()));

  const std::string expected = v1_bytes(original, modules);
  for (const int threads : {1, 2, 4, 7}) {
    const auto bundle = reader->read_all(threads);
    ASSERT_TRUE(bundle.has_value()) << "threads=" << threads << ": " << bundle.error();
    EXPECT_EQ(v1_bytes(bundle->trace, bundle->modules), expected) << "threads=" << threads;
  }
}

TEST(TraceV3Compressed, BlockWriterIsByteIdenticalToBulkWriter) {
  const Trace t = synth_trace(5'000, 3);
  const bom::ModuleTable modules = test_modules();
  const std::string bulk = v3c_file_bytes(tmp_path("v3c_bulk.trc"), t, modules, 300);

  const std::string stream_path = tmp_path("v3c_stream.trc");
  auto writer = TraceBlockWriter::create(stream_path, t.stacks, t.functions, modules,
                                         t.sample_rate_hz, 300, /*compress=*/true);
  ASSERT_TRUE(writer.has_value()) << writer.error();
  for (const Event& e : t.events) ASSERT_TRUE(writer->add(e).ok());
  ASSERT_TRUE(writer->finish().ok());
  EXPECT_EQ(read_bytes(stream_path), bulk);
}

TEST(TraceV3Compressed, StreamerVisitsEveryEventInOrder) {
  const Trace original = synth_trace(4'000, 11);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("v3c_streamer.trc");
  v3c_file_bytes(path, original, modules, 128);

  const auto streamer = TraceStreamer::open(path);
  ASSERT_TRUE(streamer.has_value()) << streamer.error();
  Trace streamed;
  streamed.sample_rate_hz = streamer->sample_rate_hz();
  streamed.stacks = streamer->stacks();
  streamed.functions = streamer->functions();
  ASSERT_TRUE(
      streamer->for_each([&streamed](const Event& e) { streamed.events.push_back(e); }).ok());
  EXPECT_EQ(v1_bytes(streamed, streamer->modules()), v1_bytes(original, modules));
}

TEST(TraceV3Compressed, RejectsCompressOnNonIndexedFormats) {
  const Trace t = synth_trace(100, 1);
  for (const bool compact : {false, true}) {
    TraceWriteOptions opt;
    opt.compact = compact;
    opt.compress = true;
    std::stringstream ss;
    const Status st = write_trace(ss, t, test_modules(), opt);
    ASSERT_FALSE(st.ok()) << (compact ? "v2" : "v1");
    EXPECT_NE(st.error().find("v3"), std::string::npos) << st.error();
  }
}

TEST(TraceV3Compressed, RejectsBodyCountDisagreeingWithIndex) {
  const Trace t = synth_trace(2'000, 21);
  const std::string path = tmp_path("v3c_badbody_src.trc");
  std::string bytes = v3c_file_bytes(path, t, test_modules(), 128);
  const std::uint64_t footer_offset = get_u64(bytes, bytes.size() - 16);
  // Mutate the first block body's own declared count (varint at offset
  // events_offset+2, value 128 = 2-byte varint whose low byte we bump).
  const std::uint64_t block0 = get_u64(bytes, footer_offset);
  ASSERT_EQ(static_cast<unsigned char>(bytes[block0]), codec::kCompressedBlockMagic);
  bytes[block0 + 2] = static_cast<char>(bytes[block0 + 2] ^ 0x01);
  const std::string bad_path = tmp_path("v3c_badbody.trc");
  write_bytes(bad_path, bytes);
  // The index itself is intact, so open succeeds; the disagreement is
  // caught when the block body is decoded — by the block API, the bulk
  // loader and the streamer alike, always with an offset.
  const auto reader = TraceReader::open(bad_path);
  ASSERT_TRUE(reader.has_value()) << reader.error();
  std::vector<Event> block0_events;
  const Status st = reader->decode_block(0, block0_events);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().find("offset"), std::string::npos) << st.error();
  const auto loaded = load_trace(bad_path);
  ASSERT_FALSE(loaded.has_value());
  EXPECT_NE(loaded.error().find("offset"), std::string::npos) << loaded.error();
  const auto streamer = TraceStreamer::open(bad_path);
  ASSERT_TRUE(streamer.has_value()) << streamer.error();
  EXPECT_FALSE(streamer->for_each([](const Event&) {}).ok());
}

TEST(TraceV3Compressed, RejectsTruncationAtEveryPrefix) {
  const Trace t = synth_trace(2'000, 21);
  std::string bytes = v3c_file_bytes(tmp_path("v3c_prefix_src.trc"), t, test_modules(), 128);
  const std::uint64_t footer_offset = get_u64(bytes, bytes.size() - 16);
  const std::string path = tmp_path("v3c_prefix.trc");
  for (std::size_t cut = 0; cut < bytes.size();
       cut += (cut + 64 < footer_offset ? 499 : 1)) {
    write_bytes(path, bytes.substr(0, cut));
    EXPECT_FALSE(TraceReader::open(path).has_value()) << "prefix " << cut;
    EXPECT_FALSE(load_trace(path).has_value()) << "prefix " << cut;
  }
}

// ---------------------------------------------------------------------------
// Streaming memory bound (satellite: flat peak RSS however large the
// trace). VmHWM is a process-wide high-water mark, so the assertion is an
// honest upper bound: streaming a trace whose decoded form would be tens
// of MB must not raise the peak by more than a few chunk buffers.

std::size_t vm_hwm_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(std::strtoul(line.c_str() + 6, nullptr, 10));
    }
  }
  return 0;
}

TEST(TraceV3, StreamingKeepsPeakRssFlat) {
  if (vm_hwm_kb() == 0) GTEST_SKIP() << "no /proc/self/status VmHWM on this platform";

  const std::string path = tmp_path("v3_flat_rss.trc");
  Trace header_only;
  header_only.sample_rate_hz = 1000.0;
  const StackId s0 = header_only.stacks.intern(bom::CallStack{{{0, 0x10}}});
  const StackId s1 = header_only.stacks.intern(bom::CallStack{{{0, 0x20}, {1, 0x8}}});
  const std::uint32_t fn = header_only.functions.intern("synth");

  // 1.5M events are generated straight into the block writer: neither the
  // write nor the read side ever materializes the event vector (decoded it
  // would be > 70 MB).
  constexpr std::size_t kEvents = 1'500'000;
  auto writer = TraceBlockWriter::create(path, header_only.stacks, header_only.functions,
                                         test_modules(), 1000.0);
  ASSERT_TRUE(writer.has_value()) << writer.error();
  {
    Status status;
    synth_events(kEvents, 5, s0, s1, fn, [&](const Event& e) {
      if (status.ok()) status = writer->add(e);
    });
    ASSERT_TRUE(status.ok()) << status.error();
  }
  ASSERT_TRUE(writer->finish().ok());
  ASSERT_EQ(writer->events_written(), kEvents);

  const std::size_t hwm_before_kb = vm_hwm_kb();
  const auto streamer = TraceStreamer::open(path);
  ASSERT_TRUE(streamer.has_value()) << streamer.error();
  std::size_t seen = 0;
  ASSERT_TRUE(streamer->for_each([&seen](const Event&) { ++seen; }).ok());
  EXPECT_EQ(seen, kEvents);

  const std::size_t hwm_after_kb = vm_hwm_kb();
  EXPECT_LE(hwm_after_kb - hwm_before_kb, 16u * 1024)
      << "streaming raised peak RSS by " << (hwm_after_kb - hwm_before_kb) << " KiB";
}

}  // namespace
}  // namespace ecohmem::trace
