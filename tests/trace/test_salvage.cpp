// Salvage-mode trace recovery and the deterministic corruption sweep.
//
// The sweep (SalvageSweep) drives faultinject::schedule over a v3 trace
// and asserts the fail-soft contract for every injected fault:
//   - salvage readers return without crashing,
//   - the manifest accounts for every byte (bytes_conserved) and — when
//     the index was usable — every declared event (recovered + dropped
//     == declared),
//   - parallel read_all is bit-identical to serial,
//   - TraceReader and TraceStreamer agree on manifest and events,
//   - strict reads of the same corrupt input still fail loudly.
//
// The targeted tests cover the satellite cases: truncation mid-chunk
// (v1/v2) and mid-block (v3) through the streamer, and failing-istream
// (badbit mid-read, not EOF) through the slurp paths.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "ecohmem/common/faultinject.hpp"
#include "ecohmem/trace/codec.hpp"
#include "ecohmem/trace/events.hpp"
#include "ecohmem/trace/trace_file.hpp"
#include "ecohmem/trace/trace_reader.hpp"

namespace ecohmem::trace {
namespace {

std::string tmp_path(const std::string& name) { return ::testing::TempDir() + name; }

bom::ModuleTable test_modules() {
  bom::ModuleTable mt;
  mt.add_module("a.x", 1 << 20, 2 << 20);
  mt.add_module("b.so", 1 << 20, 1 << 20);
  return mt;
}

/// Deterministic event generator (same recipe as test_trace_v3).
void synth_events(std::size_t n, std::uint64_t seed, StackId s0, StackId s1, std::uint32_t fn,
                  const std::function<void(const Event&)>& sink) {
  std::uint64_t x = seed * 2654435761ull + 1;
  const auto rnd = [&x] {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 33;
  };
  Ns time = 0;
  std::uint64_t next_id = 1;
  std::uint64_t next_addr = 0x100000;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> live;  // object id, address
  for (std::size_t i = 0; i < n; ++i) {
    time += rnd() % 50;
    switch (rnd() % 8) {
      case 0:
      case 1: {
        const Bytes size = 64 + rnd() % 8192;
        sink(AllocEvent{time, next_id, next_addr, size, (i % 2) != 0 ? s0 : s1,
                        AllocKind::kMalloc});
        live.emplace_back(next_id, next_addr);
        next_addr += size + 64;
        ++next_id;
        break;
      }
      case 2:
        if (live.empty()) {
          sink(MarkerEvent{time, fn, true});
        } else {
          const std::size_t k = rnd() % live.size();
          sink(FreeEvent{time, live[k].first});
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
        }
        break;
      case 3:
        sink(UncoreBwEvent{time, 1000 + rnd() % 1000, static_cast<double>(rnd() % 100) * 0.25,
                           static_cast<double>(rnd() % 50) * 0.25});
        break;
      default:
        sink(SampleEvent{time,
                         live.empty() ? 0x10 : live[rnd() % live.size()].second + rnd() % 64,
                         1.0 + static_cast<double>(rnd() % 8) * 0.5,
                         static_cast<double>(rnd() % 400), rnd() % 4 == 0, fn});
    }
  }
}

Trace synth_trace(std::size_t n, std::uint64_t seed) {
  Trace t;
  t.sample_rate_hz = 1000.0;
  const StackId s0 = t.stacks.intern(bom::CallStack{{{0, 0x10}}});
  const StackId s1 = t.stacks.intern(bom::CallStack{{{0, 0x20}, {1, 0x8}}});
  const std::uint32_t fn = t.functions.intern("synth");
  synth_events(n, seed, s0, s1, fn, [&t](const Event& e) { t.events.push_back(e); });
  return t;
}

/// Canonical byte form for exact event-stream equality (the v1 plain
/// encoding is injective over header tables + events).
std::string v1_bytes(const Trace& t, const bom::ModuleTable& modules) {
  std::stringstream ss;
  EXPECT_TRUE(write_trace(ss, t, modules).ok());
  return ss.str();
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string v3_file_bytes(const std::string& path, const Trace& t,
                          const bom::ModuleTable& modules, std::uint64_t block_events,
                          bool compress = false) {
  TraceWriteOptions opt;
  opt.indexed = true;
  opt.block_events = block_events;
  opt.compress = compress;
  EXPECT_TRUE(save_trace(path, t, modules, opt).ok());
  return read_bytes(path);
}

std::vector<unsigned char> to_vec(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string to_str(const std::vector<unsigned char>& v) {
  return {v.begin(), v.end()};
}

/// Absolute offset of the first event byte (where the header ends).
std::uint64_t events_offset_of(const std::string& bytes) {
  codec::ByteReader br(reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size(), 0);
  const auto h = codec::decode_header(br);
  EXPECT_TRUE(h.has_value()) << h.error();
  return h->events_offset;
}

TraceOpenOptions salvage_opts() {
  TraceOpenOptions o;
  o.salvage = true;
  return o;
}

/// Streams every event out of a salvage-mode streamer and re-encodes the
/// result in the canonical v1 form for equality checks.
Expected<std::string> streamer_v1_bytes(const TraceStreamer& s) {
  Trace t;
  t.sample_rate_hz = s.sample_rate_hz();
  t.stacks = s.stacks();
  t.functions = s.functions();
  if (const auto st = s.for_each([&t](const Event& e) { t.events.push_back(e); }); !st.ok()) {
    return unexpected(st.error());
  }
  return v1_bytes(t, s.modules());
}

/// Reader and streamer must classify identical bytes identically.
void expect_manifest_eq(const SalvageManifest& a, const SalvageManifest& b) {
  EXPECT_EQ(a.salvaged, b.salvaged);
  EXPECT_EQ(a.index_usable, b.index_usable);
  EXPECT_EQ(a.sequential_scan, b.sequential_scan);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.file_bytes, b.file_bytes);
  EXPECT_EQ(a.header_bytes, b.header_bytes);
  EXPECT_EQ(a.kept_bytes, b.kept_bytes);
  EXPECT_EQ(a.dropped_bytes, b.dropped_bytes);
  EXPECT_EQ(a.index_bytes, b.index_bytes);
  EXPECT_EQ(a.blocks_declared, b.blocks_declared);
  EXPECT_EQ(a.blocks_kept, b.blocks_kept);
  EXPECT_EQ(a.blocks_dropped, b.blocks_dropped);
  EXPECT_EQ(a.events_declared, b.events_declared);
  EXPECT_EQ(a.events_recovered, b.events_recovered);
  EXPECT_EQ(a.events_dropped, b.events_dropped);
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (std::size_t i = 0; i < a.losses.size(); ++i) {
    EXPECT_EQ(a.losses[i].block, b.losses[i].block) << "loss " << i;
    EXPECT_EQ(a.losses[i].file_offset, b.losses[i].file_offset) << "loss " << i;
    EXPECT_EQ(a.losses[i].byte_size, b.losses[i].byte_size) << "loss " << i;
    EXPECT_EQ(a.losses[i].events_declared, b.losses[i].events_declared) << "loss " << i;
    EXPECT_EQ(a.losses[i].first_error_offset, b.losses[i].first_error_offset) << "loss " << i;
    EXPECT_EQ(a.losses[i].reason, b.losses[i].reason) << "loss " << i;
  }
  EXPECT_EQ(a.summary(), b.summary());
}

// --------------------------------------------------------------------------
// Targeted salvage behavior.

TEST(SalvageReader, CleanTraceSalvageMatchesStrictRead) {
  const Trace original = synth_trace(5'000, 11);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("salv_clean.trc");
  v3_file_bytes(path, original, modules, 256);

  auto strict = TraceReader::open(path);
  ASSERT_TRUE(strict.has_value()) << strict.error();
  EXPECT_FALSE(strict->manifest().salvaged);

  auto reader = TraceReader::open(path, salvage_opts());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  const SalvageManifest& m = reader->manifest();
  EXPECT_TRUE(m.salvaged);
  EXPECT_TRUE(m.index_usable);
  EXPECT_FALSE(m.sequential_scan);
  EXPECT_EQ(m.blocks_dropped, 0u);
  EXPECT_EQ(m.events_declared, original.events.size());
  EXPECT_EQ(m.events_recovered, original.events.size());
  EXPECT_DOUBLE_EQ(m.coverage(), 1.0);
  EXPECT_TRUE(m.bytes_conserved());
  EXPECT_NE(m.summary().find("salvage: kept"), std::string::npos);

  const auto bundle = reader->read_all();
  ASSERT_TRUE(bundle.has_value()) << bundle.error();
  EXPECT_EQ(v1_bytes(bundle->trace, bundle->modules), v1_bytes(original, modules));
  EXPECT_TRUE(bundle->coverage.salvaged);
  EXPECT_EQ(bundle->coverage.events_seen, original.events.size());
  EXPECT_EQ(bundle->coverage.events_declared, original.events.size());
  EXPECT_DOUBLE_EQ(bundle->coverage.fraction(), 1.0);
}

TEST(SalvageReader, CorruptedBlockDropsExactlyThatBlock) {
  const std::size_t kEvents = 4'096;
  const std::uint64_t kBlock = 256;
  const Trace original = synth_trace(kEvents, 23);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("salv_oneblock.trc");
  const std::string bytes = v3_file_bytes(path, original, modules, kBlock);

  const auto lm = faultinject::landmarks_v3(to_vec(bytes), events_offset_of(bytes));
  ASSERT_EQ(lm.block_offsets.size(), kEvents / kBlock);

  // Garble the interior of block 5's body.
  faultinject::Fault f;
  f.kind = faultinject::FaultKind::kGarble;
  f.offset = (lm.block_offsets[5] + lm.block_offsets[6]) / 2;
  f.length = 16;
  f.seed = 99;
  write_bytes(path, to_str(faultinject::apply(to_vec(bytes), f)));

  // Strict open validates only the index structure; the body damage must
  // surface as an offset-bearing error when the events are decoded.
  const auto strict = TraceReader::open(path);
  ASSERT_TRUE(strict.has_value()) << strict.error();
  const auto strict_read = strict->read_all();
  ASSERT_FALSE(strict_read.has_value());
  EXPECT_NE(strict_read.error().find("offset"), std::string::npos) << strict_read.error();

  auto reader = TraceReader::open(path, salvage_opts());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  const SalvageManifest& m = reader->manifest();
  EXPECT_TRUE(m.index_usable);
  EXPECT_EQ(m.blocks_declared, kEvents / kBlock);
  EXPECT_EQ(m.blocks_dropped, 1u);
  ASSERT_EQ(m.losses.size(), 1u);
  EXPECT_EQ(m.losses[0].block, 5u);
  EXPECT_EQ(m.losses[0].events_declared, kBlock);
  EXPECT_GE(m.losses[0].first_error_offset, lm.block_offsets[5]);
  EXPECT_LT(m.losses[0].first_error_offset, lm.block_offsets[6]);
  EXPECT_FALSE(m.losses[0].reason.empty());
  EXPECT_EQ(m.events_recovered, kEvents - kBlock);
  EXPECT_EQ(m.events_recovered + m.events_dropped, m.events_declared);
  EXPECT_TRUE(m.bytes_conserved());

  // The recovered stream is exactly the original minus block 5's slice.
  Trace expected;
  expected.sample_rate_hz = original.sample_rate_hz;
  expected.stacks = original.stacks;
  expected.functions = original.functions;
  for (std::size_t i = 0; i < kEvents; ++i) {
    if (i / kBlock != 5) expected.events.push_back(original.events[i]);
  }
  const auto bundle = reader->read_all();
  ASSERT_TRUE(bundle.has_value()) << bundle.error();
  EXPECT_EQ(v1_bytes(bundle->trace, bundle->modules), v1_bytes(expected, modules));
  EXPECT_EQ(bundle->coverage.events_seen, kEvents - kBlock);
  EXPECT_EQ(bundle->coverage.events_declared, kEvents);
}

TEST(SalvageReader, TruncatedTrailerFallsBackToSequentialScan) {
  // Single block, so the sequential scan sees the same delta base the
  // writer used and the recovered events are bit-identical.
  const Trace original = synth_trace(3'000, 31);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("salv_trailer.trc");
  const std::string bytes = v3_file_bytes(path, original, modules, 1u << 20);

  write_bytes(path, bytes.substr(0, bytes.size() - 10));  // destroy the trailer

  const auto strict = TraceReader::open(path);
  ASSERT_FALSE(strict.has_value());
  EXPECT_NE(strict.error().find("offset"), std::string::npos) << strict.error();

  auto reader = TraceReader::open(path, salvage_opts());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  const SalvageManifest& m = reader->manifest();
  EXPECT_FALSE(m.index_usable);
  EXPECT_TRUE(m.sequential_scan);
  EXPECT_EQ(m.events_recovered, original.events.size());
  EXPECT_GT(m.dropped_bytes, 0u);  // the orphaned footer remnant
  EXPECT_TRUE(m.bytes_conserved());

  const auto bundle = reader->read_all();
  ASSERT_TRUE(bundle.has_value()) << bundle.error();
  EXPECT_EQ(v1_bytes(bundle->trace, bundle->modules), v1_bytes(original, modules));
}

TEST(SalvageReader, TruncatedMidBlockRecoversPrefix) {
  const std::size_t kEvents = 4'096;
  const std::uint64_t kBlock = 256;
  const Trace original = synth_trace(kEvents, 47);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("salv_midblock.trc");
  const std::string bytes = v3_file_bytes(path, original, modules, kBlock);

  const auto lm = faultinject::landmarks_v3(to_vec(bytes), events_offset_of(bytes));
  write_bytes(path, bytes.substr(0, lm.block_offsets[3] + 10));  // mid block 3

  const auto strict = TraceReader::open(path);
  ASSERT_FALSE(strict.has_value());
  EXPECT_NE(strict.error().find("offset"), std::string::npos) << strict.error();

  auto reader = TraceReader::open(path, salvage_opts());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  const SalvageManifest& m = reader->manifest();
  EXPECT_TRUE(m.sequential_scan);
  EXPECT_GE(m.events_recovered, 3 * kBlock);  // everything before the cut
  EXPECT_LT(m.events_recovered, kEvents);
  EXPECT_GT(m.events_dropped, 0u);
  EXPECT_LT(m.coverage(), 1.0);
  EXPECT_TRUE(m.bytes_conserved());
  const auto bundle = reader->read_all();
  ASSERT_TRUE(bundle.has_value()) << bundle.error();
  EXPECT_EQ(bundle->trace.events.size(), m.events_recovered);
}

TEST(SalvageReader, CorruptHeaderStillFails) {
  const Trace original = synth_trace(500, 3);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("salv_header.trc");
  std::string bytes = v3_file_bytes(path, original, modules, 256);

  bytes[3] ^= 0x40;  // break the magic: nothing is recoverable
  write_bytes(path, bytes);

  const auto reader = TraceReader::open(path, salvage_opts());
  ASSERT_FALSE(reader.has_value());
  EXPECT_FALSE(reader.error().empty());
}

TEST(SalvageReader, ParallelSalvageReadMatchesSerial) {
  const Trace original = synth_trace(8'000, 59);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("salv_parallel.trc");
  const std::string bytes = v3_file_bytes(path, original, modules, 512);

  const auto lm = faultinject::landmarks_v3(to_vec(bytes), events_offset_of(bytes));
  faultinject::Fault f;
  f.kind = faultinject::FaultKind::kBitFlip;
  f.offset = lm.block_offsets[2] + 3;
  f.bit = 5;
  write_bytes(path, to_str(faultinject::apply(to_vec(bytes), f)));

  auto reader = TraceReader::open(path, salvage_opts());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  const auto serial = reader->read_all(1);
  ASSERT_TRUE(serial.has_value()) << serial.error();
  for (const int threads : {2, 4, 8}) {
    const auto parallel = reader->read_all(threads);
    ASSERT_TRUE(parallel.has_value()) << parallel.error();
    EXPECT_EQ(v1_bytes(parallel->trace, parallel->modules),
              v1_bytes(serial->trace, serial->modules))
        << "threads=" << threads;
  }
}

// --------------------------------------------------------------------------
// Streamer parity and the truncation satellites.

TEST(SalvageStreamer, MatchesReaderOnDamagedTrace) {
  const Trace original = synth_trace(6'000, 67);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("salv_parity.trc");
  const std::string bytes = v3_file_bytes(path, original, modules, 512);

  const auto lm = faultinject::landmarks_v3(to_vec(bytes), events_offset_of(bytes));
  faultinject::Fault f;
  f.kind = faultinject::FaultKind::kGarble;
  f.offset = lm.block_offsets[7] + 1;
  f.length = 8;
  f.seed = 5;
  write_bytes(path, to_str(faultinject::apply(to_vec(bytes), f)));

  auto reader = TraceReader::open(path, salvage_opts());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  auto streamer = TraceStreamer::open(path, salvage_opts());
  ASSERT_TRUE(streamer.has_value()) << streamer.error();

  expect_manifest_eq(reader->manifest(), streamer->manifest());

  const auto bundle = reader->read_all();
  ASSERT_TRUE(bundle.has_value()) << bundle.error();
  const auto streamed = streamer_v1_bytes(*streamer);
  ASSERT_TRUE(streamed.has_value()) << streamed.error();
  EXPECT_EQ(*streamed, v1_bytes(bundle->trace, bundle->modules));
  EXPECT_EQ(streamer->event_count(), reader->event_count());
}

TEST(SalvageStreamer, TruncatedMidChunkV1AndV2) {
  const Trace original = synth_trace(3'000, 71);
  const bom::ModuleTable modules = test_modules();
  for (const bool compact : {false, true}) {
    TraceWriteOptions opt;
    opt.compact = compact;
    std::stringstream ss;
    ASSERT_TRUE(write_trace(ss, original, modules, opt).ok());
    const std::string bytes = ss.str();
    const std::string path =
        tmp_path(compact ? "salv_trunc_v2.trc" : "salv_trunc_v1.trc");
    // Cut deep inside the event section, far past the header.
    write_bytes(path, bytes.substr(0, bytes.size() - bytes.size() / 3));

    // Strict streamer: open sees a valid header; the walk must fail with
    // an offset-bearing error, not stop silently at the cut.
    auto strict = TraceStreamer::open(path);
    ASSERT_TRUE(strict.has_value()) << strict.error();
    const Status walked = strict->for_each([](const Event&) {});
    ASSERT_FALSE(walked.ok());
    EXPECT_NE(walked.error().find("offset"), std::string::npos) << walked.error();

    // Salvage streamer: the decodable prefix comes back, the manifest
    // charges the rest, and the mmap reader agrees byte for byte.
    auto streamer = TraceStreamer::open(path, salvage_opts());
    ASSERT_TRUE(streamer.has_value()) << streamer.error();
    const SalvageManifest& m = streamer->manifest();
    EXPECT_TRUE(m.sequential_scan);
    EXPECT_GT(m.events_recovered, 0u);
    EXPECT_LT(m.events_recovered, original.events.size());
    EXPECT_TRUE(m.bytes_conserved());

    auto reader = TraceReader::open(path, salvage_opts());
    ASSERT_TRUE(reader.has_value()) << reader.error();
    expect_manifest_eq(reader->manifest(), streamer->manifest());
    const auto bundle = reader->read_all();
    ASSERT_TRUE(bundle.has_value()) << bundle.error();
    const auto streamed = streamer_v1_bytes(*streamer);
    ASSERT_TRUE(streamed.has_value()) << streamed.error();
    EXPECT_EQ(*streamed, v1_bytes(bundle->trace, bundle->modules));
  }
}

TEST(SalvageStreamer, TruncatedMidBlockV3) {
  const std::size_t kEvents = 4'096;
  const std::uint64_t kBlock = 512;
  const Trace original = synth_trace(kEvents, 83);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("salv_trunc_v3.trc");
  const std::string bytes = v3_file_bytes(path, original, modules, kBlock);

  const auto lm = faultinject::landmarks_v3(to_vec(bytes), events_offset_of(bytes));
  write_bytes(path, bytes.substr(0, lm.block_offsets[4] + 7));

  const auto strict = TraceStreamer::open(path);
  ASSERT_FALSE(strict.has_value());
  EXPECT_NE(strict.error().find("offset"), std::string::npos) << strict.error();

  auto streamer = TraceStreamer::open(path, salvage_opts());
  ASSERT_TRUE(streamer.has_value()) << streamer.error();
  EXPECT_TRUE(streamer->manifest().sequential_scan);
  EXPECT_GT(streamer->manifest().events_recovered, 0u);
  EXPECT_TRUE(streamer->manifest().bytes_conserved());

  auto reader = TraceReader::open(path, salvage_opts());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  expect_manifest_eq(reader->manifest(), streamer->manifest());
}

// --------------------------------------------------------------------------
// Failing-istream satellites: badbit mid-read is an error, never EOF.

TEST(SalvageStreamFaults, FromStreamReportsDeviceErrorNotEof) {
  const Trace original = synth_trace(2'000, 13);
  const bom::ModuleTable modules = test_modules();
  TraceWriteOptions opt;
  opt.compact = true;
  std::stringstream ss;
  ASSERT_TRUE(write_trace(ss, original, modules, opt).ok());
  const std::string bytes = ss.str();

  faultinject::FailingStream failing(bytes, bytes.size() / 2);
  const auto reader = TraceReader::from_stream(failing);
  ASSERT_FALSE(reader.has_value());
  EXPECT_NE(reader.error().find("stream read error"), std::string::npos) << reader.error();

  // fail_at past the end never fires: the whole trace reads cleanly.
  faultinject::FailingStream healthy(bytes, bytes.size() + 1);
  const auto ok = TraceReader::from_stream(healthy);
  ASSERT_TRUE(ok.has_value()) << ok.error();
  EXPECT_EQ(ok->event_count(), original.events.size());
}

TEST(SalvageStreamFaults, ReadTraceReportsDeviceErrorNotEof) {
  const Trace original = synth_trace(2'000, 17);
  const bom::ModuleTable modules = test_modules();
  std::stringstream ss;
  ASSERT_TRUE(write_trace(ss, original, modules).ok());
  const std::string bytes = ss.str();

  faultinject::FailingStream failing(bytes, bytes.size() - 64);
  const auto bundle = read_trace(failing);
  ASSERT_FALSE(bundle.has_value());
  EXPECT_NE(bundle.error().find("stream read error"), std::string::npos) << bundle.error();
}

// --------------------------------------------------------------------------
// Fault-injection harness properties.

TEST(SalvageFaultInject, ScheduleIsDeterministicAndSeedSensitive) {
  const Trace original = synth_trace(4'000, 29);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("salv_sched.trc");
  const std::string bytes = v3_file_bytes(path, original, modules, 512);
  const auto lm = faultinject::landmarks_v3(to_vec(bytes), events_offset_of(bytes));
  ASSERT_GT(lm.trailer_offset, 0u);
  ASSERT_FALSE(lm.block_offsets.empty());

  const auto a = faultinject::schedule(lm, 1234, 32);
  const auto b = faultinject::schedule(lm, 1234, 32);
  ASSERT_EQ(a.size(), 32u);
  ASSERT_EQ(b.size(), 32u);
  bool differs_from_other_seed = false;
  const auto c = faultinject::schedule(lm, 1235, 32);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].offset, b[i].offset) << i;
    EXPECT_EQ(a[i].bit, b[i].bit) << i;
    EXPECT_EQ(a[i].length, b[i].length) << i;
    EXPECT_EQ(a[i].label, b[i].label) << i;
    EXPECT_LT(a[i].offset, lm.file_size) << i;
    differs_from_other_seed =
        differs_from_other_seed || a[i].offset != c[i].offset || a[i].kind != c[i].kind;
  }
  EXPECT_TRUE(differs_from_other_seed);
}

TEST(SalvageFaultInject, ApplySemantics) {
  const std::vector<unsigned char> bytes{0, 1, 2, 3, 4, 5, 6, 7};

  faultinject::Fault flip;
  flip.kind = faultinject::FaultKind::kBitFlip;
  flip.offset = 3;
  flip.bit = 2;
  auto flipped = faultinject::apply(bytes, flip);
  ASSERT_EQ(flipped.size(), bytes.size());
  EXPECT_EQ(flipped[3], bytes[3] ^ 4u);
  flipped[3] = bytes[3];
  EXPECT_EQ(flipped, bytes);  // exactly one byte changed

  faultinject::Fault cut;
  cut.kind = faultinject::FaultKind::kTruncate;
  cut.offset = 5;
  EXPECT_EQ(faultinject::apply(bytes, cut).size(), 5u);

  faultinject::Fault garble;
  garble.kind = faultinject::FaultKind::kGarble;
  garble.offset = 6;
  garble.length = 100;  // clamped to the end
  garble.seed = 7;
  EXPECT_EQ(faultinject::apply(bytes, garble).size(), bytes.size());

  faultinject::Fault past;
  past.kind = faultinject::FaultKind::kBitFlip;
  past.offset = 100;  // past-the-end faults are no-ops
  EXPECT_EQ(faultinject::apply(bytes, past), bytes);
}

// --------------------------------------------------------------------------
// The corruption sweep: the fail-soft contract under every scheduled
// fault. Deterministic — a failure names its seed and fault label.

void run_fault_sweep(const std::string& bytes, const std::string& path) {
  const auto lm = faultinject::landmarks_v3(to_vec(bytes), events_offset_of(bytes));
  ASSERT_FALSE(lm.block_offsets.empty());
  for (const std::uint64_t seed : {2026ull, 806ull}) {
    for (const auto& fault : faultinject::schedule(lm, seed, 24)) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " fault=" + fault.label +
                   " offset=" + std::to_string(fault.offset));
      write_bytes(path, to_str(faultinject::apply(to_vec(bytes), fault)));

      // Strict readers may reject or (for benign payload flips) accept,
      // but must never crash and never fail without a message.
      if (const auto strict = TraceReader::open(path); !strict.has_value()) {
        EXPECT_FALSE(strict.error().empty());
      }

      auto reader = TraceReader::open(path, salvage_opts());
      if (!reader.has_value()) {
        // Only header damage is allowed to defeat salvage entirely.
        EXPECT_FALSE(reader.error().empty());
        continue;
      }
      const SalvageManifest& m = reader->manifest();
      EXPECT_TRUE(m.salvaged);
      EXPECT_TRUE(m.bytes_conserved())
          << "header=" << m.header_bytes << " kept=" << m.kept_bytes
          << " dropped=" << m.dropped_bytes << " index=" << m.index_bytes
          << " file=" << m.file_bytes;
      if (m.index_usable) {
        EXPECT_EQ(m.events_recovered + m.events_dropped, m.events_declared);
        EXPECT_EQ(m.blocks_kept + m.blocks_dropped, m.blocks_declared);
      }
      for (const auto& loss : m.losses) {
        EXPECT_FALSE(loss.reason.empty());
      }

      const auto serial = reader->read_all(1);
      ASSERT_TRUE(serial.has_value()) << serial.error();
      EXPECT_EQ(serial->trace.events.size(), m.events_recovered);
      const auto parallel = reader->read_all(4);
      ASSERT_TRUE(parallel.has_value()) << parallel.error();
      EXPECT_EQ(v1_bytes(parallel->trace, parallel->modules),
                v1_bytes(serial->trace, serial->modules));

      auto streamer = TraceStreamer::open(path, salvage_opts());
      ASSERT_TRUE(streamer.has_value()) << streamer.error();
      expect_manifest_eq(reader->manifest(), streamer->manifest());
      const auto streamed = streamer_v1_bytes(*streamer);
      ASSERT_TRUE(streamed.has_value()) << streamed.error();
      EXPECT_EQ(*streamed, v1_bytes(serial->trace, serial->modules));
    }
  }
}

TEST(SalvageSweep, EveryInjectedFaultIsContainedAndAccounted) {
  const Trace original = synth_trace(6'000, 101);
  const std::string bytes =
      v3_file_bytes(tmp_path("salv_sweep_base.trc"), original, test_modules(), 512);
  run_fault_sweep(bytes, tmp_path("salv_sweep.trc"));
}

TEST(SalvageSweep, CompressedBlocksHonorTheSameContract) {
  // The same fault schedule over the same trace written with per-block
  // compression: a damaged compressed block is all-or-nothing (trial
  // decode either yields the whole block or drops it), but the fail-soft
  // accounting and reader/streamer parity must be identical in form.
  const Trace original = synth_trace(6'000, 101);
  const std::string bytes = v3_file_bytes(tmp_path("salv_sweepc_base.trc"), original,
                                          test_modules(), 512, /*compress=*/true);
  run_fault_sweep(bytes, tmp_path("salv_sweepc.trc"));
}

// --------------------------------------------------------------------------
// Targeted compressed-block salvage behavior.

TEST(SalvageReader, CompressedCorruptedBlockDropsExactlyThatBlock) {
  const std::size_t kEvents = 4'096;
  const std::uint64_t kBlock = 256;
  const Trace original = synth_trace(kEvents, 23);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("salv_c_oneblock.trc");
  const std::string bytes = v3_file_bytes(path, original, modules, kBlock, /*compress=*/true);

  const auto lm = faultinject::landmarks_v3(to_vec(bytes), events_offset_of(bytes));
  ASSERT_EQ(lm.block_offsets.size(), kEvents / kBlock);

  // Packed column payloads carry no redundancy, so mid-column garbling
  // can silently re-quantize values; what MUST fail is damage to the
  // block's own header — magic, layout, declared count or tag column.
  faultinject::Fault f;
  f.kind = faultinject::FaultKind::kGarble;
  f.offset = lm.block_offsets[5];
  f.length = 16;
  f.seed = 99;
  write_bytes(path, to_str(faultinject::apply(to_vec(bytes), f)));

  auto reader = TraceReader::open(path, salvage_opts());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  const SalvageManifest& m = reader->manifest();
  EXPECT_TRUE(m.index_usable);
  EXPECT_EQ(m.blocks_dropped, 1u);
  ASSERT_EQ(m.losses.size(), 1u);
  EXPECT_EQ(m.losses[0].block, 5u);
  EXPECT_EQ(m.losses[0].events_declared, kBlock);
  EXPECT_FALSE(m.losses[0].reason.empty());
  EXPECT_EQ(m.events_recovered, kEvents - kBlock);
  EXPECT_TRUE(m.bytes_conserved());

  Trace expected;
  expected.sample_rate_hz = original.sample_rate_hz;
  expected.stacks = original.stacks;
  expected.functions = original.functions;
  for (std::size_t i = 0; i < kEvents; ++i) {
    if (i / kBlock != 5) expected.events.push_back(original.events[i]);
  }
  const auto bundle = reader->read_all();
  ASSERT_TRUE(bundle.has_value()) << bundle.error();
  EXPECT_EQ(v1_bytes(bundle->trace, bundle->modules), v1_bytes(expected, modules));

  auto streamer = TraceStreamer::open(path, salvage_opts());
  ASSERT_TRUE(streamer.has_value()) << streamer.error();
  expect_manifest_eq(reader->manifest(), streamer->manifest());
  const auto streamed = streamer_v1_bytes(*streamer);
  ASSERT_TRUE(streamed.has_value()) << streamed.error();
  EXPECT_EQ(*streamed, v1_bytes(bundle->trace, bundle->modules));
}

TEST(SalvageReader, CompressedTraceWithoutIndexIsUnrecoverableButAccounted) {
  // With the trailer gone the sequential scan is the only fallback, and
  // it stops at the first compressed block's 0xEC byte — compressed
  // events are only reachable through the index (docs/robustness.md).
  // The manifest must still conserve bytes and agree across readers.
  const Trace original = synth_trace(3'000, 31);
  const bom::ModuleTable modules = test_modules();
  const std::string path = tmp_path("salv_c_trailer.trc");
  const std::string bytes =
      v3_file_bytes(path, original, modules, 1u << 20, /*compress=*/true);
  write_bytes(path, bytes.substr(0, bytes.size() - 10));

  auto reader = TraceReader::open(path, salvage_opts());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  const SalvageManifest& m = reader->manifest();
  EXPECT_FALSE(m.index_usable);
  EXPECT_TRUE(m.sequential_scan);
  EXPECT_EQ(m.events_recovered, 0u);
  EXPECT_TRUE(m.bytes_conserved());

  auto streamer = TraceStreamer::open(path, salvage_opts());
  ASSERT_TRUE(streamer.has_value()) << streamer.error();
  expect_manifest_eq(reader->manifest(), streamer->manifest());
}

}  // namespace
}  // namespace ecohmem::trace
