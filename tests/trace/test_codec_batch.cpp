// Bitwise contract of the batch compact decoder and the compressed block
// codec (docs/trace_format.md). The batch fast path must be
// indistinguishable from N scalar decode_event_compact calls — same
// events, same last_time evolution, same cursor, and the same error text
// on corrupt input — for every event kind mix and every tail size 0..7.

#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <string>
#include <vector>

#include "ecohmem/trace/codec.hpp"
#include "ecohmem/trace/events.hpp"

namespace ecohmem::trace::codec {
namespace {

// Deterministic splitmix64 so the value distribution (and therefore the
// varint widths the batch parser sees) is reproducible.
std::uint64_t mix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Events cycling through all five kinds with field widths spanning
// 1-byte to 10-byte varints and full-width doubles.
std::vector<Event> synth_events(std::size_t n, std::uint64_t seed,
                                std::uint32_t stack_count) {
  std::vector<Event> events;
  events.reserve(n);
  Ns t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Delta width varies from 0 to ~2^40 so batches mix short and long
    // varints; occasional zero keeps the repeated-timestamp path hot.
    t += mix(seed) >> (8 + (i % 5) * 8);
    switch (i % 5) {
      case 0:
        events.emplace_back(AllocEvent{t, mix(seed), mix(seed) >> (i % 64),
                                       mix(seed) >> 20,
                                       static_cast<StackId>(mix(seed) % stack_count),
                                       static_cast<AllocKind>(mix(seed) % 4)});
        break;
      case 1:
        events.emplace_back(FreeEvent{t, mix(seed) >> (i % 48)});
        break;
      case 2:
        events.emplace_back(SampleEvent{t, mix(seed) >> (i % 16),
                                        std::bit_cast<double>(mix(seed) >> 12),
                                        static_cast<double>(mix(seed) % 100'000),
                                        (mix(seed) & 1) != 0,
                                        static_cast<std::uint32_t>(mix(seed) % 64)});
        break;
      case 3:
        events.emplace_back(MarkerEvent{t, static_cast<std::uint32_t>(mix(seed) % 64),
                                        (mix(seed) & 1) != 0});
        break;
      default:
        events.emplace_back(UncoreBwEvent{t, mix(seed) >> 40,
                                          static_cast<double>(mix(seed)) * 1e-18,
                                          static_cast<double>(mix(seed)) * 1e-18});
        break;
    }
  }
  return events;
}

std::string encode_stream(const std::vector<Event>& events) {
  std::string out;
  Ns last = 0;
  for (const Event& e : events) encode_event_compact(out, e, last);
  return out;
}

// Bitwise comparison: doubles compare by bit pattern, not by value, so a
// quiet-NaN payload or signed zero surviving the codec is part of the
// contract.
::testing::AssertionResult events_bitwise_equal(const Event& a, const Event& b) {
  if (a.index() != b.index()) {
    return ::testing::AssertionFailure() << "kind " << a.index() << " vs " << b.index();
  }
  const auto bits = [](double d) { return std::bit_cast<std::uint64_t>(d); };
  if (const auto* x = std::get_if<AllocEvent>(&a)) {
    const auto& y = std::get<AllocEvent>(b);
    if (x->time == y.time && x->object_id == y.object_id && x->address == y.address &&
        x->size == y.size && x->stack == y.stack && x->kind == y.kind) {
      return ::testing::AssertionSuccess();
    }
  } else if (const auto* x2 = std::get_if<FreeEvent>(&a)) {
    const auto& y = std::get<FreeEvent>(b);
    if (x2->time == y.time && x2->object_id == y.object_id) {
      return ::testing::AssertionSuccess();
    }
  } else if (const auto* x3 = std::get_if<SampleEvent>(&a)) {
    const auto& y = std::get<SampleEvent>(b);
    if (x3->time == y.time && x3->address == y.address &&
        bits(x3->weight) == bits(y.weight) && bits(x3->latency_ns) == bits(y.latency_ns) &&
        x3->is_store == y.is_store && x3->function_id == y.function_id) {
      return ::testing::AssertionSuccess();
    }
  } else if (const auto* x4 = std::get_if<MarkerEvent>(&a)) {
    const auto& y = std::get<MarkerEvent>(b);
    if (x4->time == y.time && x4->function_id == y.function_id &&
        x4->is_enter == y.is_enter) {
      return ::testing::AssertionSuccess();
    }
  } else if (const auto* x5 = std::get_if<UncoreBwEvent>(&a)) {
    const auto& y = std::get<UncoreBwEvent>(b);
    if (x5->time == y.time && x5->period_ns == y.period_ns &&
        bits(x5->read_gbs) == bits(y.read_gbs) && bits(x5->write_gbs) == bits(y.write_gbs)) {
      return ::testing::AssertionSuccess();
    }
  }
  return ::testing::AssertionFailure() << "field mismatch in kind " << a.index();
}

constexpr std::uint32_t kStacks = 32;

TEST(BatchDecode, BitwiseIdenticalToScalarForEveryTailSize) {
  // Sizes straddle the batch boundary: pure-scalar (<8), exact multiples,
  // and every tail remainder 0..7 at a size where batches engage.
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 24u, 64u, 64u + 1u, 64u + 2u,
                              64u + 3u, 64u + 4u, 64u + 5u, 64u + 6u, 64u + 7u, 257u}) {
    const std::vector<Event> events = synth_events(n, 0xA11CEull + n, kStacks);
    const std::string bytes = encode_stream(events);

    const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
    ByteReader batch_src(data, bytes.size(), 0);
    Ns batch_last = 0;
    std::vector<Event> batch_out(n);
    const Status st =
        decode_compact_events(batch_src, kStacks, batch_last, batch_out.data(), n);
    ASSERT_TRUE(st.ok()) << "n=" << n << ": " << st.error();

    ByteReader scalar_src(data, bytes.size(), 0);
    Ns scalar_last = 0;
    std::vector<Event> scalar_out(n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(
          decode_event_compact(scalar_src, kStacks, scalar_last, scalar_out[i]).ok());
    }

    EXPECT_EQ(batch_last, scalar_last) << "n=" << n;
    EXPECT_EQ(batch_src.offset(), scalar_src.offset()) << "n=" << n;
    EXPECT_EQ(batch_src.remaining(), 0u) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(events_bitwise_equal(batch_out[i], scalar_out[i]))
          << "n=" << n << " event " << i;
      EXPECT_TRUE(events_bitwise_equal(batch_out[i], events[i]))
          << "n=" << n << " event " << i;
    }
  }
}

TEST(BatchDecode, SingleKindStreamsOfEveryKind) {
  // A homogeneous stream drives a single materialize_chunk kind loop for
  // the whole run — each of the five kinds must survive that alone.
  for (std::size_t kind = 0; kind < 5; ++kind) {
    std::vector<Event> events;
    const std::vector<Event> pool = synth_events(5 * 40, 0xBEEF + kind, kStacks);
    for (const Event& e : pool) {
      if (e.index() == kind) events.push_back(e);
    }
    ASSERT_EQ(events.size(), 40u);
    const std::string bytes = encode_stream(events);
    const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
    ByteReader src(data, bytes.size(), 0);
    Ns last = 0;
    std::vector<Event> out(events.size());
    ASSERT_TRUE(decode_compact_events(src, kStacks, last, out.data(), events.size()).ok());
    EXPECT_EQ(src.remaining(), 0u);
    // The encoder clamps time regressions to delta 0, so re-encoded
    // events carry the clamped (monotonic) time — compare against a
    // scalar decode instead of the raw input.
    ByteReader scalar_src(data, bytes.size(), 0);
    Ns scalar_last = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      Event ref;
      ASSERT_TRUE(decode_event_compact(scalar_src, kStacks, scalar_last, ref).ok());
      EXPECT_TRUE(events_bitwise_equal(out[i], ref)) << "kind " << kind << " event " << i;
    }
  }
}

TEST(BatchDecode, CorruptionAnywhereMatchesScalarErrorExactly) {
  // Flip every byte of the stream in turn: whatever the batch decoder
  // reports (success or failure, text and offset) must match a pure
  // scalar decode of the same corrupted bytes.
  const std::size_t n = 48;
  const std::vector<Event> events = synth_events(n, 0xC0DE, kStacks);
  const std::string clean = encode_stream(events);
  for (std::size_t pos = 0; pos < clean.size(); ++pos) {
    std::string bytes = clean;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x80);
    const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());

    ByteReader batch_src(data, bytes.size(), 0);
    Ns batch_last = 0;
    std::vector<Event> batch_out(n);
    const Status batch_st =
        decode_compact_events(batch_src, kStacks, batch_last, batch_out.data(), n);

    ByteReader scalar_src(data, bytes.size(), 0);
    Ns scalar_last = 0;
    Status scalar_st;
    std::vector<Event> scalar_out(n);
    std::size_t scalar_ok = 0;
    for (std::size_t i = 0; i < n; ++i) {
      scalar_st = decode_event_compact(scalar_src, kStacks, scalar_last, scalar_out[i]);
      if (!scalar_st.ok()) break;
      ++scalar_ok;
    }

    ASSERT_EQ(batch_st.ok(), scalar_st.ok()) << "flip at " << pos;
    if (!batch_st.ok()) {
      EXPECT_EQ(batch_st.error(), scalar_st.error()) << "flip at " << pos;
    } else {
      EXPECT_EQ(batch_last, scalar_last) << "flip at " << pos;
      for (std::size_t i = 0; i < scalar_ok; ++i) {
        EXPECT_TRUE(events_bitwise_equal(batch_out[i], scalar_out[i]))
            << "flip at " << pos << " event " << i;
      }
    }
  }
}

TEST(CompressedBlock, RoundTripIsBitwiseLossless) {
  for (const std::size_t n : {0u, 1u, 7u, 8u, 63u, 200u}) {
    const std::vector<Event> events = synth_events(n, 0x5EED + n, kStacks);
    // Compare against the compact codec's view of the same events (delta
    // clamp applied), which is the documented equivalence.
    const std::string compact = encode_stream(events);
    std::vector<Event> reference(n);
    {
      const auto* d = reinterpret_cast<const unsigned char*>(compact.data());
      ByteReader src(d, compact.size(), 0);
      Ns last = 0;
      ASSERT_TRUE(decode_compact_events(src, kStacks, last, reference.data(), n).ok());
    }

    std::string body;
    encode_compressed_block(body, events.data(), n);
    const auto* data = reinterpret_cast<const unsigned char*>(body.data());

    const auto peeked = peek_compressed_block_count(data, body.size(), 0);
    ASSERT_TRUE(peeked.has_value()) << peeked.error();
    EXPECT_EQ(*peeked, n);

    ByteReader src(data, body.size(), 0);
    std::uint64_t declared = 0;
    std::vector<Event> out;
    const Status st = decode_compressed_block(
        src, kStacks, n, declared, [&out](const Event& e) { out.push_back(e); });
    ASSERT_TRUE(st.ok()) << "n=" << n << ": " << st.error();
    EXPECT_EQ(declared, n);
    EXPECT_EQ(src.remaining(), 0u);
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(events_bitwise_equal(out[i], reference[i])) << "n=" << n << " event " << i;
    }
  }
}

TEST(CompressedBlock, EveryTruncationFailsCleanly) {
  const std::vector<Event> events = synth_events(96, 0x7A60, kStacks);
  std::string body;
  encode_compressed_block(body, events.data(), events.size());
  for (std::size_t len = 0; len < body.size(); ++len) {
    const auto* data = reinterpret_cast<const unsigned char*>(body.data());
    ByteReader src(data, len, 0);
    std::uint64_t declared = 0;
    std::size_t emitted = 0;
    const Status st = decode_compressed_block(src, kStacks, events.size(), declared,
                                              [&emitted](const Event&) { ++emitted; });
    EXPECT_FALSE(st.ok()) << "prefix " << len << " decoded";
    EXPECT_NE(st.error().find("offset"), std::string::npos) << st.error();
  }
}

TEST(CompressedBlock, HostileDeclaredCountIsRejectedBeforeAllocation) {
  std::string body;
  body.push_back(static_cast<char>(kCompressedBlockMagic));
  body.push_back(static_cast<char>(kCompressedLayoutVersion));
  put_varint(body, 1ull << 40);  // 2^40 events in a 12-byte body
  const auto* data = reinterpret_cast<const unsigned char*>(body.data());
  ByteReader src(data, body.size(), 0);
  std::uint64_t declared = 0;
  const Status st =
      decode_compressed_block(src, kStacks, 1024, declared, [](const Event&) {});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().find("more than the 1024 admissible"), std::string::npos)
      << st.error();
}

TEST(CompressedBlock, BadMagicAndBadTagAreRejected) {
  const std::vector<Event> events = synth_events(16, 0xDEAD, kStacks);
  std::string body;
  encode_compressed_block(body, events.data(), events.size());

  {
    std::string bad = body;
    bad[0] = 0x01;  // valid event tag, not the compressed magic
    const auto* data = reinterpret_cast<const unsigned char*>(bad.data());
    ByteReader src(data, bad.size(), 0);
    std::uint64_t declared = 0;
    const Status st =
        decode_compressed_block(src, kStacks, 16, declared, [](const Event&) {});
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.error().find("bad magic"), std::string::npos) << st.error();
  }
  {
    std::string bad = body;
    bad[3] = static_cast<char>(0x77);  // corrupt the first tag to an unknown value
    const auto* data = reinterpret_cast<const unsigned char*>(bad.data());
    ByteReader src(data, bad.size(), 0);
    std::uint64_t declared = 0;
    const Status st =
        decode_compressed_block(src, kStacks, 16, declared, [](const Event&) {});
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.error().find("unknown event tag"), std::string::npos) << st.error();
  }
}

}  // namespace
}  // namespace ecohmem::trace::codec
