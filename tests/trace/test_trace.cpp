#include <gtest/gtest.h>

#include <sstream>

#include "ecohmem/trace/events.hpp"
#include "ecohmem/trace/trace_file.hpp"

namespace ecohmem::trace {
namespace {

bom::ModuleTable test_modules() {
  bom::ModuleTable mt;
  mt.add_module("a.x", 1 << 20, 2 << 20);
  mt.add_module("b.so", 1 << 20, 1 << 20);
  return mt;
}

Trace make_trace() {
  Trace t;
  t.sample_rate_hz = 100.0;
  const StackId s0 = t.stacks.intern(bom::CallStack{{{0, 0x10}, {1, 0x20}}});
  const StackId s1 = t.stacks.intern(bom::CallStack{{{0, 0x30}}});
  const std::uint32_t fn = t.functions.intern("matvec");

  t.events.emplace_back(MarkerEvent{5, fn, true});
  t.events.emplace_back(AllocEvent{10, 1, 0x1000, 4096, s0, AllocKind::kMalloc});
  t.events.emplace_back(AllocEvent{12, 2, 0x2000, 8192, s1, AllocKind::kCalloc});
  t.events.emplace_back(SampleEvent{20, 0x1040, 3.5, 180.0, false, fn});
  t.events.emplace_back(SampleEvent{25, 0x2100, 2.0, 0.0, true, fn});
  t.events.emplace_back(UncoreBwEvent{30, 10, 12.5, 3.5});
  t.events.emplace_back(FreeEvent{40, 1});
  t.events.emplace_back(MarkerEvent{50, fn, false});
  return t;
}

TEST(StackTable, InternDeduplicates) {
  StackTable st;
  const bom::CallStack cs{{{0, 0x10}}};
  EXPECT_EQ(st.intern(cs), st.intern(cs));
  EXPECT_EQ(st.size(), 1u);
  EXPECT_NE(st.intern(bom::CallStack{{{0, 0x11}}}), st.intern(cs));
  EXPECT_EQ(st.size(), 2u);
}

TEST(FunctionTable, InternDeduplicates) {
  FunctionTable ft;
  EXPECT_EQ(ft.intern("f"), ft.intern("f"));
  EXPECT_EQ(ft.name(ft.intern("g")), "g");
  EXPECT_EQ(ft.size(), 2u);
}

TEST(Events, EventTimeVisitsAllVariants) {
  EXPECT_EQ(event_time(Event{AllocEvent{10}}), 10u);
  EXPECT_EQ(event_time(Event{FreeEvent{11}}), 11u);
  EXPECT_EQ(event_time(Event{SampleEvent{12}}), 12u);
  EXPECT_EQ(event_time(Event{MarkerEvent{13}}), 13u);
  EXPECT_EQ(event_time(Event{UncoreBwEvent{14}}), 14u);
}

TEST(TraceFile, RoundTripPreservesEverything) {
  const Trace original = make_trace();
  const bom::ModuleTable modules = test_modules();

  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original, modules).ok());

  const auto loaded = read_trace(buffer);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  const Trace& t = loaded->trace;

  EXPECT_DOUBLE_EQ(t.sample_rate_hz, 100.0);
  EXPECT_EQ(t.stacks.size(), original.stacks.size());
  EXPECT_EQ(t.stacks.stack(0), original.stacks.stack(0));
  EXPECT_EQ(t.functions.name(0), "matvec");
  ASSERT_EQ(t.events.size(), original.events.size());

  const auto& alloc = std::get<AllocEvent>(t.events[1]);
  EXPECT_EQ(alloc.object_id, 1u);
  EXPECT_EQ(alloc.size, 4096u);
  EXPECT_EQ(alloc.kind, AllocKind::kMalloc);

  const auto& sample = std::get<SampleEvent>(t.events[3]);
  EXPECT_DOUBLE_EQ(sample.weight, 3.5);
  EXPECT_DOUBLE_EQ(sample.latency_ns, 180.0);
  EXPECT_FALSE(sample.is_store);

  const auto& store = std::get<SampleEvent>(t.events[4]);
  EXPECT_TRUE(store.is_store);

  const auto& uncore = std::get<UncoreBwEvent>(t.events[5]);
  EXPECT_DOUBLE_EQ(uncore.read_gbs, 12.5);
  EXPECT_EQ(uncore.period_ns, 10u);

  // Module table travels with the trace.
  EXPECT_EQ(loaded->modules.size(), 2u);
  EXPECT_EQ(loaded->modules.module(1).name, "b.so");
  EXPECT_EQ(loaded->modules.module(0).debug_info_size, Bytes{2u << 20});
}

TEST(TraceFile, RejectsBadMagic) {
  std::stringstream buffer("NOTATRACE-----------------");
  EXPECT_FALSE(read_trace(buffer).has_value());
}

TEST(TraceFile, RejectsTruncation) {
  const Trace original = make_trace();
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, original, test_modules()).ok());
  const std::string full = buffer.str();
  // Chop at several points; every prefix must fail cleanly.
  for (const double frac : {0.2, 0.5, 0.9, 0.99}) {
    const auto cut_len =
        static_cast<std::size_t>(static_cast<double>(full.size()) * frac);
    std::stringstream cut(full.substr(0, cut_len));
    EXPECT_FALSE(read_trace(cut).has_value()) << "fraction " << frac;
  }
}

TEST(TraceFile, RejectsDanglingStackReference) {
  Trace t;
  t.events.emplace_back(AllocEvent{1, 1, 0x10, 64, /*stack=*/7, AllocKind::kMalloc});
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, t, test_modules()).ok());
  EXPECT_FALSE(read_trace(buffer).has_value());
}

TEST(TraceFile, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/ecohmem_test.trc";
  ASSERT_TRUE(save_trace(path, make_trace(), test_modules()).ok());
  const auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(loaded->trace.events.size(), make_trace().events.size());
  EXPECT_FALSE(load_trace("/no/such/file.trc").has_value());
}

TEST(TraceFile, EmptyTraceRoundTrips) {
  Trace t;
  bom::ModuleTable empty;
  std::stringstream buffer;
  ASSERT_TRUE(write_trace(buffer, t, empty).ok());
  const auto loaded = read_trace(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->trace.events.size(), 0u);
}

}  // namespace
}  // namespace ecohmem::trace

namespace ecohmem::trace {
namespace {

TEST(TraceFileCompact, RoundTripIsLossless) {
  const Trace original = make_trace();
  const bom::ModuleTable modules = test_modules();

  std::stringstream buffer;
  TraceWriteOptions opt;
  opt.compact = true;
  ASSERT_TRUE(write_trace(buffer, original, modules, opt).ok());

  const auto loaded = read_trace(buffer);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  ASSERT_EQ(loaded->trace.events.size(), original.events.size());
  for (std::size_t i = 0; i < original.events.size(); ++i) {
    EXPECT_EQ(event_time(loaded->trace.events[i]), event_time(original.events[i])) << i;
    EXPECT_EQ(loaded->trace.events[i].index(), original.events[i].index()) << i;
  }
  const auto& sample = std::get<SampleEvent>(loaded->trace.events[3]);
  EXPECT_DOUBLE_EQ(sample.weight, 3.5);
  EXPECT_DOUBLE_EQ(sample.latency_ns, 180.0);
  const auto& alloc = std::get<AllocEvent>(loaded->trace.events[1]);
  EXPECT_EQ(alloc.address, 0x1000u);
  EXPECT_EQ(alloc.kind, AllocKind::kMalloc);
}

TEST(TraceFileCompact, SmallerThanPlainOnRealisticTrace) {
  // A sample-heavy trace with near-monotonic times: the typical profile.
  Trace t;
  const StackId site = t.stacks.intern(bom::CallStack{{{0, 0x10}}});
  const std::uint32_t fn = t.functions.intern("kernel");
  t.events.emplace_back(AllocEvent{100, 1, 1ull << 40, 1 << 20, site, AllocKind::kMalloc});
  for (Ns time = 200; time < 200 + 5000 * 150; time += 150) {
    t.events.emplace_back(SampleEvent{time, (1ull << 40) + time % (1 << 20), 12.0, 190.0,
                                      false, fn});
  }
  t.events.emplace_back(FreeEvent{1'000'000'000, 1});

  std::stringstream plain;
  std::stringstream compact;
  ASSERT_TRUE(write_trace(plain, t, test_modules()).ok());
  TraceWriteOptions opt;
  opt.compact = true;
  ASSERT_TRUE(write_trace(compact, t, test_modules(), opt).ok());
  EXPECT_LT(compact.str().size(), plain.str().size() * 3 / 4);

  const auto reloaded = read_trace(compact);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->trace.events.size(), t.events.size());
}

TEST(TraceFileCompact, RejectsTruncation) {
  std::stringstream buffer;
  TraceWriteOptions opt;
  opt.compact = true;
  ASSERT_TRUE(write_trace(buffer, make_trace(), test_modules(), opt).ok());
  const std::string full = buffer.str();
  for (const double frac : {0.3, 0.6, 0.95}) {
    const auto cut_len = static_cast<std::size_t>(static_cast<double>(full.size()) * frac);
    std::stringstream cut(full.substr(0, cut_len));
    EXPECT_FALSE(read_trace(cut).has_value()) << frac;
  }
}

TEST(TraceFileCompact, RejectsDanglingStackReference) {
  Trace t;
  t.events.emplace_back(AllocEvent{1, 1, 0x10, 64, /*stack=*/7, AllocKind::kMalloc});
  std::stringstream buffer;
  TraceWriteOptions opt;
  opt.compact = true;
  ASSERT_TRUE(write_trace(buffer, t, test_modules(), opt).ok());
  EXPECT_FALSE(read_trace(buffer).has_value());
}

}  // namespace
}  // namespace ecohmem::trace
