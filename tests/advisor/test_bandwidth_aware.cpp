#include "ecohmem/advisor/bandwidth_aware.hpp"

#include <gtest/gtest.h>

#include "ecohmem/advisor/knapsack.hpp"

namespace ecohmem::advisor {
namespace {

/// Site factory with the fields the bandwidth-aware pass inspects.
analyzer::SiteRecord make_site(trace::StackId id, Bytes size, std::uint64_t allocs,
                               double alloc_bw, double exec_bw, bool writes, Ns first = 0,
                               Ns last = 1'000'000) {
  analyzer::SiteRecord s;
  s.stack = id;
  s.callstack = bom::CallStack{{{0, 0x100 + id * 0x40}}};
  s.max_size = size;
  s.peak_live_bytes = size;
  s.alloc_count = allocs;
  s.alloc_time_system_bw_gbs = alloc_bw;
  s.exec_bw_gbs = exec_bw;
  s.has_writes = writes;
  s.first_alloc = first;
  s.last_free = last;
  s.windows.push_back(analyzer::LiveWindow{first, last});
  s.load_misses = 1.0;
  return s;
}

BandwidthAwareOptions options() {
  BandwidthAwareOptions o;
  o.peak_pmem_bw_gbs = 10.0;  // thresholds: low < 2.0, high > 4.0
  return o;
}

Placement place(const std::vector<analyzer::SiteRecord>& sites,
                const std::vector<std::string>& tiers) {
  Placement p;
  p.fallback_tier = "pmem";
  for (std::size_t i = 0; i < sites.size(); ++i) {
    PlacementDecision d;
    d.stack = sites[i].stack;
    d.callstack = sites[i].callstack;
    d.tier = tiers[i];
    d.footprint = sites[i].peak_live_bytes;
    p.decisions.push_back(d);
  }
  return p;
}

TEST(Categorize, TableIVCriteria) {
  const auto opt = options();
  // Fitting: DRAM, < T_ALLOC allocations, alloc-bw below T_PMEMLOW.
  EXPECT_EQ(categorize(make_site(0, 100, 1, 1.0, 0.1, true), "dram", opt), Category::kFitting);
  // Streaming-D: DRAM, > T_ALLOC allocations, no writes, low alloc-bw.
  EXPECT_EQ(categorize(make_site(1, 100, 10, 1.0, 0.1, false), "dram", opt),
            Category::kStreamingD);
  // Writes disqualify Streaming-D.
  EXPECT_EQ(categorize(make_site(2, 100, 10, 1.0, 0.1, true), "dram", opt), Category::kNone);
  // Thrashing: PMEM, > T_ALLOC allocations, alloc-bw above T_PMEMHIGH.
  EXPECT_EQ(categorize(make_site(3, 100, 10, 5.0, 3.0, true), "pmem", opt),
            Category::kThrashing);
  // Low-bandwidth PMem object is not Thrashing.
  EXPECT_EQ(categorize(make_site(4, 100, 10, 1.0, 0.1, true), "pmem", opt), Category::kNone);
  // Exactly T_ALLOC allocations qualifies for neither (> and < are strict).
  EXPECT_EQ(categorize(make_site(5, 100, 2, 1.0, 0.1, false), "dram", opt), Category::kNone);
}

TEST(Categorize, ToStringNames) {
  EXPECT_EQ(to_string(Category::kFitting), "Fitting");
  EXPECT_EQ(to_string(Category::kStreamingD), "Streaming-D");
  EXPECT_EQ(to_string(Category::kThrashing), "Thrashing");
  EXPECT_EQ(to_string(Category::kNone), "none");
}

TEST(Algorithm1, StreamingDMovedToPmem) {
  const std::vector<analyzer::SiteRecord> sites = {
      make_site(0, 100, 10, 1.0, 0.1, false),  // Streaming-D
  };
  const Placement base = place(sites, {"dram"});
  const AdvisorConfig cfg = AdvisorConfig::dram_pmem(1000, 0.0);
  const auto result = place_bandwidth_aware(sites, base, cfg, options());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->streaming_moved, 1u);
  EXPECT_EQ(result->placement.tier_of(0), "pmem");
}

TEST(Algorithm1, ThrashingSwapsWithSmallestAccommodatingFitting) {
  const std::vector<analyzer::SiteRecord> sites = {
      make_site(0, 500, 1, 1.0, 0.1, true, 0, 1'000'000),   // Fitting, big
      make_site(1, 200, 1, 1.0, 0.1, true, 0, 1'000'000),   // Fitting, small
      make_site(2, 150, 10, 5.0, 2.0, true, 100, 900'000),  // Thrashing
  };
  const Placement base = place(sites, {"dram", "dram", "pmem"});
  const AdvisorConfig cfg = AdvisorConfig::dram_pmem(1000, 0.0);
  const auto result = place_bandwidth_aware(sites, base, cfg, options());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->swaps, 1u);
  EXPECT_EQ(result->placement.tier_of(2), "dram");
  // The *smallest* accommodating Fitting object (site 1) is displaced.
  EXPECT_EQ(result->placement.tier_of(1), "pmem");
  EXPECT_EQ(result->placement.tier_of(0), "dram");
}

TEST(Algorithm1, FittingMustCoverThrashingLifetime) {
  const std::vector<analyzer::SiteRecord> sites = {
      make_site(0, 500, 1, 1.0, 0.1, true, 0, 400),       // Fitting but dies early
      make_site(1, 200, 10, 5.0, 2.0, true, 100, 9'000),  // Thrashing outlives it
  };
  const Placement base = place(sites, {"dram", "pmem"});
  const AdvisorConfig cfg = AdvisorConfig::dram_pmem(1000, 0.0);
  const auto result = place_bandwidth_aware(sites, base, cfg, options());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->swaps, 0u);
  EXPECT_EQ(result->placement.tier_of(1), "pmem");
}

TEST(Algorithm1, FittingMustBeLargeEnough) {
  const std::vector<analyzer::SiteRecord> sites = {
      make_site(0, 100, 1, 1.0, 0.1, true),       // Fitting, too small
      make_site(1, 200, 10, 5.0, 2.0, true, 10, 900'000),  // Thrashing (bigger)
  };
  const Placement base = place(sites, {"dram", "pmem"});
  const AdvisorConfig cfg = AdvisorConfig::dram_pmem(1000, 0.0);
  const auto result = place_bandwidth_aware(sites, base, cfg, options());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->swaps, 0u);
}

TEST(Algorithm1, EachFittingConsumedOnce) {
  const std::vector<analyzer::SiteRecord> sites = {
      make_site(0, 300, 1, 1.0, 0.1, true, 0, 1'000'000),   // one Fitting
      make_site(1, 200, 10, 5.0, 4.0, true, 10, 900'000),   // Thrashing, higher bw
      make_site(2, 200, 10, 5.0, 2.0, true, 10, 900'000),   // Thrashing, lower bw
  };
  const Placement base = place(sites, {"dram", "pmem", "pmem"});
  const AdvisorConfig cfg = AdvisorConfig::dram_pmem(1000, 0.0);
  const auto result = place_bandwidth_aware(sites, base, cfg, options());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->swaps, 1u);
  // The higher-bandwidth Thrashing object wins the single Fitting slot.
  EXPECT_EQ(result->placement.tier_of(1), "dram");
  EXPECT_EQ(result->placement.tier_of(2), "pmem");
  EXPECT_EQ(result->placement.tier_of(0), "pmem");
}

TEST(Algorithm1, NoCategoriesMeansIdentityPlacement) {
  const std::vector<analyzer::SiteRecord> sites = {
      make_site(0, 100, 1, 5.0, 0.1, true),  // DRAM but high alloc-bw: none
      make_site(1, 100, 1, 1.0, 0.1, true),  // PMEM, 1 alloc: none
  };
  const Placement base = place(sites, {"dram", "pmem"});
  const AdvisorConfig cfg = AdvisorConfig::dram_pmem(1000, 0.0);
  const auto result = place_bandwidth_aware(sites, base, cfg, options());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->swaps, 0u);
  EXPECT_EQ(result->streaming_moved, 0u);
  EXPECT_EQ(result->placement.tier_of(0), "dram");
  EXPECT_EQ(result->placement.tier_of(1), "pmem");
}

TEST(Algorithm1, CategoriesReportedPerSite) {
  const std::vector<analyzer::SiteRecord> sites = {
      make_site(0, 500, 1, 1.0, 0.1, true),
      make_site(1, 200, 10, 5.0, 2.0, true, 10, 900'000),
  };
  const Placement base = place(sites, {"dram", "pmem"});
  const AdvisorConfig cfg = AdvisorConfig::dram_pmem(1000, 0.0);
  const auto result = place_bandwidth_aware(sites, base, cfg, options());
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->categories.size(), 2u);
  EXPECT_EQ(result->categories[0].category, Category::kFitting);
  EXPECT_EQ(result->categories[1].category, Category::kThrashing);
}

/// Property: the pass never invents or drops decisions, whatever the
/// thresholds.
class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, DecisionSetPreserved) {
  std::vector<analyzer::SiteRecord> sites;
  std::vector<std::string> tiers;
  for (trace::StackId i = 0; i < 10; ++i) {
    sites.push_back(make_site(i, 100 + i * 50, 1 + i, static_cast<double>(i), 1.0, i % 2 == 0,
                              0, 1'000'000));
    tiers.push_back(i % 3 == 0 ? "dram" : "pmem");
  }
  const Placement base = place(sites, tiers);
  AdvisorConfig cfg = AdvisorConfig::dram_pmem(10'000, 0.0);
  BandwidthAwareOptions opt = options();
  opt.t_pmem_high = GetParam();
  const auto result = place_bandwidth_aware(sites, base, cfg, opt);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->placement.decisions.size(), base.decisions.size());
  for (const auto& d : result->placement.decisions) {
    EXPECT_TRUE(d.tier == "dram" || d.tier == "pmem");
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(0.1, 0.2, 0.4, 0.6, 0.9));

}  // namespace
}  // namespace ecohmem::advisor
