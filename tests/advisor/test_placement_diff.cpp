#include "ecohmem/advisor/placement.hpp"

#include <gtest/gtest.h>

namespace ecohmem::advisor {
namespace {

PlacementDecision decide(trace::StackId id, std::string tier, Bytes footprint = 100) {
  PlacementDecision d;
  d.stack = id;
  d.callstack = bom::CallStack{{{0, 0x100 + id * 0x40}}};
  d.tier = std::move(tier);
  d.footprint = footprint;
  return d;
}

TEST(PlacementDiff, IdenticalPlacementsHaveNoMoves) {
  Placement p;
  p.fallback_tier = "pmem";
  p.decisions = {decide(0, "dram"), decide(1, "pmem")};
  EXPECT_TRUE(diff_placements(p, p).empty());
}

TEST(PlacementDiff, ReportsTierChanges) {
  Placement before;
  before.fallback_tier = "pmem";
  before.decisions = {decide(0, "dram"), decide(1, "pmem"), decide(2, "dram")};
  Placement after = before;
  after.decisions[1].tier = "dram";
  after.decisions[2].tier = "pmem";

  const auto moves = diff_placements(before, after);
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_EQ(moves[0].stack, 1u);
  EXPECT_EQ(moves[0].from, "pmem");
  EXPECT_EQ(moves[0].to, "dram");
  EXPECT_EQ(moves[1].stack, 2u);
  EXPECT_EQ(moves[1].to, "pmem");
}

TEST(PlacementDiff, NewSiteComparedAgainstOldFallback) {
  Placement before;
  before.fallback_tier = "pmem";
  Placement after;
  after.fallback_tier = "pmem";
  after.decisions = {decide(5, "dram")};
  const auto moves = diff_placements(before, after);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, "pmem");
  EXPECT_EQ(moves[0].to, "dram");
}

TEST(PlacementDiff, VanishedSiteFallsBack) {
  Placement before;
  before.fallback_tier = "pmem";
  before.decisions = {decide(3, "dram")};
  Placement after;
  after.fallback_tier = "pmem";
  const auto moves = diff_placements(before, after);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, "dram");
  EXPECT_EQ(moves[0].to, "pmem");
}

TEST(PlacementDiff, VanishedFallbackSiteIsNotAMove) {
  Placement before;
  before.fallback_tier = "pmem";
  before.decisions = {decide(3, "pmem")};
  Placement after;
  after.fallback_tier = "pmem";
  EXPECT_TRUE(diff_placements(before, after).empty());
}

}  // namespace
}  // namespace ecohmem::advisor
