#include <gtest/gtest.h>

#include <sstream>

#include "ecohmem/advisor/advisor_config.hpp"
#include "ecohmem/advisor/knapsack.hpp"
#include "ecohmem/advisor/report.hpp"

namespace ecohmem::advisor {
namespace {

analyzer::SiteRecord make_site(trace::StackId id, Bytes size, double loads, double stores = 0.0,
                               std::uint64_t allocs = 1) {
  analyzer::SiteRecord s;
  s.stack = id;
  s.callstack = bom::CallStack{{{0, 0x100 + id * 0x40}}};
  s.max_size = size;
  s.peak_live_bytes = size;
  s.alloc_count = allocs;
  s.load_misses = loads;
  s.store_misses = stores;
  return s;
}

TEST(AdvisorConfig, ParsesFromConfigFile) {
  const auto cfg = Config::parse(R"(
[advisor]
footprint = max_size

[memory]
name = dram
limit = 12GB
load_coef = 1.0
store_coef = 0.125
order = 0

[memory]
name = pmem
limit = 3TB
order = 1
fallback = true
)");
  ASSERT_TRUE(cfg.has_value());
  const auto advisor_cfg = AdvisorConfig::from_config(*cfg);
  ASSERT_TRUE(advisor_cfg.has_value()) << advisor_cfg.error();
  EXPECT_EQ(advisor_cfg->footprint_mode, FootprintMode::kMaxSize);
  ASSERT_EQ(advisor_cfg->tiers.size(), 2u);
  EXPECT_EQ(advisor_cfg->tiers[0].name, "dram");
  EXPECT_DOUBLE_EQ(advisor_cfg->tiers[0].store_coef, 0.125);
  EXPECT_EQ(advisor_cfg->fallback_tier().name, "pmem");
}

TEST(AdvisorConfig, RoundTripsThroughText) {
  const AdvisorConfig cfg = AdvisorConfig::dram_pmem(12ull << 30, 0.125);
  const auto parsed_file = Config::parse(cfg.to_config_text());
  ASSERT_TRUE(parsed_file.has_value());
  const auto reparsed = AdvisorConfig::from_config(*parsed_file);
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error();
  EXPECT_EQ(reparsed->tiers[0].limit, cfg.tiers[0].limit);
  EXPECT_DOUBLE_EQ(reparsed->tiers[1].store_coef, 0.125);
  EXPECT_EQ(reparsed->footprint_mode, cfg.footprint_mode);
}

TEST(AdvisorConfig, ValidationErrors) {
  const auto no_memory = Config::parse("[advisor]\n");
  EXPECT_FALSE(AdvisorConfig::from_config(*no_memory).has_value());

  const auto no_fallback = Config::parse("[memory]\nname = dram\nlimit = 1GB\n");
  EXPECT_FALSE(AdvisorConfig::from_config(*no_fallback).has_value());

  const auto dup = Config::parse(
      "[memory]\nname = a\nlimit = 1GB\nfallback = true\n[memory]\nname = a\nlimit = 1GB\n");
  EXPECT_FALSE(AdvisorConfig::from_config(*dup).has_value());

  const auto bad_mode = Config::parse(
      "[advisor]\nfootprint = nonsense\n[memory]\nname = a\nlimit = 1GB\nfallback = true\n");
  EXPECT_FALSE(AdvisorConfig::from_config(*bad_mode).has_value());
}

TEST(SiteFootprint, ModesDiffer) {
  auto s = make_site(0, 100, 1.0);
  s.peak_live_bytes = 500;
  EXPECT_EQ(site_footprint(s, FootprintMode::kMaxSize), 100u);
  EXPECT_EQ(site_footprint(s, FootprintMode::kPeakLive), 500u);
}

TEST(Knapsack, DensestObjectsFillFastTierFirst) {
  // Three objects of equal size; misses 30 > 20 > 10. DRAM fits two.
  const std::vector<analyzer::SiteRecord> sites = {
      make_site(0, 1000, 10.0), make_site(1, 1000, 30.0), make_site(2, 1000, 20.0)};
  AdvisorConfig cfg = AdvisorConfig::dram_pmem(2000, 0.0, 1ull << 40);
  const auto placement = place_by_density(sites, cfg);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->tier_of(1), "dram");
  EXPECT_EQ(placement->tier_of(2), "dram");
  EXPECT_EQ(placement->tier_of(0), "pmem");
}

TEST(Knapsack, DensityIsPerByte) {
  // A small object with few misses can beat a big object with more.
  const std::vector<analyzer::SiteRecord> sites = {
      make_site(0, 100, 50.0),    // density 0.5
      make_site(1, 10000, 100.0)  // density 0.01
  };
  AdvisorConfig cfg = AdvisorConfig::dram_pmem(100, 0.0, 1ull << 40);
  const auto placement = place_by_density(sites, cfg);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->tier_of(0), "dram");
  EXPECT_EQ(placement->tier_of(1), "pmem");
}

TEST(Knapsack, StoreCoefficientChangesRanking) {
  const std::vector<analyzer::SiteRecord> sites = {
      make_site(0, 1000, 20.0, 0.0),    // load heavy
      make_site(1, 1000, 1.0, 400.0),   // store heavy
  };
  AdvisorConfig loads_only = AdvisorConfig::dram_pmem(1000, 0.0, 1ull << 40);
  AdvisorConfig with_stores = AdvisorConfig::dram_pmem(1000, 0.125, 1ull << 40);

  const auto p1 = place_by_density(sites, loads_only);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->tier_of(0), "dram");
  EXPECT_EQ(p1->tier_of(1), "pmem");

  const auto p2 = place_by_density(sites, with_stores);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->tier_of(0), "pmem");
  EXPECT_EQ(p2->tier_of(1), "dram");  // 1 + 0.125*400 = 51 > 20
}

TEST(Knapsack, NeverExceedsTierLimit) {
  std::vector<analyzer::SiteRecord> sites;
  for (trace::StackId i = 0; i < 20; ++i) {
    sites.push_back(make_site(i, 700, 100.0 - i));
  }
  AdvisorConfig cfg = AdvisorConfig::dram_pmem(2000, 0.0, 1ull << 40);
  const auto placement = place_by_density(sites, cfg);
  ASSERT_TRUE(placement.has_value());
  EXPECT_LE(placement->footprint_in("dram"), 2000u);
  // Everything is accounted for somewhere.
  EXPECT_EQ(placement->decisions.size(), sites.size());
}

TEST(Knapsack, ZeroMissObjectsGoToFallback) {
  const std::vector<analyzer::SiteRecord> sites = {make_site(0, 100, 0.0)};
  AdvisorConfig cfg = AdvisorConfig::dram_pmem(1000, 0.0, 1ull << 40);
  const auto placement = place_by_density(sites, cfg);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->tier_of(0), "pmem");
}

TEST(Knapsack, UnlistedStackFallsBack) {
  AdvisorConfig cfg = AdvisorConfig::dram_pmem(1000, 0.0, 1ull << 40);
  const auto placement = place_by_density({}, cfg);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->tier_of(12345), "pmem");
}

TEST(Report, BomWriteAndHeaderFields) {
  bom::ModuleTable modules;
  modules.add_module("app.x", 1 << 20);

  Placement placement;
  placement.fallback_tier = "pmem";
  PlacementDecision d;
  d.callstack = bom::CallStack{{{0, 0x100}}};
  d.tier = "dram";
  d.footprint = 4096;
  placement.decisions.push_back(d);

  const auto text = report_to_string(placement, ReportFormat::kBom, modules);
  ASSERT_TRUE(text.has_value());
  EXPECT_NE(text->find("# format = bom"), std::string::npos);
  EXPECT_NE(text->find("# fallback = pmem"), std::string::npos);
  EXPECT_NE(text->find("app.x!0x100 @ dram # size=4096"), std::string::npos);
}

TEST(Report, HumanReadableRequiresSymbols) {
  bom::ModuleTable modules;
  modules.add_module("app.x", 1 << 20);
  Placement placement;
  placement.fallback_tier = "pmem";
  PlacementDecision d;
  d.callstack = bom::CallStack{{{0, 0x100}}};
  d.tier = "dram";
  placement.decisions.push_back(d);

  EXPECT_FALSE(report_to_string(placement, ReportFormat::kHumanReadable, modules).has_value());

  bom::SymbolTable symbols(&modules);
  symbols.add_entry(0, {0x0, "main.cc", 1});
  const auto text =
      report_to_string(placement, ReportFormat::kHumanReadable, modules, &symbols);
  ASSERT_TRUE(text.has_value()) << text.error();
  EXPECT_NE(text->find("main.cc:1 @ dram"), std::string::npos);
}

/// Property sweep over DRAM limits: larger budgets never shrink the set
/// of sites in DRAM (greedy monotonicity on identical value ordering).
class LimitSweep : public ::testing::TestWithParam<Bytes> {};

TEST_P(LimitSweep, MonotoneDramMembership) {
  std::vector<analyzer::SiteRecord> sites;
  for (trace::StackId i = 0; i < 12; ++i) {
    sites.push_back(make_site(i, 512 + i * 64, 200.0 - static_cast<double>(i) * 7.0));
  }
  AdvisorConfig small = AdvisorConfig::dram_pmem(GetParam(), 0.0, 1ull << 40);
  AdvisorConfig big = AdvisorConfig::dram_pmem(GetParam() * 2, 0.0, 1ull << 40);
  const auto p_small = place_by_density(sites, small);
  const auto p_big = place_by_density(sites, big);
  ASSERT_TRUE(p_small.has_value());
  ASSERT_TRUE(p_big.has_value());
  for (const auto& s : sites) {
    if (p_small->tier_of(s.stack) == "dram") {
      EXPECT_EQ(p_big->tier_of(s.stack), "dram") << "site " << s.stack;
    }
  }
  EXPECT_LE(p_small->footprint_in("dram"), GetParam());
  EXPECT_LE(p_big->footprint_in("dram"), GetParam() * 2);
}

INSTANTIATE_TEST_SUITE_P(Limits, LimitSweep,
                         ::testing::Values(Bytes{1024}, Bytes{2048}, Bytes{4096}, Bytes{8192}));

}  // namespace
}  // namespace ecohmem::advisor
