// The exact-DP knapsack variant: optimality on hand-checkable instances,
// agreement and divergence vs the paper's greedy density relaxation.

#include <gtest/gtest.h>

#include "ecohmem/advisor/knapsack.hpp"

namespace ecohmem::advisor {
namespace {

analyzer::SiteRecord make_site(trace::StackId id, Bytes size, double loads) {
  analyzer::SiteRecord s;
  s.stack = id;
  s.callstack = bom::CallStack{{{0, 0x100 + id * 0x40}}};
  s.max_size = size;
  s.peak_live_bytes = size;
  s.alloc_count = 1;
  s.load_misses = loads;
  return s;
}

TEST(ExactDp, ClassicGreedyTrap) {
  // Greedy-by-density picks the dense small item and wastes capacity;
  // the optimum is the two larger items.
  //   capacity 10; items (w,v): a=(6,60) d=10, b=(5,45) d=9, c=(5,45) d=9.
  // Greedy: a only (60). Optimal: b+c (90).
  const std::vector<analyzer::SiteRecord> sites = {
      make_site(0, 6000, 60.0), make_site(1, 5000, 45.0), make_site(2, 5000, 45.0)};
  AdvisorConfig cfg = AdvisorConfig::dram_pmem(10000, 0.0, 1ull << 40);

  const auto greedy = place_by_density(sites, cfg);
  ASSERT_TRUE(greedy.has_value());
  EXPECT_EQ(greedy->tier_of(0), "dram");
  EXPECT_EQ(greedy->tier_of(1), "pmem");

  const auto exact = place_exact_dp(sites, cfg, 1000);
  ASSERT_TRUE(exact.has_value()) << exact.error();
  EXPECT_EQ(exact->tier_of(0), "pmem");
  EXPECT_EQ(exact->tier_of(1), "dram");
  EXPECT_EQ(exact->tier_of(2), "dram");
}

TEST(ExactDp, NeverExceedsCapacity) {
  std::vector<analyzer::SiteRecord> sites;
  for (trace::StackId i = 0; i < 30; ++i) {
    sites.push_back(make_site(i, 300 + i * 97, 10.0 + i * 3.0));
  }
  AdvisorConfig cfg = AdvisorConfig::dram_pmem(4000, 0.0, 1ull << 40);
  const auto exact = place_exact_dp(sites, cfg, 512);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(exact->footprint_in("dram"), 4000u);
  EXPECT_EQ(exact->decisions.size(), sites.size());
}

TEST(ExactDp, ValueNeverBelowGreedy) {
  // On any instance, the DP's captured value (sum of misses in DRAM)
  // must be >= the greedy relaxation's.
  std::vector<analyzer::SiteRecord> sites;
  for (trace::StackId i = 0; i < 24; ++i) {
    sites.push_back(make_site(i, 128 + (i * 977) % 4096,
                              5.0 + static_cast<double>((i * 313) % 200)));
  }
  AdvisorConfig cfg = AdvisorConfig::dram_pmem(16384, 0.0, 1ull << 40);
  const auto greedy = place_by_density(sites, cfg);
  const auto exact = place_exact_dp(sites, cfg, 2048);
  ASSERT_TRUE(greedy && exact);

  auto captured = [&sites](const Placement& p) {
    double v = 0.0;
    for (const auto& s : sites) {
      if (p.tier_of(s.stack) == "dram") v += s.load_misses;
    }
    return v;
  };
  EXPECT_GE(captured(*exact), captured(*greedy) * 0.999);
}

TEST(ExactDp, ZeroValueItemsStayOut) {
  const std::vector<analyzer::SiteRecord> sites = {make_site(0, 100, 0.0),
                                                   make_site(1, 100, 5.0)};
  AdvisorConfig cfg = AdvisorConfig::dram_pmem(1000, 0.0, 1ull << 40);
  const auto exact = place_exact_dp(sites, cfg, 256);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->tier_of(0), "pmem");
  EXPECT_EQ(exact->tier_of(1), "dram");
}

TEST(ExactDp, RejectsDegenerateBinCount) {
  AdvisorConfig cfg = AdvisorConfig::dram_pmem(1000, 0.0);
  EXPECT_FALSE(place_exact_dp({}, cfg, 1).has_value());
}

TEST(ExactDp, QuantizationNeverOvercommits) {
  // Weights round up: items of 1001 bytes at bin=1000/8=125 cost 9 bins,
  // so only floor(8/9)=0 fit... sweep a few bin resolutions and check the
  // real capacity constraint each time.
  std::vector<analyzer::SiteRecord> sites;
  for (trace::StackId i = 0; i < 9; ++i) sites.push_back(make_site(i, 1001, 10.0));
  AdvisorConfig cfg = AdvisorConfig::dram_pmem(8000, 0.0, 1ull << 40);
  for (const std::size_t bins : {8u, 16u, 64u, 1024u}) {
    const auto exact = place_exact_dp(sites, cfg, bins);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(exact->footprint_in("dram"), 8000u) << bins << " bins";
  }
}

}  // namespace
}  // namespace ecohmem::advisor
