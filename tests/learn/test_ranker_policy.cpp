// Pairwise ranker training (ranker.hpp) and the learned placement policy
// (policy.hpp): bit-reproducible SGD, convergence on separable data,
// input validation, and — for the policy — the same capacity accounting
// contract as the greedy knapsack.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <unordered_set>

#include "ecohmem/advisor/knapsack.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/learn/policy.hpp"
#include "ecohmem/memsim/tier.hpp"
#include "ecohmem/profiler/profiler.hpp"
#include "ecohmem/runtime/engine.hpp"

namespace ecohmem::learn {
namespace {

/// Separable toy set: column 0 fully decides the preference.
std::vector<PairSample> separable_pairs() {
  std::vector<PairSample> pairs;
  for (int i = 0; i < 8; ++i) {
    PairSample p;
    p.better[0] = 2.0 + 0.25 * i;
    p.better[1] = 1.0;
    p.worse[0] = 1.0 + 0.125 * i;
    p.worse[1] = 1.0;
    pairs.push_back(p);
  }
  return pairs;
}

TEST(RankerTraining, BitReproducible) {
  const auto pairs = separable_pairs();
  Model a;
  Model b;
  const auto sa = train_pairwise(a, pairs);
  const auto sb = train_pairwise(b, pairs);
  ASSERT_TRUE(sa.has_value()) << sa.error();
  ASSERT_TRUE(sb.has_value()) << sb.error();
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    std::uint64_t ua = 0;
    std::uint64_t ub = 0;
    std::memcpy(&ua, &a.weights[i], 8);
    std::memcpy(&ub, &b.weights[i], 8);
    EXPECT_EQ(ua, ub) << "weight " << i;
  }
  EXPECT_EQ(sa->final_loss, sb->final_loss);
}

TEST(RankerTraining, SeedChangesTheTrajectory) {
  const auto pairs = separable_pairs();
  Model a;
  Model b;
  TrainOptions opt_b;
  opt_b.seed = 0xfeedu;
  ASSERT_TRUE(train_pairwise(a, pairs).has_value());
  ASSERT_TRUE(train_pairwise(b, pairs, opt_b).has_value());
  // Different shuffles visit pairs in different orders; the final
  // weights may agree in ranking but not bitwise.
  bool any_differ = false;
  for (std::size_t i = 0; i < kFeatureCount; ++i) any_differ |= a.weights[i] != b.weights[i];
  EXPECT_TRUE(any_differ);
}

TEST(RankerTraining, ConvergesOnSeparableData) {
  Model m;
  const auto stats = train_pairwise(m, separable_pairs());
  ASSERT_TRUE(stats.has_value()) << stats.error();
  EXPECT_EQ(stats->pair_accuracy, 1.0);
  EXPECT_LT(stats->final_loss, 0.5);
  EXPECT_GT(m.weights[0], 0.0);
  EXPECT_EQ(m.schema_hash, feature_schema_hash());
}

TEST(RankerTraining, RejectsInvalidInputs) {
  Model m;
  EXPECT_FALSE(train_pairwise(m, {}).has_value());

  const auto pairs = separable_pairs();
  TrainOptions bad;
  bad.epochs = 0;
  EXPECT_FALSE(train_pairwise(m, pairs, bad).has_value());
  bad = {};
  bad.learning_rate = 0.0;
  EXPECT_FALSE(train_pairwise(m, pairs, bad).has_value());
  bad = {};
  bad.l2 = -1.0;
  EXPECT_FALSE(train_pairwise(m, pairs, bad).has_value());

  auto nan_pairs = pairs;
  nan_pairs[0].better[2] = std::nan("");
  EXPECT_FALSE(train_pairwise(m, nan_pairs).has_value());
  auto zero_weight = pairs;
  zero_weight[0].weight = 0.0;
  EXPECT_FALSE(train_pairwise(m, zero_weight).has_value());
}

/// Profiled + analyzed minife, the policy-side fixture.
const analyzer::AnalysisResult& minife_analysis() {
  static const analyzer::AnalysisResult result = [] {
    apps::AppOptions opt;
    opt.iterations = 2;
    const runtime::Workload workload = apps::make_app("minife", opt);
    const auto sys = memsim::paper_system(6);
    profiler::Profiler prof;
    runtime::EngineOptions eopt;
    eopt.observer = &prof;
    runtime::ExecutionEngine engine(&*sys, eopt);
    runtime::FixedTierMode mode(&*sys, 1);
    if (!engine.run(workload, mode)) std::abort();
    auto analysis = analyzer::analyze(prof.take_trace(), {});
    if (!analysis) std::abort();
    return std::move(*analysis);
  }();
  return result;
}

advisor::AdvisorConfig two_tier_config(Bytes dram_limit) {
  advisor::AdvisorConfig config;
  advisor::TierPolicy dram;
  dram.name = "dram";
  dram.limit = dram_limit;
  dram.load_coef = 1.0;
  dram.store_coef = 0.125;
  dram.order = 0;
  advisor::TierPolicy pmem;
  pmem.name = "pmem";
  pmem.limit = 1ull << 50;
  pmem.load_coef = 1.0;
  pmem.store_coef = 0.125;
  pmem.order = 1;
  pmem.fallback = true;
  config.tiers = {dram, pmem};
  return config;
}

Model miss_volume_model() {
  Model m;
  m.schema_hash = feature_schema_hash();
  m.weights[3] = 1.0;  // log_load_misses
  m.weights[4] = 0.125;  // log_store_misses
  return m;
}

TEST(LearnedPolicy, RespectsTierCapacities) {
  const auto& analysis = minife_analysis();
  const Bytes limit = 8ull * 1024 * 1024 * 1024;
  const auto placement = place_by_ranker(analysis, two_tier_config(limit), miss_volume_model());
  ASSERT_TRUE(placement.has_value()) << placement.error();

  ASSERT_EQ(placement->decisions.size(), analysis.sites.size());
  EXPECT_EQ(placement->fallback_tier, "pmem");
  Bytes dram_used = 0;
  for (const auto& d : placement->decisions) {
    ASSERT_TRUE(d.tier == "dram" || d.tier == "pmem") << d.tier;
    if (d.tier == "dram") dram_used += d.footprint;
  }
  EXPECT_LE(dram_used, limit);
  EXPECT_GT(dram_used, 0u);
  EXPECT_EQ(dram_used, placement->footprint_in("dram"));
}

TEST(LearnedPolicy, EverySiteGetsExactlyOneDecision) {
  const auto& analysis = minife_analysis();
  const auto placement = place_by_ranker(analysis, two_tier_config(4ull << 30),
                                         miss_volume_model());
  ASSERT_TRUE(placement.has_value()) << placement.error();
  std::unordered_set<trace::StackId> seen;
  for (const auto& d : placement->decisions) {
    EXPECT_TRUE(seen.insert(d.stack).second) << "duplicate decision";
    EXPECT_EQ(placement->tier_of(d.stack), d.tier);
  }
  EXPECT_EQ(seen.size(), analysis.sites.size());
}

TEST(LearnedPolicy, SchemaMismatchIsAnError) {
  Model stale = miss_volume_model();
  stale.schema_hash ^= 1;
  const auto placement =
      place_by_ranker(minife_analysis(), two_tier_config(8ull << 30), stale);
  ASSERT_FALSE(placement.has_value());
  EXPECT_NE(placement.error().find("schema"), std::string::npos) << placement.error();
}

TEST(LearnedPolicy, EmptyTierListIsAnError) {
  const advisor::AdvisorConfig empty;
  EXPECT_FALSE(place_by_ranker(minife_analysis(), empty, miss_volume_model()).has_value());
}

TEST(PlacementIndex, SetTierKeepsTierOfAndFootprintInFresh) {
  // The O(1) lookup caches behind Placement must see set_tier mutations
  // (the corpus builder and bandwidth-aware pass depend on this).
  const auto& analysis = minife_analysis();
  const auto placement = place_by_ranker(analysis, two_tier_config(8ull << 30),
                                         miss_volume_model());
  ASSERT_TRUE(placement.has_value()) << placement.error();

  advisor::Placement p = *placement;
  std::size_t dram_index = p.decisions.size();
  for (std::size_t i = 0; i < p.decisions.size(); ++i) {
    if (p.decisions[i].tier == "dram") dram_index = i;
  }
  ASSERT_LT(dram_index, p.decisions.size());

  const Bytes before_dram = p.footprint_in("dram");
  const Bytes before_pmem = p.footprint_in("pmem");
  const auto moved = p.decisions[dram_index];
  p.set_tier(dram_index, "pmem");
  EXPECT_EQ(p.tier_of(moved.stack), "pmem");
  EXPECT_EQ(p.footprint_in("dram"), before_dram - moved.footprint);
  EXPECT_EQ(p.footprint_in("pmem"), before_pmem + moved.footprint);
}

}  // namespace
}  // namespace ecohmem::learn
