// Model file format (model.hpp): exact round-trips, and strict rejection
// of every malformed variant — most importantly every truncated prefix,
// mirroring the trace-loader contract that no short read may ever pass.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "ecohmem/learn/model.hpp"

namespace ecohmem::learn {
namespace {

Model sample_model() {
  Model m;
  m.schema_hash = feature_schema_hash();
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    m.weights[i] = (static_cast<double>(i) - 3.0) * 0.731;
  }
  m.corpus = {"minife", "large-hot"};
  return m;
}

void expect_same(const Model& a, const Model& b) {
  EXPECT_EQ(a.schema_hash, b.schema_hash);
  EXPECT_EQ(a.corpus, b.corpus);
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    std::uint64_t ua = 0;
    std::uint64_t ub = 0;
    std::memcpy(&ua, &a.weights[i], 8);
    std::memcpy(&ub, &b.weights[i], 8);
    EXPECT_EQ(ua, ub) << "weight " << i;
  }
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ModelCodec, EncodeDecodeRoundTrip) {
  const Model m = sample_model();
  const std::string bytes = encode_model(m);
  const auto decoded = decode_model(bytes);
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  expect_same(m, *decoded);

  // Identical scores, not just identical weights.
  FeatureRow row{};
  for (std::size_t i = 0; i < kFeatureCount; ++i) row[i] = 1.0 + static_cast<double>(i);
  EXPECT_EQ(m.score(row), decoded->score(row));
}

TEST(ModelCodec, FileRoundTrip) {
  const Model m = sample_model();
  const std::string path = temp_path("ecohmem_model_roundtrip.ehm");
  const auto saved = save_model(m, path);
  ASSERT_TRUE(saved.ok()) << saved.error();
  const auto loaded = load_model(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  expect_same(m, *loaded);
  std::filesystem::remove(path);
}

TEST(ModelCodec, EveryTruncatedPrefixIsRejected) {
  const std::string bytes = encode_model(sample_model());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto decoded = decode_model(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(decoded.has_value()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(ModelCodec, TrailingBytesAreRejected) {
  std::string bytes = encode_model(sample_model());
  bytes.push_back('\0');
  EXPECT_FALSE(decode_model(bytes).has_value());
}

TEST(ModelCodec, BadMagicIsRejected) {
  std::string bytes = encode_model(sample_model());
  bytes[0] = 'X';
  const auto decoded = decode_model(bytes);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_NE(decoded.error().find("bad magic"), std::string::npos) << decoded.error();
}

TEST(ModelCodec, UnsupportedVersionIsRejected) {
  std::string bytes = encode_model(sample_model());
  bytes[8] = 99;  // u32 version LE, offset 8
  const auto decoded = decode_model(bytes);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_NE(decoded.error().find("version"), std::string::npos) << decoded.error();
}

TEST(ModelCodec, SchemaHashMismatchIsRejected) {
  Model m = sample_model();
  m.schema_hash ^= 1;
  const auto decoded = decode_model(encode_model(m));
  ASSERT_FALSE(decoded.has_value());
  EXPECT_NE(decoded.error().find("schema"), std::string::npos) << decoded.error();
}

TEST(ModelCodec, CorruptedPayloadFailsTheChecksum) {
  const Model m = sample_model();
  std::string bytes = encode_model(m);
  // Flip one bit in a weight (after the corpus table, before the
  // trailing checksum); only the checksum can catch this.
  bytes[bytes.size() - 16] ^= 0x01;
  const auto decoded = decode_model(bytes);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_NE(decoded.error().find("checksum"), std::string::npos) << decoded.error();
}

TEST(ModelCodec, MissingFileIsALoadError) {
  EXPECT_FALSE(load_model(temp_path("ecohmem_model_does_not_exist.ehm")).has_value());
}

TEST(ModelCodec, ContentHashTracksTheBytes) {
  const Model a = sample_model();
  Model b = sample_model();
  EXPECT_EQ(model_content_hash(a), model_content_hash(b));
  b.weights[0] += 1.0;
  EXPECT_NE(model_content_hash(a), model_content_hash(b));
}

}  // namespace
}  // namespace ecohmem::learn
