// Feature extraction determinism (docs/learned.md): the matrix must be
// bitwise identical across repeated extractions and across analyzer
// thread counts, and the schema hash must pin the column set so model
// files can reject a schema drift.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>

#include "ecohmem/apps/apps.hpp"
#include "ecohmem/learn/features.hpp"
#include "ecohmem/memsim/tier.hpp"
#include "ecohmem/profiler/profiler.hpp"
#include "ecohmem/runtime/engine.hpp"

namespace ecohmem::learn {
namespace {

void expect_bits(double a, double b, const char* what) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, 8);
  std::memcpy(&ub, &b, 8);
  EXPECT_EQ(ua, ub) << what << ": " << a << " vs " << b;
}

void expect_identical(const FeatureMatrix& a, const FeatureMatrix& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.stacks, b.stacks);
  for (std::size_t r = 0; r < a.rows.size(); ++r) {
    for (std::size_t c = 0; c < kFeatureCount; ++c) {
      SCOPED_TRACE("row " + std::to_string(r) + " col " + std::to_string(c));
      expect_bits(a.rows[r][c], b.rows[r][c], std::string(feature_names()[c]).c_str());
    }
  }
}

/// Profiles `app` through the execution engine (the ecohmem-profile path).
trace::Trace capture(const std::string& app) {
  apps::AppOptions opt;
  opt.iterations = 2;
  const runtime::Workload workload = apps::make_app(app, opt);
  const auto sys = memsim::paper_system(6);
  EXPECT_TRUE(sys.has_value());

  profiler::Profiler prof;
  runtime::EngineOptions eopt;
  eopt.observer = &prof;
  runtime::ExecutionEngine engine(&*sys, eopt);
  runtime::FixedTierMode mode(&*sys, 1);
  const auto metrics = engine.run(workload, mode);
  EXPECT_TRUE(metrics.has_value());
  return prof.take_trace();
}

TEST(FeatureSchema, NamesAreUniqueAndMatchCount) {
  const auto& names = feature_names();
  ASSERT_EQ(names.size(), kFeatureCount);
  std::set<std::string_view> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), kFeatureCount);
  for (const auto name : names) EXPECT_FALSE(name.empty());
}

TEST(FeatureSchema, HashIsPinned) {
  // Pins schema version 1's column set. A legitimate schema change must
  // bump kFeatureSchemaVersion and update this constant — never silently
  // re-hash, because every saved model embeds this value.
  EXPECT_EQ(feature_schema_hash(), 0x3cecba6e1c0092abull);
  EXPECT_EQ(feature_schema_hash(), feature_schema_hash());
}

TEST(FeatureExtraction, RowsAlignWithSitesAndAreFinite) {
  const trace::Trace t = capture("minife");
  const auto analysis = analyzer::analyze(t, {});
  ASSERT_TRUE(analysis.has_value()) << analysis.error();

  const FeatureMatrix m = extract_features(*analysis);
  ASSERT_EQ(m.size(), analysis->sites.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m.stacks[i], analysis->sites[i].stack) << "row " << i;
    for (std::size_t c = 0; c < kFeatureCount; ++c) {
      EXPECT_TRUE(std::isfinite(m.rows[i][c]))
          << "row " << i << " " << feature_names()[c];
    }
  }
}

TEST(FeatureExtraction, BitwiseDeterministicAcrossRuns) {
  const trace::Trace t = capture("minife");
  const auto analysis = analyzer::analyze(t, {});
  ASSERT_TRUE(analysis.has_value()) << analysis.error();
  expect_identical(extract_features(*analysis), extract_features(*analysis));

  // A freshly captured trace of the same app must extract identically
  // too (the whole pipeline is deterministic, not just the extractor).
  const trace::Trace t2 = capture("minife");
  const auto analysis2 = analyzer::analyze(t2, {});
  ASSERT_TRUE(analysis2.has_value()) << analysis2.error();
  expect_identical(extract_features(*analysis), extract_features(*analysis2));
}

TEST(FeatureExtraction, BitwiseDeterministicAcrossAnalyzerThreadCounts) {
  const trace::Trace t = capture("lulesh");
  const auto serial = analyzer::analyze(t, {});
  ASSERT_TRUE(serial.has_value()) << serial.error();
  const FeatureMatrix base = extract_features(*serial);

  for (const int threads : {2, 3, 4, 8}) {
    analyzer::AnalyzerOptions opt;
    opt.threads = threads;
    const auto parallel = analyzer::analyze(t, opt);
    ASSERT_TRUE(parallel.has_value()) << "threads=" << threads << ": " << parallel.error();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(base, extract_features(*parallel));
  }
}

}  // namespace
}  // namespace ecohmem::learn
