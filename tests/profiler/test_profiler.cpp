#include "ecohmem/profiler/profiler.hpp"

#include <gtest/gtest.h>

#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/runtime/engine.hpp"

namespace ecohmem::profiler {
namespace {

runtime::Workload two_object_workload(int iters) {
  runtime::WorkloadBuilder b("prof");
  const auto mod = b.add_module("p.x", 1 << 20, 0);
  const auto hot_site = b.add_site(mod, "hot", "p.cc", 10);
  const auto cold_site = b.add_site(mod, "cold", "p.cc", 20);
  const auto hot =
      b.add_object(hot_site, 1ull << 28, runtime::AccessPattern::kRandom, 0.1, 0.5, 0.0);
  const auto cold =
      b.add_object(cold_site, 1ull << 28, runtime::AccessPattern::kRandom, 0.1, 0.5, 0.0);
  // Hot gets 9x the loads of cold; cold gets all the stores.
  const auto k = b.add_kernel("kernel", 1e8, 1e7,
                              {runtime::KernelAccess{hot, 9e6, 0.0, 1 << 28},
                               runtime::KernelAccess{cold, 1e6, 2e6, 1 << 28}});
  b.alloc(hot).alloc(cold);
  for (int i = 0; i < iters; ++i) b.run_kernel(k);
  b.free(hot).free(cold);
  return b.build();
}

trace::Trace profile(const runtime::Workload& w, ProfilerOptions opt = {}) {
  const auto sys = *memsim::paper_system(6);
  Profiler prof(opt);
  runtime::EngineOptions eopt;
  eopt.observer = &prof;
  runtime::ExecutionEngine engine(&sys, eopt);
  runtime::FixedTierMode mode(&sys, 1);
  const auto metrics = engine.run(w, mode);
  EXPECT_TRUE(metrics.has_value());
  return prof.take_trace();
}

TEST(Profiler, RecordsAllocAndFreeEvents) {
  const auto t = profile(two_object_workload(3));
  int allocs = 0;
  int frees = 0;
  for (const auto& e : t.events) {
    if (std::holds_alternative<trace::AllocEvent>(e)) ++allocs;
    if (std::holds_alternative<trace::FreeEvent>(e)) ++frees;
  }
  EXPECT_EQ(allocs, 2);
  EXPECT_EQ(frees, 2);
  EXPECT_EQ(t.stacks.size(), 2u);
}

TEST(Profiler, EventsAreTimeOrdered) {
  const auto t = profile(two_object_workload(5));
  Ns prev = 0;
  for (const auto& e : t.events) {
    const Ns now = trace::event_time(e);
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(Profiler, SampleWeightsRecoverAbsoluteCounts) {
  // The weighted sample total must approximate the true miss count
  // regardless of the sampling rate.
  const runtime::Workload w = two_object_workload(10);
  ProfilerOptions opt;
  opt.sample_rate_hz = 200.0;
  const auto t = profile(w, opt);

  double sampled_loads = 0.0;
  for (const auto& e : t.events) {
    if (const auto* s = std::get_if<trace::SampleEvent>(&e)) {
      if (!s->is_store) sampled_loads += s->weight;
    }
  }
  // True demand misses: ~10 iterations x 10e6 requests, mostly missing.
  EXPECT_GT(sampled_loads, 5e7);
  EXPECT_LT(sampled_loads, 1.2e8);
}

TEST(Profiler, SamplesSplitProportionallyToMisses) {
  const auto t = profile(two_object_workload(10));
  const auto result = analyzer::analyze(t);
  ASSERT_TRUE(result.has_value()) << result.error();
  ASSERT_EQ(result->sites.size(), 2u);
  const auto& hot = result->sites[0];
  const auto& cold = result->sites[1];
  EXPECT_GT(hot.load_misses, 4.0 * cold.load_misses);
  EXPECT_GT(cold.store_misses, 0.0);
  EXPECT_DOUBLE_EQ(hot.store_misses, 0.0);
}

TEST(Profiler, SampleAddressesInsideObjects) {
  const auto t = profile(two_object_workload(5));
  // Re-derive object ranges from the alloc events.
  struct Range {
    std::uint64_t lo, hi;
  };
  std::vector<Range> ranges;
  for (const auto& e : t.events) {
    if (const auto* a = std::get_if<trace::AllocEvent>(&e)) {
      ranges.push_back({a->address, a->address + a->size});
    }
  }
  for (const auto& e : t.events) {
    if (const auto* s = std::get_if<trace::SampleEvent>(&e)) {
      bool inside = false;
      for (const auto& r : ranges) inside = inside || (s->address >= r.lo && s->address < r.hi);
      EXPECT_TRUE(inside);
    }
  }
}

TEST(Profiler, DeterministicForSameSeed) {
  ProfilerOptions opt;
  opt.seed = 99;
  const auto t1 = profile(two_object_workload(5), opt);
  const auto t2 = profile(two_object_workload(5), opt);
  ASSERT_EQ(t1.events.size(), t2.events.size());
  for (std::size_t i = 0; i < t1.events.size(); ++i) {
    EXPECT_EQ(trace::event_time(t1.events[i]), trace::event_time(t2.events[i]));
  }
}

TEST(Profiler, StoreSamplingCanBeDisabled) {
  ProfilerOptions opt;
  opt.sample_stores = false;
  const auto t = profile(two_object_workload(5), opt);
  for (const auto& e : t.events) {
    if (const auto* s = std::get_if<trace::SampleEvent>(&e)) {
      EXPECT_FALSE(s->is_store);
    }
  }
}

TEST(Profiler, UncoreReadingsPresentAndPlausible) {
  const auto t = profile(two_object_workload(5));
  double max_gbs = 0.0;
  int count = 0;
  for (const auto& e : t.events) {
    if (const auto* u = std::get_if<trace::UncoreBwEvent>(&e)) {
      ++count;
      max_gbs = std::max(max_gbs, u->read_gbs + u->write_gbs);
    }
  }
  EXPECT_GT(count, 0);
  EXPECT_GT(max_gbs, 0.1);
  EXPECT_LT(max_gbs, 80.0);
}

TEST(Profiler, MarkersBracketKernels) {
  const auto t = profile(two_object_workload(2));
  int depth = 0;
  int enters = 0;
  for (const auto& e : t.events) {
    if (const auto* m = std::get_if<trace::MarkerEvent>(&e)) {
      depth += m->is_enter ? 1 : -1;
      enters += m->is_enter ? 1 : 0;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(enters, 2);
}

TEST(Profiler, TakeTraceResetsState) {
  const runtime::Workload w = two_object_workload(2);
  const auto sys = *memsim::paper_system(6);
  Profiler prof;
  runtime::EngineOptions eopt;
  eopt.observer = &prof;
  runtime::ExecutionEngine engine(&sys, eopt);
  runtime::FixedTierMode mode(&sys, 1);
  ASSERT_TRUE(engine.run(w, mode).has_value());
  const auto first = prof.take_trace();
  EXPECT_GT(first.events.size(), 0u);
  const auto empty = prof.take_trace();
  EXPECT_EQ(empty.events.size(), 0u);
}

/// Property sweep (DESIGN.md D5): the analyzer's per-site loads are
/// stable across sampling seeds within a tolerance.
class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, SampledCountsStableAcrossSeeds) {
  ProfilerOptions opt;
  opt.seed = GetParam();
  const auto t = profile(two_object_workload(10), opt);
  const auto result = analyzer::analyze(t);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->sites.size(), 2u);
  const double ratio = result->sites[0].load_misses /
                       std::max(result->sites[1].load_misses, 1.0);
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 16.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1u, 2u, 3u, 42u, 0xdeadu));

}  // namespace
}  // namespace ecohmem::profiler
