// AppOptions semantics across all models: `scale` shrinks footprints and
// traffic proportionally, `iterations` was covered in test_apps; plus the
// 2nd-generation PMem spec and the analyzer's no-uncore fallback path.

#include <gtest/gtest.h>

#include <algorithm>

#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/core/ecohmem.hpp"
#include "ecohmem/profiler/profiler.hpp"

namespace ecohmem {
namespace {

class ScaleSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ScaleSweep, HalfScaleHalvesFootprint) {
  apps::AppOptions full;
  full.iterations = 2;
  apps::AppOptions half = full;
  half.scale = 0.5;
  const auto w_full = apps::make_app(GetParam(), full);
  const auto w_half = apps::make_app(GetParam(), half);
  const double ratio = static_cast<double>(w_half.heap_high_water) /
                       static_cast<double>(w_full.heap_high_water);
  EXPECT_NEAR(ratio, 0.5, 0.05) << GetParam();
}

TEST_P(ScaleSweep, ScaledModelStillRuns) {
  apps::AppOptions opt;
  opt.iterations = 2;
  opt.scale = 0.25;
  const auto sys = *memsim::paper_system(6);
  const auto metrics = core::run_memory_mode(apps::make_app(GetParam(), opt), sys);
  ASSERT_TRUE(metrics.has_value()) << metrics.error();
  EXPECT_GT(metrics->total_ns, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllApps, ScaleSweep, ::testing::ValuesIn(apps::app_names()),
                         [](const auto& param_info) {
                           // gtest test names reject '-' ("phase-shift").
                           std::string name = param_info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(Pmem200, FortyPercentMoreBandwidth) {
  const auto gen1 = memsim::optane_pmem_spec(6);
  const auto gen2 = memsim::optane_pmem200_spec(6);
  EXPECT_NEAR(gen2.peak_read_gbs, gen1.peak_read_gbs * 1.4, 1e-9);
  EXPECT_NEAR(gen2.peak_write_gbs, gen1.peak_write_gbs * 1.4, 1e-9);
  EXPECT_LT(gen2.idle_read_ns, gen1.idle_read_ns);
  EXPECT_EQ(gen2.capacity, gen1.capacity);
}

TEST(Pmem200, LiftsMemoryModeBaseline) {
  const auto gen1 = *memsim::paper_system(6);
  const auto gen2 = *memsim::MemorySystem::create(
      {memsim::ddr4_dram_spec(), memsim::optane_pmem200_spec(6)});
  apps::AppOptions opt;
  opt.iterations = 4;
  const auto w = apps::make_minife(opt);
  const auto m1 = core::run_memory_mode(w, gen1);
  const auto m2 = core::run_memory_mode(w, gen2);
  ASSERT_TRUE(m1 && m2);
  EXPECT_LT(m2->total_ns, m1->total_ns);
}

TEST(AnalyzerFallback, BandwidthTimelineFromSamplesWhenNoUncore) {
  // Traces captured with uncore sampling disabled must still yield a
  // bandwidth timeline (reconstructed from PEBS sample weights).
  const auto sys = *memsim::paper_system(6);
  apps::AppOptions app_opt;
  app_opt.iterations = 3;
  const auto w = apps::make_minife(app_opt);

  profiler::ProfilerOptions popt;
  popt.sample_uncore = false;
  profiler::Profiler prof(popt);
  runtime::EngineOptions eopt;
  eopt.observer = &prof;
  runtime::ExecutionEngine engine(&sys, eopt);
  runtime::FixedTierMode mode(&sys, 1);
  ASSERT_TRUE(engine.run(w, mode).has_value());

  const auto analysis = analyzer::analyze(prof.take_trace());
  ASSERT_TRUE(analysis.has_value()) << analysis.error();
  EXPECT_GT(analysis->observed_peak_bw_gbs, 0.0);
  EXPECT_FALSE(analysis->system_bw.empty());
}

}  // namespace
}  // namespace ecohmem
