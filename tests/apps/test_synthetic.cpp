// Property tests over randomized workloads: whatever the (seeded) shape,
// the whole pipeline must hold its invariants — build validity, workflow
// success, budget compliance, allocation conservation, and the safety of
// every execution mode including the hybrid extension.

#include "ecohmem/apps/synthetic.hpp"

#include <gtest/gtest.h>

#include "ecohmem/baselines/hybrid_mode.hpp"
#include "ecohmem/baselines/kernel_tiering.hpp"
#include "ecohmem/core/ecohmem.hpp"
#include "ecohmem/flexmalloc/flexmalloc.hpp"

namespace ecohmem::apps {
namespace {

class SyntheticSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  SyntheticSpec spec() const {
    SyntheticSpec s;
    s.seed = GetParam();
    s.phases = 4;
    return s;
  }
};

TEST_P(SyntheticSweep, BuildsValidWorkload) {
  const runtime::Workload w = make_synthetic(spec());
  EXPECT_GT(w.heap_high_water, 0u);
  EXPECT_EQ(w.objects.size(),
            static_cast<std::size_t>(spec().persistent_objects + spec().transient_sites));
}

TEST_P(SyntheticSweep, WorkflowSucceedsAndRespectsBudget) {
  const runtime::Workload w = make_synthetic(spec());
  const auto sys = *memsim::paper_system(6);
  core::WorkflowOptions opt;
  opt.dram_limit = 8ull << 30;
  opt.bandwidth_aware = GetParam() % 2 == 0;  // alternate algorithms
  const auto result = core::run_workflow(w, sys, opt);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_GT(result->production_metrics.total_ns, 0u);
  EXPECT_LE(result->placement.footprint_in("dram"), opt.dram_limit);
  // Every profiled site got a decision.
  EXPECT_EQ(result->placement.decisions.size(), result->analysis.sites.size());
}

TEST_P(SyntheticSweep, AllModesReplayWithoutError) {
  const runtime::Workload w = make_synthetic(spec());
  const auto sys = *memsim::paper_system(6);
  runtime::ExecutionEngine engine(&sys, {});

  runtime::FixedTierMode pmem(&sys, 1);
  EXPECT_TRUE(engine.run(w, pmem).has_value());

  baselines::KernelTieringMode tiering(&sys, 0, 1);
  EXPECT_TRUE(engine.run(w, tiering).has_value());

  auto memmode = core::run_memory_mode(w, sys);
  EXPECT_TRUE(memmode.has_value());
}

TEST_P(SyntheticSweep, SpeedupWithinPhysicalBounds) {
  // The placed run can never beat all-DRAM or lose to all-PMem by more
  // than the interposition overhead.
  const runtime::Workload w = make_synthetic(spec());
  const auto sys = *memsim::paper_system(6);
  runtime::ExecutionEngine engine(&sys, {});
  runtime::FixedTierMode dram(&sys, 0);
  runtime::FixedTierMode pmem(&sys, 1);
  const auto t_dram = engine.run(w, dram);
  const auto t_pmem = engine.run(w, pmem);
  ASSERT_TRUE(t_dram && t_pmem);

  core::WorkflowOptions opt;
  opt.dram_limit = 12ull << 30;
  const auto result = core::run_workflow(w, sys, opt);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(static_cast<double>(result->production_metrics.total_ns),
            static_cast<double>(t_dram->total_ns) * 0.98);
  EXPECT_LE(static_cast<double>(result->production_metrics.total_ns),
            static_cast<double>(t_pmem->total_ns) * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ----------------------------------------------------- hybrid extension

TEST(HybridMode, ProactivePlusReactiveOnSkewedWorkload) {
  // A workload whose profile-time hot object differs from the runtime
  // one: the hybrid mode should recover part of the gap reactively.
  const auto sys = *memsim::paper_system(6);
  const runtime::Workload w = make_synthetic({.seed = 99, .phases = 6});

  core::WorkflowOptions opt;
  opt.dram_limit = 8ull << 30;
  const auto base = core::run_workflow(w, sys, opt);
  ASSERT_TRUE(base.has_value());

  // Rebuild FlexMalloc from the report and run hybrid.
  const auto parsed = flexmalloc::parse_report(base->report_text, *w.modules);
  ASSERT_TRUE(parsed.has_value());
  auto fm = flexmalloc::FlexMalloc::create(
      {{"dram", 8ull << 30}, {"pmem", sys.tier(1).capacity()}}, *parsed, w.symbols.get());
  ASSERT_TRUE(fm.has_value());

  baselines::HybridMode hybrid(&sys, &*fm, 0, 1);
  runtime::ExecutionEngine engine(&sys, {});
  const auto metrics = engine.run(w, hybrid);
  ASSERT_TRUE(metrics.has_value()) << metrics.error();
  // Sanity: the hybrid run finishes within a small factor of the pure
  // proactive run (migration never catastrophically regresses it).
  EXPECT_LT(static_cast<double>(metrics->total_ns),
            static_cast<double>(base->production_metrics.total_ns) * 1.25);
}

TEST(HybridMode, MigratesOnlyWithinManagedWindow) {
  const auto sys = *memsim::paper_system(6);
  const runtime::Workload w = make_synthetic({.seed = 7, .phases = 6});

  core::WorkflowOptions opt;
  opt.dram_limit = 4ull << 30;
  const auto base = core::run_workflow(w, sys, opt);
  ASSERT_TRUE(base.has_value());
  const auto parsed = flexmalloc::parse_report(base->report_text, *w.modules);
  ASSERT_TRUE(parsed.has_value());
  auto fm = flexmalloc::FlexMalloc::create(
      {{"dram", 4ull << 30}, {"pmem", sys.tier(1).capacity()}}, *parsed, w.symbols.get());
  ASSERT_TRUE(fm.has_value());

  baselines::HybridOptions hopt;
  hopt.managed_fraction = 0.1;
  baselines::HybridMode hybrid(&sys, &*fm, 0, 1, hopt);
  runtime::ExecutionEngine engine(&sys, {});
  ASSERT_TRUE(engine.run(w, hybrid).has_value());
  // Total promoted bytes cannot exceed the managed window per... the
  // window is recycled across phases, so just check it moved something
  // bounded (not the whole footprint at once).
  EXPECT_LE(hybrid.migrated_bytes(),
            static_cast<double>(w.heap_high_water));
}

TEST(HybridMode, FreeOfUnknownObjectRejected) {
  const auto sys = *memsim::paper_system(6);
  flexmalloc::ParsedReport empty;
  empty.fallback_tier = "pmem";
  auto fm = flexmalloc::FlexMalloc::create(
      {{"dram", 1ull << 30}, {"pmem", 1ull << 40}}, empty, nullptr);
  ASSERT_TRUE(fm.has_value());
  baselines::HybridMode hybrid(&sys, &*fm, 0, 1);
  EXPECT_FALSE(hybrid.on_free(3, 0x1234).ok());
}

}  // namespace
}  // namespace ecohmem::apps
