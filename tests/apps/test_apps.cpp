#include "ecohmem/apps/apps.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ecohmem/core/ecohmem.hpp"

namespace ecohmem::apps {
namespace {

/// Parameterized sanity sweep over all registered application models
/// (the seven Table V apps plus the phase-shift synthetic).
class AppModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AppModelTest, BuildsWithoutErrors) {
  const runtime::Workload w = make_app(GetParam());
  EXPECT_EQ(w.name, GetParam());
  EXPECT_GT(w.sites.size(), 0u);
  EXPECT_GT(w.objects.size(), 0u);
  EXPECT_GT(w.kernels.size(), 0u);
  EXPECT_GT(w.steps.size(), 0u);
  EXPECT_GE(w.ranks, 1);
}

TEST_P(AppModelTest, FootprintInTableVBallpark) {
  // Heap high-water marks should match Table V (MB/rank x ranks) within
  // a factor; exactness is not the point, order of magnitude is.
  const runtime::Workload w = make_app(GetParam());
  const double gib = static_cast<double>(w.heap_high_water) / (1024.0 * 1024 * 1024);
  EXPECT_GT(gib, 10.0) << GetParam();
  EXPECT_LT(gib, 120.0) << GetParam();
}

TEST_P(AppModelTest, EveryObjectHasValidSiteAndKnobs) {
  const runtime::Workload w = make_app(GetParam());
  for (const auto& o : w.objects) {
    EXPECT_LT(o.site, w.sites.size());
    EXPECT_GT(o.size, 0u);
    EXPECT_GE(o.llc_friendliness, 0.0);
    EXPECT_LE(o.llc_friendliness, 1.0);
    EXPECT_GE(o.dram_cache_locality, 0.0);
    EXPECT_LE(o.dram_cache_locality, 1.0);
    EXPECT_GE(o.prefetch_efficiency, 0.0);
    EXPECT_LE(o.prefetch_efficiency, 1.0);
  }
}

TEST_P(AppModelTest, SiteStacksAreUnique) {
  const runtime::Workload w = make_app(GetParam());
  bom::CallStackHash hash;
  std::set<std::size_t> hashes;
  for (const auto& s : w.sites) {
    EXPECT_TRUE(hashes.insert(hash(s.stack)).second) << s.label;
  }
}

TEST_P(AppModelTest, KernelFootprintsWithinObjectSizes) {
  const runtime::Workload w = make_app(GetParam());
  for (const auto& k : w.kernels) {
    for (const auto& a : k.accesses) {
      EXPECT_LE(a.footprint, static_cast<double>(w.objects[a.object].size) * 1.01)
          << w.name << "/" << k.function;
      EXPECT_GE(a.llc_loads, 0.0);
      EXPECT_GE(a.llc_stores, 0.0);
    }
  }
}

TEST_P(AppModelTest, MemoryModeRunSucceeds) {
  AppOptions opt;
  opt.iterations = 3;  // keep the test fast
  const runtime::Workload w = make_app(GetParam(), opt);
  const auto sys = *memsim::paper_system(6);
  const auto metrics = core::run_memory_mode(w, sys);
  ASSERT_TRUE(metrics.has_value()) << metrics.error();
  EXPECT_GT(metrics->total_ns, 0u);
  EXPECT_GT(metrics->dram_cache_hit_ratio, 0.1);
  EXPECT_LT(metrics->dram_cache_hit_ratio, 0.95);
}

TEST_P(AppModelTest, IterationsScaleRunLength) {
  AppOptions few;
  few.iterations = 2;
  AppOptions many;
  many.iterations = 6;
  const auto sys = *memsim::paper_system(6);
  const auto short_run = core::run_memory_mode(make_app(GetParam(), few), sys);
  const auto long_run = core::run_memory_mode(make_app(GetParam(), many), sys);
  ASSERT_TRUE(short_run && long_run);
  EXPECT_GT(long_run->total_ns, short_run->total_ns);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppModelTest, ::testing::ValuesIn(app_names()),
                         [](const auto& param_info) {
                           // gtest test names reject '-' ("phase-shift").
                           std::string name = param_info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(AppRegistry, UnknownNameThrows) {
  EXPECT_THROW(make_app("spec2017"), std::invalid_argument);
}

TEST(AppRegistry, NamesMatchBuilders) {
  EXPECT_EQ(app_names().size(), 9u);
  for (const auto& name : app_names()) {
    EXPECT_EQ(make_app(name).name, name);
  }
}

TEST(AppModels, TableVIOrderingOfMemoryBoundedness) {
  // LAMMPS must be the least memory bound, CloverLeaf3D among the most
  // (Table VI / §VIII-C).
  const auto sys = *memsim::paper_system(6);
  AppOptions opt;
  opt.iterations = 5;
  const auto lammps = core::run_memory_mode(apps::make_lammps(opt), sys);
  const auto clover = core::run_memory_mode(apps::make_cloverleaf3d(opt), sys);
  const auto minife = core::run_memory_mode(apps::make_minife(opt), sys);
  ASSERT_TRUE(lammps && clover && minife);
  EXPECT_LT(lammps->memory_bound_fraction(), 0.45);
  EXPECT_GT(clover->memory_bound_fraction(), 0.8);
  EXPECT_GT(minife->memory_bound_fraction(), 0.8);
}

TEST(AppModels, LuleshHasPhaseStructure) {
  // Fig. 3 prerequisite: temporaries are allocated and freed many times.
  const runtime::Workload w = make_lulesh();
  std::size_t allocs = 0;
  for (const auto& step : w.steps) {
    if (std::holds_alternative<runtime::AllocOp>(step)) ++allocs;
  }
  // Far more allocation events than objects => recurring phases.
  EXPECT_GT(allocs, w.objects.size() * 5);
}

TEST(AppModels, CloverleafKernelsMatchTableVII) {
  const runtime::Workload w = make_cloverleaf3d();
  const std::vector<std::string> expected = {
      "advec_cell_kernel", "calc_dt_kernel",      "flux_calc_kernel",
      "pdv_kernel",        "viscosity_kernel",    "advec_mom_kernel",
      "ideal_gas_kernel",  "reset_field_kernel",  "update_halo_kernel",
      "accelerate_kernel", "clover_pack_message_top"};
  for (const auto& name : expected) {
    bool found = false;
    for (const auto& k : w.kernels) found = found || k.function == name;
    EXPECT_TRUE(found) << name;
  }
}

}  // namespace
}  // namespace ecohmem::apps
