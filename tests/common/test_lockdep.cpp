// Tests for the runtime lock-order validator (common/lockdep.hpp):
// ranked wrappers, leaf/rank rules, the cross-thread acquisition-order
// graph, and the disabled fast path. The suite name carries "Lockdep"
// so ci.sh's TSan filter picks these up.

#include <gtest/gtest.h>

#include <mutex>
#include <source_location>
#include <string>
#include <thread>
#include <vector>

#include "ecohmem/common/lockdep.hpp"

namespace ecohmem::common {
namespace {

using lockdep::LockRank;
using lockdep::Violation;
using lockdep::ViolationKind;

/// Collected violations; a plain function pointer is all the handler
/// slot takes, so captures go through this file-static state.
std::mutex g_seen_mu;
std::vector<Violation> g_seen;

void collect(const Violation& violation) {
  std::lock_guard<std::mutex> lock(g_seen_mu);
  g_seen.push_back(violation);
}

std::vector<Violation> seen() {
  std::lock_guard<std::mutex> lock(g_seen_mu);
  return g_seen;
}

std::size_t count_kind(ViolationKind kind) {
  std::size_t n = 0;
  for (const auto& v : seen()) n += v.kind == kind ? 1 : 0;
  return n;
}

LockRank rank(int value) { return static_cast<LockRank>(value); }

class LockdepValidator : public ::testing::Test {
 protected:
  void SetUp() override {
    {
      std::lock_guard<std::mutex> lock(g_seen_mu);
      g_seen.clear();
    }
    lockdep::reset_for_testing();
    lockdep::set_enabled_for_testing(true);
    previous_ = lockdep::set_violation_handler(&collect);
  }

  void TearDown() override {
    lockdep::set_violation_handler(previous_);
    lockdep::set_enabled_for_testing(false);
    lockdep::reset_for_testing();
  }

  lockdep::Handler previous_ = nullptr;
};

TEST_F(LockdepValidator, SilentOnSequentialLeafUse) {
  RankedMutex a(LockRank::kMatcherHr, "t_seq_a");
  RankedMutex b(LockRank::kArenaHeap, "t_seq_b");
  for (int i = 0; i < 3; ++i) {
    {
      ScopedLock lock(a);
      EXPECT_EQ(lockdep::held_count(), 1u);
    }
    ScopedLock lock(b);
  }
  EXPECT_EQ(lockdep::held_count(), 0u);
  EXPECT_TRUE(seen().empty());
}

TEST_F(LockdepValidator, LeafNestingFires) {
  RankedMutex low(LockRank::kMatcherHr, "t_leaf_low");
  RankedMutex high(LockRank::kArenaHeap, "t_leaf_high");
  {
    ScopedLock outer(low);
    ScopedLock inner(high);  // rank-increasing, but low is a leaf
  }
  ASSERT_GE(count_kind(ViolationKind::kLeafNesting), 1u);
  const Violation v = seen().front();
  EXPECT_EQ(v.kind, ViolationKind::kLeafNesting);
  EXPECT_STREQ(v.acquiring, "t_leaf_high");
  EXPECT_STREQ(v.held, "t_leaf_low");
  EXPECT_GT(v.acquiring_site.line, 0u);
  EXPECT_GT(v.held_site.line, 0u);
  EXPECT_NE(v.message.find("t_leaf_low"), std::string::npos);
}

TEST_F(LockdepValidator, RankOrderFiresOnInvertedNonLeafLocks) {
  RankedMutex low(rank(50), "t_rank_low", /*leaf=*/false);
  RankedMutex high(rank(60), "t_rank_high", /*leaf=*/false);
  {
    ScopedLock outer(high);
    ScopedLock inner(low);  // decreasing rank: violation
  }
  ASSERT_EQ(count_kind(ViolationKind::kRankOrder), 1u);
  const Violation v = seen().front();
  EXPECT_STREQ(v.acquiring, "t_rank_low");
  EXPECT_STREQ(v.held, "t_rank_high");
  EXPECT_NE(v.message.find("rank-order violation"), std::string::npos);
}

TEST_F(LockdepValidator, RankIncreasingNonLeafChainIsSilent) {
  RankedMutex low(rank(50), "t_chain_low", /*leaf=*/false);
  RankedMutex high(rank(60), "t_chain_high", /*leaf=*/false);
  {
    ScopedLock outer(low);
    ScopedLock inner(high);
    EXPECT_EQ(lockdep::held_count(), 2u);
  }
  EXPECT_TRUE(seen().empty());
}

TEST_F(LockdepValidator, RecursiveAcquisitionFires) {
  RankedMutex mu(rank(50), "t_recursive", /*leaf=*/false);
  {
    ScopedLock outer(mu);
    // A real same-thread recursive lock would deadlock std::mutex, so
    // drive the hook directly, the way a recursive ScopedLock
    // construction would before blocking.
    lockdep::on_acquire(&mu, mu.name(), mu.rank(), mu.leaf(), std::source_location::current());
    lockdep::on_release(&mu);
  }
  ASSERT_EQ(count_kind(ViolationKind::kRankOrder), 1u);
  EXPECT_NE(seen().front().message.find("recursive acquisition"), std::string::npos);
}

// The seeded negative fixture from ISSUE.md: two threads acquire two
// locks in opposite orders. Neither thread violates ranks in-thread
// when ranks are equal-free, so this is exactly what the global
// acquisition-order graph exists to catch.
TEST_F(LockdepValidator, CrossThreadInvertedOrderIsDetected) {
  RankedMutex a(rank(50), "t_cycle_a", /*leaf=*/false);
  RankedMutex b(rank(60), "t_cycle_b", /*leaf=*/false);

  // Drive the hooks directly instead of taking the real mutexes: the
  // validator only sees on_acquire/on_release either way, and actually
  // nesting the underlying std::mutexes would make TSan's own deadlock
  // detector report the very inversion this test constructs on purpose.
  const auto acquire = [](RankedMutex& m) {
    lockdep::on_acquire(&m, m.name(), m.rank(), m.leaf(), std::source_location::current());
  };
  const auto release = [](RankedMutex& m) { lockdep::on_release(&m); };

  // Thread 1 observes a -> b (rank-increasing: silent, records edge).
  std::thread first([&] {
    acquire(a);
    acquire(b);
    release(b);
    release(a);
  });
  first.join();
  EXPECT_TRUE(seen().empty());

  // Thread 2 acquires b -> a: the graph already holds a -> b, so this
  // must report a cycle citing both acquisition sites (it also trips
  // the rank rule, which is the point of ranks — but the cycle proof
  // does not depend on it).
  std::thread second([&] {
    acquire(b);
    acquire(a);
    release(a);
    release(b);
  });
  second.join();

  ASSERT_GE(count_kind(ViolationKind::kCycle), 1u);
  for (const auto& v : seen()) {
    if (v.kind != ViolationKind::kCycle) continue;
    EXPECT_STREQ(v.acquiring, "t_cycle_a");
    EXPECT_STREQ(v.held, "t_cycle_b");
    EXPECT_GT(v.acquiring_site.line, 0u);
    EXPECT_GT(v.held_site.line, 0u);
    EXPECT_NE(v.message.find("opposite order"), std::string::npos);
  }
}

TEST_F(LockdepValidator, SharedLocksParticipateInOrdering) {
  RankedSharedMutex shard(LockRank::kMatchCacheShard, "t_shard");
  RankedMutex heap(LockRank::kArenaHeap, "t_heap2");
  {
    SharedScopedLock reader(shard);
    ScopedLock nested(heap);  // shard is a leaf: shared holds count too
  }
  EXPECT_GE(count_kind(ViolationKind::kLeafNesting), 1u);
}

TEST_F(LockdepValidator, AssertHeldFiresOnlyWhenNotHeld) {
  RankedMutex mu(LockRank::kArenaHeap, "t_assert");
  {
    ScopedLock lock(mu);
    mu.assert_held();
  }
  EXPECT_TRUE(seen().empty());
  mu.assert_held();
  ASSERT_EQ(count_kind(ViolationKind::kNotHeld), 1u);
  EXPECT_STREQ(seen().front().acquiring, "t_assert");
}

TEST_F(LockdepValidator, TryLockRecordsAndReleases) {
  RankedMutex mu(LockRank::kArenaHeap, "t_trylock");
  ASSERT_TRUE(mu.try_lock());
  EXPECT_EQ(lockdep::held_count(), 1u);
  mu.unlock();
  EXPECT_EQ(lockdep::held_count(), 0u);
  EXPECT_TRUE(seen().empty());
}

TEST_F(LockdepValidator, DisabledPathTracksNothing) {
  lockdep::set_enabled_for_testing(false);
  RankedMutex low(LockRank::kMatcherHr, "t_off_low");
  RankedMutex high(LockRank::kArenaHeap, "t_off_high");
  {
    ScopedLock outer(low);
    ScopedLock inner(high);  // would be a leaf violation if enabled
    EXPECT_EQ(lockdep::held_count(), 0u);
  }
  EXPECT_TRUE(seen().empty());
}

TEST_F(LockdepValidator, ViolationKindNames) {
  EXPECT_STREQ(lockdep::to_string(ViolationKind::kRankOrder), "rank-order");
  EXPECT_STREQ(lockdep::to_string(ViolationKind::kLeafNesting), "leaf-nesting");
  EXPECT_STREQ(lockdep::to_string(ViolationKind::kCycle), "cycle");
  EXPECT_STREQ(lockdep::to_string(ViolationKind::kNotHeld), "not-held");
}

}  // namespace
}  // namespace ecohmem::common
