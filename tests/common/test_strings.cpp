#include "ecohmem/common/strings.hpp"

#include <gtest/gtest.h>

namespace ecohmem::strings {
namespace {

TEST(Strings, TrimRemovesWhitespaceBothSides) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, SplitOnChar) {
  const auto parts = split("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyPieces) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitOnStringSeparator) {
  const auto parts = split("f.c:1 > f.c:2 > g.c:9", " > ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "g.c:9");
}

TEST(Strings, SplitOnStringWithNoSeparator) {
  const auto parts = split("single", " > ");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "single");
}

TEST(Strings, ParseU64Valid) {
  const auto v = parse_u64("12345");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 12345u);
}

TEST(Strings, ParseU64RejectsTrailingGarbage) {
  EXPECT_FALSE(parse_u64("123x").has_value());
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("-5").has_value());
}

TEST(Strings, ParseDouble) {
  const auto v = parse_double("2.5");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 2.5);
  EXPECT_FALSE(parse_double("abc").has_value());
}

TEST(Strings, ParseBytesUnits) {
  EXPECT_EQ(parse_bytes("128").value(), 128u);
  EXPECT_EQ(parse_bytes("128B").value(), 128u);
  EXPECT_EQ(parse_bytes("2KB").value(), 2048u);
  EXPECT_EQ(parse_bytes("3MB").value(), 3u * 1024 * 1024);
  EXPECT_EQ(parse_bytes("12GB").value(), 12ull * 1024 * 1024 * 1024);
  EXPECT_EQ(parse_bytes("1TB").value(), 1ull << 40);
  EXPECT_EQ(parse_bytes("1.5GB").value(), 1610612736u);
}

TEST(Strings, ParseBytesRejectsInvalid) {
  EXPECT_FALSE(parse_bytes("12XB").has_value());
  EXPECT_FALSE(parse_bytes("GB").has_value());
  EXPECT_FALSE(parse_bytes("-1GB").has_value());
}

TEST(Strings, FormatBytesPicksSuffix) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(format_bytes(12ull * 1024 * 1024 * 1024), "12.0 GiB");
}

TEST(Strings, HexRoundTrip) {
  EXPECT_EQ(to_hex(0x1a2b), "0x1a2b");
  EXPECT_EQ(parse_hex("0x1a2b").value(), 0x1a2bu);
  EXPECT_EQ(parse_hex("255").value(), 255u);
  EXPECT_FALSE(parse_hex("0xZZ").has_value());
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("size=42", "size="));
  EXPECT_FALSE(starts_with("siz", "size="));
}

}  // namespace
}  // namespace ecohmem::strings
