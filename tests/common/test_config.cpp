#include "ecohmem/common/config.hpp"

#include <gtest/gtest.h>

namespace ecohmem {
namespace {

constexpr const char* kSample = R"(
# advisor configuration
top_key = global

[advisor]
footprint = peak_live

[memory]
name = dram
limit = 12GB
load_coef = 1.0
order = 0

[memory]
name = pmem
limit = 3TB
order = 1
fallback = true
)";

TEST(Config, ParsesGlobalSection) {
  const auto cfg = Config::parse(kSample);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->global().get("top_key").value_or(""), "global");
}

TEST(Config, RepeatedSectionsKeptAsInstances) {
  const auto cfg = Config::parse(kSample);
  ASSERT_TRUE(cfg.has_value());
  const auto memories = cfg->sections_named("memory");
  ASSERT_EQ(memories.size(), 2u);
  EXPECT_EQ(memories[0]->get("name").value_or(""), "dram");
  EXPECT_EQ(memories[1]->get("name").value_or(""), "pmem");
}

TEST(Config, TypedGetters) {
  const auto cfg = Config::parse(kSample);
  ASSERT_TRUE(cfg.has_value());
  const auto* dram = cfg->sections_named("memory")[0];
  EXPECT_EQ(dram->get_bytes("limit", 0).value(), 12ull * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(dram->get_double("load_coef", 0.0).value(), 1.0);
  EXPECT_FALSE(dram->get_bool("fallback", false).value());
  const auto* pmem = cfg->sections_named("memory")[1];
  EXPECT_TRUE(pmem->get_bool("fallback", false).value());
}

TEST(Config, DefaultsWhenAbsent) {
  const auto cfg = Config::parse("[s]\nk = 1\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_DOUBLE_EQ(cfg->first_section("s")->get_double("missing", 7.5).value(), 7.5);
}

TEST(Config, ErrorsCarryLineNumbers) {
  const auto bad = Config::parse("a = 1\nnot a pair\n");
  ASSERT_FALSE(bad.has_value());
  EXPECT_NE(bad.error().find("line 2"), std::string::npos);
}

TEST(Config, RejectsUnterminatedSection) {
  EXPECT_FALSE(Config::parse("[oops\n").has_value());
  EXPECT_FALSE(Config::parse("[]\n").has_value());
  EXPECT_FALSE(Config::parse(" = value\n").has_value());
}

TEST(Config, CommentsAndBlanksIgnored) {
  const auto cfg = Config::parse("# c\n; c2\n\nk = v\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->global().get("k").value_or(""), "v");
}

TEST(Config, MalformedTypedValueIsError) {
  const auto cfg = Config::parse("[s]\nnum = abc\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_FALSE(cfg->first_section("s")->get_double("num", 0.0).has_value());
}

TEST(Config, RoundTripThroughToString) {
  const auto cfg = Config::parse(kSample);
  ASSERT_TRUE(cfg.has_value());
  const auto reparsed = Config::parse(cfg->to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->sections_named("memory").size(), 2u);
  EXPECT_EQ(reparsed->sections_named("memory")[1]->get("name").value_or(""), "pmem");
}

TEST(Config, LoadMissingFileFails) {
  EXPECT_FALSE(Config::load("/nonexistent/path/cfg.ini").has_value());
}

}  // namespace
}  // namespace ecohmem
