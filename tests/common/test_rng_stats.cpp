#include <gtest/gtest.h>

#include "ecohmem/common/rng.hpp"
#include "ecohmem/common/stats.hpp"

namespace ecohmem {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowIsBounded) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(11);
  bool seen[8] = {};
  for (int i = 0; i < 1000; ++i) seen[r.next_below(8)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, GaussianMoments) {
  Rng r(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(r.gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.rsd(), 0.0);
}

TEST(RunningStats, RsdMatchesDefinition) {
  RunningStats s;
  s.add(9.0);
  s.add(11.0);
  EXPECT_NEAR(s.rsd(), s.stddev() / 10.0, 1e-12);
}

TEST(PercentileSampler, InterpolatesBetweenRanks) {
  PercentileSampler p;
  for (int i = 1; i <= 5; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(p.percentile(25), 2.0);
}

TEST(PercentileSampler, EmptyReturnsZero) {
  PercentileSampler p;
  EXPECT_DOUBLE_EQ(p.percentile(50), 0.0);
}

}  // namespace
}  // namespace ecohmem
