#include "ecohmem/common/expected.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace ecohmem {
namespace {

TEST(Expected, HoldsValue) {
  Expected<int> v = 42;
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(0), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> v = unexpected("boom");
  ASSERT_FALSE(v.has_value());
  EXPECT_EQ(v.error(), "boom");
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(Expected, MoveOnlyTypes) {
  Expected<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.has_value());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 5);
}

TEST(Expected, ArrowOperator) {
  Expected<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(static_cast<bool>(s));
}

TEST(Status, ErrorState) {
  Status s = unexpected("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error(), "bad");
}

}  // namespace
}  // namespace ecohmem
