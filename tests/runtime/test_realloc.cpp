// Realloc support across the stack: builder validation, engine replay,
// FlexMalloc tier stability, profiler/analyzer bookkeeping.

#include <gtest/gtest.h>

#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/flexmalloc/flexmalloc.hpp"
#include "ecohmem/profiler/profiler.hpp"
#include "ecohmem/runtime/engine.hpp"

namespace ecohmem::runtime {
namespace {

Workload growing_buffer_workload() {
  WorkloadBuilder b("grow");
  const auto mod = b.add_module("g.x", 1 << 20, 0);
  const auto site = b.add_site(mod, "grow_buf", "g.cc", 1);
  const auto obj = b.add_object(site, 1 << 20, AccessPattern::kSequential, 0.1, 0.5, 0.0);
  const auto k = b.add_kernel("touch", 1e7, 1e6, {KernelAccess{obj, 1e4, 1e3, 1 << 20}});
  b.alloc(obj);
  b.run_kernel(k);
  b.realloc(obj, 4 << 20);
  b.run_kernel(k);
  b.realloc(obj, 16 << 20);
  b.run_kernel(k);
  b.free(obj);
  return b.build();
}

TEST(Realloc, BuilderTracksHighWaterThroughResizes) {
  const Workload w = growing_buffer_workload();
  EXPECT_EQ(w.heap_high_water, Bytes{16u << 20});
}

TEST(Realloc, BuilderRejectsReallocOfDeadObject) {
  WorkloadBuilder b("bad");
  const auto mod = b.add_module("b.x", 1 << 20, 0);
  const auto site = b.add_site(mod, "s", "b.cc", 1);
  const auto obj = b.add_object(site, 64, AccessPattern::kSequential, 0.0, 0.5);
  b.realloc(obj, 128);
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Realloc, ShrinkReducesLiveBytes) {
  WorkloadBuilder b("shrink");
  const auto mod = b.add_module("s.x", 1 << 20, 0);
  const auto site = b.add_site(mod, "s", "s.cc", 1);
  const auto obj = b.add_object(site, 8 << 20, AccessPattern::kSequential, 0.0, 0.5);
  b.alloc(obj).realloc(obj, 1 << 20).free(obj);
  EXPECT_EQ(b.build().heap_high_water, Bytes{8u << 20});
}

TEST(Realloc, EngineReplaysThroughFixedTier) {
  const auto sys = *memsim::paper_system(6);
  FixedTierMode mode(&sys, 1);
  ExecutionEngine engine(&sys, {});
  const auto metrics = engine.run(growing_buffer_workload(), mode);
  ASSERT_TRUE(metrics.has_value()) << metrics.error();
  // alloc + 2 reallocs = 3 allocation events.
  EXPECT_EQ(metrics->allocations, 3u);
}

TEST(Realloc, FlexMallocKeepsTierAcrossResizes) {
  const auto sys = *memsim::paper_system(6);
  const Workload w = growing_buffer_workload();

  flexmalloc::ParsedReport report;
  report.fallback_tier = "pmem";
  report.entries.push_back(flexmalloc::ReportEntry{w.sites[0].stack, "dram", 0});
  auto fm = flexmalloc::FlexMalloc::create(
      {{"dram", 1ull << 30}, {"pmem", 1ull << 40}}, report, nullptr);
  ASSERT_TRUE(fm.has_value());

  AppDirectMode mode(&sys, &*fm);
  ExecutionEngine engine(&sys, {});
  ASSERT_TRUE(engine.run(w, mode).has_value());
  const auto stats = fm->stats();
  EXPECT_EQ(stats[0].allocations, 3u);  // all three instances in DRAM
  EXPECT_EQ(stats[1].allocations, 0u);
  EXPECT_EQ(fm->heap(0).used(), 0u);  // everything freed at the end
}

TEST(Realloc, ProfilerEmitsFreshAllocPerInstance) {
  const auto sys = *memsim::paper_system(6);
  profiler::Profiler prof;
  EngineOptions eopt;
  eopt.observer = &prof;
  ExecutionEngine engine(&sys, eopt);
  FixedTierMode mode(&sys, 1);
  ASSERT_TRUE(engine.run(growing_buffer_workload(), mode).has_value());
  const auto t = prof.take_trace();

  int allocs = 0;
  int frees = 0;
  for (const auto& e : t.events) {
    allocs += std::holds_alternative<trace::AllocEvent>(e) ? 1 : 0;
    frees += std::holds_alternative<trace::FreeEvent>(e) ? 1 : 0;
  }
  EXPECT_EQ(allocs, 3);
  EXPECT_EQ(frees, 3);

  // The analyzer sees one site with three allocations of growing size.
  const auto analysis = analyzer::analyze(t);
  ASSERT_TRUE(analysis.has_value()) << analysis.error();
  ASSERT_EQ(analysis->sites.size(), 1u);
  EXPECT_EQ(analysis->sites[0].alloc_count, 3u);
  EXPECT_EQ(analysis->sites[0].max_size, Bytes{16u << 20});
  EXPECT_EQ(analysis->sites[0].windows.size(), 3u);
}

}  // namespace
}  // namespace ecohmem::runtime
