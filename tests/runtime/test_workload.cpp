#include "ecohmem/runtime/workload.hpp"

#include <gtest/gtest.h>

namespace ecohmem::runtime {
namespace {

TEST(WorkloadBuilder, BuildsConsistentWorkload) {
  WorkloadBuilder b("toy");
  b.ranks(4).threads(2).mlp(6.0).static_footprint(1024);
  const auto mod = b.add_module("toy.x", 1 << 20, 2 << 20);
  const auto site = b.add_site(mod, "buf", "toy.cc", 10);
  const auto obj = b.add_object(site, 4096, AccessPattern::kSequential, 0.1, 0.5);
  const auto kernel = b.add_kernel("k", 1e6, 1e5, {KernelAccess{obj, 100.0, 10.0, 4096.0}});
  b.alloc(obj).run_kernel(kernel).free(obj);

  const Workload w = b.build();
  EXPECT_EQ(w.name, "toy");
  EXPECT_EQ(w.ranks, 4);
  EXPECT_DOUBLE_EQ(w.mlp, 6.0);
  EXPECT_EQ(w.sites.size(), 1u);
  EXPECT_EQ(w.objects.size(), 1u);
  EXPECT_EQ(w.kernels.size(), 1u);
  EXPECT_EQ(w.steps.size(), 3u);
  EXPECT_EQ(w.heap_high_water, 4096u);
}

TEST(WorkloadBuilder, SiteStacksAreDistinctAndSymbolized) {
  WorkloadBuilder b("toy");
  const auto mod = b.add_module("toy.x", 1 << 20, 0);
  const auto s1 = b.add_site(mod, "a", "a.cc", 10);
  const auto s2 = b.add_site(mod, "b", "b.cc", 20);
  const Workload w = b.build();
  EXPECT_NE(w.sites[s1].stack, w.sites[s2].stack);
  // Every frame of every site translates via the generated symbol table.
  for (const auto& site : w.sites) {
    const auto hr = w.symbols->translate(site.stack);
    EXPECT_TRUE(hr.has_value()) << site.label;
  }
}

TEST(WorkloadBuilder, PrefetchDefaultsFollowPattern) {
  WorkloadBuilder b("toy");
  const auto mod = b.add_module("toy.x", 1 << 20, 0);
  const auto site = b.add_site(mod, "a", "a.cc", 1);
  const auto seq = b.add_object(site, 64, AccessPattern::kSequential, 0.0, 0.5);
  const auto rnd = b.add_object(site, 64, AccessPattern::kRandom, 0.0, 0.5);
  const auto custom = b.add_object(site, 64, AccessPattern::kRandom, 0.0, 0.5, 0.42);
  const Workload w = b.build();
  EXPECT_DOUBLE_EQ(w.objects[seq].prefetch_efficiency,
                   default_prefetch_efficiency(AccessPattern::kSequential));
  EXPECT_DOUBLE_EQ(w.objects[rnd].prefetch_efficiency,
                   default_prefetch_efficiency(AccessPattern::kRandom));
  EXPECT_DOUBLE_EQ(w.objects[custom].prefetch_efficiency, 0.42);
}

TEST(WorkloadBuilder, HighWaterTracksPeakNotTotal) {
  WorkloadBuilder b("toy");
  const auto mod = b.add_module("toy.x", 1 << 20, 0);
  const auto site = b.add_site(mod, "a", "a.cc", 1);
  const auto o1 = b.add_object(site, 1000, AccessPattern::kSequential, 0.0, 0.5);
  const auto o2 = b.add_object(site, 1000, AccessPattern::kSequential, 0.0, 0.5);
  b.alloc(o1).free(o1).alloc(o2).free(o2);
  EXPECT_EQ(b.build().heap_high_water, 1000u);
}

TEST(WorkloadBuilder, DetectsDoubleAlloc) {
  WorkloadBuilder b("bad");
  const auto mod = b.add_module("x", 1 << 20, 0);
  const auto site = b.add_site(mod, "a", "a.cc", 1);
  const auto obj = b.add_object(site, 64, AccessPattern::kSequential, 0.0, 0.5);
  b.alloc(obj).alloc(obj);
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(WorkloadBuilder, DetectsFreeOfNonLive) {
  WorkloadBuilder b("bad");
  const auto mod = b.add_module("x", 1 << 20, 0);
  const auto site = b.add_site(mod, "a", "a.cc", 1);
  const auto obj = b.add_object(site, 64, AccessPattern::kSequential, 0.0, 0.5);
  b.free(obj);
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(WorkloadBuilder, DetectsKernelOnDeadObject) {
  WorkloadBuilder b("bad");
  const auto mod = b.add_module("x", 1 << 20, 0);
  const auto site = b.add_site(mod, "a", "a.cc", 1);
  const auto obj = b.add_object(site, 64, AccessPattern::kSequential, 0.0, 0.5);
  const auto k = b.add_kernel("k", 1.0, 1.0, {KernelAccess{obj, 1.0, 0.0, 64.0}});
  b.alloc(obj).free(obj).run_kernel(k);
  EXPECT_THROW(b.build(), std::logic_error);
}

}  // namespace
}  // namespace ecohmem::runtime
