// Edge-case tests for the fork-join WorkerPool (runtime/worker_pool.hpp):
// zero-work phases, more workers than tasks, exception propagation
// without deadlock or thread leak, and lockdep-clean locking. The suite
// name carries "Concurrency" so ci.sh's TSan filter picks these up.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "ecohmem/common/lockdep.hpp"
#include "ecohmem/runtime/worker_pool.hpp"

namespace ecohmem::runtime {
namespace {

TEST(WorkerPoolConcurrency, ZeroThreadsClampsToOne) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> calls{0};
  pool.run([&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(WorkerPoolConcurrency, RunWithNoWorkReturns) {
  WorkerPool pool(4);
  // A task body that does nothing per worker: the phase must still
  // complete (all workers rendezvous on an empty slice).
  for (int i = 0; i < 100; ++i) {
    pool.run([](std::size_t) {});
  }
}

TEST(WorkerPoolConcurrency, MoreWorkersThanTasks) {
  WorkerPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.run([&](std::size_t w) {
    // Only the first 3 workers find work; the rest return immediately.
    if (w < hits.size()) hits[w].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolConcurrency, EveryWorkerIndexRunsExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> counts(pool.size());
  for (int round = 0; round < 50; ++round) {
    pool.run([&](std::size_t w) { counts[w].fetch_add(1); });
  }
  for (auto& c : counts) EXPECT_EQ(c.load(), 50);
}

TEST(WorkerPoolConcurrency, ExceptionPropagatesToCaller) {
  WorkerPool pool(4);
  EXPECT_THROW(
      pool.run([](std::size_t w) {
        if (w == 2) throw std::runtime_error("worker 2 failed");
      }),
      std::runtime_error);
}

TEST(WorkerPoolConcurrency, FirstExceptionWinsAndAllWorkersFinish) {
  WorkerPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.run([&](std::size_t w) {
      if (w % 2 == 0) throw std::runtime_error("even worker failed");
      completed.fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "even worker failed");
  }
  // The throw surfaces only after every worker finished its slice.
  EXPECT_EQ(completed.load(), 2);
}

TEST(WorkerPoolConcurrency, PoolSurvivesExceptionAndRunsAgain) {
  WorkerPool pool(3);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(pool.run([](std::size_t) { throw std::logic_error("boom"); }),
                 std::logic_error);
    std::atomic<int> calls{0};
    pool.run([&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 3);
  }
  // Destructor joins cleanly after all of the above — no leaked or
  // wedged worker thread (a wedge would hang the test).
}

TEST(WorkerPoolConcurrency, LockdepCleanUnderValidator) {
  common::lockdep::reset_for_testing();
  common::lockdep::set_enabled_for_testing(true);
  static std::atomic<int> violations{0};
  const auto previous = common::lockdep::set_violation_handler(
      [](const common::lockdep::Violation&) { violations.fetch_add(1); });
  {
    WorkerPool pool(4);
    std::atomic<int> calls{0};
    for (int i = 0; i < 20; ++i) {
      pool.run([&](std::size_t) { calls.fetch_add(1); });
    }
    EXPECT_EQ(calls.load(), 80);
    EXPECT_THROW(pool.run([](std::size_t) { throw std::runtime_error("x"); }),
                 std::runtime_error);
  }
  common::lockdep::set_violation_handler(previous);
  common::lockdep::set_enabled_for_testing(false);
  common::lockdep::reset_for_testing();
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace ecohmem::runtime
