#include "ecohmem/runtime/engine.hpp"

#include <gtest/gtest.h>

#include "ecohmem/flexmalloc/flexmalloc.hpp"
#include "ecohmem/memsim/dram_cache.hpp"

namespace ecohmem::runtime {
namespace {

memsim::MemorySystem paper() { return *memsim::paper_system(6); }

/// One-object streaming workload: `loads` line requests per kernel,
/// repeated `iters` times.
Workload stream_workload(double loads, double stores, double pe, int iters,
                         Bytes size = 1ull << 30) {
  WorkloadBuilder b("stream");
  const auto mod = b.add_module("s.x", 1 << 20, 0);
  const auto site = b.add_site(mod, "buf", "s.cc", 1);
  const auto obj = b.add_object(site, size, AccessPattern::kSequential, 0.0, 0.6, pe);
  const auto k = b.add_kernel("sweep", 1e8, 1e7,
                              {KernelAccess{obj, loads, stores, static_cast<double>(size)}});
  b.alloc(obj);
  for (int i = 0; i < iters; ++i) b.run_kernel(k);
  b.free(obj);
  return b.build();
}

// ------------------------------------------------- fixed-point solver

std::vector<ObjectTraffic> one_object_traffic(std::size_t tiers, std::size_t tier,
                                              double read_bytes, double write_bytes) {
  ObjectTraffic t;
  t.read_bytes.assign(tiers, 0.0);
  t.write_bytes.assign(tiers, 0.0);
  t.latency_share.assign(tiers, 0.0);
  t.read_bytes[tier] = read_bytes;
  t.write_bytes[tier] = write_bytes;
  t.latency_share[tier] = 1.0;
  return {t};
}

TEST(FixedPoint, ComputeOnlyKernel) {
  const auto sys = paper();
  const auto sol = solve_kernel_fixed_point(sys, {}, {}, 1000.0, 8.0, {});
  EXPECT_NEAR(sol.duration_ns, 1000.0, 1.0);
  EXPECT_DOUBLE_EQ(sol.load_stall_ns, 0.0);
}

TEST(FixedPoint, BandwidthFloorBindsForPureStreams) {
  const auto sys = paper();
  // 26 GB moved on PMem: at ~26 GB/s peak the kernel cannot beat ~1 s.
  const double bytes = 26e9;
  const auto traffic = one_object_traffic(2, 1, bytes, 0.0);
  const std::vector<memsim::KernelObjectMisses> misses = {{0.0, bytes / 64.0, 0.0}};
  const auto sol = solve_kernel_fixed_point(sys, traffic, misses, 1000.0, 8.0, {});
  EXPECT_GE(sol.duration_ns, 0.95e9);
  EXPECT_GT(sol.bw_floor_ns, 0.9e9);
}

TEST(FixedPoint, DemandMissesStallByLatencyOverMlp) {
  const auto sys = paper();
  const double misses = 1e6;
  const auto traffic = one_object_traffic(2, 1, misses * 64.0, 0.0);
  const std::vector<memsim::KernelObjectMisses> m = {{misses, 0.0, 0.0}};
  const auto sol = solve_kernel_fixed_point(sys, traffic, m, 0.0, 8.0, {});
  // Stall >= misses * idle latency / mlp.
  EXPECT_GE(sol.load_stall_ns, misses * 185.0 / 8.0 * 0.99);
  EXPECT_GT(sol.object_load_latency_ns[0], 180.0);
}

TEST(FixedPoint, HigherMlpShortensStalls) {
  const auto sys = paper();
  const double misses = 1e6;
  const auto traffic = one_object_traffic(2, 1, misses * 64.0, 0.0);
  const std::vector<memsim::KernelObjectMisses> m = {{misses, 0.0, 0.0}};
  const auto lo = solve_kernel_fixed_point(sys, traffic, m, 0.0, 2.0, {});
  const auto hi = solve_kernel_fixed_point(sys, traffic, m, 0.0, 16.0, {});
  EXPECT_GT(lo.duration_ns, hi.duration_ns);
}

TEST(FixedPoint, DramFasterThanPmemForSameTraffic) {
  const auto sys = paper();
  const double misses = 5e6;
  const std::vector<memsim::KernelObjectMisses> m = {{misses, 0.0, 0.0}};
  const auto dram =
      solve_kernel_fixed_point(sys, one_object_traffic(2, 0, misses * 64, 0.0), m, 0.0, 8.0, {});
  const auto pmem =
      solve_kernel_fixed_point(sys, one_object_traffic(2, 1, misses * 64, 0.0), m, 0.0, 8.0, {});
  EXPECT_LT(dram.duration_ns, pmem.duration_ns);
}

TEST(FixedPoint, Converges) {
  const auto sys = paper();
  const double misses = 2e7;
  const auto traffic = one_object_traffic(2, 1, misses * 64.0, misses * 16.0);
  const std::vector<memsim::KernelObjectMisses> m = {{misses, 0.0, misses / 4.0}};
  EngineOptions opt;
  const auto sol = solve_kernel_fixed_point(sys, traffic, m, 1e6, 8.0, opt);
  EXPECT_LT(sol.iterations, opt.max_fixed_point_iters);
  EXPECT_GT(sol.duration_ns, 0.0);
}

// ----------------------------------------------------------- engine

TEST(Engine, FixedTierRunProducesMetrics) {
  const auto sys = paper();
  const Workload w = stream_workload(1e7, 1e6, 0.0, 3);
  FixedTierMode mode(&sys, 1);
  ExecutionEngine engine(&sys, {});
  const auto metrics = engine.run(w, mode);
  ASSERT_TRUE(metrics.has_value()) << metrics.error();
  EXPECT_GT(metrics->total_ns, 0u);
  EXPECT_EQ(metrics->allocations, 1u);
  EXPECT_GT(metrics->total_load_misses, 0.0);
  ASSERT_EQ(metrics->functions.size(), 1u);
  EXPECT_EQ(metrics->functions[0].function, "sweep");
  EXPECT_GT(metrics->functions[0].ipc(), 0.0);
}

TEST(Engine, AllDramBeatsAllPmem) {
  const auto sys = paper();
  const Workload w = stream_workload(2e7, 0.0, 0.0, 5);
  ExecutionEngine engine(&sys, {});
  FixedTierMode dram(&sys, 0);
  FixedTierMode pmem(&sys, 1);
  const auto fast = engine.run(w, dram);
  const auto slow = engine.run(w, pmem);
  ASSERT_TRUE(fast && slow);
  EXPECT_GT(slow->total_ns, fast->total_ns);
  EXPECT_GT(fast->speedup_over(*slow), 1.3);
}

TEST(Engine, MemoryModeBetweenDramAndPmem) {
  const auto sys = paper();
  const Workload w = stream_workload(2e7, 0.0, 0.0, 5);
  ExecutionEngine engine(&sys, {});
  FixedTierMode dram(&sys, 0);
  FixedTierMode pmem(&sys, 1);
  MemoryModeExec mm(&sys, 0, 1, memsim::DramCacheModel(sys.tier(0).capacity()));
  const auto t_dram = engine.run(w, dram);
  const auto t_pmem = engine.run(w, pmem);
  const auto t_mm = engine.run(w, mm);
  ASSERT_TRUE(t_dram && t_pmem && t_mm);
  EXPECT_GE(t_mm->total_ns, t_dram->total_ns);
  EXPECT_LE(t_mm->total_ns, static_cast<Ns>(static_cast<double>(t_pmem->total_ns) * 1.6));
  EXPECT_GT(t_mm->dram_cache_hit_ratio, 0.0);
}

TEST(Engine, TierTrafficAccountedToCorrectTier) {
  const auto sys = paper();
  const Workload w = stream_workload(1e7, 0.0, 0.0, 2);
  FixedTierMode pmem(&sys, 1);
  ExecutionEngine engine(&sys, {});
  const auto metrics = engine.run(w, pmem);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_DOUBLE_EQ(metrics->tier_traffic[0].read_bytes, 0.0);
  EXPECT_GT(metrics->tier_traffic[1].read_bytes, 1e7 * 64.0 * 0.9);
}

TEST(Engine, BandwidthTimelineCoversRun) {
  const auto sys = paper();
  const Workload w = stream_workload(2e7, 0.0, 0.0, 4);
  FixedTierMode pmem(&sys, 1);
  ExecutionEngine engine(&sys, {});
  const auto metrics = engine.run(w, pmem);
  ASSERT_TRUE(metrics.has_value());
  ASSERT_EQ(metrics->tier_bw.size(), 2u);
  EXPECT_FALSE(metrics->tier_bw[1].empty());
  double peak = 0.0;
  for (const auto& p : metrics->tier_bw[1]) peak = std::max(peak, p.gbs);
  EXPECT_GT(peak, 1.0);
  EXPECT_LT(peak, sys.tier(1).spec().peak_read_gbs * 1.1);
}

TEST(Engine, PrefetchReducesRuntimeOfStreams) {
  const auto sys = paper();
  ExecutionEngine engine(&sys, {});
  FixedTierMode pmem_a(&sys, 1);
  FixedTierMode pmem_b(&sys, 1);
  const auto no_pf = engine.run(stream_workload(2e7, 0.0, 0.0, 3), pmem_a);
  const auto with_pf = engine.run(stream_workload(2e7, 0.0, 0.9, 3), pmem_b);
  ASSERT_TRUE(no_pf && with_pf);
  EXPECT_LT(with_pf->total_ns, no_pf->total_ns);
  EXPECT_LT(with_pf->total_load_misses, no_pf->total_load_misses * 0.2);
}

TEST(Engine, AppDirectThroughFlexMalloc) {
  const auto sys = paper();
  const Workload w = stream_workload(1e7, 0.0, 0.0, 2);

  flexmalloc::ParsedReport report;
  report.fallback_tier = "pmem";
  report.is_bom = true;
  report.entries.push_back(
      flexmalloc::ReportEntry{w.sites[0].stack, "dram", 0});
  auto fm = flexmalloc::FlexMalloc::create(
      {{"dram", sys.tier(0).capacity()}, {"pmem", sys.tier(1).capacity()}}, report, nullptr);
  ASSERT_TRUE(fm.has_value()) << fm.error();

  AppDirectMode mode(&sys, &*fm);
  ExecutionEngine engine(&sys, {});
  const auto metrics = engine.run(w, mode);
  ASSERT_TRUE(metrics.has_value()) << metrics.error();
  // The single object matched to DRAM: all traffic on tier 0.
  EXPECT_GT(metrics->tier_traffic[0].read_bytes, 0.0);
  EXPECT_DOUBLE_EQ(metrics->tier_traffic[1].read_bytes, 0.0);
  EXPECT_EQ(mode.tier_of(0).value(), 0u);
  EXPECT_GT(metrics->alloc_overhead_ns, 0.0);
}

TEST(Engine, MemoryBoundFractionInUnitRange) {
  const auto sys = paper();
  const Workload w = stream_workload(3e7, 3e6, 0.3, 3);
  FixedTierMode pmem(&sys, 1);
  ExecutionEngine engine(&sys, {});
  const auto metrics = engine.run(w, pmem);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_GE(metrics->memory_bound_fraction(), 0.0);
  EXPECT_LE(metrics->memory_bound_fraction(), 1.0);
}

}  // namespace
}  // namespace ecohmem::runtime
