// Parallel replay correctness: the engine's multi-threaded allocation
// replay must be a drop-in for the serial one — same placement decisions,
// same tier byte totals, same counters — at every thread count
// (docs/threading.md explains why that determinism holds).

#include "ecohmem/runtime/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ecohmem/apps/apps.hpp"
#include "ecohmem/flexmalloc/flexmalloc.hpp"
#include "ecohmem/runtime/observer.hpp"

namespace ecohmem::runtime {
namespace {

memsim::MemorySystem paper() { return *memsim::paper_system(6); }

/// Many objects churned through interleaved alloc/free/realloc bursts
/// between kernels — exercises the batching and object-sharding of the
/// parallel path.
Workload braided_workload(int object_count, int rounds) {
  WorkloadBuilder b("braided");
  const auto mod = b.add_module("braid.x", 1 << 20, 0);
  std::vector<std::size_t> objs;
  std::vector<KernelAccess> accesses;
  for (int i = 0; i < object_count; ++i) {
    const auto site = b.add_site(mod, "site" + std::to_string(i), "braid.cc",
                                 static_cast<std::uint32_t>(10 + i));
    const Bytes size = (Bytes{1} << 20) * static_cast<Bytes>(1 + i % 5);
    objs.push_back(b.add_object(site, size, AccessPattern::kSequential, 0.0, 0.6, 0.5));
    accesses.push_back(KernelAccess{objs.back(), 2e5, 4e4, static_cast<double>(size)});
  }
  const auto kernel = b.add_kernel("sweep", 1e8, 1e7, accesses);

  for (const auto obj : objs) b.alloc(obj);
  for (int r = 0; r < rounds; ++r) {
    b.run_kernel(kernel);
    for (int i = 0; i < object_count; ++i) {
      const Bytes size = (Bytes{1} << 20) * static_cast<Bytes>(1 + i % 5);
      if (i % 3 == 0) {
        b.realloc(objs[static_cast<std::size_t>(i)], size + (Bytes{1} << 16) * static_cast<Bytes>(r + 1));
      } else {
        b.free(objs[static_cast<std::size_t>(i)]);
        b.alloc(objs[static_cast<std::size_t>(i)]);
      }
    }
  }
  b.run_kernel(kernel);
  for (const auto obj : objs) b.free(obj);
  return b.build();
}

struct ReplayOutcome {
  RunMetrics metrics;
  std::vector<std::size_t> placement;            ///< engine tier per object
  std::vector<flexmalloc::TierStats> tier_stats;
};

struct ReplayConfig {
  Bytes dram_capacity = 64ull << 30;
  std::size_t site_stride = 2;  ///< every `stride`-th site maps to DRAM
};

/// Replays `workload` app-direct with every `site_stride`-th site mapped
/// to DRAM. The default config's capacities are large enough that no OOM
/// redirect can occur; the capacity-pressure tests shrink `dram_capacity`
/// so that redirects do happen and must still match serial replay.
Expected<ReplayOutcome> replay(const memsim::MemorySystem& system, const Workload& workload,
                               int threads, ExecutionObserver* observer = nullptr,
                               const ReplayConfig& config = {}) {
  flexmalloc::ParsedReport report;
  report.fallback_tier = "pmem";
  for (std::size_t s = 0; s < workload.sites.size(); s += config.site_stride) {
    report.entries.push_back(flexmalloc::ReportEntry{workload.sites[s].stack, "dram", 0});
  }

  flexmalloc::MatcherOptions matcher_options;
  matcher_options.match_cache = true;
  auto fm = flexmalloc::FlexMalloc::create({{"dram", config.dram_capacity},
                                            {"pmem", 256ull << 30}},
                                           report, nullptr, matcher_options);
  if (!fm) return unexpected(fm.error());

  AppDirectMode mode(&system, &*fm);
  EngineOptions options;
  options.replay_threads = threads;
  options.observer = observer;
  ExecutionEngine engine(&system, options);

  auto metrics = engine.run(workload, mode);
  if (!metrics) return unexpected(metrics.error());

  ReplayOutcome out{std::move(*metrics), {}, fm->stats()};
  out.placement.reserve(workload.objects.size());
  for (std::size_t o = 0; o < workload.objects.size(); ++o) {
    auto tier = mode.tier_of(o);
    if (!tier) return unexpected(tier.error());
    out.placement.push_back(*tier);
  }
  return out;
}

void expect_identical(const ReplayOutcome& serial, const ReplayOutcome& parallel,
                      const std::string& label) {
  EXPECT_EQ(serial.placement, parallel.placement) << label;
  EXPECT_EQ(serial.metrics.allocations, parallel.metrics.allocations) << label;
  EXPECT_EQ(serial.metrics.frees, parallel.metrics.frees) << label;
  EXPECT_EQ(serial.metrics.oom_redirects, parallel.metrics.oom_redirects) << label;
  EXPECT_EQ(serial.metrics.total_load_misses, parallel.metrics.total_load_misses) << label;
  // BOM matching cost is an exact per-lookup charge, so the overhead —
  // and with it the end-to-end clock — is bit-identical too, regardless
  // of the drain granularity (per op serially, per batch in parallel).
  EXPECT_EQ(serial.metrics.alloc_overhead_ns, parallel.metrics.alloc_overhead_ns) << label;
  EXPECT_EQ(serial.metrics.total_ns, parallel.metrics.total_ns) << label;
  ASSERT_EQ(serial.metrics.tier_traffic.size(), parallel.metrics.tier_traffic.size()) << label;
  for (std::size_t k = 0; k < serial.metrics.tier_traffic.size(); ++k) {
    // Bit-identical, not just close: kernels run serially in both paths.
    EXPECT_EQ(serial.metrics.tier_traffic[k].read_bytes,
              parallel.metrics.tier_traffic[k].read_bytes)
        << label << " tier " << serial.metrics.tier_traffic[k].tier;
    EXPECT_EQ(serial.metrics.tier_traffic[k].write_bytes,
              parallel.metrics.tier_traffic[k].write_bytes)
        << label << " tier " << serial.metrics.tier_traffic[k].tier;
  }
  ASSERT_EQ(serial.tier_stats.size(), parallel.tier_stats.size()) << label;
  for (std::size_t t = 0; t < serial.tier_stats.size(); ++t) {
    EXPECT_EQ(serial.tier_stats[t].allocations, parallel.tier_stats[t].allocations)
        << label << " tier " << serial.tier_stats[t].tier;
    EXPECT_EQ(serial.tier_stats[t].bytes, parallel.tier_stats[t].bytes)
        << label << " tier " << serial.tier_stats[t].tier;
  }
}

/// Alternates batches of small allocations (fit every tier — the guard
/// lets them fan out) with batches of big allocations that oversubscribe
/// a 16 MiB DRAM tier (the guard routes them through the in-order
/// fallback). Every big batch forces OOM redirects whose count and
/// placement depend on op order, so this exercises the exact scenario
/// the capacity guard exists for.
Workload pressured_workload(int rounds) {
  WorkloadBuilder b("pressured");
  const auto mod = b.add_module("pressure.x", 1 << 20, 0);
  std::vector<std::size_t> small_objs;
  std::vector<std::size_t> big_objs;
  std::vector<KernelAccess> accesses;
  for (int i = 0; i < 8; ++i) {
    const auto site = b.add_site(mod, "small" + std::to_string(i), "pressure.cc",
                                 static_cast<std::uint32_t>(10 + i));
    const Bytes size = Bytes{64} << 10;
    small_objs.push_back(b.add_object(site, size, AccessPattern::kSequential, 0.0, 0.6, 0.5));
    accesses.push_back(KernelAccess{small_objs.back(), 1e5, 2e4, static_cast<double>(size)});
  }
  for (int i = 0; i < 4; ++i) {
    const auto site = b.add_site(mod, "big" + std::to_string(i), "pressure.cc",
                                 static_cast<std::uint32_t>(100 + i));
    big_objs.push_back(
        b.add_object(site, Bytes{8} << 20, AccessPattern::kSequential, 0.0, 0.6, 0.5));
  }
  const auto kernel = b.add_kernel("sweep", 1e7, 1e6, accesses);

  for (int r = 0; r < rounds; ++r) {
    for (const auto obj : small_objs) b.alloc(obj);
    b.run_kernel(kernel);
    for (const auto obj : big_objs) b.alloc(obj);  // oversubscribes DRAM
    b.run_kernel(kernel);
    for (const auto obj : big_objs) b.free(obj);
    for (const auto obj : small_objs) b.free(obj);
  }
  return b.build();
}

TEST(ParallelReplay, BraidedWorkloadIsThreadCountIndependent) {
  const auto sys = paper();
  const Workload workload = braided_workload(/*object_count=*/23, /*rounds=*/6);

  const auto serial = replay(sys, workload, 1);
  ASSERT_TRUE(serial.has_value()) << serial.error();
  for (const int threads : {2, 4, 7}) {
    const auto parallel = replay(sys, workload, threads);
    ASSERT_TRUE(parallel.has_value()) << parallel.error();
    expect_identical(*serial, *parallel, "threads=" + std::to_string(threads));
  }
}

TEST(ParallelReplay, CapacityPressureRedirectsAreThreadCountIndependent) {
  const auto sys = paper();
  const Workload workload = pressured_workload(/*rounds=*/4);
  ReplayConfig config;
  config.dram_capacity = Bytes{16} << 20;
  config.site_stride = 1;  // every site designated DRAM

  const auto serial = replay(sys, workload, 1, nullptr, config);
  ASSERT_TRUE(serial.has_value()) << serial.error();
  // The pressure must be real: without redirects this test proves nothing.
  EXPECT_GT(serial->metrics.oom_redirects, 0u);
  for (const int threads : {2, 4, 7}) {
    const auto parallel = replay(sys, workload, threads, nullptr, config);
    ASSERT_TRUE(parallel.has_value()) << parallel.error();
    expect_identical(*serial, *parallel, "pressured threads=" + std::to_string(threads));
  }
}

TEST(ParallelReplay, BraidedWorkloadUnderCapacityPressureMatchesSerial) {
  // The braided alloc/free/realloc churn with a DRAM tier too small for
  // its DRAM-designated objects: every batch can contend on capacity, so
  // the guard keeps the whole allocation stream in program order and the
  // redirect counts must still match serial exactly.
  const auto sys = paper();
  const Workload workload = braided_workload(/*object_count=*/23, /*rounds=*/6);
  ReplayConfig config;
  config.dram_capacity = Bytes{16} << 20;

  const auto serial = replay(sys, workload, 1, nullptr, config);
  ASSERT_TRUE(serial.has_value()) << serial.error();
  EXPECT_GT(serial->metrics.oom_redirects, 0u);
  const auto parallel = replay(sys, workload, 4, nullptr, config);
  ASSERT_TRUE(parallel.has_value()) << parallel.error();
  expect_identical(*serial, *parallel, "braided pressured threads=4");
}

TEST(ParallelReplay, MiniAppWorkloadIsThreadCountIndependent) {
  const auto sys = paper();
  apps::AppOptions opt;
  opt.iterations = 3;
  const Workload workload = apps::make_app("minife", opt);

  const auto serial = replay(sys, workload, 1);
  ASSERT_TRUE(serial.has_value()) << serial.error();
  const auto parallel = replay(sys, workload, 4);
  ASSERT_TRUE(parallel.has_value()) << parallel.error();
  expect_identical(*serial, *parallel, "minife threads=4");
}

class NullObserver final : public ExecutionObserver {
 public:
  void on_alloc(Ns, std::uint64_t, std::uint64_t, Bytes, const bom::CallStack&) override {}
  void on_free(Ns, std::uint64_t) override {}
  void on_kernel(const KernelObservation&) override {}
};

TEST(ParallelReplay, ObserverIsRejected) {
  const auto sys = paper();
  const Workload workload = braided_workload(4, 1);
  NullObserver observer;
  const auto result = replay(sys, workload, 2, &observer);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().find("observer"), std::string::npos) << result.error();
}

/// A mode that leaves `concurrent_alloc_safe` at its false default.
class SerialOnlyMode final : public ExecutionMode {
 public:
  explicit SerialOnlyMode(const memsim::MemorySystem* system) : ExecutionMode(system) {}
  [[nodiscard]] std::string name() const override { return "serial-only"; }
  [[nodiscard]] Expected<std::uint64_t> on_alloc(std::size_t, const ObjectSpec&, const SiteSpec&,
                                                 Bytes size) override {
    const std::uint64_t address = next_;
    next_ += (size + kCacheLine - 1) / kCacheLine * kCacheLine;
    return address;
  }
  [[nodiscard]] Status on_free(std::size_t, std::uint64_t) override { return {}; }
  void resolve(const std::vector<LiveObjectRef>&, const std::vector<memsim::KernelObjectMisses>&,
               std::vector<ObjectTraffic>&) override {}

 private:
  std::uint64_t next_ = 1ull << 40;
};

TEST(ParallelReplay, NonConcurrentModeIsRejected) {
  const auto sys = paper();
  const Workload workload = braided_workload(4, 1);
  SerialOnlyMode mode(&sys);
  EngineOptions options;
  options.replay_threads = 2;
  ExecutionEngine engine(&sys, options);
  const auto result = engine.run(workload, mode);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().find("serial-only"), std::string::npos) << result.error();
}

TEST(ParallelReplay, NonPositiveThreadCountIsRejected) {
  const auto sys = paper();
  const Workload workload = braided_workload(2, 1);
  flexmalloc::ParsedReport report;
  report.fallback_tier = "pmem";
  auto fm = flexmalloc::FlexMalloc::create({{"dram", 1ull << 30}, {"pmem", 1ull << 30}}, report,
                                           nullptr);
  ASSERT_TRUE(fm.has_value());
  AppDirectMode mode(&sys, &*fm);
  for (const int threads : {0, -3}) {
    EngineOptions options;
    options.replay_threads = threads;
    ExecutionEngine engine(&sys, options);
    const auto result = engine.run(workload, mode);
    ASSERT_FALSE(result.has_value());
    EXPECT_NE(result.error().find("replay_threads"), std::string::npos) << result.error();
  }
}

}  // namespace
}  // namespace ecohmem::runtime
