// Tests for the source-level determinism lint (check/srclint.hpp),
// driven by the on-disk fixture trees under tests/check/srclint_fixtures:
// `fire/` holds one tiny file per rule that must produce findings,
// `clean/` the same constructs silenced by suppressions, sanctioned
// paths, or correct code. ECOHMEM_SRCLINT_FIXTURES is injected by the
// test's CMake entry.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "ecohmem/check/srclint.hpp"

namespace ecohmem::check {
namespace {

std::string fixtures(const std::string& tree) {
  return std::string(ECOHMEM_SRCLINT_FIXTURES) + "/" + tree;
}

std::size_t count_rule(const SrclintResult& result, std::string_view id) {
  std::size_t n = 0;
  for (const auto& d : result.diagnostics) n += d.rule == id ? 1 : 0;
  return n;
}

TEST(Srclint, RuleTableAndLookup) {
  const auto& rules = srclint_rules();
  ASSERT_EQ(rules.size(), 4u);
  for (const auto& rule : rules) {
    EXPECT_TRUE(is_srclint_rule(rule.id));
    EXPECT_FALSE(rule.description.empty());
  }
  EXPECT_FALSE(is_srclint_rule("det-rnd"));
  EXPECT_FALSE(is_srclint_rule(""));
}

TEST(Srclint, FireTreeTripsEveryRule) {
  const auto result = srclint_scan_tree(fixtures("fire"));
  ASSERT_TRUE(result) << result.error();
  EXPECT_EQ(result->files_scanned, 4u);
  // nondet.cpp: 3 rand + 3 wall-clock; seeded.cpp (tools/): 1 rand.
  EXPECT_EQ(count_rule(*result, "det-rand"), 4u);
  EXPECT_EQ(count_rule(*result, "det-wallclock"), 3u);
  EXPECT_EQ(count_rule(*result, "det-unordered-iter"), 1u);
  EXPECT_EQ(count_rule(*result, "conc-raw-mutex"), 3u);
  EXPECT_FALSE(result->ok());
  for (const auto& d : result->diagnostics) {
    EXPECT_EQ(d.severity, Severity::kError);
    // Findings point at file:line relative to the scanned root.
    EXPECT_NE(d.artifact.find(':'), std::string::npos) << d.artifact;
  }
}

TEST(Srclint, FindingsAreDeterministicallyOrdered) {
  const auto first = srclint_scan_tree(fixtures("fire"));
  const auto second = srclint_scan_tree(fixtures("fire"));
  ASSERT_TRUE(first);
  ASSERT_TRUE(second);
  ASSERT_EQ(first->diagnostics.size(), second->diagnostics.size());
  for (std::size_t i = 0; i < first->diagnostics.size(); ++i) {
    EXPECT_EQ(first->diagnostics[i].artifact, second->diagnostics[i].artifact);
    EXPECT_EQ(first->diagnostics[i].rule, second->diagnostics[i].rule);
  }
  // Files are visited in sorted relative-path order: analyzer/ first.
  EXPECT_EQ(first->diagnostics.front().rule, "det-unordered-iter");
}

TEST(Srclint, CleanTreeHasNoFindings) {
  const auto result = srclint_scan_tree(fixtures("clean"));
  ASSERT_TRUE(result) << result.error();
  EXPECT_EQ(result->files_scanned, 4u);
  EXPECT_TRUE(result->diagnostics.empty())
      << result->diagnostics.front().rule << " at " << result->diagnostics.front().artifact
      << ": " << result->diagnostics.front().message;
  EXPECT_TRUE(result->ok());
}

TEST(Srclint, DisableSkipsRule) {
  SrclintOptions options;
  options.disabled_rules = {"det-rand", "conc-raw-mutex"};
  const auto result = srclint_scan_tree(fixtures("fire"), options);
  ASSERT_TRUE(result);
  EXPECT_EQ(count_rule(*result, "det-rand"), 0u);
  EXPECT_EQ(count_rule(*result, "conc-raw-mutex"), 0u);
  EXPECT_EQ(count_rule(*result, "det-wallclock"), 3u);
  EXPECT_EQ(result->rules_run.size(), 2u);
  ASSERT_EQ(result->rules_skipped.size(), 2u);
  EXPECT_NE(std::find(result->rules_skipped.begin(), result->rules_skipped.end(), "det-rand"),
            result->rules_skipped.end());
}

TEST(Srclint, MaxPerRuleFoldsExcessFindings) {
  SrclintOptions options;
  options.max_per_rule = 1;
  const auto result = srclint_scan_tree(fixtures("fire"), options);
  ASSERT_TRUE(result);
  // det-rand has 4 raw findings -> 1 reported + 1 summary.
  EXPECT_EQ(count_rule(*result, "det-rand"), 2u);
  bool summarized = false;
  for (const auto& d : result->diagnostics) {
    if (d.rule == "det-rand" && d.message.find("further findings") != std::string::npos) {
      summarized = true;
      EXPECT_NE(d.message.find('3'), std::string::npos);
    }
  }
  EXPECT_TRUE(summarized);
}

TEST(Srclint, MissingRootFails) {
  const auto result = srclint_scan_tree(fixtures("no_such_tree"));
  ASSERT_FALSE(result);
  EXPECT_NE(result.error().find("no src/ or tools/"), std::string::npos);
}

}  // namespace
}  // namespace ecohmem::check
