// Tests for the ecohmem-lint file driver (check::lint_files): artifact
// loading, loader pseudo-diagnostics, and one end-to-end clean pipeline
// (profiler -> trace -> analyzer -> advisor -> report) that must lint
// with zero findings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ecohmem/advisor/knapsack.hpp"
#include "ecohmem/advisor/report.hpp"
#include "ecohmem/analyzer/site_report.hpp"
#include "ecohmem/check/lint.hpp"
#include "ecohmem/profiler/profiler.hpp"
#include "ecohmem/runtime/engine.hpp"
#include "ecohmem/trace/trace_file.hpp"

namespace ecohmem::check {
namespace {

std::string tmp_path(const std::string& name) { return ::testing::TempDir() + name; }

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good());
  out << text;
}

bool has_rule(const LintResult& result, std::string_view id, Severity severity) {
  for (const auto& d : result.diagnostics) {
    if (d.rule == id && d.severity == severity) return true;
  }
  return false;
}

/// A small two-object workload, profiled for real through the execution
/// engine (the same path ecohmem-profile takes).
runtime::Workload profiled_workload() {
  runtime::WorkloadBuilder b("lint-e2e");
  const auto mod = b.add_module("lint.x", 1 << 20, 0);
  const auto hot_site = b.add_site(mod, "hot", "lint.cc", 10);
  const auto cold_site = b.add_site(mod, "cold", "lint.cc", 20);
  const auto hot =
      b.add_object(hot_site, 1ull << 26, runtime::AccessPattern::kRandom, 0.1, 0.5, 0.0);
  const auto cold =
      b.add_object(cold_site, 1ull << 26, runtime::AccessPattern::kRandom, 0.1, 0.5, 0.0);
  const auto k = b.add_kernel("kernel", 1e8, 1e7,
                              {runtime::KernelAccess{hot, 9e6, 0.0, 1 << 26},
                               runtime::KernelAccess{cold, 1e6, 2e6, 1 << 26}});
  b.alloc(hot).alloc(cold);
  for (int i = 0; i < 3; ++i) b.run_kernel(k);
  b.free(hot).free(cold);
  return b.build();
}

TEST(LintFiles, CleanPipelineEndToEnd) {
  // Profile the workload through the engine, exactly as ecohmem-profile does.
  const auto workload = profiled_workload();
  const auto sys = *memsim::paper_system(6);
  profiler::Profiler prof;
  runtime::EngineOptions eopt;
  eopt.observer = &prof;
  runtime::ExecutionEngine engine(&sys, eopt);
  runtime::FixedTierMode mode(&sys, 1);
  ASSERT_TRUE(engine.run(workload, mode).has_value());
  const trace::Trace t = prof.take_trace();

  const std::string trace_path = tmp_path("lint_e2e.trc");
  const std::string sites_path = tmp_path("lint_e2e_sites.csv");
  const std::string report_path = tmp_path("lint_e2e_report.txt");
  const std::string config_path = tmp_path("lint_e2e_config.ini");

  ASSERT_TRUE(trace::save_trace(trace_path, t, *workload.modules).ok());

  const auto analysis = analyzer::analyze(t);
  ASSERT_TRUE(analysis.has_value()) << analysis.error();
  ASSERT_TRUE(analyzer::save_site_csv(sites_path, *analysis, *workload.modules).ok());

  const auto cfg = advisor::AdvisorConfig::dram_pmem(1ull << 30, 0.0);
  write_file(config_path, cfg.to_config_text());

  const auto placement = advisor::place_by_density(analysis->sites, cfg);
  ASSERT_TRUE(placement.has_value()) << placement.error();
  ASSERT_TRUE(advisor::save_report(report_path, *placement, advisor::ReportFormat::kBom,
                                   *workload.modules)
                  .ok());

  LintInputs inputs;
  inputs.trace_path = trace_path;
  inputs.sites_path = sites_path;
  inputs.report_path = report_path;
  inputs.config_path = config_path;
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_TRUE(result->ok());
  EXPECT_TRUE(result->diagnostics.empty())
      << result->diagnostics.front().rule << ": " << result->diagnostics.front().message;
  EXPECT_GE(result->rules_run.size(), 15u);
}

TEST(LintFiles, NothingToLintIsAHardError) {
  const auto result = lint_files(LintInputs{});
  EXPECT_FALSE(result.has_value());
}

TEST(LintFiles, MissingTraceIsALoadDiagnostic) {
  LintInputs inputs;
  inputs.trace_path = tmp_path("no_such.trc");
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_TRUE(has_rule(*result, "trace-load", Severity::kError));
}

TEST(LintFiles, DoubleFreeTraceFiresPairingRule) {
  trace::Trace t;
  bom::ModuleTable modules;
  modules.add_module("app.x", 1 << 20);
  const auto site = t.stacks.intern(bom::CallStack{{{0, 0x100}}});
  t.events.emplace_back(trace::AllocEvent{100, 1, 0x1000, 64, site, trace::AllocKind::kMalloc});
  t.events.emplace_back(trace::FreeEvent{200, 1});
  t.events.emplace_back(trace::FreeEvent{300, 1});

  const std::string path = tmp_path("lint_doublefree.trc");
  ASSERT_TRUE(trace::save_trace(path, t, modules).ok());

  LintInputs inputs;
  inputs.trace_path = path;
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_TRUE(has_rule(*result, "trace-alloc-pairing", Severity::kError));
  // The analyzer replay fails on the malformed trace; the driver notes it
  // and skips analyzer-level rules instead of aborting the lint.
  EXPECT_TRUE(has_rule(*result, "trace-load", Severity::kInfo));
}

TEST(LintFiles, NegativeCoefficientConfigFiresConfigRule) {
  const std::string path = tmp_path("lint_negcoef.ini");
  write_file(path,
             "[memory]\nname = dram\nlimit = 1073741824\nload_coef = -2.5\n\n"
             "[memory]\nname = pmem\nlimit = 1099511627776\nfallback = true\norder = 1\n");
  LintInputs inputs;
  inputs.config_path = path;
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_TRUE(has_rule(*result, "config-coefficients", Severity::kError));
}

TEST(LintFiles, MalformedReportSizeIsALoadDiagnostic) {
  const std::string path = tmp_path("lint_badsize.txt");
  write_file(path, "# format = bom\napp.x!0x100 @ dram # size=18446744073709551616\n");
  LintInputs inputs;
  inputs.report_path = path;
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_TRUE(has_rule(*result, "report-load", Severity::kError));
}

TEST(LintFiles, DisableSilencesLoaderPseudoRules) {
  LintInputs inputs;
  inputs.trace_path = tmp_path("no_such_disabled.trc");
  CheckOptions options;
  options.disabled_rules = {"trace-load"};
  const auto result = lint_files(inputs, options);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  for (const auto& d : result->diagnostics) EXPECT_NE(d.rule, "trace-load");
}

TEST(LintFiles, PseudoRuleIdsAreExported) {
  const auto& ids = pseudo_rule_ids();
  EXPECT_NE(std::find(ids.begin(), ids.end(), "trace-load"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "report-load"), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), "trace-index-load"), ids.end());
  EXPECT_EQ(std::find(ids.begin(), ids.end(), "trace-alloc-pairing"), ids.end());
}

TEST(LintFiles, ReportOnlyLintUsesSyntheticModules) {
  const std::string path = tmp_path("lint_reportonly.txt");
  write_file(path,
             "# format = bom\n# fallback = pmem\n"
             "app.x!0x100 @ dram # size=64\n"
             "app.x!0x100 @ pmem # size=64\n");
  LintInputs inputs;
  inputs.report_path = path;
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value());
  // Without a trace, module identities come from the report itself (noted
  // as info) and structural rules still run: the conflicting duplicate
  // entry is an error.
  EXPECT_TRUE(has_rule(*result, "report-load", Severity::kInfo));
  EXPECT_TRUE(has_rule(*result, "report-duplicate-entry", Severity::kError));
}

TEST(LintFiles, StaleSitesCsvFiresUnknownStack) {
  trace::Trace t;
  bom::ModuleTable modules;
  modules.add_module("app.x", 1 << 20);
  const auto site = t.stacks.intern(bom::CallStack{{{0, 0x100}}});
  t.events.emplace_back(trace::AllocEvent{100, 1, 0x1000, 64, site, trace::AllocKind::kMalloc});
  t.events.emplace_back(trace::FreeEvent{200, 1});
  const std::string trace_path = tmp_path("lint_stale.trc");
  ASSERT_TRUE(trace::save_trace(trace_path, t, modules).ok());

  const std::string csv_path = tmp_path("lint_stale_sites.csv");
  write_file(csv_path,
             "callstack,allocs,max_size,peak_live,load_misses,store_misses,"
             "avg_load_latency_ns,exec_bw_gbs,alloc_bw_gbs,exec_sys_bw_gbs,"
             "first_alloc_ns,last_free_ns,mean_lifetime_ns,has_writes\n"
             "\"app.x!0xdddd\",1,64,64,0,0,0,0,0,0,100,200,100,0\n");

  LintInputs inputs;
  inputs.trace_path = trace_path;
  inputs.sites_path = csv_path;
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_TRUE(has_rule(*result, "sites-unknown-stack", Severity::kError));
}

/// Writes a small valid v3 trace and returns its bytes.
std::string small_v3_bytes(const std::string& path) {
  trace::Trace t;
  bom::ModuleTable modules;
  modules.add_module("app.x", 1 << 20);
  const auto site = t.stacks.intern(bom::CallStack{{{0, 0x100}}});
  for (std::uint64_t i = 0; i < 64; ++i) {
    t.events.emplace_back(
        trace::AllocEvent{10 * i, i + 1, 0x1000 + (i << 12), 64, site, trace::AllocKind::kMalloc});
    t.events.emplace_back(trace::FreeEvent{10 * i + 5, i + 1});
  }
  trace::TraceWriteOptions opt;
  opt.indexed = true;
  opt.block_events = 16;
  EXPECT_TRUE(trace::save_trace(path, t, modules, opt).ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(LintFiles, ValidV3TraceRunsIndexRuleClean) {
  const std::string path = tmp_path("lint_v3_clean.trc");
  small_v3_bytes(path);
  LintInputs inputs;
  inputs.trace_path = path;
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_TRUE(result->ok());
  EXPECT_NE(std::find(result->rules_run.begin(), result->rules_run.end(), "trace-v3-index"),
            result->rules_run.end());
}

TEST(LintFiles, CorruptV3IndexFiresIndexRuleDespiteLoadFailure) {
  const std::string path = tmp_path("lint_v3_corrupt.trc");
  std::string bytes = small_v3_bytes(path);
  // Bump the first index entry's event count: the strict loader rejects
  // the trace (trace-load), but the lenient index view still reaches the
  // trace-v3-index rule, which pinpoints the sum mismatch.
  std::uint64_t footer_offset = 0;
  std::memcpy(&footer_offset, bytes.data() + bytes.size() - 16, 8);
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data() + footer_offset + 8, 8);
  ++count;
  std::memcpy(bytes.data() + footer_offset + 8, &count, 8);
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  LintInputs inputs;
  inputs.trace_path = path;
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_FALSE(result->ok());
  // The strict load failure degrades to a salvage-mode read (block 0 is
  // dropped: it decodes 16 of the 17 events the tampered index claims),
  // while trace-v3-index still pinpoints the sum mismatch and the
  // recovered coverage (112/129 < 0.9) fails the salvage gate.
  EXPECT_TRUE(has_rule(*result, "trace-load", Severity::kWarning));
  EXPECT_TRUE(has_rule(*result, "trace-v3-index", Severity::kError));
  EXPECT_TRUE(has_rule(*result, "trace-salvage-coverage", Severity::kError));
}

/// Same trace as small_v3_bytes, written with per-block compression.
std::string small_v3c_bytes(const std::string& path) {
  trace::Trace t;
  bom::ModuleTable modules;
  modules.add_module("app.x", 1 << 20);
  const auto site = t.stacks.intern(bom::CallStack{{{0, 0x100}}});
  for (std::uint64_t i = 0; i < 64; ++i) {
    t.events.emplace_back(
        trace::AllocEvent{10 * i, i + 1, 0x1000 + (i << 12), 64, site, trace::AllocKind::kMalloc});
    t.events.emplace_back(trace::FreeEvent{10 * i + 5, i + 1});
  }
  trace::TraceWriteOptions opt;
  opt.indexed = true;
  opt.block_events = 16;
  opt.compress = true;
  EXPECT_TRUE(trace::save_trace(path, t, modules, opt).ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(LintFiles, CompressedV3TraceLintsClean) {
  const std::string path = tmp_path("lint_v3c_clean.trc");
  small_v3c_bytes(path);
  LintInputs inputs;
  inputs.trace_path = path;
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_TRUE(result->ok());
  EXPECT_NE(std::find(result->rules_run.begin(), result->rules_run.end(),
                      "trace-block-compression"),
            result->rules_run.end());
}

TEST(LintFiles, CompressedBodyCountMismatchFiresCompressionRule) {
  const std::string path = tmp_path("lint_v3c_badbody.trc");
  std::string bytes = small_v3c_bytes(path);
  // Bump the first block body's own declared count (the varint right
  // after the 2-byte magic/layout prelude; 16 is a 1-byte varint).
  std::uint64_t footer_offset = 0;
  std::memcpy(&footer_offset, bytes.data() + bytes.size() - 16, 8);
  std::uint64_t block0 = 0;
  std::memcpy(&block0, bytes.data() + footer_offset, 8);
  ASSERT_EQ(static_cast<unsigned char>(bytes[block0 + 2]), 16u);
  bytes[block0 + 2] = 17;
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  LintInputs inputs;
  inputs.trace_path = path;
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_FALSE(result->ok());
  EXPECT_TRUE(has_rule(*result, "trace-block-compression", Severity::kError));
}

TEST(LintFiles, DroppedCompressionFlagFiresCompressionRule) {
  const std::string path = tmp_path("lint_v3c_noflag.trc");
  std::string bytes = small_v3c_bytes(path);
  // Clear the flag bit on the first index entry: the body still opens
  // with the compressed-block magic, which is never a valid event tag.
  std::uint64_t footer_offset = 0;
  std::memcpy(&footer_offset, bytes.data() + bytes.size() - 16, 8);
  std::uint64_t raw_count = 0;
  std::memcpy(&raw_count, bytes.data() + footer_offset + 8, 8);
  ASSERT_NE(raw_count & (1ull << 63), 0u);
  raw_count &= ~(1ull << 63);
  std::memcpy(bytes.data() + footer_offset + 8, &raw_count, 8);
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  LintInputs inputs;
  inputs.trace_path = path;
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_FALSE(result->ok());
  EXPECT_TRUE(has_rule(*result, "trace-block-compression", Severity::kError));
}

TEST(LintFiles, StructurallyUnreadableV3IndexIsALoadDiagnostic) {
  const std::string path = tmp_path("lint_v3_noindex.trc");
  std::string bytes = small_v3_bytes(path);
  // Destroy the trailer magic: the index cannot even be enumerated. The
  // salvage fallback recovers every event by sequential scan, so the
  // load and index diagnostics are warnings and the lint passes — the
  // damage is fully accounted, not fatal.
  bytes[bytes.size() - 1] = '?';
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  LintInputs inputs;
  inputs.trace_path = path;
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_TRUE(result->ok());
  EXPECT_TRUE(has_rule(*result, "trace-load", Severity::kWarning));
  EXPECT_TRUE(has_rule(*result, "trace-index-load", Severity::kWarning));
  EXPECT_TRUE(has_rule(*result, "trace-salvage-coverage", Severity::kWarning));
}

TEST(LintFiles, MigrationLogLintsCleanAloneAndWithPolicy) {
  const std::string log_path = tmp_path("lint_migration.csv");
  const std::string policy_path = tmp_path("lint_migration_policy.ini");
  write_file(log_path,
             "at_ns,object,from_tier,to_tier,bytes,offset,partial\n"
             "1000,7,1,0,4096,0,0\n"
             "2000,9,1,0,2097152,2097152,1\n"
             "# summary scheduled=2 applied=2 partial=1 cancelled=0 "
             "migrated_bytes=2101248\n");
  write_file(policy_path, "[online]\nchunk_bytes = 2MB\nhuge_object_bytes = 1GB\n");

  LintInputs inputs;
  inputs.migration_log_path = log_path;
  auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_TRUE(result->ok());
  EXPECT_NE(std::find(result->rules_run.begin(), result->rules_run.end(),
                      "migration-conservation"),
            result->rules_run.end());

  // The alignment rule only joins once the policy INI is also given.
  inputs.online_path = policy_path;
  result = lint_files(inputs);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_TRUE(result->ok());
  EXPECT_NE(std::find(result->rules_run.begin(), result->rules_run.end(),
                      "migration-chunk-alignment"),
            result->rules_run.end());
}

TEST(LintFiles, MalformedMigrationLogIsALoadDiagnostic) {
  const std::string path = tmp_path("lint_migration_bad.csv");
  write_file(path, "at_ns,object\n1,2\n");
  LintInputs inputs;
  inputs.migration_log_path = path;
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_FALSE(result->ok());
  EXPECT_TRUE(has_rule(*result, "migration-log-load", Severity::kError));
}

TEST(LintFiles, MissingMigrationLogIsALoadDiagnostic) {
  LintInputs inputs;
  inputs.migration_log_path = tmp_path("no_such_migration.csv");
  const auto result = lint_files(inputs);
  ASSERT_TRUE(result.has_value()) << result.error();
  EXPECT_FALSE(result->ok());
  EXPECT_TRUE(has_rule(*result, "migration-log-load", Severity::kError));
}

}  // namespace
}  // namespace ecohmem::check
