// srclint fixture: the same banned constructs as fire/, silenced by
// inline suppressions (same line and previous line) — must scan clean.
// Never compiled — scanned by test_srclint only.
#include <chrono>
#include <cstdlib>

int fixture_suppressed_rand() {
  // srclint-ok: det-rand (fixture: documents the previous-line form)
  std::srand(42);
  return rand() % 10;  // srclint-ok: det-rand (fixture: same-line form)
}

long fixture_suppressed_clock() {
  const auto t0 = std::chrono::steady_clock::now();  // srclint-ok: det-wallclock (fixture)
  return t0.time_since_epoch().count();
}

long fixture_mentions_in_comments_only() {
  // Comments are stripped before matching: rand(), std::random_device,
  // steady_clock::now() and std::mutex in prose must not fire.
  /* block comments too: time(nullptr) */
  return 0;
}
