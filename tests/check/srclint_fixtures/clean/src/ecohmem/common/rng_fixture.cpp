// srclint fixture: files under src/ecohmem/common/rng* are sanctioned
// for det-rand — the deterministic generator implementation itself may
// reference standard engines. Never compiled; scanned by test_srclint.
#include <random>

unsigned fixture_sanctioned_engine() {
  std::mt19937 gen(1234);
  return gen();
}
