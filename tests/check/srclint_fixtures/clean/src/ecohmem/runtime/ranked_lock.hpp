// srclint fixture: the sanctioned concurrency vocabulary — ranked
// wrappers and condition_variable_any — must scan clean.
// Never compiled; scanned by test_srclint.
#pragma once
#include <condition_variable>

namespace fixture {
class RankedMutexLike {
 public:
  void lock() {}
  void unlock() {}
};
}  // namespace fixture

struct FixtureRankedLocks {
  fixture::RankedMutexLike mu;
  std::condition_variable_any cv;
};
