// srclint fixture: analyzer-path file that uses unordered containers
// correctly — must scan clean. Never compiled; scanned by test_srclint.
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

void fixture_sorted_dump() {
  std::unordered_map<int, double> sites;
  sites[1] = 2.0;

  // Copy into an ordered sequence before anything order-sensitive.
  std::vector<std::pair<int, double>> rows(sites.begin(), sites.end());
  std::sort(rows.begin(), rows.end());
  for (const auto& [id, weight] : rows) {
    std::printf("%d %f\n", id, weight);
  }

  // srclint-ok: det-unordered-iter (fixture: order-independent fold)
  for (const auto& [id, weight] : sites) {
    (void)id;
    (void)weight;
  }
}
