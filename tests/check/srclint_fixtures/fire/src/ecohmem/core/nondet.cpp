// srclint fixture: every line in this file that names a banned
// construct must produce a finding (det-rand, det-wallclock).
// Never compiled — scanned by test_srclint only.
#include <chrono>
#include <cstdlib>
#include <random>

int fixture_rand_source() {
  std::random_device rd;  // finding: det-rand
  std::srand(42);         // finding: det-rand
  return rand() % 10;     // finding: det-rand
}

long fixture_wall_clock() {
  const auto t0 = std::chrono::steady_clock::now();  // finding: det-wallclock
  const auto t1 = std::chrono::system_clock::now();  // finding: det-wallclock
  (void)t1;
  (void)time(nullptr);  // finding: det-wallclock
  return t0.time_since_epoch().count();
}
