// srclint fixture: unordered-container iteration in an analyzer path
// (det-unordered-iter). Never compiled — scanned by test_srclint only.
#include <cstdio>
#include <unordered_map>

void fixture_dump() {
  std::unordered_map<int, double> sites;
  sites[1] = 2.0;
  for (const auto& [id, weight] : sites) {  // finding: det-unordered-iter
    std::printf("%d %f\n", id, weight);
  }
}
