// srclint fixture: raw standard mutexes in library code
// (conc-raw-mutex). Never compiled — scanned by test_srclint only.
#pragma once
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

struct FixtureRawLocks {
  std::mutex mu;                 // finding: conc-raw-mutex
  std::shared_mutex shared_mu;   // finding: conc-raw-mutex
  std::condition_variable cv;    // finding: conc-raw-mutex
};
