// srclint fixture: the tools/ tree is in scope for the det-* rules.
// Never compiled — scanned by test_srclint only.
#include <random>

unsigned fixture_tool_entropy() {
  std::mt19937 gen(1234);  // finding: det-rand
  return gen();
}
