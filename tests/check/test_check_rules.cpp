// Per-rule tests for the ecohmem-lint invariant checker: every built-in
// rule id has at least one test feeding it a violating artifact (and
// asserting that exact id fires) plus a clean counterpart.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "ecohmem/advisor/knapsack.hpp"
#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/bom/format.hpp"
#include "ecohmem/check/rule.hpp"

namespace ecohmem::check {
namespace {

using trace::AllocEvent;
using trace::AllocKind;
using trace::FreeEvent;
using trace::SampleEvent;
using trace::StackId;

/// A well-formed two-site trace: disjoint allocations, attributed
/// samples, everything freed.
trace::TraceBundle clean_bundle() {
  trace::TraceBundle b;
  b.modules.add_module("app.x", 1 << 20);
  trace::Trace& t = b.trace;
  const StackId site_a = t.stacks.intern(bom::CallStack{{{0, 0x100}}});
  const StackId site_b = t.stacks.intern(bom::CallStack{{{0, 0x200}}});
  const std::uint32_t fn = t.functions.intern("kernel");
  t.events.emplace_back(AllocEvent{100, 1, 0x1000, 4096, site_a, AllocKind::kMalloc});
  t.events.emplace_back(AllocEvent{200, 2, 0x10000, 8192, site_b, AllocKind::kMalloc});
  t.events.emplace_back(SampleEvent{500, 0x1010, 10.0, 150.0, false, fn});
  t.events.emplace_back(SampleEvent{600, 0x10020, 4.0, 0.0, true, fn});
  t.events.emplace_back(FreeEvent{1000, 1});
  t.events.emplace_back(FreeEvent{1100, 2});
  return b;
}

RunResult run(const CheckContext& ctx, const CheckOptions& options = {}) {
  return RuleRegistry::builtin().run_all(ctx, options);
}

std::vector<Diagnostic> diags_with(const RunResult& result, std::string_view id) {
  std::vector<Diagnostic> out;
  for (const auto& d : result.diagnostics) {
    if (d.rule == id) out.push_back(d);
  }
  return out;
}

void expect_fires(const RunResult& result, std::string_view id,
                  Severity severity = Severity::kError) {
  const auto found = diags_with(result, id);
  ASSERT_FALSE(found.empty()) << "rule " << id << " did not fire";
  EXPECT_EQ(found.front().severity, severity) << found.front().message;
}

void expect_silent(const RunResult& result, std::string_view id) {
  const auto found = diags_with(result, id);
  EXPECT_TRUE(found.empty()) << "rule " << id << " fired: " << found.front().message;
}

// ------------------------------------------------------------ registry

TEST(Registry, BuiltinHasUniqueIdsAndFind) {
  const RuleRegistry registry = RuleRegistry::builtin();
  EXPECT_GE(registry.rules().size(), 17u);
  std::set<std::string_view> ids;
  for (const auto& rule : registry.rules()) {
    EXPECT_TRUE(ids.insert(rule->id()).second) << "duplicate rule id " << rule->id();
    EXPECT_FALSE(rule->description().empty());
  }
  EXPECT_NE(registry.find("report-capacity"), nullptr);
  EXPECT_EQ(registry.find("no-such-rule"), nullptr);
}

TEST(Registry, CleanBundleProducesNoFindings) {
  const auto b = clean_bundle();
  const auto analysis = analyzer::analyze(b.trace);
  ASSERT_TRUE(analysis.has_value()) << analysis.error();
  CheckContext ctx;
  ctx.bundle = &b;
  ctx.analysis = &*analysis;
  const auto result = run(ctx);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.diagnostics.empty()) << result.diagnostics.front().message;
  EXPECT_GE(result.rules_run.size(), 9u);
}

TEST(Registry, DisabledRuleIsSkipped) {
  auto b = clean_bundle();
  b.trace.events.pop_back();  // leak object 2
  CheckContext ctx;
  ctx.bundle = &b;
  CheckOptions options;
  options.disabled_rules = {"trace-leaked-objects"};
  const auto result = run(ctx, options);
  expect_silent(result, "trace-leaked-objects");
  EXPECT_NE(std::find(result.rules_skipped.begin(), result.rules_skipped.end(),
                      "trace-leaked-objects"),
            result.rules_skipped.end());
}

TEST(Registry, MaxPerRuleTruncatesWithSummary) {
  auto b = clean_bundle();
  for (int i = 0; i < 10; ++i) b.trace.events.emplace_back(FreeEvent{2000, 1});
  CheckContext ctx;
  ctx.bundle = &b;
  CheckOptions options;
  options.max_per_rule = 3;
  const auto result = run(ctx, options);
  const auto found = diags_with(result, "trace-alloc-pairing");
  ASSERT_EQ(found.size(), 4u);  // 3 kept + 1 suppression note
  EXPECT_NE(found.back().message.find("suppressed"), std::string::npos);
}

// ------------------------------------------------------------ trace rules

TEST(TraceRules, MonotonicTime) {
  auto b = clean_bundle();
  b.trace.events.emplace_back(SampleEvent{50, 0x1010, 1.0, 0.0, false, 0});  // t=50 after t=1100
  CheckContext ctx;
  ctx.bundle = &b;
  expect_fires(run(ctx), "trace-monotonic-time");

  const auto clean = clean_bundle();
  CheckContext clean_ctx;
  clean_ctx.bundle = &clean;
  expect_silent(run(clean_ctx), "trace-monotonic-time");
}

TEST(TraceRules, AllocPairingDoubleFree) {
  auto b = clean_bundle();
  b.trace.events.emplace_back(FreeEvent{1200, 1});  // object 1 already freed
  CheckContext ctx;
  ctx.bundle = &b;
  const auto result = run(ctx);
  expect_fires(result, "trace-alloc-pairing");
  EXPECT_NE(diags_with(result, "trace-alloc-pairing").front().message.find("double free"),
            std::string::npos);
}

TEST(TraceRules, AllocPairingFreeOfUnknownId) {
  auto b = clean_bundle();
  b.trace.events.emplace_back(FreeEvent{1200, 777});
  CheckContext ctx;
  ctx.bundle = &b;
  const auto result = run(ctx);
  expect_fires(result, "trace-alloc-pairing");
  EXPECT_NE(diags_with(result, "trace-alloc-pairing").front().message.find("unknown"),
            std::string::npos);
}

TEST(TraceRules, AllocPairingReallocatedWhileLive) {
  auto b = clean_bundle();
  // Object id 3 allocated twice with no intervening free.
  b.trace.events.emplace_back(AllocEvent{1200, 3, 0x20000, 64, 0, AllocKind::kMalloc});
  b.trace.events.emplace_back(AllocEvent{1300, 3, 0x30000, 64, 0, AllocKind::kMalloc});
  CheckContext ctx;
  ctx.bundle = &b;
  expect_fires(run(ctx), "trace-alloc-pairing");
}

TEST(TraceRules, OverlappingLiveRanges) {
  auto b = clean_bundle();
  // Object 4 lands inside object 3's still-live [0x20000, +4096) range.
  b.trace.events.emplace_back(AllocEvent{1200, 3, 0x20000, 4096, 0, AllocKind::kMalloc});
  b.trace.events.emplace_back(AllocEvent{1300, 4, 0x20800, 64, 0, AllocKind::kMalloc});
  CheckContext ctx;
  ctx.bundle = &b;
  expect_fires(run(ctx), "trace-overlapping-live");

  const auto clean = clean_bundle();
  CheckContext clean_ctx;
  clean_ctx.bundle = &clean;
  expect_silent(run(clean_ctx), "trace-overlapping-live");
}

TEST(TraceRules, LeakedObjectsWarns) {
  auto b = clean_bundle();
  b.trace.events.pop_back();  // drop the free of object 2
  CheckContext ctx;
  ctx.bundle = &b;
  expect_fires(run(ctx), "trace-leaked-objects", Severity::kWarning);
}

TEST(TraceRules, StackIdOutOfRange) {
  auto b = clean_bundle();
  b.trace.events.emplace_back(AllocEvent{1200, 3, 0x20000, 64, StackId{99}, AllocKind::kMalloc});
  CheckContext ctx;
  ctx.bundle = &b;
  expect_fires(run(ctx), "trace-stack-ids");
}

TEST(TraceRules, FunctionIdOutOfRangeWarns) {
  auto b = clean_bundle();
  b.trace.events.emplace_back(SampleEvent{1200, 0x90000, 1.0, 0.0, false, 42});
  CheckContext ctx;
  ctx.bundle = &b;
  expect_fires(run(ctx), "trace-stack-ids", Severity::kWarning);
}

TEST(TraceRules, FrameBeyondModuleText) {
  auto b = clean_bundle();
  // Offset 0x200000 lies beyond app.x's 1 MiB text segment.
  const StackId bad = b.trace.stacks.intern(bom::CallStack{{{0, 0x200000}}});
  b.trace.events.emplace_back(AllocEvent{1200, 3, 0x20000, 64, bad, AllocKind::kMalloc});
  b.trace.events.emplace_back(FreeEvent{1300, 3});
  CheckContext ctx;
  ctx.bundle = &b;
  expect_fires(run(ctx), "bom-frame-bounds");
}

TEST(TraceRules, FrameUnknownModule) {
  auto b = clean_bundle();
  const StackId bad = b.trace.stacks.intern(bom::CallStack{{{7, 0x10}}});
  b.trace.events.emplace_back(AllocEvent{1200, 3, 0x20000, 64, bad, AllocKind::kMalloc});
  b.trace.events.emplace_back(FreeEvent{1300, 3});
  CheckContext ctx;
  ctx.bundle = &b;
  expect_fires(run(ctx), "bom-frame-bounds");
}

// ------------------------------------------------------------ sites rules

TEST(SitesRules, MissesExceedTrace) {
  const auto b = clean_bundle();
  auto analysis = analyzer::analyze(b.trace);
  ASSERT_TRUE(analysis.has_value());
  analysis->sites[0].load_misses += 1000.0;  // invent sample mass
  CheckContext ctx;
  ctx.bundle = &b;
  ctx.analysis = &*analysis;
  expect_fires(run(ctx), "sites-misses-exceed-trace");
}

TEST(SitesRules, ZeroFootprintWithMisses) {
  SiteCsv csv;
  SiteCsvRow row;
  row.line = 2;
  row.callstack = "app.x!0x100";
  row.alloc_count = 1;
  row.max_size = 0;
  row.load_misses = 5.0;
  csv.rows.push_back(row);
  CheckContext ctx;
  ctx.sites = &csv;
  expect_fires(run(ctx), "sites-zero-footprint");
}

TEST(SitesRules, ZeroFootprintAllocsOnlyWarns) {
  SiteCsv csv;
  SiteCsvRow row;
  row.line = 2;
  row.callstack = "app.x!0x100";
  row.alloc_count = 3;
  csv.rows.push_back(row);
  CheckContext ctx;
  ctx.sites = &csv;
  expect_fires(run(ctx), "sites-zero-footprint", Severity::kWarning);
}

TEST(SitesRules, DuplicateStackInCsv) {
  SiteCsv csv;
  SiteCsvRow row;
  row.line = 2;
  row.callstack = "app.x!0x100";
  row.alloc_count = 1;
  row.max_size = 64;
  csv.rows.push_back(row);
  row.line = 3;
  csv.rows.push_back(row);
  CheckContext ctx;
  ctx.sites = &csv;
  expect_fires(run(ctx), "sites-duplicate-stack");
}

TEST(SitesRules, UnknownStackNotInTrace) {
  const auto b = clean_bundle();
  SiteCsv csv;
  SiteCsvRow row;
  row.line = 2;
  row.callstack = "app.x!0xdead";  // never interned in the trace
  row.alloc_count = 1;
  row.max_size = 64;
  csv.rows.push_back(row);
  CheckContext ctx;
  ctx.bundle = &b;
  ctx.sites = &csv;
  expect_fires(run(ctx), "sites-unknown-stack");

  // The same row keyed by a real site is clean.
  csv.rows[0].callstack = bom::format_bom(b.trace.stacks.stack(0), b.modules);
  expect_silent(run(ctx), "sites-unknown-stack");
}

// ------------------------------------------------------------ config/report

TEST(ConfigRules, NegativeCoefficient) {
  auto cfg = advisor::AdvisorConfig::dram_pmem(1 << 30, 0.0);
  cfg.tiers[0].load_coef = -1.0;
  CheckContext ctx;
  ctx.config = &cfg;
  expect_fires(run(ctx), "config-coefficients");
}

TEST(ConfigRules, NonFiniteCoefficient) {
  auto cfg = advisor::AdvisorConfig::dram_pmem(1 << 30, 0.0);
  cfg.tiers[1].store_coef = std::numeric_limits<double>::quiet_NaN();
  CheckContext ctx;
  ctx.config = &cfg;
  expect_fires(run(ctx), "config-coefficients");

  const auto clean = advisor::AdvisorConfig::dram_pmem(1 << 30, 0.125);
  CheckContext clean_ctx;
  clean_ctx.config = &clean;
  expect_silent(run(clean_ctx), "config-coefficients");
}

flexmalloc::ParsedReport bom_report(const bom::CallStack& stack, std::string tier, Bytes size) {
  flexmalloc::ParsedReport report;
  report.is_bom = true;
  report.fallback_tier = "pmem";
  flexmalloc::ReportEntry entry;
  entry.stack = stack;
  entry.tier = std::move(tier);
  entry.size = size;
  report.entries.push_back(std::move(entry));
  return report;
}

TEST(ReportRules, CapacityOverflow) {
  const auto cfg = advisor::AdvisorConfig::dram_pmem(4096, 0.0);
  const auto report = bom_report(bom::CallStack{{{0, 0x100}}}, "dram", 1 << 20);
  CheckContext ctx;
  ctx.config = &cfg;
  ctx.report = &report;
  expect_fires(run(ctx), "report-capacity");

  const auto fits = bom_report(bom::CallStack{{{0, 0x100}}}, "dram", 4096);
  ctx.report = &fits;
  expect_silent(run(ctx), "report-capacity");
}

TEST(ReportRules, CapacitySaturatesInsteadOfWrapping) {
  const auto cfg = advisor::AdvisorConfig::dram_pmem(4096, 0.0);
  auto report = bom_report(bom::CallStack{{{0, 0x100}}}, "dram",
                           std::numeric_limits<Bytes>::max());
  flexmalloc::ReportEntry second;
  second.stack = bom::CallStack{{{0, 0x200}}};
  second.tier = "dram";
  second.size = std::numeric_limits<Bytes>::max();  // would wrap to small if unchecked
  report.entries.push_back(std::move(second));
  CheckContext ctx;
  ctx.config = &cfg;
  ctx.report = &report;
  expect_fires(run(ctx), "report-capacity");
}

TEST(ReportRules, UnknownTier) {
  const auto cfg = advisor::AdvisorConfig::dram_pmem(1 << 30, 0.0);
  const auto report = bom_report(bom::CallStack{{{0, 0x100}}}, "hbm3", 64);
  CheckContext ctx;
  ctx.config = &cfg;
  ctx.report = &report;
  expect_fires(run(ctx), "report-unknown-tier");
}

TEST(ReportRules, MissingFallbackWarns) {
  auto report = bom_report(bom::CallStack{{{0, 0x100}}}, "dram", 64);
  report.fallback_tier.clear();
  CheckContext ctx;
  ctx.report = &report;
  expect_fires(run(ctx), "report-fallback", Severity::kWarning);
}

TEST(ReportRules, DuplicateEntryConflictingTiers) {
  auto report = bom_report(bom::CallStack{{{0, 0x100}}}, "dram", 64);
  flexmalloc::ReportEntry dup;
  dup.stack = bom::CallStack{{{0, 0x100}}};
  dup.tier = "pmem";
  report.entries.push_back(std::move(dup));
  CheckContext ctx;
  ctx.report = &report;
  expect_fires(run(ctx), "report-duplicate-entry");
}

TEST(ReportRules, DuplicateEntrySameTierWarns) {
  auto report = bom_report(bom::CallStack{{{0, 0x100}}}, "dram", 64);
  report.entries.push_back(report.entries.front());
  CheckContext ctx;
  ctx.report = &report;
  expect_fires(run(ctx), "report-duplicate-entry", Severity::kWarning);
}

TEST(ReportRules, DanglingSiteNotInTrace) {
  const auto b = clean_bundle();
  const auto report = bom_report(bom::CallStack{{{0, 0xdddd}}}, "dram", 64);
  CheckContext ctx;
  ctx.bundle = &b;
  ctx.report = &report;
  expect_fires(run(ctx), "report-site-in-trace");

  const auto placed = bom_report(b.trace.stacks.stack(0), "dram", 64);
  ctx.report = &placed;
  expect_silent(run(ctx), "report-site-in-trace");
}

TEST(ReportRules, BandwidthMoveOutsideClasses) {
  const auto b = clean_bundle();
  const auto analysis = analyzer::analyze(b.trace);
  ASSERT_TRUE(analysis.has_value());

  // Three tiers; site footprints (4 KiB / 8 KiB) never fit the 1-byte
  // DRAM budget, so the density pass places every site on 'hbm'.
  advisor::AdvisorConfig cfg;
  advisor::TierPolicy dram;
  dram.name = "dram";
  dram.limit = 1;
  advisor::TierPolicy hbm;
  hbm.name = "hbm";
  hbm.limit = 1ull << 30;
  hbm.order = 1;
  advisor::TierPolicy pmem;
  pmem.name = "pmem";
  pmem.limit = 1ull << 40;
  pmem.order = 2;
  pmem.fallback = true;
  cfg.tiers = {dram, hbm, pmem};

  const auto base = advisor::place_by_density(analysis->sites, cfg);
  ASSERT_TRUE(base.has_value());
  ASSERT_FALSE(base->decisions.empty());
  ASSERT_EQ(base->decisions.front().tier, "hbm");

  // Moving an hbm-placed site to pmem leaves the dram/pmem exchange
  // classes of the §VII pass: the report can't have come from it.
  const auto moved = bom_report(base->decisions.front().callstack, "pmem", 4096);
  CheckContext ctx;
  ctx.bundle = &b;
  ctx.analysis = &*analysis;
  ctx.config = &cfg;
  ctx.report = &moved;
  expect_fires(run(ctx), "report-bw-classes");

  // The same site kept on its base tier is clean.
  const auto kept = bom_report(base->decisions.front().callstack, "hbm", 4096);
  ctx.report = &kept;
  expect_silent(run(ctx), "report-bw-classes");
}

TEST(ReportRules, DramToPmemMoveIsAllowed) {
  const auto b = clean_bundle();
  const auto analysis = analyzer::analyze(b.trace);
  ASSERT_TRUE(analysis.has_value());
  const auto cfg = advisor::AdvisorConfig::dram_pmem(1 << 30, 0.0);
  const auto base = advisor::place_by_density(analysis->sites, cfg);
  ASSERT_TRUE(base.has_value());
  ASSERT_EQ(base->decisions.front().tier, "dram");

  const auto moved = bom_report(base->decisions.front().callstack, "pmem", 4096);
  CheckContext ctx;
  ctx.bundle = &b;
  ctx.analysis = &*analysis;
  ctx.config = &cfg;
  ctx.report = &moved;
  expect_silent(run(ctx), "report-bw-classes");
}

// ------------------------------------------------------------ trace-v3-index

/// Three chained 10-event blocks: 100..200..300..400, footer at 400.
TraceIndexView clean_index() {
  TraceIndexView idx;
  idx.events_offset = 100;
  idx.footer_offset = 400;
  idx.file_size = 496;
  idx.header_event_count = 30;
  idx.entries = {{100, 10, 5}, {200, 10, 50}, {300, 10, 500}};
  return idx;
}

TEST(TraceV3IndexRule, CleanIndexIsSilent) {
  const TraceIndexView idx = clean_index();
  CheckContext ctx;
  ctx.trace_index = &idx;
  const RunResult result = run(ctx);
  EXPECT_NE(std::find(result.rules_run.begin(), result.rules_run.end(), "trace-v3-index"),
            result.rules_run.end());
  expect_silent(result, "trace-v3-index");
}

TEST(TraceV3IndexRule, SkippedWithoutAnIndex) {
  CheckContext ctx;  // v1/v2 trace: no index view
  const RunResult result = run(ctx);
  EXPECT_NE(std::find(result.rules_skipped.begin(), result.rules_skipped.end(), "trace-v3-index"),
            result.rules_skipped.end());
}

TEST(TraceV3IndexRule, ReportsEveryViolationNotJustTheFirst) {
  TraceIndexView idx = clean_index();
  idx.entries[0].offset = 90;     // does not start at the event section
  idx.entries[1].count = 0;       // empty block (and the sum drops to 20)
  idx.entries[2].offset = 160;    // non-increasing offset
  idx.entries[2].first_time = 1;  // timestamp regression
  CheckContext ctx;
  ctx.trace_index = &idx;
  const auto found = diags_with(run(ctx), "trace-v3-index");
  EXPECT_GE(found.size(), 5u) << "expected one diagnostic per violation";
  for (const auto& d : found) EXPECT_EQ(d.severity, Severity::kError) << d.message;
}

TEST(TraceV3IndexRule, OffsetPastFooterFires) {
  TraceIndexView idx = clean_index();
  idx.entries[2].offset = 400;  // at the footer
  idx.entries[2].first_time = 600;
  CheckContext ctx;
  ctx.trace_index = &idx;
  expect_fires(run(ctx), "trace-v3-index");
}

TEST(TraceV3IndexRule, CountSumMismatchFires) {
  TraceIndexView idx = clean_index();
  idx.header_event_count = 31;
  CheckContext ctx;
  ctx.trace_index = &idx;
  expect_fires(run(ctx), "trace-v3-index");
}

TEST(TraceV3IndexRule, EmptyIndexMustMatchAnEmptyTrace) {
  TraceIndexView idx;
  idx.events_offset = 100;
  idx.footer_offset = 120;  // 20 stray event bytes with no block
  idx.file_size = 144;
  idx.header_event_count = 4;
  CheckContext ctx;
  ctx.trace_index = &idx;
  const auto found = diags_with(run(ctx), "trace-v3-index");
  EXPECT_EQ(found.size(), 2u);  // stray bytes + unaccounted events

  idx.footer_offset = 100;
  idx.header_event_count = 0;
  expect_silent(run(ctx), "trace-v3-index");
}

// -------------------------------------------------------- migration log

/// A well-formed two-row log (one whole move, one partial chunk) whose
/// summary restates exactly what the rows add up to.
constexpr std::string_view kCleanMigrationLog =
    "at_ns,object,from_tier,to_tier,bytes,offset,partial\n"
    "1000,7,1,0,4096,0,0\n"
    "2000,9,1,0,2097152,2097152,1\n"
    "# summary scheduled=3 applied=2 partial=1 cancelled=1 migrated_bytes=2101248\n";

TEST(MigrationLogParser, ParsesRowsAndSummary) {
  const auto log = parse_migration_log(kCleanMigrationLog);
  ASSERT_TRUE(log.has_value()) << log.error();
  ASSERT_EQ(log->rows.size(), 2u);
  EXPECT_EQ(log->rows[0].at, 1000);
  EXPECT_EQ(log->rows[0].object, 7u);
  EXPECT_EQ(log->rows[0].offset, 0u);
  EXPECT_FALSE(log->rows[0].partial);
  EXPECT_EQ(log->rows[1].line, 3u);
  EXPECT_EQ(log->rows[1].bytes, 2097152u);
  EXPECT_TRUE(log->rows[1].partial);
  EXPECT_TRUE(log->has_summary);
  EXPECT_EQ(log->scheduled, 3u);
  EXPECT_EQ(log->applied, 2u);
  EXPECT_EQ(log->partial_moves, 1u);
  EXPECT_EQ(log->cancelled, 1u);
  EXPECT_EQ(log->migrated_bytes, 2101248u);
}

TEST(MigrationLogParser, RejectsBadHeaderRowShapeAndSummaryField) {
  EXPECT_FALSE(parse_migration_log("").has_value());
  EXPECT_FALSE(parse_migration_log("time,object\n").has_value());
  // Six columns instead of seven.
  EXPECT_FALSE(parse_migration_log("at_ns,object,from_tier,to_tier,bytes,offset,partial\n"
                                   "1000,7,1,0,4096,0\n")
                   .has_value());
  // partial must be 0/1.
  EXPECT_FALSE(parse_migration_log("at_ns,object,from_tier,to_tier,bytes,offset,partial\n"
                                   "1000,7,1,0,4096,0,2\n")
                   .has_value());
  // Unknown summary field (a typo must not silently drop a counter).
  EXPECT_FALSE(parse_migration_log("at_ns,object,from_tier,to_tier,bytes,offset,partial\n"
                                   "# summary scheduled=0 applied=0 partail=0\n")
                   .has_value());
}

TEST(MigrationLogParser, TruncatedLogParsesWithoutSummary) {
  const auto log = parse_migration_log(
      "at_ns,object,from_tier,to_tier,bytes,offset,partial\n"
      "1000,7,1,0,4096,0,0\n");
  ASSERT_TRUE(log.has_value()) << log.error();
  EXPECT_EQ(log->rows.size(), 1u);
  EXPECT_FALSE(log->has_summary);
}

TEST(MigrationRules, CleanLogIsSilent) {
  const auto log = parse_migration_log(kCleanMigrationLog);
  ASSERT_TRUE(log.has_value());
  CheckContext ctx;
  ctx.migration_log = &*log;
  const auto result = run(ctx);
  expect_silent(result, "migration-conservation");
  expect_silent(result, "migration-ranges");
  expect_silent(result, "migration-time-order");
  // No policy INI in the context: the alignment rule must be skipped.
  EXPECT_NE(std::find(result.rules_skipped.begin(), result.rules_skipped.end(),
                      "migration-chunk-alignment"),
            result.rules_skipped.end());
}

TEST(MigrationRules, ConservationCatchesEveryBrokenIdentity) {
  auto log = *parse_migration_log(kCleanMigrationLog);
  log.applied = 5;           // != 2 rows
  log.partial_moves = 0;     // != 1 partial row
  log.migrated_bytes = 1;    // != row byte sum
  log.scheduled = 100;       // != applied + cancelled
  CheckContext ctx;
  ctx.migration_log = &log;
  EXPECT_EQ(diags_with(run(ctx), "migration-conservation").size(), 4u);
}

TEST(MigrationRules, MissingSummaryIsAConservationError) {
  auto log = *parse_migration_log(kCleanMigrationLog);
  log.has_summary = false;
  CheckContext ctx;
  ctx.migration_log = &log;
  expect_fires(run(ctx), "migration-conservation");
}

TEST(MigrationRules, RangesCatchZeroBytesSameTierAndUnflaggedOffset) {
  auto log = *parse_migration_log(kCleanMigrationLog);
  log.rows[0].bytes = 0;
  log.rows[0].from_tier = log.rows[0].to_tier;
  log.rows[1].partial = false;  // offset 2 MiB without the partial flag
  CheckContext ctx;
  ctx.migration_log = &log;
  EXPECT_EQ(diags_with(run(ctx), "migration-ranges").size(), 3u);
}

TEST(MigrationRules, TimeOrderCatchesRegression) {
  auto log = *parse_migration_log(kCleanMigrationLog);
  log.rows[1].at = log.rows[0].at - 1;
  CheckContext ctx;
  ctx.migration_log = &log;
  expect_fires(run(ctx), "migration-time-order");
}

TEST(MigrationRules, ChunkAlignmentChecksPartialOffsetsAgainstThePolicy) {
  const auto log = parse_migration_log(kCleanMigrationLog);
  ASSERT_TRUE(log.has_value());
  const auto policy = Config::parse(
      "[online]\nchunk_bytes = 2MB\nhuge_object_bytes = 1GB\n");
  ASSERT_TRUE(policy.has_value()) << policy.error();
  CheckContext ctx;
  ctx.migration_log = &*log;
  ctx.online = &*policy;
  expect_silent(run(ctx), "migration-chunk-alignment");

  // A 4 MiB chunk policy makes the 2 MiB offset misaligned: this log
  // cannot have come from a run under that policy.
  const auto bigger = Config::parse(
      "[online]\nchunk_bytes = 4MB\nhuge_object_bytes = 1GB\n");
  ASSERT_TRUE(bigger.has_value());
  ctx.online = &*bigger;
  expect_fires(run(ctx), "migration-chunk-alignment");
}

}  // namespace
}  // namespace ecohmem::check
