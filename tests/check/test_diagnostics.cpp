// Tests for the checker's leaf pieces: diagnostic rendering (text/JSON)
// and the strict site-CSV re-parser.

#include <gtest/gtest.h>

#include <sstream>

#include "ecohmem/check/diagnostic.hpp"
#include "ecohmem/check/sites_csv.hpp"

namespace ecohmem::check {
namespace {

TEST(Diagnostics, SeverityHelpers) {
  std::vector<Diagnostic> diags;
  diags.push_back(info("a-rule", "x", "note"));
  diags.push_back(warning("b-rule", "x", "hmm"));
  EXPECT_FALSE(has_errors(diags));
  diags.push_back(error("c-rule", "x", "bad"));
  EXPECT_TRUE(has_errors(diags));
  EXPECT_EQ(count_severity(diags, Severity::kInfo), 1u);
  EXPECT_EQ(count_severity(diags, Severity::kWarning), 1u);
  EXPECT_EQ(count_severity(diags, Severity::kError), 1u);
}

TEST(Diagnostics, TextRendering) {
  std::ostringstream out;
  write_text(out, {error("report-capacity", "r.txt", "tier over-committed")});
  EXPECT_EQ(out.str(), "error: [report-capacity] r.txt: tier over-committed\n");
}

TEST(Diagnostics, JsonRenderingEscapes) {
  std::ostringstream out;
  write_json(out, {warning("a-rule", "p\"q", "line1\nline2")});
  const std::string json = out.str();
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos) << json;
  EXPECT_NE(json.find("p\\\"q"), std::string::npos) << json;
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos) << json;
}

constexpr const char* kCsvHeader =
    "callstack,allocs,max_size,peak_live,load_misses,store_misses,"
    "avg_load_latency_ns,exec_bw_gbs,alloc_bw_gbs,exec_sys_bw_gbs,"
    "first_alloc_ns,last_free_ns,mean_lifetime_ns,has_writes\n";

TEST(SitesCsv, ParsesWellFormedRows) {
  const std::string text = std::string(kCsvHeader) +
                           "\"app.x!0x100\",3,4096,8192,120.5,7,150,0.25,1.5,2.5,100,900,266.7,1\n";
  const auto csv = parse_site_csv(text);
  ASSERT_TRUE(csv.has_value()) << csv.error();
  ASSERT_EQ(csv->rows.size(), 1u);
  const SiteCsvRow& row = csv->rows[0];
  EXPECT_EQ(row.line, 2u);
  EXPECT_EQ(row.callstack, "app.x!0x100");
  EXPECT_EQ(row.alloc_count, 3u);
  EXPECT_EQ(row.max_size, 4096u);
  EXPECT_DOUBLE_EQ(row.load_misses, 120.5);
  EXPECT_TRUE(row.has_writes);
}

TEST(SitesCsv, RejectsWrongHeader) {
  EXPECT_FALSE(parse_site_csv("callstack,allocs\n\"a\",1\n").has_value());
}

TEST(SitesCsv, RejectsBadFieldWithLineNumber) {
  const std::string text =
      std::string(kCsvHeader) + "\"app.x!0x100\",not_a_number,0,0,0,0,0,0,0,0,0,0,0,0\n";
  const auto csv = parse_site_csv(text);
  ASSERT_FALSE(csv.has_value());
  EXPECT_NE(csv.error().find("line 2"), std::string::npos) << csv.error();
}

TEST(SitesCsv, RejectsShortRow) {
  const std::string text = std::string(kCsvHeader) + "\"app.x!0x100\",1,2\n";
  EXPECT_FALSE(parse_site_csv(text).has_value());
}

}  // namespace
}  // namespace ecohmem::check
