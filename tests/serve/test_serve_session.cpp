// Session-store contracts of the ecohmem-serve daemon:
//  - the incremental aggregator is bit-identical to the offline
//    analyze() for every bundled app and any block partitioning,
//  - Session snapshots are epoch-consistent and cached,
//  - dropped blocks degrade coverage (salvage semantics) while
//    semantic errors poison the session stickily,
//  - the bounded queue reports backpressure and never drops accepted
//    blocks.
//
// The ServeConcurrency suites here also run under the TSan/lockdep
// filter in ci.sh (concurrent ingest + snapshot on the live locks).

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/analyzer/incremental.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/memsim/tier.hpp"
#include "ecohmem/profiler/profiler.hpp"
#include "ecohmem/runtime/engine.hpp"
#include "ecohmem/serve/session.hpp"

namespace ecohmem::serve {
namespace {

void expect_bits(double a, double b, const char* what) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, 8);
  std::memcpy(&ub, &b, 8);
  EXPECT_EQ(ua, ub) << what << ": " << a << " vs " << b;
}

/// The full bit-identity contract of docs/serving.md
/// §snapshot-consistency: every double compared by bit pattern.
void expect_identical(const analyzer::AnalysisResult& offline,
                      const analyzer::AnalysisResult& served) {
  ASSERT_EQ(offline.sites.size(), served.sites.size());
  for (std::size_t i = 0; i < offline.sites.size(); ++i) {
    const analyzer::SiteRecord& a = offline.sites[i];
    const analyzer::SiteRecord& b = served.sites[i];
    EXPECT_EQ(a.stack, b.stack) << "site " << i;
    EXPECT_EQ(a.callstack, b.callstack) << "site " << i;
    EXPECT_EQ(a.max_size, b.max_size) << "site " << i;
    EXPECT_EQ(a.peak_live_bytes, b.peak_live_bytes) << "site " << i;
    EXPECT_EQ(a.alloc_count, b.alloc_count) << "site " << i;
    expect_bits(a.load_misses, b.load_misses, "load_misses");
    expect_bits(a.store_misses, b.store_misses, "store_misses");
    expect_bits(a.avg_load_latency_ns, b.avg_load_latency_ns, "avg_load_latency_ns");
    EXPECT_EQ(a.first_alloc, b.first_alloc) << "site " << i;
    EXPECT_EQ(a.last_free, b.last_free) << "site " << i;
    expect_bits(a.total_lifetime_ns, b.total_lifetime_ns, "total_lifetime_ns");
    expect_bits(a.mean_lifetime_ns, b.mean_lifetime_ns, "mean_lifetime_ns");
    expect_bits(a.exec_bw_gbs, b.exec_bw_gbs, "exec_bw_gbs");
    expect_bits(a.alloc_time_system_bw_gbs, b.alloc_time_system_bw_gbs,
                "alloc_time_system_bw_gbs");
    expect_bits(a.exec_time_system_bw_gbs, b.exec_time_system_bw_gbs,
                "exec_time_system_bw_gbs");
    EXPECT_EQ(a.has_writes, b.has_writes) << "site " << i;
    ASSERT_EQ(a.windows.size(), b.windows.size()) << "site " << i;
    for (std::size_t w = 0; w < a.windows.size(); ++w) {
      EXPECT_EQ(a.windows[w].start, b.windows[w].start) << "site " << i << " window " << w;
      EXPECT_EQ(a.windows[w].end, b.windows[w].end) << "site " << i << " window " << w;
    }
  }

  ASSERT_EQ(offline.system_bw.size(), served.system_bw.size());
  for (std::size_t i = 0; i < offline.system_bw.size(); ++i) {
    EXPECT_EQ(offline.system_bw[i].time, served.system_bw[i].time) << "bw point " << i;
    expect_bits(offline.system_bw[i].gbs, served.system_bw[i].gbs, "system_bw");
  }
  expect_bits(offline.observed_peak_bw_gbs, served.observed_peak_bw_gbs, "observed_peak");

  ASSERT_EQ(offline.functions.size(), served.functions.size());
  for (std::size_t i = 0; i < offline.functions.size(); ++i) {
    EXPECT_EQ(offline.functions[i].name, served.functions[i].name) << "function " << i;
    expect_bits(offline.functions[i].load_samples, served.functions[i].load_samples,
                "load_samples");
    expect_bits(offline.functions[i].avg_load_latency_ns,
                served.functions[i].avg_load_latency_ns, "function latency");
  }

  EXPECT_EQ(offline.trace_end, served.trace_end);
  expect_bits(offline.unattributed_samples, served.unattributed_samples, "unattributed");
}

/// Profiles `app` through the execution engine (the ecohmem-profile
/// path) so the trace carries real alloc/free/sample/uncore streams.
trace::Trace profile_app(const std::string& app) {
  apps::AppOptions opt;
  opt.iterations = 2;
  const runtime::Workload workload = apps::make_app(app, opt);
  const auto sys = memsim::paper_system(6);
  EXPECT_TRUE(sys.has_value()) << sys.error();
  profiler::Profiler prof;
  runtime::EngineOptions eopt;
  eopt.observer = &prof;
  runtime::ExecutionEngine engine(&*sys, eopt);
  runtime::FixedTierMode mode(&*sys, 1);
  const auto metrics = engine.run(workload, mode);
  EXPECT_TRUE(metrics.has_value()) << metrics.error();
  return prof.take_trace();
}

trace::codec::HeaderInfo header_of(const trace::Trace& t) {
  trace::codec::HeaderInfo h;
  h.version = trace::codec::kVersionIndexed;
  h.sample_rate_hz = t.sample_rate_hz;
  h.stacks = t.stacks;
  h.functions = t.functions;
  return h;
}

std::vector<std::vector<trace::Event>> partition(const std::vector<trace::Event>& events,
                                                 std::size_t block_events) {
  std::vector<std::vector<trace::Event>> blocks;
  for (std::size_t begin = 0; begin < events.size(); begin += block_events) {
    const std::size_t end = std::min(events.size(), begin + block_events);
    blocks.emplace_back(events.begin() + static_cast<std::ptrdiff_t>(begin),
                        events.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return blocks;
}

void check_incremental_identity(const std::string& app) {
  const trace::Trace t = profile_app(app);
  ASSERT_FALSE(t.events.empty());
  const auto offline = analyzer::analyze(t);
  ASSERT_TRUE(offline.has_value()) << offline.error();

  for (const std::size_t block_events : {std::size_t{1}, std::size_t{7}, std::size_t{4096}}) {
    analyzer::IncrementalAggregator inc(t.stacks, t.functions);
    for (const auto& block : partition(t.events, block_events)) {
      const auto s = inc.ingest(block);
      ASSERT_TRUE(s.ok()) << s.error();
    }
    const auto served = inc.finalize();
    ASSERT_TRUE(served.has_value()) << served.error();
    SCOPED_TRACE(app + " block_events=" + std::to_string(block_events));
    expect_identical(*offline, *served);
  }
}

TEST(ServeIncremental, HpcgIdenticalToOffline) { check_incremental_identity("hpcg"); }
TEST(ServeIncremental, PhaseShiftIdenticalToOffline) {
  check_incremental_identity("phase-shift");
}
TEST(ServeIncremental, MiniFeIdenticalToOffline) { check_incremental_identity("minife"); }

TEST(ServeIncremental, FinalizeIsRepeatable) {
  // finalize() is const: a mid-stream snapshot then more ingest then a
  // second snapshot must equal a fresh aggregator over each prefix.
  const trace::Trace t = profile_app("hpcg");
  const std::size_t half = t.events.size() / 2;

  analyzer::IncrementalAggregator inc(t.stacks, t.functions);
  ASSERT_TRUE(inc.ingest(t.events.data(), half).ok());
  const auto mid = inc.finalize();
  ASSERT_TRUE(mid.has_value()) << mid.error();

  trace::Trace prefix;
  prefix.stacks = t.stacks;
  prefix.functions = t.functions;
  prefix.sample_rate_hz = t.sample_rate_hz;
  prefix.events.assign(t.events.begin(), t.events.begin() + static_cast<std::ptrdiff_t>(half));
  const auto offline_mid = analyzer::analyze(prefix);
  ASSERT_TRUE(offline_mid.has_value()) << offline_mid.error();
  expect_identical(*offline_mid, *mid);

  ASSERT_TRUE(inc.ingest(t.events.data() + half, t.events.size() - half).ok());
  const auto full = inc.finalize();
  ASSERT_TRUE(full.has_value()) << full.error();
  const auto offline_full = analyzer::analyze(t);
  ASSERT_TRUE(offline_full.has_value()) << offline_full.error();
  expect_identical(*offline_full, *full);
}

TEST(ServeIncremental, SemanticErrorIsSticky) {
  trace::StackTable stacks;
  const trace::StackId s = stacks.intern(bom::CallStack{{{0, 0x10}}});
  trace::FunctionTable functions;
  analyzer::IncrementalAggregator inc(stacks, functions);

  std::vector<trace::Event> bad;
  bad.emplace_back(trace::AllocEvent{1, 7, 0x1000, 64, s, trace::AllocKind::kMalloc});
  bad.emplace_back(trace::FreeEvent{2, 7});
  bad.emplace_back(trace::FreeEvent{3, 7});
  const auto status = inc.ingest(bad);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().find("unknown object"), std::string::npos);

  // Later (healthy) blocks do not clear the error; finalize keeps failing.
  std::vector<trace::Event> good;
  good.emplace_back(trace::AllocEvent{4, 8, 0x2000, 64, s, trace::AllocKind::kMalloc});
  EXPECT_FALSE(inc.ingest(good).ok());
  EXPECT_FALSE(inc.finalize().has_value());
  EXPECT_EQ(inc.error(), status.error());
}

// ---------------------------------------------------------------------
// Session: queue + applier + snapshot cache. These suites are part of
// the ci.sh concurrency filter (TSan + lockdep).

TEST(ServeConcurrencySession, SnapshotMatchesOfflineAcrossBlockSizes) {
  const trace::Trace t = profile_app("hpcg");
  const auto offline = analyzer::analyze(t);
  ASSERT_TRUE(offline.has_value()) << offline.error();

  for (const std::size_t block_events : {std::size_t{256}, std::size_t{4096}}) {
    Session session(1, header_of(t), SessionOptions{});
    std::uint64_t accepted = 0;
    for (auto& block : partition(t.events, block_events)) {
      ASSERT_EQ(session.enqueue_block(std::move(block)), Session::Enqueue::kAccepted);
      ++accepted;
    }
    const auto snap = session.snapshot();
    ASSERT_TRUE(snap.has_value()) << snap.error();
    EXPECT_EQ(snap->epoch, accepted);
    EXPECT_EQ(snap->events, t.events.size());
    SCOPED_TRACE("block_events=" + std::to_string(block_events));
    expect_identical(*offline, *snap->analysis);
  }
}

TEST(ServeConcurrencySession, SnapshotCacheSharedPerEpoch) {
  const trace::Trace t = profile_app("minife");
  Session session(1, header_of(t), SessionOptions{});
  auto blocks = partition(t.events, 1024);
  ASSERT_GE(blocks.size(), 2u);
  ASSERT_EQ(session.enqueue_block(std::move(blocks[0])), Session::Enqueue::kAccepted);

  const auto first = session.snapshot();
  ASSERT_TRUE(first.has_value()) << first.error();
  const auto again = session.snapshot();
  ASSERT_TRUE(again.has_value()) << again.error();
  EXPECT_EQ(first->analysis.get(), again->analysis.get()) << "same epoch, same cached result";

  ASSERT_EQ(session.enqueue_block(std::move(blocks[1])), Session::Enqueue::kAccepted);
  const auto later = session.snapshot();
  ASSERT_TRUE(later.has_value()) << later.error();
  EXPECT_GT(later->epoch, first->epoch);
  EXPECT_NE(later->analysis.get(), first->analysis.get());
}

TEST(ServeConcurrencySession, DroppedBlocksDegradeCoverage) {
  const trace::Trace t = profile_app("minife");
  Session session(1, header_of(t), SessionOptions{});
  auto blocks = partition(t.events, t.events.size());
  ASSERT_EQ(session.enqueue_block(std::move(blocks[0])), Session::Enqueue::kAccepted);
  session.note_dropped_block(500);

  const auto snap = session.snapshot();
  ASSERT_TRUE(snap.has_value()) << snap.error();
  EXPECT_TRUE(snap->analysis->coverage.salvaged);
  EXPECT_EQ(snap->analysis->coverage.events_seen, t.events.size());
  EXPECT_EQ(snap->analysis->coverage.events_declared, t.events.size() + 500);

  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.blocks_dropped, 1u);
  EXPECT_EQ(stats.events_declared, t.events.size() + 500);
  EXPECT_TRUE(stats.error.empty());
}

TEST(ServeConcurrencySession, PoisonedSessionKeepsFailing) {
  trace::codec::HeaderInfo h;
  trace::StackTable stacks;
  const trace::StackId s = stacks.intern(bom::CallStack{{{0, 0x10}}});
  h.stacks = stacks;
  Session session(1, h, SessionOptions{});

  std::vector<trace::Event> bad;
  bad.emplace_back(trace::AllocEvent{1, 7, 0x1000, 64, s, trace::AllocKind::kMalloc});
  bad.emplace_back(trace::FreeEvent{2, 7});
  bad.emplace_back(trace::FreeEvent{3, 7});
  ASSERT_EQ(session.enqueue_block(std::move(bad)), Session::Enqueue::kAccepted);

  const auto snap = session.snapshot();
  ASSERT_FALSE(snap.has_value());
  EXPECT_NE(snap.error().find("unknown object"), std::string::npos);

  // The queue still drains and stats report the sticky error.
  std::vector<trace::Event> good;
  good.emplace_back(trace::AllocEvent{4, 8, 0x2000, 64, s, trace::AllocKind::kMalloc});
  ASSERT_EQ(session.enqueue_block(std::move(good)), Session::Enqueue::kAccepted);
  EXPECT_FALSE(session.snapshot().has_value());
  EXPECT_FALSE(session.stats().error.empty());
}

TEST(ServeConcurrencySession, BoundedQueueReportsBusy) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool release = false;

  SessionOptions opts;
  opts.queue_blocks = 1;
  opts.before_apply = [&] {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return release; });
  };

  trace::codec::HeaderInfo h;
  trace::StackTable stacks;
  const trace::StackId s = stacks.intern(bom::CallStack{{{0, 0x10}}});
  h.stacks = stacks;
  Session session(1, h, opts);

  const auto block = [&](std::uint64_t id) {
    std::vector<trace::Event> events;
    events.emplace_back(
        trace::AllocEvent{id, id, 0x1000 * id, 64, s, trace::AllocKind::kMalloc});
    return events;
  };

  // Block 1 is popped by the applier, which then parks in
  // before_apply. Wait for the pop (queue observably empty) so the
  // rest is deterministic: block 2 fills the queue, block 3 bounces.
  ASSERT_EQ(session.enqueue_block(block(1)), Session::Enqueue::kAccepted);
  while (session.stats().queue_depth != 0) std::this_thread::yield();
  ASSERT_EQ(session.enqueue_block(block(2)), Session::Enqueue::kAccepted);
  ASSERT_EQ(session.enqueue_block(block(3)), Session::Enqueue::kBusy);

  // Backpressure rejects without losing anything already accepted:
  // release the gate and both accepted blocks land.
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    release = true;
  }
  gate_cv.notify_all();
  const auto snap = session.snapshot();
  ASSERT_TRUE(snap.has_value()) << snap.error();
  EXPECT_EQ(snap->epoch, 2u);
  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.blocks_accepted, 2u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ServeConcurrencySession, ConcurrentQueriesDuringIngest) {
  // One writer streams blocks while two readers snapshot/stat
  // continuously; the final snapshot must be bit-identical to the
  // offline analysis — mid-ingest queries must not perturb the store.
  const trace::Trace t = profile_app("phase-shift");
  const auto offline = analyzer::analyze(t);
  ASSERT_TRUE(offline.has_value()) << offline.error();

  Session session(1, header_of(t), SessionOptions{});
  std::atomic<bool> ingest_done{false};

  std::thread writer([&] {
    for (const auto& block : partition(t.events, 512)) {
      for (;;) {  // enqueue consumes its argument, so retry with a copy
        auto copy = block;
        if (session.enqueue_block(std::move(copy)) == Session::Enqueue::kAccepted) break;
      }
    }
    ingest_done.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!ingest_done.load()) {
        const auto snap = session.snapshot();
        ASSERT_TRUE(snap.has_value()) << snap.error();
        // Epochs only move forward; events only grow.
        ASSERT_GE(snap->epoch, last_epoch);
        last_epoch = snap->epoch;
        (void)session.stats();
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();

  const auto final_snap = session.snapshot();
  ASSERT_TRUE(final_snap.has_value()) << final_snap.error();
  EXPECT_EQ(final_snap->events, t.events.size());
  expect_identical(*offline, *final_snap->analysis);
}

TEST(ServeConcurrencySession, ManagerShardsSessionsById) {
  SessionManager manager(SessionOptions{}, /*max_sessions=*/3);
  trace::codec::HeaderInfo h;
  const auto s1 = manager.create(h);
  const auto s2 = manager.create(h);
  const auto s3 = manager.create(h);
  ASSERT_TRUE(s1.has_value() && s2.has_value() && s3.has_value());
  EXPECT_FALSE(manager.create(h).has_value()) << "session limit must gate create";

  EXPECT_EQ(manager.find((*s2)->id()).get(), s2->get());
  EXPECT_EQ(manager.find(999), nullptr);
  EXPECT_EQ(manager.size(), 3u);

  const auto all = manager.all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_LT(all[0]->id(), all[1]->id());
  EXPECT_LT(all[1]->id(), all[2]->id());

  EXPECT_TRUE(manager.erase((*s1)->id()));
  EXPECT_FALSE(manager.erase((*s1)->id()));
  EXPECT_EQ(manager.size(), 2u);
  // A live reference outlives the registry entry.
  EXPECT_EQ((*s1)->stats().session_id, (*s1)->id());
}

TEST(ServeConcurrencySession, ConcurrentManagerCreateFindErase) {
  SessionManager manager(SessionOptions{}, /*max_sessions=*/1024);
  trace::codec::HeaderInfo h;
  std::vector<std::thread> workers;
  std::atomic<int> created{0};
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < 32; ++i) {
        const auto session = manager.create(h);
        ASSERT_TRUE(session.has_value()) << session.error();
        created.fetch_add(1);
        ASSERT_NE(manager.find((*session)->id()), nullptr);
        if (i % 2 == 0) {
          ASSERT_TRUE(manager.erase((*session)->id()));
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(created.load(), 128);
  EXPECT_EQ(manager.size(), 64u);
}

}  // namespace
}  // namespace ecohmem::serve
