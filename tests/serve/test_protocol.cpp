// Wire-codec contract of the ecohmem-serve protocol (docs/serving.md):
// every payload round-trips bit-exactly, every strict prefix of a valid
// frame is rejected (the truncation sweep), and garbled payloads fail
// to decode instead of misparsing — the same salvage posture the trace
// codec has, one layer up.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "ecohmem/serve/protocol.hpp"

namespace ecohmem::serve {
namespace {

std::string frame_of(FrameType type, const std::string& payload) {
  std::string out;
  append_frame(out, type, payload);
  return out;
}

Expected<Frame> parse_all(const std::string& bytes,
                          std::uint32_t max_frame = kDefaultMaxFrameBytes) {
  std::size_t consumed = 0;
  auto frame = parse_frame(reinterpret_cast<const unsigned char*>(bytes.data()),
                           bytes.size(), &consumed, max_frame);
  if (frame) EXPECT_EQ(consumed, bytes.size());
  return frame;
}

TEST(ServeProtocol, FrameEnvelopeRoundTrip) {
  const std::string payload = "hello payload \x01\x02\xff";
  const std::string bytes = frame_of(FrameType::kIngestBlock, payload);
  ASSERT_EQ(bytes.size(), 4 + 1 + payload.size());
  const auto frame = parse_all(bytes);
  ASSERT_TRUE(frame.has_value()) << frame.error();
  EXPECT_EQ(frame->type, FrameType::kIngestBlock);
  EXPECT_EQ(frame->payload, payload);
}

TEST(ServeProtocol, EveryPrefixTruncationIsAnError) {
  // The spec promises: any strict prefix of a valid frame is malformed.
  HelloRequest hello;
  hello.session_id = 42;
  std::string payload;
  encode_hello(payload, hello);
  const std::string bytes = frame_of(FrameType::kHello, payload);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::string prefix = bytes.substr(0, cut);
    std::size_t consumed = 0;
    const auto frame = parse_frame(reinterpret_cast<const unsigned char*>(prefix.data()),
                                   prefix.size(), &consumed);
    EXPECT_FALSE(frame.has_value()) << "prefix of " << cut << " bytes parsed";
  }
}

TEST(ServeProtocol, ZeroLengthAndOversizeFramesRejected) {
  const std::string zero(4, '\0');  // length = 0
  EXPECT_FALSE(parse_all(zero).has_value());

  std::string big = frame_of(FrameType::kStats, std::string(100, 'x'));
  const auto small_ceiling = parse_all(big, /*max_frame=*/64);
  ASSERT_FALSE(small_ceiling.has_value());
  EXPECT_NE(small_ceiling.error().find("ceiling"), std::string::npos);
}

TEST(ServeProtocol, UnknownFrameTypeRejected) {
  std::string bytes = frame_of(FrameType::kHello, "");
  bytes[4] = '\x7f';  // not a defined type
  const auto frame = parse_all(bytes);
  ASSERT_FALSE(frame.has_value());
  EXPECT_NE(frame.error().find("unknown frame type"), std::string::npos);
}

TEST(ServeProtocol, HelloRoundTrip) {
  HelloRequest msg;
  msg.proto_version = 7;
  msg.session_id = 0;
  msg.header = std::string("\x00\x01header-bytes\xff", 16);
  std::string payload;
  encode_hello(payload, msg);
  const auto back = decode_hello(payload);
  ASSERT_TRUE(back.has_value()) << back.error();
  EXPECT_EQ(back->proto_version, msg.proto_version);
  EXPECT_EQ(back->session_id, msg.session_id);
  EXPECT_EQ(back->flags, msg.flags);
  EXPECT_EQ(back->header, msg.header);
}

TEST(ServeProtocol, HelloAttachWithHeaderRejected) {
  HelloRequest msg;
  msg.session_id = 9;
  msg.header = "stray header";
  std::string payload;
  encode_hello(payload, msg);
  const auto back = decode_hello(payload);
  ASSERT_FALSE(back.has_value());
  EXPECT_NE(back.error().find("attach"), std::string::npos);
}

TEST(ServeProtocol, HelloOkRoundTrip) {
  HelloOk msg;
  msg.proto_version = 1;
  msg.session_id = 0x0123456789abcdefULL;
  msg.epoch = 77;
  msg.max_frame_bytes = 1 << 20;
  msg.queue_blocks = 64;
  std::string payload;
  encode_hello_ok(payload, msg);
  const auto back = decode_hello_ok(payload);
  ASSERT_TRUE(back.has_value()) << back.error();
  EXPECT_EQ(back->session_id, msg.session_id);
  EXPECT_EQ(back->epoch, msg.epoch);
  EXPECT_EQ(back->max_frame_bytes, msg.max_frame_bytes);
  EXPECT_EQ(back->queue_blocks, msg.queue_blocks);
}

TEST(ServeProtocol, IngestBlockRoundTrip) {
  IngestBlock msg;
  msg.block_seq = 3;
  msg.event_count = 12;
  msg.block = std::string("\x01\x00\xfe raw v3 block", 15);
  std::string payload;
  encode_ingest_block(payload, msg);
  const auto back = decode_ingest_block(payload);
  ASSERT_TRUE(back.has_value()) << back.error();
  EXPECT_EQ(back->block_seq, msg.block_seq);
  EXPECT_EQ(back->event_count, msg.event_count);
  EXPECT_EQ(back->block, msg.block);
}

TEST(ServeProtocol, BlockOkAndBusyRoundTrip) {
  BlockOk ok{5, 4096};
  std::string payload;
  encode_block_ok(payload, ok);
  const auto ok_back = decode_block_ok(payload);
  ASSERT_TRUE(ok_back.has_value()) << ok_back.error();
  EXPECT_EQ(ok_back->block_seq, ok.block_seq);
  EXPECT_EQ(ok_back->accepted_events, ok.accepted_events);

  Busy busy{5, 64, 10};
  payload.clear();
  encode_busy(payload, busy);
  const auto busy_back = decode_busy(payload);
  ASSERT_TRUE(busy_back.has_value()) << busy_back.error();
  EXPECT_EQ(busy_back->block_seq, busy.block_seq);
  EXPECT_EQ(busy_back->queue_depth, busy.queue_depth);
  EXPECT_EQ(busy_back->retry_hint_ms, busy.retry_hint_ms);
}

TEST(ServeProtocol, QueryPlacementRoundTrip) {
  QueryPlacement msg;
  msg.flags = QueryPlacement::kBandwidthAware;
  msg.peak_pmem_bw_gbs = 26.5;
  msg.tiers.push_back(QueryTier{"dram", 12ull << 30, 1.0, 0.125, 0});
  msg.tiers.push_back(QueryTier{"pmem", 3ull << 40, 1.0, 0.0, 1});
  std::string payload;
  encode_query_placement(payload, msg);
  const auto back = decode_query_placement(payload);
  ASSERT_TRUE(back.has_value()) << back.error();
  EXPECT_EQ(back->flags, msg.flags);
  EXPECT_EQ(back->peak_pmem_bw_gbs, msg.peak_pmem_bw_gbs);
  ASSERT_EQ(back->tiers.size(), 2u);
  EXPECT_EQ(back->tiers[0].name, "dram");
  EXPECT_EQ(back->tiers[0].limit, msg.tiers[0].limit);
  EXPECT_EQ(back->tiers[0].store_coef, 0.125);
  EXPECT_EQ(back->tiers[1].flags, 1);
}

TEST(ServeProtocol, QueryPlacementConfigConversion) {
  advisor::AdvisorConfig config = advisor::AdvisorConfig::dram_pmem(12ull << 30, 0.125);
  const QueryPlacement msg = QueryPlacement::from_config(config);
  const auto back = msg.to_config();
  ASSERT_TRUE(back.has_value()) << back.error();
  ASSERT_EQ(back->tiers.size(), config.tiers.size());
  for (std::size_t i = 0; i < config.tiers.size(); ++i) {
    EXPECT_EQ(back->tiers[i].name, config.tiers[i].name);
    EXPECT_EQ(back->tiers[i].limit, config.tiers[i].limit);
    EXPECT_EQ(back->tiers[i].load_coef, config.tiers[i].load_coef);
    EXPECT_EQ(back->tiers[i].store_coef, config.tiers[i].store_coef);
    EXPECT_EQ(back->tiers[i].order, config.tiers[i].order);
    EXPECT_EQ(back->tiers[i].fallback, config.tiers[i].fallback);
  }
  EXPECT_EQ(back->footprint_mode, config.footprint_mode);
}

TEST(ServeProtocol, QueryPlacementRejectsBadTierLists) {
  QueryPlacement empty;
  EXPECT_FALSE(empty.to_config().has_value());

  QueryPlacement no_fallback;
  no_fallback.tiers.push_back(QueryTier{"dram", 1 << 20, 1.0, 0.0, 0});
  EXPECT_FALSE(no_fallback.to_config().has_value());

  QueryPlacement two_fallbacks;
  two_fallbacks.tiers.push_back(QueryTier{"a", 1 << 20, 1.0, 0.0, 1});
  two_fallbacks.tiers.push_back(QueryTier{"b", 1 << 20, 1.0, 0.0, 1});
  EXPECT_FALSE(two_fallbacks.to_config().has_value());

  QueryPlacement unnamed;
  unnamed.tiers.push_back(QueryTier{"", 1 << 20, 1.0, 0.0, 1});
  EXPECT_FALSE(unnamed.to_config().has_value());
}

TEST(ServeProtocol, ReportAndSnapshotRoundTrip) {
  Report rep{9, 1234, "# placement\nA -> dram\n"};
  std::string payload;
  encode_report(payload, rep);
  const auto rep_back = decode_report(payload);
  ASSERT_TRUE(rep_back.has_value()) << rep_back.error();
  EXPECT_EQ(rep_back->epoch, rep.epoch);
  EXPECT_EQ(rep_back->events_analyzed, rep.events_analyzed);
  EXPECT_EQ(rep_back->text, rep.text);

  SnapshotData snap{9, 1234, "stack,site\n"};
  payload.clear();
  encode_snapshot_data(payload, snap);
  const auto snap_back = decode_snapshot_data(payload);
  ASSERT_TRUE(snap_back.has_value()) << snap_back.error();
  EXPECT_EQ(snap_back->epoch, snap.epoch);
  EXPECT_EQ(snap_back->csv, snap.csv);
}

TEST(ServeProtocol, StatsDataRoundTrip) {
  StatsData msg;
  msg.session_id = 4;
  msg.epoch = 10;
  msg.blocks_accepted = 11;
  msg.blocks_dropped = 2;
  msg.events_seen = 5000;
  msg.events_declared = 5200;
  msg.queue_depth = 3;
  msg.attached_clients = 2;
  msg.poisoned = 1;
  msg.error = "double free of object id 7";
  std::string payload;
  encode_stats_data(payload, msg);
  const auto back = decode_stats_data(payload);
  ASSERT_TRUE(back.has_value()) << back.error();
  EXPECT_EQ(back->session_id, msg.session_id);
  EXPECT_EQ(back->blocks_dropped, msg.blocks_dropped);
  EXPECT_EQ(back->events_declared, msg.events_declared);
  EXPECT_EQ(back->queue_depth, msg.queue_depth);
  EXPECT_EQ(back->poisoned, msg.poisoned);
  EXPECT_EQ(back->error, msg.error);
}

TEST(ServeProtocol, ByeAndErrorRoundTrip) {
  Bye bye{Bye::kCloseSession};
  std::string payload;
  encode_bye(payload, bye);
  const auto bye_back = decode_bye(payload);
  ASSERT_TRUE(bye_back.has_value()) << bye_back.error();
  EXPECT_EQ(bye_back->flags, bye.flags);

  ErrorReply err{ErrorCode::kBadBlock, "block has 3 trailing bytes"};
  payload.clear();
  encode_error(payload, err);
  const auto err_back = decode_error(payload);
  ASSERT_TRUE(err_back.has_value()) << err_back.error();
  EXPECT_EQ(err_back->code, err.code);
  EXPECT_EQ(err_back->detail, err.detail);
}

TEST(ServeProtocol, PayloadTruncationSweep) {
  // Chop every encoded payload at every byte: decoders must fail (or,
  // where a prefix happens to be self-delimiting, never misparse into
  // success with trailing garbage — trailing bytes are also rejected).
  StatsData stats;
  stats.session_id = 1;
  stats.error = "err";
  std::string payload;
  encode_stats_data(payload, stats);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(decode_stats_data(payload.substr(0, cut)).has_value())
        << "stats prefix " << cut;
  }
  HelloOk hello_ok;
  payload.clear();
  encode_hello_ok(payload, hello_ok);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(decode_hello_ok(payload.substr(0, cut)).has_value())
        << "hello_ok prefix " << cut;
  }
}

TEST(ServeProtocol, TrailingBytesRejected) {
  HelloOk msg;
  std::string payload;
  encode_hello_ok(payload, msg);
  payload.push_back('\x00');
  EXPECT_FALSE(decode_hello_ok(payload).has_value());

  Bye bye;
  payload.clear();
  encode_bye(payload, bye);
  payload += "xx";
  EXPECT_FALSE(decode_bye(payload).has_value());
}

TEST(ServeProtocol, TypeAndErrorCodeNames) {
  EXPECT_STREQ(to_string(FrameType::kHello), "HELLO");
  EXPECT_STREQ(to_string(FrameType::kBusy), "BUSY");
  EXPECT_STREQ(to_string(static_cast<FrameType>(0x55)), "?");
  EXPECT_STREQ(to_string(ErrorCode::kBadBlock), "bad-block");
  EXPECT_STREQ(to_string(ErrorCode::kShuttingDown), "shutting-down");
  EXPECT_STREQ(to_string(static_cast<ErrorCode>(999)), "?");
}

}  // namespace
}  // namespace ecohmem::serve
