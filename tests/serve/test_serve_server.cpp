// Socket-level contracts of the ecohmem-serve daemon: a client
// ingesting a trace over the wire gets a placement report byte-equal
// to the offline ecohmem-advisor; a second client can attach and query
// mid-ingest; backpressure surfaces as BUSY; shutdown drains
// gracefully; and malformed frames follow the docs/serving.md
// close-vs-continue table.
//
// These suites are part of the ci.sh concurrency filter (TSan +
// lockdep): every test runs the real accept loop, handler threads and
// session locks.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ecohmem/advisor/advisor_config.hpp"
#include "ecohmem/advisor/bandwidth_aware.hpp"
#include "ecohmem/advisor/knapsack.hpp"
#include "ecohmem/advisor/report.hpp"
#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/apps/apps.hpp"
#include "ecohmem/memsim/tier.hpp"
#include "ecohmem/profiler/profiler.hpp"
#include "ecohmem/runtime/engine.hpp"
#include "ecohmem/serve/client.hpp"
#include "ecohmem/serve/server.hpp"

namespace ecohmem::serve {
namespace {

struct Profiled {
  trace::Trace trace;
  bom::ModuleTable modules;
};

Profiled profile_app(const std::string& app) {
  apps::AppOptions opt;
  opt.iterations = 2;
  const runtime::Workload workload = apps::make_app(app, opt);
  const auto sys = memsim::paper_system(6);
  EXPECT_TRUE(sys.has_value()) << sys.error();
  profiler::Profiler prof;
  runtime::EngineOptions eopt;
  eopt.observer = &prof;
  runtime::ExecutionEngine engine(&*sys, eopt);
  runtime::FixedTierMode mode(&*sys, 1);
  const auto metrics = engine.run(workload, mode);
  EXPECT_TRUE(metrics.has_value()) << metrics.error();
  return {prof.take_trace(), *workload.modules};
}

/// The offline pipeline the daemon must match byte-for-byte: analyze,
/// knapsack, optional bandwidth-aware pass, BOM report.
std::string offline_report(const trace::Trace& t, const bom::ModuleTable& modules,
                           const advisor::AdvisorConfig& config,
                           bool bandwidth_aware) {
  const auto analysis = analyzer::analyze(t);
  EXPECT_TRUE(analysis.has_value()) << analysis.error();
  auto placement = advisor::place_by_density(analysis->sites, config);
  EXPECT_TRUE(placement.has_value()) << placement.error();
  if (bandwidth_aware) {
    advisor::BandwidthAwareOptions bw;
    bw.peak_pmem_bw_gbs = analysis->observed_peak_bw_gbs;
    bw.dram_tier = config.tiers.front().name;
    bw.pmem_tier = config.fallback_tier().name;
    auto refined = advisor::place_bandwidth_aware(analysis->sites, *placement, config, bw);
    EXPECT_TRUE(refined.has_value()) << refined.error();
    *placement = std::move(refined->placement);
  }
  const auto text =
      advisor::report_to_string(*placement, advisor::ReportFormat::kBom, modules);
  EXPECT_TRUE(text.has_value()) << text.error();
  return text.value_or("");
}

/// A minimal module table covering the synthetic single-frame stacks
/// the protocol-focused tests ingest (frame module id 0).
bom::ModuleTable one_module_table() {
  bom::ModuleTable modules;
  modules.add_module("served-app", 1u << 20);
  Rng rng(1);
  modules.assign_bases(/*aslr=*/false, rng);
  return modules;
}

/// A running daemon on a per-test socket path, with the run() loop on
/// its own thread; stops and joins on destruction.
class TestDaemon {
 public:
  explicit TestDaemon(ServerOptions options) {
    options.socket_path = path_ = "/tmp/ecohmem_serve_test_" +
                                  std::to_string(::getpid()) + "_" +
                                  std::to_string(counter_++) + ".sock";
    auto server = Server::create(std::move(options));
    EXPECT_TRUE(server.has_value()) << server.error();
    server_ = std::move(*server);
    thread_ = std::thread([this] {
      const auto status = server_->run();
      EXPECT_TRUE(status.ok()) << status.error();
    });
  }

  ~TestDaemon() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_->request_stop();
      thread_.join();
    }
  }

  [[nodiscard]] Server& server() { return *server_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static std::atomic<int> counter_;
  std::string path_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

std::atomic<int> TestDaemon::counter_{0};

TEST(ServeConcurrencyServer, ReportMatchesOfflineAdvisor) {
  const Profiled p = profile_app("hpcg");
  const trace::Trace& t = p.trace;
  const auto config = advisor::AdvisorConfig::dram_pmem(12ull << 30, 0.125);
  const std::string offline = offline_report(t, p.modules, config, /*bandwidth_aware=*/true);

  TestDaemon daemon(ServerOptions{});
  auto client = Client::connect(daemon.path());
  ASSERT_TRUE(client.has_value()) << client.error();
  ASSERT_TRUE(
      client->hello_create(t.stacks, t.functions, p.modules, t.sample_rate_hz).ok());
  EXPECT_EQ(client->session_id(), 1u);
  ASSERT_TRUE(client->ingest_events(t.events, 1024).ok());

  const auto report = client->query(config, /*bandwidth_aware=*/true);
  ASSERT_TRUE(report.has_value()) << report.error();
  EXPECT_EQ(report->events_analyzed, t.events.size());
  EXPECT_EQ(report->text, offline) << "served report must be byte-equal to ecohmem-advisor";

  const auto stats = client->stats();
  ASSERT_TRUE(stats.has_value()) << stats.error();
  EXPECT_EQ(stats->events_seen, t.events.size());
  EXPECT_EQ(stats->events_declared, t.events.size());
  EXPECT_EQ(stats->blocks_dropped, 0u);
  EXPECT_EQ(stats->poisoned, 0u);
  ASSERT_TRUE(client->bye().ok());
}

TEST(ServeConcurrencyServer, SecondClientQueriesMidIngest) {
  const Profiled p = profile_app("phase-shift");
  const trace::Trace& t = p.trace;
  const auto config = advisor::AdvisorConfig::dram_pmem(12ull << 30, 0.0);
  const std::string offline = offline_report(t, p.modules, config, /*bandwidth_aware=*/false);

  TestDaemon daemon(ServerOptions{});
  auto writer = Client::connect(daemon.path());
  ASSERT_TRUE(writer.has_value()) << writer.error();
  ASSERT_TRUE(
      writer->hello_create(t.stacks, t.functions, p.modules, t.sample_rate_hz).ok());
  const std::uint64_t session_id = writer->session_id();

  std::atomic<bool> ingest_done{false};
  std::thread ingest([&] {
    const auto status = writer->ingest_events(t.events, 256);
    EXPECT_TRUE(status.ok()) << status.error();
    ingest_done.store(true);
  });

  // A second connection attaches to the same session and queries while
  // blocks are still streaming in; every answer is a consistent epoch.
  auto reader = Client::connect(daemon.path());
  ASSERT_TRUE(reader.has_value()) << reader.error();
  ASSERT_TRUE(reader->hello_attach(session_id).ok());
  std::uint64_t last_epoch = 0;
  while (!ingest_done.load()) {
    const auto mid = reader->query(config);
    ASSERT_TRUE(mid.has_value()) << mid.error();
    ASSERT_GE(mid->epoch, last_epoch);
    last_epoch = mid->epoch;
  }
  ingest.join();

  const auto final_report = reader->query(config);
  ASSERT_TRUE(final_report.has_value()) << final_report.error();
  EXPECT_EQ(final_report->events_analyzed, t.events.size());
  EXPECT_EQ(final_report->text, offline);

  const auto stats = reader->stats();
  ASSERT_TRUE(stats.has_value()) << stats.error();
  EXPECT_EQ(stats->attached_clients, 2u);
  ASSERT_TRUE(reader->bye().ok());
  ASSERT_TRUE(writer->bye().ok());
}

TEST(ServeConcurrencyServer, BackpressureSurfacesAsBusy) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool release = false;

  ServerOptions options;
  options.queue_blocks = 1;
  options.busy_retry_hint_ms = 1;
  options.before_apply = [&] {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return release; });
  };
  TestDaemon daemon(std::move(options));

  trace::StackTable stacks;
  const trace::StackId s = stacks.intern(bom::CallStack{{{0, 0x10}}});
  const auto block = [&](std::uint64_t id) {
    std::vector<trace::Event> events;
    events.emplace_back(
        trace::AllocEvent{id, id, 0x1000 * id, 64, s, trace::AllocKind::kMalloc});
    return events;
  };

  auto client = Client::connect(daemon.path());
  ASSERT_TRUE(client.has_value()) << client.error();
  ASSERT_TRUE(client->hello_create(stacks, trace::FunctionTable{}, one_module_table(), 1000.0)
                  .ok());
  EXPECT_EQ(client->negotiated().queue_blocks, 1u);

  // Block 1 parks the applier in before_apply; wait for the pop so the
  // queue state is deterministic, then block 2 fills it, block 3 gets
  // BUSY (and block_seq does not advance).
  auto first = client->ingest_block_once(block(1));
  ASSERT_TRUE(first.has_value()) << first.error();
  ASSERT_EQ(*first, Client::Ingest::kAccepted);
  const auto session = daemon.server().sessions().find(client->session_id());
  ASSERT_NE(session, nullptr);
  while (session->stats().queue_depth != 0) std::this_thread::yield();

  auto second = client->ingest_block_once(block(2));
  ASSERT_TRUE(second.has_value()) << second.error();
  ASSERT_EQ(*second, Client::Ingest::kAccepted);

  auto third = client->ingest_block_once(block(3));
  ASSERT_TRUE(third.has_value()) << third.error();
  EXPECT_EQ(*third, Client::Ingest::kBusy);
  EXPECT_EQ(client->last_busy().queue_depth, 1u);
  EXPECT_EQ(client->last_busy().retry_hint_ms, 1u);

  // Releasing the gate lets the retry land; the resent block is not
  // double-counted.
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    release = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(client->ingest_block(block(3)).ok());

  const auto stats = client->stats();
  ASSERT_TRUE(stats.has_value()) << stats.error();
  EXPECT_EQ(stats->blocks_accepted, 3u);
  ASSERT_TRUE(client->bye().ok());
}

TEST(ServeConcurrencyServer, GracefulDrainAppliesQueuedBlocks) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool release = false;

  ServerOptions options;
  options.queue_blocks = 64;
  options.before_apply = [&] {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return release; });
  };
  TestDaemon daemon(std::move(options));
  const std::string socket_path = daemon.path();

  trace::StackTable stacks;
  const trace::StackId s = stacks.intern(bom::CallStack{{{0, 0x10}}});
  auto client = Client::connect(socket_path);
  ASSERT_TRUE(client.has_value()) << client.error();
  ASSERT_TRUE(client->hello_create(stacks, trace::FunctionTable{}, one_module_table(), 1000.0)
                  .ok());
  for (std::uint64_t i = 1; i <= 8; ++i) {
    std::vector<trace::Event> events;
    events.emplace_back(
        trace::AllocEvent{i, i, 0x1000 * i, 64, s, trace::AllocKind::kMalloc});
    ASSERT_TRUE(client->ingest_block(events).ok());
  }
  const auto session = daemon.server().sessions().find(client->session_id());
  ASSERT_NE(session, nullptr);

  // Stop the daemon with blocks still queued behind the gate. An idle
  // connected client receives ERROR shutting-down; the drain applies
  // every accepted block before run() returns.
  std::thread releaser([&] {
    std::unique_lock<std::mutex> lock(gate_mu);
    release = true;
    gate_cv.notify_all();
  });
  daemon.stop();
  releaser.join();

  const auto farewell = client->read_reply();
  ASSERT_TRUE(farewell.has_value()) << farewell.error();
  EXPECT_EQ(farewell->type, FrameType::kError);
  const auto err = decode_error(farewell->payload);
  ASSERT_TRUE(err.has_value()) << err.error();
  EXPECT_EQ(err->code, ErrorCode::kShuttingDown);

  EXPECT_EQ(session->stats().epoch, 8u) << "drain must apply every accepted block";
  EXPECT_EQ(session->stats().queue_depth, 0u);
  EXPECT_NE(::access(socket_path.c_str(), F_OK), 0) << "socket file must be unlinked";
}

TEST(ServeConcurrencyServer, ProtocolViolationsFollowTheStateMachine) {
  TestDaemon daemon(ServerOptions{});

  {  // Any frame before HELLO is bad-sequence and closes.
    auto client = Client::connect(daemon.path());
    ASSERT_TRUE(client.has_value()) << client.error();
    const auto stats = client->stats();
    ASSERT_FALSE(stats.has_value());
    EXPECT_NE(stats.error().find("bad-sequence"), std::string::npos);
  }
  {  // Unknown frame type closes with unknown-type.
    auto client = Client::connect(daemon.path());
    ASSERT_TRUE(client.has_value()) << client.error();
    std::string raw;
    append_frame(raw, static_cast<FrameType>(0x55), "junk");
    ASSERT_TRUE(client->send_raw(raw).ok());
    const auto reply = client->read_reply();
    ASSERT_TRUE(reply.has_value()) << reply.error();
    ASSERT_EQ(reply->type, FrameType::kError);
    const auto err = decode_error(reply->payload);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ErrorCode::kUnknownType);
  }
  {  // A zero-length frame is malformed and closes.
    auto client = Client::connect(daemon.path());
    ASSERT_TRUE(client.has_value()) << client.error();
    ASSERT_TRUE(client->send_raw(std::string(4, '\0')).ok());
    const auto reply = client->read_reply();
    ASSERT_TRUE(reply.has_value()) << reply.error();
    ASSERT_EQ(reply->type, FrameType::kError);
    EXPECT_EQ(decode_error(reply->payload)->code, ErrorCode::kMalformedFrame);
  }
  {  // HELLO attach to a nonexistent session closes with no-such-session.
    auto client = Client::connect(daemon.path());
    ASSERT_TRUE(client.has_value()) << client.error();
    const auto status = client->hello_attach(4242);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.error().find("no-such-session"), std::string::npos);
  }
  {  // An undecodable HELLO header blob is malformed.
    auto client = Client::connect(daemon.path());
    ASSERT_TRUE(client.has_value()) << client.error();
    HelloRequest hello;
    hello.header = "not a trace header";
    std::string payload;
    encode_hello(payload, hello);
    std::string raw;
    append_frame(raw, FrameType::kHello, payload);
    ASSERT_TRUE(client->send_raw(raw).ok());
    const auto reply = client->read_reply();
    ASSERT_TRUE(reply.has_value()) << reply.error();
    ASSERT_EQ(reply->type, FrameType::kError);
    EXPECT_EQ(decode_error(reply->payload)->code, ErrorCode::kMalformedFrame);
  }
}

TEST(ServeConcurrencyServer, BadBlockIsSalvagedNotFatal) {
  TestDaemon daemon(ServerOptions{});
  trace::StackTable stacks;
  const trace::StackId s = stacks.intern(bom::CallStack{{{0, 0x10}}});

  auto client = Client::connect(daemon.path());
  ASSERT_TRUE(client.has_value()) << client.error();
  ASSERT_TRUE(client->hello_create(stacks, trace::FunctionTable{}, one_module_table(), 1000.0)
                  .ok());

  // A block whose body does not decode: declared events become lost
  // coverage, the session survives, the sequence number advances.
  IngestBlock bad;
  bad.block_seq = 0;
  bad.event_count = 100;
  bad.block = "garbage that is not a v3 block";
  std::string payload;
  encode_ingest_block(payload, bad);
  std::string raw;
  append_frame(raw, FrameType::kIngestBlock, payload);
  ASSERT_TRUE(client->send_raw(raw).ok());
  const auto reply = client->read_reply();
  ASSERT_TRUE(reply.has_value()) << reply.error();
  ASSERT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ(decode_error(reply->payload)->code, ErrorCode::kBadBlock);

  // The session is still usable — but the client-side seq tracker must
  // skip the consumed seq 0, so drive the next block manually.
  IngestBlock good;
  good.block_seq = 1;
  good.event_count = 1;
  Ns last_time = 0;
  trace::codec::encode_event_compact(
      good.block, trace::Event{trace::AllocEvent{1, 1, 0x1000, 64, s, trace::AllocKind::kMalloc}},
      last_time);
  payload.clear();
  encode_ingest_block(payload, good);
  raw.clear();
  append_frame(raw, FrameType::kIngestBlock, payload);
  ASSERT_TRUE(client->send_raw(raw).ok());
  const auto ok_reply = client->read_reply();
  ASSERT_TRUE(ok_reply.has_value()) << ok_reply.error();
  ASSERT_EQ(ok_reply->type, FrameType::kBlockOk);

  // SNAPSHOT flushes (applies every accepted block) before answering;
  // STATS deliberately does not, so take the snapshot first to make the
  // counters below deterministic.
  const auto snap = client->snapshot_csv();
  ASSERT_TRUE(snap.has_value()) << snap.error();
  EXPECT_NE(snap->csv.find("salvaged"), std::string::npos);

  const auto stats = client->stats();
  ASSERT_TRUE(stats.has_value()) << stats.error();
  EXPECT_EQ(stats->blocks_dropped, 1u);
  EXPECT_EQ(stats->events_declared, 101u);
  EXPECT_EQ(stats->events_seen, 1u);
  EXPECT_EQ(stats->poisoned, 0u);
}

TEST(ServeConcurrencyServer, ByeCloseRetiresTheSession) {
  TestDaemon daemon(ServerOptions{});
  trace::StackTable stacks;

  auto client = Client::connect(daemon.path());
  ASSERT_TRUE(client.has_value()) << client.error();
  ASSERT_TRUE(client->hello_create(stacks, trace::FunctionTable{}, one_module_table(), 1000.0)
                  .ok());
  const std::uint64_t id = client->session_id();
  EXPECT_EQ(daemon.server().sessions().size(), 1u);
  ASSERT_TRUE(client->bye(/*close_session=*/true).ok());

  // The registry no longer knows the id: a new attach fails.
  auto late = Client::connect(daemon.path());
  ASSERT_TRUE(late.has_value()) << late.error();
  const auto status = late->hello_attach(id);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().find("no-such-session"), std::string::npos);
  EXPECT_EQ(daemon.server().sessions().size(), 0u);
}

TEST(ServeConcurrencyServer, ManyParallelSessions) {
  // Several clients each drive an independent session concurrently;
  // per-tenant isolation means every one sees exactly its own events.
  TestDaemon daemon(ServerOptions{});
  trace::StackTable stacks;
  const trace::StackId s = stacks.intern(bom::CallStack{{{0, 0x10}}});

  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      auto client = Client::connect(daemon.path());
      ASSERT_TRUE(client.has_value()) << client.error();
      ASSERT_TRUE(
          client->hello_create(stacks, trace::FunctionTable{}, one_module_table(), 1000.0)
              .ok());
      const std::uint64_t blocks = 5 + static_cast<std::uint64_t>(c);
      for (std::uint64_t i = 1; i <= blocks; ++i) {
        std::vector<trace::Event> events;
        events.emplace_back(
            trace::AllocEvent{i, i, 0x1000 * i, 64, s, trace::AllocKind::kMalloc});
        ASSERT_TRUE(client->ingest_block(events).ok());
      }
      const auto stats = client->stats();
      ASSERT_TRUE(stats.has_value()) << stats.error();
      EXPECT_EQ(stats->blocks_accepted, blocks);
      const auto snap = client->snapshot_csv();
      ASSERT_TRUE(snap.has_value()) << snap.error();
      ASSERT_TRUE(client->bye().ok());
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(daemon.server().sessions().size(), 6u);
}

}  // namespace
}  // namespace ecohmem::serve
