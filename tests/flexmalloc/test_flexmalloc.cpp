#include "ecohmem/flexmalloc/flexmalloc.hpp"

#include <gtest/gtest.h>

#include "ecohmem/flexmalloc/heap_manager.hpp"
#include "ecohmem/flexmalloc/report_parser.hpp"

namespace ecohmem::flexmalloc {
namespace {

const bom::CallStack kHotStack{{{0, 0x100}}};
const bom::CallStack kColdStack{{{0, 0x200}}};
const bom::CallStack kUnknownStack{{{0, 0x999}}};

ParsedReport test_report() {
  ParsedReport r;
  r.fallback_tier = "pmem";
  r.is_bom = true;
  r.entries.push_back(ReportEntry{kHotStack, "dram", 4096});
  r.entries.push_back(ReportEntry{kColdStack, "pmem", 8192});
  return r;
}

// ----------------------------------------------------------- ArenaHeap

TEST(ArenaHeap, AllocateAndFree) {
  ArenaHeap heap("dram", 1 << 20, 4096);
  const auto a = heap.allocate(100);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(heap.owns(*a));
  EXPECT_EQ(heap.used(), 128u);  // padded to 64B
  const auto freed = heap.deallocate(*a);
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(*freed, 128u);
  EXPECT_EQ(heap.used(), 0u);
}

TEST(ArenaHeap, CapacityEnforced) {
  ArenaHeap heap("dram", 1 << 20, 256);
  ASSERT_TRUE(heap.allocate(128).has_value());
  ASSERT_TRUE(heap.allocate(128).has_value());
  EXPECT_FALSE(heap.allocate(64).has_value());
}

TEST(ArenaHeap, FreeListReuse) {
  ArenaHeap heap("dram", 1 << 20, 1024);
  const auto a = heap.allocate(256);
  const auto b = heap.allocate(256);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(heap.deallocate(*a).has_value());
  const auto c = heap.allocate(128);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, *a);  // first-fit reuses the hole
}

TEST(ArenaHeap, CoalescesAdjacentFreeBlocks) {
  ArenaHeap heap("dram", 1 << 20, 1024);
  const auto a = heap.allocate(256);
  const auto b = heap.allocate(256);
  const auto c = heap.allocate(256);
  ASSERT_TRUE(a && b && c);
  ASSERT_TRUE(heap.deallocate(*a).has_value());
  ASSERT_TRUE(heap.deallocate(*b).has_value());
  // a+b coalesced: a 512-byte request fits in the hole at a's address.
  const auto big = heap.allocate(512);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(*big, *a);
}

TEST(ArenaHeap, DoubleFreeRejected) {
  ArenaHeap heap("dram", 1 << 20, 1024);
  const auto a = heap.allocate(64);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(heap.deallocate(*a).has_value());
  EXPECT_FALSE(heap.deallocate(*a).has_value());
  EXPECT_FALSE(heap.deallocate(0xdead).has_value());
}

TEST(ArenaHeap, HighWaterTracksPeak) {
  ArenaHeap heap("dram", 1 << 20, 4096);
  const auto a = heap.allocate(1024);
  const auto b = heap.allocate(1024);
  ASSERT_TRUE(a && b);
  ASSERT_TRUE(heap.deallocate(*a).has_value());
  EXPECT_EQ(heap.high_water(), 2048u);
}

TEST(ArenaHeap, ZeroByteAllocationGetsDistinctAddress) {
  ArenaHeap heap("dram", 1 << 20, 4096);
  const auto a = heap.allocate(0);
  const auto b = heap.allocate(0);
  ASSERT_TRUE(a && b);
  EXPECT_NE(*a, *b);
}

// ----------------------------------------------------------- FlexMalloc

FlexMalloc make_fm(Bytes dram_cap = 1 << 20) {
  auto fm = FlexMalloc::create(
      {{"dram", dram_cap}, {"pmem", 1ull << 30}}, test_report(), nullptr);
  EXPECT_TRUE(fm.has_value()) << (fm ? "" : fm.error());
  return std::move(*fm);
}

TEST(FlexMalloc, RoutesMatchedStacksToTheirTier) {
  FlexMalloc fm = make_fm();
  const auto hot = fm.malloc(kHotStack, 128);
  ASSERT_TRUE(hot.has_value());
  EXPECT_TRUE(hot->matched);
  EXPECT_EQ(fm.tier_name(hot->tier_index), "dram");

  const auto cold = fm.malloc(kColdStack, 128);
  ASSERT_TRUE(cold.has_value());
  EXPECT_EQ(fm.tier_name(cold->tier_index), "pmem");
}

TEST(FlexMalloc, UnlistedStacksUseFallback) {
  FlexMalloc fm = make_fm();
  const auto a = fm.malloc(kUnknownStack, 128);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(a->matched);
  EXPECT_EQ(fm.tier_name(a->tier_index), "pmem");
}

TEST(FlexMalloc, OomRedirectsToFallback) {
  FlexMalloc fm = make_fm(/*dram_cap=*/256);
  ASSERT_TRUE(fm.malloc(kHotStack, 256).has_value());
  const auto spill = fm.malloc(kHotStack, 256);
  ASSERT_TRUE(spill.has_value());
  EXPECT_TRUE(spill->redirected);
  EXPECT_EQ(fm.tier_name(spill->tier_index), "pmem");
  EXPECT_EQ(fm.oom_redirects(), 1u);
}

TEST(FlexMalloc, FallbackExhaustionIsAnError) {
  auto fm = FlexMalloc::create({{"dram", 256}, {"pmem", 256}}, test_report(), nullptr);
  ASSERT_TRUE(fm.has_value());
  ASSERT_TRUE(fm->malloc(kHotStack, 256).has_value());
  ASSERT_TRUE(fm->malloc(kColdStack, 256).has_value());
  EXPECT_FALSE(fm->malloc(kHotStack, 64).has_value());
}

TEST(FlexMalloc, FreeFindsOwningHeap) {
  FlexMalloc fm = make_fm();
  const auto hot = fm.malloc(kHotStack, 128);
  const auto cold = fm.malloc(kColdStack, 128);
  ASSERT_TRUE(hot && cold);
  EXPECT_TRUE(fm.free(hot->address).ok());
  EXPECT_TRUE(fm.free(cold->address).ok());
  EXPECT_FALSE(fm.free(0xdeadbeef).ok());
}

TEST(FlexMalloc, ReallocKeepsTier) {
  FlexMalloc fm = make_fm();
  const auto a = fm.malloc(kHotStack, 128);
  ASSERT_TRUE(a.has_value());
  const auto b = fm.realloc(kHotStack, a->address, 4096);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(fm.tier_name(b->tier_index), "dram");
}

TEST(FlexMalloc, StatsPerTier) {
  FlexMalloc fm = make_fm();
  ASSERT_TRUE(fm.malloc(kHotStack, 100).has_value());
  ASSERT_TRUE(fm.malloc(kHotStack, 100).has_value());
  ASSERT_TRUE(fm.malloc(kColdStack, 100).has_value());
  const auto stats = fm.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].tier, "dram");
  EXPECT_EQ(stats[0].allocations, 2u);
  EXPECT_EQ(stats[1].allocations, 1u);
}

TEST(FlexMalloc, RejectsReportWithUnknownTier) {
  ParsedReport bad = test_report();
  bad.entries.push_back(ReportEntry{kUnknownStack, "hbm", 0});
  EXPECT_FALSE(
      FlexMalloc::create({{"dram", 1 << 20}, {"pmem", 1 << 20}}, bad, nullptr).has_value());
}

TEST(FlexMalloc, RejectsFallbackWithoutHeap) {
  ParsedReport r = test_report();
  r.fallback_tier = "ghost";
  EXPECT_FALSE(
      FlexMalloc::create({{"dram", 1 << 20}, {"pmem", 1 << 20}}, r, nullptr).has_value());
}

TEST(FlexMalloc, DefaultFallbackIsLargestHeap) {
  ParsedReport r = test_report();
  r.fallback_tier.clear();
  auto fm = FlexMalloc::create({{"dram", 1 << 20}, {"pmem", 1ull << 30}}, r, nullptr);
  ASSERT_TRUE(fm.has_value());
  EXPECT_EQ(fm->tier_name(fm->fallback_index()), "pmem");
}

TEST(FlexMalloc, AddressesAreTierDisjoint) {
  FlexMalloc fm = make_fm();
  const auto hot = fm.malloc(kHotStack, 64);
  const auto cold = fm.malloc(kColdStack, 64);
  ASSERT_TRUE(hot && cold);
  EXPECT_FALSE(fm.heap(hot->tier_index).owns(cold->address));
  EXPECT_FALSE(fm.heap(cold->tier_index).owns(hot->address));
}

// ------------------------------------------------------------ migrate

TEST(FlexMallocMigrate, MovesLiveBlockBetweenTiers) {
  FlexMalloc fm = make_fm();
  const auto a = fm.malloc(kHotStack, 256);
  ASSERT_TRUE(a.has_value());
  ASSERT_EQ(fm.tier_name(a->tier_index), "dram");

  const auto pmem = fm.tier_index("pmem");
  ASSERT_TRUE(pmem.has_value());
  const auto moved = fm.migrate(a->address, *pmem);
  ASSERT_TRUE(moved.has_value()) << moved.error();
  EXPECT_TRUE(moved->moved);
  EXPECT_EQ(moved->from_tier, a->tier_index);
  EXPECT_GE(moved->bytes, 256u);
  EXPECT_TRUE(fm.heap(*pmem).owns(moved->address));
  EXPECT_FALSE(fm.heap(a->tier_index).owns(moved->address));
  EXPECT_EQ(fm.migrations(), 1u);
  EXPECT_GE(fm.migrated_bytes(), 256u);
  EXPECT_EQ(fm.migration_refusals(), 0u);
}

TEST(FlexMallocMigrate, AddressMapFollowsTheMove) {
  FlexMalloc fm = make_fm();
  const auto a = fm.malloc(kHotStack, 128);
  ASSERT_TRUE(a.has_value());
  const auto pmem = fm.tier_index("pmem");
  ASSERT_TRUE(pmem.has_value());
  const auto moved = fm.migrate(a->address, *pmem);
  ASSERT_TRUE(moved.has_value());
  ASSERT_TRUE(moved->moved);

  // The old address is gone; the new one frees cleanly.
  EXPECT_FALSE(fm.free(a->address).ok());
  EXPECT_TRUE(fm.free(moved->address).ok());
}

TEST(FlexMallocMigrate, UnknownAddressIsAnError) {
  FlexMalloc fm = make_fm();
  const auto pmem = fm.tier_index("pmem");
  ASSERT_TRUE(pmem.has_value());
  EXPECT_FALSE(fm.migrate(0xdeadbeef, *pmem).has_value());
}

TEST(FlexMallocMigrate, SameTierRequestIsAnError) {
  FlexMalloc fm = make_fm();
  const auto a = fm.malloc(kHotStack, 64);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(fm.migrate(a->address, a->tier_index).has_value());
}

TEST(FlexMallocMigrate, UnknownTierIsAnError) {
  FlexMalloc fm = make_fm();
  const auto a = fm.malloc(kHotStack, 64);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(fm.migrate(a->address, 99).has_value());
}

TEST(FlexMallocMigrate, FullTargetRefusesButDoesNotError) {
  // dram heap of 256 bytes: a resident block leaves no room for the
  // 256-byte block we try to move in from pmem.
  auto fm = FlexMalloc::create({{"dram", 256}, {"pmem", 1 << 20}}, test_report(), nullptr);
  ASSERT_TRUE(fm.has_value());
  const auto resident = fm->malloc(kHotStack, 256);
  ASSERT_TRUE(resident.has_value());
  const auto visitor = fm->malloc(kColdStack, 256);
  ASSERT_TRUE(visitor.has_value());
  ASSERT_EQ(fm->tier_name(visitor->tier_index), "pmem");

  const auto dram = fm->tier_index("dram");
  ASSERT_TRUE(dram.has_value());
  const auto refused = fm->migrate(visitor->address, *dram);
  ASSERT_TRUE(refused.has_value()) << refused.error();
  EXPECT_FALSE(refused->moved);
  EXPECT_EQ(refused->address, visitor->address);  // block untouched
  EXPECT_EQ(fm->migrations(), 0u);
  EXPECT_EQ(fm->migration_refusals(), 1u);
  EXPECT_TRUE(fm->free(visitor->address).ok());
}

TEST(FlexMallocMigrate, CountersAccumulateAcrossMoves) {
  FlexMalloc fm = make_fm();
  const auto pmem = fm.tier_index("pmem");
  const auto dram = fm.tier_index("dram");
  ASSERT_TRUE(pmem && dram);
  const auto a = fm.malloc(kHotStack, 100);
  ASSERT_TRUE(a.has_value());
  const auto there = fm.migrate(a->address, *pmem);
  ASSERT_TRUE(there.has_value());
  ASSERT_TRUE(there->moved);
  const auto back = fm.migrate(there->address, *dram);
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->moved);
  EXPECT_EQ(fm.migrations(), 2u);
  EXPECT_EQ(fm.migrated_bytes(), there->bytes + back->bytes);
}

// -------------------------------------------- sub-range (page-granular)

TEST(ArenaHeap, ReleaseRangeSplitsAroundTheFreedMiddle) {
  ArenaHeap heap("dram", 1 << 20, 1 << 16);
  const auto a = heap.allocate(4096);
  ASSERT_TRUE(a.has_value());
  const Bytes used_before = heap.used();

  const auto released = heap.release_range(*a, 1024, 1024);
  ASSERT_TRUE(released.has_value()) << released.error();
  EXPECT_EQ(*released, 1024u);
  EXPECT_EQ(heap.used(), used_before - 1024);

  // Prefix keeps the original address; the suffix is its own live block.
  EXPECT_EQ(*heap.block_size(*a), 1024u);
  EXPECT_EQ(*heap.block_size(*a + 2048), 2048u);
  EXPECT_TRUE(heap.deallocate(*a).has_value());
  EXPECT_TRUE(heap.deallocate(*a + 2048).has_value());
  EXPECT_EQ(heap.used(), used_before - 4096);
}

TEST(ArenaHeap, ReleaseRangeToBlockEndNeedsNoLengthAlignment) {
  ArenaHeap heap("dram", 1 << 20, 1 << 16);
  const auto a = heap.allocate(4096);
  ASSERT_TRUE(a.has_value());
  // 192..4096 is not an alignment multiple long, but it reaches the end.
  ASSERT_TRUE(heap.release_range(*a, 192, 4096 - 192).has_value());
  EXPECT_EQ(*heap.block_size(*a), 192u);
}

TEST(ArenaHeap, ReleaseRangeRejectsMisalignmentAndOverrun) {
  ArenaHeap heap("dram", 1 << 20, 1 << 16);
  const auto a = heap.allocate(4096);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(heap.release_range(*a, 100, 64).has_value());    // offset unaligned
  EXPECT_FALSE(heap.release_range(*a, 0, 100).has_value());     // interior length unaligned
  EXPECT_FALSE(heap.release_range(*a, 0, 8192).has_value());    // past the end
  EXPECT_FALSE(heap.release_range(*a, 4096, 64).has_value());   // starts past the end
  EXPECT_FALSE(heap.release_range(*a + 64, 0, 64).has_value()); // not a block address
}

TEST(FlexMallocMigrate, SubRangeMovesOnlyTheRequestedChunk) {
  FlexMalloc fm = make_fm();
  const auto a = fm.malloc(kHotStack, 8192);
  ASSERT_TRUE(a.has_value());
  const auto pmem = fm.tier_index("pmem");
  ASSERT_TRUE(pmem.has_value());

  const auto moved = fm.migrate(a->address, *pmem, 2048, 4096);
  ASSERT_TRUE(moved.has_value()) << moved.error();
  EXPECT_TRUE(moved->moved);
  EXPECT_EQ(moved->bytes, 4096u);
  EXPECT_EQ(moved->from_tier, a->tier_index);
  EXPECT_NE(moved->address, a->address);
  EXPECT_TRUE(fm.heap(*pmem).owns(moved->address));

  // The untouched prefix and suffix stay live in the source tier, and
  // the counters record only the range, not the whole block.
  EXPECT_EQ(*fm.heap(a->tier_index).block_size(a->address), 2048u);
  EXPECT_EQ(*fm.heap(a->tier_index).block_size(a->address + 6144), 2048u);
  EXPECT_EQ(fm.migrations(), 1u);
  EXPECT_EQ(fm.migrated_bytes(), 4096u);
}

TEST(FlexMallocMigrate, SubRangeCoveringWholeBlockIsAPlainMigration) {
  FlexMalloc fm = make_fm();
  const auto a = fm.malloc(kHotStack, 4096);
  ASSERT_TRUE(a.has_value());
  const auto pmem = fm.tier_index("pmem");
  ASSERT_TRUE(pmem.has_value());
  const auto moved = fm.migrate(a->address, *pmem, 0, 4096);
  ASSERT_TRUE(moved.has_value()) << moved.error();
  EXPECT_TRUE(moved->moved);
  EXPECT_EQ(moved->bytes, 4096u);
  EXPECT_FALSE(fm.heap(a->tier_index).owns(moved->address));
  EXPECT_TRUE(fm.free(moved->address).ok());
}

TEST(FlexMallocMigrate, SubRangeAbsorbsSubAlignmentPaddingTail) {
  // A 1000-byte request is padded to 1024; moving [0, 960) would leave a
  // 64-byte-true but sub-range 40-byte *requested* tail. The mover must
  // absorb a tail smaller than one alignment unit into the range so the
  // remnant never becomes an unreleasable sliver.
  FlexMalloc fm = make_fm();
  const auto a = fm.malloc(kHotStack, 1000);
  ASSERT_TRUE(a.has_value());
  const auto pmem = fm.tier_index("pmem");
  ASSERT_TRUE(pmem.has_value());
  const auto size = fm.heap(a->tier_index).block_size(a->address);
  ASSERT_TRUE(size.has_value());

  const auto moved = fm.migrate(a->address, *pmem, 0, *size - 32);
  ASSERT_TRUE(moved.has_value()) << moved.error();
  EXPECT_TRUE(moved->moved);
  EXPECT_EQ(moved->bytes, *size);  // tail absorbed, whole block moved
  EXPECT_TRUE(fm.free(moved->address).ok());
}

TEST(FlexMallocMigrate, SubRangeWithFullTargetRefusesAndLeavesSourceIntact) {
  auto fm = FlexMalloc::create({{"dram", 256}, {"pmem", 1 << 20}}, test_report(), nullptr);
  ASSERT_TRUE(fm.has_value());
  const auto resident = fm->malloc(kHotStack, 256);
  ASSERT_TRUE(resident.has_value());
  const auto visitor = fm->malloc(kColdStack, 8192);
  ASSERT_TRUE(visitor.has_value());
  const auto dram = fm->tier_index("dram");
  ASSERT_TRUE(dram.has_value());

  const auto refused = fm->migrate(visitor->address, *dram, 0, 4096);
  ASSERT_TRUE(refused.has_value()) << refused.error();
  EXPECT_FALSE(refused->moved);
  EXPECT_EQ(fm->migration_refusals(), 1u);
  EXPECT_EQ(*fm->heap(visitor->tier_index).block_size(visitor->address), 8192u);
}

TEST(FlexMallocMigrate, SubRangeOutsideBlockIsAnError) {
  FlexMalloc fm = make_fm();
  const auto a = fm.malloc(kHotStack, 4096);
  ASSERT_TRUE(a.has_value());
  const auto pmem = fm.tier_index("pmem");
  ASSERT_TRUE(pmem.has_value());
  EXPECT_FALSE(fm.migrate(a->address, *pmem, 0, 0).has_value());
  EXPECT_FALSE(fm.migrate(a->address, *pmem, 8192, 64).has_value());
  EXPECT_FALSE(fm.migrate(a->address, *pmem, 0, 65536).has_value());
}

}  // namespace
}  // namespace ecohmem::flexmalloc
