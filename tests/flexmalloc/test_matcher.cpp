#include "ecohmem/flexmalloc/matcher.hpp"

#include <gtest/gtest.h>

#include "ecohmem/flexmalloc/report_parser.hpp"

namespace ecohmem::flexmalloc {
namespace {

bom::ModuleTable test_modules() {
  bom::ModuleTable mt;
  mt.add_module("app.x", 1 << 20, 4 << 20);
  mt.add_module("libm.so", 1 << 20, 1 << 20);
  return mt;
}

bom::SymbolTable test_symbols(const bom::ModuleTable& mt) {
  bom::SymbolTable st(&mt);
  st.add_entry(0, {0x000, "main.cc", 1});
  st.add_entry(0, {0x100, "vector.hpp", 40});
  st.add_entry(1, {0x000, "mpialloc.c", 7});
  return st;
}

// ------------------------------------------------------------ parsing

TEST(ReportParser, ParsesBomReport) {
  const auto mt = test_modules();
  const auto report = parse_report(R"(# ecoHMEM placement report
# format = bom
# fallback = pmem
app.x!0x100 @ dram # size=4096
app.x!0x100 > libm.so!0x20 @ pmem
)",
                                   mt);
  ASSERT_TRUE(report.has_value()) << report.error();
  EXPECT_TRUE(report->is_bom);
  EXPECT_EQ(report->fallback_tier, "pmem");
  ASSERT_EQ(report->entries.size(), 2u);
  EXPECT_EQ(report->entries[0].tier, "dram");
  EXPECT_EQ(report->entries[0].size, 4096u);
  EXPECT_EQ(std::get<bom::CallStack>(report->entries[1].stack).depth(), 2u);
}

TEST(ReportParser, ParsesHumanReadableReport) {
  const auto mt = test_modules();
  const auto report = parse_report(R"(# format = human-readable
# fallback = pmem
vector.hpp:40 > main.cc:1 @ dram # size=128
)",
                                   mt);
  ASSERT_TRUE(report.has_value()) << report.error();
  EXPECT_FALSE(report->is_bom);
  const auto& hs = std::get<bom::HumanStack>(report->entries[0].stack);
  EXPECT_EQ(hs[0].file, "vector.hpp");
}

TEST(ReportParser, AutoDetectsFormatWithoutHeader) {
  const auto mt = test_modules();
  const auto bom_report = parse_report("app.x!0x100 @ dram\n", mt);
  ASSERT_TRUE(bom_report.has_value());
  EXPECT_TRUE(bom_report->is_bom);

  const auto hr_report = parse_report("file.cc:12 @ dram\n", mt);
  ASSERT_TRUE(hr_report.has_value());
  EXPECT_FALSE(hr_report->is_bom);
}

TEST(ReportParser, Rejections) {
  const auto mt = test_modules();
  EXPECT_FALSE(parse_report("app.x!0x100 dram\n", mt).has_value());     // no @
  EXPECT_FALSE(parse_report("ghost.so!0x100 @ dram\n", mt).has_value());  // bad module
  EXPECT_FALSE(parse_report("app.x!0x100 @ \n", mt).has_value());      // empty tier
}

TEST(ReportParser, RejectsMalformedSizeAnnotations) {
  const auto mt = test_modules();
  // Garbage, negative, and 2^64-overflowing sizes must fail loudly with a
  // line number, not silently parse as size = 0.
  const auto garbage = parse_report("app.x!0x100 @ dram # size=banana\n", mt);
  ASSERT_FALSE(garbage.has_value());
  EXPECT_NE(garbage.error().find("line 1"), std::string::npos) << garbage.error();

  const auto negative = parse_report("# header\napp.x!0x100 @ dram # size=-42\n", mt);
  ASSERT_FALSE(negative.has_value());
  EXPECT_NE(negative.error().find("line 2"), std::string::npos) << negative.error();

  const auto overflow = parse_report("app.x!0x100 @ dram # size=99999999999999999999\n", mt);
  ASSERT_FALSE(overflow.has_value());

  const auto trailing = parse_report("app.x!0x100 @ dram # size=4096kb\n", mt);
  ASSERT_FALSE(trailing.has_value());
}

TEST(ReportParser, LoadMissingFileFails) {
  EXPECT_FALSE(load_report("/no/such/report.txt", test_modules()).has_value());
}

// ------------------------------------------------------------ matching

ParsedReport bom_report() {
  ParsedReport r;
  r.is_bom = true;
  r.fallback_tier = "pmem";
  r.entries.push_back(ReportEntry{bom::CallStack{{{0, 0x100}}}, "dram", 0});
  r.entries.push_back(ReportEntry{bom::CallStack{{{0, 0x100}, {1, 0x20}}}, "pmem", 0});
  return r;
}

TEST(Matcher, BomExactMatch) {
  auto m = CallStackMatcher::create(bom_report(), nullptr);
  ASSERT_TRUE(m.has_value());
  const auto hit = m->match(bom::CallStack{{{0, 0x100}}});
  ASSERT_TRUE(hit.matched());
  EXPECT_EQ(*hit.tier, "dram");
  EXPECT_EQ(m->hits(), 1u);
}

TEST(Matcher, BomDepthMatters) {
  auto m = CallStackMatcher::create(bom_report(), nullptr);
  ASSERT_TRUE(m.has_value());
  const auto deep = m->match(bom::CallStack{{{0, 0x100}, {1, 0x20}}});
  ASSERT_TRUE(deep.matched());
  EXPECT_EQ(*deep.tier, "pmem");
  EXPECT_FALSE(m->match(bom::CallStack{{{0, 0x100}, {1, 0x21}}}).matched());
}

TEST(Matcher, BomMissReturnsUnmatched) {
  auto m = CallStackMatcher::create(bom_report(), nullptr);
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(m->match(bom::CallStack{{{0, 0x9999}}}).matched());
  EXPECT_EQ(m->lookups(), 1u);
  EXPECT_EQ(m->hits(), 0u);
}

TEST(Matcher, HumanReadableMatchesViaSymbolization) {
  const auto mt = test_modules();
  const auto st = test_symbols(mt);
  ParsedReport r;
  r.is_bom = false;
  r.fallback_tier = "pmem";
  r.entries.push_back(ReportEntry{bom::HumanStack{{"vector.hpp", 40}}, "dram", 0});

  auto m = CallStackMatcher::create(r, &st);
  ASSERT_TRUE(m.has_value());
  // Frame at offset 0x140 symbolizes to vector.hpp:40.
  const auto hit = m->match(bom::CallStack{{{0, 0x140}}});
  ASSERT_TRUE(hit.matched());
  EXPECT_EQ(*hit.tier, "dram");
}

TEST(Matcher, HumanReadableRequiresSymbolTable) {
  ParsedReport r;
  r.is_bom = false;
  r.entries.push_back(ReportEntry{bom::HumanStack{{"a.cc", 1}}, "dram", 0});
  EXPECT_FALSE(CallStackMatcher::create(r, nullptr).has_value());
}

TEST(Matcher, HumanReadableStrippedFrameFallsBack) {
  const auto mt = test_modules();
  const auto st = test_symbols(mt);
  ParsedReport r;
  r.is_bom = false;
  r.entries.push_back(ReportEntry{bom::HumanStack{{"vector.hpp", 40}}, "dram", 0});
  auto m = CallStackMatcher::create(r, &st);
  ASSERT_TRUE(m.has_value());

  bom::ModuleTable stripped = test_modules();
  // Module 1 has symbols only at offset 0; a frame in module 0 below the
  // first entry cannot be symbolized -> unmatched.
  bom::SymbolTable empty(&stripped);
  auto m2 = CallStackMatcher::create(r, &empty);
  ASSERT_TRUE(m2.has_value());
  EXPECT_FALSE(m2->match(bom::CallStack{{{0, 0x140}}}).matched());
}

TEST(Matcher, HrMatchingCostsMoreThanBom) {
  // The §VI claim, measured: same report content, both formats; the HR
  // path accumulates symbolization cost, the BOM path only integer work.
  const auto mt = test_modules();
  const auto st = test_symbols(mt);

  auto bom_m = CallStackMatcher::create(bom_report(), nullptr);
  ASSERT_TRUE(bom_m.has_value());

  ParsedReport hr;
  hr.is_bom = false;
  hr.entries.push_back(ReportEntry{bom::HumanStack{{"vector.hpp", 40}}, "dram", 0});
  auto hr_m = CallStackMatcher::create(hr, &st);
  ASSERT_TRUE(hr_m.has_value());

  const bom::CallStack probe{{{0, 0x140}}};
  for (int i = 0; i < 1000; ++i) {
    (void)bom_m->match(probe);
    (void)hr_m->match(probe);
  }
  EXPECT_GT(hr_m->matching_cost_ns(), 100.0 * bom_m->matching_cost_ns());
}

TEST(Matcher, EmptyMatcherMatchesNothing) {
  CallStackMatcher m;
  EXPECT_FALSE(m.match(bom::CallStack{{{0, 0x100}}}).matched());
}

}  // namespace
}  // namespace ecohmem::flexmalloc

namespace ecohmem::flexmalloc {
namespace {

// ------------------------------------------------- suffix-depth matching

ParsedReport deep_report() {
  ParsedReport r;
  r.is_bom = true;
  r.fallback_tier = "pmem";
  // Same innermost frames, different outer wrappers.
  r.entries.push_back(
      ReportEntry{bom::CallStack{{{0, 0x100}, {0, 0x200}, {1, 0x900}}}, "dram", 0});
  r.entries.push_back(
      ReportEntry{bom::CallStack{{{0, 0x300}, {0, 0x400}, {1, 0x900}}}, "pmem", 0});
  return r;
}

TEST(MatcherSuffix, FallsBackToInnermostFrames) {
  MatcherOptions opt;
  opt.min_suffix_depth = 2;
  auto m = CallStackMatcher::create(deep_report(), nullptr, opt);
  ASSERT_TRUE(m.has_value());
  // Same two innermost frames as the dram entry, different outer frame.
  const auto hit = m->match(bom::CallStack{{{0, 0x100}, {0, 0x200}, {1, 0xaaaa}}});
  ASSERT_TRUE(hit.matched());
  EXPECT_EQ(*hit.tier, "dram");
}

TEST(MatcherSuffix, ExactMatchStillWins) {
  MatcherOptions opt;
  opt.min_suffix_depth = 1;
  auto m = CallStackMatcher::create(deep_report(), nullptr, opt);
  ASSERT_TRUE(m.has_value());
  const auto hit = m->match(bom::CallStack{{{0, 0x300}, {0, 0x400}, {1, 0x900}}});
  ASSERT_TRUE(hit.matched());
  EXPECT_EQ(*hit.tier, "pmem");
}

TEST(MatcherSuffix, AmbiguousSuffixNeverMatches) {
  // At depth 1 both entries share the innermost frame {0,0x100}... build
  // such a report explicitly.
  ParsedReport r;
  r.is_bom = true;
  r.entries.push_back(ReportEntry{bom::CallStack{{{0, 0x100}, {0, 0x200}}}, "dram", 0});
  r.entries.push_back(ReportEntry{bom::CallStack{{{0, 0x100}, {0, 0x300}}}, "pmem", 0});
  MatcherOptions opt;
  opt.min_suffix_depth = 1;
  auto m = CallStackMatcher::create(r, nullptr, opt);
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(m->match(bom::CallStack{{{0, 0x100}, {0, 0x999}}}).matched());
}

TEST(MatcherSuffix, DisabledByDefault) {
  auto m = CallStackMatcher::create(deep_report(), nullptr);
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(m->match(bom::CallStack{{{0, 0x100}, {0, 0x200}, {1, 0xaaaa}}}).matched());
}

}  // namespace
}  // namespace ecohmem::flexmalloc
