// Concurrency stress tests of the FlexMalloc layer: many threads hammer
// the matcher, a single ArenaHeap, and a full FlexMalloc instance at
// once. Run under both ASan and TSan (ci.sh --sanitize); the TSan preset
// is what actually proves the locking (docs/threading.md).
//
// gtest assertions are not thread-safe, so worker threads only bump
// atomic failure counters; all EXPECTs happen after the join.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "ecohmem/common/rng.hpp"
#include "ecohmem/flexmalloc/flexmalloc.hpp"
#include "ecohmem/flexmalloc/heap_manager.hpp"
#include "ecohmem/flexmalloc/matcher.hpp"

namespace ecohmem::flexmalloc {
namespace {

constexpr std::size_t kThreads = 4;

bom::CallStack make_stack(std::uint64_t site) {
  return bom::CallStack{{{0, 0x1000 + site * 0x10}, {0, 0x40 + site}}};
}

// ------------------------------------------------------------------ Matcher

class MatcherConcurrency : public ::testing::TestWithParam<bool> {};

TEST_P(MatcherConcurrency, ConcurrentLookupsAgreeWithTheReport) {
  constexpr std::size_t kSites = 16;
  ParsedReport report;
  report.fallback_tier = "pmem";
  for (std::size_t s = 0; s < kSites; s += 2) {
    report.entries.push_back(ReportEntry{make_stack(s), s % 4 == 0 ? "dram" : "pmem", 0});
  }

  MatcherOptions options;
  options.match_cache = GetParam();
  auto matcher = CallStackMatcher::create(report, nullptr, options);
  ASSERT_TRUE(matcher.has_value());

  constexpr std::uint64_t kLookupsPerThread = 10'000;
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xC0FFEE + t);
      for (std::uint64_t i = 0; i < kLookupsPerThread; ++i) {
        const std::uint64_t site = rng.next_below(kSites);
        const MatchResult result = matcher->match(make_stack(site));
        // Expected outcome is a pure function of the site, independent of
        // what the other threads are doing.
        const bool should_match = site % 2 == 0;
        bool ok = result.matched() == should_match;
        if (ok && should_match) {
          ok = *result.tier == (site % 4 == 0 ? "dram" : "pmem");
        }
        if (!ok) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(matcher->lookups(), kThreads * kLookupsPerThread);
  // Half the sites are listed, and site draws are uniform-ish; the exact
  // hit count must equal the number of listed-site lookups, which the
  // mismatch check already pinned — here just sanity-bound it.
  EXPECT_GT(matcher->hits(), 0u);
  EXPECT_LT(matcher->hits(), matcher->lookups());
  EXPECT_GT(matcher->matching_cost_ns(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(CacheOnOff, MatcherConcurrency, ::testing::Bool());

// --------------------------------------------------------------- ArenaHeap

class HeapConcurrency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapConcurrency, ParallelAllocFreeKeepsAccountingExact) {
  constexpr Bytes kCapacity = 64ull << 20;
  ArenaHeap heap("stress", 1ull << 40, kCapacity);

  struct ThreadResult {
    std::vector<std::pair<std::uint64_t, Bytes>> live;  // address -> padded size
    std::uint64_t failures = 0;
  };
  std::vector<ThreadResult> results(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(GetParam() * 977 + t);
      ThreadResult& mine = results[t];
      for (int step = 0; step < 4000; ++step) {
        if (mine.live.empty() || rng.next_double() < 0.55) {
          const Bytes request = 1 + rng.next_below(4096);
          const auto addr = heap.allocate(request);
          // Per-thread budget keeps total demand far below capacity, so
          // allocation must always succeed.
          if (!addr.has_value()) {
            ++mine.failures;
            continue;
          }
          mine.live.emplace_back(*addr, (request + 63) / 64 * 64);
        } else {
          const std::size_t pick = rng.next_below(mine.live.size());
          const auto freed = heap.deallocate(mine.live[pick].first);
          if (!freed.has_value() || *freed != mine.live[pick].second) ++mine.failures;
          mine.live.erase(mine.live.begin() + static_cast<long>(pick));
        }
        if (heap.used() > kCapacity) ++mine.failures;
      }
    });
  }
  for (auto& th : threads) th.join();

  Bytes expected_used = 0;
  std::size_t expected_blocks = 0;
  std::map<std::uint64_t, Bytes> all_live;  // address -> size, overlap check
  for (const auto& r : results) {
    EXPECT_EQ(r.failures, 0u);
    for (const auto& [addr, size] : r.live) {
      expected_used += size;
      ++expected_blocks;
      all_live.emplace(addr, size);
    }
  }
  EXPECT_EQ(heap.used(), expected_used);
  EXPECT_EQ(heap.live_blocks(), expected_blocks);
  EXPECT_EQ(all_live.size(), expected_blocks);  // no duplicate addresses

  // Blocks handed to different threads must never overlap.
  std::uint64_t prev_end = 0;
  for (const auto& [addr, size] : all_live) {
    EXPECT_GE(addr, prev_end);
    prev_end = addr + size;
  }

  for (const auto& [addr, size] : all_live) {
    ASSERT_TRUE(heap.deallocate(addr).has_value());
  }
  EXPECT_EQ(heap.used(), 0u);
  EXPECT_EQ(heap.live_blocks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapConcurrency, ::testing::Values(1u, 0xABCDu, 424242u));

// --------------------------------------------------------------- FlexMalloc

TEST(FlexMallocConcurrency, ParallelMallocFreeReallocKeepsTiersConsistent) {
  constexpr std::size_t kSites = 8;
  ParsedReport report;
  report.fallback_tier = "pmem";
  for (std::size_t s = 0; s < kSites; s += 2) {
    report.entries.push_back(ReportEntry{make_stack(s), s % 4 == 0 ? "dram" : "pmem", 0});
  }

  MatcherOptions options;
  options.match_cache = true;
  auto fm = FlexMalloc::create({{"dram", 256ull << 20}, {"pmem", 1ull << 30}}, report, nullptr,
                               options);
  ASSERT_TRUE(fm.has_value());

  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> completed_allocs{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xF1EE + t * 131);
      std::vector<std::pair<std::uint64_t, std::uint64_t>> live;  // address, site
      for (int step = 0; step < 3000; ++step) {
        const double roll = rng.next_double();
        if (live.empty() || roll < 0.5) {
          const std::uint64_t site = rng.next_below(kSites);
          const auto a = fm->malloc(make_stack(site), 1 + rng.next_below(8192));
          if (!a) {
            ++failures;
            continue;
          }
          completed_allocs.fetch_add(1, std::memory_order_relaxed);
          // Placement must follow the report regardless of concurrency.
          if (site % 2 == 0) {
            const std::size_t want = site % 4 == 0 ? 0u : 1u;
            if (a->tier_index != want && !a->redirected) ++failures;
          }
          live.emplace_back(a->address, site);
        } else if (roll < 0.8) {
          const std::size_t pick = rng.next_below(live.size());
          if (!fm->free(live[pick].first).ok()) ++failures;
          live.erase(live.begin() + static_cast<long>(pick));
        } else {
          const std::size_t pick = rng.next_below(live.size());
          const auto a =
              fm->realloc(make_stack(live[pick].second), live[pick].first, 1 + rng.next_below(8192));
          if (!a) {
            ++failures;
            live.erase(live.begin() + static_cast<long>(pick));
            continue;
          }
          completed_allocs.fetch_add(1, std::memory_order_relaxed);
          live[pick].first = a->address;
        }
      }
      for (const auto& [addr, site] : live) {
        if (!fm->free(addr).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0u);

  std::uint64_t tier_allocs = 0;
  for (const auto& s : fm->stats()) tier_allocs += s.allocations;
  EXPECT_EQ(tier_allocs, completed_allocs.load());
  EXPECT_EQ(fm->matcher().lookups(), completed_allocs.load());
  for (std::size_t t = 0; t < fm->tier_count(); ++t) {
    EXPECT_EQ(fm->heap(t).used(), 0u) << fm->tier_name(t);
  }
}

TEST(FlexMallocConcurrency, ParallelMigrationKeepsCountersAndHeapsConsistent) {
  // Threads migrate their own live blocks back and forth between tiers
  // while also allocating and freeing — the single-owner-per-address
  // rule from docs/threading.md. Every counter must reconcile exactly
  // against the per-thread tallies after the join, and a refused move
  // (full target) must leave the block where it was.
  ParsedReport report;
  report.fallback_tier = "pmem";
  report.entries.push_back(ReportEntry{make_stack(0), "dram", 0});

  auto fm = FlexMalloc::create({{"dram", 64ull << 20}, {"pmem", 1ull << 30}}, report,
                               nullptr, {});
  ASSERT_TRUE(fm.has_value());

  struct ThreadTally {
    std::uint64_t moved = 0;
    Bytes moved_bytes = 0;
    std::uint64_t refused = 0;
    std::uint64_t allocs = 0;
    std::uint64_t failures = 0;
  };
  std::vector<ThreadTally> tallies(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x317 + t * 7919);
      ThreadTally& mine = tallies[t];
      std::vector<std::pair<std::uint64_t, std::size_t>> live;  // address, tier
      for (int step = 0; step < 3000; ++step) {
        const double roll = rng.next_double();
        if (live.empty() || roll < 0.4) {
          const auto a = fm->malloc(make_stack(rng.next_below(4)), 1 + rng.next_below(8192));
          if (!a) {
            ++mine.failures;
            continue;
          }
          ++mine.allocs;
          live.emplace_back(a->address, a->tier_index);
        } else if (roll < 0.6) {
          const std::size_t pick = rng.next_below(live.size());
          if (!fm->free(live[pick].first).ok()) ++mine.failures;
          live.erase(live.begin() + static_cast<long>(pick));
        } else {
          // Move one of our own blocks to the other tier. Only this
          // thread touches this address, so the locally tracked tier
          // is authoritative and a same-tier error can never happen.
          const std::size_t pick = rng.next_below(live.size());
          const std::size_t target = 1 - live[pick].second;
          const auto outcome = fm->migrate(live[pick].first, target);
          if (!outcome) {
            ++mine.failures;
            continue;
          }
          if (outcome->moved) {
            ++mine.moved;
            mine.moved_bytes += outcome->bytes;
            live[pick] = {outcome->address, target};
          } else {
            ++mine.refused;
            if (outcome->address != live[pick].first) ++mine.failures;
          }
        }
      }
      for (const auto& [addr, tier] : live) {
        if (!fm->free(addr).ok()) ++mine.failures;
      }
    });
  }
  for (auto& th : threads) th.join();

  std::uint64_t moved = 0;
  Bytes moved_bytes = 0;
  std::uint64_t refused = 0;
  std::uint64_t allocs = 0;
  for (const auto& tally : tallies) {
    EXPECT_EQ(tally.failures, 0u);
    moved += tally.moved;
    moved_bytes += tally.moved_bytes;
    refused += tally.refused;
    allocs += tally.allocs;
  }
  EXPECT_EQ(fm->migrations(), moved);
  EXPECT_EQ(fm->migrated_bytes(), moved_bytes);
  EXPECT_EQ(fm->migration_refusals(), refused);
  EXPECT_GT(moved, 0u);

  // Migrations never count as allocations (TierStats tracks routing).
  std::uint64_t tier_allocs = 0;
  for (const auto& s : fm->stats()) tier_allocs += s.allocations;
  EXPECT_EQ(tier_allocs, allocs);
  for (std::size_t t = 0; t < fm->tier_count(); ++t) {
    EXPECT_EQ(fm->heap(t).used(), 0u) << fm->tier_name(t);
  }
}

}  // namespace
}  // namespace ecohmem::flexmalloc
