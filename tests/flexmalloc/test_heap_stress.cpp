// Randomized stress/invariant tests of the ArenaHeap and FlexMalloc:
// under arbitrary alloc/free/realloc interleavings, accounting must stay
// exact, addresses disjoint, and capacity respected.

#include <gtest/gtest.h>

#include <map>

#include "ecohmem/common/rng.hpp"
#include "ecohmem/flexmalloc/flexmalloc.hpp"
#include "ecohmem/flexmalloc/heap_manager.hpp"

namespace ecohmem::flexmalloc {
namespace {

class HeapStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapStress, AccountingStaysExactUnderRandomOps) {
  Rng rng(GetParam());
  constexpr Bytes kCapacity = 1 << 20;
  ArenaHeap heap("stress", 1ull << 40, kCapacity);

  std::map<std::uint64_t, Bytes> shadow;  // address -> padded size
  Bytes shadow_used = 0;

  for (int step = 0; step < 4000; ++step) {
    const bool do_alloc = shadow.empty() || rng.next_double() < 0.55;
    if (do_alloc) {
      const Bytes request = 1 + rng.next_below(8192);
      const Bytes padded = (request + 63) / 64 * 64;
      const auto addr = heap.allocate(request);
      if (shadow_used + padded <= kCapacity) {
        ASSERT_TRUE(addr.has_value()) << "step " << step;
        // No overlap with any live block.
        for (const auto& [base, size] : shadow) {
          EXPECT_TRUE(*addr + padded <= base || base + size <= *addr);
        }
        shadow.emplace(*addr, padded);
        shadow_used += padded;
      } else {
        EXPECT_FALSE(addr.has_value()) << "step " << step;
      }
    } else {
      // Free a pseudo-random live block.
      auto it = shadow.begin();
      std::advance(it, static_cast<long>(rng.next_below(shadow.size())));
      const auto freed = heap.deallocate(it->first);
      ASSERT_TRUE(freed.has_value());
      EXPECT_EQ(*freed, it->second);
      shadow_used -= it->second;
      shadow.erase(it);
    }
    ASSERT_EQ(heap.used(), shadow_used) << "step " << step;
    ASSERT_EQ(heap.live_blocks(), shadow.size()) << "step " << step;
  }

  // Drain and confirm the heap returns to empty.
  while (!shadow.empty()) {
    ASSERT_TRUE(heap.deallocate(shadow.begin()->first).has_value());
    shadow.erase(shadow.begin());
  }
  EXPECT_EQ(heap.used(), 0u);
}

TEST_P(HeapStress, FlexMallocNeverLosesBytes) {
  Rng rng(GetParam() * 31 + 7);
  const bom::CallStack stacks[3] = {
      bom::CallStack{{{0, 0x100}}}, bom::CallStack{{{0, 0x200}}}, bom::CallStack{{{0, 0x300}}}};

  ParsedReport report;
  report.fallback_tier = "pmem";
  report.entries.push_back(ReportEntry{stacks[0], "dram", 0});
  report.entries.push_back(ReportEntry{stacks[1], "pmem", 0});
  auto fm = FlexMalloc::create({{"dram", 1 << 18}, {"pmem", 1 << 22}}, report, nullptr);
  ASSERT_TRUE(fm.has_value());

  std::vector<std::uint64_t> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.next_double() < 0.6) {
      const auto a = fm->malloc(stacks[rng.next_below(3)], 1 + rng.next_below(4096));
      if (a) live.push_back(a->address);
      // Failure is acceptable only when both heaps are nearly full; in
      // that case the next frees must unblock allocation again.
    } else {
      const std::size_t pick = rng.next_below(live.size());
      ASSERT_TRUE(fm->free(live[pick]).ok());
      live.erase(live.begin() + static_cast<long>(pick));
    }
    Bytes used = 0;
    for (std::size_t t = 0; t < fm->tier_count(); ++t) used += fm->heap(t).used();
    EXPECT_GT(used + 1, 0u);  // accounting is queryable at every step
  }
  for (const auto addr : live) ASSERT_TRUE(fm->free(addr).ok());
  for (std::size_t t = 0; t < fm->tier_count(); ++t) EXPECT_EQ(fm->heap(t).used(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapStress, ::testing::Values(1u, 17u, 23456u, 0xfeedu));

}  // namespace
}  // namespace ecohmem::flexmalloc
