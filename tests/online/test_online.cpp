// Unit tests of the online placement subsystem's pure pieces: the
// policy config loader, the PEBS-style sampler, the EWMA hotness
// tracker with its windowed shield, and the migration planner with its
// cost model (docs/online.md).

#include <gtest/gtest.h>

#include <cmath>

#include "ecohmem/common/config.hpp"
#include "ecohmem/memsim/tier.hpp"
#include "ecohmem/online/hotness.hpp"
#include "ecohmem/online/planner.hpp"
#include "ecohmem/online/policy_config.hpp"
#include "ecohmem/online/sampler.hpp"
#include "ecohmem/online/sharded.hpp"

namespace ecohmem::online {
namespace {

// ------------------------------------------------------- policy config

Expected<OnlinePolicyConfig> parse_policy(std::string_view text) {
  auto config = Config::parse(text);
  if (!config) return unexpected(config.error());
  return OnlinePolicyConfig::from_config(*config);
}

TEST(PolicyConfig, DefaultsValidate) {
  const OnlinePolicyConfig config;
  EXPECT_TRUE(config.validate().ok());
}

TEST(PolicyConfig, ParsesSectionAndGlobalForms) {
  const auto sectioned = parse_policy("[online]\nsample_rate = 0.5\nwindow = 3\n");
  ASSERT_TRUE(sectioned.has_value()) << sectioned.error();
  EXPECT_DOUBLE_EQ(sectioned->sample_rate, 0.5);
  EXPECT_EQ(sectioned->window, 3u);

  const auto bare = parse_policy("ewma_alpha = 0.9\nhysteresis = 0.1\n");
  ASSERT_TRUE(bare.has_value()) << bare.error();
  EXPECT_DOUBLE_EQ(bare->ewma_alpha, 0.9);
  EXPECT_DOUBLE_EQ(bare->hysteresis, 0.1);
}

TEST(PolicyConfig, RejectsUnknownKey) {
  const auto config = parse_policy("[online]\nsampel_rate = 0.5\n");
  ASSERT_FALSE(config.has_value());
  EXPECT_NE(config.error().find("sampel_rate"), std::string::npos);
}

TEST(PolicyConfig, RejectsOutOfRangeValues) {
  EXPECT_FALSE(parse_policy("sample_rate = 0\n").has_value());
  EXPECT_FALSE(parse_policy("sample_rate = 1.5\n").has_value());
  EXPECT_FALSE(parse_policy("ewma_alpha = -0.1\n").has_value());
  EXPECT_FALSE(parse_policy("window = 0\n").has_value());
  EXPECT_FALSE(parse_policy("hysteresis = -1\n").has_value());
  EXPECT_FALSE(parse_policy("min_density = -2\n").has_value());
  EXPECT_FALSE(parse_policy("max_moves_per_step = 0\n").has_value());
  EXPECT_FALSE(parse_policy("bandwidth_fraction = 2\n").has_value());
}

TEST(PolicyConfig, RejectsMalformedValues) {
  EXPECT_FALSE(parse_policy("window = many\n").has_value());
  EXPECT_FALSE(parse_policy("sample_rate = fast\n").has_value());
}

TEST(PolicyConfig, KeyTableIsNullTerminatedAndComplete) {
  const char* const* keys = policy_keys();
  std::size_t n = 0;
  bool saw_sample_rate = false;
  for (; keys[n] != nullptr; ++n) {
    if (std::string_view(keys[n]) == "sample_rate") saw_sample_rate = true;
  }
  EXPECT_EQ(n, 11u);
  EXPECT_TRUE(saw_sample_rate);
}

// ------------------------------------------------------------- sampler

TEST(Sampler, FullRateIsExactForIntegralCounts) {
  AccessSampler sampler(1.0, 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.sample_count(1000.0), 1000u);
  }
}

TEST(Sampler, SameSeedSameStream) {
  AccessSampler a(0.1, 7);
  AccessSampler b(0.1, 7);
  for (int i = 0; i < 1000; ++i) {
    const double events = 100.0 + i * 3.7;
    EXPECT_EQ(a.sample_count(events), b.sample_count(events));
  }
}

TEST(Sampler, MeanTracksRate) {
  AccessSampler sampler(0.25, 11);
  double total = 0.0;
  const int rounds = 4000;
  for (int i = 0; i < rounds; ++i) {
    total += static_cast<double>(sampler.sample_count(10.0));
  }
  // E[count] = 10 * 0.25 = 2.5; the Bernoulli remainder averages out.
  EXPECT_NEAR(total / rounds, 2.5, 0.1);
}

TEST(Sampler, HigherRateNeverSamplesLessInExpectation) {
  AccessSampler low(0.01, 3);
  AccessSampler high(0.5, 3);
  double low_total = 0.0;
  double high_total = 0.0;
  for (int i = 0; i < 2000; ++i) {
    low_total += static_cast<double>(low.sample_count(200.0));
    high_total += static_cast<double>(high.sample_count(200.0));
  }
  EXPECT_LT(low_total, high_total);
}

TEST(Sampler, SamplesLoadsAndStoresSeparately) {
  AccessSampler sampler(1.0, 5);
  const SampledAccess s = sampler.sample(ObjectAccess{9, 640.0, 320.0});
  EXPECT_EQ(s.object, 9u);
  EXPECT_EQ(s.loads, 640u);
  EXPECT_EQ(s.stores, 320u);
}

// ------------------------------------------------------------- hotness

constexpr Bytes kMiB = 1ull << 20;

TEST(Hotness, EwmaBlendsTowardDensity) {
  HotnessTracker tracker(0.5, 4);
  tracker.record(1, 100.0, kMiB);  // density 100 events/MiB
  tracker.end_kernel();
  EXPECT_DOUBLE_EQ(tracker.hotness(1), 50.0);
  tracker.record(1, 100.0, kMiB);
  tracker.end_kernel();
  EXPECT_DOUBLE_EQ(tracker.hotness(1), 75.0);
}

TEST(Hotness, UntouchedObjectsDecay) {
  HotnessTracker tracker(0.5, 8);
  tracker.record(1, 100.0, kMiB);
  tracker.end_kernel();
  const double before = tracker.hotness(1);
  tracker.end_kernel();  // kernel that never touches object 1
  EXPECT_DOUBLE_EQ(tracker.hotness(1), before * 0.5);
}

TEST(Hotness, ShieldHoldsPeakForWindowKernels) {
  HotnessTracker tracker(0.5, 3);
  tracker.record(1, 100.0, kMiB);
  tracker.end_kernel();
  const double peak = tracker.hotness(1);
  // Two cold kernels: EWMA decays but the shield still remembers the peak.
  tracker.end_kernel();
  tracker.end_kernel();
  EXPECT_LT(tracker.hotness(1), peak);
  EXPECT_DOUBLE_EQ(tracker.shield(1), peak);
  // A third cold kernel pushes the peak out of the window; the shield
  // falls to the oldest surviving EWMA value (two decays above current).
  tracker.end_kernel();
  EXPECT_LT(tracker.shield(1), peak);
  EXPECT_DOUBLE_EQ(tracker.shield(1), tracker.hotness(1) * 4.0);
}

TEST(Hotness, ShieldNeverBelowCurrentHotness) {
  HotnessTracker tracker(0.3, 5);
  for (int k = 0; k < 20; ++k) {
    tracker.record(1, (k % 3 == 0) ? 300.0 : 1.0, kMiB);
    tracker.end_kernel();
    EXPECT_GE(tracker.shield(1), tracker.hotness(1));
  }
}

TEST(Hotness, AgeCountsKernelsAndResetsOnForget) {
  HotnessTracker tracker(0.5, 4);
  EXPECT_EQ(tracker.age(1), 0u);
  tracker.record(1, 100.0, kMiB);
  tracker.end_kernel();
  EXPECT_EQ(tracker.age(1), 1u);
  tracker.end_kernel();
  EXPECT_EQ(tracker.age(1), 2u);
  tracker.forget(1);
  EXPECT_EQ(tracker.age(1), 0u);
  tracker.record(1, 100.0, kMiB);
  tracker.end_kernel();
  EXPECT_EQ(tracker.age(1), 1u);  // reborn, not resumed
}

TEST(Hotness, FullyDecayedEntriesAreEvicted) {
  HotnessTracker tracker(0.9, 2);
  tracker.record(1, 1.0, kMiB);
  tracker.end_kernel();
  EXPECT_EQ(tracker.tracked(), 1u);
  for (int k = 0; k < 400; ++k) tracker.end_kernel();
  EXPECT_EQ(tracker.tracked(), 0u);
  EXPECT_DOUBLE_EQ(tracker.hotness(1), 0.0);
}

TEST(Hotness, ForgetDropsHistory) {
  HotnessTracker tracker(0.5, 4);
  tracker.record(1, 100.0, kMiB);
  tracker.end_kernel();
  tracker.forget(1);
  EXPECT_DOUBLE_EQ(tracker.hotness(1), 0.0);
  EXPECT_DOUBLE_EQ(tracker.shield(1), 0.0);
  EXPECT_EQ(tracker.tracked(), 0u);
}

// ------------------------------------------------------------- planner

OnlinePolicyConfig planner_config() {
  OnlinePolicyConfig config;
  config.min_density = 1.0;
  config.hysteresis = 0.25;
  config.window = 4;
  config.max_moves_per_step = 8;
  config.max_bytes_per_step = 0;
  return config;
}

/// A mature view: old enough to pass the planner's maturity gate.
ObjectView view(std::size_t object, Bytes bytes, std::size_t tier, double hotness,
                double shield = -1.0) {
  return ObjectView{object, bytes, tier, hotness, shield < 0.0 ? hotness : shield,
                    /*age=*/100};
}

TEST(Planner, PromotesHottestFirstIntoHeadroom) {
  const MigrationPlanner planner(planner_config());
  const std::vector<ObjectView> views = {
      view(0, 100, 1, 5.0),
      view(1, 100, 1, 50.0),
      view(2, 100, 1, 20.0),
  };
  const auto moves = planner.plan(views, 0, 250);
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_EQ(moves[0].object, 1u);
  EXPECT_EQ(moves[1].object, 2u);
  EXPECT_EQ(moves[0].to_tier, 0u);
}

TEST(Planner, MinDensityGatesPromotion) {
  auto config = planner_config();
  config.min_density = 10.0;
  const MigrationPlanner planner(config);
  const auto moves = planner.plan({view(0, 100, 1, 5.0)}, 0, 1000);
  EXPECT_TRUE(moves.empty());
}

TEST(Planner, ImmatureObjectsAreNeverPromoted) {
  const MigrationPlanner planner(planner_config());
  ObjectView young = view(0, 100, 1, 500.0);
  young.age = 3;  // window is 4
  EXPECT_TRUE(planner.plan({young}, 0, 1000).empty());
  young.age = 4;
  EXPECT_EQ(planner.plan({young}, 0, 1000).size(), 1u);
}

TEST(Planner, DisplacesVictimWhenBeatingShieldByHysteresis) {
  const MigrationPlanner planner(planner_config());
  // Victim shield 10; candidate must beat 10 * 1.25 = 12.5.
  const std::vector<ObjectView> views = {
      view(0, 100, 0, 2.0, 10.0),  // fast-tier resident
      view(1, 100, 1, 13.0),       // hot enough
  };
  const auto moves = planner.plan(views, 0, 0);
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_EQ(moves[0].object, 0u);  // demote precedes the promote it funds
  EXPECT_EQ(moves[0].to_tier, 1u);
  EXPECT_EQ(moves[1].object, 1u);
  EXPECT_EQ(moves[1].to_tier, 0u);
}

TEST(Planner, HysteresisProtectsVictimWithinMargin) {
  const MigrationPlanner planner(planner_config());
  const std::vector<ObjectView> views = {
      view(0, 100, 0, 2.0, 10.0),
      view(1, 100, 1, 12.0),  // > shield but within the 25% margin
  };
  EXPECT_TRUE(planner.plan(views, 0, 0).empty());
}

TEST(Planner, ShieldProtectsEvenWhenInstantHotnessDips) {
  const MigrationPlanner planner(planner_config());
  // The resident's EWMA dipped to 1 between its hot kernels, but its
  // windowed peak is 100 — a periodic workload must not thrash.
  const std::vector<ObjectView> views = {
      view(0, 100, 0, 1.0, 100.0),
      view(1, 100, 1, 50.0),
  };
  EXPECT_TRUE(planner.plan(views, 0, 0).empty());
}

TEST(Planner, MaxMovesCapRespected) {
  auto config = planner_config();
  config.max_moves_per_step = 2;
  const MigrationPlanner planner(config);
  const std::vector<ObjectView> views = {
      view(0, 100, 1, 30.0),
      view(1, 100, 1, 20.0),
      view(2, 100, 1, 10.0),
  };
  EXPECT_EQ(planner.plan(views, 0, 1000).size(), 2u);
}

TEST(Planner, MaxBytesCapRespected) {
  auto config = planner_config();
  config.max_bytes_per_step = 150;
  const MigrationPlanner planner(config);
  const std::vector<ObjectView> views = {
      view(0, 100, 1, 30.0),
      view(1, 100, 1, 20.0),
  };
  EXPECT_EQ(planner.plan(views, 0, 1000).size(), 1u);
}

TEST(Planner, SkipsOversizedCandidateAndStillPromotesSmaller) {
  const MigrationPlanner planner(planner_config());
  const std::vector<ObjectView> views = {
      view(0, 500, 1, 30.0),  // does not fit
      view(1, 100, 1, 20.0),  // fits
  };
  const auto moves = planner.plan(views, 0, 200);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].object, 1u);
}

TEST(Planner, DeterministicTieBreakByObjectId) {
  const MigrationPlanner planner(planner_config());
  const std::vector<ObjectView> views = {
      view(7, 100, 1, 20.0),
      view(3, 100, 1, 20.0),
  };
  const auto moves = planner.plan(views, 0, 100);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].object, 3u);
}

// -------------------------------------- planner: page-granular chunking

/// Small chunks so the tests stay readable: chunk 64, huge cutoff 256.
OnlinePolicyConfig chunked_config() {
  auto config = planner_config();
  config.chunk_bytes = 64;
  config.huge_object_bytes = 256;
  return config;
}

ObjectView partial_view(std::size_t object, Bytes bytes, std::size_t tier, double hotness,
                        Bytes fast_bytes) {
  ObjectView v = view(object, bytes, tier, hotness);
  v.fast_bytes = fast_bytes;
  return v;
}

TEST(Planner, HugeObjectTakesChunkAlignedPartialIntoFreeHeadroom) {
  const MigrationPlanner planner(chunked_config());
  const std::vector<ObjectView> views = {view(0, 1000, 1, 50.0)};
  const auto moves = planner.plan(views, 0, 200);  // headroom < the object
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].object, 0u);
  EXPECT_EQ(moves[0].bytes, 192u);  // chunk_floor(200)
  EXPECT_EQ(moves[0].offset, 0u);
  EXPECT_TRUE(moves[0].partial);
}

TEST(Planner, PartialPromotionContinuesFromThePromotedPrefix) {
  const MigrationPlanner planner(chunked_config());
  // 192 of 1000 bytes already fast: the next move starts at offset 192.
  const std::vector<ObjectView> views = {partial_view(0, 1000, 1, 50.0, 192)};
  const auto moves = planner.plan(views, 0, 10'000);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].bytes, 1000u - 192u);
  EXPECT_EQ(moves[0].offset, 192u);
  EXPECT_TRUE(moves[0].partial);
}

TEST(Planner, FullyPromotedObjectIsNotMovedAgain) {
  const MigrationPlanner planner(chunked_config());
  const std::vector<ObjectView> views = {partial_view(0, 1000, 1, 50.0, 1000)};
  EXPECT_TRUE(planner.plan(views, 0, 10'000).empty());
}

TEST(Planner, NonHugeObjectIsNeverSplit) {
  auto config = chunked_config();
  config.huge_object_bytes = 4096;  // nothing below this splits
  const MigrationPlanner planner(config);
  const std::vector<ObjectView> views = {view(0, 1000, 1, 50.0)};
  EXPECT_TRUE(planner.plan(views, 0, 200).empty());
}

TEST(Planner, PartialDisabledWhenHugeThresholdIsZero) {
  auto config = chunked_config();
  config.huge_object_bytes = 0;
  const MigrationPlanner planner(config);
  const std::vector<ObjectView> views = {view(0, 1000, 1, 50.0)};
  EXPECT_TRUE(planner.plan(views, 0, 200).empty());
}

TEST(Planner, SubChunkHeadroomYieldsNoPartialMove) {
  const MigrationPlanner planner(chunked_config());
  const std::vector<ObjectView> views = {view(0, 1000, 1, 50.0)};
  EXPECT_TRUE(planner.plan(views, 0, 63).empty());  // chunk_floor(63) == 0
}

TEST(Planner, HugeObjectGetsPartialGrantAfterDisplacement) {
  const MigrationPlanner planner(chunked_config());
  // No free headroom; one cold displaceable victim of 128 bytes. The
  // 1000-byte candidate cannot fully fit even after the displacement, so
  // it takes the chunk-aligned part the victim's bytes allow.
  const std::vector<ObjectView> views = {
      view(0, 1000, 1, 50.0),
      view(1, 128, 0, 1.0, /*shield=*/1.0),
  };
  const auto moves = planner.plan(views, 0, 0);
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_EQ(moves[0].object, 1u);  // the demotion first
  EXPECT_EQ(moves[0].to_tier, 1u);
  EXPECT_FALSE(moves[0].partial);
  EXPECT_EQ(moves[1].object, 0u);
  EXPECT_EQ(moves[1].bytes, 128u);
  EXPECT_TRUE(moves[1].partial);
}

TEST(Planner, PartialMovesRespectByteBudget) {
  auto config = chunked_config();
  config.max_bytes_per_step = 128;
  const MigrationPlanner planner(config);
  const std::vector<ObjectView> views = {view(0, 1000, 1, 50.0)};
  const auto moves = planner.plan(views, 0, 10'000);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].bytes, 128u);  // budget-floored, chunk-aligned
  EXPECT_TRUE(moves[0].partial);
}

// ------------------------------------------------------- sharded state

/// The shard decomposition is a pure function of the object id — the
/// property that makes `--online` thread-count independent.
TEST(Sharded, ShardOfDependsOnlyOnObjectId) {
  for (std::size_t o = 0; o < 64; ++o) {
    EXPECT_EQ(ShardedOnlineState::shard_of(o), o % kOnlineShards);
  }
}

std::vector<ObjectAccess> mixed_feedback() {
  std::vector<ObjectAccess> feedback;
  for (std::size_t o = 0; o < 24; ++o) {
    feedback.push_back(ObjectAccess{o, 1000.0 + static_cast<double>(o) * 10.0, 50.0,
                                    Bytes{1} << 20});
  }
  return feedback;
}

TEST(Sharded, ShardProcessingOrderCommutes) {
  OnlinePolicyConfig config;
  config.sample_rate = 0.05;  // subsampled: RNG stream position matters
  ShardedOnlineState forward(config);
  ShardedOnlineState backward(config);
  const auto feedback = mixed_feedback();

  for (int kernel = 0; kernel < 3; ++kernel) {
    for (std::size_t s = 0; s < kOnlineShards; ++s) forward.process_kernel_shard(s, feedback);
    for (std::size_t s = kOnlineShards; s-- > 0;) backward.process_kernel_shard(s, feedback);
  }
  ASSERT_EQ(forward.tracked(), backward.tracked());
  for (std::size_t o = 0; o < 24; ++o) {
    EXPECT_EQ(forward.hotness(o), backward.hotness(o)) << "object " << o;
    EXPECT_EQ(forward.shield(o), backward.shield(o)) << "object " << o;
    EXPECT_EQ(forward.age(o), backward.age(o)) << "object " << o;
  }
}

TEST(Sharded, MatchesSingleTrackerStreamPerShard) {
  // A shard's sample stream must equal what a dedicated sampler seeded
  // the same way would produce for that shard's objects in stream order
  // — the definition of "serial order within a shard".
  OnlinePolicyConfig config;
  config.sample_rate = 1.0;  // exact: hotness is then pure arithmetic
  ShardedOnlineState state(config);
  const auto feedback = mixed_feedback();
  for (std::size_t s = 0; s < kOnlineShards; ++s) state.process_kernel_shard(s, feedback);

  HotnessTracker reference(config.ewma_alpha, config.window);
  // Any seed works at rate 1.0: full-rate sampling is exact, so the
  // shard's private RNG stream cannot influence the counts.
  AccessSampler sampler(config.sample_rate, config.seed);
  for (const auto& f : feedback) {
    if (ShardedOnlineState::shard_of(f.object) != 0) continue;
    const SampledAccess s = sampler.sample(f);
    reference.record(f.object, static_cast<double>(s.loads + s.stores), f.bytes);
  }
  reference.end_kernel();
  for (std::size_t o = 0; o < 24; o += kOnlineShards) {
    EXPECT_EQ(state.hotness(o), reference.hotness(o)) << "object " << o;
  }
}

TEST(Sharded, SeedMakesObjectMatureAtPrior) {
  OnlinePolicyConfig config;
  ShardedOnlineState state(config);
  state.seed(5, 7.5);
  EXPECT_EQ(state.hotness(5), 7.5);
  EXPECT_EQ(state.shield(5), 7.5);
  EXPECT_GE(state.age(5), config.window);
  state.forget(5);
  EXPECT_EQ(state.hotness(5), 0.0);
  EXPECT_EQ(state.tracked(), 0u);
}

// ---------------------------------------------------------- cost model

TEST(CostModel, ChargesBytesOverPairwiseBandwidth) {
  const auto system = memsim::paper_system(6);
  ASSERT_TRUE(system.has_value());
  // dram -> pmem: bound by pmem write bandwidth; the other direction by
  // pmem read bandwidth. Both scale inversely with bandwidth_fraction.
  const double down = migration_cost_ns(1ull << 30, *system, 0, 1, 1.0);
  const double up = migration_cost_ns(1ull << 30, *system, 1, 0, 1.0);
  EXPECT_GT(down, 0.0);
  EXPECT_GT(up, 0.0);
  EXPECT_GT(down, up);  // PMem writes are slower than PMem reads
  EXPECT_NEAR(migration_cost_ns(1ull << 30, *system, 0, 1, 0.5), down * 2.0, down * 1e-9);
  EXPECT_DOUBLE_EQ(migration_cost_ns(0, *system, 0, 1, 0.5), 0.0);
}

}  // namespace
}  // namespace ecohmem::online
