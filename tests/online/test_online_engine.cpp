// Engine-level acceptance tests of the online placement subsystem
// (docs/online.md): the policy must beat a frozen static placement on
// the phase-shifting workload, must never thrash steady-state apps
// beyond the hysteresis margin, must be bit-reproducible, and must
// cancel moves whose object was realloc'd or freed before application.

#include <gtest/gtest.h>

#include "ecohmem/apps/apps.hpp"
#include "ecohmem/apps/synthetic.hpp"
#include "ecohmem/core/ecohmem.hpp"
#include "ecohmem/flexmalloc/report_parser.hpp"
#include "ecohmem/online/policy_config.hpp"
#include "ecohmem/runtime/guidance.hpp"

namespace ecohmem {
namespace {

constexpr Bytes kDramLimit = 12ull << 30;

/// Scheduled moves are either applied or cancelled, never lost.
void expect_migration_conservation(const runtime::RunMetrics& m) {
  EXPECT_EQ(m.migrations_scheduled, m.migrations + m.migrations_cancelled);
  EXPECT_EQ(m.migrations, m.migration_events.size());
}

/// Static production run + an online rerun of the same frozen placement.
struct StaticVsOnline {
  runtime::RunMetrics static_run;
  runtime::RunMetrics online_run;
};

StaticVsOnline run_static_vs_online(const runtime::Workload& workload,
                                    const online::OnlinePolicyConfig& policy,
                                    bool bandwidth_aware = false) {
  const auto system = *memsim::paper_system(6);
  core::WorkflowOptions options;
  options.bandwidth_aware = bandwidth_aware;
  const auto workflow = core::run_workflow(workload, system, options);
  EXPECT_TRUE(workflow.has_value()) << workflow.error();

  runtime::EngineOptions online_options;
  online_options.online_policy = &policy;
  const auto online = core::run_with_placement(workload, system, workflow->placement,
                                               kDramLimit, advisor::ReportFormat::kBom,
                                               online_options);
  EXPECT_TRUE(online.has_value()) << online.error();
  return {workflow->production_metrics, *online};
}

TEST(OnlineEngine, BeatsStaticPlacementOnPhaseShift) {
  const online::OnlinePolicyConfig policy;  // defaults = configs/online_policy.ini
  const auto r = run_static_vs_online(apps::make_phase_shift(), policy);

  // The rotating hot set defeats any frozen placement; following it
  // online must win even after paying every migration's cost.
  EXPECT_GT(r.online_run.migrations, 0u);
  EXPECT_LT(r.online_run.total_ns, r.static_run.total_ns);
  EXPECT_GT(r.online_run.migration_ns, 0.0);
  expect_migration_conservation(r.online_run);
}

TEST(OnlineEngine, SteadyStateAppNeverRegressesOrThrashes) {
  // minife's hot set never changes. The shield must keep the policy from
  // churning: any move has to be a one-time promotion that pays off —
  // page granularity lets a hot huge object that never whole-fit DRAM
  // headroom claim a prefix of it — never back-and-forth thrash.
  const online::OnlinePolicyConfig policy;
  const auto r = run_static_vs_online(apps::make_app("minife", {}), policy);
  EXPECT_LE(r.online_run.migrations, 2u);
  EXPECT_EQ(r.online_run.migrations_cancelled, 0u);
  EXPECT_LE(r.online_run.total_ns, r.static_run.total_ns);
  expect_migration_conservation(r.online_run);

  // With partial moves disabled the planner is back to the old
  // whole-object calculus, where nothing fits and nothing moves.
  online::OnlinePolicyConfig whole_only = policy;
  whole_only.huge_object_bytes = 0;
  const auto w = run_static_vs_online(apps::make_app("minife", {}), whole_only);
  EXPECT_EQ(w.online_run.migrations, 0u);
  EXPECT_EQ(w.online_run.total_ns, w.static_run.total_ns);
}

TEST(OnlineEngine, BandwidthVaryingAppStaysWithinHysteresisMargin) {
  // openfoam allocates/frees its assembly pool every step and shifts
  // bandwidth demand across the run — the adversarial steady app. The
  // maturity gate and windowed-headroom planning must keep the online
  // run within the configured hysteresis margin of the static one.
  const online::OnlinePolicyConfig policy;
  const auto r =
      run_static_vs_online(apps::make_app("openfoam", {}), policy, /*bandwidth_aware=*/true);
  const double bound =
      static_cast<double>(r.static_run.total_ns) * (1.0 + policy.hysteresis);
  EXPECT_LE(static_cast<double>(r.online_run.total_ns), bound);
  expect_migration_conservation(r.online_run);
}

TEST(OnlineEngine, MigrationSequenceIsDeterministic) {
  const online::OnlinePolicyConfig policy;
  const auto a = run_static_vs_online(apps::make_phase_shift(), policy);
  const auto b = run_static_vs_online(apps::make_phase_shift(), policy);
  ASSERT_GT(a.online_run.migrations, 0u);
  EXPECT_EQ(a.online_run.migration_events, b.online_run.migration_events);
  EXPECT_EQ(a.online_run.total_ns, b.online_run.total_ns);
  EXPECT_EQ(a.online_run.migrations_scheduled, b.online_run.migrations_scheduled);
  EXPECT_EQ(a.online_run.migrations_cancelled, b.online_run.migrations_cancelled);
  EXPECT_EQ(a.online_run.migration_ns, b.online_run.migration_ns);
}

/// Full metric equality between a serial and a parallel online run —
/// the determinism contract of docs/threading.md extended to online
/// placement: shard-per-object sampling plus engine-thread decisions
/// make the migration sequence independent of the worker count.
void expect_identical_online(const runtime::RunMetrics& serial,
                             const runtime::RunMetrics& parallel, int threads) {
  EXPECT_EQ(serial.total_ns, parallel.total_ns) << "threads=" << threads;
  EXPECT_EQ(serial.migration_events, parallel.migration_events) << "threads=" << threads;
  EXPECT_EQ(serial.migrations_scheduled, parallel.migrations_scheduled) << "threads=" << threads;
  EXPECT_EQ(serial.migrations, parallel.migrations) << "threads=" << threads;
  EXPECT_EQ(serial.migrations_partial, parallel.migrations_partial) << "threads=" << threads;
  EXPECT_EQ(serial.migrations_cancelled, parallel.migrations_cancelled)
      << "threads=" << threads;
  EXPECT_EQ(serial.migrated_bytes, parallel.migrated_bytes) << "threads=" << threads;
  EXPECT_EQ(serial.migration_ns, parallel.migration_ns) << "threads=" << threads;
  EXPECT_EQ(serial.load_stall_ns, parallel.load_stall_ns) << "threads=" << threads;
  EXPECT_EQ(serial.store_stall_ns, parallel.store_stall_ns) << "threads=" << threads;
  ASSERT_EQ(serial.tier_traffic.size(), parallel.tier_traffic.size()) << "threads=" << threads;
  for (std::size_t k = 0; k < serial.tier_traffic.size(); ++k) {
    // Bit-identical, not just close: migration bytes charge into the
    // same meters at the same simulated times under both paths.
    EXPECT_EQ(serial.tier_traffic[k].read_bytes, parallel.tier_traffic[k].read_bytes)
        << "threads=" << threads << " tier " << serial.tier_traffic[k].tier;
    EXPECT_EQ(serial.tier_traffic[k].write_bytes, parallel.tier_traffic[k].write_bytes)
        << "threads=" << threads << " tier " << serial.tier_traffic[k].tier;
  }
}

void expect_parallel_online_identical(const runtime::Workload& workload) {
  const auto system = *memsim::paper_system(6);
  const auto workflow = core::run_workflow(workload, system);
  ASSERT_TRUE(workflow.has_value()) << workflow.error();

  const online::OnlinePolicyConfig policy;
  runtime::EngineOptions options;
  options.online_policy = &policy;
  const auto serial = core::run_with_placement(workload, system, workflow->placement,
                                               kDramLimit, advisor::ReportFormat::kBom, options);
  ASSERT_TRUE(serial.has_value()) << serial.error();
  ASSERT_GT(serial->migrations, 0u);

  for (const int threads : {2, 4, 8}) {
    options.replay_threads = threads;
    const auto parallel = core::run_with_placement(
        workload, system, workflow->placement, kDramLimit, advisor::ReportFormat::kBom, options);
    ASSERT_TRUE(parallel.has_value()) << parallel.error();
    expect_identical_online(*serial, *parallel, threads);
    expect_migration_conservation(*parallel);
  }
}

TEST(OnlineEngineConcurrency, ParallelReplayIsBitIdenticalOnPhaseShift) {
  expect_parallel_online_identical(apps::make_phase_shift());
}

TEST(OnlineEngineConcurrency, ParallelReplayIsBitIdenticalOnLargeHot) {
  expect_parallel_online_identical(apps::make_large_hot({}));
}

/// Online placement and observers stay mutually exclusive, and the
/// rejection is uniform: the same one-line reason at any thread count.
TEST(OnlineEngine, ObserverIsRejectedUniformlyAtAnyThreadCount) {
  class NullObserver final : public runtime::ExecutionObserver {
   public:
    void on_alloc(Ns, std::uint64_t, std::uint64_t, Bytes, const bom::CallStack&) override {}
    void on_free(Ns, std::uint64_t) override {}
    void on_kernel(const runtime::KernelObservation&) override {}
  };

  const auto system = *memsim::paper_system(6);
  const auto workload = apps::make_synthetic({.seed = 9, .phases = 2});
  const auto workflow = core::run_workflow(workload, system);
  ASSERT_TRUE(workflow.has_value());

  const online::OnlinePolicyConfig policy;
  NullObserver observer;
  std::string first_error;
  for (const int threads : {1, 2, 4}) {
    runtime::EngineOptions options;
    options.online_policy = &policy;
    options.observer = &observer;
    options.replay_threads = threads;
    const auto run = core::run_with_placement(workload, system, workflow->placement, kDramLimit,
                                              advisor::ReportFormat::kBom, options);
    ASSERT_FALSE(run.has_value()) << "threads=" << threads;
    EXPECT_NE(run.error().find("observer"), std::string::npos) << run.error();
    if (first_error.empty()) first_error = run.error();
    EXPECT_EQ(run.error(), first_error) << "rejection must be uniform across thread counts";
  }
}

TEST(OnlineEngine, ModeWithoutMigrationIsRejected) {
  const auto system = *memsim::paper_system(6);
  const auto workload = apps::make_synthetic({.seed = 10, .phases = 2});
  const online::OnlinePolicyConfig policy;
  runtime::EngineOptions options;
  options.online_policy = &policy;
  // Memory mode has no per-object placement to migrate.
  const auto run = core::run_memory_mode(workload, system, options);
  ASSERT_FALSE(run.has_value());
  EXPECT_NE(run.error().find("migration"), std::string::npos);
}

TEST(OnlineEngine, InvalidPolicyIsRejectedUpFront) {
  const auto system = *memsim::paper_system(6);
  const auto workload = apps::make_synthetic({.seed = 11, .phases = 2});
  const auto workflow = core::run_workflow(workload, system);
  ASSERT_TRUE(workflow.has_value());

  online::OnlinePolicyConfig policy;
  policy.sample_rate = 0.0;
  runtime::EngineOptions options;
  options.online_policy = &policy;
  EXPECT_FALSE(core::run_with_placement(workload, system, workflow->placement, kDramLimit,
                                        advisor::ReportFormat::kBom, options)
                   .has_value());
}

/// A workload whose two hot objects are realloc'd / freed right after
/// the kernel that gets them scheduled for promotion: both pending
/// moves must be cancelled (never applied to the wrong incarnation).
runtime::Workload scheduled_then_churned() {
  runtime::WorkloadBuilder b("churn");
  const auto mod = b.add_module("churn.x", 1 << 20, 0);
  const auto site_a = b.add_site(mod, "A", "churn.cc", 1);
  const auto site_b = b.add_site(mod, "B", "churn.cc", 2);
  const Bytes mib64 = 64ull << 20;
  const auto a = b.add_object(site_a, mib64, runtime::AccessPattern::kRandom, 0.2, 0.5, 0.1);
  const auto obj_b =
      b.add_object(site_b, mib64, runtime::AccessPattern::kRandom, 0.2, 0.5, 0.1);

  const double loads = 1e6;
  const auto hot = b.add_kernel("hot", 1e9, 1e8,
                                {runtime::KernelAccess{a, loads, 0.0, 64.0 * (1 << 20)},
                                 runtime::KernelAccess{obj_b, loads, 0.0, 64.0 * (1 << 20)}});
  const auto idle = b.add_kernel("idle", 1e9, 1e8, {});

  b.alloc(a);
  b.alloc(obj_b);
  b.run_kernel(hot);      // both get scheduled for promotion here
  b.realloc(a, mib64 * 2);  // uid changes -> pending move must die
  b.free(obj_b);            // object dies -> pending move must die
  b.run_kernel(idle);       // application point: both moves cancel
  b.free(a);
  return b.build();
}

TEST(OnlineEngine, ReallocAndFreeCancelScheduledMoves) {
  const auto system = *memsim::paper_system(6);
  const auto workload = scheduled_then_churned();

  // Everything starts in PMem; window=1 makes both objects mature after
  // the single hot kernel, and sample_rate=1 removes sampling noise.
  advisor::Placement placement;
  placement.fallback_tier = "pmem";
  online::OnlinePolicyConfig policy;
  policy.sample_rate = 1.0;
  policy.window = 1;
  policy.min_density = 1.0;

  runtime::EngineOptions options;
  options.online_policy = &policy;
  const auto run = core::run_with_placement(workload, system, placement, kDramLimit,
                                            advisor::ReportFormat::kBom, options);
  ASSERT_TRUE(run.has_value()) << run.error();
  // Both original moves must be cancelled by the churn. The realloc'd
  // incarnation may legitimately be re-scheduled afterwards (hotness is
  // tracked per object, not per incarnation) — but that move dies with
  // the final free too, so nothing is ever applied.
  EXPECT_GE(run->migrations_scheduled, 2u);
  EXPECT_EQ(run->migrations_cancelled, run->migrations_scheduled);
  EXPECT_EQ(run->migrations, 0u);
  EXPECT_TRUE(run->migration_events.empty());
  expect_migration_conservation(*run);
}

TEST(OnlineEngine, PartialMovesConserveBytesOnPhaseShift) {
  // phase-shift's grids are several GiB each — far beyond
  // huge_object_bytes — so the planner must promote hot prefixes in
  // chunk-aligned pieces instead of copying whole allocations.
  const online::OnlinePolicyConfig policy;
  const auto r = run_static_vs_online(apps::make_phase_shift(), policy);
  EXPECT_GT(r.online_run.migrations_partial, 0u);
  expect_migration_conservation(r.online_run);

  // The event log is the auditable record: the sum of per-event range
  // lengths (partial or whole) must equal the migrated byte total, every
  // partial event must be chunk-aligned, and at least one partial event
  // must move strictly less than its object's allocation (the point of
  // page granularity).
  Bytes event_bytes = 0;
  std::uint64_t partial_events = 0;
  bool saw_proper_subrange = false;
  for (const auto& e : r.online_run.migration_events) {
    event_bytes += e.bytes;
    if (!e.partial) {
      EXPECT_EQ(e.offset, 0u);
      continue;
    }
    ++partial_events;
    EXPECT_EQ(e.offset % policy.chunk_bytes, 0u);
    EXPECT_GT(e.bytes, 0u);
    if (e.offset > 0 || e.bytes >= policy.huge_object_bytes) saw_proper_subrange = true;
  }
  EXPECT_EQ(event_bytes, r.online_run.migrated_bytes);
  EXPECT_EQ(partial_events, r.online_run.migrations_partial);
  EXPECT_TRUE(saw_proper_subrange);
}

TEST(OnlineEngine, PartialMovesDisabledWhenHugeThresholdIsZero) {
  online::OnlinePolicyConfig policy;
  policy.huge_object_bytes = 0;  // 0 = whole-object moves only
  const auto r = run_static_vs_online(apps::make_phase_shift(), policy);
  EXPECT_EQ(r.online_run.migrations_partial, 0u);
  for (const auto& e : r.online_run.migration_events) {
    EXPECT_FALSE(e.partial);
    EXPECT_EQ(e.offset, 0u);
  }
  expect_migration_conservation(r.online_run);
}

/// Builds the GuidanceSeed the `--from-report` flag would: render the
/// workflow's own report, re-parse it, and match it against the workload.
runtime::GuidanceSeed guidance_from(const runtime::Workload& workload,
                                    const std::string& report_text) {
  const auto report = flexmalloc::parse_report(report_text, *workload.modules);
  EXPECT_TRUE(report.has_value()) << report.error();
  auto seed = runtime::GuidanceSeed::build(workload, *report);
  EXPECT_TRUE(seed.has_value()) << seed.error();
  return std::move(*seed);
}

TEST(OnlineEngine, GuidanceSeedMatchesEverySiteOfItsOwnWorkload) {
  const auto workload = apps::make_phase_shift();
  const auto system = *memsim::paper_system(6);
  const auto workflow = core::run_workflow(workload, system);
  ASSERT_TRUE(workflow.has_value());
  const auto seed = guidance_from(workload, workflow->report_text);
  EXPECT_EQ(seed.matched_sites, workload.sites.size());
  EXPECT_EQ(seed.site_tier.size(), workload.sites.size());
  bool any_fast = false;
  for (std::size_t s = 0; s < workload.sites.size(); ++s) {
    any_fast = any_fast || seed.site_maps_to(s, system.tier(0).name());
  }
  EXPECT_TRUE(any_fast) << "the report places nothing in the fast tier?";
}

TEST(OnlineEngine, GuidanceSeededNeverRegressesOnSteadyApps) {
  // Seeding the online policy with the advisor's own report on a steady
  // app must reproduce the static run (the seeds are already placed; the
  // shield keeps everything put) — the "never regresses" half of the
  // --from-report contract.
  for (const char* app : {"minife", "hpcg"}) {
    const auto workload = apps::make_app(app, {});
    const auto system = *memsim::paper_system(6);
    const auto workflow = core::run_workflow(workload, system);
    ASSERT_TRUE(workflow.has_value()) << app;
    const auto seed = guidance_from(workload, workflow->report_text);

    const online::OnlinePolicyConfig policy;
    runtime::EngineOptions options;
    options.online_policy = &policy;
    options.guidance = &seed;
    const auto seeded = core::run_with_placement(workload, system, workflow->placement,
                                                 kDramLimit, advisor::ReportFormat::kBom,
                                                 options);
    ASSERT_TRUE(seeded.has_value()) << seeded.error();
    EXPECT_LE(seeded->total_ns, workflow->production_metrics.total_ns) << app;
    expect_migration_conservation(*seeded);
  }
}

TEST(OnlineEngineConcurrency, GuidanceSeededRunsAreDeterministicAndThreadCountIndependent) {
  const auto workload = apps::make_phase_shift();
  const auto system = *memsim::paper_system(6);
  const auto workflow = core::run_workflow(workload, system);
  ASSERT_TRUE(workflow.has_value());
  const auto seed = guidance_from(workload, workflow->report_text);

  const online::OnlinePolicyConfig policy;
  runtime::EngineOptions options;
  options.online_policy = &policy;
  options.guidance = &seed;
  const auto serial = core::run_with_placement(workload, system, workflow->placement, kDramLimit,
                                               advisor::ReportFormat::kBom, options);
  ASSERT_TRUE(serial.has_value()) << serial.error();

  // Same invocation twice: bit-identical (the round-trip CI cmp's).
  const auto again = core::run_with_placement(workload, system, workflow->placement, kDramLimit,
                                              advisor::ReportFormat::kBom, options);
  ASSERT_TRUE(again.has_value());
  expect_identical_online(*serial, *again, 1);

  // And seeding composes with parallel replay.
  for (const int threads : {2, 4, 8}) {
    options.replay_threads = threads;
    const auto parallel = core::run_with_placement(
        workload, system, workflow->placement, kDramLimit, advisor::ReportFormat::kBom, options);
    ASSERT_TRUE(parallel.has_value()) << parallel.error();
    expect_identical_online(*serial, *parallel, threads);
  }
}

TEST(OnlineEngine, StaticRunIsUnaffectedByPolicyBeingAbsent) {
  // No policy -> zero migration metrics, empty event log.
  const auto system = *memsim::paper_system(6);
  const auto workload = apps::make_synthetic({.seed = 12, .phases = 2});
  const auto workflow = core::run_workflow(workload, system);
  ASSERT_TRUE(workflow.has_value());
  const auto& m = workflow->production_metrics;
  EXPECT_EQ(m.migrations_scheduled, 0u);
  EXPECT_EQ(m.migrations, 0u);
  EXPECT_EQ(m.migrations_cancelled, 0u);
  EXPECT_TRUE(m.migration_events.empty());
}

}  // namespace
}  // namespace ecohmem
