// Engine-level acceptance tests of the online placement subsystem
// (docs/online.md): the policy must beat a frozen static placement on
// the phase-shifting workload, must never thrash steady-state apps
// beyond the hysteresis margin, must be bit-reproducible, and must
// cancel moves whose object was realloc'd or freed before application.

#include <gtest/gtest.h>

#include "ecohmem/apps/apps.hpp"
#include "ecohmem/apps/synthetic.hpp"
#include "ecohmem/core/ecohmem.hpp"
#include "ecohmem/online/policy_config.hpp"

namespace ecohmem {
namespace {

constexpr Bytes kDramLimit = 12ull << 30;

/// Scheduled moves are either applied or cancelled, never lost.
void expect_migration_conservation(const runtime::RunMetrics& m) {
  EXPECT_EQ(m.migrations_scheduled, m.migrations + m.migrations_cancelled);
  EXPECT_EQ(m.migrations, m.migration_events.size());
}

/// Static production run + an online rerun of the same frozen placement.
struct StaticVsOnline {
  runtime::RunMetrics static_run;
  runtime::RunMetrics online_run;
};

StaticVsOnline run_static_vs_online(const runtime::Workload& workload,
                                    const online::OnlinePolicyConfig& policy,
                                    bool bandwidth_aware = false) {
  const auto system = *memsim::paper_system(6);
  core::WorkflowOptions options;
  options.bandwidth_aware = bandwidth_aware;
  const auto workflow = core::run_workflow(workload, system, options);
  EXPECT_TRUE(workflow.has_value()) << workflow.error();

  runtime::EngineOptions online_options;
  online_options.online_policy = &policy;
  const auto online = core::run_with_placement(workload, system, workflow->placement,
                                               kDramLimit, advisor::ReportFormat::kBom,
                                               online_options);
  EXPECT_TRUE(online.has_value()) << online.error();
  return {workflow->production_metrics, *online};
}

TEST(OnlineEngine, BeatsStaticPlacementOnPhaseShift) {
  const online::OnlinePolicyConfig policy;  // defaults = configs/online_policy.ini
  const auto r = run_static_vs_online(apps::make_phase_shift(), policy);

  // The rotating hot set defeats any frozen placement; following it
  // online must win even after paying every migration's cost.
  EXPECT_GT(r.online_run.migrations, 0u);
  EXPECT_LT(r.online_run.total_ns, r.static_run.total_ns);
  EXPECT_GT(r.online_run.migration_ns, 0.0);
  expect_migration_conservation(r.online_run);
}

TEST(OnlineEngine, SteadyStateAppIsUntouched) {
  // minife's hot set never changes; the shield must keep the online
  // policy completely idle, reproducing the static run bit-for-bit.
  const online::OnlinePolicyConfig policy;
  const auto r = run_static_vs_online(apps::make_app("minife", {}), policy);
  EXPECT_EQ(r.online_run.migrations, 0u);
  EXPECT_EQ(r.online_run.total_ns, r.static_run.total_ns);
  expect_migration_conservation(r.online_run);
}

TEST(OnlineEngine, BandwidthVaryingAppStaysWithinHysteresisMargin) {
  // openfoam allocates/frees its assembly pool every step and shifts
  // bandwidth demand across the run — the adversarial steady app. The
  // maturity gate and windowed-headroom planning must keep the online
  // run within the configured hysteresis margin of the static one.
  const online::OnlinePolicyConfig policy;
  const auto r =
      run_static_vs_online(apps::make_app("openfoam", {}), policy, /*bandwidth_aware=*/true);
  const double bound =
      static_cast<double>(r.static_run.total_ns) * (1.0 + policy.hysteresis);
  EXPECT_LE(static_cast<double>(r.online_run.total_ns), bound);
  expect_migration_conservation(r.online_run);
}

TEST(OnlineEngine, MigrationSequenceIsDeterministic) {
  const online::OnlinePolicyConfig policy;
  const auto a = run_static_vs_online(apps::make_phase_shift(), policy);
  const auto b = run_static_vs_online(apps::make_phase_shift(), policy);
  ASSERT_GT(a.online_run.migrations, 0u);
  EXPECT_EQ(a.online_run.migration_events, b.online_run.migration_events);
  EXPECT_EQ(a.online_run.total_ns, b.online_run.total_ns);
  EXPECT_EQ(a.online_run.migrations_scheduled, b.online_run.migrations_scheduled);
  EXPECT_EQ(a.online_run.migrations_cancelled, b.online_run.migrations_cancelled);
  EXPECT_EQ(a.online_run.migration_ns, b.online_run.migration_ns);
}

TEST(OnlineEngine, ParallelReplayIsRejected) {
  const auto system = *memsim::paper_system(6);
  const auto workload = apps::make_synthetic({.seed = 9, .phases = 2});
  const auto workflow = core::run_workflow(workload, system);
  ASSERT_TRUE(workflow.has_value());

  const online::OnlinePolicyConfig policy;
  runtime::EngineOptions options;
  options.online_policy = &policy;
  options.replay_threads = 2;
  const auto run = core::run_with_placement(workload, system, workflow->placement, kDramLimit,
                                            advisor::ReportFormat::kBom, options);
  ASSERT_FALSE(run.has_value());
  EXPECT_NE(run.error().find("serial"), std::string::npos);
}

TEST(OnlineEngine, ModeWithoutMigrationIsRejected) {
  const auto system = *memsim::paper_system(6);
  const auto workload = apps::make_synthetic({.seed = 10, .phases = 2});
  const online::OnlinePolicyConfig policy;
  runtime::EngineOptions options;
  options.online_policy = &policy;
  // Memory mode has no per-object placement to migrate.
  const auto run = core::run_memory_mode(workload, system, options);
  ASSERT_FALSE(run.has_value());
  EXPECT_NE(run.error().find("migration"), std::string::npos);
}

TEST(OnlineEngine, InvalidPolicyIsRejectedUpFront) {
  const auto system = *memsim::paper_system(6);
  const auto workload = apps::make_synthetic({.seed = 11, .phases = 2});
  const auto workflow = core::run_workflow(workload, system);
  ASSERT_TRUE(workflow.has_value());

  online::OnlinePolicyConfig policy;
  policy.sample_rate = 0.0;
  runtime::EngineOptions options;
  options.online_policy = &policy;
  EXPECT_FALSE(core::run_with_placement(workload, system, workflow->placement, kDramLimit,
                                        advisor::ReportFormat::kBom, options)
                   .has_value());
}

/// A workload whose two hot objects are realloc'd / freed right after
/// the kernel that gets them scheduled for promotion: both pending
/// moves must be cancelled (never applied to the wrong incarnation).
runtime::Workload scheduled_then_churned() {
  runtime::WorkloadBuilder b("churn");
  const auto mod = b.add_module("churn.x", 1 << 20, 0);
  const auto site_a = b.add_site(mod, "A", "churn.cc", 1);
  const auto site_b = b.add_site(mod, "B", "churn.cc", 2);
  const Bytes mib64 = 64ull << 20;
  const auto a = b.add_object(site_a, mib64, runtime::AccessPattern::kRandom, 0.2, 0.5, 0.1);
  const auto obj_b =
      b.add_object(site_b, mib64, runtime::AccessPattern::kRandom, 0.2, 0.5, 0.1);

  const double loads = 1e6;
  const auto hot = b.add_kernel("hot", 1e9, 1e8,
                                {runtime::KernelAccess{a, loads, 0.0, 64.0 * (1 << 20)},
                                 runtime::KernelAccess{obj_b, loads, 0.0, 64.0 * (1 << 20)}});
  const auto idle = b.add_kernel("idle", 1e9, 1e8, {});

  b.alloc(a);
  b.alloc(obj_b);
  b.run_kernel(hot);      // both get scheduled for promotion here
  b.realloc(a, mib64 * 2);  // uid changes -> pending move must die
  b.free(obj_b);            // object dies -> pending move must die
  b.run_kernel(idle);       // application point: both moves cancel
  b.free(a);
  return b.build();
}

TEST(OnlineEngine, ReallocAndFreeCancelScheduledMoves) {
  const auto system = *memsim::paper_system(6);
  const auto workload = scheduled_then_churned();

  // Everything starts in PMem; window=1 makes both objects mature after
  // the single hot kernel, and sample_rate=1 removes sampling noise.
  advisor::Placement placement;
  placement.fallback_tier = "pmem";
  online::OnlinePolicyConfig policy;
  policy.sample_rate = 1.0;
  policy.window = 1;
  policy.min_density = 1.0;

  runtime::EngineOptions options;
  options.online_policy = &policy;
  const auto run = core::run_with_placement(workload, system, placement, kDramLimit,
                                            advisor::ReportFormat::kBom, options);
  ASSERT_TRUE(run.has_value()) << run.error();
  // Both original moves must be cancelled by the churn. The realloc'd
  // incarnation may legitimately be re-scheduled afterwards (hotness is
  // tracked per object, not per incarnation) — but that move dies with
  // the final free too, so nothing is ever applied.
  EXPECT_GE(run->migrations_scheduled, 2u);
  EXPECT_EQ(run->migrations_cancelled, run->migrations_scheduled);
  EXPECT_EQ(run->migrations, 0u);
  EXPECT_TRUE(run->migration_events.empty());
  expect_migration_conservation(*run);
}

TEST(OnlineEngine, StaticRunIsUnaffectedByPolicyBeingAbsent) {
  // No policy -> zero migration metrics, empty event log.
  const auto system = *memsim::paper_system(6);
  const auto workload = apps::make_synthetic({.seed = 12, .phases = 2});
  const auto workflow = core::run_workflow(workload, system);
  ASSERT_TRUE(workflow.has_value());
  const auto& m = workflow->production_metrics;
  EXPECT_EQ(m.migrations_scheduled, 0u);
  EXPECT_EQ(m.migrations, 0u);
  EXPECT_EQ(m.migrations_cancelled, 0u);
  EXPECT_TRUE(m.migration_events.empty());
}

}  // namespace
}  // namespace ecohmem
