#!/usr/bin/env bash
# Full verification pipeline: configure, build, test, run every
# reproduction benchmark and all examples, then cross-check the
# generated artifacts with ecohmem-lint. Exits non-zero on any failure.
#
# Usage:
#   ./ci.sh             # regular build + tests + benches + examples + lint
#   ./ci.sh --sanitize  # additionally run tier-1 tests under ASan/UBSan and
#                       # the concurrency stress tests under TSan
#   ./ci.sh --static    # additionally gate on static analysis: the
#                       # ecohmem-srclint source lint, the clang-tsa
#                       # thread-safety build, and clang-tidy (the clang
#                       # steps skip loudly when clang is not installed)
set -euo pipefail
cd "$(dirname "$0")"

sanitize=0
static=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) sanitize=1 ;;
    --static) static=1 ;;
    *) echo "usage: $0 [--sanitize] [--static]" >&2; exit 2 ;;
  esac
done

cmake --preset default
cmake --build --preset default
ctest --preset default -j"$(nproc)"

# Concurrency-suite filter, shared by the lockdep re-run below and the
# TSan pass: every suite that exercises locks or worker threads —
# FlexMalloc heap/matcher stress, parallel replay, parallel aggregation,
# salvage-mode parallel reads, online migration, the worker pool, and
# the lockdep validator's own tests. New concurrent suites must match
# this regex (name them *Concurrency* or extend the list).
concurrency_suites='Concurrency|ParallelReplay|ParallelAggregation|Salvage|OnlineEngine|Lockdep'

# Runtime lock-order validation (docs/threading.md): re-run the
# concurrency suites with the lockdep validator armed. Any rank/leaf
# violation or acquisition-order cycle aborts the offending test.
echo "== concurrency suites with ECOHMEM_LOCKDEP=1 =="
ECOHMEM_LOCKDEP=1 ctest --preset default -j"$(nproc)" -R "$concurrency_suites"

if [ "$static" -eq 1 ]; then
  # Source-level determinism/concurrency contracts: gates unconditionally
  # (no external toolchain needed). Zero findings required.
  echo "== ecohmem-srclint =="
  build/tools/ecohmem-srclint --root .

  # Clang thread-safety analysis over the annotations. Requires clang++
  # (>= 16: std::source_location needs __builtin_source_location against
  # libstdc++); the GCC-only toolchain image skips this loudly instead of
  # failing, and the annotations still gate wherever clang exists.
  if command -v clang++ >/dev/null 2>&1; then
    echo "== clang -Wthread-safety (as errors) =="
    cmake --preset clang-tsa
    cmake --build --preset clang-tsa
  else
    echo "note: clang++ not found; skipping the clang-tsa thread-safety build" >&2
  fi

  # clang-tidy over the layers with a tidy config, driven off the
  # compile database the default preset exports.
  if command -v clang-tidy >/dev/null 2>&1 && command -v run-clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy (gating) =="
    run-clang-tidy -p build -quiet "src/ecohmem/(advisor|analyzer|check)/.*\.cpp$"
  else
    echo "note: clang-tidy not found; skipping the clang-tidy pass" >&2
  fi

  # The serve headers are a compatibility surface (third-party clients
  # code against docs/serving.md + these declarations), so an
  # undocumented public entity under src/ecohmem/serve/ fails the docs
  # build. Doxygen is optional in the image; skip loudly without it.
  if command -v doxygen >/dev/null 2>&1; then
    echo "== doxygen (serve headers must be warning-clean) =="
    cmake --build build --target docs 2>/tmp/ecohmem_ci_doxygen_err.txt || {
      cat /tmp/ecohmem_ci_doxygen_err.txt >&2; exit 1
    }
    if grep "ecohmem/serve/" /tmp/ecohmem_ci_doxygen_err.txt; then
      echo "doxygen warnings in src/ecohmem/serve/ headers" >&2; exit 1
    fi
  else
    echo "note: doxygen not found; skipping the serve docs warning gate" >&2
  fi
fi

if [ "$sanitize" -eq 1 ]; then
  echo "== tier-1 tests under ASan/UBSan =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan
  ctest --preset asan-ubsan -j"$(nproc)"

  # The concurrency suites only prove their locking under
  # ThreadSanitizer; ASan cannot see data races (docs/threading.md).
  # The filter is the shared $concurrency_suites list above.
  echo "== concurrency stress tests under TSan =="
  cmake --preset tsan
  cmake --build --preset tsan
  ctest --preset tsan -j"$(nproc)" -R "$concurrency_suites"
fi

for b in build/bench/*; do
  case "$b" in */bench_trace_pipeline) continue ;; esac  # run in smoke mode below
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done

# Trace pipeline bench (smoke mode: small synthetic trace, one repeat).
# The binary itself exits nonzero when any app's parallel aggregation is
# not bit-identical to serial; the decode-throughput bound is recorded
# but not gated in smoke mode (a sub-second trace measures call overhead,
# not throughput) — the committed full-size record BENCH_trace_pipeline.json
# is what certifies the bound.
build/bench/bench_trace_pipeline --smoke --out /tmp/BENCH_trace_pipeline_smoke.json
for key in '"bench": "trace_pipeline"' '"hardware_concurrency"' '"v3_block_decode_mbs"' \
           '"v3_batch_decode_mbs"' '"compressed_read_mbs"' '"compression_ratio"' \
           '"aggregate_speedup"' '"per_block_decode_speedup"' '"speedup_bound_enforced"' \
           '"speedup_bound_met": true' '"zero_regression_bound_met": true' \
           '"compressed_read_bound_met": true' '"compressed_identical": true' \
           '"identical": true' '"salvage_read_mbs"'; do
  if ! grep -F "$key" /tmp/BENCH_trace_pipeline_smoke.json >/dev/null; then
    echo "BENCH_trace_pipeline_smoke.json missing $key" >&2; exit 1
  fi
done

build/examples/quickstart
build/examples/custom_tiers
build/examples/trace_inspector minife /tmp/ecohmem_ci.trc
build/examples/placement_explorer lulesh 12
build/examples/host_interposition

build/tools/ecohmem-profile --app hpcg --out /tmp/ecohmem_ci2.trc --compact
build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci2.trc --out /tmp/ecohmem_ci_report.txt \
  --config configs/advisor_dram_pmem.ini \
  --bandwidth-aware --dump-sites --csv /tmp/ecohmem_ci_sites.csv

# Cross-artifact invariant check: trace vs site CSV vs placement report vs
# tier config must tell one consistent story. Error-severity findings fail CI.
build/tools/ecohmem-lint \
  --trace /tmp/ecohmem_ci2.trc \
  --sites /tmp/ecohmem_ci_sites.csv \
  --report /tmp/ecohmem_ci_report.txt \
  --config configs/advisor_dram_pmem.ini

build/tools/ecohmem-run --app hpcg --report /tmp/ecohmem_ci_report.txt
# Parallel replay must accept a thread count and reject a bad one.
build/tools/ecohmem-run --app hpcg --report /tmp/ecohmem_ci_report.txt --threads 4
if build/tools/ecohmem-run --app hpcg --report /tmp/ecohmem_ci_report.txt --threads 0; then
  echo "ecohmem-run accepted --threads 0" >&2; exit 1
fi

# Online placement smoke: the shipped policy config must lint clean and
# must actually migrate on the phase-shifting workload. Parallel replay
# composes with --online (the sharded sampler keeps it deterministic,
# docs/threading.md): the serial and --threads 4 runs must be
# bit-identical, down to the migration log.
build/tools/ecohmem-lint --online-policy configs/online_policy.ini
build/tools/ecohmem-profile --app phase-shift --out /tmp/ecohmem_ci3.trc --compact
build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci3.trc --out /tmp/ecohmem_ci_report3.txt
online_out=$(build/tools/ecohmem-run --app phase-shift --report /tmp/ecohmem_ci_report3.txt \
  --online configs/online_policy.ini --migration-log /tmp/ecohmem_ci_mig1.csv)
echo "$online_out"
if ! echo "$online_out" | grep -E 'online +: [1-9][0-9]* migrations' >/dev/null; then
  echo "online run performed no migrations on phase-shift" >&2; exit 1
fi
if ! echo "$online_out" | grep -E '\([1-9][0-9]* partial' >/dev/null; then
  echo "online run performed no partial (page-granular) moves on phase-shift" >&2; exit 1
fi
online_par=$(build/tools/ecohmem-run --app phase-shift --report /tmp/ecohmem_ci_report3.txt \
  --online configs/online_policy.ini --threads 4 --migration-log /tmp/ecohmem_ci_mig4.csv)
# The replay line reports host wall-clock (not simulated time) and only
# appears for N > 1; everything else must match byte-for-byte.
if [ "$(echo "$online_out" | grep -v 'replay')" != "$(echo "$online_par" | grep -v 'replay')" ]; then
  echo "--online --threads 4 output differs from the serial run" >&2; exit 1
fi
cmp /tmp/ecohmem_ci_mig1.csv /tmp/ecohmem_ci_mig4.csv
# The migration log must satisfy the conservation identities against the
# policy it was produced under.
build/tools/ecohmem-lint --migration-log /tmp/ecohmem_ci_mig1.csv \
  --online-policy configs/online_policy.ini

# Guidance seeding: --from-report warm-starts the policy from the advisor
# report; two seeded invocations must agree byte-for-byte.
seeded_a=$(build/tools/ecohmem-run --app phase-shift --report /tmp/ecohmem_ci_report3.txt \
  --online configs/online_policy.ini --from-report /tmp/ecohmem_ci_report3.txt)
seeded_b=$(build/tools/ecohmem-run --app phase-shift --report /tmp/ecohmem_ci_report3.txt \
  --online configs/online_policy.ini --from-report /tmp/ecohmem_ci_report3.txt)
if [ "$(echo "$seeded_a" | grep -v 'replay')" != "$(echo "$seeded_b" | grep -v 'replay')" ]; then
  echo "seeded online runs are not deterministic" >&2; exit 1
fi
if ! echo "$seeded_a" | grep -E 'guidance +: [1-9][0-9]* of' >/dev/null; then
  echo "--from-report matched no sites" >&2; exit 1
fi

# Residual invalid combinations must die with a one-line usage error (2).
set +e
build/tools/ecohmem-run --app hpcg --report /tmp/ecohmem_ci_report.txt \
  --from-report /tmp/ecohmem_ci_report.txt
[ $? -eq 2 ] || { echo "--from-report without --online did not exit 2" >&2; exit 1; }
build/tools/ecohmem-run --app hpcg --report /tmp/ecohmem_ci_report.txt \
  --migration-log /tmp/ecohmem_ci_mig_bad.csv
[ $? -eq 2 ] || { echo "--migration-log without --online did not exit 2" >&2; exit 1; }
set -e

# The online bench (run in the bench loop above) must have recorded its
# acceptance verdict; the binary itself exits nonzero on a violated bound.
for key in '"bench": "online_placement"' '"hysteresis"' '"all_pass": true' \
           '"parallel_identical": true' '"static_s"' '"online_s"' '"seeded_s"' \
           '"kernel_tiering_s"' '"migrations"' '"migrations_partial"'; do
  if ! grep -F "$key" BENCH_online_placement.json >/dev/null; then
    echo "BENCH_online_placement.json missing $key" >&2; exit 1
  fi
done

# v3 indexed trace path: profile in v3, lint the footer index
# (trace-v3-index), aggregate in parallel — the report must be
# byte-identical to the serial one — and stream a timeline from the file.
build/tools/ecohmem-profile --app lulesh --out /tmp/ecohmem_ci_v3.trc \
  --format v3 --block-events 4096
build/tools/ecohmem-lint --trace /tmp/ecohmem_ci_v3.trc
build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci_v3.trc \
  --out /tmp/ecohmem_ci_v3_parallel.txt --threads 4
build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci_v3.trc \
  --out /tmp/ecohmem_ci_v3_serial.txt
cmp /tmp/ecohmem_ci_v3_parallel.txt /tmp/ecohmem_ci_v3_serial.txt
build/tools/ecohmem-timeline --trace /tmp/ecohmem_ci_v3.trc \
  --out /tmp/ecohmem_ci_v3.csv --bin-ms 50

# Compressed v3 blocks (docs/trace_format.md): the same workload profiled
# with --compress must lint clean (trace-block-compression rule) and
# produce an advisor report byte-identical to the uncompressed v3 one —
# compression must be invisible to every consumer.
build/tools/ecohmem-profile --app lulesh --out /tmp/ecohmem_ci_v3c.trc \
  --format v3 --block-events 4096 --compress
build/tools/ecohmem-lint --trace /tmp/ecohmem_ci_v3c.trc
build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci_v3c.trc \
  --out /tmp/ecohmem_ci_v3c.txt
cmp /tmp/ecohmem_ci_v3c.txt /tmp/ecohmem_ci_v3_serial.txt
build/tools/ecohmem-timeline --trace /tmp/ecohmem_ci_v3c.trc \
  --out /tmp/ecohmem_ci_v3c.csv --bin-ms 50
cmp /tmp/ecohmem_ci_v3c.csv /tmp/ecohmem_ci_v3.csv
# --compress without the v3 index must exit 2 (cli_common usage error).
for bad_compress in "--compress" "--format v2 --compress" "--compact --compress"; do
  set +e
  build/tools/ecohmem-profile --app lulesh --iterations 2 \
    --out /tmp/ecohmem_ci_bad.trc $bad_compress >/dev/null 2>&1
  compress_rc=$?
  set -e
  if [ "$compress_rc" -ne 2 ]; then
    echo "ecohmem-profile $bad_compress exited $compress_rc, want 2" >&2; exit 1
  fi
done

# Corruption-fuzz smoke: damage the v3 trace and prove the fail-soft
# contract on the CLI surface (the seeded sweep itself — zero crashes,
# manifest byte conservation, parallel == serial salvage — runs as
# test_salvage in the suite above).
v3_size=$(stat -c %s /tmp/ecohmem_ci_v3.trc)
head -c $((v3_size * 3 / 5)) /tmp/ecohmem_ci_v3.trc > /tmp/ecohmem_ci_v3_damaged.trc
# Strict readers must fail loudly, naming the path and a byte offset.
if build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci_v3_damaged.trc \
    --out /tmp/ecohmem_ci_damaged.txt 2>/tmp/ecohmem_ci_strict_err.txt; then
  echo "strict advisor accepted a truncated trace" >&2; exit 1
fi
grep -q "ecohmem_ci_v3_damaged.trc" /tmp/ecohmem_ci_strict_err.txt
grep -q "offset" /tmp/ecohmem_ci_strict_err.txt
# Salvage mode recovers the decodable prefix and prints the manifest...
build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci_v3_damaged.trc \
  --out /tmp/ecohmem_ci_damaged.txt --salvage --min-coverage 0 | grep "salvage: kept"
# ...but the default coverage gate (0.9) must reject this much loss.
if build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci_v3_damaged.trc \
    --out /tmp/ecohmem_ci_damaged2.txt --salvage >/dev/null 2>&1; then
  echo "salvage advisor accepted ~60% coverage under the default 90% gate" >&2; exit 1
fi
# Timeline streams the salvaged blocks.
build/tools/ecohmem-timeline --trace /tmp/ecohmem_ci_v3_damaged.trc \
  --out /tmp/ecohmem_ci_damaged.csv --bin-ms 50 --salvage
# Lint falls back to a salvage read (warnings, exit 0) and turns the
# trace-salvage-coverage finding into an error when the bar is missed.
build/tools/ecohmem-lint --trace /tmp/ecohmem_ci_v3_damaged.trc --min-coverage 0.1
if build/tools/ecohmem-lint --trace /tmp/ecohmem_ci_v3_damaged.trc --min-coverage 0.99; then
  echo "lint passed a salvaged trace below --min-coverage" >&2; exit 1
fi

# Placement-as-a-service smoke (docs/serving.md): a daemon on a unix
# socket serves a placement report byte-identical to the offline
# ecohmem-advisor run above for the same trace and config, then drains
# cleanly on SIGTERM (prints its farewell, unlinks its socket).
serve_sock=/tmp/ecohmem_ci_serve.sock
build/tools/ecohmem-serve --listen "$serve_sock" >/tmp/ecohmem_ci_serve.log 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do [ -S "$serve_sock" ] && break; sleep 0.1; done
[ -S "$serve_sock" ]
build/tools/ecohmem-serve --connect "$serve_sock" --ingest /tmp/ecohmem_ci2.trc \
  --query /tmp/ecohmem_ci_served.txt --config configs/advisor_dram_pmem.ini \
  --bandwidth-aware --csv /tmp/ecohmem_ci_served.csv
cmp /tmp/ecohmem_ci_served.txt /tmp/ecohmem_ci_report.txt
cmp /tmp/ecohmem_ci_served.csv /tmp/ecohmem_ci_sites.csv
# Compressed traces must flow through serve ingest unchanged: the served
# report for the compressed lulesh trace must be byte-identical to the
# offline advisor's report for the uncompressed copy.
build/tools/ecohmem-serve --connect "$serve_sock" --ingest /tmp/ecohmem_ci_v3c.trc \
  --query /tmp/ecohmem_ci_served_v3c.txt
cmp /tmp/ecohmem_ci_served_v3c.txt /tmp/ecohmem_ci_v3_serial.txt
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "ecohmem-serve exited nonzero on SIGTERM" >&2; exit 1; }
grep -q "drained, socket unlinked" /tmp/ecohmem_ci_serve.log
if [ -e "$serve_sock" ]; then
  echo "ecohmem-serve left its socket behind after draining" >&2; exit 1
fi

# The serve bench (run in the bench loop above) gates the wire-protocol
# identity contract: the served report must be byte-identical to the
# offline pipeline; the binary exits nonzero on a mismatch.
for key in '"bench": "serve"' '"frame_encode_mbs"' '"frame_decode_mbs"' \
           '"ingest_events_per_s"' '"query_ms"' '"identical": true'; do
  if ! grep -F "$key" BENCH_serve.json >/dev/null; then
    echo "BENCH_serve.json missing $key" >&2; exit 1
  fi
done

# ecohmem-serve usage errors must exit 2 (the cli_common convention),
# before any socket is created or bound.
for bad_serve in "--listen" \
                 "--listen /tmp/ecohmem_ci_serve_a.sock --connect /tmp/ecohmem_ci_serve_b.sock" \
                 "--connect /tmp/ecohmem_ci_serve_b.sock --attach 0" \
                 "--listen /tmp/ecohmem_ci_serve_a.sock --queue-blocks 0" \
                 "--listen /tmp/ecohmem_ci_serve_a.sock --max-frame-bytes 1"; do
  set +e
  build/tools/ecohmem-serve $bad_serve >/dev/null 2>&1
  serve_rc=$?
  set -e
  if [ "$serve_rc" -ne 2 ]; then
    echo "ecohmem-serve $bad_serve exited $serve_rc, want 2" >&2; exit 1
  fi
done

# Learned placement smoke (docs/learned.md): train a small model, advise
# with --policy learned, prove the report stays schema-compatible with the
# greedy one (FlexMalloc replays it unchanged), and verify the
# report/model pairing with ecohmem-lint.
build/tools/ecohmem-train --apps minife,large-hot --out /tmp/ecohmem_ci_model.ehm \
  --epochs 80 --max-solo 8 --max-swaps 4
build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci2.trc \
  --out /tmp/ecohmem_ci_learned.txt --config configs/advisor_dram_pmem.ini \
  --policy learned --model /tmp/ecohmem_ci_model.ehm
grep -q "^# model = 0x" /tmp/ecohmem_ci_learned.txt
build/tools/ecohmem-lint --trace /tmp/ecohmem_ci2.trc \
  --report /tmp/ecohmem_ci_learned.txt --config configs/advisor_dram_pmem.ini \
  --model /tmp/ecohmem_ci_model.ehm
build/tools/ecohmem-run --app hpcg --report /tmp/ecohmem_ci_learned.txt
# A damaged model must be a lint error (model-load), not a crash or a pass.
head -c 40 /tmp/ecohmem_ci_model.ehm > /tmp/ecohmem_ci_model_damaged.ehm
if build/tools/ecohmem-lint --report /tmp/ecohmem_ci_learned.txt \
    --model /tmp/ecohmem_ci_model_damaged.ehm >/dev/null 2>&1; then
  echo "lint accepted a truncated model file" >&2; exit 1
fi

# Learned-policy usage errors must exit 2 (the cli_common convention):
# unknown policy names, --policy learned without a model, --model with
# the greedy policy, an unusable model file, and out-of-range train flags.
for bad_learned in "build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci2.trc --out /tmp/ecohmem_ci_bad.txt --policy bogus" \
                   "build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci2.trc --out /tmp/ecohmem_ci_bad.txt --policy learned" \
                   "build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci2.trc --out /tmp/ecohmem_ci_bad.txt --model /tmp/ecohmem_ci_model.ehm" \
                   "build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci2.trc --out /tmp/ecohmem_ci_bad.txt --policy learned --model /tmp/ecohmem_ci_model_damaged.ehm" \
                   "build/tools/ecohmem-train --apps no-such-app --out /tmp/ecohmem_ci_bad.ehm" \
                   "build/tools/ecohmem-train --apps minife --out /tmp/ecohmem_ci_bad.ehm --epochs 0"; do
  set +e
  $bad_learned >/dev/null 2>&1
  learned_rc=$?
  set -e
  if [ "$learned_rc" -ne 2 ]; then
    echo "$bad_learned exited $learned_rc, want 2" >&2; exit 1
  fi
done

# The learned-placement bench (run in the bench loop above) must have
# recorded its acceptance verdict — learned no worse than greedy on every
# fig6 app and strictly better on large-hot; the binary itself exits
# nonzero on a violated bound.
for key in '"bench": "learned_placement"' '"model_hash"' '"training_pairs"' \
           '"pair_accuracy"' '"greedy_s"' '"learned_s"' '"adversarial": true' \
           '"all_pass": true'; do
  if ! grep -F "$key" BENCH_learned_placement.json >/dev/null; then
    echo "BENCH_learned_placement.json missing $key" >&2; exit 1
  fi
done

# Every tool parsing integer flags through cli_common must reject
# out-of-range values instead of silently truncating them.
for bad in "build/tools/ecohmem-profile --app hpcg --out /tmp/ecohmem_ci_bad.trc --pmem-dimms 0" \
           "build/tools/ecohmem-profile --app hpcg --out /tmp/ecohmem_ci_bad.trc --format v3 --block-events 0" \
           "build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci_v3.trc --out /tmp/ecohmem_ci_bad.txt --threads 0" \
           "build/tools/ecohmem-timeline --app hpcg --out /tmp/ecohmem_ci_bad.csv --iterations -1" \
           "build/tools/ecohmem-timeline --trace /tmp/ecohmem_ci_v3.trc --out /tmp/ecohmem_ci_bad.csv --bin-ms 0" \
           "build/tools/ecohmem-autotune --app hpcg --parallelism 9999"; do
  if $bad; then
    echo "accepted bad flag: $bad" >&2; exit 1
  fi
done

# Both linters must reject unknown rule ids in --disable (exit 2, not a
# silent no-op that would re-enable a rule in CI) and list valid ids.
build/tools/ecohmem-srclint --list-rules >/dev/null
for bad_disable in "build/tools/ecohmem-lint --trace /tmp/ecohmem_ci_v3.trc --disable no-such-rule" \
                   "build/tools/ecohmem-srclint --disable det-rnd"; do
  if $bad_disable 2>/tmp/ecohmem_ci_disable_err.txt; then
    echo "accepted unknown --disable id: $bad_disable" >&2; exit 1
  fi
  grep -q "valid rule ids" /tmp/ecohmem_ci_disable_err.txt
done

echo "CI OK"
