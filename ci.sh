#!/usr/bin/env bash
# Full verification pipeline: configure, build, test, run every
# reproduction benchmark and all examples. Exits non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j"$(nproc)" --output-on-failure

for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done

build/examples/quickstart
build/examples/custom_tiers
build/examples/trace_inspector minife /tmp/ecohmem_ci.trc
build/examples/placement_explorer lulesh 12
build/examples/host_interposition

build/tools/ecohmem-profile --app hpcg --out /tmp/ecohmem_ci2.trc --compact
build/tools/ecohmem-advisor --trace /tmp/ecohmem_ci2.trc --out /tmp/ecohmem_ci_report.txt \
  --bandwidth-aware --dump-sites --csv /tmp/ecohmem_ci_sites.csv
build/tools/ecohmem-run --app hpcg --report /tmp/ecohmem_ci_report.txt
echo "CI OK"
