#include "ecohmem/runtime/engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "ecohmem/online/planner.hpp"
#include "ecohmem/online/policy_config.hpp"
#include "ecohmem/online/sampler.hpp"
#include "ecohmem/online/sharded.hpp"
#include "ecohmem/runtime/guidance.hpp"
#include "ecohmem/runtime/worker_pool.hpp"

namespace ecohmem::runtime {

ExecutionEngine::ExecutionEngine(const memsim::MemorySystem* system, EngineOptions options)
    : system_(system), options_(options) {}

KernelSolution solve_kernel_fixed_point(const memsim::MemorySystem& system,
                                        const std::vector<ObjectTraffic>& traffic,
                                        const std::vector<memsim::KernelObjectMisses>& misses,
                                        double compute_ns, double mlp,
                                        const EngineOptions& options) {
  const std::size_t tiers = system.tier_count();
  KernelSolution sol;
  sol.tier_read_latency_ns.assign(tiers, 0.0);
  sol.tier_write_latency_ns.assign(tiers, 0.0);
  sol.object_load_latency_ns.assign(traffic.size(), 0.0);

  // Aggregate per-tier byte totals once.
  std::vector<double> read_bytes(tiers, 0.0);
  std::vector<double> write_bytes(tiers, 0.0);
  for (const auto& t : traffic) {
    for (std::size_t k = 0; k < tiers; ++k) {
      read_bytes[k] += t.read_bytes[k];
      write_bytes[k] += t.write_bytes[k];
    }
  }

  // Bandwidth floor: no tier can move its bytes faster than its ceilings.
  double bw_floor = 0.0;
  for (std::size_t k = 0; k < tiers; ++k) {
    const auto& spec = system.tier(k).spec();
    const double t_tier = (read_bytes[k] / spec.peak_read_gbs +
                           write_bytes[k] / spec.peak_write_gbs) /
                          memsim::kMaxUtilization;
    bw_floor = std::max(bw_floor, t_tier);
  }
  sol.bw_floor_ns = bw_floor;

  const double safe_mlp = std::max(mlp, 1.0);

  // Initial guess: idle latencies.
  double duration = std::max(compute_ns, 1.0);
  for (std::size_t k = 0; k < tiers; ++k) {
    const auto& tier = system.tier(k);
    duration += read_bytes[k] / static_cast<double>(kCacheLine) *
                tier.spec().idle_read_ns / safe_mlp;
  }
  duration = std::max(duration, bw_floor);

  for (int iter = 0; iter < options.max_fixed_point_iters; ++iter) {
    sol.iterations = iter + 1;

    // Utilization and latency per tier at the current duration guess.
    std::vector<double> lat_read(tiers, 0.0);
    std::vector<double> lat_write(tiers, 0.0);
    for (std::size_t k = 0; k < tiers; ++k) {
      const auto& tier = system.tier(k);
      const double u = tier.utilization(read_bytes[k] / duration, write_bytes[k] / duration);
      lat_read[k] = tier.read_latency_ns(u);
      lat_write[k] = tier.write_latency_ns(u);
    }

    // Per-object load latency and stall accumulation.
    double load_stall = 0.0;
    double store_stall = 0.0;
    for (std::size_t i = 0; i < traffic.size(); ++i) {
      double lat = traffic[i].fixed_latency_ns;
      for (std::size_t k = 0; k < tiers; ++k) {
        lat += traffic[i].latency_share[k] * lat_read[k];
      }
      sol.object_load_latency_ns[i] = lat;
      load_stall += misses[i].load_misses * lat / safe_mlp;
      for (std::size_t k = 0; k < tiers; ++k) {
        store_stall += traffic[i].write_bytes[k] / static_cast<double>(kCacheLine) *
                       lat_write[k] * options.store_stall_weight / safe_mlp;
      }
    }

    const double next = std::max(compute_ns + load_stall + store_stall, bw_floor);
    const double damped = 0.5 * duration + 0.5 * next;
    const bool converged = std::abs(damped - duration) <= options.convergence * duration;
    duration = damped;
    sol.load_stall_ns = load_stall;
    sol.store_stall_ns = store_stall;
    sol.tier_read_latency_ns = lat_read;
    sol.tier_write_latency_ns = lat_write;
    if (converged) break;
  }

  sol.duration_ns = duration;
  return sol;
}

namespace {

struct LiveState {
  bool live = false;
  std::uint64_t address = 0;
  std::uint64_t uid = 0;
  Bytes bytes = 0;  ///< current requested size (tracks realloc)
};

/// Workload-object id an allocation-stream step operates on (kernels are
/// never batched, so KernelOp is unreachable here).
std::size_t step_object(const Step& step) {
  if (const auto* a = std::get_if<AllocOp>(&step)) return a->object;
  if (const auto* f = std::get_if<FreeOp>(&step)) return f->object;
  return std::get<ReallocOp>(step).object;
}

/// Converts a stream of fractional overhead charges into whole-ns clock
/// advances without dropping the remainders: after every `credit` call
/// the total advance handed out equals the truncation of the *cumulative*
/// overhead. Both replay paths use it, which makes `total_ns` independent
/// of drain granularity — the serial path drains per op, the parallel
/// path once per flushed batch, and a sum of per-op truncations would
/// differ from the truncation of the sum.
struct OverheadClock {
  double accumulated_ns = 0.0;
  Ns credited = 0;

  [[nodiscard]] Ns credit(double overhead_ns) {
    accumulated_ns += overhead_ns;
    const Ns total = static_cast<Ns>(accumulated_ns);
    const Ns delta = total - credited;
    credited = total;
    return delta;
  }
};

/// Deduplicating function-name -> metrics-slot lookup.
struct FunctionTable {
  std::unordered_map<std::string, std::size_t> index;

  FunctionMetrics& slot(RunMetrics& metrics, const std::string& fn) {
    const auto it = index.find(fn);
    if (it != index.end()) return metrics.functions[it->second];
    index.emplace(fn, metrics.functions.size());
    metrics.functions.push_back(FunctionMetrics{fn, 0.0, 0.0, 0.0, 0.0});
    return metrics.functions.back();
  }
};

/// Replays one kernel step and returns its end time. Shared by the
/// serial and parallel paths — kernels always run on the engine thread,
/// which is what keeps placement and tier byte totals bit-identical
/// across thread counts. `record_bw` bins the resolved traffic into
/// bandwidth meters: the serial path adds to one meter directly, the
/// parallel path fans the entries out over per-worker shard meters.
/// `online_feedback`, when non-null, receives this kernel's per-object
/// miss counts (with live sizes) for the sharded online sampler.
Expected<Ns> replay_kernel(
    const memsim::MemorySystem& system, const EngineOptions& options, const Workload& workload,
    const KernelOp& kop, ExecutionMode& mode, const std::vector<LiveState>& live, Ns now,
    RunMetrics& metrics, FunctionTable& functions, memsim::AnalyticCacheModel& cache,
    const std::function<void(Ns, Ns, const std::vector<ObjectTraffic>&)>& record_bw,
    std::vector<online::ObjectAccess>* online_feedback = nullptr) {
  const std::size_t tiers = system.tier_count();
  const KernelSpec& kernel = workload.kernels[kop.kernel];

  // Gather live objects this kernel touches.
  std::vector<LiveObjectRef> objects;
  std::vector<memsim::KernelObjectAccess> accesses;
  objects.reserve(kernel.accesses.size());
  accesses.reserve(kernel.accesses.size());
  for (const auto& acc : kernel.accesses) {
    const auto& state = live[acc.object];
    if (!state.live) return unexpected("kernel touches non-live object");
    const ObjectSpec& spec = workload.objects[acc.object];
    objects.push_back(LiveObjectRef{acc.object, &spec, state.address, acc.footprint});
    accesses.push_back(memsim::KernelObjectAccess{acc.llc_loads, acc.llc_stores, acc.footprint,
                                                  spec.llc_friendliness,
                                                  spec.prefetch_efficiency});
  }

  const memsim::KernelCacheOutcome cache_outcome = cache.evaluate(accesses);

  if (online_feedback != nullptr) {
    online_feedback->clear();
    online_feedback->reserve(objects.size());
    for (std::size_t i = 0; i < objects.size(); ++i) {
      online_feedback->push_back(online::ObjectAccess{objects[i].object,
                                                      cache_outcome.per_object[i].load_misses,
                                                      cache_outcome.per_object[i].store_misses,
                                                      live[objects[i].object].bytes});
    }
  }

  std::vector<ObjectTraffic> traffic(objects.size());
  for (auto& t : traffic) {
    t.read_bytes.assign(tiers, 0.0);
    t.write_bytes.assign(tiers, 0.0);
    t.latency_share.assign(tiers, 0.0);
  }
  mode.resolve(objects, cache_outcome.per_object, traffic);

  // Modes may have appended background-traffic entries (migration);
  // pad the miss vector with zeroes so the solver sees no extra stalls.
  std::vector<memsim::KernelObjectMisses> padded_misses = cache_outcome.per_object;
  padded_misses.resize(traffic.size());

  const double compute_ns = cycles_to_ns(kernel.compute_cycles);
  const KernelSolution sol = solve_kernel_fixed_point(system, traffic, padded_misses, compute_ns,
                                                      workload.mlp, options);

  const Ns start = now;
  const Ns end = now + static_cast<Ns>(std::llround(sol.duration_ns));

  // Accounting.
  metrics.compute_ns += compute_ns;
  metrics.load_stall_ns += sol.load_stall_ns;
  metrics.store_stall_ns += sol.store_stall_ns;
  metrics.bw_limited_extra_ns +=
      std::max(0.0, sol.duration_ns - (compute_ns + sol.load_stall_ns + sol.store_stall_ns));
  metrics.total_load_misses += cache_outcome.total_load_misses;
  metrics.total_store_misses += cache_outcome.total_store_misses;

  FunctionMetrics& fn = functions.slot(metrics, kernel.function);
  fn.instructions += kernel.instructions;
  fn.cycles += ns_to_cycles(sol.duration_ns);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    fn.load_misses += cache_outcome.per_object[i].load_misses;
    fn.latency_weight_sum +=
        cache_outcome.per_object[i].load_misses * sol.object_load_latency_ns[i];
  }

  for (std::size_t i = 0; i < traffic.size(); ++i) {
    for (std::size_t k = 0; k < tiers; ++k) {
      metrics.tier_traffic[k].read_bytes += traffic[i].read_bytes[k];
      metrics.tier_traffic[k].write_bytes += traffic[i].write_bytes[k];
    }
  }
  record_bw(start, end, traffic);

  if (options.observer != nullptr) {
    KernelObservation obs;
    obs.start = start;
    obs.end = end;
    obs.kernel = &kernel;
    for (const auto& t : traffic) {
      for (std::size_t k = 0; k < tiers; ++k) {
        obs.total_read_bytes += t.read_bytes[k];
        obs.total_write_bytes += t.write_bytes[k];
      }
    }
    obs.objects.reserve(objects.size());
    for (std::size_t i = 0; i < objects.size(); ++i) {
      ObjectKernelSample s;
      s.object = objects[i].object;
      s.address = objects[i].address;
      s.size = objects[i].spec->size;
      s.load_misses = cache_outcome.per_object[i].load_misses;
      s.store_misses = cache_outcome.per_object[i].store_misses;
      s.store_instructions = kernel.accesses[i].store_instructions > 0.0
                                 ? kernel.accesses[i].store_instructions
                                 : cache_outcome.per_object[i].store_misses;
      s.avg_load_latency_ns = sol.object_load_latency_ns[i];
      obs.objects.push_back(s);
    }
    options.observer->on_kernel(obs);
  }

  mode.after_kernel(start, end, objects, cache_outcome.per_object);
  return end;
}

/// Engine tier migrations promote toward (the DRAM-class tier by the
/// system-building convention used throughout tools/ and tests/).
constexpr std::size_t kFastTier = 0;

/// Per-site guided-to-fast-tier flags from an optional guidance seed
/// (`--from-report`); empty when no guidance is attached.
std::vector<unsigned char> guided_fast_sites(const GuidanceSeed* guidance,
                                             const Workload& workload,
                                             const memsim::MemorySystem& system) {
  std::vector<unsigned char> flags;
  if (guidance == nullptr) return flags;
  const std::string& fast_name = system.tier(kFastTier).name();
  flags.resize(workload.sites.size(), 0);
  for (std::size_t s = 0; s < workload.sites.size(); ++s) {
    flags[s] = guidance->site_maps_to(s, fast_name) ? 1 : 0;
  }
  return flags;
}

/// State of the online placement subsystem, shared by both replay paths:
/// the sharded sampler/hotness state (online/sharded.hpp), the planner,
/// the moves scheduled at the last policy evaluation — applied at the
/// *next* kernel boundary, the window in which a free or realloc can
/// invalidate a scheduled move (detected via the allocation uid and
/// counted as cancelled) — and the guidance seeding state. Everything
/// except `process_kernel_shard` fan-out runs on the engine thread.
struct OnlineDriver {
  OnlineDriver(const online::OnlinePolicyConfig& cfg, std::vector<unsigned char> guided)
      : config(&cfg),
        state(cfg),
        planner(cfg),
        site_fast(std::move(guided)),
        have_guidance(!site_fast.empty()) {}

  const online::OnlinePolicyConfig* config;
  online::ShardedOnlineState state;
  online::MigrationPlanner planner;
  std::vector<online::PlannedMove> pending;
  std::vector<std::uint64_t> pending_uid;      ///< uid at scheduling time
  std::vector<online::ObjectAccess> feedback;  ///< reused per kernel

  /// Guidance seeding (--from-report): per-site flag, set when the
  /// report maps the site to the fast tier.
  std::vector<unsigned char> site_fast;
  bool have_guidance = false;
  bool seed_scan_done = false;         ///< one-time live-object scan ran
  std::deque<std::size_t> seed_queue;  ///< guided objects awaiting promotion

  /// Monotonic min-deque of fast-tier headroom observed at the last
  /// `window` kernel boundaries: (kernel index, headroom bytes).
  std::deque<std::pair<std::uint64_t, Bytes>> headroom_window;
  std::uint64_t headroom_kernel = 0;

  /// Seeds mature hotness history for an object born at a fast-guided
  /// site, so the maturity gate does not keep report-designated objects
  /// out of the first planning rounds. Engine thread only — the serial
  /// path calls it at the AllocOp, the parallel path at batch flush in
  /// program order, which is the same state by kernel time (seeding is
  /// first-write-wins and forgets erase whole histories).
  void maybe_seed(std::size_t object, std::size_t site) {
    if (!have_guidance || site >= site_fast.size() || site_fast[site] == 0) return;
    state.seed(object, config->min_density);
  }

  /// Folds the headroom observed at this kernel boundary into the
  /// window and returns the windowed minimum. Kernel-boundary headroom
  /// oscillates when a workload allocates and frees large temporaries
  /// every step (openfoam's assembly pool); promoting persistent
  /// objects into such a trough evicts the *next* step's temporaries to
  /// the slow tier via OOM redirect — capacity the planner never sees
  /// it spending. Planning against the windowed minimum only offers
  /// headroom that stayed free across a whole inner-loop iteration.
  Bytes conservative_headroom(Bytes now_free) {
    ++headroom_kernel;
    while (!headroom_window.empty() && headroom_window.back().second >= now_free) {
      headroom_window.pop_back();
    }
    headroom_window.emplace_back(headroom_kernel, now_free);
    while (headroom_window.front().first + config->window <= headroom_kernel) {
      headroom_window.pop_front();
    }
    return headroom_window.front().second;
  }
};

/// Policy evaluation at a kernel boundary (engine thread, both replay
/// paths). Folds the headroom window, and — when no plan is pending —
/// drains the guidance seed queue or asks the planner for promote/demote
/// moves. The seed queue is built once, at the first evaluation, from
/// live fast-guided objects stranded in slow tiers (objects allocated
/// later at guided sites are covered by their seeded hotness instead);
/// seeded promotions use free headroom only (fit-or-skip; huge objects
/// may take a chunk-aligned partial grant) and never displace residents.
void evaluate_online_policy(OnlineDriver& d, const Workload& workload, ExecutionMode& mode,
                            const std::vector<LiveState>& live, RunMetrics& metrics) {
  const Bytes usable_headroom = d.conservative_headroom(mode.migration_headroom(kFastTier));
  if (!d.pending.empty()) return;

  if (d.have_guidance && !d.seed_scan_done) {
    d.seed_scan_done = true;
    for (std::size_t obj = 0; obj < live.size(); ++obj) {
      if (!live[obj].live) continue;
      if (d.site_fast[workload.objects[obj].site] == 0) continue;
      const auto tier = mode.object_tier(obj);
      if (!tier || *tier == kFastTier) continue;
      d.seed_queue.push_back(obj);
    }
  }

  if (!d.seed_queue.empty()) {
    const Bytes chunk = d.config->chunk_bytes;
    const Bytes max_bytes = d.config->max_bytes_per_step;
    Bytes headroom = usable_headroom;
    Bytes bytes_planned = 0;
    while (!d.seed_queue.empty() && d.pending.size() < d.config->max_moves_per_step) {
      const std::size_t obj = d.seed_queue.front();
      if (!live[obj].live) {
        d.seed_queue.pop_front();
        continue;
      }
      const auto tier = mode.object_tier(obj);
      if (!tier || *tier == kFastTier) {
        d.seed_queue.pop_front();
        continue;
      }
      const Bytes total = live[obj].bytes;
      const Bytes fast_bytes = std::min(mode.partial_resident_bytes(obj, kFastTier), total);
      const Bytes remaining = total - fast_bytes;
      if (remaining == 0) {
        d.seed_queue.pop_front();
        continue;
      }
      Bytes room = headroom;
      if (max_bytes != 0) room = std::min(room, max_bytes - bytes_planned);
      if (remaining <= room) {
        d.pending.push_back(online::PlannedMove{obj, *tier, kFastTier, remaining, fast_bytes,
                                                remaining != total});
        headroom -= remaining;
        bytes_planned += remaining;
        d.seed_queue.pop_front();
        continue;
      }
      const bool huge =
          d.config->huge_object_bytes != 0 && total >= d.config->huge_object_bytes;
      if (huge) {
        const Bytes take = room - room % chunk;
        if (take == 0) break;  // below one chunk of room; retry next evaluation
        d.pending.push_back(online::PlannedMove{obj, *tier, kFastTier, take, fast_bytes, true});
        bytes_planned += take;
        break;  // the partial grant consumed the remaining room
      }
      // Does not fit the current headroom: drop it from the queue — the
      // policy can still promote it later from observed hotness.
      d.seed_queue.pop_front();
    }
  }

  if (d.pending.empty()) {
    std::vector<online::ObjectView> views;
    views.reserve(live.size());
    for (std::size_t obj = 0; obj < live.size(); ++obj) {
      if (!live[obj].live) continue;
      const auto tier = mode.object_tier(obj);
      if (!tier) continue;
      const Bytes fast_bytes =
          *tier == kFastTier
              ? live[obj].bytes
              : std::min(mode.partial_resident_bytes(obj, kFastTier), live[obj].bytes);
      views.push_back(online::ObjectView{obj, live[obj].bytes, *tier, d.state.hotness(obj),
                                         d.state.shield(obj), d.state.age(obj), fast_bytes});
    }
    d.pending = d.planner.plan(views, kFastTier, usable_headroom);
  }

  d.pending_uid.clear();
  d.pending_uid.reserve(d.pending.size());
  for (const online::PlannedMove& mv : d.pending) {
    d.pending_uid.push_back(live[mv.object].uid);
  }
  metrics.migrations_scheduled += d.pending.size();
}

/// Applies the moves scheduled at the previous policy evaluation (engine
/// thread, both replay paths). Runs just before a kernel replays, so the
/// object set is quiesced; moves whose object was freed or realloc'd
/// since scheduling (the uid changed) and moves refused by a now-full
/// target are cancelled, never errors — and a cancelled move charges
/// nothing: no cost-model time, no tier traffic, no bandwidth, which is
/// what keeps `migrations_scheduled == migrations + migrations_cancelled`
/// an exact byte-accounting identity. Applied moves charge the cost
/// model into the clock, the per-tier traffic totals and the bandwidth
/// timeline — migrations are never free. Partial (sub-range) moves go
/// through `migrate_object_range` and keep the object's home address.
Status apply_pending_migrations(OnlineDriver& d, ExecutionMode& mode,
                                std::vector<LiveState>& live,
                                const memsim::MemorySystem& system, RunMetrics& metrics,
                                Ns& now, memsim::BandwidthMeter& bw_meter) {
  for (std::size_t i = 0; i < d.pending.size(); ++i) {
    const online::PlannedMove& mv = d.pending[i];
    auto& state = live[mv.object];
    if (!state.live || state.uid != d.pending_uid[i]) {
      ++metrics.migrations_cancelled;
      continue;
    }
    const bool partial = mv.partial || mv.offset != 0;
    auto moved = partial ? mode.migrate_object_range(mv.object, state.address, mv.to_tier,
                                                     mv.offset, mv.bytes)
                         : mode.migrate_object(mv.object, state.address, mv.to_tier);
    if (!moved) return unexpected("online migration failed: " + moved.error());
    if (!moved->moved) {
      ++metrics.migrations_cancelled;
      continue;
    }
    // Whole-object moves relocate the home block; sub-range moves leave
    // it in place (the mode's fragment map tracks the moved pieces).
    if (!moved->partial) state.address = moved->address;

    const double cost_ns = online::migration_cost_ns(moved->bytes, system, moved->from_tier,
                                                     mv.to_tier, d.config->bandwidth_fraction);
    const Ns start = now;
    const Ns end = now + static_cast<Ns>(std::llround(cost_ns));
    const double bytes = static_cast<double>(moved->bytes);
    metrics.tier_traffic[moved->from_tier].read_bytes += bytes;
    metrics.tier_traffic[mv.to_tier].write_bytes += bytes;
    bw_meter.add(moved->from_tier, start, end, bytes);
    bw_meter.add(mv.to_tier, start, end, bytes);
    now = end;

    metrics.migration_ns += cost_ns;
    metrics.migrated_bytes += moved->bytes;
    ++metrics.migrations;
    if (moved->partial) ++metrics.migrations_partial;
    metrics.migration_events.push_back(MigrationRecord{start, mv.object, moved->from_tier,
                                                       mv.to_tier, moved->bytes, moved->offset,
                                                       moved->partial});
  }
  d.pending.clear();
  d.pending_uid.clear();
  return {};
}

}  // namespace

Expected<RunMetrics> ExecutionEngine::run(const Workload& workload, ExecutionMode& mode) {
  if (options_.replay_threads < 1) {
    return unexpected("EngineOptions.replay_threads must be >= 1, got " +
                      std::to_string(options_.replay_threads));
  }
  // Online placement rules hold uniformly at any thread count: the
  // policy must validate, the mode must support migration, and no
  // observer may be attached (profiling runs and migrating runs are
  // mutually exclusive — the observer would see addresses the policy is
  // about to invalidate).
  if (options_.online_policy != nullptr) {
    if (Status s = options_.online_policy->validate(); !s) return unexpected(s.error());
    if (options_.observer != nullptr) {
      return unexpected(
          "online placement does not support observers; detach the observer or drop the "
          "online policy");
    }
    if (!mode.supports_object_migration()) {
      return unexpected("online placement needs an execution mode with object migration; "
                        "mode '" + mode.name() + "' has none (use app-direct)");
    }
  }
  if (options_.replay_threads == 1) return run_serial(workload, mode);
  return run_parallel(workload, mode, static_cast<std::size_t>(options_.replay_threads));
}

Expected<RunMetrics> ExecutionEngine::run_serial(const Workload& workload, ExecutionMode& mode) {
  const std::size_t tiers = system_->tier_count();

  RunMetrics metrics;
  metrics.workload = workload.name;
  metrics.mode = mode.name();
  metrics.tier_traffic.resize(tiers);
  for (std::size_t k = 0; k < tiers; ++k) {
    metrics.tier_traffic[k].tier = system_->tier(k).name();
  }

  memsim::AnalyticCacheModel cache(options_.llc_bytes);
  memsim::BandwidthMeter bw_meter(tiers, options_.bw_bin_ns);

  mode.on_replay_begin(workload);

  std::vector<LiveState> live(workload.objects.size());
  std::uint64_t next_uid = 1;
  FunctionTable functions;

  std::optional<OnlineDriver> online_driver;
  if (options_.online_policy != nullptr) {
    online_driver.emplace(*options_.online_policy,
                          guided_fast_sites(options_.guidance, workload, *system_));
  }

  const auto record_bw = [&](Ns start, Ns end, const std::vector<ObjectTraffic>& traffic) {
    for (std::size_t i = 0; i < traffic.size(); ++i) {
      for (std::size_t k = 0; k < tiers; ++k) {
        bw_meter.add(k, start, end, traffic[i].read_bytes[k] + traffic[i].write_bytes[k]);
      }
    }
  };

  Ns now = 0;
  OverheadClock overhead_clock;

  for (const auto& step : workload.steps) {
    if (const auto* a = std::get_if<AllocOp>(&step)) {
      const ObjectSpec& spec = workload.objects[a->object];
      const SiteSpec& site = workload.sites[spec.site];

      auto address = mode.on_alloc(a->object, spec, site, spec.size);
      if (!address) {
        return unexpected("allocation failed in " + mode.name() + " for site '" + site.label +
                          "': " + address.error());
      }
      auto& state = live[a->object];
      state.live = true;
      state.address = *address;
      state.uid = next_uid++;
      state.bytes = spec.size;
      ++metrics.allocations;

      const double overhead = mode.take_alloc_overhead_ns();
      metrics.alloc_overhead_ns += overhead;
      now += overhead_clock.credit(overhead);

      if (online_driver) online_driver->maybe_seed(a->object, spec.site);

      if (options_.observer != nullptr) {
        options_.observer->on_alloc(now, state.uid, state.address, spec.size, site.stack);
      }
    } else if (const auto* f = std::get_if<FreeOp>(&step)) {
      auto& state = live[f->object];
      if (!state.live) return unexpected("free of non-live object in step replay");
      if (Status s = mode.on_free(f->object, state.address); !s) {
        return unexpected("free failed: " + s.error());
      }
      if (options_.observer != nullptr) options_.observer->on_free(now, state.uid);
      state.live = false;
      ++metrics.frees;
      if (online_driver) online_driver->state.forget(f->object);
    } else if (const auto* r = std::get_if<ReallocOp>(&step)) {
      // Interposed realloc: free + alloc through the mode (FlexMalloc
      // keeps the tier of the call stack), fresh uid like a fresh pointer.
      auto& state = live[r->object];
      if (!state.live) return unexpected("realloc of non-live object in step replay");
      const ObjectSpec& spec = workload.objects[r->object];
      const SiteSpec& site = workload.sites[spec.site];
      if (Status s = mode.on_free(r->object, state.address); !s) {
        return unexpected("realloc (free half) failed: " + s.error());
      }
      if (options_.observer != nullptr) options_.observer->on_free(now, state.uid);
      auto address = mode.on_alloc(r->object, spec, site, r->new_size);
      if (!address) return unexpected("realloc failed: " + address.error());
      state.address = *address;
      state.uid = next_uid++;
      state.bytes = r->new_size;
      ++metrics.allocations;
      const double overhead = mode.take_alloc_overhead_ns();
      metrics.alloc_overhead_ns += overhead;
      now += overhead_clock.credit(overhead);
      if (options_.observer != nullptr) {
        options_.observer->on_alloc(now, state.uid, state.address, r->new_size, site.stack);
      }
    } else if (const auto* kop = std::get_if<KernelOp>(&step)) {
      if (online_driver) {
        if (Status s = apply_pending_migrations(*online_driver, mode, live, *system_, metrics,
                                                now, bw_meter);
            !s) {
          return unexpected(s.error());
        }
      }
      auto end = replay_kernel(*system_, options_, workload, *kop, mode, live, now, metrics,
                               functions, cache, record_bw,
                               online_driver ? &online_driver->feedback : nullptr);
      if (!end) return unexpected(end.error());
      now = *end;

      if (online_driver) {
        OnlineDriver& d = *online_driver;
        // Sample this kernel's misses into the sharded hotness state —
        // shards 0..N-1 inline, which is by construction the same
        // per-shard stream order the parallel path's fan-out produces.
        for (std::size_t shard = 0; shard < online::kOnlineShards; ++shard) {
          d.state.process_kernel_shard(shard, d.feedback);
        }
        // Evaluate the policy; the plan applies at the next kernel
        // boundary (see apply_pending_migrations).
        evaluate_online_policy(d, workload, mode, live, metrics);
      }
    }
  }

  // Moves still pending when the run ends were never applied.
  if (online_driver) {
    metrics.migrations_cancelled += online_driver->pending.size();
  }

  metrics.total_ns = now;
  metrics.dram_cache_hit_ratio = mode.dram_cache_hit_ratio();
  metrics.oom_redirects = mode.oom_redirects();
  metrics.tier_bw.resize(tiers);
  for (std::size_t k = 0; k < tiers; ++k) metrics.tier_bw[k] = bw_meter.series(k);
  return metrics;
}

Expected<RunMetrics> ExecutionEngine::run_parallel(const Workload& workload, ExecutionMode& mode,
                                                   std::size_t threads) {
  if (options_.observer != nullptr) {
    return unexpected(
        "parallel replay does not support observers (profiling runs are serial); "
        "use replay_threads=1");
  }
  if (!mode.concurrent_alloc_safe()) {
    return unexpected("execution mode '" + mode.name() +
                      "' does not support concurrent allocation replay; use replay_threads=1");
  }

  const std::size_t tiers = system_->tier_count();

  RunMetrics metrics;
  metrics.workload = workload.name;
  metrics.mode = mode.name();
  metrics.tier_traffic.resize(tiers);
  for (std::size_t k = 0; k < tiers; ++k) {
    metrics.tier_traffic[k].tier = system_->tier(k).name();
  }

  memsim::AnalyticCacheModel cache(options_.llc_bytes);
  memsim::BandwidthMeter bw_meter(tiers, options_.bw_bin_ns);
  std::vector<memsim::BandwidthMeter> bw_shards;
  bw_shards.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) bw_shards.emplace_back(tiers, options_.bw_bin_ns);

  mode.on_replay_begin(workload);

  std::vector<LiveState> live(workload.objects.size());
  ConcurrentReplayCounters counters;
  FunctionTable functions;
  WorkerPool pool(threads);
  std::vector<std::string> worker_errors(threads);

  std::optional<OnlineDriver> online_driver;
  if (options_.online_policy != nullptr) {
    online_driver.emplace(*options_.online_policy,
                          guided_fast_sites(options_.guidance, workload, *system_));
  }

  Ns now = 0;
  OverheadClock overhead_clock;
  std::vector<const Step*> batch;
  Bytes batch_alloc_bytes = 0;       // requested bytes the batch may allocate
  std::uint64_t batch_alloc_ops = 0;  // alloc + realloc ops in the batch
  std::vector<std::vector<const Step*>> partition(threads);

  // Replays one alloc/free/realloc op; on failure records into `err` and
  // returns false. Shared by the parallel workers and the in-order
  // fallback for capacity-pressured batches.
  const auto replay_one = [&](const Step* step, std::string& err) -> bool {
    if (const auto* a = std::get_if<AllocOp>(step)) {
      const ObjectSpec& spec = workload.objects[a->object];
      const SiteSpec& site = workload.sites[spec.site];
      auto address = mode.on_alloc(a->object, spec, site, spec.size);
      if (!address) {
        err = "allocation failed in " + mode.name() + " for site '" + site.label +
              "': " + address.error();
        return false;
      }
      auto& state = live[a->object];
      state.live = true;
      state.address = *address;
      state.uid = counters.next_uid.fetch_add(1, std::memory_order_relaxed);
      state.bytes = spec.size;
      counters.allocations.fetch_add(1, std::memory_order_relaxed);
    } else if (const auto* f = std::get_if<FreeOp>(step)) {
      auto& state = live[f->object];
      if (!state.live) {
        err = "free of non-live object in step replay";
        return false;
      }
      if (Status s = mode.on_free(f->object, state.address); !s) {
        err = "free failed: " + s.error();
        return false;
      }
      state.live = false;
      counters.frees.fetch_add(1, std::memory_order_relaxed);
    } else if (const auto* r = std::get_if<ReallocOp>(step)) {
      auto& state = live[r->object];
      if (!state.live) {
        err = "realloc of non-live object in step replay";
        return false;
      }
      const ObjectSpec& spec = workload.objects[r->object];
      const SiteSpec& site = workload.sites[spec.site];
      if (Status s = mode.on_free(r->object, state.address); !s) {
        err = "realloc (free half) failed: " + s.error();
        return false;
      }
      auto address = mode.on_alloc(r->object, spec, site, r->new_size);
      if (!address) {
        err = "realloc failed: " + address.error();
        return false;
      }
      state.address = *address;
      state.uid = counters.next_uid.fetch_add(1, std::memory_order_relaxed);
      state.bytes = r->new_size;
      counters.allocations.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  };

  // Each worker walks only its own pre-partitioned op list.
  const auto replay_ops = [&](std::size_t wi) {
    std::string& err = worker_errors[wi];
    for (const Step* step : partition[wi]) {
      if (!replay_one(step, err)) return;
    }
  };

  const auto flush_batch = [&]() -> Status {
    if (batch.empty()) return {};
    if (mode.batch_placement_order_free(batch_alloc_bytes, batch_alloc_ops)) {
      // Pre-partition on the engine thread: worker `object % threads`
      // owns each object, which preserves the per-object op order (and
      // makes each live[] element single-writer) while distinct objects
      // proceed concurrently through the shared thread-safe mode.
      for (auto& ops : partition) ops.clear();
      for (const Step* step : batch) {
        partition[step_object(*step) % threads].push_back(step);
      }
      pool.run(replay_ops);
    } else {
      // Capacity pressure: some tier could fill up mid-batch, which would
      // make OOM redirection — and hence placement — depend on worker
      // interleaving. Replay this batch in program order on the engine
      // thread instead; that is the serial path's order by construction,
      // so determinism survives (docs/threading.md).
      std::string& err = worker_errors[0];
      for (const Step* step : batch) {
        if (!replay_one(step, err)) break;
      }
    }
    // Online bookkeeping that must not depend on worker interleaving
    // runs here, on the engine thread, in program order: tracker forgets
    // for freed objects and guidance seeding for objects born at
    // fast-guided sites. Deferring them from the ops to the batch flush
    // is invisible to the policy — it only reads the state at kernel
    // boundaries, which flushes precede.
    if (online_driver) {
      for (const Step* step : batch) {
        if (const auto* f = std::get_if<FreeOp>(step)) {
          online_driver->state.forget(f->object);
        } else if (const auto* a = std::get_if<AllocOp>(step)) {
          online_driver->maybe_seed(a->object, workload.objects[a->object].site);
        }
      }
    }
    batch.clear();
    batch_alloc_bytes = 0;
    batch_alloc_ops = 0;
    for (const auto& err : worker_errors) {
      if (!err.empty()) return unexpected(err);
    }
    // The matcher meters interposition cost internally; draining it once
    // per batch telescopes to the same total as per-op draining.
    const double overhead = mode.take_alloc_overhead_ns();
    metrics.alloc_overhead_ns += overhead;
    now += overhead_clock.credit(overhead);
    return {};
  };

  // Kernel bandwidth binning fans out into per-worker shard meters; entry
  // i goes to shard i % threads, so each shard is single-writer.
  const auto record_bw = [&](Ns start, Ns end, const std::vector<ObjectTraffic>& traffic) {
    pool.run([&](std::size_t wi) {
      auto& shard = bw_shards[wi];
      for (std::size_t i = wi; i < traffic.size(); i += threads) {
        for (std::size_t k = 0; k < tiers; ++k) {
          shard.add(k, start, end, traffic[i].read_bytes[k] + traffic[i].write_bytes[k]);
        }
      }
    });
  };

  for (const auto& step : workload.steps) {
    if (const auto* kop = std::get_if<KernelOp>(&step)) {
      // Kernels are barriers: every batched allocation op must land
      // before the kernel reads the live set.
      if (Status s = flush_batch(); !s) return unexpected(s.error());
      if (online_driver) {
        if (Status s = apply_pending_migrations(*online_driver, mode, live, *system_, metrics,
                                                now, bw_meter);
            !s) {
          return unexpected(s.error());
        }
      }
      auto end = replay_kernel(*system_, options_, workload, *kop, mode, live, now, metrics,
                               functions, cache, record_bw,
                               online_driver ? &online_driver->feedback : nullptr);
      if (!end) return unexpected(end.error());
      now = *end;

      if (online_driver) {
        OnlineDriver& d = *online_driver;
        // Fan the kernel's feedback over the fixed online shards: worker
        // `w` processes shards `w, w + threads, ...`, and within a shard
        // entries are consumed in stream order — the same per-shard
        // sample streams the serial path produces inline.
        pool.run([&](std::size_t wi) {
          for (std::size_t shard = wi; shard < online::kOnlineShards; shard += threads) {
            d.state.process_kernel_shard(shard, d.feedback);
          }
        });
        evaluate_online_policy(d, workload, mode, live, metrics);
      }
    } else {
      if (const auto* a = std::get_if<AllocOp>(&step)) {
        batch_alloc_bytes += workload.objects[a->object].size;
        ++batch_alloc_ops;
      } else if (const auto* r = std::get_if<ReallocOp>(&step)) {
        batch_alloc_bytes += r->new_size;
        ++batch_alloc_ops;
      }
      batch.push_back(&step);
    }
  }
  if (Status s = flush_batch(); !s) return unexpected(s.error());

  // Moves still pending when the run ends were never applied.
  if (online_driver) {
    metrics.migrations_cancelled += online_driver->pending.size();
  }

  metrics.allocations = counters.allocations.load(std::memory_order_relaxed);
  metrics.frees = counters.frees.load(std::memory_order_relaxed);
  metrics.total_ns = now;
  metrics.dram_cache_hit_ratio = mode.dram_cache_hit_ratio();
  metrics.oom_redirects = mode.oom_redirects();

  // Merge shards in worker order so the timeline is deterministic for a
  // given thread count.
  for (const auto& shard : bw_shards) {
    if (Status s = bw_meter.merge_from(shard); !s) return unexpected(s.error());
  }
  metrics.tier_bw.resize(tiers);
  for (std::size_t k = 0; k < tiers; ++k) metrics.tier_bw[k] = bw_meter.series(k);
  return metrics;
}

}  // namespace ecohmem::runtime
