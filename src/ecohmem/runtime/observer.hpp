#pragma once

/// \file observer.hpp
/// Execution observation hooks — where the profiler (Extrae role) taps in.
///
/// The engine notifies the observer of every allocation/free (with the
/// captured call stack, like the LD_PRELOAD hook sees) and of every kernel
/// execution with the resolved per-object miss counts and latencies (the
/// ground-truth stream the PEBS sampler subsamples).

#include <vector>

#include "ecohmem/bom/frame.hpp"
#include "ecohmem/common/units.hpp"
#include "ecohmem/runtime/workload.hpp"

namespace ecohmem::runtime {

/// Ground truth for one object during one kernel execution.
struct ObjectKernelSample {
  std::size_t object = 0;          ///< workload object index
  std::uint64_t address = 0;       ///< current base address
  Bytes size = 0;
  double load_misses = 0.0;         ///< LLC load misses this kernel
  double store_misses = 0.0;        ///< store traffic reaching memory
  double store_instructions = 0.0;  ///< ALL_STORES stream (PEBS store samples)
  double avg_load_latency_ns = 0.0;
};

struct KernelObservation {
  Ns start = 0;
  Ns end = 0;
  const KernelSpec* kernel = nullptr;
  std::vector<ObjectKernelSample> objects;

  /// Total memory traffic of the kernel across all tiers, including
  /// prefetch fills — what an uncore IMC counter would integrate.
  double total_read_bytes = 0.0;
  double total_write_bytes = 0.0;
};

/// Receives the replay event stream.
///
/// \note Observers are a serial-replay feature: the engine invokes all
/// hooks from the engine thread, in program order, and rejects
/// `EngineOptions.replay_threads > 1` when an observer is attached —
/// the trace is an ordered artifact (docs/threading.md). Implementations
/// therefore need no internal locking.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  /// `object_uid` is unique per allocation instance (re-allocations of the
  /// same workload object get fresh uids, like real pointers do).
  virtual void on_alloc(Ns time, std::uint64_t object_uid, std::uint64_t address, Bytes size,
                        const bom::CallStack& stack) = 0;
  virtual void on_free(Ns time, std::uint64_t object_uid) = 0;
  virtual void on_kernel(const KernelObservation& observation) = 0;
};

}  // namespace ecohmem::runtime
