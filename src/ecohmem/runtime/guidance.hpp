#pragma once

/// \file guidance.hpp
/// Guidance seeding for the online placement policy (docs/online.md).
///
/// `ecohmem-run --online P --from-report R` bridges the offline and
/// online worlds: an Advisor report R (possibly produced on an earlier,
/// similar run) is matched against the workload's allocation sites once
/// at startup, and the resulting per-site tier guidance initializes the
/// online policy instead of letting it start cold. Objects born at
/// sites the report maps to the fast tier are seeded as already-mature
/// in the hotness tracker (so the warm-up shield does not keep them out
/// of the first planning rounds), and live guided objects that the
/// *placement* report left in a slow tier are queued for promotion at
/// the first policy evaluation. The online policy then refines from
/// that starting point exactly as it would from its own observations —
/// guidance biases the start state, it never overrides later evidence.
///
/// The matching reuses FlexMalloc's `CallStackMatcher`, so BOM and
/// human-readable reports, suffix fallback and ambiguity handling all
/// behave exactly as they do at interposition time.

#include <string>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/flexmalloc/report_parser.hpp"
#include "ecohmem/runtime/workload.hpp"

namespace ecohmem::runtime {

/// Per-site tier guidance extracted from an Advisor report. Plain data
/// after `build`; read-only during a run (safe to share across threads).
struct GuidanceSeed {
  /// Tier name the report maps each workload site to; empty = the
  /// report does not list the site (it follows the report's fallback
  /// and gets no seeding). Indexed by `SiteSpec` position.
  std::vector<std::string> site_tier;

  /// Number of sites the report matched.
  std::size_t matched_sites = 0;

  /// Matches every workload site's call stack against `report`. For
  /// human-readable reports the workload's own symbol table is used
  /// (it describes the binary the stacks point into); fails when the
  /// report needs symbols the workload cannot provide.
  [[nodiscard]] static Expected<GuidanceSeed> build(const Workload& workload,
                                                    const flexmalloc::ParsedReport& report);

  /// True when the report maps `site` to the tier named `tier_name`.
  [[nodiscard]] bool site_maps_to(std::size_t site, const std::string& tier_name) const {
    return site < site_tier.size() && site_tier[site] == tier_name;
  }
};

}  // namespace ecohmem::runtime
