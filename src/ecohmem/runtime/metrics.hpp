#pragma once

/// \file metrics.hpp
/// Results of one simulated run, plus the shared counters the parallel
/// replay engine's workers tally into.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "ecohmem/common/units.hpp"
#include "ecohmem/memsim/bandwidth_meter.hpp"

namespace ecohmem::runtime {

/// Shared mutable tallies of a concurrent replay. Replay workers bump
/// these from many threads at once; relaxed atomics suffice because each
/// counter is an independent sum read only after the workers have been
/// joined (see docs/threading.md). Totals are interleaving-independent —
/// the same ops give the same counts at any thread count.
struct ConcurrentReplayCounters {
  std::atomic<std::uint64_t> allocations{0};  ///< completed alloc + realloc ops
  std::atomic<std::uint64_t> frees{0};        ///< completed free ops
  std::atomic<std::uint64_t> next_uid{1};     ///< allocation-uid source
};

/// Per-function aggregates (Table VII rows).
struct FunctionMetrics {
  std::string function;
  double instructions = 0.0;
  double cycles = 0.0;
  double load_misses = 0.0;
  double latency_weight_sum = 0.0;  ///< sum of misses * per-miss latency

  [[nodiscard]] double ipc() const { return cycles > 0.0 ? instructions / cycles : 0.0; }
  [[nodiscard]] double avg_load_latency_ns() const {
    return load_misses > 0.0 ? latency_weight_sum / load_misses : 0.0;
  }
  /// Latency in core cycles, the unit Table VII uses.
  [[nodiscard]] double avg_load_latency_cycles() const {
    return ns_to_cycles(avg_load_latency_ns());
  }
};

/// Per-tier traffic totals.
struct TierTraffic {
  std::string tier;
  double read_bytes = 0.0;
  double write_bytes = 0.0;
};

/// One applied online migration (docs/online.md). The event log is what
/// the determinism tests compare bit-for-bit: same seed + same policy +
/// same workload must reproduce the exact same sequence.
struct MigrationRecord {
  Ns at = 0;                  ///< simulated time the move started
  std::size_t object = 0;     ///< workload object id
  std::size_t from_tier = 0;  ///< engine tier indices
  std::size_t to_tier = 0;
  Bytes bytes = 0;            ///< bytes moved (the range length for partial moves)
  Bytes offset = 0;           ///< object-relative start of the moved range
  bool partial = false;       ///< true for a sub-range (page-granular) move

  friend bool operator==(const MigrationRecord&, const MigrationRecord&) = default;
};

/// Everything one replayed run produced: timing breakdown, per-function
/// aggregates, per-tier traffic and bandwidth timelines, and allocator
/// counters. Plain data — produced by one engine run, then read-only.
struct RunMetrics {
  std::string workload;  ///< workload name
  std::string mode;      ///< execution-mode name ("app-direct", ...)

  Ns total_ns = 0;
  double compute_ns = 0.0;
  double load_stall_ns = 0.0;
  double store_stall_ns = 0.0;
  double bw_limited_extra_ns = 0.0;  ///< time added by bandwidth ceilings
  double alloc_overhead_ns = 0.0;    ///< interposition/matching cost

  double total_load_misses = 0.0;
  double total_store_misses = 0.0;

  /// Fraction of time stalled on memory — the "memory bound pipeline
  /// slots" proxy of Table VI.
  [[nodiscard]] double memory_bound_fraction() const {
    const double t = static_cast<double>(total_ns);
    return t > 0.0 ? (load_stall_ns + store_stall_ns + bw_limited_extra_ns) / t : 0.0;
  }

  /// Aggregate DRAM-cache hit ratio; meaningful in memory mode only.
  double dram_cache_hit_ratio = 0.0;

  std::vector<FunctionMetrics> functions;
  std::vector<TierTraffic> tier_traffic;
  std::vector<std::vector<memsim::BandwidthPoint>> tier_bw;  ///< per tier timeline

  std::uint64_t allocations = 0;  ///< completed alloc + realloc ops
  std::uint64_t frees = 0;        ///< completed free ops (realloc's internal free not counted)
  std::uint64_t oom_redirects = 0;

  /// Online placement counters (zero unless EngineOptions.online_policy
  /// is set; docs/online.md). Every scheduled move is either applied or
  /// cancelled: `migrations_scheduled == migrations + migrations_cancelled`.
  std::uint64_t migrations_scheduled = 0;
  std::uint64_t migrations = 0;            ///< applied moves
  std::uint64_t migrations_partial = 0;    ///< applied moves that were sub-range (page-granular)
  std::uint64_t migrations_cancelled = 0;  ///< object died/realloc'd/target full/run ended
  Bytes migrated_bytes = 0;                ///< padded bytes moved
  double migration_ns = 0.0;               ///< time charged into total_ns for moves
  std::vector<MigrationRecord> migration_events;

  /// Speedup of this run relative to `baseline` (>1 = this run faster).
  [[nodiscard]] double speedup_over(const RunMetrics& baseline) const {
    return total_ns > 0 ? static_cast<double>(baseline.total_ns) / static_cast<double>(total_ns)
                        : 0.0;
  }

  [[nodiscard]] const FunctionMetrics* find_function(std::string_view name) const {
    for (const auto& f : functions) {
      if (f.function == name) return &f;
    }
    return nullptr;
  }
};

}  // namespace ecohmem::runtime
