#include "ecohmem/runtime/guidance.hpp"

#include <utility>

#include "ecohmem/flexmalloc/matcher.hpp"

namespace ecohmem::runtime {

Expected<GuidanceSeed> GuidanceSeed::build(const Workload& workload,
                                           const flexmalloc::ParsedReport& report) {
  auto matcher = flexmalloc::CallStackMatcher::create(report, workload.symbols.get());
  if (!matcher) return unexpected("guidance report: " + matcher.error());

  GuidanceSeed seed;
  seed.site_tier.resize(workload.sites.size());
  for (std::size_t s = 0; s < workload.sites.size(); ++s) {
    const flexmalloc::MatchResult m = matcher->match(workload.sites[s].stack);
    if (!m.matched()) continue;
    seed.site_tier[s] = *m.tier;
    ++seed.matched_sites;
  }
  return seed;
}

}  // namespace ecohmem::runtime
