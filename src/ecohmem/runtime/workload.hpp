#pragma once

/// \file workload.hpp
/// Phase-based workload models — the stand-in for the paper's application
/// binaries (DESIGN.md §2).
///
/// A workload is a synthetic but structurally faithful description of an
/// application run:
///   - a module table + symbol table (its "binary" and debug info),
///   - allocation sites with realistic call stacks,
///   - objects (logical buffers) created at those sites,
///   - kernels (named functions) describing per-object access intensity,
///   - a step list: the unrolled sequence of allocs, frees and kernel
///     executions (iterations are unrolled by the builders in apps/).
///
/// The execution engine replays the steps under a placement mode; the
/// profiler observes the replay exactly as Extrae observes a real run.
/// All quantities are node-level aggregates across MPI ranks.

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "ecohmem/bom/frame.hpp"
#include "ecohmem/bom/module_table.hpp"
#include "ecohmem/bom/symbols.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::runtime {

/// Coarse access pattern of an object (drives model knob defaults).
enum class AccessPattern { kSequential, kStrided, kRandom, kPointerChase };

/// An allocation site in the workload's binary.
struct SiteSpec {
  std::string label;      ///< human label, e.g. "AllocateElemPersistent"
  bom::CallStack stack;   ///< BOM call stack within the workload's modules
};

/// A logical buffer. At most one instance of an object is live at a time;
/// sites with several simultaneous buffers use several objects.
struct ObjectSpec {
  std::size_t site = 0;
  Bytes size = 0;
  AccessPattern pattern = AccessPattern::kSequential;

  /// [0,1] LLC temporal locality (memsim::KernelObjectAccess::friendliness).
  double llc_friendliness = 0.0;

  /// [0,1] DRAM-cache (memory mode) friendliness of this object's pages.
  double dram_cache_locality = 0.7;

  /// [0,1] fraction of demand misses hidden by hardware prefetch
  /// (memsim::KernelObjectAccess::prefetch_efficiency). Defaults follow
  /// the access pattern via `default_prefetch_efficiency`.
  double prefetch_efficiency = 0.0;
};

/// Typical prefetcher coverage per pattern on PMem-class latencies.
[[nodiscard]] constexpr double default_prefetch_efficiency(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::kSequential: return 0.65;
    case AccessPattern::kStrided: return 0.45;
    case AccessPattern::kRandom: return 0.05;
    case AccessPattern::kPointerChase: return 0.0;
  }
  return 0.0;
}

/// Per-kernel access intensity against one object.
struct KernelAccess {
  std::size_t object = 0;
  double llc_loads = 0.0;   ///< load requests reaching the LLC per execution
  double llc_stores = 0.0;  ///< store/writeback requests reaching the LLC
  double footprint = 0.0;   ///< bytes touched per execution (<= object size)

  /// Store *instructions* issued to the object, the stream
  /// MEM_INST_RETIRED.ALL_STORES samples (§V). Unlike `llc_stores` this
  /// includes stores absorbed by the core caches — the reason the paper
  /// calls its store heuristic imprecise. 0 = derive from `llc_stores`.
  double store_instructions = 0.0;
};

/// A named compute kernel (the functions of Table VII).
struct KernelSpec {
  std::string function;
  double instructions = 0.0;     ///< retired instructions per execution
  double compute_cycles = 0.0;   ///< cycles not stalled on memory
  std::vector<KernelAccess> accesses;
};

struct AllocOp {
  std::size_t object = 0;
};
struct FreeOp {
  std::size_t object = 0;
};
/// Resize a live object in place (the realloc the paper's interposer
/// intercepts): the instance keeps its identity but moves to a fresh
/// address of `new_size` bytes in the tier its call stack maps to.
struct ReallocOp {
  std::size_t object = 0;
  Bytes new_size = 0;
};
struct KernelOp {
  std::size_t kernel = 0;
};
using Step = std::variant<AllocOp, FreeOp, ReallocOp, KernelOp>;

struct Workload {
  std::string name;
  int ranks = 1;
  int threads = 1;

  /// The binary: shared so that call stacks and symbol pointers stay
  /// valid when the workload is moved around.
  std::shared_ptr<bom::ModuleTable> modules;
  std::shared_ptr<bom::SymbolTable> symbols;

  std::vector<SiteSpec> sites;
  std::vector<ObjectSpec> objects;
  std::vector<KernelSpec> kernels;
  std::vector<Step> steps;

  /// Non-heap memory (stacks, statics, OS) that competes for DRAM; the
  /// reason the paper caps the Advisor's DRAM limit at 12 of 16 GB.
  Bytes static_footprint = 0;

  /// Effective memory-level parallelism: outstanding-miss overlap divisor
  /// applied to miss latency when computing stall time.
  double mlp = 8.0;

  /// Peak simultaneous heap bytes (filled by builders; engine validates).
  Bytes heap_high_water = 0;
};

/// Helper used by the app builders to assemble workloads.
class WorkloadBuilder {
 public:
  explicit WorkloadBuilder(std::string name);

  WorkloadBuilder& ranks(int r);
  WorkloadBuilder& threads(int t);
  WorkloadBuilder& mlp(double m);
  WorkloadBuilder& static_footprint(Bytes b);

  /// Registers a module in the workload's binary.
  bom::ModuleId add_module(const std::string& module_name, Bytes text_size,
                           Bytes debug_info_size);

  /// Adds an allocation site with a call stack through `module`; frames
  /// are derived deterministically from the label, and a matching
  /// file:line entry is added to the symbol table.
  std::size_t add_site(bom::ModuleId module, const std::string& label,
                       const std::string& file, std::uint32_t line, std::size_t depth = 3);

  /// `prefetch_efficiency` < 0 selects the pattern default.
  std::size_t add_object(std::size_t site, Bytes size, AccessPattern pattern,
                         double llc_friendliness, double dram_cache_locality,
                         double prefetch_efficiency = -1.0);

  std::size_t add_kernel(std::string function, double instructions, double compute_cycles,
                         std::vector<KernelAccess> accesses);

  WorkloadBuilder& alloc(std::size_t object);
  WorkloadBuilder& free(std::size_t object);
  WorkloadBuilder& realloc(std::size_t object, Bytes new_size);
  WorkloadBuilder& run_kernel(std::size_t kernel);

  /// Finalizes: assigns module bases (no ASLR by default), computes the
  /// heap high-water mark, validates step consistency.
  [[nodiscard]] Workload build();

 private:
  Workload w_;
  std::uint64_t next_offset_ = 0x1000;
};

}  // namespace ecohmem::runtime
