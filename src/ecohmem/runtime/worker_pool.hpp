#pragma once

/// \file worker_pool.hpp
/// A small fork-join worker pool for the parallel replay engine.
///
/// The engine's parallel path alternates between fan-out phases (replay
/// an allocation batch, bin a kernel's bandwidth) and serial phases (the
/// kernel fixed point), so the pool offers exactly one primitive:
/// `run(fn)` executes `fn(worker_index)` on every worker and returns when
/// all of them have finished. Workers are long-lived — one spawn per
/// run, not per batch.
///
/// Thread safety: `run` must be called from one coordinating thread at a
/// time (the engine thread). The pool uses a mutex + condition variables
/// only for phase hand-off; work partitioning inside `fn` is the
/// caller's job (the engine shards by object id or item index).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecohmem::runtime {

/// Fixed-size fork-join pool; see the file comment for the usage model.
class WorkerPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit WorkerPool(std::size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++generation_;
    }
    work_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  /// Number of workers.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs `task(worker_index)` on every worker; blocks until all return.
  /// `task` must partition its own work by the given index (0..size()-1).
  void run(const std::function<void(std::size_t)>& task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_ = &task;
      pending_ = workers_.size();
      ++generation_;
    }
    work_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    task_ = nullptr;
  }

 private:
  void worker_loop(std::size_t index) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        task = task_;
      }
      if (task != nullptr) (*task)(index);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;  // under mu_
  std::uint64_t generation_ = 0;                            // under mu_
  std::size_t pending_ = 0;                                 // under mu_
  bool stop_ = false;                                       // under mu_
};

}  // namespace ecohmem::runtime
