#pragma once

/// \file worker_pool.hpp
/// A small fork-join worker pool for the parallel replay engine.
///
/// The engine's parallel path alternates between fan-out phases (replay
/// an allocation batch, bin a kernel's bandwidth) and serial phases (the
/// kernel fixed point), so the pool offers exactly one primitive:
/// `run(fn)` executes `fn(worker_index)` on every worker and returns when
/// all of them have finished. Workers are long-lived — one spawn per
/// run, not per batch.
///
/// Thread safety: `run` must be called from one coordinating thread at a
/// time (the engine thread). The pool uses a ranked mutex + condition
/// variables only for phase hand-off (lock-rank table:
/// docs/threading.md); work partitioning inside `fn` is the caller's job
/// (the engine shards by object id or item index).
///
/// Exceptions: a task that throws on a worker does not crash or deadlock
/// the pool. The first exception (by worker completion order) is
/// captured and rethrown from `run` on the coordinating thread after
/// every worker has finished its slice; the pool stays usable for
/// subsequent `run` calls and joins cleanly on destruction.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "ecohmem/common/lockdep.hpp"
#include "ecohmem/common/thread_annotations.hpp"

namespace ecohmem::runtime {

/// Fixed-size fork-join pool; see the file comment for the usage model.
class WorkerPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit WorkerPool(std::size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      common::ScopedLock lock(mu_);
      stop_ = true;
      ++generation_;
    }
    work_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  /// Number of workers.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs `task(worker_index)` on every worker; blocks until all return.
  /// `task` must partition its own work by the given index (0..size()-1).
  /// If any worker's slice threw, the first captured exception is
  /// rethrown here once every worker has finished (so no worker is still
  /// touching caller state when the exception propagates).
  void run(const std::function<void(std::size_t)>& task) {
    {
      common::ScopedLock lock(mu_);
      task_ = &task;
      pending_ = workers_.size();
      first_error_ = nullptr;
      ++generation_;
    }
    work_cv_.notify_all();
    std::exception_ptr error;
    {
      common::ScopedLock lock(mu_);
      // condition_variable_any drives mu_ directly (RankedMutex is
      // BasicLockable), so lockdep sees every release/reacquire of the
      // wait loop. The predicate asserts the capability for the static
      // analysis — the wait contract guarantees the lock is held.
      done_cv_.wait(mu_, [this] {
        mu_.assert_held();
        return pending_ == 0;
      });
      task_ = nullptr;
      error = first_error_;
      first_error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void worker_loop(std::size_t index) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* task = nullptr;
      {
        common::ScopedLock lock(mu_);
        work_cv_.wait(mu_, [&, this] {
          mu_.assert_held();
          return stop_ || generation_ != seen;
        });
        if (stop_) return;
        seen = generation_;
        task = task_;
      }
      std::exception_ptr error;
      if (task != nullptr) {
        try {
          (*task)(index);
        } catch (...) {
          error = std::current_exception();
        }
      }
      {
        common::ScopedLock lock(mu_);
        if (error && !first_error_) first_error_ = error;
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::vector<std::thread> workers_;
  /// Phase hand-off lock (rank table: docs/threading.md). Never held
  /// while a task runs, so tasks may take any ranked lock.
  common::RankedMutex mu_{common::lockdep::LockRank::kWorkerPool, "worker_pool"};
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  const std::function<void(std::size_t)>* task_ ECOHMEM_GUARDED_BY(mu_) = nullptr;
  std::uint64_t generation_ ECOHMEM_GUARDED_BY(mu_) = 0;
  std::size_t pending_ ECOHMEM_GUARDED_BY(mu_) = 0;
  bool stop_ ECOHMEM_GUARDED_BY(mu_) = false;
  /// First exception any worker's slice threw this phase.
  std::exception_ptr first_error_ ECOHMEM_GUARDED_BY(mu_);
};

}  // namespace ecohmem::runtime
