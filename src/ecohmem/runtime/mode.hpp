#pragma once

/// \file mode.hpp
/// Execution modes: how allocations map to tiers and how LLC misses turn
/// into tier traffic and latency.
///
/// Modes provided here:
///   - AppDirectMode: app-direct placement through FlexMalloc (the
///     ecoHMEM production path; also used for manual/ProfDP placements),
///   - MemoryModeExec: the memory-mode baseline (DRAM as cache of PMem),
///   - FixedTierMode: everything in one tier (ProfDP differential runs).
/// The kernel-tiering baseline lives in baselines/ as another subclass.
///
/// Thread safety (docs/threading.md): the parallel replay engine calls
/// `on_alloc`/`on_free` from multiple worker threads at once, but only
/// for modes that report `concurrent_alloc_safe() == true`. Everything
/// else — `resolve`, `after_kernel`, `take_alloc_overhead_ns`, the
/// accessors — is engine-thread-only and needs no synchronization.

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/lockdep.hpp"
#include "ecohmem/flexmalloc/flexmalloc.hpp"
#include "ecohmem/memsim/analytic_cache.hpp"
#include "ecohmem/memsim/dram_cache.hpp"
#include "ecohmem/memsim/tier.hpp"
#include "ecohmem/runtime/workload.hpp"

namespace ecohmem::runtime {

/// A live object as seen by a mode during traffic resolution.
struct LiveObjectRef {
  std::size_t object = 0;
  const ObjectSpec* spec = nullptr;
  std::uint64_t address = 0;
  double kernel_footprint = 0.0;  ///< bytes this kernel touches
};

/// How one object's misses turn into tier traffic and load latency:
///   load_latency = fixed_latency_ns + sum_t latency_share[t] * read_lat(t)
struct ObjectTraffic {
  std::vector<double> read_bytes;     ///< per tier
  std::vector<double> write_bytes;    ///< per tier
  std::vector<double> latency_share;  ///< per tier, weights of read latency
  double fixed_latency_ns = 0.0;
};

/// Result of one attempted object migration (`migrate_object` /
/// `migrate_object_range`).
struct ObjectMigration {
  bool moved = false;          ///< false = target tier had no capacity
  std::uint64_t address = 0;   ///< new address when moved, else the original
  std::size_t from_tier = 0;   ///< engine tier the object came from
  Bytes bytes = 0;             ///< block bytes moved (padded size)
  Bytes offset = 0;            ///< object-relative start of the moved range
  bool partial = false;        ///< true for a sub-range (page-granular) move
};

class ExecutionMode {
 public:
  explicit ExecutionMode(const memsim::MemorySystem* system) : system_(system) {}
  virtual ~ExecutionMode() = default;

  ExecutionMode(const ExecutionMode&) = delete;
  ExecutionMode& operator=(const ExecutionMode&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether `on_alloc`/`on_free` may be called from multiple replay
  /// workers concurrently (always for distinct objects — the engine
  /// shards the op stream by object id). Modes that keep unsynchronized
  /// cross-object allocation state must leave this false; the parallel
  /// engine refuses to run them.
  [[nodiscard]] virtual bool concurrent_alloc_safe() const { return false; }

  /// Called once from the engine thread before the first step of a
  /// replay. Concurrent-safe modes pre-size per-object state here so the
  /// allocation hot path never grows a shared container.
  virtual void on_replay_begin(const Workload& workload) { (void)workload; }

  /// Capacity guard for parallel replay: true when concurrently
  /// replaying a batch that allocates at most `alloc_ops` blocks
  /// totalling `total_bytes` requested bytes cannot place any object
  /// differently than serial replay would. Modes whose placement never
  /// depends on remaining tier capacity keep the default `true`;
  /// AppDirectMode answers via FlexMalloc's tier headroom, because its
  /// OOM-redirect path makes placement order-dependent once a tier can
  /// fill up mid-batch. When this returns false the engine replays the
  /// batch in program order on the engine thread instead of fanning it
  /// out (docs/threading.md). Engine-thread-only, called between
  /// fork/join phases (no worker is allocating while it runs).
  [[nodiscard]] virtual bool batch_placement_order_free(Bytes total_bytes,
                                                        std::uint64_t alloc_ops) const {
    (void)total_bytes;
    (void)alloc_ops;
    return true;
  }

  /// Places a new object; returns its address. May run on any replay
  /// worker (see `concurrent_alloc_safe`).
  [[nodiscard]] virtual Expected<std::uint64_t> on_alloc(std::size_t object,
                                                         const ObjectSpec& spec,
                                                         const SiteSpec& site, Bytes size) = 0;

  /// Releases an object's storage. Same threading contract as `on_alloc`.
  [[nodiscard]] virtual Status on_free(std::size_t object, std::uint64_t address) = 0;

  /// Converts per-object misses into per-tier traffic + latency recipe.
  /// `out` is sized by the caller to `objects.size()`, with per-tier
  /// vectors sized to the tier count and zeroed. Modes may append extra
  /// entries beyond `objects.size()` for background traffic (e.g. page
  /// migration); such entries contribute bandwidth but no load stalls.
  /// Engine-thread-only (kernels are replayed serially).
  virtual void resolve(const std::vector<LiveObjectRef>& objects,
                       const std::vector<memsim::KernelObjectMisses>& misses,
                       std::vector<ObjectTraffic>& out) = 0;

  /// Incremental interposition overhead since the last call (ns).
  /// Engine-thread-only; the parallel engine calls it once per flushed
  /// allocation batch instead of once per allocation — the telescoping
  /// sum is the same total.
  [[nodiscard]] virtual double take_alloc_overhead_ns() { return 0.0; }

  /// Aggregate DRAM-cache hit ratio so far (memory mode only).
  [[nodiscard]] virtual double dram_cache_hit_ratio() const { return 0.0; }

  /// Called after each kernel with its resolved duration; migration-based
  /// modes react here. Engine-thread-only.
  virtual void after_kernel(Ns start, Ns end,
                            const std::vector<LiveObjectRef>& objects,
                            const std::vector<memsim::KernelObjectMisses>& misses) {
    (void)start;
    (void)end;
    (void)objects;
    (void)misses;
  }

  /// OOM fallback redirections (AppDirect reports FlexMalloc's counter).
  [[nodiscard]] virtual std::uint64_t oom_redirects() const { return 0; }

  /// --- Object migration (the online placement subsystem, docs/online.md).
  /// Modes that can move a live object between tiers opt in by
  /// overriding all four members; the engine refuses to run an online
  /// policy against a mode that keeps the default `false`. All four are
  /// engine-thread-only (migrations happen at kernel boundaries, which
  /// are barriers).

  /// Whether `migrate_object` is implemented.
  [[nodiscard]] virtual bool supports_object_migration() const { return false; }

  /// Moves the live object's block at `address` into engine tier
  /// `target_tier`. `moved == false` means the target had no capacity
  /// and the object is untouched (not an error); errors are reserved
  /// for unknown addresses/tiers.
  [[nodiscard]] virtual Expected<ObjectMigration> migrate_object(std::size_t object,
                                                                 std::uint64_t address,
                                                                 std::size_t target_tier);

  /// Sub-range (page-granular) form of `migrate_object`: moves only
  /// `[offset, offset + length)` of the object — always the prefix of
  /// its not-yet-migrated remainder, so `offset` must equal the bytes
  /// already resident in `target_tier`. A `length` reaching the
  /// object's end completes the migration and flips `object_tier` to
  /// `target_tier`. Modes that keep `supports_object_migration` false,
  /// or that cannot split blocks, return an error (the engine only
  /// calls this for modes that support it). Engine-thread-only.
  [[nodiscard]] virtual Expected<ObjectMigration> migrate_object_range(std::size_t object,
                                                                       std::uint64_t address,
                                                                       std::size_t target_tier,
                                                                       Bytes offset,
                                                                       Bytes length);

  /// Engine tier the live object currently occupies.
  [[nodiscard]] virtual Expected<std::size_t> object_tier(std::size_t object) const;

  /// Bytes of `object` resident in engine tier `tier` through *partial*
  /// (sub-range) migrations only — 0 for objects that have never been
  /// split, whatever tier they live in. The planner adds this to its
  /// whole-object view to find each huge object's promotion remainder.
  [[nodiscard]] virtual Bytes partial_resident_bytes(std::size_t object,
                                                     std::size_t tier) const {
    (void)object;
    (void)tier;
    return 0;
  }

  /// Free capacity migrations may grow engine tier `tier` by.
  [[nodiscard]] virtual Bytes migration_headroom(std::size_t tier) const {
    (void)tier;
    return 0;
  }

  [[nodiscard]] const memsim::MemorySystem& system() const { return *system_; }

 protected:
  const memsim::MemorySystem* system_;
};

/// App-direct placement through a FlexMalloc instance (which owns the
/// matching against an Advisor report).
///
/// Concurrent-alloc-safe: FlexMalloc is internally synchronized, and the
/// per-object tier table is pre-sized in `on_replay_begin` so workers
/// only ever write distinct elements.
class AppDirectMode final : public ExecutionMode {
 public:
  AppDirectMode(const memsim::MemorySystem* system, flexmalloc::FlexMalloc* fm);

  [[nodiscard]] std::string name() const override { return "app-direct"; }
  [[nodiscard]] bool concurrent_alloc_safe() const override { return true; }
  void on_replay_begin(const Workload& workload) override;
  [[nodiscard]] bool batch_placement_order_free(Bytes total_bytes,
                                                std::uint64_t alloc_ops) const override;
  [[nodiscard]] Expected<std::uint64_t> on_alloc(std::size_t object, const ObjectSpec& spec,
                                                 const SiteSpec& site, Bytes size) override;
  [[nodiscard]] Status on_free(std::size_t object, std::uint64_t address) override;
  void resolve(const std::vector<LiveObjectRef>& objects,
               const std::vector<memsim::KernelObjectMisses>& misses,
               std::vector<ObjectTraffic>& out) override;
  [[nodiscard]] double take_alloc_overhead_ns() override;
  [[nodiscard]] std::uint64_t oom_redirects() const override;

  /// Object migration through FlexMalloc's tier heaps (docs/online.md).
  [[nodiscard]] bool supports_object_migration() const override { return true; }
  [[nodiscard]] Expected<ObjectMigration> migrate_object(std::size_t object,
                                                         std::uint64_t address,
                                                         std::size_t target_tier) override;
  [[nodiscard]] Expected<ObjectMigration> migrate_object_range(std::size_t object,
                                                               std::uint64_t address,
                                                               std::size_t target_tier,
                                                               Bytes offset,
                                                               Bytes length) override;
  [[nodiscard]] Expected<std::size_t> object_tier(std::size_t object) const override;
  [[nodiscard]] Bytes partial_resident_bytes(std::size_t object,
                                             std::size_t tier) const override;
  [[nodiscard]] Bytes migration_headroom(std::size_t tier) const override;

  /// Tier the given workload object currently lives in.
  [[nodiscard]] Expected<std::size_t> tier_of(std::size_t object) const;

 private:
  /// One contiguous piece of a partially migrated object, in
  /// object-offset order. `length` is in object bytes; the last part
  /// additionally owns the home block's alignment padding.
  struct Fragment {
    std::uint64_t address = 0;
    Bytes offset = 0;             ///< object-relative start
    Bytes length = 0;             ///< object bytes this part covers
    std::size_t engine_tier = 0;  ///< engine tier the part resides in
  };

  /// FlexMalloc tier index backing engine tier `tier`, if any.
  [[nodiscard]] Expected<std::size_t> fm_tier_for(std::size_t tier) const;

  /// Fragment list of `object`, or nullptr when it was never split.
  /// Engine-thread-only (migrations and resolve happen at kernel
  /// boundaries); `fragments_mu_` covers the concurrent `on_free` path.
  [[nodiscard]] const std::vector<Fragment>* fragments_of(std::size_t object) const;

  flexmalloc::FlexMalloc* fm_;
  std::vector<std::size_t> object_tier_;   // engine tier index per object
  std::vector<std::size_t> fm_to_engine_;  // FlexMalloc tier idx -> engine tier idx
  double overhead_taken_ns_ = 0.0;

  /// Objects split by sub-range migration -> their fragments. Mutated by
  /// the engine thread at kernel boundaries (migrations) and by replay
  /// workers on free; the leaf mutex makes the worker-side lookup/erase
  /// safe. Entries are extracted under the lock and the heap calls run
  /// outside it, preserving the leaf contract (docs/threading.md).
  mutable common::RankedMutex fragments_mu_{common::lockdep::LockRank::kModeFragments,
                                            "mode_fragments"};
  std::unordered_map<std::size_t, std::vector<Fragment>> fragments_
      ECOHMEM_GUARDED_BY(fragments_mu_);
  /// Relaxed mirror of `!fragments_.empty()`: lets the per-object
  /// resolve lookup skip the lock entirely when no object was ever
  /// split (every run without page-granular migration).
  mutable std::atomic<bool> any_fragments_{false};
};

/// Memory mode: DRAM caches the PMem address space (§II).
class MemoryModeExec final : public ExecutionMode {
 public:
  /// `dram_tier`/`pmem_tier`: engine tier indices of the cache and the
  /// backing store.
  MemoryModeExec(const memsim::MemorySystem* system, std::size_t dram_tier,
                 std::size_t pmem_tier, memsim::DramCacheModel model);

  [[nodiscard]] std::string name() const override { return "memory-mode"; }
  [[nodiscard]] bool concurrent_alloc_safe() const override { return true; }
  [[nodiscard]] Expected<std::uint64_t> on_alloc(std::size_t object, const ObjectSpec& spec,
                                                 const SiteSpec& site, Bytes size) override;
  [[nodiscard]] Status on_free(std::size_t object, std::uint64_t address) override;
  void resolve(const std::vector<LiveObjectRef>& objects,
               const std::vector<memsim::KernelObjectMisses>& misses,
               std::vector<ObjectTraffic>& out) override;
  [[nodiscard]] double dram_cache_hit_ratio() const override;

 private:
  std::size_t dram_tier_;
  std::size_t pmem_tier_;
  memsim::DramCacheModel model_;
  /// Bump address source; atomic so concurrent on_alloc never hands out
  /// overlapping ranges (resolve never looks at addresses, so the
  /// interleaving-dependent values are harmless).
  std::atomic<std::uint64_t> next_address_{1ull << 40};
  double hits_weighted_ = 0.0;     // engine-thread-only (resolve)
  double requests_weighted_ = 0.0;  // engine-thread-only (resolve)
};

/// Everything in one tier (ProfDP differential profiling runs).
class FixedTierMode final : public ExecutionMode {
 public:
  FixedTierMode(const memsim::MemorySystem* system, std::size_t tier);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool concurrent_alloc_safe() const override { return true; }
  [[nodiscard]] Expected<std::uint64_t> on_alloc(std::size_t object, const ObjectSpec& spec,
                                                 const SiteSpec& site, Bytes size) override;
  [[nodiscard]] Status on_free(std::size_t object, std::uint64_t address) override;
  void resolve(const std::vector<LiveObjectRef>& objects,
               const std::vector<memsim::KernelObjectMisses>& misses,
               std::vector<ObjectTraffic>& out) override;

 private:
  std::size_t tier_;
  std::atomic<std::uint64_t> next_address_{1ull << 40};  // see MemoryModeExec
};

}  // namespace ecohmem::runtime
