#include "ecohmem/runtime/mode.hpp"

#include <algorithm>

namespace ecohmem::runtime {

// Default migration surface: modes without object-migration support
// answer every call with a clear error (the engine checks
// `supports_object_migration` first, so reaching these is a bug).

Expected<ObjectMigration> ExecutionMode::migrate_object(std::size_t object,
                                                        std::uint64_t address,
                                                        std::size_t target_tier) {
  (void)object;
  (void)address;
  (void)target_tier;
  return unexpected("execution mode '" + name() + "' does not support object migration");
}

Expected<ObjectMigration> ExecutionMode::migrate_object_range(std::size_t object,
                                                              std::uint64_t address,
                                                              std::size_t target_tier,
                                                              Bytes offset, Bytes length) {
  (void)object;
  (void)address;
  (void)target_tier;
  (void)offset;
  (void)length;
  return unexpected("execution mode '" + name() + "' does not support sub-range migration");
}

Expected<std::size_t> ExecutionMode::object_tier(std::size_t object) const {
  (void)object;
  return unexpected("execution mode '" + name() + "' does not track per-object tiers");
}

// ---------------------------------------------------------------- AppDirect

AppDirectMode::AppDirectMode(const memsim::MemorySystem* system, flexmalloc::FlexMalloc* fm)
    : ExecutionMode(system), fm_(fm) {
  // FlexMalloc tier order may differ from the engine's; build the map once.
  fm_to_engine_.resize(fm_->tier_count(), 0);
  for (std::size_t i = 0; i < fm_->tier_count(); ++i) {
    if (auto idx = system_->tier_index(fm_->tier_name(i))) fm_to_engine_[i] = *idx;
  }
}

void AppDirectMode::on_replay_begin(const Workload& workload) {
  // Pre-size the tier table so concurrent on_alloc calls write distinct
  // elements and never race on a resize.
  if (object_tier_.size() < workload.objects.size()) {
    object_tier_.resize(workload.objects.size(), 0);
  }
}

bool AppDirectMode::batch_placement_order_free(Bytes total_bytes,
                                               std::uint64_t alloc_ops) const {
  return fm_->can_absorb(total_bytes, alloc_ops);
}

Expected<std::uint64_t> AppDirectMode::on_alloc(std::size_t object, const ObjectSpec& spec,
                                                const SiteSpec& site, Bytes size) {
  (void)spec;
  auto allocation = fm_->malloc(site.stack, size);
  if (!allocation) return unexpected(allocation.error());

  if (object_tier_.size() <= object) object_tier_.resize(object + 1, 0);
  object_tier_[object] = fm_to_engine_.at(allocation->tier_index);
  return allocation->address;
}

Status AppDirectMode::on_free(std::size_t object, std::uint64_t address) {
  // A sub-range-migrated object owns several blocks; extract its
  // fragment list under the leaf lock and free the blocks outside it
  // (free takes the per-tier heap locks).
  std::vector<Fragment> parts;
  if (any_fragments_.load(std::memory_order_relaxed)) {
    common::ScopedLock lock(fragments_mu_);
    if (const auto it = fragments_.find(object); it != fragments_.end()) {
      parts = std::move(it->second);
      fragments_.erase(it);
      if (fragments_.empty()) any_fragments_.store(false, std::memory_order_relaxed);
    }
  }
  if (parts.empty()) return fm_->free(address);
  for (const Fragment& part : parts) {
    if (Status s = fm_->free(part.address); !s) return s;
  }
  return {};
}

const std::vector<AppDirectMode::Fragment>* AppDirectMode::fragments_of(
    std::size_t object) const {
  // Fast path for the overwhelmingly common no-fragments case: resolve
  // calls this per object per kernel, and runs without page-granular
  // migration pay one relaxed load instead of a lock acquisition.
  if (!any_fragments_.load(std::memory_order_relaxed)) return nullptr;
  common::ScopedLock lock(fragments_mu_);
  const auto it = fragments_.find(object);
  return it != fragments_.end() ? &it->second : nullptr;
}

void AppDirectMode::resolve(const std::vector<LiveObjectRef>& objects,
                            const std::vector<memsim::KernelObjectMisses>& misses,
                            std::vector<ObjectTraffic>& out) {
  const double line = static_cast<double>(kCacheLine);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (const auto* parts = fragments_of(objects[i].object)) {
      // Split a fragmented object's traffic across its resident tiers
      // in proportion to bytes resident there — the model's view of an
      // object whose hot chunks moved while the rest stayed behind.
      Bytes total = 0;
      for (const Fragment& part : *parts) total += part.length;
      if (total == 0) continue;
      for (const Fragment& part : *parts) {
        const double frac = static_cast<double>(part.length) / static_cast<double>(total);
        out[i].read_bytes[part.engine_tier] += misses[i].read_lines() * line * frac;
        out[i].write_bytes[part.engine_tier] += misses[i].store_misses * line * frac;
        out[i].latency_share[part.engine_tier] += frac;
      }
      continue;
    }
    const std::size_t tier = object_tier_.at(objects[i].object);
    out[i].read_bytes[tier] += misses[i].read_lines() * line;
    out[i].write_bytes[tier] += misses[i].store_misses * line;
    out[i].latency_share[tier] = 1.0;
  }
}

double AppDirectMode::take_alloc_overhead_ns() {
  const double total = fm_->matching_cost_ns();
  const double delta = total - overhead_taken_ns_;
  overhead_taken_ns_ = total;
  return delta;
}

std::uint64_t AppDirectMode::oom_redirects() const { return fm_->oom_redirects(); }

Expected<std::size_t> AppDirectMode::fm_tier_for(std::size_t tier) const {
  for (std::size_t i = 0; i < fm_to_engine_.size(); ++i) {
    if (fm_to_engine_[i] == tier) return i;
  }
  return unexpected("no FlexMalloc heap backs engine tier " + std::to_string(tier));
}

Expected<ObjectMigration> AppDirectMode::migrate_object(std::size_t object,
                                                        std::uint64_t address,
                                                        std::size_t target_tier) {
  const auto fm_tier = fm_tier_for(target_tier);
  if (!fm_tier) return unexpected(fm_tier.error());

  // A fragmented object (earlier sub-range moves) migrates all of its
  // blocks. Whole-object moves only target uniform residents (the
  // planner's victims), so every part lives in the same source tier.
  // The fragment list is copied out of the leaf-locked map and written
  // back after the heap calls — migrations run at kernel boundaries, so
  // nothing mutates the entry in between (docs/threading.md).
  std::vector<Fragment> parts;
  {
    common::ScopedLock lock(fragments_mu_);
    if (const auto it = fragments_.find(object); it != fragments_.end()) parts = it->second;
  }
  if (!parts.empty()) {
    ObjectMigration m;
    m.from_tier = object_tier_.at(object);
    for (const Fragment& part : parts) {
      if (part.engine_tier != m.from_tier) {
        return unexpected("migrate_object: fragmented object " + std::to_string(object) +
                          " is not tier-uniform; sub-range moves must complete first");
      }
      m.bytes += part.length;
    }

    // All-or-nothing capacity pre-check so a refusal never leaves the
    // object half-moved; one alignment pad per part bounds the padding.
    const auto& heap = fm_->heap(*fm_tier);
    const Bytes used = heap.used();
    const Bytes free_bytes = heap.capacity() > used ? heap.capacity() - used : 0;
    Bytes needed = 0;
    for (const Fragment& part : parts) needed += part.length + heap.alignment();
    if (needed > free_bytes) {
      m.moved = false;
      m.address = address;
      return m;
    }
    for (Fragment& part : parts) {
      const auto outcome = fm_->migrate(part.address, *fm_tier);
      if (!outcome) return unexpected(outcome.error());
      if (!outcome->moved) {
        return unexpected("migrate_object: fragment move refused after capacity check");
      }
      part.address = outcome->address;
      part.engine_tier = target_tier;
    }
    object_tier_.at(object) = target_tier;
    m.moved = true;
    m.address = parts.front().address;
    {
      common::ScopedLock lock(fragments_mu_);
      fragments_[object] = std::move(parts);
    }
    return m;
  }

  const auto outcome = fm_->migrate(address, *fm_tier);
  if (!outcome) return unexpected(outcome.error());

  ObjectMigration m;
  m.moved = outcome->moved;
  m.address = outcome->address;
  m.from_tier = fm_to_engine_.at(outcome->from_tier);
  m.bytes = outcome->bytes;
  if (m.moved) object_tier_.at(object) = target_tier;
  return m;
}

Expected<ObjectMigration> AppDirectMode::migrate_object_range(std::size_t object,
                                                              std::uint64_t address,
                                                              std::size_t target_tier,
                                                              Bytes offset, Bytes length) {
  const auto fm_tier = fm_tier_for(target_tier);
  if (!fm_tier) return unexpected(fm_tier.error());
  if (length == 0) return unexpected("migrate_object_range: empty range");

  // Copy the fragment list out of the leaf-locked map; the heap calls
  // below must run with no ranked lock held. Safe because sub-range
  // migrations happen at kernel boundaries, when no worker runs.
  std::vector<Fragment> parts;
  bool had_entry = false;
  {
    common::ScopedLock lock(fragments_mu_);
    if (const auto it = fragments_.find(object); it != fragments_.end()) {
      parts = it->second;
      had_entry = true;
    }
  }

  // Locate the part containing the range: the home block for an unsplit
  // object, else the fragment covering `offset`.
  Fragment source;
  if (!had_entry) {
    source.address = address;
    source.offset = 0;
    source.length = offset + length;  // lower bound; fixed up below from the block
    source.engine_tier = object_tier_.at(object);
    const auto fm_source = fm_tier_for(source.engine_tier);
    if (!fm_source) return unexpected(fm_source.error());
    const auto block = fm_->heap(*fm_source).block_size(address);
    if (!block) return unexpected("migrate_object_range: " + block.error());
    source.length = *block;
  } else {
    bool found = false;
    for (const Fragment& part : parts) {
      if (offset >= part.offset && offset < part.offset + part.length) {
        source = part;
        found = true;
        break;
      }
    }
    if (!found) {
      return unexpected("migrate_object_range: offset " + std::to_string(offset) +
                        " is not inside any fragment of object " + std::to_string(object));
    }
  }
  if (source.engine_tier == target_tier) {
    return unexpected("migrate_object_range: range already resides in the target tier");
  }
  // The planner sizes ranges from byte totals, not fragment layout; a
  // request reaching past the source fragment (an object split, fully
  // promoted, displaced and now re-promoted) clamps to the fragment end —
  // the next evaluation continues from the advanced resident count.
  if (offset + length > source.offset + source.length) {
    length = source.offset + source.length - offset;
  }

  const Bytes block_rel = offset - source.offset;
  const bool whole_part = block_rel == 0 && length == source.length;
  const auto outcome = whole_part
                           ? fm_->migrate(source.address, *fm_tier)
                           : fm_->migrate(source.address, *fm_tier, block_rel, length);
  if (!outcome) return unexpected(outcome.error());

  ObjectMigration m;
  m.moved = outcome->moved;
  m.address = outcome->address;
  m.from_tier = source.engine_tier;
  m.bytes = outcome->bytes;
  m.offset = offset;
  m.partial = true;
  if (!m.moved) return m;

  // Rewrite the fragment list: the moved range becomes its own part,
  // remnants (if any) keep their home addresses.
  if (!had_entry) parts = {source};
  std::vector<Fragment> next;
  next.reserve(parts.size() + 2);
  bool uniform = true;
  for (const Fragment& part : parts) {
    if (part.offset != source.offset) {
      next.push_back(part);
      uniform = uniform && part.engine_tier == target_tier;
      continue;
    }
    if (block_rel > 0) {
      next.push_back(Fragment{part.address, part.offset, block_rel, part.engine_tier});
      uniform = false;
    }
    next.push_back(Fragment{outcome->address, offset, length, target_tier});
    if (block_rel + length < part.length) {
      next.push_back(Fragment{part.address + block_rel + length, offset + length,
                              part.length - block_rel - length, part.engine_tier});
      uniform = false;
    }
  }
  std::sort(next.begin(), next.end(),
            [](const Fragment& a, const Fragment& b) { return a.offset < b.offset; });
  {
    common::ScopedLock lock(fragments_mu_);
    fragments_[object] = std::move(next);
    any_fragments_.store(true, std::memory_order_relaxed);
  }

  // Once every byte lives in the target tier the object is an ordinary
  // resident again (e.g. eligible as a displacement victim).
  if (uniform) object_tier_.at(object) = target_tier;
  return m;
}

Bytes AppDirectMode::partial_resident_bytes(std::size_t object, std::size_t tier) const {
  common::ScopedLock lock(fragments_mu_);
  const auto it = fragments_.find(object);
  if (it == fragments_.end()) return 0;
  Bytes total = 0;
  for (const Fragment& part : it->second) {
    if (part.engine_tier == tier) total += part.length;
  }
  return total;
}

Expected<std::size_t> AppDirectMode::object_tier(std::size_t object) const {
  return tier_of(object);
}

Bytes AppDirectMode::migration_headroom(std::size_t tier) const {
  const auto fm_tier = fm_tier_for(tier);
  if (!fm_tier) return 0;
  const auto& heap = fm_->heap(*fm_tier);
  const Bytes capacity = heap.capacity();
  const Bytes used = heap.used();
  return capacity > used ? capacity - used : 0;
}

Expected<std::size_t> AppDirectMode::tier_of(std::size_t object) const {
  if (object >= object_tier_.size()) return unexpected("object never allocated");
  return object_tier_[object];
}

// --------------------------------------------------------------- MemoryMode

MemoryModeExec::MemoryModeExec(const memsim::MemorySystem* system, std::size_t dram_tier,
                               std::size_t pmem_tier, memsim::DramCacheModel model)
    : ExecutionMode(system), dram_tier_(dram_tier), pmem_tier_(pmem_tier), model_(model) {}

Expected<std::uint64_t> MemoryModeExec::on_alloc(std::size_t object, const ObjectSpec& spec,
                                                 const SiteSpec& site, Bytes size) {
  (void)object;
  (void)spec;
  (void)site;
  const std::uint64_t span = (size + kCacheLine - 1) / kCacheLine * kCacheLine;
  return next_address_.fetch_add(span, std::memory_order_relaxed);
}

Status MemoryModeExec::on_free(std::size_t object, std::uint64_t address) {
  (void)object;
  (void)address;
  return {};
}

void MemoryModeExec::resolve(const std::vector<LiveObjectRef>& objects,
                             const std::vector<memsim::KernelObjectMisses>& misses,
                             std::vector<ObjectTraffic>& out) {
  std::vector<memsim::DramCacheTraffic> traffic(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    traffic[i].load_misses = misses[i].read_lines();
    traffic[i].store_misses = misses[i].store_misses;
    traffic[i].footprint = objects[i].kernel_footprint;
    traffic[i].locality = objects[i].spec->dram_cache_locality;
  }
  const memsim::DramCacheOutcome outcome = model_.evaluate(traffic);

  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto& o = outcome.per_object[i];
    out[i].read_bytes[dram_tier_] += o.dram_read_bytes;
    out[i].write_bytes[dram_tier_] += o.dram_write_bytes;
    out[i].read_bytes[pmem_tier_] += o.pmem_read_bytes;
    out[i].write_bytes[pmem_tier_] += o.pmem_write_bytes;
    out[i].latency_share[dram_tier_] = o.hit_ratio;
    out[i].latency_share[pmem_tier_] = 1.0 - o.hit_ratio;
    out[i].fixed_latency_ns = (1.0 - o.hit_ratio) * model_.miss_overhead_ns();

    const double requests = misses[i].load_misses + misses[i].store_misses;
    hits_weighted_ += o.hit_ratio * requests;
    requests_weighted_ += requests;
  }
}

double MemoryModeExec::dram_cache_hit_ratio() const {
  return requests_weighted_ > 0.0 ? hits_weighted_ / requests_weighted_ : 0.0;
}

// ---------------------------------------------------------------- FixedTier

FixedTierMode::FixedTierMode(const memsim::MemorySystem* system, std::size_t tier)
    : ExecutionMode(system), tier_(tier) {}

std::string FixedTierMode::name() const {
  return "all-" + system_->tier(tier_).name();
}

Expected<std::uint64_t> FixedTierMode::on_alloc(std::size_t object, const ObjectSpec& spec,
                                                const SiteSpec& site, Bytes size) {
  (void)object;
  (void)spec;
  (void)site;
  const std::uint64_t span = (size + kCacheLine - 1) / kCacheLine * kCacheLine;
  return next_address_.fetch_add(span, std::memory_order_relaxed);
}

Status FixedTierMode::on_free(std::size_t object, std::uint64_t address) {
  (void)object;
  (void)address;
  return {};
}

void FixedTierMode::resolve(const std::vector<LiveObjectRef>& objects,
                            const std::vector<memsim::KernelObjectMisses>& misses,
                            std::vector<ObjectTraffic>& out) {
  const double line = static_cast<double>(kCacheLine);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    out[i].read_bytes[tier_] += misses[i].read_lines() * line;
    out[i].write_bytes[tier_] += misses[i].store_misses * line;
    out[i].latency_share[tier_] = 1.0;
  }
}

}  // namespace ecohmem::runtime
