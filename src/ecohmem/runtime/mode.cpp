#include "ecohmem/runtime/mode.hpp"

namespace ecohmem::runtime {

// Default migration surface: modes without object-migration support
// answer every call with a clear error (the engine checks
// `supports_object_migration` first, so reaching these is a bug).

Expected<ObjectMigration> ExecutionMode::migrate_object(std::size_t object,
                                                        std::uint64_t address,
                                                        std::size_t target_tier) {
  (void)object;
  (void)address;
  (void)target_tier;
  return unexpected("execution mode '" + name() + "' does not support object migration");
}

Expected<std::size_t> ExecutionMode::object_tier(std::size_t object) const {
  (void)object;
  return unexpected("execution mode '" + name() + "' does not track per-object tiers");
}

// ---------------------------------------------------------------- AppDirect

AppDirectMode::AppDirectMode(const memsim::MemorySystem* system, flexmalloc::FlexMalloc* fm)
    : ExecutionMode(system), fm_(fm) {
  // FlexMalloc tier order may differ from the engine's; build the map once.
  fm_to_engine_.resize(fm_->tier_count(), 0);
  for (std::size_t i = 0; i < fm_->tier_count(); ++i) {
    if (auto idx = system_->tier_index(fm_->tier_name(i))) fm_to_engine_[i] = *idx;
  }
}

void AppDirectMode::on_replay_begin(const Workload& workload) {
  // Pre-size the tier table so concurrent on_alloc calls write distinct
  // elements and never race on a resize.
  if (object_tier_.size() < workload.objects.size()) {
    object_tier_.resize(workload.objects.size(), 0);
  }
}

bool AppDirectMode::batch_placement_order_free(Bytes total_bytes,
                                               std::uint64_t alloc_ops) const {
  return fm_->can_absorb(total_bytes, alloc_ops);
}

Expected<std::uint64_t> AppDirectMode::on_alloc(std::size_t object, const ObjectSpec& spec,
                                                const SiteSpec& site, Bytes size) {
  (void)spec;
  auto allocation = fm_->malloc(site.stack, size);
  if (!allocation) return unexpected(allocation.error());

  if (object_tier_.size() <= object) object_tier_.resize(object + 1, 0);
  object_tier_[object] = fm_to_engine_.at(allocation->tier_index);
  return allocation->address;
}

Status AppDirectMode::on_free(std::size_t object, std::uint64_t address) {
  (void)object;
  return fm_->free(address);
}

void AppDirectMode::resolve(const std::vector<LiveObjectRef>& objects,
                            const std::vector<memsim::KernelObjectMisses>& misses,
                            std::vector<ObjectTraffic>& out) {
  const double line = static_cast<double>(kCacheLine);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const std::size_t tier = object_tier_.at(objects[i].object);
    out[i].read_bytes[tier] += misses[i].read_lines() * line;
    out[i].write_bytes[tier] += misses[i].store_misses * line;
    out[i].latency_share[tier] = 1.0;
  }
}

double AppDirectMode::take_alloc_overhead_ns() {
  const double total = fm_->matching_cost_ns();
  const double delta = total - overhead_taken_ns_;
  overhead_taken_ns_ = total;
  return delta;
}

std::uint64_t AppDirectMode::oom_redirects() const { return fm_->oom_redirects(); }

Expected<std::size_t> AppDirectMode::fm_tier_for(std::size_t tier) const {
  for (std::size_t i = 0; i < fm_to_engine_.size(); ++i) {
    if (fm_to_engine_[i] == tier) return i;
  }
  return unexpected("no FlexMalloc heap backs engine tier " + std::to_string(tier));
}

Expected<ObjectMigration> AppDirectMode::migrate_object(std::size_t object,
                                                        std::uint64_t address,
                                                        std::size_t target_tier) {
  const auto fm_tier = fm_tier_for(target_tier);
  if (!fm_tier) return unexpected(fm_tier.error());

  const auto outcome = fm_->migrate(address, *fm_tier);
  if (!outcome) return unexpected(outcome.error());

  ObjectMigration m;
  m.moved = outcome->moved;
  m.address = outcome->address;
  m.from_tier = fm_to_engine_.at(outcome->from_tier);
  m.bytes = outcome->bytes;
  if (m.moved) object_tier_.at(object) = target_tier;
  return m;
}

Expected<std::size_t> AppDirectMode::object_tier(std::size_t object) const {
  return tier_of(object);
}

Bytes AppDirectMode::migration_headroom(std::size_t tier) const {
  const auto fm_tier = fm_tier_for(tier);
  if (!fm_tier) return 0;
  const auto& heap = fm_->heap(*fm_tier);
  const Bytes capacity = heap.capacity();
  const Bytes used = heap.used();
  return capacity > used ? capacity - used : 0;
}

Expected<std::size_t> AppDirectMode::tier_of(std::size_t object) const {
  if (object >= object_tier_.size()) return unexpected("object never allocated");
  return object_tier_[object];
}

// --------------------------------------------------------------- MemoryMode

MemoryModeExec::MemoryModeExec(const memsim::MemorySystem* system, std::size_t dram_tier,
                               std::size_t pmem_tier, memsim::DramCacheModel model)
    : ExecutionMode(system), dram_tier_(dram_tier), pmem_tier_(pmem_tier), model_(model) {}

Expected<std::uint64_t> MemoryModeExec::on_alloc(std::size_t object, const ObjectSpec& spec,
                                                 const SiteSpec& site, Bytes size) {
  (void)object;
  (void)spec;
  (void)site;
  const std::uint64_t span = (size + kCacheLine - 1) / kCacheLine * kCacheLine;
  return next_address_.fetch_add(span, std::memory_order_relaxed);
}

Status MemoryModeExec::on_free(std::size_t object, std::uint64_t address) {
  (void)object;
  (void)address;
  return {};
}

void MemoryModeExec::resolve(const std::vector<LiveObjectRef>& objects,
                             const std::vector<memsim::KernelObjectMisses>& misses,
                             std::vector<ObjectTraffic>& out) {
  std::vector<memsim::DramCacheTraffic> traffic(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    traffic[i].load_misses = misses[i].read_lines();
    traffic[i].store_misses = misses[i].store_misses;
    traffic[i].footprint = objects[i].kernel_footprint;
    traffic[i].locality = objects[i].spec->dram_cache_locality;
  }
  const memsim::DramCacheOutcome outcome = model_.evaluate(traffic);

  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto& o = outcome.per_object[i];
    out[i].read_bytes[dram_tier_] += o.dram_read_bytes;
    out[i].write_bytes[dram_tier_] += o.dram_write_bytes;
    out[i].read_bytes[pmem_tier_] += o.pmem_read_bytes;
    out[i].write_bytes[pmem_tier_] += o.pmem_write_bytes;
    out[i].latency_share[dram_tier_] = o.hit_ratio;
    out[i].latency_share[pmem_tier_] = 1.0 - o.hit_ratio;
    out[i].fixed_latency_ns = (1.0 - o.hit_ratio) * model_.miss_overhead_ns();

    const double requests = misses[i].load_misses + misses[i].store_misses;
    hits_weighted_ += o.hit_ratio * requests;
    requests_weighted_ += requests;
  }
}

double MemoryModeExec::dram_cache_hit_ratio() const {
  return requests_weighted_ > 0.0 ? hits_weighted_ / requests_weighted_ : 0.0;
}

// ---------------------------------------------------------------- FixedTier

FixedTierMode::FixedTierMode(const memsim::MemorySystem* system, std::size_t tier)
    : ExecutionMode(system), tier_(tier) {}

std::string FixedTierMode::name() const {
  return "all-" + system_->tier(tier_).name();
}

Expected<std::uint64_t> FixedTierMode::on_alloc(std::size_t object, const ObjectSpec& spec,
                                                const SiteSpec& site, Bytes size) {
  (void)object;
  (void)spec;
  (void)site;
  const std::uint64_t span = (size + kCacheLine - 1) / kCacheLine * kCacheLine;
  return next_address_.fetch_add(span, std::memory_order_relaxed);
}

Status FixedTierMode::on_free(std::size_t object, std::uint64_t address) {
  (void)object;
  (void)address;
  return {};
}

void FixedTierMode::resolve(const std::vector<LiveObjectRef>& objects,
                            const std::vector<memsim::KernelObjectMisses>& misses,
                            std::vector<ObjectTraffic>& out) {
  const double line = static_cast<double>(kCacheLine);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    out[i].read_bytes[tier_] += misses[i].read_lines() * line;
    out[i].write_bytes[tier_] += misses[i].store_misses * line;
    out[i].latency_share[tier_] = 1.0;
  }
}

}  // namespace ecohmem::runtime
