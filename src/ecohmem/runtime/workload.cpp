#include "ecohmem/runtime/workload.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace ecohmem::runtime {

WorkloadBuilder::WorkloadBuilder(std::string name) {
  w_.name = std::move(name);
  w_.modules = std::make_shared<bom::ModuleTable>();
  w_.symbols = std::make_shared<bom::SymbolTable>(w_.modules.get());
}

WorkloadBuilder& WorkloadBuilder::ranks(int r) {
  w_.ranks = r;
  return *this;
}
WorkloadBuilder& WorkloadBuilder::threads(int t) {
  w_.threads = t;
  return *this;
}
WorkloadBuilder& WorkloadBuilder::mlp(double m) {
  w_.mlp = m;
  return *this;
}
WorkloadBuilder& WorkloadBuilder::static_footprint(Bytes b) {
  w_.static_footprint = b;
  return *this;
}

bom::ModuleId WorkloadBuilder::add_module(const std::string& module_name, Bytes text_size,
                                          Bytes debug_info_size) {
  return w_.modules->add_module(module_name, text_size, debug_info_size);
}

std::size_t WorkloadBuilder::add_site(bom::ModuleId module, const std::string& label,
                                      const std::string& file, std::uint32_t line,
                                      std::size_t depth) {
  SiteSpec site;
  site.label = label;

  // Deterministic distinct frame offsets per site; the outermost frame is
  // the allocation wrapper, deeper frames walk "up" the call chain.
  for (std::size_t d = 0; d < depth; ++d) {
    const std::uint64_t offset = next_offset_;
    next_offset_ += 0x40;
    site.stack.frames.push_back(bom::Frame{module, offset});
    w_.symbols->add_entry(module,
                          bom::LineEntry{offset, file, line + static_cast<std::uint32_t>(d)});
  }
  w_.sites.push_back(std::move(site));
  return w_.sites.size() - 1;
}

std::size_t WorkloadBuilder::add_object(std::size_t site, Bytes size, AccessPattern pattern,
                                        double llc_friendliness, double dram_cache_locality,
                                        double prefetch_efficiency) {
  assert(site < w_.sites.size());
  ObjectSpec o;
  o.site = site;
  o.size = size;
  o.pattern = pattern;
  o.llc_friendliness = llc_friendliness;
  o.dram_cache_locality = dram_cache_locality;
  o.prefetch_efficiency = prefetch_efficiency >= 0.0 ? prefetch_efficiency
                                                     : default_prefetch_efficiency(pattern);
  w_.objects.push_back(o);
  return w_.objects.size() - 1;
}

std::size_t WorkloadBuilder::add_kernel(std::string function, double instructions,
                                        double compute_cycles,
                                        std::vector<KernelAccess> accesses) {
  KernelSpec k;
  k.function = std::move(function);
  k.instructions = instructions;
  k.compute_cycles = compute_cycles;
  k.accesses = std::move(accesses);
  w_.kernels.push_back(std::move(k));
  return w_.kernels.size() - 1;
}

WorkloadBuilder& WorkloadBuilder::alloc(std::size_t object) {
  assert(object < w_.objects.size());
  w_.steps.emplace_back(AllocOp{object});
  return *this;
}

WorkloadBuilder& WorkloadBuilder::free(std::size_t object) {
  assert(object < w_.objects.size());
  w_.steps.emplace_back(FreeOp{object});
  return *this;
}

WorkloadBuilder& WorkloadBuilder::realloc(std::size_t object, Bytes new_size) {
  assert(object < w_.objects.size());
  w_.steps.emplace_back(ReallocOp{object, new_size});
  return *this;
}

WorkloadBuilder& WorkloadBuilder::run_kernel(std::size_t kernel) {
  assert(kernel < w_.kernels.size());
  w_.steps.emplace_back(KernelOp{kernel});
  return *this;
}

Workload WorkloadBuilder::build() {
  Rng rng(42);
  w_.modules->assign_bases(/*aslr=*/false, rng);

  // Validate the step list and compute the heap high-water mark.
  std::unordered_set<std::size_t> live;
  std::unordered_map<std::size_t, Bytes> live_size;
  Bytes live_bytes = 0;
  for (const auto& step : w_.steps) {
    if (const auto* r = std::get_if<ReallocOp>(&step)) {
      if (!live.contains(r->object)) {
        throw std::logic_error("workload '" + w_.name + "': realloc of non-live object " +
                               std::to_string(r->object));
      }
      live_bytes -= live_size[r->object];
      live_bytes += r->new_size;
      live_size[r->object] = r->new_size;
      w_.heap_high_water = std::max(w_.heap_high_water, live_bytes);
    } else if (const auto* a = std::get_if<AllocOp>(&step)) {
      if (!live.insert(a->object).second) {
        throw std::logic_error("workload '" + w_.name + "': double alloc of object " +
                               std::to_string(a->object));
      }
      live_bytes += w_.objects[a->object].size;
      live_size[a->object] = w_.objects[a->object].size;
      w_.heap_high_water = std::max(w_.heap_high_water, live_bytes);
    } else if (const auto* f = std::get_if<FreeOp>(&step)) {
      if (live.erase(f->object) == 0) {
        throw std::logic_error("workload '" + w_.name + "': free of non-live object " +
                               std::to_string(f->object));
      }
      live_bytes -= live_size[f->object];
    } else if (const auto* k = std::get_if<KernelOp>(&step)) {
      for (const auto& acc : w_.kernels[k->kernel].accesses) {
        if (!live.contains(acc.object)) {
          throw std::logic_error("workload '" + w_.name + "': kernel '" +
                                 w_.kernels[k->kernel].function +
                                 "' touches non-live object " + std::to_string(acc.object));
        }
      }
    }
  }
  return std::move(w_);
}

}  // namespace ecohmem::runtime
