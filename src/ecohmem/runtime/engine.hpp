#pragma once

/// \file engine.hpp
/// The execution engine: replays a workload under an execution mode and
/// produces run metrics.
///
/// Per kernel step the engine solves a fixed point (DESIGN.md §5, D1):
/// the step duration T determines per-tier bandwidth demand, which
/// determines access latency via the tier curves, which determines stall
/// time, which determines T. Damped iteration converges in a handful of
/// rounds. Bandwidth ceilings additionally bound T from below
/// (a step cannot move more bytes than the tiers can deliver).
///
/// Stall model: load misses stall the pipeline for latency/MLP each
/// (MLP = overlapped outstanding misses, a workload property); store
/// traffic stalls through store-buffer backpressure with a configurable
/// weight — small for DRAM, but significant when PMem write bandwidth
/// saturates (§V's motivation for store-aware heuristics).
///
/// Parallel replay (docs/threading.md): with `replay_threads > 1` the
/// engine partitions the allocation-event stream across a worker pool —
/// worker `object % threads` replays every op of that object, so the
/// per-object alloc/free order is preserved while distinct objects
/// proceed concurrently through the shared thread-safe mode/FlexMalloc.
/// Kernel steps are barriers and run serially on the engine thread, so
/// placement decisions and per-tier byte totals are bit-identical at any
/// thread count; kernel bandwidth binning fans out into per-worker
/// BandwidthMeter shards merged in worker order at the end. Before
/// fanning a batch out, the engine asks the mode's
/// `batch_placement_order_free` capacity guard whether any tier could
/// fill up mid-batch (which would make OOM redirection — a placement
/// decision — interleaving-dependent); pressured batches are replayed in
/// program order on the engine thread instead, so determinism holds even
/// at capacity.
///
/// Online placement composes with parallel replay: the sampler/hotness
/// state is sharded on `object % kOnlineShards` (online/sharded.hpp), a
/// kernel's feedback is processed per shard in stream order whichever
/// worker runs the shard, and every placement decision — policy
/// evaluation, guidance seeding, tracker forgets, migration application —
/// runs on the engine thread at batch or kernel boundaries in program
/// order. Migration sequences are therefore bit-identical at any thread
/// count (docs/threading.md has the full argument; tests/online/ asserts
/// it for `--threads {1,2,4,8}`).

#include "ecohmem/common/expected.hpp"
#include "ecohmem/memsim/analytic_cache.hpp"
#include "ecohmem/memsim/tier.hpp"
#include "ecohmem/runtime/metrics.hpp"
#include "ecohmem/runtime/mode.hpp"
#include "ecohmem/runtime/observer.hpp"
#include "ecohmem/runtime/workload.hpp"

namespace ecohmem::online {
struct OnlinePolicyConfig;
}  // namespace ecohmem::online

namespace ecohmem::runtime {

struct GuidanceSeed;

struct EngineOptions {
  /// Total LLC capacity available to the job (two sockets on the paper's
  /// node).
  Bytes llc_bytes = 2ull * 36 * 1024 * 1024;

  /// Bandwidth timeline bin width.
  Ns bw_bin_ns = 10'000'000;  // 10 ms

  /// Store-stall weight (fraction of write latency that reaches the
  /// pipeline through store-buffer backpressure; writes mostly drain in
  /// the background, so bandwidth floors — not store stalls — carry most
  /// of the write cost).
  double store_stall_weight = 0.05;

  int max_fixed_point_iters = 100;
  double convergence = 1e-7;

  /// Replay worker threads. 1 = the classic serial replay; N > 1 shards
  /// the allocation stream by object id across N workers (see the file
  /// comment). Requires a mode with `concurrent_alloc_safe()` and no
  /// observer; `run` fails with a clear error otherwise.
  int replay_threads = 1;

  /// Optional observation hook (profiler). Serial replay only.
  ExecutionObserver* observer = nullptr;

  /// Opt-in online placement (docs/online.md): the engine samples each
  /// kernel's misses, tracks per-object hotness, and applies the
  /// policy's promote/demote migrations at kernel boundaries, charging
  /// their cost into the clock and the bandwidth meters. Requires a
  /// mode with `supports_object_migration()` and no observer attached
  /// (profiling runs and online placement are mutually exclusive; the
  /// combination fails uniformly at any thread count). Works under both
  /// serial and parallel replay with bit-identical results (see the
  /// file comment). The pointed-to config must outlive the run.
  const online::OnlinePolicyConfig* online_policy = nullptr;

  /// Optional guidance seeding for the online policy (`--from-report`,
  /// docs/online.md): per-site tier guidance matched from an Advisor
  /// report. Objects born at fast-guided sites start with mature
  /// hotness history, and live fast-guided objects stranded in slow
  /// tiers are queued for promotion at the first policy evaluation.
  /// Ignored without `online_policy`; must outlive the run.
  const GuidanceSeed* guidance = nullptr;
};

class ExecutionEngine {
 public:
  ExecutionEngine(const memsim::MemorySystem* system, EngineOptions options = {});

  /// Replays `workload` under `mode`. Fails on inconsistent workloads,
  /// unrecoverable allocation failures (fallback tier exhausted), or an
  /// invalid/unsupported `replay_threads` configuration.
  [[nodiscard]] Expected<RunMetrics> run(const Workload& workload, ExecutionMode& mode);

  [[nodiscard]] const EngineOptions& options() const { return options_; }

 private:
  [[nodiscard]] Expected<RunMetrics> run_serial(const Workload& workload, ExecutionMode& mode);
  [[nodiscard]] Expected<RunMetrics> run_parallel(const Workload& workload, ExecutionMode& mode,
                                                  std::size_t threads);

  const memsim::MemorySystem* system_;
  EngineOptions options_;
};

/// Convenience: solve one kernel's duration given per-tier byte totals and
/// the latency recipe. Exposed for unit tests of the fixed point.
struct KernelSolution {
  double duration_ns = 0.0;
  double load_stall_ns = 0.0;
  double store_stall_ns = 0.0;
  double bw_floor_ns = 0.0;
  std::vector<double> tier_read_latency_ns;   ///< converged per-tier values
  std::vector<double> tier_write_latency_ns;
  std::vector<double> object_load_latency_ns;  ///< per object
  int iterations = 0;
};

[[nodiscard]] KernelSolution solve_kernel_fixed_point(
    const memsim::MemorySystem& system, const std::vector<ObjectTraffic>& traffic,
    const std::vector<memsim::KernelObjectMisses>& misses, double compute_ns, double mlp,
    const EngineOptions& options);

}  // namespace ecohmem::runtime
