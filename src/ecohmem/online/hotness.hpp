#pragma once

/// \file hotness.hpp
/// Per-object EWMA miss-density tracking over a sliding kernel window.
///
/// Hotness is measured in sampled miss events per MiB of object size per
/// kernel, smoothed with an exponentially-weighted moving average:
///
///   hotness' = (1 - alpha) * hotness + alpha * density_this_kernel
///
/// Objects a kernel does not touch decay toward zero with the same
/// alpha, so a formerly-hot object cools off instead of staying hot
/// forever — the property that lets the migration policy react to phase
/// shifts.
///
/// Alongside the instantaneous EWMA the tracker maintains each object's
/// `shield`: the maximum the EWMA reached over the last `window` kernels.
/// The planner protects fast-tier residents by their shield, not their
/// instantaneous hotness — an object touched hard by *any* kernel of the
/// last window keeps its peak, so periodic workloads (where each kernel
/// of an iteration hammers a different subset) do not ping-pong objects
/// whose EWMA happens to dip between their hot kernels. Only objects
/// whose entire recent window is cold — a genuine phase shift — lose
/// their shield and become displacement victims.
///
/// All updates happen on the engine thread in kernel-replay order; the
/// tracker is deterministic plain data.

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "ecohmem/common/units.hpp"

namespace ecohmem::online {

class HotnessTracker {
 public:
  HotnessTracker(double alpha, std::uint64_t window) : alpha_(alpha), window_(window) {}

  /// Records `events` sampled misses against an object of `bytes` bytes
  /// for the current kernel. At most one call per object per kernel.
  void record(std::size_t object, double events, Bytes bytes);

  /// Ends the current kernel: objects not recorded since the previous
  /// call decay by (1 - alpha), and every object's windowed maximum is
  /// advanced by one kernel.
  void end_kernel();

  /// Current EWMA miss density of `object` (0 for unknown objects).
  [[nodiscard]] double hotness(std::size_t object) const;

  /// Maximum the EWMA reached over the last `window` kernels (0 for
  /// unknown objects). The displacement-protection value.
  [[nodiscard]] double shield(std::size_t object) const;

  /// Kernels the object's history has survived (0 for unknown objects).
  /// Freeing an object resets its history, so a freshly (re)allocated
  /// object starts at age 0 — the planner uses this to keep short-lived
  /// transients (per-step temporaries) from ever being promoted: only
  /// objects that outlive a full `window` are migration candidates.
  [[nodiscard]] std::uint64_t age(std::size_t object) const;

  /// Drops an object's history (called when it is freed).
  void forget(std::size_t object);

  /// Seeds an object with offline-guidance history: the entry is born
  /// `window` kernels in the past (so the age gate treats it as mature
  /// immediately) and its EWMA/shield start at `prior` instead of 0.
  /// Used by the guidance-seeded mode (docs/online.md) so report-placed
  /// objects are neither blocked from promotion nor instantly displaced
  /// before the sampler has observed them. No-op when the object is
  /// already tracked — live sampling beats a stale prior.
  void seed(std::size_t object, double prior);

  /// Number of objects with tracked history.
  [[nodiscard]] std::size_t tracked() const { return entries_.size(); }

 private:
  struct Entry {
    double hotness = 0.0;
    bool touched = false;    ///< recorded since the last end_kernel()
    /// kernel_ when the entry was created. Signed: seed() backdates an
    /// entry by a full window, which near startup lands before kernel 0.
    std::int64_t born = 0;
    /// Monotonic max-deque over the last `window` per-kernel EWMA values:
    /// front() is the windowed maximum; values are (kernel index, ewma).
    std::deque<std::pair<std::uint64_t, double>> peaks;
  };

  double alpha_;
  std::uint64_t window_;
  std::uint64_t kernel_ = 0;  ///< kernels seen (end_kernel calls)
  std::unordered_map<std::size_t, Entry> entries_;
};

}  // namespace ecohmem::online
