#pragma once

/// \file policy_config.hpp
/// Configuration of the online placement subsystem (docs/online.md).
///
/// The policy is configured through the same INI layer as the Advisor:
/// an `[online]` section whose keys control the PEBS-style sampler, the
/// EWMA hotness tracker and the promote/demote migration policy. The
/// loader is strict — unknown keys and out-of-range values are errors,
/// mirroring the `online-*` rules of ecohmem-lint — so a typo in a
/// policy file stops the run instead of silently running a different
/// policy.

#include <string>
#include <string_view>

#include "ecohmem/common/config.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::online {

/// Section name the policy lives in (`[online]`).
inline constexpr std::string_view kPolicySection = "online";

/// The recognized keys of the `[online]` section, terminated by a
/// nullptr sentinel. Shared with the `online-keys` lint rule so the
/// loader and the linter can never disagree about what is a typo.
[[nodiscard]] const char* const* policy_keys();

struct OnlinePolicyConfig {
  /// Fraction of LLC-miss events the simulated PEBS unit samples, in
  /// (0, 1]. Fractional expectations are rounded stochastically through
  /// the deterministic common/rng stream.
  double sample_rate = 0.01;

  /// EWMA smoothing factor for per-object hotness, in (0, 1]. 1 means
  /// only the latest kernel counts; small values remember longer.
  double ewma_alpha = 0.3;

  /// Sliding-window length in kernel steps (> 0). A fast-tier resident
  /// is protected from displacement by its EWMA *peak* over the last
  /// `window` kernels (its shield, hotness.hpp), so the window should
  /// cover one iteration of the workload's inner loop: objects touched
  /// periodically keep their shield, objects cold for a whole window —
  /// a genuine phase shift — become victims. The same length doubles as
  /// the planner's maturity gate: an object younger than `window`
  /// kernels is never promoted, so short-lived per-step temporaries are
  /// not worth copying no matter how hot their brief life looks.
  std::uint64_t window = 12;

  /// Hysteresis margin (>= 0): a slow-tier object may displace a
  /// fast-tier one only when its hotness exceeds the resident's shield
  /// by this relative margin, which together with the shield keeps
  /// steady-state workloads from thrashing (docs/online.md).
  double hysteresis = 0.25;

  /// Minimum hotness (sampled miss events per MiB per kernel, >= 0) an
  /// object needs before a promotion is ever proposed.
  double min_density = 1.0;

  /// Cap on migrations proposed per evaluation (>= 1).
  std::uint64_t max_moves_per_step = 8;

  /// Cap on bytes moved per evaluation; 0 = unlimited.
  Bytes max_bytes_per_step = 0;

  /// Fraction of the pairwise tier bandwidth a migration stream gets,
  /// in (0, 1] — migrations compete with the application for the
  /// memory controllers, so they never run at device peak.
  double bandwidth_fraction = 0.5;

  /// Seed of the sampler's deterministic RNG stream: same seed + same
  /// policy + same workload => bit-identical migration sequence.
  std::uint64_t seed = 0x0ec0;

  /// Granularity of sub-range (page-granular) migration (> 0, a power
  /// of two). Partial moves of huge objects are aligned to and rounded
  /// to multiples of this chunk — 2 MiB by default, the x86-64 huge-page
  /// size real PMem migrators move (Marques et al.).
  Bytes chunk_bytes = 2ull << 20;

  /// Objects at least this large are migrated in chunk-aligned
  /// sub-ranges instead of as a whole (docs/online.md). 0 disables
  /// page-granular migration entirely.
  Bytes huge_object_bytes = 1ull << 30;

  /// Range-checks every field; returns the first violation.
  [[nodiscard]] Status validate() const;

  /// Strict parse of an `[online]` section (top-level keys are also
  /// accepted when no section is present). Unknown keys, malformed
  /// values and range violations are errors.
  [[nodiscard]] static Expected<OnlinePolicyConfig> from_config(const Config& config);

  /// Reads and parses a policy file.
  [[nodiscard]] static Expected<OnlinePolicyConfig> load(const std::string& path);
};

}  // namespace ecohmem::online
