#pragma once

/// \file sharded.hpp
/// Sharded sampler + hotness state for online placement under parallel
/// replay.
///
/// PR 3's online subsystem kept one `AccessSampler` and one
/// `HotnessTracker`, which hard-wired `--online` to serial replay: the
/// sampler consumes one RNG draw per feedback entry, so any reordering
/// of entries across worker threads would shift the sample stream and
/// change every downstream migration decision. This type removes that
/// restriction the same way the analyzer's parallel aggregation did —
/// by sharding the state on a *fixed* key and keeping each shard's
/// processing order equal to serial stream order:
///
///  - State is split into `kOnlineShards` shards keyed by
///    `object % kOnlineShards` (independent of the thread count).
///  - Each shard owns its own sampler, seeded as a pure function of
///    (policy seed, shard index), and its own tracker. A kernel's
///    feedback is filtered per shard and processed in stream order, so
///    the per-shard RNG stream position depends only on the workload —
///    never on which worker ran the shard or how many workers exist.
///  - Under parallel replay each shard is processed by exactly one
///    worker per kernel (worker `w` takes shards `w, w + threads, ...`);
///    the serial path walks shards 0..N-1 inline. Both orders commute
///    because shards share no state, so `--threads {1,2,4,8}` produce
///    bit-identical migration sequences (asserted in tests/online/).
///
/// Each shard carries a `RankedMutex` (rank `kOnlineShard`, a leaf) so
/// the cross-thread handoff is explicit to TSan, the Clang thread-safety
/// analysis and lockdep. Mutations outside kernel processing (forget on
/// free, guidance seeding) and all queries happen on the engine thread
/// between kernels, but still take the shard lock — the contract is
/// "hold the shard lock", not "know which thread you are".

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "ecohmem/common/lockdep.hpp"
#include "ecohmem/online/hotness.hpp"
#include "ecohmem/online/policy_config.hpp"
#include "ecohmem/online/sampler.hpp"

namespace ecohmem::online {

/// Fixed shard count; a constant (not the thread count) so the shard of
/// an object — and with it the per-shard sample streams — never depends
/// on `--threads`.
inline constexpr std::size_t kOnlineShards = 8;

class ShardedOnlineState {
 public:
  explicit ShardedOnlineState(const OnlinePolicyConfig& config);

  [[nodiscard]] static constexpr std::size_t shard_of(std::size_t object) {
    return object % kOnlineShards;
  }

  /// Processes one shard's slice of a kernel's feedback: samples every
  /// entry whose object belongs to `shard` (in `feedback` order),
  /// records the sampled events against the tracker, then ends the
  /// shard's kernel. Entries carry their object's live size in
  /// `ObjectAccess::bytes`. Safe to call concurrently for *different*
  /// shards; each call locks its shard.
  void process_kernel_shard(std::size_t shard, const std::vector<ObjectAccess>& feedback);

  /// Drops an object's history (engine thread, on free).
  void forget(std::size_t object);

  /// Seeds guidance history for an object (engine thread, on alloc at a
  /// report-guided site); see HotnessTracker::seed.
  void seed(std::size_t object, double prior);

  /// Tracker queries, used by the engine thread at planning time.
  [[nodiscard]] double hotness(std::size_t object) const;
  [[nodiscard]] double shield(std::size_t object) const;
  [[nodiscard]] std::uint64_t age(std::size_t object) const;

  /// Objects with tracked history, summed over all shards.
  [[nodiscard]] std::size_t tracked() const;

 private:
  struct Shard {
    Shard(double rate, std::uint64_t seed, double alpha, std::uint64_t window)
        : sampler(rate, seed), tracker(alpha, window) {}

    mutable common::RankedMutex mu{common::lockdep::LockRank::kOnlineShard, "online_shard"};
    AccessSampler sampler ECOHMEM_GUARDED_BY(mu);
    HotnessTracker tracker ECOHMEM_GUARDED_BY(mu);
  };

  std::array<std::unique_ptr<Shard>, kOnlineShards> shards_;
};

}  // namespace ecohmem::online
