#include "ecohmem/online/sampler.hpp"

#include <cmath>

namespace ecohmem::online {

std::uint64_t AccessSampler::sample_count(double events) {
  const double expected = std::max(0.0, events) * rate_;
  const double whole = std::floor(expected);
  const double frac = expected - whole;
  // One draw per call even when frac == 0, so the stream position is a
  // pure function of the call sequence (see the file comment).
  const bool extra = rng_.next_double() < frac;
  return static_cast<std::uint64_t>(whole) + (extra ? 1u : 0u);
}

SampledAccess AccessSampler::sample(const ObjectAccess& access) {
  SampledAccess out;
  out.object = access.object;
  out.loads = sample_count(access.load_misses);
  out.stores = sample_count(access.store_misses);
  return out;
}

}  // namespace ecohmem::online
