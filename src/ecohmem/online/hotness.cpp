#include "ecohmem/online/hotness.hpp"

namespace ecohmem::online {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;

/// Entries below this are dropped at the end of a kernel — an object
/// that decayed to nothing costs neither memory nor decay work.
constexpr double kEvictBelow = 1e-12;
}  // namespace

void HotnessTracker::record(std::size_t object, double events, Bytes bytes) {
  const double mib = static_cast<double>(bytes) / kMiB;
  const double density = mib > 0.0 ? events / mib : 0.0;
  auto [it, inserted] = entries_.try_emplace(object);
  Entry& e = it->second;
  if (inserted) e.born = static_cast<std::int64_t>(kernel_);
  e.hotness = (1.0 - alpha_) * e.hotness + alpha_ * density;
  e.touched = true;
}

void HotnessTracker::end_kernel() {
  ++kernel_;
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& e = it->second;
    if (!e.touched) e.hotness *= 1.0 - alpha_;
    e.touched = false;

    // Slide the max-window forward: absorb this kernel's EWMA (dropping
    // now-dominated smaller tail values) and expire values older than
    // `window` kernels.
    while (!e.peaks.empty() && e.peaks.back().second <= e.hotness) e.peaks.pop_back();
    e.peaks.emplace_back(kernel_, e.hotness);
    while (e.peaks.front().first + window_ <= kernel_) e.peaks.pop_front();

    if (e.peaks.front().second < kEvictBelow) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

double HotnessTracker::hotness(std::size_t object) const {
  const auto it = entries_.find(object);
  return it != entries_.end() ? it->second.hotness : 0.0;
}

double HotnessTracker::shield(std::size_t object) const {
  const auto it = entries_.find(object);
  if (it == entries_.end() || it->second.peaks.empty()) return 0.0;
  return it->second.peaks.front().second;
}

std::uint64_t HotnessTracker::age(std::size_t object) const {
  const auto it = entries_.find(object);
  if (it == entries_.end()) return 0;
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(kernel_) - it->second.born);
}

void HotnessTracker::forget(std::size_t object) { entries_.erase(object); }

void HotnessTracker::seed(std::size_t object, double prior) {
  auto [it, inserted] = entries_.try_emplace(object);
  if (!inserted) return;
  Entry& e = it->second;
  e.born = static_cast<std::int64_t>(kernel_) - static_cast<std::int64_t>(window_);
  e.hotness = prior;
  // The prior enters the peak window at the current kernel, so the
  // shield survives exactly `window` unseen kernels before the seeded
  // object becomes a displacement victim like any cooled-off resident.
  e.peaks.emplace_back(kernel_, prior);
}

}  // namespace ecohmem::online
