#include "ecohmem/online/planner.hpp"

#include <algorithm>

namespace ecohmem::online {

std::vector<PlannedMove> MigrationPlanner::plan(const std::vector<ObjectView>& views,
                                                std::size_t fast_tier,
                                                Bytes fast_headroom) const {
  std::vector<const ObjectView*> hot;   // slow-tier promotion candidates
  std::vector<const ObjectView*> cold;  // fast-tier residents (victims)
  for (const auto& v : views) {
    (v.tier == fast_tier ? cold : hot).push_back(&v);
  }
  const auto hotter_first = [](const ObjectView* a, const ObjectView* b) {
    if (a->hotness != b->hotness) return a->hotness > b->hotness;
    return a->object < b->object;
  };
  const auto colder_first = [](const ObjectView* a, const ObjectView* b) {
    if (a->shield != b->shield) return a->shield < b->shield;
    return a->object < b->object;
  };
  std::sort(hot.begin(), hot.end(), hotter_first);
  std::sort(cold.begin(), cold.end(), colder_first);

  std::vector<PlannedMove> moves;
  std::vector<bool> claimed(cold.size(), false);
  Bytes headroom = fast_headroom;
  Bytes moved_bytes = 0;

  const auto byte_budget_allows = [&](Bytes extra) {
    return config_.max_bytes_per_step == 0 || moved_bytes + extra <= config_.max_bytes_per_step;
  };

  for (const ObjectView* h : hot) {
    if (moves.size() >= config_.max_moves_per_step) break;
    if (h->hotness < config_.min_density) break;  // sorted: the rest are colder
    if (h->age < config_.window) continue;  // maturity gate: too young to trust

    if (h->bytes <= headroom) {
      if (!byte_budget_allows(h->bytes)) continue;
      moves.push_back(PlannedMove{h->object, h->tier, fast_tier, h->bytes});
      headroom -= h->bytes;
      moved_bytes += h->bytes;
      continue;
    }

    // No free headroom: collect victims whose windowed shield the
    // candidate beats by the hysteresis margin, coldest shield first.
    std::vector<std::size_t> victims;
    Bytes freed = 0;
    for (std::size_t ci = 0; ci < cold.size(); ++ci) {
      if (claimed[ci]) continue;
      if (cold[ci]->shield * (1.0 + config_.hysteresis) >= h->hotness) {
        break;  // sorted: the rest are at least as shielded
      }
      victims.push_back(ci);
      freed += cold[ci]->bytes;
      if (headroom + freed >= h->bytes) break;
    }
    if (headroom + freed < h->bytes) continue;  // a smaller candidate may still fit
    if (moves.size() + victims.size() + 1 > config_.max_moves_per_step) continue;
    if (!byte_budget_allows(freed + h->bytes)) continue;

    for (const std::size_t ci : victims) {
      // Victims demote to the tier the hot object vacates.
      moves.push_back(PlannedMove{cold[ci]->object, fast_tier, h->tier, cold[ci]->bytes});
      claimed[ci] = true;
      headroom += cold[ci]->bytes;
      moved_bytes += cold[ci]->bytes;
    }
    moves.push_back(PlannedMove{h->object, h->tier, fast_tier, h->bytes});
    headroom -= h->bytes;
    moved_bytes += h->bytes;
  }
  return moves;
}

double migration_cost_ns(Bytes bytes, const memsim::MemorySystem& system, std::size_t from,
                         std::size_t to, double bandwidth_fraction) {
  const auto& src = system.tier(from).spec();
  const auto& dst = system.tier(to).spec();
  // GB/s with 1 GB = 1e9 bytes is bytes-per-ns, so bytes / gbs is ns.
  const double gbs = std::min(src.peak_read_gbs, dst.peak_write_gbs) * bandwidth_fraction;
  return gbs > 0.0 ? static_cast<double>(bytes) / gbs : 0.0;
}

}  // namespace ecohmem::online
