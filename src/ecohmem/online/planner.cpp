#include "ecohmem/online/planner.hpp"

#include <algorithm>

namespace ecohmem::online {

std::vector<PlannedMove> MigrationPlanner::plan(const std::vector<ObjectView>& views,
                                                std::size_t fast_tier,
                                                Bytes fast_headroom) const {
  std::vector<const ObjectView*> hot;   // slow-tier promotion candidates
  std::vector<const ObjectView*> cold;  // fast-tier residents (victims)
  for (const auto& v : views) {
    (v.tier == fast_tier ? cold : hot).push_back(&v);
  }
  const auto hotter_first = [](const ObjectView* a, const ObjectView* b) {
    if (a->hotness != b->hotness) return a->hotness > b->hotness;
    return a->object < b->object;
  };
  const auto colder_first = [](const ObjectView* a, const ObjectView* b) {
    if (a->shield != b->shield) return a->shield < b->shield;
    return a->object < b->object;
  };
  std::sort(hot.begin(), hot.end(), hotter_first);
  std::sort(cold.begin(), cold.end(), colder_first);

  std::vector<PlannedMove> moves;
  std::vector<bool> claimed(cold.size(), false);
  Bytes headroom = fast_headroom;
  Bytes moved_bytes = 0;

  const auto byte_budget_allows = [&](Bytes extra) {
    return config_.max_bytes_per_step == 0 || moved_bytes + extra <= config_.max_bytes_per_step;
  };
  const auto byte_budget_room = [&]() -> Bytes {
    if (config_.max_bytes_per_step == 0) return ~Bytes{0};
    return config_.max_bytes_per_step > moved_bytes ? config_.max_bytes_per_step - moved_bytes
                                                    : 0;
  };
  const auto is_huge = [&](const ObjectView* v) {
    return config_.huge_object_bytes != 0 && v->bytes >= config_.huge_object_bytes;
  };
  const auto chunk_floor = [&](Bytes n) { return n - n % config_.chunk_bytes; };

  // A promotion moves the not-yet-promoted remainder [fast_bytes, bytes)
  // (the whole object in the ordinary fast_bytes == 0 case); partial
  // promotions of huge objects move a chunk-aligned prefix of it.
  const auto push_promote = [&](const ObjectView* h, Bytes length) {
    moves.push_back(PlannedMove{h->object, h->tier, fast_tier, length, h->fast_bytes,
                                length != h->bytes});
    headroom -= length;
    moved_bytes += length;
  };

  for (const ObjectView* h : hot) {
    if (moves.size() >= config_.max_moves_per_step) break;
    if (h->hotness < config_.min_density) break;  // sorted: the rest are colder
    if (h->age < config_.window) continue;  // maturity gate: too young to trust
    const Bytes remaining = h->bytes - std::min(h->fast_bytes, h->bytes);
    if (remaining == 0) continue;  // fully promoted by earlier sub-range moves

    if (remaining <= headroom && byte_budget_allows(remaining)) {
      push_promote(h, remaining);
      continue;
    }

    // The remainder does not fit the free headroom (or would blow the
    // per-step byte budget). A huge object first tries a chunk-aligned
    // partial promotion into whatever free space the budget still
    // covers — no victim has to move for a sub-range.
    if (is_huge(h)) {
      const Bytes take =
          std::min(remaining, chunk_floor(std::min(headroom, byte_budget_room())));
      if (take > 0) {
        push_promote(h, take);
        continue;
      }
    }
    if (remaining <= headroom) continue;  // whole fit blocked only by the budget

    // No free headroom: collect victims whose windowed shield the
    // candidate beats by the hysteresis margin, coldest shield first.
    std::vector<std::size_t> victims;
    Bytes freed = 0;
    for (std::size_t ci = 0; ci < cold.size(); ++ci) {
      if (claimed[ci]) continue;
      if (cold[ci]->shield * (1.0 + config_.hysteresis) >= h->hotness) {
        break;  // sorted: the rest are at least as shielded
      }
      victims.push_back(ci);
      freed += cold[ci]->bytes;
      if (headroom + freed >= remaining) break;
    }
    Bytes grant = 0;
    if (headroom + freed >= remaining) {
      grant = remaining;
    } else if (is_huge(h)) {
      // Every displaceable victim freed still does not fit the whole
      // remainder: promote the chunk-aligned part that does fit.
      grant = std::min(remaining, chunk_floor(headroom + freed));
    }
    if (grant == 0) continue;  // a smaller candidate may still fit
    // Drop victims the granted amount does not actually need (a partial
    // grant can undershoot the collected set).
    while (!victims.empty() && headroom + freed - cold[victims.back()]->bytes >= grant) {
      freed -= cold[victims.back()]->bytes;
      victims.pop_back();
    }
    if (moves.size() + victims.size() + 1 > config_.max_moves_per_step) continue;
    if (!byte_budget_allows(freed + grant)) continue;

    for (const std::size_t ci : victims) {
      // Victims demote to the tier the hot object vacates.
      moves.push_back(
          PlannedMove{cold[ci]->object, fast_tier, h->tier, cold[ci]->bytes, 0, false});
      claimed[ci] = true;
      headroom += cold[ci]->bytes;
      moved_bytes += cold[ci]->bytes;
    }
    push_promote(h, grant);
  }
  return moves;
}

double migration_cost_ns(Bytes bytes, const memsim::MemorySystem& system, std::size_t from,
                         std::size_t to, double bandwidth_fraction) {
  const auto& src = system.tier(from).spec();
  const auto& dst = system.tier(to).spec();
  // GB/s with 1 GB = 1e9 bytes is bytes-per-ns, so bytes / gbs is ns.
  const double gbs = std::min(src.peak_read_gbs, dst.peak_write_gbs) * bandwidth_fraction;
  return gbs > 0.0 ? static_cast<double>(bytes) / gbs : 0.0;
}

}  // namespace ecohmem::online
