#pragma once

/// \file sampler.hpp
/// Simulated PEBS-style access sampling over the memsim traffic stream.
///
/// A real PEBS unit delivers roughly one record per 1/rate LLC-miss
/// events. The simulator works on per-object *expected* miss counts, so
/// the sampler scales each count by the rate and resolves the fractional
/// remainder with one Bernoulli draw from the shared deterministic RNG
/// (common/rng.hpp). The draw order is the engine's kernel-replay order,
/// which is what makes the whole online subsystem bit-reproducible:
/// same seed + same workload + same policy => same samples => same
/// migration sequence (asserted in tests/online/).

#include <cstdint>

#include "ecohmem/common/rng.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::online {

/// Per-object miss counts of one kernel, as fed by the replay engine.
struct ObjectAccess {
  std::size_t object = 0;
  double load_misses = 0.0;
  double store_misses = 0.0;
  Bytes bytes = 0;  ///< live size, for miss-density (events/MiB) tracking
};

/// Sampled (load + store) event counts for one object in one kernel.
struct SampledAccess {
  std::size_t object = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
};

class AccessSampler {
 public:
  /// `rate` in (0, 1]; `seed` selects the deterministic sample stream.
  AccessSampler(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {}

  /// Samples an expected event count: floor(events * rate) plus a
  /// Bernoulli draw on the fractional part. Consumes exactly one RNG
  /// draw per call, so the stream position depends only on the call
  /// sequence (never on the values sampled).
  [[nodiscard]] std::uint64_t sample_count(double events);

  /// Samples one object's kernel misses (loads first, then stores).
  [[nodiscard]] SampledAccess sample(const ObjectAccess& access);

  [[nodiscard]] double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
};

}  // namespace ecohmem::online
