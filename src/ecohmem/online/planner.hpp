#pragma once

/// \file planner.hpp
/// The migration policy and its cost model (docs/online.md).
///
/// At every kernel boundary the replay engine hands the planner a
/// snapshot of the live objects (size, current tier, EWMA hotness and
/// windowed shield — see hotness.hpp) and the fast tier's free headroom;
/// the planner returns a promote/demote move list:
///
///   - hot slow-tier objects are promoted into free fast-tier headroom
///     hottest-first, once their hotness clears `min_density` AND they
///     have survived at least `window` kernels since allocation — the
///     maturity gate that keeps short-lived per-step temporaries (whose
///     first kernels always look scorching hot) from being copied to the
///     fast tier only to be freed moments later;
///   - when the fast tier is full, a hot object may displace residents —
///     but only when its instantaneous hotness beats each victim's
///     *shield* (its EWMA peak over the last `window` kernels) by the
///     relative `hysteresis` margin. Shield-based protection is what
///     keeps periodic steady-state workloads from thrashing: an object
///     hammered by any kernel of the recent window keeps its peak even
///     while its EWMA dips between those kernels, so only objects whose
///     whole window went cold — a real phase shift — are displaced;
///   - moves are capped per evaluation (`max_moves_per_step`,
///     `max_bytes_per_step`), and ties break on object id, so the plan
///     is a pure deterministic function of its inputs.
///
/// The cost model charges each move `bytes / (pairwise bandwidth *
/// bandwidth_fraction)` nanoseconds, where the pairwise bandwidth is the
/// min of the source tier's peak read and the destination tier's peak
/// write rate — a migration is a read stream on one device and a write
/// stream on the other, and it never runs at device peak because the
/// application is using the controllers too.

#include <vector>

#include "ecohmem/common/units.hpp"
#include "ecohmem/memsim/tier.hpp"
#include "ecohmem/online/policy_config.hpp"

namespace ecohmem::online {

/// One live object as the planner sees it.
struct ObjectView {
  std::size_t object = 0;
  Bytes bytes = 0;
  std::size_t tier = 0;    ///< engine tier index it currently lives in
  double hotness = 0.0;    ///< EWMA miss density (events per MiB)
  double shield = 0.0;     ///< EWMA peak over the last `window` kernels
  std::uint64_t age = 0;   ///< kernels of tracked history since allocation
  /// Bytes already resident in the fast tier from earlier sub-range
  /// promotions (page-granular migration). 0 for ordinary objects; equal
  /// to `bytes` for fast-tier residents.
  Bytes fast_bytes = 0;
};

/// One proposed migration. Ordinary moves cover the whole object
/// (`offset` 0, `bytes` = object size, `partial` false); page-granular
/// moves of huge objects cover one contiguous chunk-aligned sub-range.
struct PlannedMove {
  std::size_t object = 0;
  std::size_t from_tier = 0;
  std::size_t to_tier = 0;
  Bytes bytes = 0;         ///< length of the moved range
  Bytes offset = 0;        ///< start of the range within the object
  bool partial = false;    ///< true when the range is a strict sub-range
};

class MigrationPlanner {
 public:
  explicit MigrationPlanner(const OnlinePolicyConfig& config) : config_(config) {}

  /// Plans promote/demote moves toward `fast_tier` given its current
  /// free headroom. Demotes always precede the promote they make room
  /// for, so applying the list in order never overcommits the tier.
  ///
  /// Objects of at least `huge_object_bytes` promote page-granularly:
  /// when the whole remainder does not fit, a chunk-aligned prefix of
  /// the not-yet-promoted range moves instead (one contiguous sub-range
  /// per evaluation, so `max_moves_per_step` caps evaluations, not
  /// chunks). Later evaluations continue from `fast_bytes`, so a hot
  /// huge object promotes incrementally until resident.
  [[nodiscard]] std::vector<PlannedMove> plan(const std::vector<ObjectView>& views,
                                              std::size_t fast_tier,
                                              Bytes fast_headroom) const;

 private:
  OnlinePolicyConfig config_;
};

/// Modeled duration of moving `bytes` from tier `from` to tier `to`.
[[nodiscard]] double migration_cost_ns(Bytes bytes, const memsim::MemorySystem& system,
                                       std::size_t from, std::size_t to,
                                       double bandwidth_fraction);

}  // namespace ecohmem::online
