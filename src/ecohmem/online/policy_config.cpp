#include "ecohmem/online/policy_config.hpp"

#include <cmath>

namespace ecohmem::online {

namespace {

constexpr const char* kKeys[] = {
    "sample_rate",       "ewma_alpha",        "window",
    "hysteresis",        "min_density",       "max_moves_per_step",
    "max_bytes_per_step", "bandwidth_fraction", "seed",
    "chunk_bytes",       "huge_object_bytes",
    nullptr,
};

bool known_key(std::string_view key) {
  for (const char* const* k = kKeys; *k != nullptr; ++k) {
    if (key == *k) return true;
  }
  return false;
}

}  // namespace

const char* const* policy_keys() { return kKeys; }

Status OnlinePolicyConfig::validate() const {
  const auto in_unit = [](double v) { return std::isfinite(v) && v > 0.0 && v <= 1.0; };
  if (!in_unit(sample_rate)) {
    return unexpected("online policy: sample_rate must be in (0, 1], got " +
                      std::to_string(sample_rate));
  }
  if (!in_unit(ewma_alpha)) {
    return unexpected("online policy: ewma_alpha must be in (0, 1], got " +
                      std::to_string(ewma_alpha));
  }
  if (window == 0) return unexpected("online policy: window must be > 0");
  if (!std::isfinite(hysteresis) || hysteresis < 0.0) {
    return unexpected("online policy: hysteresis must be >= 0, got " +
                      std::to_string(hysteresis));
  }
  if (!std::isfinite(min_density) || min_density < 0.0) {
    return unexpected("online policy: min_density must be >= 0, got " +
                      std::to_string(min_density));
  }
  if (max_moves_per_step == 0) {
    return unexpected("online policy: max_moves_per_step must be >= 1");
  }
  if (!in_unit(bandwidth_fraction)) {
    return unexpected("online policy: bandwidth_fraction must be in (0, 1], got " +
                      std::to_string(bandwidth_fraction));
  }
  if (chunk_bytes == 0 || (chunk_bytes & (chunk_bytes - 1)) != 0) {
    return unexpected("online policy: chunk_bytes must be a power of two, got " +
                      std::to_string(chunk_bytes));
  }
  if (huge_object_bytes != 0 && huge_object_bytes < chunk_bytes) {
    return unexpected("online policy: huge_object_bytes must be 0 (disabled) or >= chunk_bytes");
  }
  return {};
}

Expected<OnlinePolicyConfig> OnlinePolicyConfig::from_config(const Config& config) {
  // `[online]` section when present, else the unnamed global section —
  // a bare `key = value` policy file is accepted.
  const ConfigSection* section = config.first_section(kPolicySection);
  if (section == nullptr) section = &config.global();

  for (const auto& [key, value] : section->entries()) {
    (void)value;
    if (!known_key(key)) {
      return unexpected("online policy: unknown key '" + key + "' (see docs/online.md)");
    }
  }

  OnlinePolicyConfig out;
  const auto rate = section->get_double("sample_rate", out.sample_rate);
  if (!rate) return unexpected(rate.error());
  out.sample_rate = *rate;
  const auto alpha = section->get_double("ewma_alpha", out.ewma_alpha);
  if (!alpha) return unexpected(alpha.error());
  out.ewma_alpha = *alpha;
  const auto window = section->get_u64("window", out.window);
  if (!window) return unexpected(window.error());
  out.window = *window;
  const auto hysteresis = section->get_double("hysteresis", out.hysteresis);
  if (!hysteresis) return unexpected(hysteresis.error());
  out.hysteresis = *hysteresis;
  const auto min_density = section->get_double("min_density", out.min_density);
  if (!min_density) return unexpected(min_density.error());
  out.min_density = *min_density;
  const auto max_moves = section->get_u64("max_moves_per_step", out.max_moves_per_step);
  if (!max_moves) return unexpected(max_moves.error());
  out.max_moves_per_step = *max_moves;
  const auto max_bytes = section->get_bytes("max_bytes_per_step", out.max_bytes_per_step);
  if (!max_bytes) return unexpected(max_bytes.error());
  out.max_bytes_per_step = *max_bytes;
  const auto bw_fraction = section->get_double("bandwidth_fraction", out.bandwidth_fraction);
  if (!bw_fraction) return unexpected(bw_fraction.error());
  out.bandwidth_fraction = *bw_fraction;
  const auto seed = section->get_u64("seed", out.seed);
  if (!seed) return unexpected(seed.error());
  out.seed = *seed;
  const auto chunk = section->get_bytes("chunk_bytes", out.chunk_bytes);
  if (!chunk) return unexpected(chunk.error());
  out.chunk_bytes = *chunk;
  const auto huge = section->get_bytes("huge_object_bytes", out.huge_object_bytes);
  if (!huge) return unexpected(huge.error());
  out.huge_object_bytes = *huge;

  if (Status s = out.validate(); !s) return unexpected(s.error());
  return out;
}

Expected<OnlinePolicyConfig> OnlinePolicyConfig::load(const std::string& path) {
  auto config = Config::load(path);
  if (!config) return unexpected(config.error());
  return from_config(*config);
}

}  // namespace ecohmem::online
