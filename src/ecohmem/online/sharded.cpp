#include "ecohmem/online/sharded.hpp"

namespace ecohmem::online {

namespace {

/// Splitmix64-style mix of the policy seed with the shard index. A pure
/// function of (seed, shard): the per-shard sample streams are fixed at
/// construction and identical for every thread count.
std::uint64_t shard_seed(std::uint64_t seed, std::size_t shard) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(shard) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

ShardedOnlineState::ShardedOnlineState(const OnlinePolicyConfig& config) {
  for (std::size_t s = 0; s < kOnlineShards; ++s) {
    shards_[s] = std::make_unique<Shard>(config.sample_rate, shard_seed(config.seed, s),
                                         config.ewma_alpha, config.window);
  }
}

void ShardedOnlineState::process_kernel_shard(std::size_t shard,
                                              const std::vector<ObjectAccess>& feedback) {
  Shard& sh = *shards_[shard];
  common::ScopedLock lock(sh.mu);
  for (const ObjectAccess& access : feedback) {
    if (shard_of(access.object) != shard) continue;
    const SampledAccess sampled = sh.sampler.sample(access);
    const auto events = static_cast<double>(sampled.loads + sampled.stores);
    if (events > 0.0) sh.tracker.record(access.object, events, access.bytes);
  }
  sh.tracker.end_kernel();
}

void ShardedOnlineState::forget(std::size_t object) {
  Shard& sh = *shards_[shard_of(object)];
  common::ScopedLock lock(sh.mu);
  sh.tracker.forget(object);
}

void ShardedOnlineState::seed(std::size_t object, double prior) {
  Shard& sh = *shards_[shard_of(object)];
  common::ScopedLock lock(sh.mu);
  sh.tracker.seed(object, prior);
}

double ShardedOnlineState::hotness(std::size_t object) const {
  const Shard& sh = *shards_[shard_of(object)];
  common::ScopedLock lock(sh.mu);
  return sh.tracker.hotness(object);
}

double ShardedOnlineState::shield(std::size_t object) const {
  const Shard& sh = *shards_[shard_of(object)];
  common::ScopedLock lock(sh.mu);
  return sh.tracker.shield(object);
}

std::uint64_t ShardedOnlineState::age(std::size_t object) const {
  const Shard& sh = *shards_[shard_of(object)];
  common::ScopedLock lock(sh.mu);
  return sh.tracker.age(object);
}

std::size_t ShardedOnlineState::tracked() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    common::ScopedLock lock(shard->mu);
    total += shard->tracker.tracked();
  }
  return total;
}

}  // namespace ecohmem::online
