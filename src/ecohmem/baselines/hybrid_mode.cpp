#include "ecohmem/baselines/hybrid_mode.hpp"

#include <algorithm>
#include <cmath>

namespace ecohmem::baselines {

HybridMode::HybridMode(const memsim::MemorySystem* system, flexmalloc::FlexMalloc* fm,
                       std::size_t dram_tier, std::size_t pmem_tier, HybridOptions options)
    : ExecutionMode(system),
      fm_(fm),
      dram_tier_(dram_tier),
      pmem_tier_(pmem_tier),
      options_(options) {
  managed_budget_ = static_cast<Bytes>(options_.managed_fraction *
                                       static_cast<double>(system->tier(dram_tier_).capacity()));
}

Expected<std::uint64_t> HybridMode::on_alloc(std::size_t object,
                                             const runtime::ObjectSpec& spec,
                                             const runtime::SiteSpec& site, Bytes size) {
  (void)spec;
  auto allocation = fm_->malloc(site.stack, size);
  if (!allocation) return unexpected(allocation.error());

  if (objects_.size() <= object) objects_.resize(object + 1);
  auto& state = objects_[object];
  state.live = true;
  state.size = size;
  state.hotness = 0.0;
  state.proactive_dram = fm_->tier_name(allocation->tier_index) ==
                         system_->tier(dram_tier_).name();
  state.dram_fraction = state.proactive_dram ? 1.0 : 0.0;
  return allocation->address;
}

Status HybridMode::on_free(std::size_t object, std::uint64_t address) {
  if (object >= objects_.size() || !objects_[object].live) {
    return unexpected("hybrid: free of unknown object");
  }
  auto& state = objects_[object];
  if (!state.proactive_dram) {
    const auto promoted =
        static_cast<Bytes>(state.dram_fraction * static_cast<double>(state.size));
    managed_used_ = managed_used_ >= promoted ? managed_used_ - promoted : 0;
  }
  state.live = false;
  state.dram_fraction = 0.0;
  return fm_->free(address);
}

void HybridMode::resolve(const std::vector<runtime::LiveObjectRef>& objects,
                         const std::vector<memsim::KernelObjectMisses>& misses,
                         std::vector<runtime::ObjectTraffic>& out) {
  const double line = static_cast<double>(kCacheLine);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto& state = objects_.at(objects[i].object);
    const double f = state.dram_fraction;
    out[i].read_bytes[dram_tier_] += misses[i].read_lines() * f * line;
    out[i].read_bytes[pmem_tier_] += misses[i].read_lines() * (1.0 - f) * line;
    out[i].write_bytes[dram_tier_] += misses[i].store_misses * f * line;
    out[i].write_bytes[pmem_tier_] += misses[i].store_misses * (1.0 - f) * line;
    out[i].latency_share[dram_tier_] = f;
    out[i].latency_share[pmem_tier_] = 1.0 - f;
  }

  if (pending_migration_bytes_ > 0.0) {
    runtime::ObjectTraffic migration;
    const std::size_t tiers = system_->tier_count();
    migration.read_bytes.assign(tiers, 0.0);
    migration.write_bytes.assign(tiers, 0.0);
    migration.latency_share.assign(tiers, 0.0);
    migration.read_bytes[pmem_tier_] += pending_migration_bytes_;
    migration.write_bytes[dram_tier_] += pending_migration_bytes_;
    out.push_back(std::move(migration));
    migrated_bytes_ += pending_migration_bytes_;
    pending_migration_bytes_ = 0.0;
  }
}

void HybridMode::after_kernel(Ns start, Ns end,
                              const std::vector<runtime::LiveObjectRef>& objects,
                              const std::vector<memsim::KernelObjectMisses>& misses) {
  for (auto& state : objects_) state.hotness *= options_.hotness_decay;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    auto& state = objects_.at(objects[i].object);
    const double density = misses[i].load_misses + misses[i].store_misses;
    state.hotness += state.size > 0 ? density / static_cast<double>(state.size) : 0.0;
  }

  // Promote the hottest PMem-placed objects into the managed DRAM window.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    const auto& s = objects_[i];
    if (s.live && !s.proactive_dram && s.hotness > 0.0) candidates.push_back(i);
  }
  std::sort(candidates.begin(), candidates.end(), [this](std::size_t a, std::size_t b) {
    return objects_[a].hotness > objects_[b].hotness;
  });

  double budget_bytes =
      options_.migration_gbs * static_cast<double>(end > start ? end - start : 0);
  for (const std::size_t idx : candidates) {
    if (managed_used_ >= managed_budget_ || budget_bytes <= 0.0) break;
    auto& state = objects_[idx];
    const double room = static_cast<double>(managed_budget_ - managed_used_);
    const double wanted = (1.0 - state.dram_fraction) * static_cast<double>(state.size);
    const double moved = std::min({wanted, budget_bytes, room});
    if (moved <= 0.0) continue;
    state.dram_fraction += moved / static_cast<double>(state.size);
    managed_used_ += static_cast<Bytes>(moved);
    budget_bytes -= moved;
    pending_migration_bytes_ += moved;
  }
}

double HybridMode::take_alloc_overhead_ns() {
  const double total = fm_->matching_cost_ns();
  const double delta = total - overhead_taken_ns_;
  overhead_taken_ns_ = total;
  return delta;
}

}  // namespace ecohmem::baselines
