#include "ecohmem/baselines/profdp.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/common/rng.hpp"
#include "ecohmem/profiler/profiler.hpp"

namespace ecohmem::baselines {

namespace {

struct SiteProfile {
  bom::CallStack stack;
  Bytes footprint = 0;
  double loads = 0.0;
  double lat_dram = 0.0;
  double lat_pmem = 0.0;
  double lat_pmem_half = 0.0;
  std::uint64_t site_hash = 0;
};

/// Profiles the workload with everything pinned to `tier` of `system`.
Expected<analyzer::AnalysisResult> profile_fixed(const runtime::Workload& workload,
                                                 const memsim::MemorySystem& system,
                                                 std::size_t tier,
                                                 const runtime::EngineOptions& base_options,
                                                 double sample_rate_hz, std::uint64_t seed) {
  profiler::ProfilerOptions popt;
  popt.sample_rate_hz = sample_rate_hz;
  popt.seed = seed;
  profiler::Profiler prof(popt);

  runtime::EngineOptions eopt = base_options;
  eopt.observer = &prof;
  runtime::ExecutionEngine engine(&system, eopt);
  runtime::FixedTierMode mode(&system, tier);
  auto metrics = engine.run(workload, mode);
  if (!metrics) return unexpected("ProfDP profiling run failed: " + metrics.error());

  const trace::Trace trace = prof.take_trace();
  return analyzer::analyze(trace);
}

}  // namespace

Expected<std::vector<ProfDPVariant>> profdp_placements(
    const runtime::Workload& workload, const memsim::MemorySystem& system,
    const runtime::EngineOptions& engine_options, const ProfDPOptions& options) {
  // Locate the dram/pmem tiers (by convention: fastest = index 0, the
  // fallback is the PMem-like tier).
  const std::size_t dram_tier = 0;
  const std::size_t pmem_tier = system.fallback_index();
  if (dram_tier == pmem_tier || system.tier_count() < 2) {
    return unexpected("ProfDP needs a two-tier system");
  }

  // Third-system variant: PMem bandwidth halved.
  std::vector<memsim::TierSpec> half_specs;
  for (const auto& t : system.tiers()) half_specs.push_back(t.spec());
  for (auto& spec : half_specs) {
    if (spec.is_fallback) {
      spec.peak_read_gbs *= 0.5;
      spec.peak_write_gbs *= 0.5;
    }
  }
  auto half_system = memsim::MemorySystem::create(std::move(half_specs));
  if (!half_system) return unexpected(half_system.error());

  auto run_dram = profile_fixed(workload, system, dram_tier, engine_options,
                                options.sample_rate_hz, options.seed);
  if (!run_dram) return unexpected(run_dram.error());
  auto run_pmem = profile_fixed(workload, system, pmem_tier, engine_options,
                                options.sample_rate_hz, options.seed + 1);
  if (!run_pmem) return unexpected(run_pmem.error());
  auto run_half = profile_fixed(workload, *half_system, pmem_tier, engine_options,
                                options.sample_rate_hz, options.seed + 2);
  if (!run_half) return unexpected(run_half.error());

  // Join the three profiles by call stack.
  const bom::CallStackHash hasher;
  std::unordered_map<std::size_t, SiteProfile> joined;
  for (const auto& s : run_dram->sites) {
    SiteProfile p;
    p.stack = s.callstack;
    p.footprint = std::max(s.peak_live_bytes, s.max_size);
    p.loads = s.load_misses;
    p.lat_dram = s.avg_load_latency_ns;
    p.site_hash = hasher(s.callstack);
    joined.emplace(p.site_hash, std::move(p));
  }
  for (const auto& s : run_pmem->sites) {
    if (auto it = joined.find(hasher(s.callstack)); it != joined.end()) {
      it->second.lat_pmem = s.avg_load_latency_ns;
    }
  }
  for (const auto& s : run_half->sites) {
    if (auto it = joined.find(hasher(s.callstack)); it != joined.end()) {
      it->second.lat_pmem_half = s.avg_load_latency_ns;
    }
  }

  // Synthesize per-rank decomposition: a site is active in n ranks
  // (deterministic per site) and each rank's measurement is jittered.
  const int ranks = std::max(workload.ranks, 1);
  Rng rng(options.seed * 7919 + 13);

  struct Scored {
    const SiteProfile* site;
    double score[4];  // lat-sum, lat-avg, bw-sum, bw-avg
  };
  std::vector<Scored> scored;
  for (const auto& [hash, p] : joined) {
    (void)hash;
    const double lat_sens = p.loads * std::max(p.lat_pmem - p.lat_dram, 0.0);
    const double bw_sens = p.loads * std::max(p.lat_pmem_half - p.lat_pmem, 0.0);

    const int active_ranks = 1 + static_cast<int>(p.site_hash % static_cast<std::uint64_t>(ranks));
    double lat_sum = 0.0;
    double bw_sum = 0.0;
    for (int r = 0; r < active_ranks; ++r) {
      const double jitter = 1.0 + options.rank_jitter * (2.0 * rng.next_double() - 1.0);
      lat_sum += lat_sens / active_ranks * jitter;
      bw_sum += bw_sens / active_ranks * jitter;
    }
    Scored s{};
    s.site = &p;
    s.score[0] = lat_sum;
    s.score[1] = lat_sum / active_ranks;
    s.score[2] = bw_sum;
    s.score[3] = bw_sum / active_ranks;
    scored.push_back(s);
  }

  const char* names[4] = {"latency-sum", "latency-avg", "bandwidth-sum", "bandwidth-avg"};
  const std::string dram_name = system.tier(dram_tier).name();
  const std::string pmem_name = system.tier(pmem_tier).name();

  std::vector<ProfDPVariant> variants;
  for (int v = 0; v < 4; ++v) {
    std::vector<Scored> order = scored;
    std::stable_sort(order.begin(), order.end(),
                     [v](const Scored& a, const Scored& b) { return a.score[v] > b.score[v]; });

    ProfDPVariant variant;
    variant.name = names[v];
    variant.placement.fallback_tier = pmem_name;
    Bytes used = 0;
    for (const auto& s : order) {
      advisor::PlacementDecision d;
      d.callstack = s.site->stack;
      d.footprint = s.site->footprint;
      d.density = s.score[v];
      if (s.score[v] > 0.0 && used + s.site->footprint <= options.dram_limit) {
        used += s.site->footprint;
        d.tier = dram_name;
      } else {
        d.tier = pmem_name;
      }
      variant.placement.decisions.push_back(std::move(d));
    }
    variants.push_back(std::move(variant));
  }
  return variants;
}

}  // namespace ecohmem::baselines
