#include "ecohmem/baselines/kernel_tiering.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ecohmem::baselines {

KernelTieringMode::KernelTieringMode(const memsim::MemorySystem* system, std::size_t dram_tier,
                                     std::size_t pmem_tier, TieringOptions options)
    : ExecutionMode(system), dram_tier_(dram_tier), pmem_tier_(pmem_tier), options_(options) {
  const Bytes dram = system->tier(dram_tier_).capacity();
  const auto tax = static_cast<Bytes>(options_.metadata_fraction *
                                      static_cast<double>(system->tier(pmem_tier_).capacity()));
  usable_dram_ = dram > tax ? dram - tax : 0;
}

Expected<std::uint64_t> KernelTieringMode::on_alloc(std::size_t object,
                                                    const runtime::ObjectSpec& spec,
                                                    const runtime::SiteSpec& site, Bytes size) {
  (void)spec;
  (void)site;
  if (objects_.size() <= object) objects_.resize(object + 1);
  auto& state = objects_[object];
  state.live = true;
  state.size = size;
  state.hotness = 0.0;

  // First-touch: pages land in DRAM while it has room, else PMem.
  if (dram_used_ + size <= usable_dram_) {
    state.dram_fraction = 1.0;
    dram_used_ += size;
  } else if (dram_used_ < usable_dram_) {
    const Bytes room = usable_dram_ - dram_used_;
    state.dram_fraction = static_cast<double>(room) / static_cast<double>(size);
    dram_used_ = usable_dram_;
  } else {
    state.dram_fraction = 0.0;
  }

  const std::uint64_t address = next_address_;
  next_address_ += (size + kCacheLine - 1) / kCacheLine * kCacheLine;
  return address;
}

Status KernelTieringMode::on_free(std::size_t object, std::uint64_t address) {
  (void)address;
  if (object >= objects_.size() || !objects_[object].live) {
    return unexpected("tiering: free of unknown object");
  }
  auto& state = objects_[object];
  const auto dram_bytes =
      static_cast<Bytes>(state.dram_fraction * static_cast<double>(state.size));
  dram_used_ = dram_used_ >= dram_bytes ? dram_used_ - dram_bytes : 0;
  state.live = false;
  state.dram_fraction = 0.0;
  return {};
}

void KernelTieringMode::resolve(const std::vector<runtime::LiveObjectRef>& objects,
                                const std::vector<memsim::KernelObjectMisses>& misses,
                                std::vector<runtime::ObjectTraffic>& out) {
  const double line = static_cast<double>(kCacheLine);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto& state = objects_.at(objects[i].object);
    const double f = state.dram_fraction;
    out[i].read_bytes[dram_tier_] += misses[i].read_lines() * f * line;
    out[i].read_bytes[pmem_tier_] += misses[i].read_lines() * (1.0 - f) * line;
    out[i].write_bytes[dram_tier_] += misses[i].store_misses * f * line;
    out[i].write_bytes[pmem_tier_] += misses[i].store_misses * (1.0 - f) * line;
    out[i].latency_share[dram_tier_] = f;
    out[i].latency_share[pmem_tier_] = 1.0 - f;
  }

  // Pending migration from the previous after_kernel: background traffic
  // reading from the source tier and writing to the destination. Promotion
  // and demotion are symmetric at this granularity, so charge half each
  // way.
  if (pending_migration_bytes_ > 0.0) {
    runtime::ObjectTraffic migration;
    const std::size_t tiers = system_->tier_count();
    migration.read_bytes.assign(tiers, 0.0);
    migration.write_bytes.assign(tiers, 0.0);
    migration.latency_share.assign(tiers, 0.0);
    migration.read_bytes[pmem_tier_] += pending_migration_bytes_ * 0.5;
    migration.write_bytes[dram_tier_] += pending_migration_bytes_ * 0.5;
    migration.read_bytes[dram_tier_] += pending_migration_bytes_ * 0.5;
    migration.write_bytes[pmem_tier_] += pending_migration_bytes_ * 0.5;
    out.push_back(std::move(migration));
    migrated_bytes_ += pending_migration_bytes_;
    pending_migration_bytes_ = 0.0;
  }
}

void KernelTieringMode::after_kernel(Ns start, Ns end,
                                     const std::vector<runtime::LiveObjectRef>& objects,
                                     const std::vector<memsim::KernelObjectMisses>& misses) {
  // Update hotness = decayed miss density (misses per byte).
  for (auto& state : objects_) state.hotness *= options_.hotness_decay;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    auto& state = objects_.at(objects[i].object);
    const double density = misses[i].load_misses + misses[i].store_misses;
    state.hotness += state.size > 0 ? density / static_cast<double>(state.size) : 0.0;
  }

  // Target allocation: hottest live objects own DRAM, in hotness order.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    if (objects_[i].live) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return objects_[a].hotness > objects_[b].hotness;
  });

  std::vector<double> target(objects_.size(), 0.0);
  Bytes budget = usable_dram_;
  for (const std::size_t idx : order) {
    const Bytes size = objects_[idx].size;
    if (size == 0) continue;
    if (size <= budget) {
      target[idx] = 1.0;
      budget -= size;
    } else if (budget > 0) {
      target[idx] = static_cast<double>(budget) / static_cast<double>(size);
      budget = 0;
    }
  }

  // Move fractions toward targets, bounded by the migration budget over
  // the elapsed kernel time. kswapd-style demotion frees space first.
  const double window_ns = static_cast<double>(end - start);
  double budget_bytes = options_.migration_gbs * window_ns;  // GB/s * ns = bytes

  auto step_fraction = [&](std::size_t idx, bool promote) {
    auto& state = objects_[idx];
    const double delta = target[idx] - state.dram_fraction;
    if ((promote && delta <= 0.0) || (!promote && delta >= 0.0)) return;
    const double wanted = std::abs(delta) * static_cast<double>(state.size);
    const double moved = std::min(wanted, budget_bytes);
    if (moved <= 0.0) return;
    budget_bytes -= moved;
    pending_migration_bytes_ += moved;
    const double frac_moved = moved / static_cast<double>(state.size);
    if (promote) {
      state.dram_fraction += frac_moved;
      dram_used_ += static_cast<Bytes>(moved);
    } else {
      state.dram_fraction -= frac_moved;
      const auto freed = static_cast<Bytes>(moved);
      dram_used_ = dram_used_ >= freed ? dram_used_ - freed : 0;
    }
  };

  for (auto it = order.rbegin(); it != order.rend(); ++it) step_fraction(*it, /*promote=*/false);
  for (const std::size_t idx : order) step_fraction(idx, /*promote=*/true);
}

}  // namespace ecohmem::baselines
