#pragma once

/// \file kernel_tiering.hpp
/// Kernel-level reactive page migration baseline — the model of Intel's
/// experimental "memory tiering" kernels (tiering-0.71, §VIII-A).
///
/// Behaviour reproduced:
///   - the PMem devdax NUMA node costs `struct page` metadata in DRAM,
///     proportional to PMem size (~15 GB on the paper's node), shrinking
///     the DRAM available to the application;
///   - placement is reactive: objects start wherever they fit (DRAM
///     first), and after every kernel the hottest objects (by observed
///     miss density) are promoted page-by-page into the remaining DRAM
///     while colder ones are demoted, subject to a migration-bandwidth
///     budget;
///   - migration itself consumes bandwidth on both tiers (modeled as
///     background traffic entries).

#include <vector>

#include "ecohmem/runtime/mode.hpp"

namespace ecohmem::baselines {

struct TieringOptions {
  /// DRAM metadata cost as a fraction of PMem capacity (~15 GB / 3 TB).
  double metadata_fraction = 0.005;

  /// Migration budget in bytes per second of simulated time.
  double migration_gbs = 2.0;

  /// Exponential decay of per-object hotness between kernels.
  double hotness_decay = 0.5;
};

class KernelTieringMode final : public runtime::ExecutionMode {
 public:
  KernelTieringMode(const memsim::MemorySystem* system, std::size_t dram_tier,
                    std::size_t pmem_tier, TieringOptions options = {});

  [[nodiscard]] std::string name() const override { return "kernel-tiering"; }
  [[nodiscard]] Expected<std::uint64_t> on_alloc(std::size_t object,
                                                 const runtime::ObjectSpec& spec,
                                                 const runtime::SiteSpec& site,
                                                 Bytes size) override;
  [[nodiscard]] Status on_free(std::size_t object, std::uint64_t address) override;
  void resolve(const std::vector<runtime::LiveObjectRef>& objects,
               const std::vector<memsim::KernelObjectMisses>& misses,
               std::vector<runtime::ObjectTraffic>& out) override;
  void after_kernel(Ns start, Ns end, const std::vector<runtime::LiveObjectRef>& objects,
                    const std::vector<memsim::KernelObjectMisses>& misses) override;

  /// DRAM available to application pages after the metadata tax.
  [[nodiscard]] Bytes usable_dram() const { return usable_dram_; }

  /// Total bytes migrated so far (diagnostics).
  [[nodiscard]] double migrated_bytes() const { return migrated_bytes_; }

 private:
  struct ObjectState {
    bool live = false;
    Bytes size = 0;
    double dram_fraction = 0.0;  ///< fraction of pages currently in DRAM
    double hotness = 0.0;        ///< decayed miss density
  };

  std::size_t dram_tier_;
  std::size_t pmem_tier_;
  TieringOptions options_;
  Bytes usable_dram_ = 0;
  Bytes dram_used_ = 0;
  std::vector<ObjectState> objects_;
  std::uint64_t next_address_ = 1ull << 40;
  double pending_migration_bytes_ = 0.0;
  double migrated_bytes_ = 0.0;
};

}  // namespace ecohmem::baselines
