#pragma once

/// \file hybrid_mode.hpp
/// Proactive + reactive hybrid placement — the paper's stated future work
/// (§III: kernel-level page migration "may be combined to leverage an
/// initial proactive object placement provided by the latter along with
/// reactive runtime page migration capabilities provided by the former").
///
/// Objects are *initially* placed by FlexMalloc according to the Advisor
/// report (proactive), and the kernel's reactive migrator is then free to
/// promote/demote pages as observed hotness diverges from the profile.
/// Unlike the pure tiering baseline there is no full-size metadata tax
/// here: the implementation assumes a devdax-backed allocation for the
/// report-placed objects plus a small migration-managed window
/// (`managed_fraction` of DRAM).

#include "ecohmem/baselines/kernel_tiering.hpp"
#include "ecohmem/flexmalloc/flexmalloc.hpp"
#include "ecohmem/runtime/mode.hpp"

namespace ecohmem::baselines {

struct HybridOptions {
  /// Migration budget, bytes per second of simulated time.
  double migration_gbs = 2.0;
  /// Hotness decay between kernels.
  double hotness_decay = 0.5;
  /// Fraction of DRAM the reactive migrator may repurpose on top of the
  /// proactive placement (kept small so the Advisor's plan dominates).
  double managed_fraction = 0.15;
};

class HybridMode final : public runtime::ExecutionMode {
 public:
  HybridMode(const memsim::MemorySystem* system, flexmalloc::FlexMalloc* fm,
             std::size_t dram_tier, std::size_t pmem_tier, HybridOptions options = {});

  [[nodiscard]] std::string name() const override { return "hybrid-proactive-reactive"; }
  [[nodiscard]] Expected<std::uint64_t> on_alloc(std::size_t object,
                                                 const runtime::ObjectSpec& spec,
                                                 const runtime::SiteSpec& site,
                                                 Bytes size) override;
  [[nodiscard]] Status on_free(std::size_t object, std::uint64_t address) override;
  void resolve(const std::vector<runtime::LiveObjectRef>& objects,
               const std::vector<memsim::KernelObjectMisses>& misses,
               std::vector<runtime::ObjectTraffic>& out) override;
  void after_kernel(Ns start, Ns end, const std::vector<runtime::LiveObjectRef>& objects,
                    const std::vector<memsim::KernelObjectMisses>& misses) override;
  [[nodiscard]] double take_alloc_overhead_ns() override;
  [[nodiscard]] std::uint64_t oom_redirects() const override { return fm_->oom_redirects(); }

  [[nodiscard]] double migrated_bytes() const { return migrated_bytes_; }

 private:
  struct ObjectState {
    bool live = false;
    Bytes size = 0;
    double dram_fraction = 0.0;  ///< includes the proactive base placement
    double hotness = 0.0;
    bool proactive_dram = false;
  };

  flexmalloc::FlexMalloc* fm_;
  std::size_t dram_tier_;
  std::size_t pmem_tier_;
  HybridOptions options_;
  Bytes managed_budget_ = 0;    ///< DRAM the migrator may fill with promotions
  Bytes managed_used_ = 0;
  std::vector<ObjectState> objects_;
  double overhead_taken_ns_ = 0.0;
  double pending_migration_bytes_ = 0.0;
  double migrated_bytes_ = 0.0;
};

}  // namespace ecohmem::baselines
