#pragma once

/// \file profdp.hpp
/// ProfDP baseline (Wen et al., ICS'18) as reproduced by the paper §VIII.
///
/// ProfDP is a *differential* profiler: it needs three profiling runs —
/// here all-DRAM, all-PMem, and all-PMem with halved bandwidth — and
/// derives per-object sensitivities:
///
///   latency sensitivity    = loads * (lat_pmem - lat_dram)
///   bandwidth sensitivity  = loads * (lat_pmem_halfbw - lat_pmem)
///
/// Objects are ranked by sensitivity and DRAM is filled greedily in rank
/// order. The paper hit an ambiguity ProfDP does not address — how to
/// aggregate per-rank profiles in MPI applications — and evaluated both
/// `sum` and `avg`, i.e. four variants total, reporting the best. We
/// reproduce all four (per-rank profiles are synthesized by splitting
/// node-level counts across the ranks a site is active in, with
/// deterministic jitter).

#include <string>
#include <vector>

#include "ecohmem/advisor/placement.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/memsim/tier.hpp"
#include "ecohmem/runtime/engine.hpp"
#include "ecohmem/runtime/workload.hpp"

namespace ecohmem::baselines {

struct ProfDPOptions {
  Bytes dram_limit = 12ull * 1024 * 1024 * 1024;
  double sample_rate_hz = 100.0;
  std::uint64_t seed = 77;
  double rank_jitter = 0.25;  ///< relative per-rank measurement spread
};

/// One of the four ProfDP ranking variants.
struct ProfDPVariant {
  std::string name;  ///< "latency-sum", "latency-avg", "bandwidth-sum", "bandwidth-avg"
  advisor::Placement placement;
};

/// Runs the three differential profiling passes and produces the four
/// placements. `system` is the production memory system (its PMem tier is
/// cloned with halved bandwidth for the third pass).
[[nodiscard]] Expected<std::vector<ProfDPVariant>> profdp_placements(
    const runtime::Workload& workload, const memsim::MemorySystem& system,
    const runtime::EngineOptions& engine_options, const ProfDPOptions& options);

}  // namespace ecohmem::baselines
