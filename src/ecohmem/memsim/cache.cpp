#include "ecohmem/memsim/cache.hpp"

#include <algorithm>

namespace ecohmem::memsim {

SetAssocCache::SetAssocCache(CacheGeometry geometry)
    : geom_(geometry), num_sets_(std::max<std::uint64_t>(geometry.num_sets(), 1)) {
  ways_.resize(num_sets_ * geom_.ways);
}

CacheAccessResult SetAssocCache::access(std::uint64_t addr, bool is_write) {
  const std::uint64_t line_addr = addr / geom_.line;
  const std::uint64_t set = set_of(line_addr);
  Way* base = &ways_[set * geom_.ways];
  ++clock_;

  CacheAccessResult result;
  for (unsigned w = 0; w < geom_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line_addr) {
      way.lru = clock_;
      way.dirty = way.dirty || is_write;
      ++hits_;
      result.hit = true;
      return result;
    }
  }

  // Miss: pick invalid way or LRU victim.
  Way* victim = base;
  for (unsigned w = 0; w < geom_.ways; ++w) {
    Way& way = base[w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (way.lru < victim->lru) victim = &way;
  }
  if (victim->valid) {
    result.evicted_valid = true;
    result.evicted_line = victim->tag * geom_.line;
    if (victim->dirty) {
      result.writeback = true;
      ++writebacks_;
    }
  }
  victim->tag = line_addr;
  victim->valid = true;
  victim->dirty = is_write;
  victim->lru = clock_;
  ++misses_;
  return result;
}

bool SetAssocCache::probe(std::uint64_t addr) const {
  const std::uint64_t line_addr = addr / geom_.line;
  const std::uint64_t set = set_of(line_addr);
  const Way* base = &ways_[set * geom_.ways];
  for (unsigned w = 0; w < geom_.ways; ++w) {
    if (base[w].valid && base[w].tag == line_addr) return true;
  }
  return false;
}

void SetAssocCache::flush() {
  std::fill(ways_.begin(), ways_.end(), Way{});
  clock_ = 0;
}

CacheHierarchy::CacheHierarchy(CacheGeometry l1, CacheGeometry l2, CacheGeometry llc)
    : l1_(l1), l2_(l2), llc_(llc) {}

CacheHierarchy CacheHierarchy::xeon_8260l() {
  return CacheHierarchy({32 * 1024, 8, kCacheLine},
                        {1024 * 1024, 16, kCacheLine},
                        {35842624 / 64 * 64, 11, kCacheLine});  // 35.75 MiB rounded to lines
}

HitLevel CacheHierarchy::access(std::uint64_t addr, bool is_write) {
  const auto r1 = l1_.access(addr, is_write);
  if (is_write && !r1.hit) ++l1_store_misses_;
  if (r1.hit) return HitLevel::kL1;
  if (r1.writeback) {
    const auto wb = l2_.access(r1.evicted_line, true);
    if (!wb.hit && wb.writeback) llc_.access(wb.evicted_line, true);
  }

  const auto r2 = l2_.access(addr, is_write);
  if (r2.hit) return HitLevel::kL2;
  if (r2.writeback) llc_.access(r2.evicted_line, true);

  const auto r3 = llc_.access(addr, is_write);
  if (r3.hit) return HitLevel::kLlc;
  if (!is_write) ++llc_load_misses_;
  return HitLevel::kMemory;
}

void CacheHierarchy::flush() {
  l1_.flush();
  l2_.flush();
  llc_.flush();
  llc_load_misses_ = 0;
  l1_store_misses_ = 0;
}

}  // namespace ecohmem::memsim
