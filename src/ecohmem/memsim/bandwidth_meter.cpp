#include "ecohmem/memsim/bandwidth_meter.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace ecohmem::memsim {

BandwidthMeter::BandwidthMeter(std::size_t tiers, Ns bin_ns)
    : bin_ns_(std::max<Ns>(bin_ns, 1)), bins_(tiers) {}

void BandwidthMeter::add(std::size_t tier, Ns t0, Ns t1, double bytes) {
  if (tier >= bins_.size() || bytes <= 0.0) return;
  if (t1 <= t0) t1 = t0 + 1;

  auto& lane = bins_[tier];
  const std::size_t first = static_cast<std::size_t>(t0 / bin_ns_);
  const std::size_t last = static_cast<std::size_t>((t1 - 1) / bin_ns_);
  if (last >= lane.size()) lane.resize(last + 1, 0.0);

  const double span = static_cast<double>(t1 - t0);
  for (std::size_t b = first; b <= last; ++b) {
    const Ns bin_start = static_cast<Ns>(b) * bin_ns_;
    const Ns bin_end = bin_start + bin_ns_;
    const Ns overlap_start = std::max(bin_start, t0);
    const Ns overlap_end = std::min(bin_end, t1);
    const double frac = static_cast<double>(overlap_end - overlap_start) / span;
    lane[b] += bytes * frac;
  }
}

Status BandwidthMeter::merge_from(const BandwidthMeter& other) {
  if (other.bin_ns_ != bin_ns_) {
    return unexpected("BandwidthMeter::merge_from: bin width mismatch (" +
                      std::to_string(bin_ns_) + " vs " + std::to_string(other.bin_ns_) + ")");
  }
  if (other.bins_.size() != bins_.size()) {
    return unexpected("BandwidthMeter::merge_from: tier count mismatch (" +
                      std::to_string(bins_.size()) + " vs " +
                      std::to_string(other.bins_.size()) + ")");
  }
  for (std::size_t tier = 0; tier < bins_.size(); ++tier) {
    const auto& src = other.bins_[tier];
    auto& dst = bins_[tier];
    if (src.size() > dst.size()) dst.resize(src.size(), 0.0);
    for (std::size_t b = 0; b < src.size(); ++b) dst[b] += src[b];
  }
  return {};
}

std::vector<BandwidthPoint> BandwidthMeter::series(std::size_t tier) const {
  std::vector<BandwidthPoint> out;
  if (tier >= bins_.size()) return out;
  const auto& lane = bins_[tier];
  out.reserve(lane.size());
  for (std::size_t b = 0; b < lane.size(); ++b) {
    out.push_back({static_cast<Ns>(b) * bin_ns_,
                   lane[b] / static_cast<double>(bin_ns_)});
  }
  return out;
}

double BandwidthMeter::average_gbs(std::size_t tier, Ns t0, Ns t1) const {
  if (tier >= bins_.size() || t1 <= t0) return 0.0;
  const auto& lane = bins_[tier];
  double bytes = 0.0;
  const std::size_t first = static_cast<std::size_t>(t0 / bin_ns_);
  const std::size_t last = static_cast<std::size_t>((t1 - 1) / bin_ns_);
  for (std::size_t b = first; b <= last && b < lane.size(); ++b) {
    const Ns bin_start = static_cast<Ns>(b) * bin_ns_;
    const Ns bin_end = bin_start + bin_ns_;
    const Ns overlap_start = std::max(bin_start, t0);
    const Ns overlap_end = std::min(bin_end, t1);
    bytes += lane[b] * static_cast<double>(overlap_end - overlap_start) /
             static_cast<double>(bin_ns_);
  }
  return bytes / static_cast<double>(t1 - t0);
}

double BandwidthMeter::peak_gbs(std::size_t tier) const {
  if (tier >= bins_.size()) return 0.0;
  double peak = 0.0;
  for (const double bytes : bins_[tier]) {
    peak = std::max(peak, bytes / static_cast<double>(bin_ns_));
  }
  return peak;
}

}  // namespace ecohmem::memsim
