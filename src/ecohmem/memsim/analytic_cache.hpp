#pragma once

/// \file analytic_cache.hpp
/// Analytic LLC model for phase-based workload execution.
///
/// The execution engine (runtime/) does not replay individual addresses for
/// application-scale footprints; instead each kernel step describes, per
/// live object, how many loads/stores reach the last-level cache and how
/// many bytes are touched. This model converts those descriptors into LLC
/// miss counts using a residency-share approximation:
///
///   residency  = min(1, LLC lines / sum of lines demanded by the kernel)
///   cold       = footprint / line            (compulsory, per kernel)
///   p_hit(o)   = friendliness(o) * residency
///   misses(o)  = cold(o) + (accesses(o) - cold(o)) * (1 - p_hit(o))
///
/// `friendliness` folds the access pattern's temporal locality at LLC
/// granularity: ~0.95 for blocked/strided reuse, ~0 for pure streaming
/// (whose reuse hits land in L1/L2 and never reach the LLC again).
///
/// Crucially for ecoHMEM, LLC miss counts are *placement independent* —
/// they depend only on the access stream — which is why the paper can
/// profile once and replay the placement on the same binary (§IV).

#include <vector>

#include "ecohmem/common/units.hpp"

namespace ecohmem::memsim {

/// Per-object, per-kernel access descriptor (inputs to the LLC model).
struct KernelObjectAccess {
  double llc_loads = 0.0;      ///< load requests reaching the LLC
  double llc_stores = 0.0;     ///< store/writeback requests reaching the LLC
  double footprint = 0.0;      ///< bytes touched by this kernel
  double friendliness = 0.0;   ///< [0,1] LLC temporal locality (see file comment)

  /// [0,1] fraction of would-be demand misses covered by hardware
  /// prefetch. Prefetched lines still travel from memory (bandwidth) but
  /// do not stall the pipeline and are invisible to the
  /// MEM_LOAD_RETIRED.L3_MISS counter — the reason miss-density
  /// heuristics undervalue streaming objects (§VII's motivation).
  double prefetch_efficiency = 0.0;
};

/// Per-object LLC outcome.
struct KernelObjectMisses {
  double load_misses = 0.0;       ///< demand misses (PEBS L3_MISS analogue; stall)
  double prefetched_loads = 0.0;  ///< prefetch-covered fills (bandwidth only)
  double store_misses = 0.0;      ///< dirty traffic that goes to memory

  /// Total lines read from memory.
  [[nodiscard]] double read_lines() const { return load_misses + prefetched_loads; }
};

/// Aggregate outcome of one kernel step.
struct KernelCacheOutcome {
  std::vector<KernelObjectMisses> per_object;  ///< parallel to the input vector
  double total_load_misses = 0.0;
  double total_store_misses = 0.0;
  double llc_hit_ratio = 0.0;  ///< of requests reaching the LLC
};

class AnalyticCacheModel {
 public:
  /// `llc_bytes` is the total shared LLC capacity available to the job.
  explicit AnalyticCacheModel(Bytes llc_bytes, Bytes line = kCacheLine);

  [[nodiscard]] KernelCacheOutcome evaluate(
      const std::vector<KernelObjectAccess>& accesses) const;

  [[nodiscard]] Bytes llc_bytes() const { return llc_bytes_; }

 private:
  Bytes llc_bytes_;
  Bytes line_;
};

}  // namespace ecohmem::memsim
