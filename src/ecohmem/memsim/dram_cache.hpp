#pragma once

/// \file dram_cache.hpp
/// Memory-mode model: DRAM as a hardware-managed, direct-mapped,
/// write-back cache in front of the PMem virtual address space (§II).
///
/// In memory mode the whole application lives in PMem; every LLC miss
/// first probes the DRAM cache. The model produces, per object, a DRAM
/// hit ratio and the induced traffic split (DRAM reads/writes, PMem
/// reads/writes including fills and dirty writebacks):
///
///   h(o) = locality(o) * min(1, (DRAM / hot footprint)^alpha)
///
/// `locality(o)` is the object's page/line-level temporal locality in the
/// DRAM cache (a workload-model parameter folding the access pattern);
/// the capacity term has exponent alpha > 1 because a direct-mapped cache
/// suffers conflict misses before it runs out of raw capacity (the factor
/// drops faster than proportionally once the footprint exceeds DRAM) —
/// the "pathological cases suffering from numerous conflict misses" the
/// paper cites as memory mode's weakness.

#include <vector>

#include "ecohmem/common/units.hpp"

namespace ecohmem::memsim {

/// Per-object memory-mode traffic descriptor (LLC-miss level).
struct DramCacheTraffic {
  double load_misses = 0.0;   ///< LLC load misses issued to this object
  double store_misses = 0.0;  ///< LLC dirty evictions issued to this object
  double footprint = 0.0;     ///< bytes of the object that are hot
  double locality = 0.0;      ///< [0,1] DRAM-cache friendliness of the pattern
};

/// Traffic decomposition for one object under memory mode.
struct DramCacheObjectOutcome {
  double hit_ratio = 0.0;
  double dram_read_bytes = 0.0;
  double dram_write_bytes = 0.0;
  double pmem_read_bytes = 0.0;
  double pmem_write_bytes = 0.0;
};

struct DramCacheOutcome {
  std::vector<DramCacheObjectOutcome> per_object;
  double hit_ratio = 0.0;  ///< request-weighted aggregate (Table VI metric)
  double dram_read_bytes = 0.0;
  double dram_write_bytes = 0.0;
  double pmem_read_bytes = 0.0;
  double pmem_write_bytes = 0.0;
};

class DramCacheModel {
 public:
  /// `dram_bytes`: capacity of the DRAM cache (all DRAM in memory mode).
  /// `conflict_alpha`: exponent of the capacity term (1 = ideally
  /// proportional, >1 = direct-mapped conflict penalty).
  explicit DramCacheModel(Bytes dram_bytes, double conflict_alpha = 1.1,
                          Bytes line = kCacheLine);

  [[nodiscard]] DramCacheOutcome evaluate(const std::vector<DramCacheTraffic>& traffic) const;

  /// Extra latency of a DRAM-cache miss on top of the PMem access itself
  /// (tag probe + fill management), in ns.
  [[nodiscard]] double miss_overhead_ns() const { return 70.0; }

  [[nodiscard]] Bytes dram_bytes() const { return dram_bytes_; }

 private:
  Bytes dram_bytes_;
  double conflict_alpha_;
  Bytes line_;
};

}  // namespace ecohmem::memsim
