#include "ecohmem/memsim/tier.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace ecohmem::memsim {

namespace {

/// Queueing-shaped growth factor: g(0) = 0, strictly increasing, finite at
/// kMaxUtilization. Normalized so g(kReferenceUtilization) == 1.
double queue_growth(double utilization) {
  const double u = std::clamp(utilization, 0.0, kMaxUtilization);
  const double g = u / (1.0 - u);
  const double g_ref = kReferenceUtilization / (1.0 - kReferenceUtilization);
  return g / g_ref;
}

}  // namespace

MemoryTier::MemoryTier(TierSpec spec) : spec_(std::move(spec)) {}

double MemoryTier::utilization(double read_gbs, double write_gbs) const {
  double u = 0.0;
  if (spec_.peak_read_gbs > 0.0) u += std::max(read_gbs, 0.0) / spec_.peak_read_gbs;
  if (spec_.peak_write_gbs > 0.0) u += std::max(write_gbs, 0.0) / spec_.peak_write_gbs;
  return std::min(u, kMaxUtilization);
}

double MemoryTier::read_latency_ns(double u) const {
  return spec_.idle_read_ns + (spec_.loaded_read_ns - spec_.idle_read_ns) * queue_growth(u);
}

double MemoryTier::write_latency_ns(double u) const {
  return spec_.idle_write_ns + (spec_.loaded_write_ns - spec_.idle_write_ns) * queue_growth(u);
}

double MemoryTier::deliverable_read_gbs(double write_gbs) const {
  const double write_share =
      spec_.peak_write_gbs > 0.0 ? std::max(write_gbs, 0.0) / spec_.peak_write_gbs : 0.0;
  const double read_share = std::max(0.0, kMaxUtilization - write_share);
  return read_share * spec_.peak_read_gbs;
}

Expected<MemorySystem> MemorySystem::create(std::vector<TierSpec> tiers) {
  if (tiers.empty()) return unexpected("memory system needs at least one tier");

  std::set<std::string> names;
  std::size_t fallback_count = 0;
  for (const auto& t : tiers) {
    if (t.name.empty()) return unexpected("tier with empty name");
    if (!names.insert(t.name).second) return unexpected("duplicate tier name: " + t.name);
    if (t.capacity == 0) return unexpected("tier '" + t.name + "' has zero capacity");
    if (t.peak_read_gbs <= 0.0 || t.peak_write_gbs <= 0.0) {
      return unexpected("tier '" + t.name + "' has non-positive peak bandwidth");
    }
    if (t.loaded_read_ns < t.idle_read_ns || t.loaded_write_ns < t.idle_write_ns) {
      return unexpected("tier '" + t.name + "' loaded latency below idle latency");
    }
    if (t.is_fallback) ++fallback_count;
  }
  if (fallback_count != 1) return unexpected("memory system needs exactly one fallback tier");

  std::stable_sort(tiers.begin(), tiers.end(),
                   [](const TierSpec& a, const TierSpec& b) {
                     return a.performance_rank < b.performance_rank;
                   });

  MemorySystem sys;
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    if (tiers[i].is_fallback) sys.fallback_ = i;
    sys.tiers_.emplace_back(std::move(tiers[i]));
  }
  return sys;
}

Expected<std::size_t> MemorySystem::tier_index(std::string_view name) const {
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (tiers_[i].name() == name) return i;
  }
  return unexpected("unknown tier: '" + std::string(name) + "'");
}

TierSpec ddr4_dram_spec(Bytes capacity) {
  TierSpec t;
  t.name = "dram";
  t.capacity = capacity;
  // Fig. 2 calibration: ~90 ns idle; 117 ns at 22 GB/s with a ~38 GB/s
  // read ceiling (2 DDR4-2666 channels populated on the pinned socket).
  t.idle_read_ns = 90.0;
  t.loaded_read_ns = 268.0;  // anchored at u = 0.9; yields ~117 ns at 22 GB/s
  t.idle_write_ns = 95.0;
  t.loaded_write_ns = 290.0;
  t.peak_read_gbs = 38.0;
  t.peak_write_gbs = 30.0;
  t.performance_rank = 0;
  t.is_fallback = false;
  return t;
}

TierSpec optane_pmem_spec(int dimms) {
  TierSpec t;
  t.name = "pmem";
  const int n = std::max(dimms, 1);
  t.capacity = static_cast<Bytes>(n) * Bytes{512} * 1024 * 1024 * 1024;
  // Per-DIMM Optane 100: ~4.3 GB/s read, ~1.5 GB/s write (sequential).
  // 6 DIMMs => ~26 GB/s read / ~9 GB/s write, matching the §II statement
  // that PMem read bandwidth is ~25% of DRAM and write ~10%.
  t.peak_read_gbs = 4.33 * n;
  t.peak_write_gbs = 1.5 * n;
  // Fig. 2 calibration: ~185 ns idle; 239 ns at 22 GB/s on 6 DIMMs
  // (u = 0.847, growth 0.614) anchors loaded_read at ~273 ns for u = 0.9.
  t.idle_read_ns = 185.0;
  t.loaded_read_ns = 273.0;
  t.idle_write_ns = 260.0;  // §II: write latency 6x-30x DRAM depending on pattern
  t.loaded_write_ns = 900.0;
  t.performance_rank = 1;
  t.is_fallback = true;
  return t;
}

TierSpec optane_pmem200_spec(int dimms) {
  TierSpec t = optane_pmem_spec(dimms);
  t.peak_read_gbs *= 1.4;
  t.peak_write_gbs *= 1.4;
  t.idle_read_ns = 170.0;
  t.loaded_read_ns = 250.0;
  t.idle_write_ns = 230.0;
  t.loaded_write_ns = 780.0;
  return t;
}

TierSpec hbm2_spec(Bytes capacity) {
  TierSpec t;
  t.name = "hbm";
  t.capacity = capacity;
  t.idle_read_ns = 110.0;  // HBM trades latency for bandwidth
  t.loaded_read_ns = 180.0;
  t.idle_write_ns = 110.0;
  t.loaded_write_ns = 180.0;
  t.peak_read_gbs = 300.0;
  t.peak_write_gbs = 300.0;
  t.performance_rank = 0;
  t.is_fallback = false;
  return t;
}

Expected<MemorySystem> paper_system(int pmem_dimms) {
  return MemorySystem::create({ddr4_dram_spec(), optane_pmem_spec(pmem_dimms)});
}

}  // namespace ecohmem::memsim
