#pragma once

/// \file tier.hpp
/// Memory tier performance models.
///
/// This is the hardware substitute for the paper's DDR4 + Intel Optane
/// PMem 100 testbed (DESIGN.md §2). Each tier has a bandwidth-dependent
/// access latency curve calibrated against the paper's Fig. 2 and §II:
/// at idle, DRAM reads cost ~90 ns and PMem reads ~185 ns; at 22 GB/s the
/// paper reports 117 ns and 239 ns respectively. The curve shape is an
/// M/M/1-inspired `idle + k * u/(1-u)` where `u` is utilization, so
/// latency diverges as demand approaches the tier's peak bandwidth —
/// the effect that motivates the bandwidth-aware placement of §VII.

#include <string>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::memsim {

/// Static description of one memory subsystem.
struct TierSpec {
  std::string name;
  Bytes capacity = 0;

  double idle_read_ns = 0.0;    ///< unloaded read latency
  double loaded_read_ns = 0.0;  ///< read latency at reference utilization (0.9)
  double idle_write_ns = 0.0;
  double loaded_write_ns = 0.0;

  double peak_read_gbs = 0.0;   ///< sequential read bandwidth ceiling
  double peak_write_gbs = 0.0;  ///< sequential write bandwidth ceiling

  /// Knapsack order: tiers are filled by the Advisor in ascending rank
  /// (rank 0 = fastest tier).
  int performance_rank = 0;

  /// True for the tier used when the Advisor report does not list an
  /// object or another tier runs out of space (the paper uses PMem).
  bool is_fallback = false;
};

/// Utilization at which `loaded_*_ns` is anchored.
inline constexpr double kReferenceUtilization = 0.9;

/// Utilization ceiling: demand beyond this throttles throughput instead of
/// growing latency without bound.
inline constexpr double kMaxUtilization = 0.98;

/// Runtime latency/bandwidth model for one tier.
class MemoryTier {
 public:
  explicit MemoryTier(TierSpec spec);

  [[nodiscard]] const TierSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] Bytes capacity() const { return spec_.capacity; }

  /// Combined utilization in [0, kMaxUtilization] for simultaneous read
  /// and write streams (roofline-style: each stream consumes its own
  /// ceiling; the sum is the device occupancy).
  [[nodiscard]] double utilization(double read_gbs, double write_gbs) const;

  /// Read latency at the given device utilization.
  [[nodiscard]] double read_latency_ns(double utilization) const;

  /// Write latency at the given device utilization.
  [[nodiscard]] double write_latency_ns(double utilization) const;

  /// Convenience: read latency under a given read/write demand.
  [[nodiscard]] double read_latency_at(double read_gbs, double write_gbs) const {
    return read_latency_ns(utilization(read_gbs, write_gbs));
  }

  /// Maximum deliverable read bandwidth given concurrent write demand.
  [[nodiscard]] double deliverable_read_gbs(double write_gbs) const;

 private:
  TierSpec spec_;
};

/// A node's memory system: an ordered set of tiers (by performance rank).
class MemorySystem {
 public:
  /// Validates tier specs (unique names, exactly one fallback, positive
  /// bandwidths) and sorts by performance rank.
  [[nodiscard]] static Expected<MemorySystem> create(std::vector<TierSpec> tiers);

  [[nodiscard]] const std::vector<MemoryTier>& tiers() const { return tiers_; }
  [[nodiscard]] std::size_t tier_count() const { return tiers_.size(); }

  /// Index of the tier named `name`, or an error.
  [[nodiscard]] Expected<std::size_t> tier_index(std::string_view name) const;
  [[nodiscard]] const MemoryTier& tier(std::size_t index) const { return tiers_.at(index); }
  [[nodiscard]] std::size_t fallback_index() const { return fallback_; }

 private:
  std::vector<MemoryTier> tiers_;
  std::size_t fallback_ = 0;
};

/// Calibrated spec for the paper's DDR4 configuration (4x8 GB DIMMs,
/// single NUMA node = 16 GB visible).
[[nodiscard]] TierSpec ddr4_dram_spec(Bytes capacity = 16ull * 1024 * 1024 * 1024);

/// Calibrated spec for Optane PMem 100 series. `dimms` scales capacity
/// and bandwidth: the paper's PMem-6 uses 6 DIMMs per socket, PMem-2 uses
/// 2 (1/3 of the bandwidth, "by physically removing DIMMs").
[[nodiscard]] TierSpec optane_pmem_spec(int dimms = 6);

/// Second-generation Optane (PMem 200 series): §II notes it "provides
/// around 40% additional performance" — modeled as +40% bandwidth per
/// DIMM with modestly lower latencies. Used by the projection study in
/// bench_ext_pmem200.
[[nodiscard]] TierSpec optane_pmem200_spec(int dimms = 6);

/// An HBM2-like spec used by the generality example (the paper's §IX notes
/// applicability to HBM+DRAM systems).
[[nodiscard]] TierSpec hbm2_spec(Bytes capacity = 16ull * 1024 * 1024 * 1024);

/// The paper's evaluation node: DDR4 (16 GB) + PMem with `pmem_dimms`
/// DIMMs, PMem as fallback tier.
[[nodiscard]] Expected<MemorySystem> paper_system(int pmem_dimms = 6);

}  // namespace ecohmem::memsim
