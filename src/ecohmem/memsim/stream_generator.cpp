#include "ecohmem/memsim/stream_generator.hpp"

#include <algorithm>

namespace ecohmem::memsim {

std::vector<MemoryRef> generate_stream(const StreamSpec& spec, Rng& rng) {
  std::vector<MemoryRef> out;
  out.reserve(spec.accesses);
  const std::uint64_t lines = std::max<std::uint64_t>(spec.size / kCacheLine, 1);

  std::uint64_t cursor = 0;
  for (std::size_t i = 0; i < spec.accesses; ++i) {
    std::uint64_t line = 0;
    switch (spec.pattern) {
      case StreamPattern::kSequential:
        line = cursor++ % lines;
        break;
      case StreamPattern::kStrided: {
        const std::uint64_t stride_lines = std::max<std::uint64_t>(spec.stride / kCacheLine, 1);
        line = (cursor * stride_lines) % lines;
        ++cursor;
        break;
      }
      case StreamPattern::kRandom:
        line = rng.next_below(lines);
        break;
      case StreamPattern::kHotCold: {
        const std::uint64_t hot_lines = std::max<std::uint64_t>(lines / 10, 1);
        if (rng.next_double() < 0.9) {
          line = rng.next_below(hot_lines);
        } else {
          line = hot_lines + rng.next_below(std::max<std::uint64_t>(lines - hot_lines, 1));
        }
        break;
      }
    }
    MemoryRef ref;
    ref.address = spec.base + line * kCacheLine;
    ref.is_write = rng.next_double() < spec.write_fraction;
    out.push_back(ref);
  }
  return out;
}

std::vector<MemoryRef> interleave_streams(const std::vector<StreamSpec>& specs, Rng& rng) {
  std::vector<std::vector<MemoryRef>> streams;
  std::size_t total = 0;
  for (const auto& spec : specs) {
    streams.push_back(generate_stream(spec, rng));
    total += streams.back().size();
  }

  std::vector<MemoryRef> out;
  out.reserve(total);
  std::vector<std::size_t> next(streams.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (next[s] < streams[s].size()) {
        out.push_back(streams[s][next[s]++]);
        progressed = true;
      }
    }
  }
  return out;
}

}  // namespace ecohmem::memsim
