#include "ecohmem/memsim/analytic_cache.hpp"

#include <algorithm>
#include <cmath>

namespace ecohmem::memsim {

AnalyticCacheModel::AnalyticCacheModel(Bytes llc_bytes, Bytes line)
    : llc_bytes_(llc_bytes), line_(std::max<Bytes>(line, 1)) {}

KernelCacheOutcome AnalyticCacheModel::evaluate(
    const std::vector<KernelObjectAccess>& accesses) const {
  KernelCacheOutcome out;
  out.per_object.resize(accesses.size());

  // Lines demanded: objects with LLC-level reuse compete for residency;
  // pure streams (friendliness ~ 0) barely occupy the LLC because their
  // lines are dead after use, so weight demand by friendliness, with a
  // small floor for transit occupancy.
  double demanded_lines = 0.0;
  for (const auto& a : accesses) {
    const double lines = a.footprint / static_cast<double>(line_);
    demanded_lines += lines * std::max(a.friendliness, 0.1);
  }
  const double llc_lines = static_cast<double>(llc_bytes_) / static_cast<double>(line_);
  const double residency =
      demanded_lines > 0.0 ? std::min(1.0, llc_lines / demanded_lines) : 1.0;

  double total_requests = 0.0;
  double total_misses = 0.0;
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    const auto& a = accesses[i];
    const double requests = a.llc_loads + a.llc_stores;
    const double cold = a.footprint / static_cast<double>(line_);
    const double p_hit = std::clamp(a.friendliness, 0.0, 1.0) * residency;

    // Apportion compulsory misses between loads and stores by their share.
    const double load_share = requests > 0.0 ? a.llc_loads / requests : 0.0;
    const double cold_eff = std::min(cold, requests);

    const double warm_loads = std::max(0.0, a.llc_loads - cold_eff * load_share);
    const double warm_stores = std::max(0.0, a.llc_stores - cold_eff * (1.0 - load_share));

    auto& m = out.per_object[i];
    const double raw_load_misses = cold_eff * load_share + warm_loads * (1.0 - p_hit);
    const double pe = std::clamp(a.prefetch_efficiency, 0.0, 1.0);
    m.load_misses = raw_load_misses * (1.0 - pe);
    m.prefetched_loads = raw_load_misses * pe;
    m.store_misses = cold_eff * (1.0 - load_share) + warm_stores * (1.0 - p_hit);

    out.total_load_misses += m.load_misses;
    out.total_store_misses += m.store_misses;
    total_requests += requests;
    total_misses += raw_load_misses + m.store_misses;
  }
  out.llc_hit_ratio =
      total_requests > 0.0 ? std::max(0.0, 1.0 - total_misses / total_requests) : 1.0;
  return out;
}

}  // namespace ecohmem::memsim
