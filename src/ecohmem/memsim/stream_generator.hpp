#pragma once

/// \file stream_generator.hpp
/// Synthetic address-stream generation for cache-model validation.
///
/// The execution engine uses the *analytic* LLC model
/// (analytic_cache.hpp) because application-scale footprints cannot be
/// replayed address by address. This generator produces real address
/// streams for small kernels so that tests and the validation benchmark
/// can check the analytic predictions against the reference
/// set-associative simulation (cache.hpp) — the evidence that the
/// analytic shortcut is sound where both are feasible.

#include <cstdint>
#include <vector>

#include "ecohmem/common/rng.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::memsim {

/// One generated memory reference.
struct MemoryRef {
  std::uint64_t address = 0;
  bool is_write = false;
};

/// Pattern of a generated stream.
enum class StreamPattern {
  kSequential,   ///< ascending line-granular sweep
  kStrided,      ///< fixed stride > 1 line
  kRandom,       ///< uniform over the buffer
  kHotCold,      ///< 90% of accesses to 10% of the buffer
};

struct StreamSpec {
  std::uint64_t base = 0;
  Bytes size = 0;             ///< buffer extent
  std::size_t accesses = 0;   ///< references to emit
  StreamPattern pattern = StreamPattern::kSequential;
  double write_fraction = 0.0;
  Bytes stride = 4 * kCacheLine;  ///< kStrided only
};

/// Generates the reference stream for one buffer. Deterministic for a
/// given rng state.
[[nodiscard]] std::vector<MemoryRef> generate_stream(const StreamSpec& spec, Rng& rng);

/// Round-robin interleaving of several buffers' streams (models
/// concurrently accessed objects competing for the cache).
[[nodiscard]] std::vector<MemoryRef> interleave_streams(const std::vector<StreamSpec>& specs,
                                                        Rng& rng);

}  // namespace ecohmem::memsim
