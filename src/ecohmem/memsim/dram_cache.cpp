#include "ecohmem/memsim/dram_cache.hpp"

#include <algorithm>
#include <cmath>

namespace ecohmem::memsim {

DramCacheModel::DramCacheModel(Bytes dram_bytes, double conflict_alpha, Bytes line)
    : dram_bytes_(dram_bytes), conflict_alpha_(conflict_alpha), line_(std::max<Bytes>(line, 1)) {}

DramCacheOutcome DramCacheModel::evaluate(const std::vector<DramCacheTraffic>& traffic) const {
  DramCacheOutcome out;
  out.per_object.resize(traffic.size());

  double hot_footprint = 0.0;
  for (const auto& t : traffic) hot_footprint += t.footprint;

  const double dram = static_cast<double>(dram_bytes_);
  const double ratio = hot_footprint > 0.0 ? dram / hot_footprint : 1.0;
  const double capacity_factor = std::min(1.0, std::pow(std::max(ratio, 1e-9), conflict_alpha_));

  const double line = static_cast<double>(line_);
  double weighted_hits = 0.0;
  double total_requests = 0.0;

  for (std::size_t i = 0; i < traffic.size(); ++i) {
    const auto& t = traffic[i];
    auto& o = out.per_object[i];
    const double h = std::clamp(t.locality, 0.0, 1.0) * capacity_factor;
    o.hit_ratio = h;

    const double requests = t.load_misses + t.store_misses;
    weighted_hits += h * requests;
    total_requests += requests;

    // Loads: hits read DRAM; misses read PMem and fill DRAM (write).
    o.dram_read_bytes = t.load_misses * h * line;
    o.pmem_read_bytes = t.load_misses * (1.0 - h) * line;
    o.dram_write_bytes = t.load_misses * (1.0 - h) * line;  // fills

    // Stores (LLC dirty evictions): all land in the DRAM cache; misses
    // additionally fetch the line (write-allocate) and the dirty line is
    // eventually written back to PMem.
    o.dram_write_bytes += t.store_misses * line;
    o.pmem_read_bytes += t.store_misses * (1.0 - h) * line;   // write-allocate fill
    o.pmem_write_bytes += t.store_misses * (1.0 - h) * line;  // eventual writeback

    out.dram_read_bytes += o.dram_read_bytes;
    out.dram_write_bytes += o.dram_write_bytes;
    out.pmem_read_bytes += o.pmem_read_bytes;
    out.pmem_write_bytes += o.pmem_write_bytes;
  }
  out.hit_ratio = total_requests > 0.0 ? weighted_hits / total_requests : 1.0;
  return out;
}

}  // namespace ecohmem::memsim
