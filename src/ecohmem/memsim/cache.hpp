#pragma once

/// \file cache.hpp
/// Per-access set-associative cache simulation.
///
/// This is the fine-grained companion to the analytic model in
/// analytic_cache.hpp: unit tests, the quickstart example and the
/// microbenchmarks drive real address streams through a three-level
/// hierarchy modeled after the evaluation node (Xeon Platinum 8260L:
/// 32 KiB/8-way L1D, 1 MiB/16-way L2, ~35.75 MiB/11-way LLC). Write-back,
/// write-allocate, LRU replacement.

#include <cstdint>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::memsim {

/// Geometry of one cache level.
struct CacheGeometry {
  Bytes size = 0;
  unsigned ways = 1;
  Bytes line = kCacheLine;

  [[nodiscard]] std::uint64_t num_sets() const {
    const std::uint64_t lines = size / line;
    return ways > 0 ? lines / ways : 0;
  }
};

/// Result of a single cache access.
struct CacheAccessResult {
  bool hit = false;
  bool writeback = false;           ///< a dirty line was evicted
  std::uint64_t evicted_line = 0;   ///< line address of the eviction (valid if !hit)
  bool evicted_valid = false;
};

/// One set-associative, write-back, write-allocate, true-LRU cache level.
class SetAssocCache {
 public:
  explicit SetAssocCache(CacheGeometry geometry);

  /// Accesses the line containing `addr`; allocates on miss.
  CacheAccessResult access(std::uint64_t addr, bool is_write);

  /// True if the line containing `addr` is resident (no state change).
  [[nodiscard]] bool probe(std::uint64_t addr) const;

  /// Invalidates everything (dirty contents are dropped).
  void flush();

  [[nodiscard]] const CacheGeometry& geometry() const { return geom_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t writebacks() const { return writebacks_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::uint64_t set_of(std::uint64_t line_addr) const {
    return line_addr % num_sets_;
  }

  CacheGeometry geom_;
  std::uint64_t num_sets_;
  std::vector<Way> ways_;  // num_sets_ x geom_.ways, row-major
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

/// Level at which an access was satisfied.
enum class HitLevel { kL1, kL2, kLlc, kMemory };

/// Three-level inclusive-enough hierarchy (no back-invalidation modeling;
/// misses propagate downward, writebacks go to the next level).
class CacheHierarchy {
 public:
  CacheHierarchy(CacheGeometry l1, CacheGeometry l2, CacheGeometry llc);

  /// Default geometry of the evaluation node.
  [[nodiscard]] static CacheHierarchy xeon_8260l();

  /// Runs one load/store; returns where it hit. Memory-level results are
  /// LLC misses (the events ecoHMEM's profiler samples).
  HitLevel access(std::uint64_t addr, bool is_write);

  [[nodiscard]] const SetAssocCache& l1() const { return l1_; }
  [[nodiscard]] const SetAssocCache& l2() const { return l2_; }
  [[nodiscard]] const SetAssocCache& llc() const { return llc_; }

  [[nodiscard]] std::uint64_t llc_load_misses() const { return llc_load_misses_; }
  [[nodiscard]] std::uint64_t l1_store_misses() const { return l1_store_misses_; }

  void flush();

 private:
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache llc_;
  std::uint64_t llc_load_misses_ = 0;
  std::uint64_t l1_store_misses_ = 0;
};

}  // namespace ecohmem::memsim
