#pragma once

/// \file bandwidth_meter.hpp
/// Time-binned per-tier bandwidth accounting.
///
/// The execution engine records bytes moved per tier per kernel step; the
/// meter smears them over fixed-width time bins to produce the bandwidth
/// timelines of the paper's Fig. 3 and Fig. 7 and the bandwidth-region
/// classification (B_low / B_mid / B_high, Table II) used by the
/// bandwidth-aware placement algorithm.

#include <cstddef>
#include <vector>

#include "ecohmem/common/units.hpp"

namespace ecohmem::memsim {

struct BandwidthPoint {
  Ns time = 0;        ///< bin start
  double gbs = 0.0;   ///< average bandwidth over the bin
};

class BandwidthMeter {
 public:
  /// `tiers`: number of tiers tracked. `bin_ns`: bin width.
  BandwidthMeter(std::size_t tiers, Ns bin_ns);

  /// Adds `bytes` of traffic on `tier` spread uniformly over [t0, t1).
  void add(std::size_t tier, Ns t0, Ns t1, double bytes);

  /// Bandwidth timeline of one tier (bins up to the last touched bin).
  [[nodiscard]] std::vector<BandwidthPoint> series(std::size_t tier) const;

  /// Average bandwidth of `tier` over [t0, t1).
  [[nodiscard]] double average_gbs(std::size_t tier, Ns t0, Ns t1) const;

  /// Peak binned bandwidth of `tier` over the whole run.
  [[nodiscard]] double peak_gbs(std::size_t tier) const;

  [[nodiscard]] Ns bin_ns() const { return bin_ns_; }
  [[nodiscard]] std::size_t tier_count() const { return bins_.size(); }

 private:
  Ns bin_ns_;
  std::vector<std::vector<double>> bins_;  // [tier][bin] -> bytes
};

}  // namespace ecohmem::memsim
