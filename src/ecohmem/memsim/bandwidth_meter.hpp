#pragma once

/// \file bandwidth_meter.hpp
/// Time-binned per-tier bandwidth accounting.
///
/// The execution engine records bytes moved per tier per kernel step; the
/// meter smears them over fixed-width time bins to produce the bandwidth
/// timelines of the paper's Fig. 3 and Fig. 7 and the bandwidth-region
/// classification (B_low / B_mid / B_high, Table II) used by the
/// bandwidth-aware placement algorithm.
///
/// Thread safety (docs/threading.md): a meter instance is NOT internally
/// synchronized. The concurrency model is per-thread accumulation: each
/// replay worker records into its own private meter and the engine folds
/// the shards into one timeline with `merge_from` when it samples — no
/// locks on the hot path, and bin sums are independent of the worker
/// interleaving.

#include <cstddef>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::memsim {

struct BandwidthPoint {
  Ns time = 0;        ///< bin start
  double gbs = 0.0;   ///< average bandwidth over the bin
};

class BandwidthMeter {
 public:
  /// `tiers`: number of tiers tracked. `bin_ns`: bin width.
  BandwidthMeter(std::size_t tiers, Ns bin_ns);

  /// Adds `bytes` of traffic on `tier` spread uniformly over [t0, t1).
  void add(std::size_t tier, Ns t0, Ns t1, double bytes);

  /// Folds another meter's bins into this one (bin-wise byte addition).
  /// Both meters must have been constructed with the same tier count and
  /// bin width; mismatches fail without modifying this meter. Used to
  /// merge the per-thread shard meters of the parallel replay engine.
  [[nodiscard]] Status merge_from(const BandwidthMeter& other);

  /// Bandwidth timeline of one tier (bins up to the last touched bin).
  [[nodiscard]] std::vector<BandwidthPoint> series(std::size_t tier) const;

  /// Average bandwidth of `tier` over [t0, t1).
  [[nodiscard]] double average_gbs(std::size_t tier, Ns t0, Ns t1) const;

  /// Peak binned bandwidth of `tier` over the whole run.
  [[nodiscard]] double peak_gbs(std::size_t tier) const;

  [[nodiscard]] Ns bin_ns() const { return bin_ns_; }
  [[nodiscard]] std::size_t tier_count() const { return bins_.size(); }

 private:
  Ns bin_ns_;
  std::vector<std::vector<double>> bins_;  // [tier][bin] -> bytes
};

}  // namespace ecohmem::memsim
