#pragma once

/// \file object_record.hpp
/// Per-allocation-site aggregates produced by the trace analyzer — the
/// data the HMem Advisor's algorithms consume.
///
/// "Object" in the paper means an allocation site (call stack): all
/// allocations returning through the same call stack share a placement
/// decision, because FlexMalloc can only distinguish allocations by the
/// stack it captures at interposition time (§IV, §VI).

#include <string>
#include <vector>

#include "ecohmem/bom/frame.hpp"
#include "ecohmem/common/units.hpp"
#include "ecohmem/trace/events.hpp"

namespace ecohmem::analyzer {

/// One [alloc, free) window of a site (used by Algorithm 1's lifetime
/// containment check).
struct LiveWindow {
  Ns start = 0;
  Ns end = 0;

  [[nodiscard]] Ns duration() const { return end > start ? end - start : 0; }
  [[nodiscard]] bool contains(const LiveWindow& other) const {
    return start <= other.start && other.end <= end;
  }
};

/// Aggregated profile of one allocation site.
struct SiteRecord {
  trace::StackId stack = trace::kInvalidStack;
  bom::CallStack callstack;

  Bytes max_size = 0;         ///< largest single allocation observed (§IV-A)
  Bytes peak_live_bytes = 0;  ///< peak simultaneous footprint of the site
  std::uint64_t alloc_count = 0;

  double load_misses = 0.0;   ///< LLC load misses (sample-weight scaled)
  double store_misses = 0.0;  ///< store events (sample-weight scaled)
  double avg_load_latency_ns = 0.0;

  Ns first_alloc = 0;
  Ns last_free = 0;
  double total_lifetime_ns = 0.0;  ///< sum over all windows
  double mean_lifetime_ns = 0.0;

  /// Bandwidth the site itself demands over its lifetime:
  /// (load+store misses) * line / total lifetime (§VII-B step 2).
  double exec_bw_gbs = 0.0;

  /// System (PMem-eligible) bandwidth observed around the site's
  /// allocation timestamps — the "allocation bandwidth region" signal of
  /// Table II.
  double alloc_time_system_bw_gbs = 0.0;

  /// System bandwidth averaged over the site's live windows — the
  /// "execution bandwidth region" signal of Table II.
  double exec_time_system_bw_gbs = 0.0;

  bool has_writes = false;

  std::vector<LiveWindow> windows;

  /// Miss density used by the base knapsack algorithm:
  /// (C_load * loads + C_store * stores) / max_size.
  [[nodiscard]] double density(double load_coef, double store_coef) const {
    const Bytes size = max_size > 0 ? max_size : 1;
    return (load_coef * load_misses + store_coef * store_misses) / static_cast<double>(size);
  }
};

/// Bandwidth region relative to peak PMem bandwidth (Table II):
/// B_low < 20%, B_mid 20-40%, B_high > 40%.
enum class BandwidthRegion { kLow, kMid, kHigh };

[[nodiscard]] BandwidthRegion classify_region(double bw_gbs, double peak_gbs);
[[nodiscard]] std::string to_string(BandwidthRegion region);

/// Per-function sample statistics (Table VII's latency column source).
struct FunctionProfile {
  std::string name;
  double load_samples = 0.0;
  double avg_load_latency_ns = 0.0;
};

}  // namespace ecohmem::analyzer
