#pragma once

/// \file incremental.hpp
/// Incremental (block-at-a-time) trace aggregation for the serving
/// layer.
///
/// `analyze()` wants the whole event stream in memory; a long-lived
/// advisor daemon gets the stream in v3-block-sized slices and must
/// answer placement queries between slices. `IncrementalAggregator`
/// folds each slice as it arrives and can produce, at any point, an
/// `AnalysisResult` that is **bit-identical** to running `analyze()`
/// over the concatenation of every event ingested so far (the contract
/// `tests/serve/test_session.cpp` pins down for many block sizes).
///
/// The trick is isolating the order-sensitive floating-point folds:
///
///  * Two bandwidth meters run side by side — one folding uncore
///    readings, one folding the PEBS-sample fallback. `analyze()`
///    prescans the whole trace for uncore events before choosing a
///    signal; the incremental path cannot look ahead, so it maintains
///    both fold sequences and picks at finalize time. Whichever meter
///    is chosen saw exactly the serial fold order.
///  * Per-allocation bandwidth (`alloc_bw_sum`) reads the meter over a
///    window that may include *future* traffic, so those folds are
///    deferred: ingestion records (site, window-start) pairs in stream
///    order and finalize replays them against the finished meter —
///    the same per-site addition sequence `analyze()` produces.
///  * Everything else — live-map replay, sample attribution against
///    the live map, per-site/per-function weight folds — is already
///    processed in stream order, which is precisely the per-key order
///    the offline key-sharded phases reproduce.
///
/// Not thread-safe: the serving layer serializes access through the
/// session store lock (docs/threading.md). `finalize()` is const and
/// non-destructive, so ingestion can continue after a snapshot.

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ecohmem/analyzer/accum.hpp"
#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/memsim/bandwidth_meter.hpp"
#include "ecohmem/trace/events.hpp"
#include "ecohmem/trace/trace_file.hpp"

namespace ecohmem::analyzer {

/// Folds a time-ordered event stream into analyzer state, slice by
/// slice. Construct with the trace's header tables (the caller keeps
/// them alive — the serving session owns both), `ingest()` each block,
/// `finalize()` whenever a consistent `AnalysisResult` is needed.
class IncrementalAggregator {
 public:
  /// `stacks`/`functions` are the trace header tables events refer
  /// into; both must outlive the aggregator.
  IncrementalAggregator(const trace::StackTable& stacks, const trace::FunctionTable& functions,
                        AnalyzerOptions options = {});

  /// Folds the next slice of the event stream, continuing where the
  /// previous call stopped. Fails on the same malformed streams
  /// `analyze()` rejects (invalid alloc stack, unknown/double free);
  /// a failure is sticky — the aggregator is poisoned and every later
  /// `ingest()`/`finalize()` reports the first error.
  Status ingest(const trace::Event* events, std::size_t count);

  /// Convenience overload over a vector slice.
  Status ingest(const std::vector<trace::Event>& events) {
    return ingest(events.data(), events.size());
  }

  /// Events folded so far (across all `ingest()` calls).
  [[nodiscard]] std::uint64_t events_ingested() const { return n_events_; }

  /// First ingest error, empty while healthy.
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Produces the analysis of everything ingested so far, bit-identical
  /// to `analyze()` over the same prefix. Non-destructive: operates on
  /// copies of the accumulators, so ingestion may continue afterwards.
  /// `coverage` stamps the result like `AnalyzerOptions::coverage` does
  /// offline (empty = the ingested events are the whole trace).
  [[nodiscard]] Expected<AnalysisResult> finalize(trace::TraceCoverage coverage = {}) const;

 private:
  /// One live allocation, keyed by start address in `live_`.
  struct LiveObject {
    Bytes size = 0;
    trace::StackId stack = trace::kInvalidStack;
    Ns alloc_time = 0;
  };

  const trace::StackTable* stacks_;
  const trace::FunctionTable* functions_;
  AnalyzerOptions options_;

  memsim::BandwidthMeter uncore_meter_;  ///< fold of uncore readings only
  memsim::BandwidthMeter sample_meter_;  ///< fold of the sample fallback only
  bool has_uncore_ = false;

  std::uint64_t n_events_ = 0;
  Ns last_time_ = 0;
  double unattributed_ = 0.0;
  std::string error_;  ///< sticky first failure

  std::map<std::uint64_t, LiveObject> live_;  ///< start address -> object
  std::unordered_map<std::uint64_t, std::uint64_t> object_address_;  ///< id -> addr
  std::unordered_map<trace::StackId, detail::SiteAccum> sites_;
  std::map<std::uint32_t, detail::FunctionAccum> functions_accum_;

  /// Deferred alloc-window bandwidth folds: (site, window start) in
  /// allocation order. Grows with the allocation count, not the event
  /// count.
  std::vector<std::pair<trace::StackId, Ns>> alloc_bw_pending_;
};

}  // namespace ecohmem::analyzer
