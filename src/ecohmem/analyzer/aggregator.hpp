#pragma once

/// \file aggregator.hpp
/// The Paramedir role: turn a raw trace into per-site records.
///
/// Steps:
///  1. Replay allocation/free events to build live address intervals and
///     per-site counts/footprints/lifetime windows.
///  2. Attribute each PEBS sample to the object live at its data linear
///     address (and to the enclosing function for Table VII).
///  3. Reconstruct the system bandwidth timeline from sample weights and
///     derive each site's allocation-time and execution-time bandwidth
///     regions (Table II inputs for the bandwidth-aware algorithm).
///
/// With `AnalyzerOptions.threads > 1` the sample-attribution and
/// accumulation phases fan out across a worker pool; the alloc/free
/// replay and the bandwidth timeline stay serial (they are
/// order-dependent), and the output is bit-identical to the serial
/// path for every thread count.

#include <vector>

#include "ecohmem/analyzer/object_record.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/memsim/bandwidth_meter.hpp"
#include "ecohmem/trace/events.hpp"
#include "ecohmem/trace/trace_file.hpp"

namespace ecohmem::analyzer {

struct AnalyzerOptions {
  /// Peak bandwidth of the PMem-eligible traffic, for region thresholds.
  double peak_pmem_bw_gbs = 26.0;

  /// Bin width of the reconstructed bandwidth timeline.
  Ns bw_bin_ns = 10'000'000;  // 10 ms

  /// Window around each allocation used for the allocation-time
  /// bandwidth signal.
  Ns alloc_window_ns = 50'000'000;  // 50 ms

  /// Worker threads for the sample-attribution and accumulation phases.
  /// The result is bit-identical for every thread count (per-call-stack
  /// key sharding keeps each FP fold in serial stream order; see
  /// docs/threading.md). 1 = fully serial, no pool spawned.
  int threads = 1;

  /// Clamp `threads` to the hardware concurrency before spawning the
  /// pool. Because the output is thread-count invariant, shedding
  /// oversubscription (which multiplies the key-sharded stream scans
  /// without adding cores) cannot change any result bit — it only
  /// removes the slowdown. Tests disable this to exercise the
  /// multi-shard merge on any host.
  bool clamp_threads = true;

  /// Trace coverage as reported by the loader (TraceBundle::coverage).
  /// Left empty, the analyzer assumes the events it sees are the whole
  /// trace. Salvage-mode callers pass the bundle's coverage so reports
  /// carry events_seen/events_declared (docs/robustness.md).
  trace::TraceCoverage coverage;
};

struct AnalysisResult {
  std::vector<SiteRecord> sites;
  std::vector<memsim::BandwidthPoint> system_bw;  ///< reconstructed timeline
  double observed_peak_bw_gbs = 0.0;
  std::vector<FunctionProfile> functions;
  Ns trace_end = 0;

  /// Total weighted samples that hit no live object (stack/static data or
  /// attribution error); reported for diagnostics.
  double unattributed_samples = 0.0;

  /// Coverage of the analyzed events relative to what the trace file
  /// declared (full coverage unless the caller analyzed a salvaged
  /// bundle). Stamped into the site table/CSV by site_report.cpp.
  trace::TraceCoverage coverage;
};

/// Aggregates `trace` into per-site records. Fails on malformed traces
/// (free of unknown object, unordered events beyond tolerance).
[[nodiscard]] Expected<AnalysisResult> analyze(const trace::Trace& trace,
                                               const AnalyzerOptions& options = {});

}  // namespace ecohmem::analyzer
