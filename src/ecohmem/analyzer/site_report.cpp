#include "ecohmem/analyzer/site_report.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <vector>

#include "ecohmem/bom/format.hpp"
#include "ecohmem/common/strings.hpp"

namespace ecohmem::analyzer {

namespace {

std::vector<const SiteRecord*> sorted_sites(const AnalysisResult& analysis,
                                            const SiteReportOptions& options) {
  std::vector<const SiteRecord*> sites;
  sites.reserve(analysis.sites.size());
  for (const auto& s : analysis.sites) sites.push_back(&s);

  const auto key = options.sort;
  std::stable_sort(sites.begin(), sites.end(), [key](const auto* a, const auto* b) {
    switch (key) {
      case SiteReportOptions::Sort::kSize:
        return std::max(a->peak_live_bytes, a->max_size) >
               std::max(b->peak_live_bytes, b->max_size);
      case SiteReportOptions::Sort::kBandwidth:
        return a->exec_bw_gbs > b->exec_bw_gbs;
      case SiteReportOptions::Sort::kFirstAlloc:
        return a->first_alloc < b->first_alloc;
      case SiteReportOptions::Sort::kLoadMisses:
        break;
    }
    return a->load_misses > b->load_misses;
  });
  if (options.top > 0 && sites.size() > options.top) sites.resize(options.top);
  return sites;
}

}  // namespace

void write_site_table(std::ostream& out, const AnalysisResult& analysis,
                      const bom::ModuleTable& modules, const SiteReportOptions& options) {
  out << std::left << std::setw(48) << "call stack" << std::right << std::setw(8) << "allocs"
      << std::setw(12) << "peak size" << std::setw(12) << "load miss" << std::setw(12)
      << "stores" << std::setw(10) << "bw(MB/s)" << std::setw(11) << "life(s)" << '\n';
  for (const auto* s : sorted_sites(analysis, options)) {
    std::string stack = bom::format_bom(s->callstack, modules);
    if (stack.size() > 47) stack = stack.substr(0, 44) + "...";
    out << std::left << std::setw(48) << stack << std::right << std::setw(8) << s->alloc_count
        << std::setw(12) << strings::format_bytes(std::max(s->peak_live_bytes, s->max_size))
        << std::setw(12) << std::scientific << std::setprecision(2) << s->load_misses
        << std::setw(12) << s->store_misses << std::fixed << std::setprecision(1)
        << std::setw(10) << s->exec_bw_gbs * 1000.0 << std::setw(11)
        << s->mean_lifetime_ns * 1e-9 << '\n';
  }
  out << "sites: " << analysis.sites.size()
      << "  peak system bandwidth: " << std::setprecision(2) << analysis.observed_peak_bw_gbs
      << " GB/s  trace span: " << static_cast<double>(analysis.trace_end) * 1e-9 << " s\n";
  if (analysis.coverage.salvaged) {
    out << "coverage: " << analysis.coverage.events_seen << "/"
        << analysis.coverage.events_declared << " events (salvaged trace; partial data)\n";
  }
}

void write_site_csv(std::ostream& out, const AnalysisResult& analysis,
                    const bom::ModuleTable& modules) {
  // Round-trippable doubles: at the default 6-significant-digit precision
  // the exported miss counts drift from the trace's sampled mass, which
  // the ecohmem-lint cross-checks (sites-misses-exceed-trace) detect.
  const auto saved_precision = out.precision(17);
  // Salvaged analyses announce their coverage ahead of the header so a
  // consumer can never mistake partial data for a full profile. The
  // comment form keeps plain-CSV tooling working (sites_csv.cpp skips
  // and parses '#' lines); full-coverage strict runs stay byte-stable.
  if (analysis.coverage.salvaged) {
    out << "# coverage: events_seen=" << analysis.coverage.events_seen
        << " events_declared=" << analysis.coverage.events_declared << " salvaged=1\n";
  }
  out << "callstack,allocs,max_size,peak_live,load_misses,store_misses,"
         "avg_load_latency_ns,exec_bw_gbs,alloc_bw_gbs,exec_sys_bw_gbs,"
         "first_alloc_ns,last_free_ns,mean_lifetime_ns,has_writes\n";
  for (const auto& s : analysis.sites) {
    out << '"' << bom::format_bom(s.callstack, modules) << '"' << ',' << s.alloc_count << ','
        << s.max_size << ',' << s.peak_live_bytes << ',' << s.load_misses << ','
        << s.store_misses << ',' << s.avg_load_latency_ns << ',' << s.exec_bw_gbs << ','
        << s.alloc_time_system_bw_gbs << ',' << s.exec_time_system_bw_gbs << ','
        << s.first_alloc << ',' << s.last_free << ',' << s.mean_lifetime_ns << ','
        << (s.has_writes ? 1 : 0) << '\n';
  }
  out.precision(saved_precision);
}

void write_function_csv(std::ostream& out, const AnalysisResult& analysis) {
  out << "function,load_samples,avg_load_latency_ns\n";
  for (const auto& f : analysis.functions) {
    out << '"' << f.name << '"' << ',' << f.load_samples << ',' << f.avg_load_latency_ns
        << '\n';
  }
}

std::string site_table_to_string(const AnalysisResult& analysis,
                                 const bom::ModuleTable& modules,
                                 const SiteReportOptions& options) {
  std::ostringstream out;
  write_site_table(out, analysis, modules, options);
  return out.str();
}

Status save_site_csv(const std::string& path, const AnalysisResult& analysis,
                     const bom::ModuleTable& modules) {
  std::ofstream out(path);
  if (!out) return unexpected("cannot open for writing: " + path);
  write_site_csv(out, analysis, modules);
  if (!out.good()) return unexpected("write failed: " + path);
  return {};
}

}  // namespace ecohmem::analyzer
