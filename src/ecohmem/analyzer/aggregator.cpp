#include "ecohmem/analyzer/aggregator.hpp"

#include <algorithm>
#include <map>
#include <thread>
#include <unordered_map>

#include "ecohmem/analyzer/accum.hpp"
#include "ecohmem/runtime/worker_pool.hpp"

namespace ecohmem::analyzer {

using detail::FunctionAccum;
using detail::SiteAccum;

namespace {

/// One allocation's lifetime in *event-index* space, recorded during the
/// serial replay so that sample attribution can be answered for any
/// event index afterwards (and therefore in parallel): the span is in
/// the live map exactly for event indices `alloc_idx < i < end_idx`.
/// `end_idx` is the index of the free event, the index of an alloc that
/// reused the address while the object was still live (the historical
/// overwrite behavior), or `n_events` for objects that survive the
/// trace.
struct Span {
  std::uint64_t start = 0;
  Bytes size = 0;
  trace::StackId stack = trace::kInvalidStack;
  Ns alloc_time = 0;
  std::uint64_t alloc_idx = 0;
  std::uint64_t end_idx = 0;
};

/// Per-site sample fold, arena-backed: the cell for stack id `s` lives
/// at shard.sites[s]. Only the sample-side fields — the alloc-side
/// metrics already live in the serial `sites` map the merge folds into.
struct SiteCell {
  double load_misses = 0.0;
  double store_misses = 0.0;
  double latency_weight = 0.0;
  double latency_sum = 0.0;
  bool has_writes = false;
  bool touched = false;
};

/// Per-function sample fold (arena slot). `touched` preserves the
/// historical behavior that any sample — including store-only ones —
/// materializes its function's entry.
struct FunctionCell {
  double samples = 0.0;
  double latency_sum = 0.0;
  bool touched = false;
};

/// Per-worker sample-side accumulators (phase: accumulate). Each worker
/// owns a disjoint set of keys (`stack % W`, `function_id % W`), folds
/// them in stream order starting from zero, and the merge just moves
/// each key's single fold into the global map — so the result is
/// bit-identical for every worker count, including 1 (FP addition is
/// non-associative, but every per-key addition sequence here is the
/// serial one).
///
/// The fold targets are contiguous arenas indexed by stack/function id —
/// one allocation per worker instead of per-key map-node churn, and the
/// merge walks them in index order. Every resolved stack is a validated
/// alloc stack (< stacks.size()), so the site arena always covers it;
/// function ids are not validated at decode time (trace-stack-ids only
/// warns), so ids past the table spill into an ordered overflow map.
struct SampleShard {
  std::vector<SiteCell> sites;          ///< indexed by stack id
  std::vector<FunctionCell> functions;  ///< indexed by function id
  std::map<std::uint32_t, FunctionAccum> function_overflow;
  double unattributed = 0.0;  ///< folded by worker 0 only
};

/// Answers "which object was live at address `addr` when event `i`
/// executed" exactly as the serial live-map did: find the greatest live
/// start <= addr, containment-check that single candidate. Spans are
/// grouped by start address; within a group the residency intervals
/// [alloc_idx, end_idx) are disjoint and ordered, so a binary search
/// finds the unique candidate.
class SpanIndex {
 public:
  explicit SpanIndex(std::vector<Span> spans) : spans_(std::move(spans)) {
    std::stable_sort(spans_.begin(), spans_.end(),
                     [](const Span& a, const Span& b) { return a.start < b.start; });
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      if (starts_.empty() || starts_.back() != spans_[i].start) {
        starts_.push_back(spans_[i].start);
        run_begin_.push_back(i);
      }
    }
    run_begin_.push_back(spans_.size());
  }

  /// Resolves the sample at event index `i` touching `addr` to a site,
  /// or kInvalidStack when no live object matches (the serial
  /// "unattributed" outcome). Const and thread-safe.
  [[nodiscard]] trace::StackId resolve(std::uint64_t addr, std::uint64_t i) const {
    auto it = std::upper_bound(starts_.begin(), starts_.end(), addr);
    while (it != starts_.begin()) {
      --it;
      const auto run = static_cast<std::size_t>(it - starts_.begin());
      const std::size_t lo = run_begin_[run];
      const std::size_t hi = run_begin_[run + 1];
      // Last span in the run allocated before event i.
      auto sp_it = std::partition_point(spans_.begin() + static_cast<std::ptrdiff_t>(lo),
                                        spans_.begin() + static_cast<std::ptrdiff_t>(hi),
                                        [i](const Span& s) { return s.alloc_idx < i; });
      if (sp_it != spans_.begin() + static_cast<std::ptrdiff_t>(lo)) {
        const Span& sp = *(sp_it - 1);
        if (sp.end_idx > i) {
          // This start held a live object at event i: it is the serial
          // nearest-below live entry. Containment decides; lower starts
          // are never consulted (matching the serial single-candidate
          // check).
          return addr >= sp.start && addr < sp.start + sp.size ? sp.stack
                                                               : trace::kInvalidStack;
        }
      }
    }
    return trace::kInvalidStack;
  }

 private:
  std::vector<Span> spans_;
  std::vector<std::uint64_t> starts_;     ///< distinct start addresses, ascending
  std::vector<std::size_t> run_begin_;    ///< starts_.size()+1 offsets into spans_
};

}  // namespace

BandwidthRegion classify_region(double bw_gbs, double peak_gbs) {
  const double frac = peak_gbs > 0.0 ? bw_gbs / peak_gbs : 0.0;
  if (frac < 0.20) return BandwidthRegion::kLow;
  if (frac <= 0.40) return BandwidthRegion::kMid;
  return BandwidthRegion::kHigh;
}

std::string to_string(BandwidthRegion region) {
  switch (region) {
    case BandwidthRegion::kLow: return "B_low";
    case BandwidthRegion::kMid: return "B_mid";
    case BandwidthRegion::kHigh: return "B_high";
  }
  return "?";
}

Expected<AnalysisResult> analyze(const trace::Trace& trace, const AnalyzerOptions& options) {
  AnalysisResult result;
  const std::uint64_t n_events = trace.events.size();

  // Coverage travels from the loader through to the reports. An empty
  // option (strict in-memory callers) means full coverage of what we see.
  result.coverage = options.coverage;
  if (result.coverage.empty()) {
    result.coverage.events_seen = n_events;
    result.coverage.events_declared = n_events;
  }

  // --- Phase 1 (serial): bandwidth prescan. Uncore readings (which see
  // prefetch fills) are authoritative; traces without them fall back to
  // reconstructing traffic from the PEBS samples. Serial because
  // BandwidthMeter::add smears bytes across bin boundaries — the only
  // FP fold here that is not per-key shardable.
  memsim::BandwidthMeter bw_meter(1, options.bw_bin_ns);
  Ns last_time = 0;
  bool has_uncore = false;
  for (const auto& event : trace.events) {
    if (std::holds_alternative<trace::UncoreBwEvent>(event)) {
      has_uncore = true;
      break;
    }
  }
  for (const auto& event : trace.events) {
    if (const auto* u = std::get_if<trace::UncoreBwEvent>(&event)) {
      const Ns t0 = u->time > u->period_ns ? u->time - u->period_ns : 0;
      bw_meter.add(0, t0, u->time,
                   (u->read_gbs + u->write_gbs) * static_cast<double>(u->period_ns));
    } else if (const auto* s = std::get_if<trace::SampleEvent>(&event)) {
      if (!has_uncore) {
        bw_meter.add(0, s->time, s->time + 1, s->weight * static_cast<double>(kCacheLine));
      }
    }
    last_time = std::max(last_time, trace::event_time(event));
  }
  result.trace_end = last_time;

  // --- Phase 2 (serial): replay allocations/frees in program order,
  // accumulating every alloc-side metric and recording each object's
  // lifetime in event-index space (Span) for the attribution phase.
  // The live map is ordered so that survivors close their windows in
  // ascending address order, as they always have.
  std::vector<Span> spans;
  std::map<std::uint64_t, std::size_t> live;  // start address -> span index
  std::unordered_map<std::uint64_t, std::uint64_t> object_address;  // id -> addr
  std::unordered_map<trace::StackId, SiteAccum> sites;

  for (std::uint64_t i = 0; i < n_events; ++i) {
    const trace::Event& event = trace.events[i];
    if (const auto* a = std::get_if<trace::AllocEvent>(&event)) {
      if (a->stack == trace::kInvalidStack || a->stack >= trace.stacks.size()) {
        return unexpected("alloc event with invalid stack id");
      }
      auto [it, inserted] = live.try_emplace(a->address, spans.size());
      if (!inserted) {
        // Address reuse while live: the previous object drops out of
        // the live map here, so its span ends at this event.
        spans[it->second].end_idx = i;
        it->second = spans.size();
      }
      spans.push_back(Span{a->address, a->size, a->stack, a->time, i, n_events});
      object_address[a->object_id] = a->address;

      auto& acc = sites[a->stack];
      if (acc.record.alloc_count == 0) {
        acc.record.stack = a->stack;
        acc.record.callstack = trace.stacks.stack(a->stack);
        acc.record.first_alloc = a->time;
      }
      ++acc.record.alloc_count;
      acc.record.max_size = std::max(acc.record.max_size, a->size);
      acc.live_bytes += a->size;
      acc.record.peak_live_bytes = std::max(acc.record.peak_live_bytes, acc.live_bytes);

      const Ns w0 = a->time > options.alloc_window_ns ? a->time - options.alloc_window_ns / 2 : 0;
      acc.alloc_bw_sum += bw_meter.average_gbs(0, w0, w0 + options.alloc_window_ns);
    } else if (const auto* f = std::get_if<trace::FreeEvent>(&event)) {
      const auto addr_it = object_address.find(f->object_id);
      if (addr_it == object_address.end()) {
        return unexpected("free event for unknown object id " + std::to_string(f->object_id));
      }
      const auto live_it = live.find(addr_it->second);
      if (live_it == live.end()) {
        return unexpected("double free of object id " + std::to_string(f->object_id));
      }
      Span& sp = spans[live_it->second];
      auto& acc = sites[sp.stack];
      acc.live_bytes = acc.live_bytes >= sp.size ? acc.live_bytes - sp.size : 0;
      acc.record.windows.push_back(LiveWindow{sp.alloc_time, f->time});
      acc.record.last_free = std::max(acc.record.last_free, f->time);
      acc.record.total_lifetime_ns +=
          static_cast<double>(f->time > sp.alloc_time ? f->time - sp.alloc_time : 0);
      sp.end_idx = i;
      live.erase(live_it);
      object_address.erase(addr_it);
    }
    // Samples are attributed in phase 3; markers only delimit functions
    // and sample events carry their own function attribution.
  }

  // Objects still live at trace end: close their windows at last_time.
  for (const auto& [addr, span_idx] : live) {
    (void)addr;
    const Span& sp = spans[span_idx];
    auto& acc = sites[sp.stack];
    acc.record.windows.push_back(LiveWindow{sp.alloc_time, last_time});
    acc.record.last_free = std::max(acc.record.last_free, last_time);
    acc.record.total_lifetime_ns +=
        static_cast<double>(last_time > sp.alloc_time ? last_time - sp.alloc_time : 0);
  }

  const std::size_t want_threads =
      options.threads < 1 ? 1 : static_cast<std::size_t>(options.threads);
  std::size_t workers = std::max<std::size_t>(1, want_threads);
  if (options.clamp_threads) {
    // The output is worker-count invariant (every per-key fold is the
    // serial sequence), so shedding oversubscription is free: extra
    // workers past the core count only repeat the phase-4 stream scan
    // without adding parallelism.
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0) workers = std::min<std::size_t>(workers, hw);
  }

  // --- Phase 3 (parallel over event ranges): resolve every sample to a
  // site via the span index — a pure function of the replayed spans, so
  // any partitioning gives the same answers. kInvalidStack marks the
  // serial "no live object" outcome.
  const SpanIndex span_index(std::move(spans));
  std::vector<trace::StackId> resolved(static_cast<std::size_t>(n_events),
                                       trace::kInvalidStack);
  const auto resolve_range = [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) {
      if (const auto* s = std::get_if<trace::SampleEvent>(&trace.events[i])) {
        resolved[static_cast<std::size_t>(i)] = span_index.resolve(s->address, i);
      }
    }
  };

  // --- Phase 4 (parallel, key-sharded): fold sample weights. Worker w
  // owns sites with stack % W == w and functions with id % W == w, and
  // scans the whole stream folding only its keys, so each per-key FP
  // addition sequence is exactly the serial one (see docs/threading.md).
  const std::size_t stack_slots = trace.stacks.size();
  const std::size_t fn_slots = trace.functions.size();
  std::vector<SampleShard> shards(workers);
  const auto accumulate_shard = [&](std::size_t w) {
    SampleShard& shard = shards[w];
    shard.sites.assign(stack_slots, SiteCell{});
    shard.functions.assign(fn_slots, FunctionCell{});
    for (std::uint64_t i = 0; i < n_events; ++i) {
      const auto* s = std::get_if<trace::SampleEvent>(&trace.events[i]);
      if (s == nullptr) continue;
      if (s->function_id % workers == w) {
        if (s->function_id < fn_slots) {
          FunctionCell& fn = shard.functions[s->function_id];
          fn.touched = true;
          if (!s->is_store) {
            fn.samples += s->weight;
            fn.latency_sum += s->weight * s->latency_ns;
          }
        } else {
          auto& fn = shard.function_overflow[s->function_id];
          if (!s->is_store) {
            fn.samples += s->weight;
            fn.latency_sum += s->weight * s->latency_ns;
          }
        }
      }
      const trace::StackId stack = resolved[static_cast<std::size_t>(i)];
      if (stack == trace::kInvalidStack) {
        if (w == 0) shard.unattributed += s->weight;
        continue;
      }
      if (stack % workers != w) continue;
      SiteCell& cell = shard.sites[stack];
      cell.touched = true;
      if (s->is_store) {
        cell.store_misses += s->weight;
        cell.has_writes = true;
      } else {
        cell.load_misses += s->weight;
        cell.latency_weight += s->weight;
        cell.latency_sum += s->weight * s->latency_ns;
      }
    }
  };

  if (workers == 1) {
    resolve_range(0, n_events);
    accumulate_shard(0);
  } else {
    runtime::WorkerPool pool(workers);
    pool.run([&](std::size_t w) {
      const std::uint64_t begin = n_events * w / workers;
      const std::uint64_t end = n_events * (w + 1) / workers;
      resolve_range(begin, end);
    });
    pool.run(accumulate_shard);
  }

  // Merge: shards own disjoint keys, so each target field receives
  // exactly one worker's fold — no cross-shard FP addition. The arenas
  // are walked in index order, a single deterministic pass per worker.
  std::map<std::uint32_t, FunctionAccum> functions;
  for (SampleShard& shard : shards) {
    for (std::size_t k = 0; k < shard.sites.size(); ++k) {
      const SiteCell& cell = shard.sites[k];
      if (!cell.touched) continue;
      // Exists: every resolved stack came from an alloc replayed in phase 2.
      auto& acc = sites[static_cast<trace::StackId>(k)];
      acc.record.load_misses += cell.load_misses;
      acc.record.store_misses += cell.store_misses;
      acc.record.has_writes = acc.record.has_writes || cell.has_writes;
      acc.latency_weight += cell.latency_weight;
      acc.latency_sum += cell.latency_sum;
    }
    for (std::size_t k = 0; k < shard.functions.size(); ++k) {
      const FunctionCell& cell = shard.functions[k];
      if (!cell.touched) continue;
      functions.emplace(static_cast<std::uint32_t>(k),
                        FunctionAccum{cell.samples, cell.latency_sum});
    }
    for (auto& [fn_id, fn_acc] : shard.function_overflow) {
      functions.emplace(fn_id, fn_acc);
    }
    result.unattributed_samples += shard.unattributed;
  }

  // --- Phase 5 (serial): finalize per-site derived metrics — shared
  // with the incremental driver (accum.hpp) so both stay bit-identical.
  detail::finalize_result(sites, functions, bw_meter, trace.functions, result);

  return result;
}

}  // namespace ecohmem::analyzer
