#include "ecohmem/analyzer/aggregator.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace ecohmem::analyzer {

namespace {

/// A live allocation during replay.
struct LiveObject {
  std::uint64_t address = 0;
  Bytes size = 0;
  trace::StackId stack = trace::kInvalidStack;
  Ns alloc_time = 0;
};

/// Accumulator per allocation site during replay.
struct SiteAccum {
  SiteRecord record;
  Bytes live_bytes = 0;
  double latency_weight = 0.0;  ///< weights of latency-carrying samples
  double latency_sum = 0.0;     ///< weight * latency
  double alloc_bw_sum = 0.0;    ///< per-allocation system bw, summed
};

struct FunctionAccum {
  double samples = 0.0;
  double latency_sum = 0.0;
};

}  // namespace

BandwidthRegion classify_region(double bw_gbs, double peak_gbs) {
  const double frac = peak_gbs > 0.0 ? bw_gbs / peak_gbs : 0.0;
  if (frac < 0.20) return BandwidthRegion::kLow;
  if (frac <= 0.40) return BandwidthRegion::kMid;
  return BandwidthRegion::kHigh;
}

std::string to_string(BandwidthRegion region) {
  switch (region) {
    case BandwidthRegion::kLow: return "B_low";
    case BandwidthRegion::kMid: return "B_mid";
    case BandwidthRegion::kHigh: return "B_high";
  }
  return "?";
}

Expected<AnalysisResult> analyze(const trace::Trace& trace, const AnalyzerOptions& options) {
  AnalysisResult result;

  // --- Pass 1: replay allocations, build the bandwidth timeline, and
  // attribute samples to live objects via an ordered address map.
  std::map<std::uint64_t, LiveObject> live;  // keyed by start address
  std::unordered_map<std::uint64_t, std::uint64_t> object_address;  // id -> addr
  std::unordered_map<trace::StackId, SiteAccum> sites;
  std::unordered_map<std::uint32_t, FunctionAccum> functions;

  memsim::BandwidthMeter bw_meter(1, options.bw_bin_ns);
  Ns last_time = 0;

  auto find_live = [&live](std::uint64_t addr) -> LiveObject* {
    auto it = live.upper_bound(addr);
    if (it == live.begin()) return nullptr;
    --it;
    LiveObject& obj = it->second;
    if (addr >= obj.address && addr < obj.address + obj.size) return &obj;
    return nullptr;
  };

  // Pre-scan the bandwidth timeline so the allocation-time bandwidth
  // signal is available in trace order. Uncore readings (which see
  // prefetch fills) are authoritative; traces without them fall back to
  // reconstructing traffic from the PEBS samples.
  bool has_uncore = false;
  for (const auto& event : trace.events) {
    if (std::holds_alternative<trace::UncoreBwEvent>(event)) {
      has_uncore = true;
      break;
    }
  }
  for (const auto& event : trace.events) {
    if (const auto* u = std::get_if<trace::UncoreBwEvent>(&event)) {
      const Ns t0 = u->time > u->period_ns ? u->time - u->period_ns : 0;
      bw_meter.add(0, t0, u->time,
                   (u->read_gbs + u->write_gbs) * static_cast<double>(u->period_ns));
    } else if (const auto* s = std::get_if<trace::SampleEvent>(&event)) {
      if (!has_uncore) {
        bw_meter.add(0, s->time, s->time + 1, s->weight * static_cast<double>(kCacheLine));
      }
    }
    last_time = std::max(last_time, trace::event_time(event));
  }
  result.trace_end = last_time;

  for (const auto& event : trace.events) {
    if (const auto* a = std::get_if<trace::AllocEvent>(&event)) {
      if (a->stack == trace::kInvalidStack || a->stack >= trace.stacks.size()) {
        return unexpected("alloc event with invalid stack id");
      }
      live[a->address] = LiveObject{a->address, a->size, a->stack, a->time};
      object_address[a->object_id] = a->address;

      auto& acc = sites[a->stack];
      if (acc.record.alloc_count == 0) {
        acc.record.stack = a->stack;
        acc.record.callstack = trace.stacks.stack(a->stack);
        acc.record.first_alloc = a->time;
      }
      ++acc.record.alloc_count;
      acc.record.max_size = std::max(acc.record.max_size, a->size);
      acc.live_bytes += a->size;
      acc.record.peak_live_bytes = std::max(acc.record.peak_live_bytes, acc.live_bytes);

      const Ns w0 = a->time > options.alloc_window_ns ? a->time - options.alloc_window_ns / 2 : 0;
      acc.alloc_bw_sum += bw_meter.average_gbs(0, w0, w0 + options.alloc_window_ns);
    } else if (const auto* f = std::get_if<trace::FreeEvent>(&event)) {
      const auto addr_it = object_address.find(f->object_id);
      if (addr_it == object_address.end()) {
        return unexpected("free event for unknown object id " + std::to_string(f->object_id));
      }
      const auto live_it = live.find(addr_it->second);
      if (live_it == live.end()) {
        return unexpected("double free of object id " + std::to_string(f->object_id));
      }
      const LiveObject& obj = live_it->second;
      auto& acc = sites[obj.stack];
      acc.live_bytes = acc.live_bytes >= obj.size ? acc.live_bytes - obj.size : 0;
      acc.record.windows.push_back(LiveWindow{obj.alloc_time, f->time});
      acc.record.last_free = std::max(acc.record.last_free, f->time);
      acc.record.total_lifetime_ns +=
          static_cast<double>(f->time > obj.alloc_time ? f->time - obj.alloc_time : 0);
      live.erase(live_it);
      object_address.erase(addr_it);
    } else if (const auto* s = std::get_if<trace::SampleEvent>(&event)) {
      LiveObject* obj = find_live(s->address);
      auto& fn = functions[s->function_id];
      if (!s->is_store) {
        fn.samples += s->weight;
        fn.latency_sum += s->weight * s->latency_ns;
      }
      if (obj == nullptr) {
        result.unattributed_samples += s->weight;
        continue;
      }
      auto& acc = sites[obj->stack];
      if (s->is_store) {
        acc.record.store_misses += s->weight;
        acc.record.has_writes = true;
      } else {
        acc.record.load_misses += s->weight;
        acc.latency_weight += s->weight;
        acc.latency_sum += s->weight * s->latency_ns;
      }
    }
    // Marker events only delimit functions; sample events carry their own
    // function attribution, so no state is needed here.
  }

  // Objects still live at trace end: close their windows at last_time.
  for (const auto& [addr, obj] : live) {
    (void)addr;
    auto& acc = sites[obj.stack];
    acc.record.windows.push_back(LiveWindow{obj.alloc_time, last_time});
    acc.record.last_free = std::max(acc.record.last_free, last_time);
    acc.record.total_lifetime_ns +=
        static_cast<double>(last_time > obj.alloc_time ? last_time - obj.alloc_time : 0);
  }

  // --- Pass 2: finalize per-site derived metrics.
  result.system_bw = bw_meter.series(0);
  result.observed_peak_bw_gbs = bw_meter.peak_gbs(0);

  result.sites.reserve(sites.size());
  for (auto& [stack_id, acc] : sites) {
    (void)stack_id;
    SiteRecord& r = acc.record;
    if (r.alloc_count > 0) {
      r.mean_lifetime_ns = r.total_lifetime_ns / static_cast<double>(r.alloc_count);
      r.alloc_time_system_bw_gbs = acc.alloc_bw_sum / static_cast<double>(r.alloc_count);
    }
    if (acc.latency_weight > 0.0) {
      r.avg_load_latency_ns = acc.latency_sum / acc.latency_weight;
    }
    if (r.total_lifetime_ns > 0.0) {
      r.exec_bw_gbs = (r.load_misses + r.store_misses) * static_cast<double>(kCacheLine) /
                      r.total_lifetime_ns;
    }
    // Execution-time system bandwidth: average over the live windows.
    double weighted = 0.0;
    double total_dur = 0.0;
    for (const auto& w : r.windows) {
      const double dur = static_cast<double>(w.duration());
      weighted += bw_meter.average_gbs(0, w.start, std::max(w.end, w.start + 1)) * dur;
      total_dur += dur;
    }
    r.exec_time_system_bw_gbs = total_dur > 0.0 ? weighted / total_dur : 0.0;

    std::sort(r.windows.begin(), r.windows.end(),
              [](const LiveWindow& a, const LiveWindow& b) { return a.start < b.start; });
    result.sites.push_back(std::move(r));
  }

  // Deterministic output order: by first allocation, then stack id.
  std::sort(result.sites.begin(), result.sites.end(), [](const SiteRecord& a, const SiteRecord& b) {
    return a.first_alloc != b.first_alloc ? a.first_alloc < b.first_alloc : a.stack < b.stack;
  });

  result.functions.reserve(functions.size());
  for (const auto& [fn_id, acc] : functions) {
    FunctionProfile fp;
    fp.name = fn_id < trace.functions.size() ? trace.functions.name(fn_id) : "?";
    fp.load_samples = acc.samples;
    fp.avg_load_latency_ns = acc.samples > 0.0 ? acc.latency_sum / acc.samples : 0.0;
    result.functions.push_back(std::move(fp));
  }
  std::sort(result.functions.begin(), result.functions.end(),
            [](const FunctionProfile& a, const FunctionProfile& b) { return a.name < b.name; });

  return result;
}

}  // namespace ecohmem::analyzer
