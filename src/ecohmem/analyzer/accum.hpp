#pragma once

/// \file accum.hpp
/// Accumulation state shared by the two analyzer drivers.
///
/// `analyze()` (aggregator.cpp) replays a complete in-memory trace;
/// `IncrementalAggregator` (incremental.hpp) folds the same event
/// stream block by block for the serving layer. Both funnel their
/// per-site and per-function accumulators through `finalize_result()`
/// so the derived metrics, ordering and tie-breaking rules live in
/// exactly one place — the bit-identity contract between the offline
/// and incremental paths (tests/serve/test_session.cpp) depends on it.

#include <cstdint>
#include <map>
#include <unordered_map>

#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/analyzer/object_record.hpp"
#include "ecohmem/memsim/bandwidth_meter.hpp"
#include "ecohmem/trace/events.hpp"

namespace ecohmem::analyzer::detail {

/// Accumulator per allocation site during replay.
struct SiteAccum {
  SiteRecord record;            ///< the fields that survive into the result
  Bytes live_bytes = 0;         ///< currently live footprint of this site
  double latency_weight = 0.0;  ///< weights of latency-carrying samples
  double latency_sum = 0.0;     ///< weight * latency
  double alloc_bw_sum = 0.0;    ///< per-allocation system bw, summed
};

/// Accumulator per traced function (Table VII inputs).
struct FunctionAccum {
  double samples = 0.0;      ///< weighted load samples
  double latency_sum = 0.0;  ///< weight * latency
};

/// The analyzer's serial finalize phase, shared verbatim by both
/// drivers: derives the per-site metrics (mean lifetime, average load
/// latency, execution bandwidth, the window-weighted system-bandwidth
/// average), orders windows and sites deterministically, and assembles
/// the function profiles from the id-ordered accumulator map. Consumes
/// the site accumulators (records are moved out); `result.system_bw`,
/// `observed_peak_bw_gbs`, `sites` and `functions` are overwritten.
void finalize_result(std::unordered_map<trace::StackId, SiteAccum>& sites,
                     const std::map<std::uint32_t, FunctionAccum>& functions,
                     const memsim::BandwidthMeter& bw_meter,
                     const trace::FunctionTable& function_names,
                     AnalysisResult& result);

}  // namespace ecohmem::analyzer::detail
