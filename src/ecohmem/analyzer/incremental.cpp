#include "ecohmem/analyzer/incremental.hpp"

#include <algorithm>
#include <variant>

namespace ecohmem::analyzer {

IncrementalAggregator::IncrementalAggregator(const trace::StackTable& stacks,
                                             const trace::FunctionTable& functions,
                                             AnalyzerOptions options)
    : stacks_(&stacks),
      functions_(&functions),
      options_(options),
      uncore_meter_(1, options.bw_bin_ns),
      sample_meter_(1, options.bw_bin_ns) {}

Status IncrementalAggregator::ingest(const trace::Event* events, std::size_t count) {
  if (!error_.empty()) return unexpected(error_);

  for (std::size_t k = 0; k < count; ++k) {
    const trace::Event& event = events[k];
    const std::uint64_t i = n_events_;

    if (const auto* u = std::get_if<trace::UncoreBwEvent>(&event)) {
      has_uncore_ = true;
      const Ns t0 = u->time > u->period_ns ? u->time - u->period_ns : 0;
      uncore_meter_.add(0, t0, u->time,
                        (u->read_gbs + u->write_gbs) * static_cast<double>(u->period_ns));
    } else if (const auto* a = std::get_if<trace::AllocEvent>(&event)) {
      if (a->stack == trace::kInvalidStack || a->stack >= stacks_->size()) {
        error_ = "alloc event with invalid stack id";
        return unexpected(error_);
      }
      auto [it, inserted] = live_.try_emplace(a->address);
      // Address reuse while live: the previous object drops out of the
      // live map, exactly as in the offline replay.
      it->second = LiveObject{a->size, a->stack, a->time};
      (void)inserted;
      object_address_[a->object_id] = a->address;

      auto& acc = sites_[a->stack];
      if (acc.record.alloc_count == 0) {
        acc.record.stack = a->stack;
        acc.record.callstack = stacks_->stack(a->stack);
        acc.record.first_alloc = a->time;
      }
      ++acc.record.alloc_count;
      acc.record.max_size = std::max(acc.record.max_size, a->size);
      acc.live_bytes += a->size;
      acc.record.peak_live_bytes = std::max(acc.record.peak_live_bytes, acc.live_bytes);

      // The alloc-window bandwidth average can see future traffic;
      // defer the fold to finalize() (in allocation order).
      const Ns w0 = a->time > options_.alloc_window_ns ? a->time - options_.alloc_window_ns / 2 : 0;
      alloc_bw_pending_.emplace_back(a->stack, w0);
    } else if (const auto* f = std::get_if<trace::FreeEvent>(&event)) {
      const auto addr_it = object_address_.find(f->object_id);
      if (addr_it == object_address_.end()) {
        error_ = "free event for unknown object id " + std::to_string(f->object_id);
        return unexpected(error_);
      }
      const auto live_it = live_.find(addr_it->second);
      if (live_it == live_.end()) {
        error_ = "double free of object id " + std::to_string(f->object_id);
        return unexpected(error_);
      }
      const LiveObject& obj = live_it->second;
      auto& acc = sites_[obj.stack];
      acc.live_bytes = acc.live_bytes >= obj.size ? acc.live_bytes - obj.size : 0;
      acc.record.windows.push_back(LiveWindow{obj.alloc_time, f->time});
      acc.record.last_free = std::max(acc.record.last_free, f->time);
      acc.record.total_lifetime_ns +=
          static_cast<double>(f->time > obj.alloc_time ? f->time - obj.alloc_time : 0);
      live_.erase(live_it);
      object_address_.erase(addr_it);
    } else if (const auto* s = std::get_if<trace::SampleEvent>(&event)) {
      sample_meter_.add(0, s->time, s->time + 1, s->weight * static_cast<double>(kCacheLine));

      // Function attribution happens regardless of object resolution,
      // matching the offline accumulation phase.
      if (!s->is_store) {
        auto& fn = functions_accum_[s->function_id];
        fn.samples += s->weight;
        fn.latency_sum += s->weight * s->latency_ns;
      }

      // Resolve against the live map as of event i: nearest live start
      // at or below the address, containment-check that single
      // candidate (the serial analyzer's attribution rule).
      trace::StackId stack = trace::kInvalidStack;
      auto live_it = live_.upper_bound(s->address);
      if (live_it != live_.begin()) {
        --live_it;
        const LiveObject& obj = live_it->second;
        if (s->address >= live_it->first && s->address < live_it->first + obj.size) {
          stack = obj.stack;
        }
      }
      if (stack == trace::kInvalidStack) {
        unattributed_ += s->weight;
      } else {
        auto& acc = sites_[stack];
        if (s->is_store) {
          acc.record.store_misses += s->weight;
          acc.record.has_writes = true;
        } else {
          acc.record.load_misses += s->weight;
          acc.latency_weight += s->weight;
          acc.latency_sum += s->weight * s->latency_ns;
        }
      }
    }
    // Markers only carry a timestamp here, like offline.

    last_time_ = std::max(last_time_, trace::event_time(event));
    n_events_ = i + 1;
  }
  return {};
}

Expected<AnalysisResult> IncrementalAggregator::finalize(trace::TraceCoverage coverage) const {
  if (!error_.empty()) return unexpected(error_);

  AnalysisResult result;
  result.coverage = coverage;
  if (result.coverage.empty()) {
    result.coverage.events_seen = n_events_;
    result.coverage.events_declared = n_events_;
  }
  result.trace_end = last_time_;
  result.unattributed_samples = unattributed_;

  // The offline analyzer prescans the whole trace for uncore readings
  // before folding bandwidth; here both candidate folds already ran, so
  // just pick the one analyze() would have used.
  const memsim::BandwidthMeter& bw_meter = has_uncore_ ? uncore_meter_ : sample_meter_;

  // Snapshot semantics: all remaining folds mutate copies.
  std::unordered_map<trace::StackId, detail::SiteAccum> sites = sites_;

  // Deferred alloc-window folds, replayed in allocation order — each
  // site's alloc_bw_sum receives exactly the serial addition sequence.
  for (const auto& [stack, w0] : alloc_bw_pending_) {
    sites[stack].alloc_bw_sum +=
        bw_meter.average_gbs(0, w0, w0 + options_.alloc_window_ns);
  }

  // Objects still live: close their windows at the last event time, in
  // ascending address order (the offline survivor pass).
  for (const auto& [addr, obj] : live_) {
    (void)addr;
    auto& acc = sites[obj.stack];
    acc.record.windows.push_back(LiveWindow{obj.alloc_time, last_time_});
    acc.record.last_free = std::max(acc.record.last_free, last_time_);
    acc.record.total_lifetime_ns +=
        static_cast<double>(last_time_ > obj.alloc_time ? last_time_ - obj.alloc_time : 0);
  }

  detail::finalize_result(sites, functions_accum_, bw_meter, *functions_, result);
  return result;
}

}  // namespace ecohmem::analyzer
