#include "ecohmem/analyzer/accum.hpp"

#include <algorithm>
#include <utility>

namespace ecohmem::analyzer::detail {

void finalize_result(std::unordered_map<trace::StackId, SiteAccum>& sites,
                     const std::map<std::uint32_t, FunctionAccum>& functions,
                     const memsim::BandwidthMeter& bw_meter,
                     const trace::FunctionTable& function_names,
                     AnalysisResult& result) {
  result.system_bw = bw_meter.series(0);
  result.observed_peak_bw_gbs = bw_meter.peak_gbs(0);

  result.sites.clear();
  result.sites.reserve(sites.size());
  // srclint-ok: det-unordered-iter (result.sites is sorted below)
  for (auto& [stack_id, acc] : sites) {
    (void)stack_id;
    SiteRecord& r = acc.record;
    if (r.alloc_count > 0) {
      r.mean_lifetime_ns = r.total_lifetime_ns / static_cast<double>(r.alloc_count);
      r.alloc_time_system_bw_gbs = acc.alloc_bw_sum / static_cast<double>(r.alloc_count);
    }
    if (acc.latency_weight > 0.0) {
      r.avg_load_latency_ns = acc.latency_sum / acc.latency_weight;
    }
    if (r.total_lifetime_ns > 0.0) {
      r.exec_bw_gbs = (r.load_misses + r.store_misses) * static_cast<double>(kCacheLine) /
                      r.total_lifetime_ns;
    }
    // Execution-time system bandwidth: average over the live windows.
    double weighted = 0.0;
    double total_dur = 0.0;
    for (const auto& w : r.windows) {
      const double dur = static_cast<double>(w.duration());
      weighted += bw_meter.average_gbs(0, w.start, std::max(w.end, w.start + 1)) * dur;
      total_dur += dur;
    }
    r.exec_time_system_bw_gbs = total_dur > 0.0 ? weighted / total_dur : 0.0;

    std::sort(r.windows.begin(), r.windows.end(),
              [](const LiveWindow& a, const LiveWindow& b) { return a.start < b.start; });
    result.sites.push_back(std::move(r));
  }

  // Deterministic output order: by first allocation, then stack id.
  std::sort(result.sites.begin(), result.sites.end(), [](const SiteRecord& a, const SiteRecord& b) {
    return a.first_alloc != b.first_alloc ? a.first_alloc < b.first_alloc : a.stack < b.stack;
  });

  // The function map is ordered by id, so ties between equal names (the
  // "?" placeholder for out-of-range ids) break deterministically.
  result.functions.clear();
  result.functions.reserve(functions.size());
  for (const auto& [fn_id, acc] : functions) {
    FunctionProfile fp;
    fp.name = fn_id < function_names.size() ? function_names.name(fn_id) : "?";
    fp.load_samples = acc.samples;
    fp.avg_load_latency_ns = acc.samples > 0.0 ? acc.latency_sum / acc.samples : 0.0;
    result.functions.push_back(std::move(fp));
  }
  std::stable_sort(result.functions.begin(), result.functions.end(),
                   [](const FunctionProfile& a, const FunctionProfile& b) {
                     return a.name < b.name;
                   });
}

}  // namespace ecohmem::analyzer::detail
