#pragma once

/// \file site_report.hpp
/// Human/machine-readable rendering of an AnalysisResult — the
/// Paramedir-style summaries the workflow tools print and export.

#include <iosfwd>
#include <string>

#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/bom/module_table.hpp"
#include "ecohmem/common/expected.hpp"

namespace ecohmem::analyzer {

struct SiteReportOptions {
  /// Sort key for the text table.
  enum class Sort { kLoadMisses, kSize, kBandwidth, kFirstAlloc } sort = Sort::kLoadMisses;
  std::size_t top = 0;  ///< 0 = all sites
};

/// Fixed-width text table of the per-site records (call stacks rendered
/// in BOM format against `modules`).
void write_site_table(std::ostream& out, const AnalysisResult& analysis,
                      const bom::ModuleTable& modules, const SiteReportOptions& options = {});

/// CSV export: one row per site with every aggregate column; stable
/// column order documented in the header row.
void write_site_csv(std::ostream& out, const AnalysisResult& analysis,
                    const bom::ModuleTable& modules);

/// CSV of the per-function load-sample profile (Table VII's latency
/// source): function,load_samples,avg_load_latency_ns.
void write_function_csv(std::ostream& out, const AnalysisResult& analysis);

/// Convenience wrappers.
[[nodiscard]] std::string site_table_to_string(const AnalysisResult& analysis,
                                               const bom::ModuleTable& modules,
                                               const SiteReportOptions& options = {});
[[nodiscard]] Status save_site_csv(const std::string& path, const AnalysisResult& analysis,
                                   const bom::ModuleTable& modules);

}  // namespace ecohmem::analyzer
