#include "ecohmem/core/ecohmem.hpp"

#include <algorithm>
#include <memory>

#include "ecohmem/flexmalloc/flexmalloc.hpp"
#include "ecohmem/memsim/dram_cache.hpp"
#include "ecohmem/profiler/profiler.hpp"

namespace ecohmem::core {

namespace {

/// Builds the memory-mode execution mode for `system` (DRAM tier 0 caches
/// the fallback PMem tier).
Expected<std::unique_ptr<runtime::MemoryModeExec>> make_memory_mode(
    const memsim::MemorySystem& system) {
  const std::size_t pmem = system.fallback_index();
  if (system.tier_count() < 2 || pmem == 0) {
    return unexpected("memory mode needs a fast tier (0) and a distinct fallback tier");
  }
  memsim::DramCacheModel cache_model(system.tier(0).capacity());
  return std::make_unique<runtime::MemoryModeExec>(&system, 0, pmem, cache_model);
}

Expected<flexmalloc::FlexMalloc> make_flexmalloc(const memsim::MemorySystem& system,
                                                 const flexmalloc::ParsedReport& report,
                                                 Bytes dram_capacity,
                                                 const bom::SymbolTable* symbols) {
  std::vector<flexmalloc::HeapSpec> heaps;
  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    flexmalloc::HeapSpec spec;
    spec.tier = system.tier(i).name();
    spec.capacity = i == 0 ? dram_capacity : system.tier(i).capacity();
    heaps.push_back(std::move(spec));
  }
  return flexmalloc::FlexMalloc::create(std::move(heaps), report, symbols);
}

}  // namespace

const char* version() { return "1.0.0"; }

Expected<runtime::RunMetrics> run_memory_mode(const runtime::Workload& workload,
                                              const memsim::MemorySystem& system,
                                              runtime::EngineOptions engine_options) {
  auto mode = make_memory_mode(system);
  if (!mode) return unexpected(mode.error());
  runtime::ExecutionEngine engine(&system, engine_options);
  return engine.run(workload, **mode);
}

Expected<runtime::RunMetrics> run_with_placement(const runtime::Workload& workload,
                                                 const memsim::MemorySystem& system,
                                                 const advisor::Placement& placement,
                                                 Bytes dram_capacity,
                                                 advisor::ReportFormat format,
                                                 runtime::EngineOptions engine_options) {
  auto report_text =
      advisor::report_to_string(placement, format, *workload.modules, workload.symbols.get());
  if (!report_text) return unexpected(report_text.error());

  auto parsed = flexmalloc::parse_report(*report_text, *workload.modules);
  if (!parsed) return unexpected(parsed.error());

  auto fm = make_flexmalloc(system, *parsed, dram_capacity, workload.symbols.get());
  if (!fm) return unexpected(fm.error());

  runtime::AppDirectMode mode(&system, &*fm);
  runtime::ExecutionEngine engine(&system, engine_options);
  return engine.run(workload, mode);
}

Expected<WorkflowResult> run_workflow(const runtime::Workload& workload,
                                      const memsim::MemorySystem& system,
                                      const WorkflowOptions& options,
                                      runtime::EngineOptions engine_options) {
  if (engine_options.observer != nullptr) {
    return unexpected("run_workflow manages the observer internally");
  }

  WorkflowResult result;

  // --- 1. Profiling run (memory mode) with the profiler attached.
  profiler::ProfilerOptions popt;
  popt.sample_rate_hz = options.sample_rate_hz;
  popt.seed = options.profile_seed;
  popt.sample_stores = true;
  profiler::Profiler prof(popt);

  {
    auto mode = make_memory_mode(system);
    if (!mode) return unexpected(mode.error());
    runtime::EngineOptions eopt = engine_options;
    eopt.observer = &prof;
    runtime::ExecutionEngine engine(&system, eopt);
    auto metrics = engine.run(workload, **mode);
    if (!metrics) return unexpected("profiling run failed: " + metrics.error());
    result.baseline_metrics = std::move(*metrics);
  }

  // --- 2. Trace analysis (Paramedir role).
  const trace::Trace profile_trace = prof.take_trace();
  analyzer::AnalyzerOptions aopt;
  aopt.peak_pmem_bw_gbs = system.tier(system.fallback_index()).spec().peak_read_gbs;
  auto analysis = analyzer::analyze(profile_trace, aopt);
  if (!analysis) return unexpected("trace analysis failed: " + analysis.error());
  result.analysis = std::move(*analysis);

  // --- 3. Advisor. Human-readable matching keeps per-rank debug info in
  // DRAM, shrinking the budget (§VIII-D).
  Bytes dram_limit = options.dram_limit;
  if (options.format == advisor::ReportFormat::kHumanReadable) {
    const Bytes debug_tax =
        workload.modules->total_debug_info() * static_cast<Bytes>(std::max(workload.ranks, 1));
    dram_limit = dram_limit > debug_tax ? dram_limit - debug_tax : dram_limit / 4;
  }
  result.effective_dram_limit = dram_limit;

  // One knapsack per tier, in system performance order; the fastest
  // tier's budget is the user's limit, the others use their capacity.
  advisor::AdvisorConfig config;
  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    advisor::TierPolicy policy;
    policy.name = system.tier(i).name();
    policy.limit = i == 0 ? dram_limit : system.tier(i).capacity();
    policy.load_coef = 1.0;
    policy.store_coef = options.store_coef;
    policy.order = static_cast<int>(i);
    policy.fallback = i == system.fallback_index();
    config.tiers.push_back(std::move(policy));
  }

  auto base = advisor::place_by_density(result.analysis.sites, config);
  if (!base) return unexpected("density placement failed: " + base.error());
  result.placement = std::move(*base);

  if (options.bandwidth_aware) {
    advisor::BandwidthAwareOptions bw = options.bw_options;
    if (!options.keep_bw_thresholds) {
      // Region thresholds are relative to the *observed* peak bandwidth of
      // the profiling run (Fig. 3 peaks at 1.3 GB/s and still classifies
      // objects as B_high, so "peak PMem bandwidth" is the workload's
      // peak, not the DIMMs').
      bw.peak_pmem_bw_gbs = result.analysis.observed_peak_bw_gbs;
      bw.dram_tier = system.tier(0).name();
      bw.pmem_tier = system.tier(system.fallback_index()).name();
    }
    auto refined =
        advisor::place_bandwidth_aware(result.analysis.sites, result.placement, config, bw);
    if (!refined) return unexpected("bandwidth-aware placement failed: " + refined.error());
    result.placement = refined->placement;
    result.bandwidth_aware = std::move(*refined);
  }

  // --- 4. Report out, FlexMalloc in (production run).
  auto report_text = advisor::report_to_string(result.placement, options.format,
                                               *workload.modules, workload.symbols.get());
  if (!report_text) return unexpected(report_text.error());
  result.report_text = std::move(*report_text);

  auto parsed = flexmalloc::parse_report(result.report_text, *workload.modules);
  if (!parsed) return unexpected(parsed.error());

  auto fm = make_flexmalloc(system, *parsed, dram_limit, workload.symbols.get());
  if (!fm) return unexpected(fm.error());

  runtime::AppDirectMode mode(&system, &*fm);
  runtime::ExecutionEngine engine(&system, engine_options);
  auto production = engine.run(workload, mode);
  if (!production) return unexpected("production run failed: " + production.error());
  result.production_metrics = std::move(*production);

  return result;
}

}  // namespace ecohmem::core
