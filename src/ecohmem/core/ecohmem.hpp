#pragma once

/// \file ecohmem.hpp
/// The end-to-end ecoHMEM workflow (Fig. 1 of the paper):
///
///   production binary --Extrae/profiler--> trace
///     --Paramedir/analyzer--> per-object records
///     --HMem Advisor--> placement report (base or bandwidth-aware)
///     --FlexMalloc--> production run on the same binary
///
/// This is the library's primary entry point. The profiling run executes
/// under the memory-mode baseline (placement-independent LLC misses are
/// all the Advisor needs), which also yields the baseline metrics every
/// evaluation compares against.

#include <optional>
#include <string>

#include "ecohmem/advisor/bandwidth_aware.hpp"
#include "ecohmem/advisor/knapsack.hpp"
#include "ecohmem/advisor/report.hpp"
#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/memsim/tier.hpp"
#include "ecohmem/runtime/engine.hpp"
#include "ecohmem/runtime/workload.hpp"

namespace ecohmem::core {

struct WorkflowOptions {
  /// DRAM budget handed to the Advisor (the paper's 4/8/12 GB knob).
  Bytes dram_limit = 12ull * 1024 * 1024 * 1024;

  /// Store-miss coefficient; 0 = the "Loads" configuration of Fig. 6,
  /// 1 = "Loads+stores" (§V).
  double store_coef = 0.0;

  /// Apply the bandwidth-aware post-pass (§VII) on top of the base
  /// density placement.
  bool bandwidth_aware = false;

  /// Report/matching format (§VI, §VIII-D). Human-readable additionally
  /// charges per-rank debug info against the DRAM budget.
  advisor::ReportFormat format = advisor::ReportFormat::kBom;

  /// PEBS-equivalent sampling rate for the profiling run.
  double sample_rate_hz = 100.0;
  std::uint64_t profile_seed = 0x5eed;

  /// Bandwidth-aware thresholds; peak_pmem_bw_gbs is overwritten from the
  /// system's PMem tier unless `keep_bw_thresholds` is set.
  advisor::BandwidthAwareOptions bw_options;
  bool keep_bw_thresholds = false;
};

struct WorkflowResult {
  analyzer::AnalysisResult analysis;
  advisor::Placement placement;
  std::string report_text;
  std::optional<advisor::BandwidthAwareResult> bandwidth_aware;

  runtime::RunMetrics baseline_metrics;    ///< memory-mode profiling run
  runtime::RunMetrics production_metrics;  ///< app-direct run via FlexMalloc

  /// DRAM budget actually used by the Advisor (reduced by debug info for
  /// human-readable reports, §VIII-D).
  Bytes effective_dram_limit = 0;

  [[nodiscard]] double speedup() const {
    return production_metrics.speedup_over(baseline_metrics);
  }
};

/// Runs the full workflow. `engine_options.observer` is managed
/// internally and must be null.
[[nodiscard]] Expected<WorkflowResult> run_workflow(
    const runtime::Workload& workload, const memsim::MemorySystem& system,
    const WorkflowOptions& options = {}, runtime::EngineOptions engine_options = {});

/// Runs the workload under memory mode only (the baseline).
[[nodiscard]] Expected<runtime::RunMetrics> run_memory_mode(
    const runtime::Workload& workload, const memsim::MemorySystem& system,
    runtime::EngineOptions engine_options = {});

/// Runs the workload app-direct with a given placement (used for ProfDP
/// variants and manual placements). The placement travels through a real
/// report + FlexMalloc matching, exercising the same machinery as the
/// main workflow.
[[nodiscard]] Expected<runtime::RunMetrics> run_with_placement(
    const runtime::Workload& workload, const memsim::MemorySystem& system,
    const advisor::Placement& placement, Bytes dram_capacity,
    advisor::ReportFormat format = advisor::ReportFormat::kBom,
    runtime::EngineOptions engine_options = {});

/// Library version string.
[[nodiscard]] const char* version();

}  // namespace ecohmem::core
