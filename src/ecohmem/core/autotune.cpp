#include "ecohmem/core/autotune.hpp"

#include <algorithm>
#include <future>
#include <thread>

namespace ecohmem::core {

Expected<AutotuneResult> autotune(const runtime::Workload& workload,
                                  const memsim::MemorySystem& system,
                                  const AutotuneSpace& space, unsigned max_parallelism) {
  if (space.dram_limits.empty() || space.store_coefs.empty() ||
      space.bandwidth_aware.empty()) {
    return unexpected("autotune space is empty");
  }

  std::vector<WorkflowOptions> candidates;
  for (const Bytes dram : space.dram_limits) {
    for (const double coef : space.store_coefs) {
      for (const bool bw : space.bandwidth_aware) {
        WorkflowOptions opt;
        opt.dram_limit = dram;
        opt.store_coef = coef;
        opt.bandwidth_aware = bw;
        opt.format = advisor::ReportFormat::kBom;  // thread-safe path only
        candidates.push_back(opt);
      }
    }
  }

  unsigned parallelism = max_parallelism != 0 ? max_parallelism
                                              : std::max(1u, std::thread::hardware_concurrency());
  parallelism = std::min<unsigned>(parallelism, static_cast<unsigned>(candidates.size()));

  AutotuneResult result;
  result.all.resize(candidates.size());

  // Bounded fan-out: launch in waves of `parallelism` async evaluations.
  for (std::size_t wave = 0; wave < candidates.size(); wave += parallelism) {
    const std::size_t end = std::min(wave + parallelism, candidates.size());
    std::vector<std::future<AutotuneCandidate>> futures;
    futures.reserve(end - wave);
    for (std::size_t i = wave; i < end; ++i) {
      futures.push_back(std::async(std::launch::async, [&, i] {
        AutotuneCandidate c;
        c.options = candidates[i];
        const auto run = run_workflow(workload, system, candidates[i]);
        if (run) {
          c.ok = true;
          c.speedup = run->speedup();
        } else {
          c.error = run.error();
        }
        return c;
      }));
    }
    for (std::size_t i = wave; i < end; ++i) {
      result.all[i] = futures[i - wave].get();
    }
  }

  const auto best = std::max_element(
      result.all.begin(), result.all.end(), [](const auto& a, const auto& b) {
        if (a.ok != b.ok) return !a.ok;
        return a.speedup < b.speedup;
      });
  if (best == result.all.end() || !best->ok) {
    return unexpected("every autotune candidate failed" +
                      (result.all.empty() ? "" : ": " + result.all.front().error));
  }
  result.best = *best;
  return result;
}

}  // namespace ecohmem::core
