#pragma once

/// \file autotune.hpp
/// Parallel Advisor-configuration search.
///
/// The paper picks DRAM limits and metric configurations by hand (4/8/12
/// GB, Loads vs Loads+stores, base vs bandwidth-aware). Since a workflow
/// evaluation is cheap on the simulator, we can simply search the space:
/// every candidate configuration runs the full profile→advise→produce
/// pipeline concurrently (std::async fan-out) and the fastest production
/// run wins. Deterministic: results are independent of scheduling.
///
/// Restricted to BOM-format reports: the human-readable path shares a
/// lazily-sorted symbol table across runs and is not thread-safe.

#include <vector>

#include "ecohmem/core/ecohmem.hpp"

namespace ecohmem::core {

/// The cross-product search space.
struct AutotuneSpace {
  std::vector<Bytes> dram_limits = {4ull << 30, 8ull << 30, 12ull << 30};
  std::vector<double> store_coefs = {0.0, 0.125};
  std::vector<bool> bandwidth_aware = {false, true};
};

/// One evaluated candidate.
struct AutotuneCandidate {
  WorkflowOptions options;
  double speedup = 0.0;  ///< over the memory-mode baseline
  bool ok = false;
  std::string error;
};

struct AutotuneResult {
  AutotuneCandidate best;
  std::vector<AutotuneCandidate> all;  ///< every candidate, search order
};

/// Evaluates the whole space; `max_parallelism` bounds concurrent runs
/// (0 = hardware concurrency). Fails only if every candidate fails.
[[nodiscard]] Expected<AutotuneResult> autotune(const runtime::Workload& workload,
                                                const memsim::MemorySystem& system,
                                                const AutotuneSpace& space = {},
                                                unsigned max_parallelism = 0);

}  // namespace ecohmem::core
