#pragma once

/// \file profiler.hpp
/// The Extrae role: data-oriented profiling of a (simulated) run.
///
/// Attached to the execution engine as an observer, the profiler:
///   - records every allocation/reallocation/deallocation with size,
///     call stack (interned in BOM form, §VI) and returned address —
///     the instrumentation of §IV-A,
///   - subsamples the LLC load-miss stream and the store stream at a
///     fixed rate (default 100 Hz, the paper's PEBS configuration),
///     attaching a data linear address within the touched object and a
///     per-sample weight equal to the inverse sampling ratio,
///   - emits enter/leave markers per kernel so samples are attributable
///     to functions (Table VII).
///
/// Sampling is deterministic given the seed; the sampling-noise property
/// tests (DESIGN.md D5) sweep the seed.

#include "ecohmem/common/rng.hpp"
#include "ecohmem/runtime/observer.hpp"
#include "ecohmem/trace/events.hpp"

namespace ecohmem::profiler {

struct ProfilerOptions {
  double sample_rate_hz = 100.0;  ///< per counter (loads and stores)
  bool sample_loads = true;       ///< MEM_LOAD_RETIRED.L3_MISS analogue
  bool sample_stores = true;      ///< MEM_INST_RETIRED.ALL_STORES analogue (§V)
  bool sample_uncore = true;      ///< periodic IMC bandwidth readings
  std::uint64_t seed = 0x5eed;
  double latency_jitter = 0.2;    ///< +/- fraction applied to sampled latency
};

class Profiler final : public runtime::ExecutionObserver {
 public:
  explicit Profiler(ProfilerOptions options = {});

  void on_alloc(Ns time, std::uint64_t object_uid, std::uint64_t address, Bytes size,
                const bom::CallStack& stack) override;
  void on_free(Ns time, std::uint64_t object_uid) override;
  void on_kernel(const runtime::KernelObservation& observation) override;

  /// Finishes the trace and hands it over (the profiler can be reused
  /// afterwards for another run).
  [[nodiscard]] trace::Trace take_trace();

  [[nodiscard]] const trace::Trace& trace() const { return trace_; }

 private:
  void emit_samples(const runtime::KernelObservation& obs, bool stores,
                    std::uint32_t function_id);
  void emit_uncore(const runtime::KernelObservation& obs);

  ProfilerOptions options_;
  trace::Trace trace_;
  Rng rng_;
  double load_sample_carry_ = 0.0;
  double store_sample_carry_ = 0.0;
};

}  // namespace ecohmem::profiler
