#include "ecohmem/profiler/profiler.hpp"

#include <algorithm>
#include <cmath>

namespace ecohmem::profiler {

Profiler::Profiler(ProfilerOptions options) : options_(options), rng_(options.seed) {
  trace_.sample_rate_hz = options_.sample_rate_hz;
}

void Profiler::on_alloc(Ns time, std::uint64_t object_uid, std::uint64_t address, Bytes size,
                        const bom::CallStack& stack) {
  trace::AllocEvent e;
  e.time = time;
  e.object_id = object_uid;
  e.address = address;
  e.size = size;
  e.stack = trace_.stacks.intern(stack);
  trace_.events.emplace_back(e);
}

void Profiler::on_free(Ns time, std::uint64_t object_uid) {
  trace_.events.emplace_back(trace::FreeEvent{time, object_uid});
}

void Profiler::emit_samples(const runtime::KernelObservation& obs, bool stores,
                            std::uint32_t function_id) {
  double total = 0.0;
  for (const auto& o : obs.objects) total += stores ? o.store_instructions : o.load_misses;
  if (total <= 0.0) return;

  const double duration_s = static_cast<double>(obs.end - obs.start) * 1e-9;
  double& carry = stores ? store_sample_carry_ : load_sample_carry_;
  const double budget = duration_s * options_.sample_rate_hz + carry;
  const auto n_samples = static_cast<std::uint64_t>(budget);
  carry = budget - static_cast<double>(n_samples);
  if (n_samples == 0) return;

  const double weight = total / static_cast<double>(n_samples);
  const Ns span = obs.end - obs.start;

  // Cumulative miss distribution over objects for proportional draws.
  std::vector<double> cdf;
  cdf.reserve(obs.objects.size());
  double acc = 0.0;
  for (const auto& o : obs.objects) {
    acc += stores ? o.store_instructions : o.load_misses;
    cdf.push_back(acc);
  }

  for (std::uint64_t s = 0; s < n_samples; ++s) {
    const double pick = rng_.next_double() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), pick);
    const std::size_t idx = std::min(static_cast<std::size_t>(it - cdf.begin()),
                                     obs.objects.size() - 1);
    const auto& obj = obs.objects[idx];

    trace::SampleEvent e;
    e.time = obs.start + (span > 0 ? rng_.next_below(span) : 0);
    const Bytes line_count = std::max<Bytes>(obj.size / kCacheLine, 1);
    e.address = obj.address + rng_.next_below(line_count) * kCacheLine;
    e.weight = weight;
    e.is_store = stores;
    e.function_id = function_id;
    if (!stores) {
      const double jitter =
          1.0 + options_.latency_jitter * (2.0 * rng_.next_double() - 1.0);
      e.latency_ns = obj.avg_load_latency_ns * jitter;
    }
    trace_.events.emplace_back(e);
  }
}

void Profiler::on_kernel(const runtime::KernelObservation& obs) {
  const std::uint32_t fn = trace_.functions.intern(obs.kernel->function);
  trace_.events.emplace_back(trace::MarkerEvent{obs.start, fn, true});
  if (options_.sample_loads) emit_samples(obs, /*stores=*/false, fn);
  if (options_.sample_stores) emit_samples(obs, /*stores=*/true, fn);
  if (options_.sample_uncore) emit_uncore(obs);
  trace_.events.emplace_back(trace::MarkerEvent{obs.end, fn, false});
}

void Profiler::emit_uncore(const runtime::KernelObservation& obs) {
  const Ns span = obs.end > obs.start ? obs.end - obs.start : 1;
  const double duration_s = static_cast<double>(span) * 1e-9;
  const auto n = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(duration_s * options_.sample_rate_hz));
  const Ns period = span / n > 0 ? span / n : 1;
  const double read_gbs = obs.total_read_bytes / static_cast<double>(span);
  const double write_gbs = obs.total_write_bytes / static_cast<double>(span);
  for (std::uint64_t k = 0; k < n; ++k) {
    trace::UncoreBwEvent e;
    e.time = obs.start + (k + 1) * period;
    e.period_ns = period;
    e.read_gbs = read_gbs;
    e.write_gbs = write_gbs;
    trace_.events.emplace_back(e);
  }
}

trace::Trace Profiler::take_trace() {
  // Events are appended per kernel with randomized intra-kernel times;
  // restore global time order for the analyzer.
  std::stable_sort(trace_.events.begin(), trace_.events.end(),
                   [](const trace::Event& a, const trace::Event& b) {
                     return trace::event_time(a) < trace::event_time(b);
                   });
  trace::Trace out = std::move(trace_);
  trace_ = trace::Trace{};
  trace_.sample_rate_hz = options_.sample_rate_hz;
  load_sample_carry_ = 0.0;
  store_sample_carry_ = 0.0;
  return out;
}

}  // namespace ecohmem::profiler
