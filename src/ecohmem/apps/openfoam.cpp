#include "ecohmem/apps/apps.hpp"

namespace ecohmem::apps {

using runtime::AccessPattern;
using runtime::KernelAccess;
using runtime::WorkloadBuilder;

/// OpenFOAM model (3D depth charge): the production-CFD case where the
/// base access-density algorithm *fails* (2x slowdown vs memory mode) and
/// the bandwidth-aware algorithm recovers a 6.1% win (§VIII-C,
/// Table VIII, Fig. 7).
///
/// Time-step structure:
///   gradient  (low bandwidth) : gathers through mesh connectivity,
///   assembly  (high bandwidth): streaming matrix/flux temporaries are
///                               allocated here and hammer PMem,
///   solve     (low bandwidth) : solver workspace gathers (+ temps),
///   update    (low bandwidth) : field refresh.
///
/// Why the base algorithm loses: the mesh-connectivity and solver-
/// workspace sites have the highest demand-miss density, so they fill the
/// 11 GB DRAM budget — but their misses happen in *low-bandwidth* phases
/// where PMem would only cost the modest idle-latency gap. The assembly
/// temporaries have unremarkable density (their streams prefetch well),
/// land in PMem, and saturate PMem read+write bandwidth every assembly
/// phase. The bandwidth-aware pass classifies them as Thrashing, the
/// mesh/solver slabs as Fitting, swaps them, and moves the read-only
/// interpolation scratch (Streaming-D) out of DRAM.
runtime::Workload make_openfoam(const AppOptions& options) {
  const int steps = options.iterations > 0 ? options.iterations : 20;
  const double s = options.scale;
  const auto bytes = [s](double gib) { return static_cast<Bytes>(gib * s * 1024 * 1024 * 1024); };
  const double gib = s * 1024.0 * 1024.0 * 1024.0;
  const double lines = gib / 64.0;

  WorkloadBuilder b("openfoam");
  b.ranks(16).threads(1).mlp(9.0).static_footprint(bytes(1.2));

  [[maybe_unused]] const auto exe =
      b.add_module("rhoPimpleFoam", 20ull * 1024 * 1024, 25ull * 1024 * 1024);
  const auto libfoam = b.add_module("libOpenFOAM.so", 60ull * 1024 * 1024,
                                    120ull * 1024 * 1024);
  const auto libfvm = b.add_module("libfiniteVolume.so", 48ull * 1024 * 1024,
                                   100ull * 1024 * 1024);

  // Persistent gather-heavy structures: 5 mesh-connectivity slabs and 3
  // solver workspaces (the Fitting pool).
  std::vector<std::size_t> mesh;
  for (int i = 0; i < 5; ++i) {
    const auto site = b.add_site(libfoam, "polyMesh::cellFaces#" + std::to_string(i),
                                 "meshes/polyMesh/polyMesh.C",
                                 static_cast<std::uint32_t>(410 + i), 5);
    mesh.push_back(b.add_object(site, bytes(1.25), AccessPattern::kRandom, 0.3, 0.55, 0.05));
  }
  std::vector<std::size_t> solver;
  for (int i = 0; i < 3; ++i) {
    const auto site = b.add_site(libfoam, "lduMatrix::solver#" + std::to_string(i),
                                 "matrices/lduMatrix/lduMatrix.C",
                                 static_cast<std::uint32_t>(150 + i), 5);
    solver.push_back(b.add_object(site, bytes(1.3), AccessPattern::kRandom, 0.3, 0.55, 0.05));
  }

  // Persistent cell/face fields (streamed; stay in PMem under both
  // algorithms).
  std::vector<std::size_t> fields;
  for (int i = 0; i < 6; ++i) {
    const auto site = b.add_site(libfvm, "volScalarField::data#" + std::to_string(i),
                                 "fields/volFields/volFields.C",
                                 static_cast<std::uint32_t>(88 + i), 5);
    fields.push_back(
        b.add_object(site, bytes(3.0), AccessPattern::kSequential, 0.05, 0.55, 0.9));
  }

  // Assembly temporaries: streaming, reallocated every step at the start
  // of the high-bandwidth phase (the Thrashing pool).
  std::vector<std::size_t> temps;
  for (int i = 0; i < 10; ++i) {
    const auto site = b.add_site(libfvm, "fvMatrix::assembly#" + std::to_string(i),
                                 "fvMatrices/fvMatrix/fvMatrix.C",
                                 static_cast<std::uint32_t>(1210 + i), 6);
    temps.push_back(
        b.add_object(site, bytes(1.1), AccessPattern::kSequential, 0.02, 0.75, 0.94));
  }

  // Read-only interpolation scratch, reallocated every step in a
  // low-bandwidth phase (the Streaming-D specimen).
  const auto site_interp = b.add_site(libfvm, "surfaceInterpolation::weights",
                                      "interpolation/surfaceInterpolation.C", 204, 5);
  const auto interp =
      b.add_object(site_interp, bytes(0.8), AccessPattern::kStrided, 0.3, 0.55, 0.3);

  // ---- Kernels.
  const auto k_init = b.add_kernel("createMesh", 1.0e10, 5.0e9, {});

  std::vector<KernelAccess> grad_acc;
  for (const auto o : mesh) grad_acc.push_back(KernelAccess{o, 1.1e7 * s, 0.0, 1.25 * gib});
  for (const auto o : fields) grad_acc.push_back(KernelAccess{o, 0.4 * lines, 0.05 * lines, 3.0 * gib});
  grad_acc.push_back(KernelAccess{interp, 1.0 * lines, 0.0, 0.8 * gib});
  const auto k_gradient = b.add_kernel("fvc::grad", 1.4e10, 4.0e9, grad_acc);

  std::vector<KernelAccess> asm_acc;
  for (const auto o : temps) asm_acc.push_back(KernelAccess{o, 2.0 * lines, 10.0 * lines, 1.1 * gib});
  for (const auto o : fields) asm_acc.push_back(KernelAccess{o, 0.2 * lines, 0.05 * lines, 0.6 * gib});
  const auto k_assembly = b.add_kernel("fvMatrix::assemble", 1.2e10, 2.5e9, asm_acc);

  std::vector<KernelAccess> solve_acc;
  for (const auto o : solver) solve_acc.push_back(KernelAccess{o, 1.0e7 * s, 0.1 * lines, 1.3 * gib});
  for (const auto o : mesh) solve_acc.push_back(KernelAccess{o, 0.3e7 * s, 0.0, 1.25 * gib});
  for (const auto o : temps) solve_acc.push_back(KernelAccess{o, 0.3 * lines, 0.0, 1.1 * gib});
  const auto k_solve = b.add_kernel("PCG::solve", 1.6e10, 5.0e9, solve_acc);

  std::vector<KernelAccess> upd_acc;
  for (const auto o : fields) upd_acc.push_back(KernelAccess{o, 0.5 * lines, 0.3 * lines, 3.0 * gib});
  const auto k_update = b.add_kernel("rhoPimpleFoam::update", 6.0e9, 2.0e9, upd_acc);

  // ---- Steps.
  for (const auto o : mesh) b.alloc(o);
  for (const auto o : solver) b.alloc(o);
  for (const auto o : fields) b.alloc(o);
  b.run_kernel(k_init);
  for (int t = 0; t < steps; ++t) {
    b.alloc(interp);  // low-bandwidth allocation point
    b.run_kernel(k_gradient);
    for (const auto o : temps) b.alloc(o);  // high-bandwidth allocation point
    b.run_kernel(k_assembly);
    b.run_kernel(k_solve);
    for (const auto o : temps) b.free(o);
    b.free(interp);
    b.run_kernel(k_update);
  }
  for (const auto o : mesh) b.free(o);
  for (const auto o : solver) b.free(o);
  for (const auto o : fields) b.free(o);
  return b.build();
}

}  // namespace ecohmem::apps
