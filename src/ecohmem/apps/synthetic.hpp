#pragma once

/// \file synthetic.hpp
/// Randomized-but-valid workload generation for property testing and
/// stress benchmarks: arbitrary (seeded) site populations, object sizes,
/// lifetime structures and kernel access mixes, always satisfying the
/// step-list invariants the builder enforces.
///
/// The workflow must behave sensibly on *any* such workload: never crash,
/// never overcommit the Advisor's budgets, never lose an allocation —
/// the properties tests/apps/test_synthetic.cpp pins down.

#include "ecohmem/runtime/workload.hpp"

namespace ecohmem::apps {

struct SyntheticSpec {
  std::uint64_t seed = 1;
  int persistent_objects = 8;    ///< allocated once, live the whole run
  int transient_sites = 6;       ///< reallocated every phase
  int phases = 10;
  int kernels_per_phase = 3;
  Bytes min_object = 64ull << 20;
  Bytes max_object = 4ull << 30;
  double max_sweeps_per_kernel = 2.0;  ///< per-object read intensity cap
  double store_probability = 0.4;
};

/// Builds a valid random workload; deterministic per spec/seed.
[[nodiscard]] runtime::Workload make_synthetic(const SyntheticSpec& spec = {});

/// Phase-shifting workload (docs/online.md): `groups` equally sized
/// arrays take turns being the hot set — each phase streams one group
/// hard and barely touches the rest, rotating every phase. Time-averaged
/// miss densities are identical across groups, so a frozen profile-based
/// placement cannot distinguish them and leaves the per-phase hot group
/// on the slow tier about half the time; an online policy that promotes
/// whatever is hot *now* wins. The adversarial case for static placement.
struct PhaseShiftSpec {
  int groups = 4;                      ///< rotating hot candidates
  Bytes group_bytes = 9ull << 29;      ///< 4.5 GiB per group
  Bytes background_bytes = 12ull << 30;  ///< cold resident backing array
  int phases = 8;                      ///< full run = `phases` rotations
  int kernels_per_phase = 12;          ///< hot-sweep kernels per phase
  double hot_sweeps = 2.0;             ///< full passes over the hot group
  double cold_sweeps = 0.02;           ///< residual touch on cold groups
};

/// Builds the phase-shift workload; deterministic (no randomness).
[[nodiscard]] runtime::Workload make_phase_shift(const PhaseShiftSpec& spec = {});

}  // namespace ecohmem::apps
