#pragma once

/// \file synthetic.hpp
/// Randomized-but-valid workload generation for property testing and
/// stress benchmarks: arbitrary (seeded) site populations, object sizes,
/// lifetime structures and kernel access mixes, always satisfying the
/// step-list invariants the builder enforces.
///
/// The workflow must behave sensibly on *any* such workload: never crash,
/// never overcommit the Advisor's budgets, never lose an allocation —
/// the properties tests/apps/test_synthetic.cpp pins down.

#include "ecohmem/runtime/workload.hpp"

namespace ecohmem::apps {

struct SyntheticSpec {
  std::uint64_t seed = 1;
  int persistent_objects = 8;    ///< allocated once, live the whole run
  int transient_sites = 6;       ///< reallocated every phase
  int phases = 10;
  int kernels_per_phase = 3;
  Bytes min_object = 64ull << 20;
  Bytes max_object = 4ull << 30;
  double max_sweeps_per_kernel = 2.0;  ///< per-object read intensity cap
  double store_probability = 0.4;
};

/// Builds a valid random workload; deterministic per spec/seed.
[[nodiscard]] runtime::Workload make_synthetic(const SyntheticSpec& spec = {});

}  // namespace ecohmem::apps
