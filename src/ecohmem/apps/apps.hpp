#pragma once

/// \file apps.hpp
/// Synthetic workload models of the seven applications of Table V.
///
/// Each builder returns a `runtime::Workload` whose allocation structure
/// and phase-level access behaviour are calibrated to the published
/// characteristics (Table V footprints/ranks, Table VI memory-boundedness
/// and memory-mode hit ratios) and to the qualitative descriptions in
/// §VII-A and §VIII. They are *models*, not ports: what must be faithful
/// is everything the placement methodology observes — allocation sites,
/// call stacks, sizes, lifetimes, allocation counts, miss densities and
/// bandwidth structure over time (see DESIGN.md §2).
///
/// Conventions: all byte/miss/cycle quantities are node-level aggregates
/// across MPI ranks; `iterations` scales run length (and hence profile
/// sample counts) without changing steady-state behaviour.

#include "ecohmem/runtime/workload.hpp"

namespace ecohmem::apps {

struct AppOptions {
  /// Main-loop iterations; 0 = the app's default.
  int iterations = 0;

  /// Linear scale on object sizes and traffic (1 = Table V config).
  double scale = 1.0;
};

/// MiniFE 2.2.0, (400,400,400), 12 ranks x 2 threads, 23.9 GB.
/// Unstructured implicit FE: CG solve over a huge streamed CSR matrix with
/// latency-critical gather vectors. Memory mode suffers (39.9% hit).
[[nodiscard]] runtime::Workload make_minife(const AppOptions& options = {});

/// MiniMD 2.0, Lennard-Jones, 12 ranks x 2 threads, 26.4 GB.
/// Compute-dominated MD; moderate memory-boundedness (41.5%).
[[nodiscard]] runtime::Workload make_minimd(const AppOptions& options = {});

/// LULESH 2.0.3, -p -i 10 -s 224, 8 ranks x 3 threads, 85 GB.
/// Recurring phases with long-lived element arrays and short-lived
/// high-bandwidth temporaries — the §VII-A case study (Figs. 3-5,
/// Tables II/III).
[[nodiscard]] runtime::Workload make_lulesh(const AppOptions& options = {});

/// HPCG 3.1, (192,192,192), 6 ranks x 4 threads, 38.5 GB.
/// Multigrid preconditioned CG; strongly memory bound (80.5%).
[[nodiscard]] runtime::Workload make_hpcg(const AppOptions& options = {});

/// CloverLeaf3D 1.2b, (512,512,512), 24 ranks x 1 thread, 35.2 GB.
/// Store-heavy structured hydrodynamics; the app where the Loads+stores
/// heuristic matters most (§VIII-A).
[[nodiscard]] runtime::Workload make_cloverleaf3d(const AppOptions& options = {});

/// LAMMPS stable_Oct20, rhodo.scaled, 12 ranks x 2 threads, 50.9 GB.
/// Cache-resident compute with latency-sensitive MPI communication
/// buffers; the least memory-bound case (§VIII-C).
[[nodiscard]] runtime::Workload make_lammps(const AppOptions& options = {});

/// OpenFOAM v1906, 3D depth charge (240,480,240), 16 ranks, 53.8 GB.
/// Complex production CFD with bandwidth demand varying across the run —
/// the case where the base algorithm fails (2x slowdown) and the
/// bandwidth-aware algorithm wins (§VIII-C, Table VIII, Fig. 7).
[[nodiscard]] runtime::Workload make_openfoam(const AppOptions& options = {});

/// Phase-shift synthetic (synthetic.hpp): rotating hot set, the
/// adversarial case for frozen static placement and the showcase for the
/// online policy (docs/online.md). `iterations` = number of phases,
/// `scale` scales group/background sizes.
[[nodiscard]] runtime::Workload make_phase_shift_app(const AppOptions& options = {});

/// Adversarial large-hot synthetic (docs/learned.md): two huge grids
/// carry most of the miss traffic, but a pack of small scratch buffers
/// is denser per byte, so greedy's density ranking crowds the hottest
/// object out of DRAM. The workload the learned policy must win on.
/// `iterations` = sweep iterations, `scale` scales all object sizes.
[[nodiscard]] runtime::Workload make_large_hot(const AppOptions& options = {});

/// All registered models, keyed by the names used in the benchmark tables.
[[nodiscard]] runtime::Workload make_app(const std::string& name,
                                         const AppOptions& options = {});

/// Names accepted by `make_app`.
[[nodiscard]] std::vector<std::string> app_names();

}  // namespace ecohmem::apps
