#include "ecohmem/apps/apps.hpp"

namespace ecohmem::apps {

using runtime::AccessPattern;
using runtime::KernelAccess;
using runtime::WorkloadBuilder;

/// MiniMD model: Lennard-Jones molecular dynamics.
///
/// Force computation dominates and is arithmetic-heavy; positions are
/// gathered through the neighbor lists, but the per-atom working set
/// caches well (Table VI: only 41.5% memory-bound, 61.5% memory-mode hit
/// ratio). The placement win is correspondingly modest (~8%), and the
/// store-aware heuristic slightly overcommits DRAM to the force array at
/// the 8 GB limit (the paper's observed 4% win -> 2% loss flip).
runtime::Workload make_minimd(const AppOptions& options) {
  const int iters = options.iterations > 0 ? options.iterations : 40;
  const double s = options.scale;
  const auto bytes = [s](double gib) { return static_cast<Bytes>(gib * s * 1024 * 1024 * 1024); };
  const double gib = s * 1024.0 * 1024.0 * 1024.0;
  const double lines = gib / 64.0;

  WorkloadBuilder b("minimd");
  b.ranks(12).threads(2).mlp(10.0).static_footprint(bytes(0.5));

  const auto exe = b.add_module("miniMD.x", 3ull * 1024 * 1024, 40ull * 1024 * 1024);

  const auto site_neigh = b.add_site(exe, "Neighbor::build", "src/neighbor.cpp", 321);
  const auto site_pos = b.add_site(exe, "Atom::x", "src/atom.cpp", 90);
  const auto site_vel = b.add_site(exe, "Atom::v", "src/atom.cpp", 96);
  const auto site_force = b.add_site(exe, "Atom::f", "src/atom.cpp", 102);
  const auto site_comm = b.add_site(exe, "Comm::buffers", "src/comm.cpp", 188);

  const auto neigh = b.add_object(site_neigh, bytes(18.0), AccessPattern::kSequential, 0.0, 0.58,
                                  0.85);
  const auto pos = b.add_object(site_pos, bytes(2.6), AccessPattern::kRandom, 0.5, 0.7, 0.15);
  const auto vel = b.add_object(site_vel, bytes(2.6), AccessPattern::kSequential, 0.2, 0.7, 0.8);
  const auto force = b.add_object(site_force, bytes(2.6), AccessPattern::kStrided, 0.4, 0.65, 0.4);
  const auto comm = b.add_object(site_comm, bytes(0.5), AccessPattern::kStrided, 0.3, 0.6, 0.3);

  // Force kernel: heavy compute, gathers positions via neighbor stream.
  const std::size_t k_force = b.add_kernel(
      "ForceLJ::compute", 2.4e10, 1.0e10,
      {KernelAccess{neigh, 18.0 * lines, 0.0, 18.0 * gib},
       KernelAccess{pos, 2.2e7 * s, 0.0, 2.6 * gib},
       KernelAccess{force, 1.8 * lines, 1.8 * lines, 2.6 * gib}});

  const std::size_t k_integrate = b.add_kernel(
      "Integrate::run", 2.0e9, 4.0e8,
      {KernelAccess{pos, 2.6 * lines, 2.6 * lines, 2.6 * gib},
       KernelAccess{vel, 2.6 * lines, 2.6 * lines, 2.6 * gib},
       KernelAccess{force, 2.6 * lines, 0.0, 2.6 * gib}});

  const std::size_t k_comm = b.add_kernel(
      "Comm::exchange", 3.0e8, 6.0e7,
      {KernelAccess{comm, 1.0 * lines, 0.5 * lines, 0.5 * gib},
       KernelAccess{pos, 0.3 * lines, 0.0, 2.6 * gib}});

  // Neighbor rebuild every 5 steps.
  const std::size_t k_rebuild = b.add_kernel(
      "Neighbor::rebuild", 6.0e9, 1.5e9,
      {KernelAccess{neigh, 9.0 * lines, 18.0 * lines, 18.0 * gib},
       KernelAccess{pos, 3.0e7 * s, 0.0, 2.6 * gib}});

  b.alloc(neigh).alloc(pos).alloc(vel).alloc(force).alloc(comm);
  for (int i = 0; i < iters; ++i) {
    if (i % 5 == 0) {
      // Neighbor lists overflow as atoms migrate; miniMD's Neighbor::build
      // grows them via realloc (same call stack, larger buffer).
      if (i > 0) b.realloc(neigh, bytes(18.0 + 0.1 * i));
      b.run_kernel(k_rebuild);
    }
    b.run_kernel(k_force);
    b.run_kernel(k_comm);
    b.run_kernel(k_integrate);
  }
  b.free(neigh).free(pos).free(vel).free(force).free(comm);
  return b.build();
}

}  // namespace ecohmem::apps
