#include "ecohmem/apps/apps.hpp"

namespace ecohmem::apps {

using runtime::AccessPattern;
using runtime::KernelAccess;
using runtime::WorkloadBuilder;

namespace {

/// Per-iteration sweep intensities of one kernel over one field group.
struct GroupSweeps {
  double reads = 0.0;        ///< full-array read sweeps
  double writes = 0.0;       ///< full-array write sweeps (memory traffic)
  double store_instr = 0.0;  ///< full-array store-instruction sweeps
};

}  // namespace

/// CloverLeaf3D model: structured Lagrangian-Eulerian hydrodynamics,
/// 93.5% memory bound (Table VI), and the showcase for the Loads+stores
/// heuristic (§V / §VIII-A).
///
/// Field taxonomy:
///   - 6 read-mostly *state* fields (density, energy, pressure, ...):
///     stencil reads with moderate prefetch coverage -> the demand-miss
///     density leader; the Loads-only Advisor fills DRAM with these.
///   - 3 velocity fields: read-heavy, some writes.
///   - 7 *work arrays*: written with 2 full sweeps per iteration but read
///     sparsely — nearly invisible to a loads-only heuristic, yet they
///     dominate PMem write-bandwidth pain. The ALL_STORES channel makes
///     them rank first, and with Loads+stores the Advisor fits
///     work + state + comm into 12 GB — the extra ~19% of §VIII-A.
///   - 2 flux fields + comm buffers.
runtime::Workload make_cloverleaf3d(const AppOptions& options) {
  const int iters = options.iterations > 0 ? options.iterations : 30;
  const double s = options.scale;
  const auto bytes = [s](double gib) { return static_cast<Bytes>(gib * s * 1024 * 1024 * 1024); };
  const double gib = s * 1024.0 * 1024.0 * 1024.0;

  WorkloadBuilder b("cloverleaf3d");
  b.ranks(24).threads(1).mlp(12.0).static_footprint(bytes(0.6));

  const auto exe = b.add_module("clover_leaf", 5ull * 1024 * 1024, 64ull * 1024 * 1024);

  const char* state_names[6] = {"density", "energy", "pressure", "soundspeed", "viscosity",
                                "volume"};
  std::vector<std::size_t> state;
  for (int i = 0; i < 6; ++i) {
    const auto site = b.add_site(exe, std::string("build_field::") + state_names[i],
                                 "src/build_field.f90", static_cast<std::uint32_t>(34 + i));
    state.push_back(b.add_object(site, bytes(1.0), AccessPattern::kStrided, 0.1, 0.5, 0.35));
  }
  std::vector<std::size_t> vel;
  for (int i = 0; i < 3; ++i) {
    const auto site = b.add_site(exe, "build_field::vel" + std::to_string(i),
                                 "src/build_field.f90", static_cast<std::uint32_t>(58 + i));
    vel.push_back(b.add_object(site, bytes(2.4), AccessPattern::kStrided, 0.08, 0.62, 0.75));
  }
  std::vector<std::size_t> flux;
  for (int i = 0; i < 2; ++i) {
    const auto site = b.add_site(exe, "build_field::flux" + std::to_string(i),
                                 "src/build_field.f90", static_cast<std::uint32_t>(77 + i));
    flux.push_back(b.add_object(site, bytes(2.1), AccessPattern::kSequential, 0.03, 0.58, 0.85));
  }
  std::vector<std::size_t> work;
  for (int i = 0; i < 7; ++i) {
    const auto site = b.add_site(exe, "build_field::work_array" + std::to_string(i + 1),
                                 "src/build_field.f90", static_cast<std::uint32_t>(96 + i));
    work.push_back(b.add_object(site, bytes(0.75), AccessPattern::kSequential, 0.02, 0.58, 0.9));
  }
  const auto site_comm = b.add_site(exe, "clover_allocate_buffers", "src/clover.f90", 220);
  const auto comm = b.add_object(site_comm, bytes(0.6), AccessPattern::kRandom, 0.3, 0.6, 0.15);
  const auto site_misc = b.add_site(exe, "initialise_chunk::vertex", "src/initialise_chunk.f90",
                                    41);
  const auto misc = b.add_object(site_misc, bytes(3.0), AccessPattern::kSequential, 0.0, 0.6,
                                 0.85);

  // Helper: expand group sweeps into per-object accesses.
  auto expand = [&b](const std::vector<std::size_t>& objs, double obj_gib, double scale_gib,
                     GroupSweeps sw, std::vector<KernelAccess>& out) {
    const double obj_bytes = obj_gib * scale_gib;
    const double obj_lines = obj_bytes / 64.0;
    for (const auto o : objs) {
      KernelAccess a;
      a.object = o;
      a.llc_loads = sw.reads * obj_lines;
      a.llc_stores = sw.writes * obj_lines;
      a.store_instructions = sw.store_instr * obj_bytes / 8.0;
      a.footprint = obj_bytes;
      out.push_back(a);
    }
  };

  struct KernelDef {
    const char* name;
    double instructions;
    double compute_cycles;
    GroupSweeps st, ve, fl, wo;
    double comm_loads;  ///< demand-ish random loads on comm buffers
    double comm_stores;
  };
  // Per-iteration totals: state R4.1/W0.2/SI0.5, vel R3.0/W0.5/SI0.5,
  // flux R1.0/W0.4/SI0.4, work R0.8/W2.0/SI2.0.
  const std::vector<KernelDef> defs = {
      {"ideal_gas_kernel", 1.2e9, 7.0e7, {1.0, 0.05, 0.1}, {}, {}, {}, 0, 0},
      {"viscosity_kernel", 1.5e9, 9.0e7, {0.75, 0, 0}, {0.5, 0, 0}, {}, {}, 0, 0},
      {"calc_dt_kernel", 1.0e9, 6.0e7, {0.75, 0, 0}, {0.25, 0, 0}, {}, {}, 0, 0},
      {"pdv_kernel", 1.6e9, 8.0e7, {0.75, 0.05, 0.1}, {0.25, 0, 0}, {}, {0.1, 0.3, 0.3}, 0, 0},
      {"accelerate_kernel", 1.2e9, 6.0e7, {0.25, 0, 0}, {0.5, 0.15, 0.15}, {}, {}, 0, 0},
      {"flux_calc_kernel", 1.0e9, 5.0e7, {}, {0.5, 0, 0}, {0.3, 0.25, 0.25}, {}, 0, 0},
      {"advec_cell_kernel", 2.2e9, 1.1e8, {0.25, 0.05, 0.15}, {}, {0.4, 0.1, 0.1},
       {0.3, 1.3, 1.3}, 0, 0},
      {"advec_mom_kernel", 2.0e9, 1.0e8, {}, {0.75, 0.2, 0.2}, {0.3, 0.05, 0.05},
       {0.3, 0.9, 0.9}, 0, 0},
      {"reset_field_kernel", 8.0e8, 4.0e7, {0.25, 0.05, 0.15}, {0.25, 0.15, 0.15}, {},
       {0.1, 0.1, 0.1}, 0, 0},
      {"update_halo_kernel", 4.0e8, 3.0e7, {0.1, 0, 0}, {}, {}, {}, 6.0e6, 3.0e6},
      {"clover_pack_message_top", 2.0e8, 2.0e7, {0.05, 0, 0}, {}, {}, {}, 5.0e6, 2.5e6},
      {"clover_pack_message_front", 2.0e8, 2.0e7, {}, {0.05, 0, 0}, {}, {}, 5.0e6, 2.5e6},
      {"clover_pack_message_right", 2.0e8, 2.0e7, {}, {}, {}, {0.05, 0, 0}, 5.0e6, 2.5e6},
  };

  std::vector<std::size_t> kernel_ids;
  for (const auto& d : defs) {
    std::vector<KernelAccess> acc;
    if (d.st.reads + d.st.writes + d.st.store_instr > 0) expand(state, 1.0, gib, d.st, acc);
    if (d.ve.reads + d.ve.writes + d.ve.store_instr > 0) expand(vel, 2.4, gib, d.ve, acc);
    if (d.fl.reads + d.fl.writes + d.fl.store_instr > 0) expand(flux, 2.1, gib, d.fl, acc);
    if (d.wo.reads + d.wo.writes + d.wo.store_instr > 0) expand(work, 0.75, gib, d.wo, acc);
    if (d.comm_loads > 0) {
      acc.push_back(KernelAccess{comm, d.comm_loads * s, d.comm_stores * s, 0.6 * gib,
                                 d.comm_stores * s * 8.0});
    }
    kernel_ids.push_back(b.add_kernel(d.name, d.instructions, d.compute_cycles, std::move(acc)));
  }

  // Setup sweep over the (otherwise idle) vertex buffer.
  const auto k_setup = b.add_kernel(
      "initialise_chunk", 4.0e9, 2.0e9,
      {KernelAccess{misc, 3.0 * gib / 64.0, 3.0 * gib / 64.0, 3.0 * gib, 3.0 * gib / 8.0}});

  b.alloc(misc);
  for (const auto o : state) b.alloc(o);
  for (const auto o : vel) b.alloc(o);
  for (const auto o : flux) b.alloc(o);
  for (const auto o : work) b.alloc(o);
  b.alloc(comm);
  b.run_kernel(k_setup);
  for (int i = 0; i < iters; ++i) {
    for (const std::size_t k : kernel_ids) b.run_kernel(k);
  }
  b.free(comm);
  for (const auto o : work) b.free(o);
  for (const auto o : flux) b.free(o);
  for (const auto o : vel) b.free(o);
  for (const auto o : state) b.free(o);
  b.free(misc);
  return b.build();
}

}  // namespace ecohmem::apps
