#include "ecohmem/apps/apps.hpp"

#include <stdexcept>

namespace ecohmem::apps {

runtime::Workload make_app(const std::string& name, const AppOptions& options) {
  if (name == "minife") return make_minife(options);
  if (name == "minimd") return make_minimd(options);
  if (name == "lulesh") return make_lulesh(options);
  if (name == "hpcg") return make_hpcg(options);
  if (name == "cloverleaf3d") return make_cloverleaf3d(options);
  if (name == "lammps") return make_lammps(options);
  if (name == "openfoam") return make_openfoam(options);
  if (name == "phase-shift") return make_phase_shift_app(options);
  if (name == "large-hot") return make_large_hot(options);
  throw std::invalid_argument("unknown application model: " + name);
}

std::vector<std::string> app_names() {
  return {"minife", "minimd",   "lulesh",      "hpcg",      "cloverleaf3d",
          "lammps", "openfoam", "phase-shift", "large-hot"};
}

}  // namespace ecohmem::apps
