#include "ecohmem/apps/apps.hpp"

namespace ecohmem::apps {

using runtime::AccessPattern;
using runtime::KernelAccess;
using runtime::WorkloadBuilder;

/// LAMMPS model (rhodo.scaled): the least memory-bound case (§VIII-C).
///
/// The bulk of each iteration is arithmetic on per-atom tiles that stay
/// cache resident ("most of the working set fits into L2"): kernels touch
/// only small hot footprints, so demand misses are few (Table VI: 29.2%
/// memory bound, 63.5% memory-mode hit ratio).
///
/// The pain point the paper identifies is the MPI communication phase:
/// its buffers are reallocated every exchange *through varying call
/// paths* inside the MPI stack, so each allocation shows up as a distinct
/// low-sample site that the Advisor cannot rank (and whose stack does not
/// match at production time). They fall back to PMem, delaying the
/// latency-critical communication — the <4% slowdown of Table VIII,
/// for the base and bandwidth-aware algorithms alike.
runtime::Workload make_lammps(const AppOptions& options) {
  const int iters = options.iterations > 0 ? options.iterations : 25;
  const double s = options.scale;
  const auto bytes = [s](double gib) { return static_cast<Bytes>(gib * s * 1024 * 1024 * 1024); };
  const double gib = s * 1024.0 * 1024.0 * 1024.0;
  const double lines = gib / 64.0;

  WorkloadBuilder b("lammps");
  b.ranks(12).threads(2).mlp(8.0).static_footprint(bytes(1.0));

  const auto exe = b.add_module("lmp_intel", 48ull * 1024 * 1024, 400ull * 1024 * 1024);
  const auto mpi = b.add_module("libmpi.so.12", 3ull * 1024 * 1024, 24ull * 1024 * 1024);

  const auto site_atoms = b.add_site(exe, "Atom::grow", "src/atom.cpp", 512);
  const auto site_neigh = b.add_site(exe, "Neighbor::build", "src/neighbor.cpp", 1188);
  const auto site_bonded = b.add_site(exe, "Force::bonded_tables", "src/force.cpp", 333);
  const auto site_kspace = b.add_site(exe, "PPPM::grids", "src/pppm.cpp", 702);

  const auto atoms = b.add_object(site_atoms, bytes(9.0), AccessPattern::kStrided, 0.8, 0.75,
                                  0.55);
  const auto neigh = b.add_object(site_neigh, bytes(30.0), AccessPattern::kSequential, 0.1, 0.68,
                                  0.9);
  const auto bonded = b.add_object(site_bonded, bytes(4.0), AccessPattern::kRandom, 0.8, 0.75,
                                   0.2);
  const auto kspace = b.add_object(site_kspace, bytes(6.0), AccessPattern::kStrided, 0.6, 0.7,
                                   0.5);

  // One comm buffer per iteration, each allocated through a different
  // call path (varying depth inside libmpi), so no two allocations share
  // a call stack.
  std::vector<std::size_t> comm;
  comm.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    const auto site = b.add_site(mpi, "Comm::borders_buffer@" + std::to_string(i),
                                 "src/comm.cpp", static_cast<std::uint32_t>(941 + i),
                                 3 + static_cast<std::size_t>(i % 4));
    comm.push_back(
        b.add_object(site, bytes(0.9), AccessPattern::kRandom, 0.15, 0.7, 0.05));
  }

  // Compute kernels: large instruction counts, small hot footprints that
  // stay LLC resident.
  const std::size_t k_pair = b.add_kernel(
      "PairLJCharmmCoulLong::compute", 6.0e10, 2.0e10,
      {KernelAccess{atoms, 2.0 * lines, 1.0 * lines, 1.5 * gib},
       KernelAccess{neigh, 15.0 * lines, 0.0, 30.0 * gib},
       KernelAccess{bonded, 5.0e6 * s, 0.0, 0.2 * gib}});

  const std::size_t k_bond = b.add_kernel(
      "Bond_Angle_Dihedral::compute", 1.5e10, 5.0e9,
      {KernelAccess{atoms, 1.0 * lines, 0.5 * lines, 1.0 * gib},
       KernelAccess{bonded, 4.0e6 * s, 0.0, 0.2 * gib}});

  const std::size_t k_kspace = b.add_kernel(
      "PPPM::compute", 1.8e10, 6.0e9,
      {KernelAccess{kspace, 4.0 * lines, 2.0 * lines, 1.2 * gib},
       KernelAccess{atoms, 1.0 * lines, 0.0, 1.0 * gib}});

  const std::size_t k_rebuild = b.add_kernel(
      "Neighbor::rebuild", 8.0e9, 2.5e9,
      {KernelAccess{neigh, 7.5 * lines, 15.0 * lines, 30.0 * gib},
       KernelAccess{atoms, 8.0e6 * s, 0.0, 1.5 * gib}});

  // Communication phases: latency-critical random access to the
  // per-iteration buffer.
  std::vector<std::size_t> k_comm;
  k_comm.reserve(comm.size());
  for (int i = 0; i < iters; ++i) {
    k_comm.push_back(b.add_kernel(
        "Comm::forward_comm", 2.0e9, 5.0e8,
        {KernelAccess{comm[static_cast<std::size_t>(i)], 1.2e8 * s, 1.0e7 * s, 0.9 * gib},
         KernelAccess{atoms, 0.2 * lines, 0.2 * lines, 0.5 * gib}}));
  }

  b.alloc(atoms).alloc(neigh).alloc(bonded).alloc(kspace);
  for (int i = 0; i < iters; ++i) {
    const auto ci = static_cast<std::size_t>(i);
    b.alloc(comm[ci]);
    b.run_kernel(k_comm[ci]);
    if (i % 5 == 0) b.run_kernel(k_rebuild);
    b.run_kernel(k_pair);
    b.run_kernel(k_bond);
    b.run_kernel(k_kspace);
    b.free(comm[ci]);
  }
  b.free(atoms).free(neigh).free(bonded).free(kspace);
  return b.build();
}

}  // namespace ecohmem::apps
