#include "ecohmem/apps/synthetic.hpp"

#include <string>
#include <vector>

#include "ecohmem/common/rng.hpp"

namespace ecohmem::apps {

using runtime::AccessPattern;
using runtime::KernelAccess;
using runtime::WorkloadBuilder;

runtime::Workload make_synthetic(const SyntheticSpec& spec) {
  Rng rng(spec.seed);
  WorkloadBuilder b("synthetic-" + std::to_string(spec.seed));
  b.ranks(1 + static_cast<int>(rng.next_below(32)))
      .threads(1 + static_cast<int>(rng.next_below(4)))
      .mlp(4.0 + rng.next_double() * 12.0);

  const auto mod = b.add_module("synthetic.x", 8ull << 20, 32ull << 20);

  const auto random_pattern = [&rng] {
    switch (rng.next_below(4)) {
      case 0: return AccessPattern::kSequential;
      case 1: return AccessPattern::kStrided;
      case 2: return AccessPattern::kRandom;
      default: return AccessPattern::kPointerChase;
    }
  };
  const auto random_size = [&rng, &spec] {
    const double t = rng.next_double();
    return spec.min_object +
           static_cast<Bytes>(t * t * static_cast<double>(spec.max_object - spec.min_object));
  };

  std::vector<std::size_t> persistent;
  for (int i = 0; i < spec.persistent_objects; ++i) {
    const auto site = b.add_site(mod, "persistent#" + std::to_string(i), "synthetic.cc",
                                 static_cast<std::uint32_t>(100 + i),
                                 2 + rng.next_below(5));
    persistent.push_back(b.add_object(site, random_size(), random_pattern(),
                                      rng.next_double() * 0.8, 0.3 + rng.next_double() * 0.6));
  }
  std::vector<std::size_t> transient;
  for (int i = 0; i < spec.transient_sites; ++i) {
    const auto site = b.add_site(mod, "transient#" + std::to_string(i), "synthetic.cc",
                                 static_cast<std::uint32_t>(500 + i),
                                 2 + rng.next_below(5));
    transient.push_back(b.add_object(site, random_size(), random_pattern(),
                                     rng.next_double() * 0.8, 0.3 + rng.next_double() * 0.6));
  }

  // Kernels: each touches a random subset of persistent + all transients.
  std::vector<std::size_t> kernels;
  for (int k = 0; k < spec.kernels_per_phase; ++k) {
    std::vector<KernelAccess> acc;
    const auto add_access = [&](std::size_t obj, Bytes size) {
      const double sweeps = rng.next_double() * spec.max_sweeps_per_kernel;
      KernelAccess a;
      a.object = obj;
      a.footprint = static_cast<double>(size) * (0.3 + 0.7 * rng.next_double());
      a.llc_loads = sweeps * a.footprint / 64.0;
      if (rng.next_double() < spec.store_probability) {
        a.llc_stores = rng.next_double() * a.footprint / 64.0;
        a.store_instructions = a.llc_stores * (1.0 + rng.next_double() * 8.0);
      }
      acc.push_back(a);
    };
    for (std::size_t i = 0; i < persistent.size(); ++i) {
      if (rng.next_double() < 0.5) {
        // Re-derive the object's size from the builder-visible state by
        // reusing the spec bounds; footprint is clamped by validation.
        add_access(persistent[i], spec.min_object);
      }
    }
    for (const auto t : transient) add_access(t, spec.min_object);
    kernels.push_back(b.add_kernel("synthetic_kernel_" + std::to_string(k),
                                   1e8 + rng.next_double() * 1e10,
                                   1e7 + rng.next_double() * 5e9, std::move(acc)));
  }

  for (const auto o : persistent) b.alloc(o);
  for (int p = 0; p < spec.phases; ++p) {
    for (const auto o : transient) b.alloc(o);
    for (const auto k : kernels) b.run_kernel(k);
    for (const auto o : transient) b.free(o);
  }
  for (const auto o : persistent) b.free(o);
  return b.build();
}

}  // namespace ecohmem::apps
