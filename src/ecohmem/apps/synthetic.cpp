#include "ecohmem/apps/synthetic.hpp"

#include <algorithm>

#include "ecohmem/apps/apps.hpp"
#include <string>
#include <vector>

#include "ecohmem/common/rng.hpp"

namespace ecohmem::apps {

using runtime::AccessPattern;
using runtime::KernelAccess;
using runtime::WorkloadBuilder;

runtime::Workload make_synthetic(const SyntheticSpec& spec) {
  Rng rng(spec.seed);
  WorkloadBuilder b("synthetic-" + std::to_string(spec.seed));
  b.ranks(1 + static_cast<int>(rng.next_below(32)))
      .threads(1 + static_cast<int>(rng.next_below(4)))
      .mlp(4.0 + rng.next_double() * 12.0);

  const auto mod = b.add_module("synthetic.x", 8ull << 20, 32ull << 20);

  const auto random_pattern = [&rng] {
    switch (rng.next_below(4)) {
      case 0: return AccessPattern::kSequential;
      case 1: return AccessPattern::kStrided;
      case 2: return AccessPattern::kRandom;
      default: return AccessPattern::kPointerChase;
    }
  };
  const auto random_size = [&rng, &spec] {
    const double t = rng.next_double();
    return spec.min_object +
           static_cast<Bytes>(t * t * static_cast<double>(spec.max_object - spec.min_object));
  };

  std::vector<std::size_t> persistent;
  for (int i = 0; i < spec.persistent_objects; ++i) {
    const auto site = b.add_site(mod, "persistent#" + std::to_string(i), "synthetic.cc",
                                 static_cast<std::uint32_t>(100 + i),
                                 2 + rng.next_below(5));
    persistent.push_back(b.add_object(site, random_size(), random_pattern(),
                                      rng.next_double() * 0.8, 0.3 + rng.next_double() * 0.6));
  }
  std::vector<std::size_t> transient;
  for (int i = 0; i < spec.transient_sites; ++i) {
    const auto site = b.add_site(mod, "transient#" + std::to_string(i), "synthetic.cc",
                                 static_cast<std::uint32_t>(500 + i),
                                 2 + rng.next_below(5));
    transient.push_back(b.add_object(site, random_size(), random_pattern(),
                                     rng.next_double() * 0.8, 0.3 + rng.next_double() * 0.6));
  }

  // Kernels: each touches a random subset of persistent + all transients.
  std::vector<std::size_t> kernels;
  for (int k = 0; k < spec.kernels_per_phase; ++k) {
    std::vector<KernelAccess> acc;
    const auto add_access = [&](std::size_t obj, Bytes size) {
      const double sweeps = rng.next_double() * spec.max_sweeps_per_kernel;
      KernelAccess a;
      a.object = obj;
      a.footprint = static_cast<double>(size) * (0.3 + 0.7 * rng.next_double());
      a.llc_loads = sweeps * a.footprint / 64.0;
      if (rng.next_double() < spec.store_probability) {
        a.llc_stores = rng.next_double() * a.footprint / 64.0;
        a.store_instructions = a.llc_stores * (1.0 + rng.next_double() * 8.0);
      }
      acc.push_back(a);
    };
    for (std::size_t i = 0; i < persistent.size(); ++i) {
      if (rng.next_double() < 0.5) {
        // Re-derive the object's size from the builder-visible state by
        // reusing the spec bounds; footprint is clamped by validation.
        add_access(persistent[i], spec.min_object);
      }
    }
    for (const auto t : transient) add_access(t, spec.min_object);
    kernels.push_back(b.add_kernel("synthetic_kernel_" + std::to_string(k),
                                   1e8 + rng.next_double() * 1e10,
                                   1e7 + rng.next_double() * 5e9, std::move(acc)));
  }

  for (const auto o : persistent) b.alloc(o);
  for (int p = 0; p < spec.phases; ++p) {
    for (const auto o : transient) b.alloc(o);
    for (const auto k : kernels) b.run_kernel(k);
    for (const auto o : transient) b.free(o);
  }
  for (const auto o : persistent) b.free(o);
  return b.build();
}

runtime::Workload make_phase_shift(const PhaseShiftSpec& spec) {
  WorkloadBuilder b("phase-shift");
  // Low MLP: the hot sweeps are gather-heavy, so slow-tier latency hits
  // the pipeline nearly at full weight — the tier the hot group lives in
  // dominates the phase's runtime.
  b.ranks(8).threads(3).mlp(4.0);

  const auto mod = b.add_module("phaseshift.x", 4ull << 20, 24ull << 20);

  // The rotating hot candidates: identical size, pattern and knobs, so
  // nothing but *when* they are touched distinguishes them.
  std::vector<std::size_t> groups;
  for (int g = 0; g < spec.groups; ++g) {
    const auto site = b.add_site(mod, "Grid::field#" + std::to_string(g), "src/grid.cpp",
                                 static_cast<std::uint32_t>(200 + g));
    groups.push_back(b.add_object(site, spec.group_bytes, AccessPattern::kStrided,
                                  0.05, 0.55, 0.15));
  }
  const auto site_bg = b.add_site(mod, "Mesh::topology", "src/mesh.cpp", 77);
  const auto background = b.add_object(site_bg, spec.background_bytes,
                                       AccessPattern::kSequential, 0.3, 0.75, 0.8);

  // One sweep kernel per group: streams that group hard, brushes the
  // others and the topology. Per-phase miss density is concentrated on
  // the current hot group; the time average is flat across groups.
  const double line = 64.0;
  std::vector<std::size_t> sweep;
  for (int g = 0; g < spec.groups; ++g) {
    std::vector<KernelAccess> acc;
    for (int o = 0; o < spec.groups; ++o) {
      const double sweeps = (o == g) ? spec.hot_sweeps : spec.cold_sweeps;
      KernelAccess a;
      a.object = groups[static_cast<std::size_t>(o)];
      a.footprint = static_cast<double>(spec.group_bytes) * std::min(1.0, sweeps);
      a.llc_loads = sweeps * static_cast<double>(spec.group_bytes) / line;
      a.llc_stores = 0.25 * a.llc_loads;
      a.store_instructions = a.llc_stores * 4.0;
      acc.push_back(a);
    }
    KernelAccess bg;
    bg.object = background;
    bg.footprint = 0.1 * static_cast<double>(spec.background_bytes);
    bg.llc_loads = bg.footprint / line * 0.3;
    acc.push_back(bg);
    sweep.push_back(b.add_kernel("phase_sweep_" + std::to_string(g), 6.0e9, 1.5e9,
                                 std::move(acc)));
  }

  b.alloc(background);
  for (const auto g : groups) b.alloc(g);
  for (int p = 0; p < spec.phases; ++p) {
    const std::size_t hot = sweep[static_cast<std::size_t>(p % spec.groups)];
    for (int k = 0; k < spec.kernels_per_phase; ++k) b.run_kernel(hot);
  }
  for (const auto g : groups) b.free(g);
  b.free(background);
  return b.build();
}

runtime::Workload make_phase_shift_app(const AppOptions& options) {
  PhaseShiftSpec spec;
  if (options.iterations > 0) spec.phases = options.iterations;
  spec.group_bytes = static_cast<Bytes>(static_cast<double>(spec.group_bytes) * options.scale);
  spec.background_bytes =
      static_cast<Bytes>(static_cast<double>(spec.background_bytes) * options.scale);
  return make_phase_shift(spec);
}

}  // namespace ecohmem::apps
