#include "ecohmem/apps/apps.hpp"

namespace ecohmem::apps {

using runtime::AccessPattern;
using runtime::KernelAccess;
using runtime::WorkloadBuilder;

/// MiniFE model: conjugate gradient over an unstructured FE matrix.
///
/// Structure: a huge streamed CSR matrix (values + column indices) and a
/// handful of solver vectors. The matvec gathers the direction vector `p`
/// through the column indices — a latency-critical random access pattern
/// that dominates the stall profile. The streamed matrix is prefetch-
/// friendly (bandwidth-bound, few demand misses), so its miss *density*
/// is far below the gather vector's: exactly the situation where a small
/// DRAM budget covers most of the pain, matching the paper's observation
/// that MiniFE keeps its ~2.2x speedup even with a 4 GB DRAM limit.
///
/// Memory-mode pathology: the gather sprays the 24 GB footprint through
/// the direct-mapped DRAM cache, giving the low 39.9% hit ratio of
/// Table VI.
runtime::Workload make_minife(const AppOptions& options) {
  const int iters = options.iterations > 0 ? options.iterations : 60;
  const double s = options.scale;
  const auto bytes = [s](double gib) { return static_cast<Bytes>(gib * s * 1024 * 1024 * 1024); };

  WorkloadBuilder b("minife");
  b.ranks(12).threads(2).mlp(9.0).static_footprint(bytes(0.8));

  const auto exe = b.add_module("miniFE.x", 6ull * 1024 * 1024, 80ull * 1024 * 1024);
  const auto mpi = b.add_module("libmpi.so.12", 3ull * 1024 * 1024, 24ull * 1024 * 1024);
  (void)mpi;

  const auto site_vals = b.add_site(exe, "CSRMatrix::values", "src/CSRMatrix.hpp", 88);
  const auto site_cols = b.add_site(exe, "CSRMatrix::cols", "src/CSRMatrix.hpp", 104);
  const auto site_x = b.add_site(exe, "Vector::x", "src/Vector.hpp", 41);
  const auto site_p = b.add_site(exe, "Vector::p", "src/Vector.hpp", 41, 4);
  const auto site_r = b.add_site(exe, "Vector::r", "src/Vector.hpp", 41, 5);
  const auto site_ap = b.add_site(exe, "Vector::Ap", "src/Vector.hpp", 41, 6);
  const auto site_setup = b.add_site(exe, "generate_matrix_structure", "src/generate.hpp", 212);

  // Objects (sizes sum to ~23.9 GB, the Table V high-water mark x 12 ranks).
  const auto a_vals = b.add_object(site_vals, bytes(12.0), AccessPattern::kSequential,
                                   /*llc_friendliness=*/0.0, /*dram_locality=*/0.34,
                                   /*prefetch=*/0.92);
  const auto a_cols = b.add_object(site_cols, bytes(6.0), AccessPattern::kSequential, 0.0, 0.34,
                                   0.92);
  const auto x = b.add_object(site_x, bytes(1.2), AccessPattern::kSequential, 0.1, 0.5, 0.75);
  const auto p = b.add_object(site_p, bytes(1.2), AccessPattern::kRandom, 0.25, 0.3, 0.05);
  const auto r = b.add_object(site_r, bytes(1.2), AccessPattern::kSequential, 0.1, 0.5, 0.75);
  const auto ap = b.add_object(site_ap, bytes(1.2), AccessPattern::kSequential, 0.1, 0.5, 0.75);
  const auto setup = b.add_object(site_setup, bytes(1.1), AccessPattern::kSequential, 0.0, 0.4,
                                  0.7);

  const double gib = s * 1024.0 * 1024.0 * 1024.0;
  const double lines = gib / 64.0;

  // Per-iteration LLC request counts (node aggregates).
  const std::size_t k_setup = b.add_kernel(
      "generate_matrix", /*instructions=*/3.0e9, /*compute_cycles=*/1.2e9,
      {KernelAccess{setup, 1.1 * lines, 0.6 * lines, 1.1 * gib},
       KernelAccess{a_vals, 6.0 * lines, 12.0 * lines, 12.0 * gib},
       KernelAccess{a_cols, 3.0 * lines, 6.0 * lines, 6.0 * gib}});

  const std::size_t k_matvec = b.add_kernel(
      "matvec_std::operator()", 4.0e9, 1.1e9,
      {KernelAccess{a_vals, 12.0 * lines, 0.0, 12.0 * gib},
       KernelAccess{a_cols, 6.0 * lines, 0.0, 6.0 * gib},
       KernelAccess{p, 1.8e8 * s, 0.0, 1.2 * gib},
       KernelAccess{ap, 0.3 * lines, 1.2 * lines, 1.2 * gib}});

  const std::size_t k_dot = b.add_kernel(
      "dot_kernel", 4.0e8, 8.0e6,
      {KernelAccess{r, 1.2 * lines, 0.0, 1.2 * gib},
       KernelAccess{ap, 1.2 * lines, 0.0, 1.2 * gib}});

  const std::size_t k_axpy = b.add_kernel(
      "waxpby_kernel", 6.0e8, 1.0e7,
      {KernelAccess{x, 1.2 * lines, 1.2 * lines, 1.2 * gib},
       KernelAccess{p, 1.2 * lines, 1.2 * lines, 1.2 * gib},
       KernelAccess{r, 1.2 * lines, 1.2 * lines, 1.2 * gib}});

  b.alloc(setup).alloc(a_vals).alloc(a_cols);
  b.run_kernel(k_setup);
  b.free(setup);
  b.alloc(x).alloc(p).alloc(r).alloc(ap);
  for (int i = 0; i < iters; ++i) {
    b.run_kernel(k_matvec);
    b.run_kernel(k_dot);
    b.run_kernel(k_axpy);
  }
  b.free(x).free(p).free(r).free(ap).free(a_vals).free(a_cols);
  return b.build();
}

}  // namespace ecohmem::apps
