#include "ecohmem/apps/apps.hpp"

namespace ecohmem::apps {

using runtime::AccessPattern;
using runtime::KernelAccess;
using runtime::WorkloadBuilder;

/// HPCG model: multigrid-preconditioned CG.
///
/// Four grid levels; each level owns a streamed matrix and gather-heavy
/// SYMGS sweeps (symmetric Gauss-Seidel has loop-carried dependencies, so
/// its misses are prefetch-hostile and latency-critical). The coarse-level
/// matrices and the solver vectors are small enough that even a 4 GB DRAM
/// budget covers most demand misses — reproducing the paper's "significant
/// performance improvement even when reducing our DRAM limit to 4 GB"
/// alongside MiniFE. Strongly memory bound (80.5%), mediocre memory-mode
/// hit ratio (54.4%).
runtime::Workload make_hpcg(const AppOptions& options) {
  const int iters = options.iterations > 0 ? options.iterations : 50;
  const double s = options.scale;
  const auto bytes = [s](double gib) { return static_cast<Bytes>(gib * s * 1024 * 1024 * 1024); };
  const double gib = s * 1024.0 * 1024.0 * 1024.0;
  const double lines = gib / 64.0;

  WorkloadBuilder b("hpcg");
  b.ranks(6).threads(4).mlp(8.0).static_footprint(bytes(0.7));

  const auto exe = b.add_module("xhpcg", 4ull * 1024 * 1024, 48ull * 1024 * 1024);

  const auto site_a0 = b.add_site(exe, "GenerateProblem::A", "src/GenerateProblem.cpp", 153);
  const auto site_a1 = b.add_site(exe, "GenerateCoarseProblem::Ac1", "src/GenerateCoarseProblem.cpp", 70);
  const auto site_a2 = b.add_site(exe, "GenerateCoarseProblem::Ac2", "src/GenerateCoarseProblem.cpp", 70, 4);
  const auto site_a3 = b.add_site(exe, "GenerateCoarseProblem::Ac3", "src/GenerateCoarseProblem.cpp", 70, 5);
  std::vector<std::size_t> site_vec;
  for (int i = 0; i < 3; ++i) {
    site_vec.push_back(b.add_site(exe, "InitializeVector::values#" + std::to_string(i),
                                  "src/Vector.hpp", static_cast<std::uint32_t>(55 + i)));
  }
  const auto site_aux = b.add_site(exe, "SetupHalo::buffers", "src/SetupHalo.cpp", 92);

  // Matrices: ~30 GB total; vectors ~5.6 GB; halo buffers small.
  const auto a0 = b.add_object(site_a0, bytes(26.0), AccessPattern::kSequential, 0.0, 0.62, 0.93);
  const auto a1 = b.add_object(site_a1, bytes(3.2), AccessPattern::kSequential, 0.05, 0.5, 0.85);
  const auto a2 = b.add_object(site_a2, bytes(0.5), AccessPattern::kSequential, 0.1, 0.4, 0.8);
  const auto a3 = b.add_object(site_a3, bytes(0.1), AccessPattern::kSequential, 0.2, 0.5, 0.8);
  std::vector<std::size_t> vecs;
  for (std::size_t i = 0; i < 3; ++i) {
    vecs.push_back(
        b.add_object(site_vec[i], bytes(1.9), AccessPattern::kRandom, 0.25, 0.6, 0.08));
  }
  const auto halo = b.add_object(site_aux, bytes(0.4), AccessPattern::kStrided, 0.3, 0.5, 0.3);

  const std::size_t k_setup = b.add_kernel(
      "GenerateProblem", 5.0e9, 2.0e9,
      {KernelAccess{a0, 13.0 * lines, 26.0 * lines, 26.0 * gib},
       KernelAccess{a1, 1.6 * lines, 3.2 * lines, 3.2 * gib},
       KernelAccess{a2, 0.25 * lines, 0.5 * lines, 0.5 * gib},
       KernelAccess{a3, 0.05 * lines, 0.1 * lines, 0.1 * gib}});

  const std::size_t k_spmv = b.add_kernel(
      "ComputeSPMV", 3.5e9, 5.0e7,
      {KernelAccess{a0, 26.0 * lines, 0.0, 26.0 * gib},
       KernelAccess{vecs[0], 1.5e7 * s, 0.2 * lines, 1.9 * gib},
       KernelAccess{vecs[1], 1.5e7 * s, 0.2 * lines, 1.9 * gib},
       KernelAccess{vecs[2], 0.5e7 * s, 0.1 * lines, 1.9 * gib}});

  // SYMGS: forward+backward sweeps over all levels; latency bound.
  const std::size_t k_symgs = b.add_kernel(
      "ComputeSYMGS", 5.0e9, 8.0e7,
      {KernelAccess{a0, 2.0 * 26.0 * lines, 0.0, 26.0 * gib},
       KernelAccess{a1, 2.0 * 3.2 * lines, 0.0, 3.2 * gib},
       KernelAccess{a2, 2.0 * 0.5 * lines, 0.0, 0.5 * gib},
       KernelAccess{a3, 2.0 * 0.1 * lines, 0.0, 0.1 * gib},
       KernelAccess{vecs[0], 5.5e7 * s, 0.5 * lines, 1.9 * gib},
       KernelAccess{vecs[1], 5.0e7 * s, 0.5 * lines, 1.9 * gib},
       KernelAccess{vecs[2], 2.0e7 * s, 0.5 * lines, 1.9 * gib}});

  const std::size_t k_dot_axpy = b.add_kernel(
      "ComputeDotProduct_WAXPBY", 8.0e8, 2.0e7,
      {KernelAccess{vecs[0], 1.4 * lines, 0.7 * lines, 1.9 * gib},
       KernelAccess{vecs[1], 1.4 * lines, 0.7 * lines, 1.9 * gib},
       KernelAccess{vecs[2], 1.2 * lines, 0.6 * lines, 1.9 * gib}});

  const std::size_t k_halo = b.add_kernel(
      "ExchangeHalo", 1.0e8, 1.0e7,
      {KernelAccess{halo, 0.8 * lines, 0.4 * lines, 0.4 * gib}});

  b.alloc(a0).alloc(a1).alloc(a2).alloc(a3);
  b.run_kernel(k_setup);
  for (const auto v : vecs) b.alloc(v);
  b.alloc(halo);
  for (int i = 0; i < iters; ++i) {
    b.run_kernel(k_halo);
    b.run_kernel(k_spmv);
    b.run_kernel(k_symgs);
    b.run_kernel(k_dot_axpy);
  }
  for (const auto v : vecs) b.free(v);
  b.free(halo).free(a0).free(a1).free(a2).free(a3);
  return b.build();
}

}  // namespace ecohmem::apps
