#include "ecohmem/apps/apps.hpp"

namespace ecohmem::apps {

using runtime::AccessPattern;
using runtime::KernelAccess;
using runtime::WorkloadBuilder;

/// Adversarial workload for the density heuristic (docs/learned.md).
///
/// Two huge halo grids carry most of the LLC miss traffic, but a pack of
/// small scratch buffers is touched slightly *denser per byte*. Greedy
/// density ranking therefore fills DRAM with the scratch pack first
/// (5.25 GB), after which the 7 GB grid no longer fits the 12 GB budget
/// and the single hottest object in the program lands on PMem. A ranker
/// that has learned from memsim outcomes that absolute miss volume wins
/// over per-byte density places both grids first and strictly beats
/// greedy — the bench_learned_placement gate.
///
/// Shape: ~16.75 GB heap high water (Table V ballpark), loads-dominant,
/// low MLP so slow-tier latency lands at nearly full weight.
runtime::Workload make_large_hot(const AppOptions& options) {
  const int iters = options.iterations > 0 ? options.iterations : 16;
  const double s = options.scale;
  const auto bytes = [s](double gib) { return static_cast<Bytes>(gib * s * 1024 * 1024 * 1024); };

  WorkloadBuilder b("large-hot");
  b.ranks(8).threads(2).mlp(4.5).static_footprint(bytes(0.25));

  const auto exe = b.add_module("largehot.x", 5ull * 1024 * 1024, 28ull * 1024 * 1024);

  // The huge hot pair: 5 sweeps per iteration each.
  const auto site_cells = b.add_site(exe, "HaloGrid::cells", "src/halo_grid.cpp", 121);
  const auto site_flux = b.add_site(exe, "HaloGrid::fluxes", "src/halo_grid.cpp", 148);
  const auto cells = b.add_object(site_cells, bytes(7.0), AccessPattern::kStrided,
                                  /*llc_friendliness=*/0.05, /*dram_locality=*/0.55,
                                  /*prefetch=*/0.15);
  const auto flux = b.add_object(site_flux, bytes(3.0), AccessPattern::kStrided, 0.05, 0.55,
                                 0.15);

  // The scratch pack: 6 sweeps per iteration — denser per byte than the
  // grids, tiny in absolute traffic. Seven of them so the pack (5.25 GB)
  // crowds the 7 GB grid out of a 12 GB budget under greedy.
  constexpr int kScratch = 7;
  std::vector<std::size_t> scratch;
  for (int i = 0; i < kScratch; ++i) {
    const auto site = b.add_site(exe, "Scratch::buf#" + std::to_string(i),
                                 "src/scratch.cpp", static_cast<std::uint32_t>(40 + i));
    scratch.push_back(b.add_object(site, bytes(0.75), AccessPattern::kRandom, 0.05, 0.45,
                                   0.05));
  }

  // Cold topology: background noise both policies should leave on PMem.
  const auto site_topo = b.add_site(exe, "Mesh::topology", "src/mesh.cpp", 63);
  const auto topo = b.add_object(site_topo, bytes(1.5), AccessPattern::kSequential, 0.4,
                                 0.75, 0.85);

  const double gib = s * 1024.0 * 1024.0 * 1024.0;
  const double line = 64.0;

  std::vector<KernelAccess> acc;
  acc.push_back(KernelAccess{cells, 5.0 * 7.0 * gib / line, 0.5 * 7.0 * gib / line, 7.0 * gib});
  acc.push_back(KernelAccess{flux, 5.0 * 3.0 * gib / line, 0.5 * 3.0 * gib / line, 3.0 * gib});
  for (const auto o : scratch) {
    acc.push_back(KernelAccess{o, 6.0 * 0.75 * gib / line, 0.6 * 0.75 * gib / line,
                               0.75 * gib});
  }
  acc.push_back(KernelAccess{topo, 0.1 * 1.5 * gib / line, 0.0, 0.15 * gib});
  const std::size_t k_sweep =
      b.add_kernel("halo_exchange_sweep", 9.0e9, 2.2e9, std::move(acc));

  b.alloc(topo).alloc(cells).alloc(flux);
  for (const auto o : scratch) b.alloc(o);
  for (int i = 0; i < iters; ++i) b.run_kernel(k_sweep);
  for (const auto o : scratch) b.free(o);
  b.free(flux).free(cells).free(topo);
  return b.build();
}

}  // namespace ecohmem::apps
