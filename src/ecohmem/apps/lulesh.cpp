#include "ecohmem/apps/apps.hpp"

namespace ecohmem::apps {

using runtime::AccessPattern;
using runtime::KernelAccess;
using runtime::WorkloadBuilder;

/// LULESH model: Lagrangian shock hydrodynamics with the recurring-phase
/// structure analyzed in §VII-A (Figs. 3-5, Tables II/III).
///
/// Per phase (one per main-loop iteration here):
///   1. a long low-bandwidth stretch where nodal arrays are accessed with
///      latency-critical gathers,
///   2. a high-bandwidth region at whose start a set of short-lived
///      streaming temporaries is allocated (Fig. 3: "most of the large
///      allocations occur at the start of the phase"); the temporaries
///      are freed when the region ends.
///
/// Object taxonomy against Table IV:
///   - persistent nodal/element arrays: 1 allocation during the
///     (quiet) initialization -> *Fitting* when in DRAM;
///   - a read-only gather scratch reallocated every phase in the
///     low-bandwidth stretch -> *Streaming-D* when in DRAM;
///   - the high-bandwidth temporaries: one allocation per phase
///     (> T_ALLOC), allocated while bandwidth is high, prefetch-friendly
///     streams whose demand-miss *density* is unremarkable -> the base
///     algorithm leaves them in PMem, where they pay loaded PMem latency
///     and bandwidth; they are the *Thrashing* set Algorithm 1 rescues.
runtime::Workload make_lulesh(const AppOptions& options) {
  const int phases = options.iterations > 0 ? options.iterations : 20;
  const double s = options.scale;
  const auto bytes = [s](double gib) { return static_cast<Bytes>(gib * s * 1024 * 1024 * 1024); };
  const double gib = s * 1024.0 * 1024.0 * 1024.0;
  const double lines = gib / 64.0;

  WorkloadBuilder b("lulesh");
  b.ranks(8).threads(3).mlp(9.0).static_footprint(bytes(0.9));

  const auto exe = b.add_module("lulesh2.0", 7ull * 1024 * 1024, 90ull * 1024 * 1024);

  // Persistent arrays: 4 hot nodal sites (random gathers) + 4 warm
  // element sites (strided) + 10 cold element streams (the bulk of the
  // 85 GB footprint).
  std::vector<std::size_t> nodal;
  for (int i = 0; i < 4; ++i) {
    const auto site = b.add_site(exe, "AllocateNodalPersistent#" + std::to_string(i),
                                 "lulesh.cc", static_cast<std::uint32_t>(190 + i));
    nodal.push_back(
        b.add_object(site, bytes(1.2), AccessPattern::kRandom, 0.35, 0.7, 0.05));
  }
  std::vector<std::size_t> warm;
  for (int i = 0; i < 4; ++i) {
    const auto site = b.add_site(exe, "AllocateElemPersistent#" + std::to_string(i),
                                 "lulesh.cc", static_cast<std::uint32_t>(230 + i));
    warm.push_back(
        b.add_object(site, bytes(1.5), AccessPattern::kStrided, 0.25, 0.7, 0.3));
  }
  std::vector<std::size_t> cold;
  for (int i = 0; i < 10; ++i) {
    const auto site = b.add_site(exe, "AllocateElemStream#" + std::to_string(i),
                                 "lulesh.cc", static_cast<std::uint32_t>(280 + i));
    cold.push_back(
        b.add_object(site, bytes(6.3), AccessPattern::kSequential, 0.0, 0.75, 0.9));
  }

  // Streaming-D candidate: read-only scratch, reallocated every phase in
  // the low-bandwidth stretch; dense enough for the base algorithm to
  // put it in DRAM.
  const auto site_idx = b.add_site(exe, "CalcElemShape::scratch", "lulesh.cc", 612);
  const auto idx_scratch =
      b.add_object(site_idx, bytes(0.75), AccessPattern::kStrided, 0.3, 0.6, 0.3);

  // The Thrashing set: 12 short-lived streaming temporaries.
  std::vector<std::size_t> temps;
  for (int i = 0; i < 12; ++i) {
    const auto site = b.add_site(exe, "AllocateGradients#" + std::to_string(i),
                                 "lulesh.cc", static_cast<std::uint32_t>(1480 + i));
    temps.push_back(
        b.add_object(site, bytes(0.9), AccessPattern::kSequential, 0.05, 0.8, 0.97));
  }

  // ---- Kernels.
  // Initialization: compute/IO only, so persistent allocations sit in a
  // quiet bandwidth region (their Fitting signature).
  const auto k_init = b.add_kernel("InitMeshDecomp", 8.0e9, 4.0e9, {});

  // Low-bandwidth stretch: nodal gathers + warm element access.
  std::vector<KernelAccess> low_acc;
  for (const auto o : nodal) low_acc.push_back(KernelAccess{o, 1.4e7 * s, 0.2 * lines, 1.2 * gib, 1.0e8 * s});
  for (const auto o : warm) low_acc.push_back(KernelAccess{o, 0.8 * lines, 0.2 * lines, 1.5 * gib, 1.5 * gib / 8.0});
  low_acc.push_back(KernelAccess{idx_scratch, 0.7 * lines, 0.0, 0.75 * gib});
  const auto k_low = b.add_kernel("LagrangeNodal", 1.6e10, 5.0e9, low_acc);

  // High-bandwidth region part 1: element streams only (bandwidth ramps
  // up before the temporaries exist, as in Fig. 3).
  std::vector<KernelAccess> hi1_acc;
  for (const auto o : cold) hi1_acc.push_back(KernelAccess{o, 1.8 * lines, 0.2 * lines, 6.3 * gib});
  const auto k_hi1 = b.add_kernel("CalcKinematicsForElems", 6.0e9, 1.2e9, hi1_acc);

  // High-bandwidth region part 2: temporaries dominate.
  std::vector<KernelAccess> hi2_acc;
  for (const auto o : temps) hi2_acc.push_back(KernelAccess{o, 3.5 * lines, 0.8 * lines, 0.9 * gib});
  for (const auto o : cold) hi2_acc.push_back(KernelAccess{o, 0.2 * lines, 0.05 * lines, 6.3 * gib});
  const auto k_hi2 = b.add_kernel("CalcQForElems", 8.0e9, 1.5e9, hi2_acc);

  std::vector<KernelAccess> hi3_acc;
  for (const auto o : temps) hi3_acc.push_back(KernelAccess{o, 4.5 * lines, 0.0, 0.9 * gib});
  for (const auto o : nodal) hi3_acc.push_back(KernelAccess{o, 0.2e7 * s, 0.3 * lines, 1.2 * gib});
  const auto k_hi3 = b.add_kernel("CalcHourglassControlForElems", 7.0e9, 1.4e9, hi3_acc);

  // Tail of the phase: small working set, bandwidth dies down.
  std::vector<KernelAccess> tail_acc;
  for (const auto o : warm) tail_acc.push_back(KernelAccess{o, 0.3 * lines, 0.2 * lines, 1.5 * gib});
  const auto k_tail = b.add_kernel("UpdateVolumesForElems", 3.0e9, 1.0e9, tail_acc);

  // ---- Steps.
  for (const auto o : nodal) b.alloc(o);
  for (const auto o : warm) b.alloc(o);
  for (const auto o : cold) b.alloc(o);
  b.run_kernel(k_init);
  for (int p = 0; p < phases; ++p) {
    b.alloc(idx_scratch);
    b.run_kernel(k_low);
    b.free(idx_scratch);
    b.run_kernel(k_hi1);
    for (const auto o : temps) b.alloc(o);  // allocated as bandwidth peaks
    b.run_kernel(k_hi2);
    b.run_kernel(k_hi3);
    for (const auto o : temps) b.free(o);
    b.run_kernel(k_tail);
  }
  for (const auto o : nodal) b.free(o);
  for (const auto o : warm) b.free(o);
  for (const auto o : cold) b.free(o);
  return b.build();
}

}  // namespace ecohmem::apps
