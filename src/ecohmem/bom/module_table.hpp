#pragma once

/// \file module_table.hpp
/// Binary objects (executable + shared libraries) and their load bases.
///
/// On a real system this information comes from /proc/self/maps during
/// process initialization (the paper: "during the process initialization
/// the library obtains the base address where each shared-library is
/// loaded"). Here modules are registered by the workload models; load
/// bases can be randomized per run to emulate ASLR, which is exactly the
/// mechanism that breaks absolute-address matching and motivates BOM.

#include <optional>
#include <string>
#include <vector>

#include "ecohmem/bom/frame.hpp"
#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/rng.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::bom {

/// One loaded binary object.
struct Module {
  std::string name;          ///< e.g. "lulesh2.0" or "libfoam.so"
  Bytes text_size = 0;       ///< size of the mapped text segment
  std::uint64_t base = 0;    ///< load base for the current run
  Bytes debug_info_size = 0; ///< size of the DWARF info (HR format loads it)
};

class ModuleTable {
 public:
  /// Registers a module; bases are assigned later by `assign_bases`.
  ModuleId add_module(std::string name, Bytes text_size, Bytes debug_info_size = 0);

  /// Assigns load bases. With `aslr`, bases are randomized (2 MiB aligned)
  /// using `rng`; otherwise deterministic fixed bases are used.
  void assign_bases(bool aslr, Rng& rng);

  /// Sets one module's base to a real (host-observed) load address; used
  /// by the /proc/self/maps path where the kernel, not the simulator,
  /// chose the layout.
  void set_host_base(ModuleId id, std::uint64_t base) { modules_.at(id).base = base; }

  [[nodiscard]] std::size_t size() const { return modules_.size(); }
  [[nodiscard]] const Module& module(ModuleId id) const { return modules_.at(id); }
  [[nodiscard]] Expected<ModuleId> find(std::string_view name) const;

  /// Absolute runtime address of a frame in the current run.
  [[nodiscard]] std::uint64_t absolute_address(const Frame& frame) const;

  /// Maps an absolute address back to (module, offset); nullopt if the
  /// address is not inside any module's text segment.
  [[nodiscard]] std::optional<Frame> resolve(std::uint64_t absolute) const;

  /// Total DWARF bytes that HR-format matching must keep resident
  /// (per-process; §VIII-D charges this against the DRAM budget).
  [[nodiscard]] Bytes total_debug_info() const;

  [[nodiscard]] const std::vector<Module>& modules() const { return modules_; }

 private:
  std::vector<Module> modules_;
};

}  // namespace ecohmem::bom
