#include "ecohmem/bom/module_table.hpp"

namespace ecohmem::bom {

ModuleId ModuleTable::add_module(std::string name, Bytes text_size, Bytes debug_info_size) {
  Module m;
  m.name = std::move(name);
  m.text_size = text_size;
  m.debug_info_size = debug_info_size;
  m.base = 0;
  modules_.push_back(std::move(m));
  return static_cast<ModuleId>(modules_.size() - 1);
}

void ModuleTable::assign_bases(bool aslr, Rng& rng) {
  // Lay modules out without overlap; ASLR shuffles the gaps like the
  // kernel's mmap randomization would.
  std::uint64_t cursor = 0x400000;  // traditional ET_EXEC base
  constexpr std::uint64_t kAlign = 2ull * 1024 * 1024;
  for (auto& m : modules_) {
    std::uint64_t gap = kAlign;
    if (aslr) {
      gap += (rng.next_below(1ull << 28)) & ~(kAlign - 1);
    }
    cursor += gap;
    m.base = cursor;
    cursor += (m.text_size + kAlign - 1) & ~(kAlign - 1);
  }
}

Expected<ModuleId> ModuleTable::find(std::string_view name) const {
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    if (modules_[i].name == name) return static_cast<ModuleId>(i);
  }
  return unexpected("unknown module: '" + std::string(name) + "'");
}

std::uint64_t ModuleTable::absolute_address(const Frame& frame) const {
  const Module& m = modules_.at(frame.module);
  return m.base + frame.offset;
}

std::optional<Frame> ModuleTable::resolve(std::uint64_t absolute) const {
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    const Module& m = modules_[i];
    if (absolute >= m.base && absolute < m.base + m.text_size) {
      return Frame{static_cast<ModuleId>(i), absolute - m.base};
    }
  }
  return std::nullopt;
}

Bytes ModuleTable::total_debug_info() const {
  Bytes total = 0;
  for (const auto& m : modules_) total += m.debug_info_size;
  return total;
}

}  // namespace ecohmem::bom
