#pragma once

/// \file frame.hpp
/// Call-stack frames in BOM (Binary Object Matching) form.
///
/// §VI of the paper: instead of translating call-stack frames into
/// human-readable `file:line` pairs (which requires debug information and
/// binutils at runtime), ecoHMEM identifies a frame by the *binary object*
/// (executable or shared library) containing the address plus the offset
/// from that object's load base. Such frames survive ASLR — the offset is
/// invariant even though absolute addresses change between runs — and can
/// be compared with integer comparisons.

#include <cstdint>
#include <functional>
#include <vector>

namespace ecohmem::bom {

/// Identifier of a binary object within a ModuleTable.
using ModuleId = std::uint32_t;

inline constexpr ModuleId kInvalidModule = 0xffffffffu;

/// One call-stack frame: (binary object, offset from its base).
struct Frame {
  ModuleId module = kInvalidModule;
  std::uint64_t offset = 0;

  friend bool operator==(const Frame&, const Frame&) = default;
  friend auto operator<=>(const Frame&, const Frame&) = default;
};

/// A call stack, outermost callee first (frame 0 = the allocation routine's
/// immediate caller).
struct CallStack {
  std::vector<Frame> frames;

  [[nodiscard]] bool empty() const { return frames.empty(); }
  [[nodiscard]] std::size_t depth() const { return frames.size(); }

  friend bool operator==(const CallStack&, const CallStack&) = default;
};

/// FNV-1a over the frame words; used by the matcher's hash tables.
struct CallStackHash {
  std::size_t operator()(const CallStack& cs) const {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= 1099511628211ull;
      }
    };
    for (const auto& f : cs.frames) {
      mix(f.module);
      mix(f.offset);
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace ecohmem::bom
