#include "ecohmem/bom/host_introspection.hpp"

#include <execinfo.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "ecohmem/common/strings.hpp"

namespace ecohmem::bom {

namespace {

struct Mapping {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::string path;
};

/// Parses one maps line: "start-end perms offset dev inode   path".
/// Returns an executable file-backed mapping, or nullopt.
std::optional<Mapping> parse_line(std::string_view line) {
  const std::size_t dash = line.find('-');
  const std::size_t space = line.find(' ');
  if (dash == std::string_view::npos || space == std::string_view::npos || dash > space) {
    return std::nullopt;
  }
  // maps addresses are unprefixed hexadecimal.
  const auto start = strings::parse_hex("0x" + std::string(line.substr(0, dash)));
  const auto end =
      strings::parse_hex("0x" + std::string(line.substr(dash + 1, space - dash - 1)));
  if (!start || !end) return std::nullopt;

  // perms field: "r-xp" etc.
  std::string_view rest = strings::trim(line.substr(space + 1));
  if (rest.size() < 4 || rest[2] != 'x') return std::nullopt;

  // Skip perms, offset, dev, inode; the remainder (if any) is the path.
  for (int field = 0; field < 4; ++field) {
    const std::size_t next = rest.find(' ');
    if (next == std::string_view::npos) return std::nullopt;
    rest = strings::trim(rest.substr(next + 1));
  }
  if (rest.empty() || rest.front() == '[') return std::nullopt;  // [vdso] etc.

  Mapping m;
  m.start = *start;
  m.end = *end;
  m.path = std::string(rest);
  return m;
}

}  // namespace

Expected<ModuleTable> modules_from_maps_text(std::string_view text) {
  // Group executable mappings by backing file.
  std::map<std::string, Mapping> by_path;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::string_view line =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;

    const auto mapping = parse_line(line);
    if (!mapping) continue;
    auto [it, inserted] = by_path.emplace(mapping->path, *mapping);
    if (!inserted) {
      it->second.start = std::min(it->second.start, mapping->start);
      it->second.end = std::max(it->second.end, mapping->end);
    }
  }
  if (by_path.empty()) return unexpected("no executable file-backed mappings found");

  ModuleTable table;
  // ModuleTable assigns bases itself in simulation; for host use we need
  // the real bases, so add modules and then overwrite via a dedicated
  // pass using resolve() invariants: add in address order and rely on
  // set_host_base.
  for (const auto& [path, m] : by_path) {
    const std::string name = path.substr(path.find_last_of('/') + 1);
    const ModuleId id = table.add_module(name, m.end - m.start, 0);
    table.set_host_base(id, m.start);
  }
  return table;
}

Expected<ModuleTable> modules_from_self() {
  std::ifstream in("/proc/self/maps");
  if (!in) return unexpected("cannot open /proc/self/maps");
  std::ostringstream ss;
  ss << in.rdbuf();
  return modules_from_maps_text(ss.str());
}

CallStack capture_callstack(const ModuleTable& modules, int skip, int max_depth) {
  void* raw[64];
  const int captured = ::backtrace(raw, 64);

  CallStack stack;
  for (int i = skip + 1; i < captured && static_cast<int>(stack.frames.size()) < max_depth;
       ++i) {
    const auto frame = modules.resolve(reinterpret_cast<std::uint64_t>(raw[i]));
    if (frame) stack.frames.push_back(*frame);
  }
  return stack;
}

}  // namespace ecohmem::bom
