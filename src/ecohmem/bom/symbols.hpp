#pragma once

/// \file symbols.hpp
/// Synthetic symbol/line tables and the human-readable translation path.
///
/// The pre-BOM workflow translated every frame address to a `file:line`
/// pair using binutils and the binary's DWARF data (§VI). The paper
/// reports two costs: (1) runtime overhead of symbolization + string
/// comparisons at every intercepted allocation, and (2) the DWARF data
/// itself held resident in DRAM (multiplied by the MPI rank count).
/// This module reproduces both: `SymbolTable::translate` performs a real
/// binary search + string materialization, and a `TranslationCost` meter
/// counts the work so benchmarks (`bench_bom_matching`) can report it.

#include <cstdint>
#include <string>
#include <vector>

#include "ecohmem/bom/frame.hpp"
#include "ecohmem/bom/module_table.hpp"
#include "ecohmem/common/expected.hpp"

namespace ecohmem::bom {

/// A resolved source location.
struct SourceLocation {
  std::string file;
  std::uint32_t line = 0;

  [[nodiscard]] std::string to_string() const { return file + ":" + std::to_string(line); }
  friend bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

/// Accumulated symbolization work, for the §VIII-D overhead accounting.
struct TranslationCost {
  std::uint64_t frames_translated = 0;
  std::uint64_t table_lookups = 0;      ///< binary-search probes
  std::uint64_t string_bytes_built = 0; ///< bytes of file:line strings materialized

  void reset() { *this = TranslationCost{}; }

  /// Simulated wall-clock cost of this much symbolization work, modeled
  /// after addr2line-style lookups (~1.5 us/frame dominated by DWARF line
  /// program walking, plus per-byte string handling).
  [[nodiscard]] double estimated_ns() const {
    return 1500.0 * static_cast<double>(frames_translated) +
           0.5 * static_cast<double>(string_bytes_built);
  }
};

/// One entry in a module's line table.
struct LineEntry {
  std::uint64_t offset = 0;  ///< start offset within the module text
  std::string file;
  std::uint32_t line = 0;
};

/// Per-module line tables, the stand-in for DWARF .debug_line data.
class SymbolTable {
 public:
  explicit SymbolTable(const ModuleTable* modules);

  /// Registers a line entry; entries are sorted lazily before lookups.
  void add_entry(ModuleId module, LineEntry entry);

  /// Translates a BOM frame to file:line. The containing entry is the one
  /// with the greatest `offset` not above the frame offset.
  [[nodiscard]] Expected<SourceLocation> translate(const Frame& frame) const;

  /// Translates a whole call stack; fails on the first untranslatable
  /// frame (matching the strictness of file:line report matching).
  [[nodiscard]] Expected<std::vector<SourceLocation>> translate(const CallStack& stack) const;

  [[nodiscard]] const TranslationCost& cost() const { return cost_; }
  void reset_cost() { cost_.reset(); }

 private:
  void ensure_sorted() const;

  const ModuleTable* modules_;
  mutable std::vector<std::vector<LineEntry>> entries_;  // per module
  mutable bool sorted_ = true;
  mutable TranslationCost cost_;
};

}  // namespace ecohmem::bom
