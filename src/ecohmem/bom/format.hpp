#pragma once

/// \file format.hpp
/// Textual call-stack formats of Table I.
///
/// The Advisor report identifies each allocation point by its call stack
/// in one of two formats:
///
///   human-readable (pre-BOM):  `minife.x!src/Vector.hpp:88 > src/driver.hpp:120`
///                               stored here as `file:line` frames joined
///                               by " > "
///   BOM (§VI):                 `minife.x!0x1a2b0 > libmpi.so!0x44c8`
///                               frames are `module!0xoffset`
///
/// A report line appends the assigned memory subsystem: `... @ pmem`.

#include <string>
#include <vector>

#include "ecohmem/bom/frame.hpp"
#include "ecohmem/bom/module_table.hpp"
#include "ecohmem/bom/symbols.hpp"
#include "ecohmem/common/expected.hpp"

namespace ecohmem::bom {

/// A call stack in human-readable form (file:line frames).
using HumanStack = std::vector<SourceLocation>;

/// Separator between frames in both formats.
inline constexpr std::string_view kFrameSeparator = " > ";

/// `module!0x1a2b0 > module!0x44c8`
[[nodiscard]] std::string format_bom(const CallStack& stack, const ModuleTable& modules);

/// Parses the BOM format; module names must exist in `modules`.
[[nodiscard]] Expected<CallStack> parse_bom(std::string_view text, const ModuleTable& modules);

/// `src/Vector.hpp:88 > src/driver.hpp:120`
[[nodiscard]] std::string format_human(const HumanStack& stack);

/// Parses the human-readable format.
[[nodiscard]] Expected<HumanStack> parse_human(std::string_view text);

/// Heuristic used by report parsers to auto-detect the format of a line:
/// BOM frames contain "!0x".
[[nodiscard]] bool looks_like_bom(std::string_view text);

}  // namespace ecohmem::bom
