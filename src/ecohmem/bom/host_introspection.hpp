#pragma once

/// \file host_introspection.hpp
/// Real-process BOM support: module discovery from /proc/self/maps and
/// call-stack capture via backtrace(3).
///
/// This is the non-simulated half of FlexMalloc: on a live Linux process
/// the interposer discovers where every binary object is loaded (the
/// paper: "during the process initialization the library obtains the
/// base address where each shared-library is loaded in memory") and
/// captures real return addresses at each allocation, normalizing them
/// to ASLR-stable (module, offset) frames. The simulation path and this
/// path share the same Frame/CallStack/matcher machinery, so a report
/// produced against either matches against either.

#include <string>

#include "ecohmem/bom/frame.hpp"
#include "ecohmem/bom/module_table.hpp"
#include "ecohmem/common/expected.hpp"

namespace ecohmem::bom {

/// Builds a ModuleTable from the current process's executable mappings.
/// Each distinct backing file becomes one module whose base is its lowest
/// executable mapping. Anonymous/special mappings are skipped.
[[nodiscard]] Expected<ModuleTable> modules_from_self();

/// Parses /proc/<pid>/maps-format text (exposed for testing).
[[nodiscard]] Expected<ModuleTable> modules_from_maps_text(std::string_view text);

/// Captures the current call stack as BOM frames against `modules`,
/// skipping `skip` innermost frames (the capture machinery itself) and
/// keeping at most `max_depth` resolvable frames. Frames outside every
/// known module (JITted or vdso addresses) are dropped.
[[nodiscard]] CallStack capture_callstack(const ModuleTable& modules, int skip = 1,
                                          int max_depth = 16);

}  // namespace ecohmem::bom
