#include "ecohmem/bom/format.hpp"

#include <sstream>

#include "ecohmem/common/strings.hpp"

namespace ecohmem::bom {

std::string format_bom(const CallStack& stack, const ModuleTable& modules) {
  std::ostringstream out;
  for (std::size_t i = 0; i < stack.frames.size(); ++i) {
    if (i > 0) out << kFrameSeparator;
    const Frame& f = stack.frames[i];
    out << modules.module(f.module).name << '!' << strings::to_hex(f.offset);
  }
  return out.str();
}

Expected<CallStack> parse_bom(std::string_view text, const ModuleTable& modules) {
  CallStack cs;
  for (const auto& part : strings::split(text, kFrameSeparator)) {
    const std::size_t bang = part.find('!');
    if (bang == std::string::npos) {
      return unexpected("BOM frame without '!': '" + part + "'");
    }
    const auto id = modules.find(std::string_view(part).substr(0, bang));
    if (!id) return unexpected(id.error());
    const auto offset = strings::parse_hex(std::string_view(part).substr(bang + 1));
    if (!offset) return unexpected("BOM frame offset: " + offset.error());
    cs.frames.push_back(Frame{*id, *offset});
  }
  if (cs.empty()) return unexpected("empty call stack");
  return cs;
}

std::string format_human(const HumanStack& stack) {
  std::ostringstream out;
  for (std::size_t i = 0; i < stack.size(); ++i) {
    if (i > 0) out << kFrameSeparator;
    out << stack[i].file << ':' << stack[i].line;
  }
  return out.str();
}

Expected<HumanStack> parse_human(std::string_view text) {
  HumanStack stack;
  for (const auto& part : strings::split(text, kFrameSeparator)) {
    const std::size_t colon = part.rfind(':');
    if (colon == std::string::npos || colon + 1 >= part.size()) {
      return unexpected("human-readable frame without ':line': '" + part + "'");
    }
    const auto line = strings::parse_u64(std::string_view(part).substr(colon + 1));
    if (!line) return unexpected("frame line number: " + line.error());
    stack.push_back(SourceLocation{part.substr(0, colon), static_cast<std::uint32_t>(*line)});
  }
  if (stack.empty()) return unexpected("empty call stack");
  return stack;
}

bool looks_like_bom(std::string_view text) { return text.find("!0x") != std::string_view::npos; }

}  // namespace ecohmem::bom
