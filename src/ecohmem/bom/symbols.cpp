#include "ecohmem/bom/symbols.hpp"

#include <algorithm>
#include <bit>

namespace ecohmem::bom {

SymbolTable::SymbolTable(const ModuleTable* modules) : modules_(modules) {}

void SymbolTable::add_entry(ModuleId module, LineEntry entry) {
  if (entries_.size() <= module) entries_.resize(module + 1);
  entries_[module].push_back(std::move(entry));
  sorted_ = false;
}

void SymbolTable::ensure_sorted() const {
  if (sorted_) return;
  for (auto& mod : entries_) {
    std::sort(mod.begin(), mod.end(),
              [](const LineEntry& a, const LineEntry& b) { return a.offset < b.offset; });
  }
  sorted_ = true;
}

Expected<SourceLocation> SymbolTable::translate(const Frame& frame) const {
  ensure_sorted();
  if (frame.module >= entries_.size() || entries_[frame.module].empty()) {
    return unexpected("no debug info for module " +
                      (modules_ != nullptr && frame.module < modules_->size()
                           ? modules_->module(frame.module).name
                           : std::to_string(frame.module)));
  }
  const auto& table = entries_[frame.module];

  // upper_bound - 1: greatest entry offset <= frame offset.
  const auto it = std::upper_bound(
      table.begin(), table.end(), frame.offset,
      [](std::uint64_t off, const LineEntry& e) { return off < e.offset; });
  cost_.table_lookups += static_cast<std::uint64_t>(
      1 + static_cast<std::uint64_t>(std::bit_width(table.size())));
  if (it == table.begin()) {
    return unexpected("offset below first line entry in module");
  }
  const LineEntry& entry = *(it - 1);

  SourceLocation loc{entry.file, entry.line};
  ++cost_.frames_translated;
  cost_.string_bytes_built += loc.file.size() + 12;  // ":NNNN" digits + separators
  return loc;
}

Expected<std::vector<SourceLocation>> SymbolTable::translate(const CallStack& stack) const {
  std::vector<SourceLocation> out;
  out.reserve(stack.frames.size());
  for (const auto& f : stack.frames) {
    auto loc = translate(f);
    if (!loc) return unexpected(loc.error());
    out.push_back(std::move(*loc));
  }
  return out;
}

}  // namespace ecohmem::bom
