#pragma once

/// \file sites_csv.hpp
/// Re-reads the analyzer's per-site CSV export (write_site_csv) so the
/// checker can cross-validate it against the trace it was derived from.
///
/// The CSV is the machine-readable face of the Paramedir-style site
/// report; the column order is fixed and documented in its header row
/// (see analyzer/site_report.cpp). Parsing is strict: a row with the
/// wrong column count or a numeric field that fails to parse is an error
/// carrying the 1-based line number.

#include <string>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::check {

/// One parsed row of the site CSV (a subset of analyzer::SiteRecord; the
/// call stack stays in its BOM text form, e.g. "app.x!0x100 > app.x!0x40").
struct SiteCsvRow {
  std::size_t line = 0;  ///< 1-based line number in the CSV
  std::string callstack;
  std::uint64_t alloc_count = 0;
  Bytes max_size = 0;
  Bytes peak_live = 0;
  double load_misses = 0.0;
  double store_misses = 0.0;
  double avg_load_latency_ns = 0.0;
  double exec_bw_gbs = 0.0;
  double alloc_bw_gbs = 0.0;
  double exec_sys_bw_gbs = 0.0;
  Ns first_alloc = 0;
  Ns last_free = 0;
  double mean_lifetime_ns = 0.0;
  bool has_writes = false;
};

struct SiteCsv {
  std::vector<SiteCsvRow> rows;

  /// From the optional leading "# coverage: ..." comment the analyzer
  /// writes for salvaged traces (site_report.cpp). Absent on strict
  /// exports: has_coverage is false and the counts are 0.
  bool has_coverage = false;
  bool salvaged = false;
  std::uint64_t events_seen = 0;
  std::uint64_t events_declared = 0;
};

/// Parses site-CSV text. Fails with a line number on a malformed header,
/// row shape, or numeric field.
[[nodiscard]] Expected<SiteCsv> parse_site_csv(std::string_view text);

/// Reads and parses a site-CSV file.
[[nodiscard]] Expected<SiteCsv> load_site_csv(const std::string& path);

}  // namespace ecohmem::check
