#pragma once

/// \file rule.hpp
/// The rule interface and registry of the cross-artifact checker.
///
/// A `Rule` is one invariant of the ecoHMEM pipeline, checked over
/// whatever artifacts a `CheckContext` carries. Rules are pure readers:
/// they never mutate the artifacts and never fail — a broken artifact is
/// a diagnostic, not an error return. The built-in set (see
/// docs/linting.md for the catalogue) spans every pipeline layer:
///
///   trace-*   trace well-formedness (time order, alloc/free pairing,
///             double frees, overlapping live ranges, stack-table refs)
///   bom-*     module-table consistency of interned call stacks
///   sites-*   analyzer-output consistency against the trace
///   config-*  advisor configuration sanity
///   report-*  placement-map soundness (capacity, tier names, §VII
///             bandwidth classes, site provenance, matcher ambiguity)
///   online-*  online placement policy sanity (key spelling and value
///             ranges of the [online] INI, docs/online.md)
///   migration-* migration-log audit (`ecohmem-run --migration-log`):
///             conservation identities, sub-range well-formedness,
///             time order, chunk alignment against the policy
///
/// New rules: subclass `Rule`, then `registry.add(std::make_unique<...>())`
/// — or start from `RuleRegistry::builtin()` and extend it.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ecohmem/check/context.hpp"
#include "ecohmem/check/diagnostic.hpp"

namespace ecohmem::check {

/// One pipeline invariant.
class Rule {
 public:
  virtual ~Rule() = default;

  /// Stable kebab-case identifier, e.g. "report-capacity". Used in
  /// diagnostics, --disable lists, and docs/linting.md.
  [[nodiscard]] virtual std::string_view id() const = 0;

  /// One-line description of the invariant (for --list-rules).
  [[nodiscard]] virtual std::string_view description() const = 0;

  /// True when `ctx` carries every artifact this rule needs.
  [[nodiscard]] virtual bool applicable(const CheckContext& ctx) const = 0;

  /// Checks the invariant; returns one diagnostic per violation (empty
  /// when the artifacts are consistent). Only called when applicable.
  [[nodiscard]] virtual std::vector<Diagnostic> run(const CheckContext& ctx) const = 0;
};

struct CheckOptions {
  /// Rule ids to skip (the CLI's --disable).
  std::vector<std::string> disabled_rules;

  /// Cap on diagnostics reported per rule; excess findings are folded
  /// into one summary diagnostic. 0 = unlimited.
  std::size_t max_per_rule = 16;

  /// Minimum fraction of declared events a salvaged trace must recover
  /// before trace-salvage-coverage escalates from warning to error
  /// (the CLI's --min-coverage). See docs/robustness.md.
  double min_salvage_coverage = 0.9;
};

/// Outcome of running a registry over a context.
struct RunResult {
  std::vector<Diagnostic> diagnostics;
  std::vector<std::string> rules_run;      ///< applicable, enabled rules
  std::vector<std::string> rules_skipped;  ///< inapplicable or disabled

  [[nodiscard]] bool ok() const { return !has_errors(diagnostics); }
};

/// An ordered collection of rules.
class RuleRegistry {
 public:
  /// The built-in cross-artifact rule set.
  [[nodiscard]] static RuleRegistry builtin();

  void add(std::unique_ptr<Rule> rule) { rules_.push_back(std::move(rule)); }

  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }
  [[nodiscard]] const Rule* find(std::string_view id) const;

  /// Runs every applicable, enabled rule over `ctx`. Diagnostics keep
  /// registry order (rules are ordered trace -> sites -> config -> report,
  /// following the pipeline).
  [[nodiscard]] RunResult run_all(const CheckContext& ctx, const CheckOptions& options = {}) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// Internal factories (one translation unit per pipeline layer).
namespace rules {
[[nodiscard]] std::vector<std::unique_ptr<Rule>> trace_rules();
[[nodiscard]] std::vector<std::unique_ptr<Rule>> sites_rules();
[[nodiscard]] std::vector<std::unique_ptr<Rule>> report_rules();
[[nodiscard]] std::vector<std::unique_ptr<Rule>> online_rules();
[[nodiscard]] std::vector<std::unique_ptr<Rule>> migration_rules();
}  // namespace rules

}  // namespace ecohmem::check
