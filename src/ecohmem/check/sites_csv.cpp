#include "ecohmem/check/sites_csv.hpp"

#include <fstream>
#include <sstream>

#include "ecohmem/common/strings.hpp"

namespace ecohmem::check {

namespace {

constexpr std::string_view kExpectedHeader =
    "callstack,allocs,max_size,peak_live,load_misses,store_misses,"
    "avg_load_latency_ns,exec_bw_gbs,alloc_bw_gbs,exec_sys_bw_gbs,"
    "first_alloc_ns,last_free_ns,mean_lifetime_ns,has_writes";

constexpr std::size_t kColumns = 14;

/// Splits one CSV row; the first field may be double-quoted (the call
/// stack, which contains no quotes or commas of its own — BOM frames are
/// `module!0xoffset` joined by " > ").
Expected<std::vector<std::string>> split_row(std::string_view line, std::size_t line_no) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  if (!line.empty() && line.front() == '"') {
    const std::size_t close = line.find('"', 1);
    if (close == std::string_view::npos) {
      return unexpected("line " + std::to_string(line_no) + ": unterminated quoted field");
    }
    fields.emplace_back(line.substr(1, close - 1));
    pos = close + 1;
    if (pos < line.size()) {
      if (line[pos] != ',') {
        return unexpected("line " + std::to_string(line_no) + ": expected ',' after quoted field");
      }
      ++pos;
    }
  }
  while (pos <= line.size()) {
    const std::size_t comma = line.find(',', pos);
    if (comma == std::string_view::npos) {
      fields.emplace_back(strings::trim(line.substr(pos)));
      break;
    }
    fields.emplace_back(strings::trim(line.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return fields;
}

Expected<std::uint64_t> row_u64(const std::string& field, std::string_view name,
                                std::size_t line_no) {
  auto v = strings::parse_u64(field);
  if (!v) {
    return unexpected("line " + std::to_string(line_no) + ": bad " + std::string(name) + ": " +
                      v.error());
  }
  return *v;
}

Expected<double> row_double(const std::string& field, std::string_view name,
                            std::size_t line_no) {
  auto v = strings::parse_double(field);
  if (!v) {
    return unexpected("line " + std::to_string(line_no) + ": bad " + std::string(name) + ": " +
                      v.error());
  }
  return *v;
}

}  // namespace

Expected<SiteCsv> parse_site_csv(std::string_view text) {
  SiteCsv csv;
  std::size_t line_no = 0;
  std::size_t start = 0;
  bool saw_header = false;

  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    std::string_view raw =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;

    const std::string_view line = strings::trim(raw);
    if (line.empty()) continue;

    // Comment lines may precede the header; the analyzer uses one to
    // stamp salvage coverage ("# coverage: events_seen=N ...").
    if (line.front() == '#') {
      std::string_view body = strings::trim(line.substr(1));
      if (body.rfind("coverage:", 0) == 0) {
        csv.has_coverage = true;
        std::istringstream kv{std::string(strings::trim(body.substr(9)))};
        std::string tok;
        while (kv >> tok) {
          const std::size_t eq = tok.find('=');
          if (eq == std::string::npos) continue;
          const std::string key = tok.substr(0, eq);
          const auto v = strings::parse_u64(tok.substr(eq + 1));
          if (!v) {
            return unexpected("line " + std::to_string(line_no) + ": bad coverage field " + tok);
          }
          if (key == "events_seen") csv.events_seen = *v;
          else if (key == "events_declared") csv.events_declared = *v;
          else if (key == "salvaged") csv.salvaged = *v != 0;
        }
      }
      continue;
    }

    if (!saw_header) {
      if (line != kExpectedHeader) {
        return unexpected("line " + std::to_string(line_no) +
                          ": unexpected site CSV header (column layout changed?)");
      }
      saw_header = true;
      continue;
    }

    auto fields = split_row(line, line_no);
    if (!fields) return unexpected(fields.error());
    if (fields->size() != kColumns) {
      return unexpected("line " + std::to_string(line_no) + ": expected " +
                        std::to_string(kColumns) + " columns, got " +
                        std::to_string(fields->size()));
    }

    SiteCsvRow row;
    row.line = line_no;
    row.callstack = (*fields)[0];

    const auto allocs = row_u64((*fields)[1], "allocs", line_no);
    if (!allocs) return unexpected(allocs.error());
    row.alloc_count = *allocs;
    const auto max_size = row_u64((*fields)[2], "max_size", line_no);
    if (!max_size) return unexpected(max_size.error());
    row.max_size = *max_size;
    const auto peak_live = row_u64((*fields)[3], "peak_live", line_no);
    if (!peak_live) return unexpected(peak_live.error());
    row.peak_live = *peak_live;

    struct DoubleField {
      std::size_t index;
      std::string_view name;
      double SiteCsvRow::* member;
    };
    static constexpr DoubleField kDoubles[] = {
        {4, "load_misses", &SiteCsvRow::load_misses},
        {5, "store_misses", &SiteCsvRow::store_misses},
        {6, "avg_load_latency_ns", &SiteCsvRow::avg_load_latency_ns},
        {7, "exec_bw_gbs", &SiteCsvRow::exec_bw_gbs},
        {8, "alloc_bw_gbs", &SiteCsvRow::alloc_bw_gbs},
        {9, "exec_sys_bw_gbs", &SiteCsvRow::exec_sys_bw_gbs},
        {12, "mean_lifetime_ns", &SiteCsvRow::mean_lifetime_ns},
    };
    for (const auto& f : kDoubles) {
      const auto v = row_double((*fields)[f.index], f.name, line_no);
      if (!v) return unexpected(v.error());
      row.*(f.member) = *v;
    }

    const auto first_alloc = row_u64((*fields)[10], "first_alloc_ns", line_no);
    if (!first_alloc) return unexpected(first_alloc.error());
    row.first_alloc = *first_alloc;
    const auto last_free = row_u64((*fields)[11], "last_free_ns", line_no);
    if (!last_free) return unexpected(last_free.error());
    row.last_free = *last_free;

    const std::string& writes = (*fields)[13];
    if (writes != "0" && writes != "1") {
      return unexpected("line " + std::to_string(line_no) + ": has_writes must be 0 or 1, got '" +
                        writes + "'");
    }
    row.has_writes = writes == "1";

    csv.rows.push_back(std::move(row));
  }

  if (!saw_header) return unexpected("empty site CSV (no header row)");
  return csv;
}

Expected<SiteCsv> load_site_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return unexpected("cannot open site CSV: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_site_csv(ss.str());
}

}  // namespace ecohmem::check
