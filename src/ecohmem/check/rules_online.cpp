/// \file rules_online.cpp
/// Online placement policy rules: the `[online]` INI an operator hands
/// to `ecohmem-run --online` must parse under the strict loader
/// (online/policy_config.hpp). The loader stops at its first violation;
/// these rules re-check every key independently so one typo does not
/// hide the next, and they share the loader's key table so the linter
/// can never disagree with the runtime about what is a valid policy.

#include <cmath>
#include <string>
#include <vector>

#include "ecohmem/check/rule.hpp"
#include "ecohmem/online/policy_config.hpp"

namespace ecohmem::check::rules {

namespace {

/// The section the policy lives in: `[online]` when present, else the
/// unnamed global section — mirrors OnlinePolicyConfig::from_config.
const ConfigSection& policy_section(const Config& config) {
  const ConfigSection* section = config.first_section(online::kPolicySection);
  return section != nullptr ? *section : config.global();
}

class OnlineRule : public Rule {
 public:
  OnlineRule(std::string_view id, std::string_view description)
      : id_(id), description_(description) {}

  [[nodiscard]] std::string_view id() const final { return id_; }
  [[nodiscard]] std::string_view description() const final { return description_; }
  [[nodiscard]] bool applicable(const CheckContext& ctx) const final {
    return ctx.online != nullptr;
  }

 protected:
  std::string_view id_;
  std::string_view description_;
};

/// A policy key whose value must parse as a double inside a range.
/// Emits at most one diagnostic: unparseable or out-of-range.
class DoubleRangeRule final : public OnlineRule {
 public:
  DoubleRangeRule(std::string_view id, std::string_view key, double fallback,
                  std::string_view range_text, bool (*in_range)(double))
      : OnlineRule(id, std::string()),
        key_(key),
        fallback_(fallback),
        range_text_(range_text),
        in_range_(in_range),
        description_text_("[online] " + std::string(key) + " must be " +
                          std::string(range_text)) {
    description_ = description_text_;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const ConfigSection& section = policy_section(*ctx.online);
    const auto value = section.get_double(std::string(key_), fallback_);
    if (!value) {
      out.push_back(error(std::string(id_), ctx.online_name, value.error()));
    } else if (!in_range_(*value)) {
      out.push_back(error(std::string(id_), ctx.online_name,
                          std::string(key_) + " = " + std::to_string(*value) + " must be " +
                              std::string(range_text_)));
    }
    return out;
  }

 private:
  std::string_view key_;
  double fallback_;
  std::string_view range_text_;
  bool (*in_range_)(double);
  std::string description_text_;
};

/// Every key in the policy section must be one the runtime loader
/// recognizes — a typo would otherwise silently run the default policy
/// for that knob.
class KnownKeysRule final : public OnlineRule {
 public:
  KnownKeysRule()
      : OnlineRule("online-keys",
                   "every [online] key must be one the policy loader recognizes") {}

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const ConfigSection& section = policy_section(*ctx.online);
    for (const auto& [key, value] : section.entries()) {
      (void)value;
      bool known = false;
      for (const char* const* k = online::policy_keys(); *k != nullptr; ++k) {
        if (key == *k) {
          known = true;
          break;
        }
      }
      if (!known) {
        out.push_back(error(std::string(id_), ctx.online_name,
                            "unknown key '" + key + "' (see docs/online.md for the grammar)"));
      }
    }
    return out;
  }
};

/// window and max_moves_per_step are counts that must be positive.
class PositiveCountRule final : public OnlineRule {
 public:
  PositiveCountRule(std::string_view id, std::string_view key, std::uint64_t fallback)
      : OnlineRule(id, std::string()),
        key_(key),
        fallback_(fallback),
        description_text_("[online] " + std::string(key) + " must be > 0") {
    description_ = description_text_;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const ConfigSection& section = policy_section(*ctx.online);
    const auto value = section.get_u64(std::string(key_), fallback_);
    if (!value) {
      out.push_back(error(std::string(id_), ctx.online_name, value.error()));
    } else if (*value == 0) {
      out.push_back(
          error(std::string(id_), ctx.online_name, std::string(key_) + " must be > 0"));
    }
    return out;
  }

 private:
  std::string_view key_;
  std::uint64_t fallback_;
  std::string description_text_;
};

bool unit_interval(double v) { return std::isfinite(v) && v > 0.0 && v <= 1.0; }
bool non_negative(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

std::vector<std::unique_ptr<Rule>> online_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<KnownKeysRule>());
  rules.push_back(std::make_unique<DoubleRangeRule>("online-sample-rate", "sample_rate", 0.01,
                                                    "in (0, 1]", unit_interval));
  rules.push_back(std::make_unique<DoubleRangeRule>("online-ewma-alpha", "ewma_alpha", 0.3,
                                                    "in (0, 1]", unit_interval));
  rules.push_back(std::make_unique<PositiveCountRule>("online-window", "window", 12));
  rules.push_back(std::make_unique<DoubleRangeRule>("online-hysteresis", "hysteresis", 0.25,
                                                    ">= 0 and finite", non_negative));
  rules.push_back(std::make_unique<DoubleRangeRule>("online-min-density", "min_density", 1.0,
                                                    ">= 0 and finite", non_negative));
  rules.push_back(std::make_unique<PositiveCountRule>("online-max-moves", "max_moves_per_step",
                                                      8));
  rules.push_back(std::make_unique<DoubleRangeRule>(
      "online-bandwidth-fraction", "bandwidth_fraction", 0.5, "in (0, 1]", unit_interval));
  return rules;
}

}  // namespace ecohmem::check::rules
