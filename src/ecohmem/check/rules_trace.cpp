/// \file rules_trace.cpp
/// Trace well-formedness rules: the invariants a profile trace must hold
/// before the analyzer's replay (aggregator.cpp) can be trusted. Unlike
/// the analyzer — which hard-fails on the first malformed event — these
/// rules scan the whole stream and report every violation.

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ecohmem/check/rule.hpp"
#include "ecohmem/common/strings.hpp"

namespace ecohmem::check::rules {

namespace {

/// Shared id/description plumbing; trace rules need the bundle.
class TraceRule : public Rule {
 public:
  TraceRule(std::string_view id, std::string_view description)
      : id_(id), description_(description) {}

  [[nodiscard]] std::string_view id() const final { return id_; }
  [[nodiscard]] std::string_view description() const final { return description_; }
  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.bundle != nullptr;
  }

 protected:
  [[nodiscard]] Diagnostic fail(const CheckContext& ctx, std::string message) const {
    return error(std::string(id_), ctx.trace_name, std::move(message));
  }
  [[nodiscard]] Diagnostic warn(const CheckContext& ctx, std::string message) const {
    return warning(std::string(id_), ctx.trace_name, std::move(message));
  }

 private:
  std::string_view id_;
  std::string_view description_;
};

class MonotonicTimeRule final : public TraceRule {
 public:
  MonotonicTimeRule()
      : TraceRule("trace-monotonic-time", "event timestamps must be non-decreasing") {}

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const auto& events = ctx.bundle->trace.events;
    Ns last = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Ns t = trace::event_time(events[i]);
      if (t < last) {
        out.push_back(fail(ctx, "event " + std::to_string(i) + " at t=" + std::to_string(t) +
                                    "ns precedes previous event at t=" + std::to_string(last) +
                                    "ns"));
      }
      last = std::max(last, t);
    }
    return out;
  }
};

class AllocPairingRule final : public TraceRule {
 public:
  AllocPairingRule()
      : TraceRule("trace-alloc-pairing",
                  "every free must pair with a preceding alloc of a live object id") {}

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    enum class State { kLive, kFreed };
    std::unordered_map<std::uint64_t, State> objects;

    for (const auto& event : ctx.bundle->trace.events) {
      if (const auto* a = std::get_if<trace::AllocEvent>(&event)) {
        const auto [it, inserted] = objects.try_emplace(a->object_id, State::kLive);
        if (!inserted && it->second == State::kLive) {
          out.push_back(fail(ctx, "object id " + std::to_string(a->object_id) +
                                      " re-allocated at t=" + std::to_string(a->time) +
                                      "ns while still live"));
        }
        it->second = State::kLive;
      } else if (const auto* f = std::get_if<trace::FreeEvent>(&event)) {
        const auto it = objects.find(f->object_id);
        if (it == objects.end()) {
          out.push_back(fail(ctx, "free of unknown object id " + std::to_string(f->object_id) +
                                      " at t=" + std::to_string(f->time) + "ns"));
        } else if (it->second == State::kFreed) {
          out.push_back(fail(ctx, "double free of object id " + std::to_string(f->object_id) +
                                      " at t=" + std::to_string(f->time) + "ns"));
        } else {
          it->second = State::kFreed;
        }
      }
    }
    return out;
  }
};

class OverlappingLiveRule final : public TraceRule {
 public:
  OverlappingLiveRule()
      : TraceRule("trace-overlapping-live",
                  "live allocations must occupy disjoint address ranges") {}

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    struct Interval {
      Bytes size = 0;
      std::uint64_t object_id = 0;
    };
    std::map<std::uint64_t, Interval> live;                      // by start address
    std::unordered_map<std::uint64_t, std::uint64_t> addr_of;    // object id -> address

    for (const auto& event : ctx.bundle->trace.events) {
      if (const auto* a = std::get_if<trace::AllocEvent>(&event)) {
        if (a->size > 0) {
          // Check the nearest live neighbours on both sides.
          const auto next = live.lower_bound(a->address);
          if (next != live.end() && a->address + a->size > next->first) {
            out.push_back(fail(ctx, "object id " + std::to_string(a->object_id) + " at [" +
                                        strings::to_hex(a->address) + ", +" +
                                        std::to_string(a->size) + ") overlaps live object id " +
                                        std::to_string(next->second.object_id) + " at " +
                                        strings::to_hex(next->first)));
          }
          if (next != live.begin()) {
            const auto prev = std::prev(next);
            if (prev->first + prev->second.size > a->address) {
              out.push_back(fail(ctx, "object id " + std::to_string(a->object_id) + " at [" +
                                          strings::to_hex(a->address) + ", +" +
                                          std::to_string(a->size) +
                                          ") overlaps live object id " +
                                          std::to_string(prev->second.object_id) + " at " +
                                          strings::to_hex(prev->first)));
            }
          }
        }
        live[a->address] = Interval{a->size, a->object_id};
        addr_of[a->object_id] = a->address;
      } else if (const auto* f = std::get_if<trace::FreeEvent>(&event)) {
        if (const auto it = addr_of.find(f->object_id); it != addr_of.end()) {
          live.erase(it->second);
          addr_of.erase(it);
        }
        // Unknown ids are trace-alloc-pairing's finding, not ours.
      }
    }
    return out;
  }
};

class LeakedObjectsRule final : public TraceRule {
 public:
  LeakedObjectsRule()
      : TraceRule("trace-leaked-objects",
                  "allocations never freed before trace end (reported, not fatal)") {}

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::unordered_map<std::uint64_t, Bytes> live;
    for (const auto& event : ctx.bundle->trace.events) {
      if (const auto* a = std::get_if<trace::AllocEvent>(&event)) {
        live[a->object_id] = a->size;
      } else if (const auto* f = std::get_if<trace::FreeEvent>(&event)) {
        live.erase(f->object_id);
      }
    }
    if (live.empty()) return {};
    Bytes bytes = 0;
    for (const auto& [id, size] : live) {
      (void)id;
      bytes += size;
    }
    return {warn(ctx, std::to_string(live.size()) + " objects (" + strings::format_bytes(bytes) +
                          ") still live at trace end; analyzer closes their windows at the "
                          "last event")};
  }
};

class StackIdsRule final : public TraceRule {
 public:
  StackIdsRule()
      : TraceRule("trace-stack-ids",
                  "event stack/function references must resolve in the header tables") {}

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const trace::Trace& t = ctx.bundle->trace;
    for (std::size_t i = 0; i < t.events.size(); ++i) {
      if (const auto* a = std::get_if<trace::AllocEvent>(&t.events[i])) {
        if (a->stack == trace::kInvalidStack || a->stack >= t.stacks.size()) {
          out.push_back(fail(ctx, "alloc event " + std::to_string(i) + " (object id " +
                                      std::to_string(a->object_id) +
                                      ") references stack id " + std::to_string(a->stack) +
                                      " outside the stack table (size " +
                                      std::to_string(t.stacks.size()) + ")"));
        }
      } else if (const auto* s = std::get_if<trace::SampleEvent>(&t.events[i])) {
        if (!t.functions.empty() && s->function_id >= t.functions.size()) {
          out.push_back(warn(ctx, "sample event " + std::to_string(i) +
                                      " references function id " +
                                      std::to_string(s->function_id) +
                                      " outside the function table"));
        }
      } else if (const auto* m = std::get_if<trace::MarkerEvent>(&t.events[i])) {
        if (!t.functions.empty() && m->function_id >= t.functions.size()) {
          out.push_back(warn(ctx, "marker event " + std::to_string(i) +
                                      " references function id " +
                                      std::to_string(m->function_id) +
                                      " outside the function table"));
        }
      }
    }
    return out;
  }
};

class FrameBoundsRule final : public TraceRule {
 public:
  FrameBoundsRule()
      : TraceRule("bom-frame-bounds",
                  "interned call-stack frames must point inside their module's text") {}

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const trace::StackTable& stacks = ctx.bundle->trace.stacks;
    const bom::ModuleTable& modules = ctx.bundle->modules;
    for (trace::StackId id = 0; id < stacks.size(); ++id) {
      for (const bom::Frame& frame : stacks.stack(id).frames) {
        if (frame.module >= modules.size()) {
          out.push_back(fail(ctx, "stack " + std::to_string(id) + " references module id " +
                                      std::to_string(frame.module) +
                                      " outside the module table (size " +
                                      std::to_string(modules.size()) + ")"));
          continue;
        }
        const bom::Module& m = modules.module(frame.module);
        if (m.text_size > 0 && frame.offset >= m.text_size) {
          out.push_back(fail(ctx, "stack " + std::to_string(id) + " frame " + m.name + "!" +
                                      strings::to_hex(frame.offset) +
                                      " lies beyond the module text segment (" +
                                      std::to_string(m.text_size) + " bytes)"));
        }
      }
    }
    return out;
  }
};

/// Unlike the other trace rules this one reads the raw v3 footer index
/// (CheckContext::trace_index), not the decoded bundle: a corrupt index
/// usually prevents the bundle from loading at all, and this rule exists
/// to enumerate everything wrong with it, not just the strict reader's
/// first complaint.
class TraceV3IndexRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "trace-v3-index"; }
  [[nodiscard]] std::string_view description() const override {
    return "v3 footer index: increasing in-bounds block offsets, non-decreasing block "
           "timestamps, counts summing to the header total";
  }
  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.trace_index != nullptr;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const TraceIndexView& idx = *ctx.trace_index;
    const auto fail = [&](std::string message) {
      out.push_back(error("trace-v3-index", ctx.trace_name, std::move(message)));
    };

    if (idx.entries.empty()) {
      if (idx.footer_offset != idx.events_offset) {
        fail("index lists no blocks but the event section spans offsets " +
             std::to_string(idx.events_offset) + ".." + std::to_string(idx.footer_offset));
      }
      if (idx.header_event_count != 0) {
        fail("index lists no blocks but the header claims " +
             std::to_string(idx.header_event_count) + " events");
      }
      return out;
    }

    if (idx.entries.front().offset != idx.events_offset) {
      fail("block 0 starts at offset " + std::to_string(idx.entries.front().offset) +
           ", expected the start of the event section at offset " +
           std::to_string(idx.events_offset));
    }
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < idx.entries.size(); ++i) {
      const TraceIndexView::Entry& e = idx.entries[i];
      total += e.count;
      if (e.count == 0) {
        fail("block " + std::to_string(i) + " at offset " + std::to_string(e.offset) +
             " is empty (count 0)");
      }
      if (e.offset >= idx.footer_offset) {
        fail("block " + std::to_string(i) + " offset " + std::to_string(e.offset) +
             " lies at or past the footer at offset " + std::to_string(idx.footer_offset));
      }
      if (i > 0) {
        if (e.offset <= idx.entries[i - 1].offset) {
          fail("block " + std::to_string(i) + " offset " + std::to_string(e.offset) +
               " does not increase over block " + std::to_string(i - 1) + " at offset " +
               std::to_string(idx.entries[i - 1].offset));
        }
        if (e.first_time < idx.entries[i - 1].first_time) {
          fail("block " + std::to_string(i) + " first timestamp t=" +
               std::to_string(e.first_time) + "ns precedes block " + std::to_string(i - 1) +
               " at t=" + std::to_string(idx.entries[i - 1].first_time) + "ns");
        }
      }
    }
    if (total != idx.header_event_count) {
      fail("index blocks sum to " + std::to_string(total) + " events but the header claims " +
           std::to_string(idx.header_event_count));
    }
    return out;
  }
};

/// Cross-checks the v3 per-block compression flag against the block
/// bodies: a flagged block must carry a readable compressed column
/// header whose declared event count matches the index entry (the
/// all-or-nothing decode contract salvage relies on), and an unflagged
/// block must not open with the compressed-block magic — 0xEC is never
/// a valid event tag, so that can only be a dropped flag bit.
class TraceBlockCompressionRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "trace-block-compression"; }
  [[nodiscard]] std::string_view description() const override {
    return "v3 compressed blocks: flag bit, body magic and the body's declared event count "
           "must agree with the footer index";
  }
  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.trace_index != nullptr;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const TraceIndexView& idx = *ctx.trace_index;
    const auto fail = [&](std::string message) {
      out.push_back(error("trace-block-compression", ctx.trace_name, std::move(message)));
    };
    for (std::size_t i = 0; i < idx.entries.size(); ++i) {
      const TraceIndexView::Entry& e = idx.entries[i];
      if (e.compressed) {
        if (!e.body_count_ok) {
          fail("block " + std::to_string(i) + " at offset " + std::to_string(e.offset) +
               " is flagged compressed but its body header is unreadable (" + e.body_error +
               ")");
        } else if (e.body_count != e.count) {
          fail("block " + std::to_string(i) + " at offset " + std::to_string(e.offset) +
               ": index entry declares " + std::to_string(e.count) +
               " events but the compressed body declares " + std::to_string(e.body_count));
        }
      } else if (e.body_looks_compressed) {
        fail("block " + std::to_string(i) + " at offset " + std::to_string(e.offset) +
             " opens with the compressed-block magic but its index entry is not flagged "
             "compressed");
      }
    }
    return out;
  }
};

/// Gates salvage-mode trace loads on how much of the declared data was
/// actually recovered. Only applicable when the lint driver fell back
/// to a salvage read (ctx.salvage set); a strict load is full coverage
/// by construction. Thresholds: coverage below ctx.min_salvage_coverage
/// is an error, anything short of 100% is a warning, and a manifest
/// that fails byte conservation is always an error (it means the
/// salvage accounting itself cannot be trusted).
class TraceSalvageCoverageRule final : public TraceRule {
 public:
  TraceSalvageCoverageRule()
      : TraceRule("trace-salvage-coverage",
                  "a salvaged trace must recover at least the minimum coverage") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.salvage != nullptr;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const trace::SalvageManifest& m = *ctx.salvage;
    if (!m.bytes_conserved()) {
      out.push_back(fail(ctx, "salvage manifest does not account for every byte (header " +
                                  std::to_string(m.header_bytes) + " + kept " +
                                  std::to_string(m.kept_bytes) + " + dropped " +
                                  std::to_string(m.dropped_bytes) + " + index " +
                                  std::to_string(m.index_bytes) + " != file " +
                                  std::to_string(m.file_bytes) + ")"));
    }
    const auto pct = [](double fraction) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", fraction * 100.0);
      return std::string(buf);
    };
    const double coverage = m.coverage();
    const std::string detail =
        std::to_string(m.events_recovered) + "/" + std::to_string(m.events_declared) +
        " declared events recovered (" + std::to_string(m.blocks_dropped) + " of " +
        std::to_string(m.blocks_declared) + " blocks dropped)";
    if (coverage < ctx.min_salvage_coverage) {
      out.push_back(fail(ctx, "salvage coverage " + pct(coverage) + "% is below the minimum " +
                                  pct(ctx.min_salvage_coverage) + "%: " + detail));
    } else if (coverage < 1.0) {
      out.push_back(warn(ctx, "salvaged trace is incomplete: " + detail));
    }
    if (m.sequential_scan && m.version == trace::codec::kVersionIndexed) {
      out.push_back(warn(ctx,
                         "v3 footer index was unusable; events were recovered by sequential "
                         "scan — timestamps after the first block boundary may be skewed "
                         "(docs/trace_format.md)"));
    }
    return out;
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> trace_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<TraceSalvageCoverageRule>());
  rules.push_back(std::make_unique<TraceV3IndexRule>());
  rules.push_back(std::make_unique<TraceBlockCompressionRule>());
  rules.push_back(std::make_unique<MonotonicTimeRule>());
  rules.push_back(std::make_unique<AllocPairingRule>());
  rules.push_back(std::make_unique<OverlappingLiveRule>());
  rules.push_back(std::make_unique<LeakedObjectsRule>());
  rules.push_back(std::make_unique<StackIdsRule>());
  rules.push_back(std::make_unique<FrameBoundsRule>());
  return rules;
}

}  // namespace ecohmem::check::rules
