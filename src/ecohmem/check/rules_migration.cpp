/// \file rules_migration.cpp
/// Migration-log rules: the CSV `ecohmem-run --migration-log` writes is
/// the auditable record of what the online policy actually moved. The
/// rules check the counter identities docs/online.md promises —
/// conservation (the rows must reproduce the summary's byte and move
/// totals, and `scheduled == applied + cancelled`), well-formed
/// sub-ranges for page-granular partial moves, and time order. When the
/// policy INI is also given, partial-move offsets are additionally
/// checked against its `chunk_bytes` alignment.

#include <string>
#include <vector>

#include "ecohmem/check/migration_log.hpp"
#include "ecohmem/check/rule.hpp"
#include "ecohmem/online/policy_config.hpp"

namespace ecohmem::check::rules {

namespace {

class MigrationRule : public Rule {
 public:
  MigrationRule(std::string_view id, std::string_view description)
      : id_(id), description_(description) {}

  [[nodiscard]] std::string_view id() const final { return id_; }
  [[nodiscard]] std::string_view description() const final { return description_; }
  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.migration_log != nullptr;
  }

 protected:
  std::string_view id_;
  std::string_view description_;
};

/// The trailing summary must exist and its counters must be exactly what
/// the rows add up to: applied == row count, partial == partial-row
/// count, migrated_bytes == sum of row bytes, and the scheduling
/// identity scheduled == applied + cancelled (a cancelled move charges
/// nothing and writes no row).
class ConservationRule final : public MigrationRule {
 public:
  ConservationRule()
      : MigrationRule("migration-conservation",
                      "migration log rows must reproduce the summary counters "
                      "(applied, partial, migrated_bytes; scheduled == applied + cancelled)") {}

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const MigrationLog& log = *ctx.migration_log;
    if (!log.has_summary) {
      out.push_back(error(std::string(id_), ctx.migration_log_name,
                          "no trailing '# summary' line (truncated log?)"));
      return out;
    }
    std::uint64_t partial_rows = 0;
    Bytes total_bytes = 0;
    for (const auto& row : log.rows) {
      if (row.partial) ++partial_rows;
      total_bytes += row.bytes;
    }
    if (log.applied != log.rows.size()) {
      out.push_back(error(std::string(id_), ctx.migration_log_name,
                          "summary says applied=" + std::to_string(log.applied) + " but the log has " +
                              std::to_string(log.rows.size()) + " rows"));
    }
    if (log.partial_moves != partial_rows) {
      out.push_back(error(std::string(id_), ctx.migration_log_name,
                          "summary says partial=" + std::to_string(log.partial_moves) + " but " +
                              std::to_string(partial_rows) + " rows are partial"));
    }
    if (log.migrated_bytes != total_bytes) {
      out.push_back(error(std::string(id_), ctx.migration_log_name,
                          "summary says migrated_bytes=" + std::to_string(log.migrated_bytes) +
                              " but the rows sum to " + std::to_string(total_bytes)));
    }
    if (log.scheduled != log.applied + log.cancelled) {
      out.push_back(error(std::string(id_), ctx.migration_log_name,
                          "scheduled=" + std::to_string(log.scheduled) + " != applied=" +
                              std::to_string(log.applied) + " + cancelled=" +
                              std::to_string(log.cancelled) +
                              " (a cancelled move must not be double-counted)"));
    }
    return out;
  }
};

/// Every row must describe a real move: nonzero length, distinct tiers,
/// and the partial flag consistent with the offset (a whole-object move
/// starts at 0; an offset > 0 is by definition a sub-range).
class RangesRule final : public MigrationRule {
 public:
  RangesRule()
      : MigrationRule("migration-ranges",
                      "migration rows must move a nonzero range between distinct tiers, "
                      "with the partial flag consistent with the offset") {}

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    for (const auto& row : ctx.migration_log->rows) {
      const std::string where = ctx.migration_log_name + ":" + std::to_string(row.line);
      if (row.bytes == 0) {
        out.push_back(error(std::string(id_), where, "zero-byte migration row"));
      }
      if (row.from_tier == row.to_tier) {
        out.push_back(error(std::string(id_), where,
                            "row moves within tier " + std::to_string(row.from_tier)));
      }
      if (row.offset != 0 && !row.partial) {
        out.push_back(error(std::string(id_), where,
                            "offset " + std::to_string(row.offset) +
                                " on a row not flagged partial"));
      }
    }
    return out;
  }
};

/// Rows must be in non-decreasing simulated time: the engine applies
/// migrations at kernel boundaries in program order, so an out-of-order
/// log means either a tampered file or a determinism bug.
class TimeOrderRule final : public MigrationRule {
 public:
  TimeOrderRule()
      : MigrationRule("migration-time-order",
                      "migration rows must be in non-decreasing simulated time") {}

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const auto& rows = ctx.migration_log->rows;
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (rows[i].at < rows[i - 1].at) {
        out.push_back(error(std::string(id_),
                            ctx.migration_log_name + ":" + std::to_string(rows[i].line),
                            "at_ns " + std::to_string(rows[i].at) + " is before the previous row's " +
                                std::to_string(rows[i - 1].at)));
      }
    }
    return out;
  }
};

/// With the policy INI also given, partial-move offsets must be aligned
/// to its `chunk_bytes` — the planner promotes huge objects prefix-first
/// in chunk multiples, so a misaligned offset means the log and the
/// policy do not belong to the same run.
class ChunkAlignmentRule final : public MigrationRule {
 public:
  ChunkAlignmentRule()
      : MigrationRule("migration-chunk-alignment",
                      "partial-move offsets must be aligned to the policy's chunk_bytes") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.migration_log != nullptr && ctx.online != nullptr;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    // Strict-load the policy; an unloadable one is the online-* rules'
    // finding, not this rule's.
    auto policy = online::OnlinePolicyConfig::from_config(*ctx.online);
    if (!policy) return out;
    const Bytes chunk = policy->chunk_bytes;
    for (const auto& row : ctx.migration_log->rows) {
      if (!row.partial || chunk == 0) continue;
      if (row.offset % chunk != 0) {
        out.push_back(error(std::string(id_),
                            ctx.migration_log_name + ":" + std::to_string(row.line),
                            "partial-move offset " + std::to_string(row.offset) +
                                " is not a multiple of chunk_bytes=" + std::to_string(chunk)));
      }
    }
    return out;
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> migration_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<ConservationRule>());
  rules.push_back(std::make_unique<RangesRule>());
  rules.push_back(std::make_unique<TimeOrderRule>());
  rules.push_back(std::make_unique<ChunkAlignmentRule>());
  return rules;
}

}  // namespace ecohmem::check::rules
