#pragma once

/// \file lint.hpp
/// The ecohmem-lint driver: loads any combination of pipeline artifacts
/// from disk, derives what can be derived (the analyzer replay), and runs
/// the rule registry over them.
///
/// Artifact-loading failures are themselves diagnostics (pseudo-rule ids
/// `trace-load`, `sites-load`, `report-load`, `config-load`) rather than
/// hard errors: a truncated trace or unparseable report is exactly what a
/// linter exists to report. `lint_files` only fails outright when it is
/// given nothing to check.

#include <string>
#include <string_view>
#include <vector>

#include "ecohmem/check/rule.hpp"
#include "ecohmem/common/expected.hpp"

namespace ecohmem::check {

/// Ids of the artifact-loader pseudo-rules (`trace-load` & co.). Not in
/// the registry — loading happens before rules run — but valid targets
/// for `CheckOptions::disabled_rules` and the CLI's --disable.
[[nodiscard]] const std::vector<std::string_view>& pseudo_rule_ids();

/// Paths of the artifacts to lint; empty string = not provided.
struct LintInputs {
  std::string trace_path;   ///< profiler output (.trc)
  std::string sites_path;   ///< analyzer site CSV export
  std::string report_path;  ///< advisor placement report
  std::string config_path;  ///< advisor configuration (.ini)
  std::string online_path;  ///< online placement policy (.ini)
  std::string model_path;   ///< ranking model (.ehm, ecohmem-train output)
  std::string migration_log_path;  ///< migration CSV (ecohmem-run --migration-log)
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;
  std::vector<std::string> rules_run;
  std::vector<std::string> rules_skipped;

  [[nodiscard]] bool ok() const { return !has_errors(diagnostics); }
};

/// Lints the given artifact files with the built-in rule set.
[[nodiscard]] Expected<LintResult> lint_files(const LintInputs& inputs,
                                              const CheckOptions& options = {});

/// Same, with a caller-supplied registry (for extended rule sets).
[[nodiscard]] Expected<LintResult> lint_files(const RuleRegistry& registry,
                                              const LintInputs& inputs,
                                              const CheckOptions& options = {});

}  // namespace ecohmem::check
