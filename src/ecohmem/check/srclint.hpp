#pragma once

/// \file srclint.hpp
/// Source-level determinism and concurrency-contract lint (ecohmem-srclint).
///
/// The pipeline's reproducibility contract (docs/threading.md, PAPER.md:
/// identical inputs must produce bit-identical traces, placements and
/// reports) is easy to break with one careless line of code — a stray
/// `rand()`, a wall-clock read feeding a simulated timestamp, a hash-map
/// iteration ordering serialized output, or a raw `std::mutex` that
/// bypasses the ranked lockdep wrappers. `ecohmem-lint` checks the
/// *artifacts* after the fact; this lint checks the *source* before the
/// artifact is ever produced.
///
/// The scanner is a deliberate text heuristic, not a compiler plugin: it
/// strips comments, applies per-rule regex patterns line by line, and
/// scopes each rule to the source paths where its contract holds. False
/// positives are expected occasionally and are silenced inline:
///
///     std::sort(rows.begin(), rows.end());   // order fixed below
///     for (auto& [k, v] : index) {           // srclint-ok: det-unordered-iter (sorted above)
///
/// A `// srclint-ok: <rule-id>` comment on the offending line or the
/// line directly above suppresses that rule there; anything after the id
/// (conventionally a parenthesized reason) is ignored. Rule catalogue
/// and scoping table: docs/linting.md.

#include <string>
#include <string_view>
#include <vector>

#include "ecohmem/check/diagnostic.hpp"
#include "ecohmem/common/expected.hpp"

namespace ecohmem::check {

/// Identity of one source rule (for --list-rules and id validation).
struct SrclintRuleInfo {
  std::string_view id;           ///< stable kebab-case id, e.g. "det-rand"
  std::string_view description;  ///< one-line contract statement
};

/// The built-in source rule set, in reporting order.
[[nodiscard]] const std::vector<SrclintRuleInfo>& srclint_rules();

/// True when `id` names a built-in source rule.
[[nodiscard]] bool is_srclint_rule(std::string_view id);

struct SrclintOptions {
  /// Rule ids to skip (the CLI's --disable). Ids are validated by the
  /// CLI before they get here; unknown ids are silently inert.
  std::vector<std::string> disabled_rules;

  /// Cap on findings reported per rule; excess findings are folded into
  /// one summary diagnostic. 0 = unlimited.
  std::size_t max_per_rule = 64;
};

struct SrclintResult {
  /// One finding per violating line; `artifact` is "<path>:<line>" with
  /// the path relative to the scanned root.
  std::vector<Diagnostic> diagnostics;
  std::size_t files_scanned = 0;
  std::vector<std::string> rules_run;      ///< enabled rules
  std::vector<std::string> rules_skipped;  ///< disabled rules

  [[nodiscard]] bool ok() const { return !has_errors(diagnostics); }
};

/// Scans the `src/` and `tools/` trees under `root` (whichever exist)
/// with every enabled rule. Files are visited in sorted relative-path
/// order, so output is deterministic — the lint holds itself to the
/// contract it enforces. Fails only when neither tree exists under
/// `root`; unreadable individual files become diagnostics.
[[nodiscard]] Expected<SrclintResult> srclint_scan_tree(const std::string& root,
                                                        const SrclintOptions& options = {});

}  // namespace ecohmem::check
