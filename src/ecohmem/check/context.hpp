#pragma once

/// \file context.hpp
/// The artifact bundle a lint run checks.
///
/// Every pointer is optional: rules declare which artifacts they need via
/// `Rule::applicable` and are skipped when an input is absent. The
/// context does not own the artifacts; the lint driver (lint.hpp) or the
/// embedding tool keeps them alive for the duration of the run.

#include <cstdint>
#include <string>
#include <vector>

#include "ecohmem/advisor/advisor_config.hpp"
#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/check/migration_log.hpp"
#include "ecohmem/check/sites_csv.hpp"
#include "ecohmem/common/config.hpp"
#include "ecohmem/flexmalloc/report_parser.hpp"
#include "ecohmem/learn/ranker.hpp"
#include "ecohmem/trace/salvage.hpp"
#include "ecohmem/trace/trace_file.hpp"

namespace ecohmem::check {

/// Raw view of a v3 trace's footer index, loaded *leniently* (trailer
/// magic and entry-span arithmetic only) so the trace-v3-index rule can
/// re-check every raw value and report all violations — the strict
/// reader (TraceReader / load_trace) stops at the first.
struct TraceIndexView {
  struct Entry {
    std::uint64_t offset = 0;      ///< absolute file offset of the block
    std::uint64_t count = 0;       ///< events in the block (compression flag masked off)
    std::uint64_t first_time = 0;  ///< timestamp of the block's first event
    bool compressed = false;       ///< kBlockCompressedFlag set on the raw count
    /// Block body starts with the compressed-block magic byte (peeked
    /// from the file; meaningful only when the span was readable).
    bool body_looks_compressed = false;
    /// Event count the compressed body header declares; valid only when
    /// `body_count_ok`. `body_error` carries the peek failure otherwise.
    std::uint64_t body_count = 0;
    bool body_count_ok = false;
    std::string body_error;
  };
  std::vector<Entry> entries;
  std::uint64_t events_offset = 0;       ///< first byte after the header
  std::uint64_t footer_offset = 0;       ///< first byte of the index footer
  std::uint64_t file_size = 0;           ///< total trace file size
  std::uint64_t header_event_count = 0;  ///< event count the header claims
};

struct CheckContext {
  /// Profile trace + the module table it was captured against.
  const trace::TraceBundle* bundle = nullptr;

  /// Analyzer output derived from `bundle` (set by the lint driver when
  /// the trace replays cleanly; absent when trace-level rules failed).
  const analyzer::AnalysisResult* analysis = nullptr;

  /// Analyzer site CSV export, re-parsed.
  const SiteCsv* sites = nullptr;

  /// Advisor placement report as FlexMalloc would parse it.
  const flexmalloc::ParsedReport* report = nullptr;

  /// Advisor configuration (tier capacities, coefficients).
  const advisor::AdvisorConfig* config = nullptr;

  /// Online placement policy INI, kept raw so the online-* rules can
  /// report every violation instead of stopping at the loader's first.
  const Config* online = nullptr;

  /// Ranking model (ecohmem-train output), for checking a learned-policy
  /// report's `# model = <hash>` stamp against the model it claims.
  const learn::Model* model = nullptr;

  /// Migration CSV (`ecohmem-run --migration-log`), for auditing the
  /// online policy's conservation identities and sub-range moves.
  const MigrationLog* migration_log = nullptr;

  /// v3 footer index of the trace file, raw (see TraceIndexView). Set
  /// even when the strict trace load failed on the index, so the
  /// trace-v3-index rule can still enumerate what is wrong with it.
  const TraceIndexView* trace_index = nullptr;

  /// Salvage manifest when `bundle` came from a salvage-mode read (the
  /// strict load failed and the lint driver fell back to salvage).
  /// Drives the trace-salvage-coverage rule; null for strict loads.
  const trace::SalvageManifest* salvage = nullptr;

  /// Minimum acceptable salvage coverage (fraction of declared events
  /// recovered) before trace-salvage-coverage reports an error rather
  /// than a warning. Copied from CheckOptions by the lint driver.
  double min_salvage_coverage = 0.9;

  /// Labels used in diagnostics (file paths when loaded from disk).
  std::string trace_name = "trace";
  std::string sites_name = "sites";
  std::string report_name = "report";
  std::string config_name = "config";
  std::string online_name = "online-policy";
  std::string model_name = "model";
  std::string migration_log_name = "migration-log";
};

}  // namespace ecohmem::check
