#pragma once

/// \file context.hpp
/// The artifact bundle a lint run checks.
///
/// Every pointer is optional: rules declare which artifacts they need via
/// `Rule::applicable` and are skipped when an input is absent. The
/// context does not own the artifacts; the lint driver (lint.hpp) or the
/// embedding tool keeps them alive for the duration of the run.

#include <string>

#include "ecohmem/advisor/advisor_config.hpp"
#include "ecohmem/analyzer/aggregator.hpp"
#include "ecohmem/check/sites_csv.hpp"
#include "ecohmem/common/config.hpp"
#include "ecohmem/flexmalloc/report_parser.hpp"
#include "ecohmem/trace/trace_file.hpp"

namespace ecohmem::check {

struct CheckContext {
  /// Profile trace + the module table it was captured against.
  const trace::TraceBundle* bundle = nullptr;

  /// Analyzer output derived from `bundle` (set by the lint driver when
  /// the trace replays cleanly; absent when trace-level rules failed).
  const analyzer::AnalysisResult* analysis = nullptr;

  /// Analyzer site CSV export, re-parsed.
  const SiteCsv* sites = nullptr;

  /// Advisor placement report as FlexMalloc would parse it.
  const flexmalloc::ParsedReport* report = nullptr;

  /// Advisor configuration (tier capacities, coefficients).
  const advisor::AdvisorConfig* config = nullptr;

  /// Online placement policy INI, kept raw so the online-* rules can
  /// report every violation instead of stopping at the loader's first.
  const Config* online = nullptr;

  /// Labels used in diagnostics (file paths when loaded from disk).
  std::string trace_name = "trace";
  std::string sites_name = "sites";
  std::string report_name = "report";
  std::string config_name = "config";
  std::string online_name = "online-policy";
};

}  // namespace ecohmem::check
