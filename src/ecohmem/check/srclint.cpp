#include "ecohmem/check/srclint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace ecohmem::check {

namespace {

namespace fs = std::filesystem;

/// One source rule: a regex over comment-stripped lines, scoped to path
/// prefixes where the contract applies, with sanctioned prefixes where
/// the banned construct is the implementation itself (e.g. the ranked
/// wrappers own a raw std::mutex; this file owns the pattern strings).
struct SourceRule {
  std::string_view id;
  std::string_view description;
  std::string_view message;                     ///< finding text (token appended)
  std::vector<std::string_view> scope;          ///< relative-path prefixes checked
  std::vector<std::string_view> sanctioned;     ///< relative-path prefixes exempt
  std::regex pattern;
};

const std::vector<SourceRule>& source_rules() {
  static const std::vector<SourceRule> rules = [] {
    std::vector<SourceRule> r;
    r.push_back(SourceRule{
        "det-rand",
        "no nondeterministic random sources outside common/rng (use ecohmem::Rng)",
        "nondeterministic random source; draw from an explicitly seeded ecohmem::Rng",
        {"src/", "tools/"},
        {"src/ecohmem/common/rng", "src/ecohmem/check/srclint"},
        std::regex(R"((std\s*::\s*random_device)|(\b[sd]?rand\s*\()|(\b[dlm]rand48\b)|(std\s*::\s*(mt19937|minstd_rand|default_random_engine)))")});
    r.push_back(SourceRule{
        "det-wallclock",
        "no wall-clock reads in pipeline code (simulated time only)",
        "wall-clock read; pipeline timestamps must come from the simulated clock",
        {"src/", "tools/"},
        {"src/ecohmem/check/srclint"},
        std::regex(R"((\b(system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b)|(\bgettimeofday\s*\()|(\bclock_gettime\s*\()|(\btime\s*\(\s*(nullptr|NULL|0)?\s*\)))")});
    r.push_back(SourceRule{
        "det-unordered-iter",
        "no iteration over unordered containers in codec/analyzer/report paths "
        "(order leaks into serialized output)",
        "iterating an unordered container declared in this file; serialized output "
        "must not depend on hash order — sort first, or suppress with a reason",
        {"src/ecohmem/trace/", "src/ecohmem/analyzer/", "src/ecohmem/advisor/"},
        {"src/ecohmem/check/srclint"},
        // The iteration regex; the per-file declaration pass is separate.
        std::regex(R"(for\s*\(.*:\s*([^)]+)\))")});
    r.push_back(SourceRule{
        "conc-raw-mutex",
        "no raw std::mutex/std::shared_mutex in library code (use the ranked "
        "lockdep wrappers, docs/threading.md)",
        "raw standard mutex/CV; use common::RankedMutex / RankedSharedMutex / "
        "condition_variable_any so lock ranks and lockdep apply",
        {"src/"},
        {"src/ecohmem/common/lockdep", "src/ecohmem/check/srclint"},
        std::regex(R"(std\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_timed_mutex|condition_variable)\b)")});
    return r;
  }();
  return rules;
}

[[nodiscard]] bool path_has_prefix(const std::string& rel,
                                   const std::vector<std::string_view>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&rel](std::string_view p) { return rel.rfind(p, 0) == 0; });
}

/// Strips `//` and `/* */` comments; `in_block` carries block-comment
/// state across lines. String literals are not parsed — rules whose
/// tokens appear in literals sanction their own paths instead.
std::string strip_comments(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size();) {
    if (in_block) {
      if (line.compare(i, 2, "*/") == 0) {
        in_block = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    if (line.compare(i, 2, "//") == 0) break;
    if (line.compare(i, 2, "/*") == 0) {
      in_block = true;
      i += 2;
      continue;
    }
    out.push_back(line[i]);
    ++i;
  }
  return out;
}

/// True when the raw line carries a `srclint-ok:` suppression naming
/// `rule_id` (ids after the colon, separated by commas/spaces, reason
/// text in parentheses ignored).
bool has_suppression(const std::string& raw, std::string_view rule_id) {
  const std::size_t at = raw.find("srclint-ok:");
  if (at == std::string::npos) return false;
  std::size_t i = at + std::string_view("srclint-ok:").size();
  while (i < raw.size()) {
    while (i < raw.size() && (raw[i] == ' ' || raw[i] == ',')) ++i;
    if (i >= raw.size() || raw[i] == '(') break;  // reason text begins
    std::size_t j = i;
    while (j < raw.size() && (std::isalnum(static_cast<unsigned char>(raw[j])) || raw[j] == '-')) {
      ++j;
    }
    if (j == i) break;
    if (std::string_view(raw).substr(i, j - i) == rule_id) return true;
    i = j;
  }
  return false;
}

/// Names declared as unordered containers in this file (a line-local
/// heuristic: single-line declarations only, which matches the
/// project's style for container members and locals).
std::vector<std::string> unordered_names(const std::vector<std::string>& stripped) {
  static const std::regex decl(
      R"(unordered_(?:map|set|multimap|multiset)\s*<.*>\s*&?\s*([A-Za-z_]\w*)\s*(?:;|=|\{|ECOHMEM_GUARDED_BY))");
  std::vector<std::string> names;
  for (const auto& line : stripped) {
    std::smatch m;
    if (std::regex_search(line, m, decl)) names.push_back(m[1].str());
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

/// Final identifier of a range expression: `shard.sites` -> "sites",
/// `sites` -> "sites", `f(x)` -> "" (calls produce fresh sequences the
/// declaration pass cannot vouch for, so they are not flagged).
std::string trailing_identifier(std::string expr) {
  while (!expr.empty() && std::isspace(static_cast<unsigned char>(expr.back()))) expr.pop_back();
  std::size_t i = expr.size();
  while (i > 0) {
    const char c = expr[i - 1];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      --i;
    } else {
      break;
    }
  }
  return expr.substr(i);
}

struct ScanState {
  const SrclintOptions& options;
  std::vector<Diagnostic> diagnostics;
  // Per-rule finding counts for the max_per_rule cap.
  std::vector<std::size_t> counts = std::vector<std::size_t>(source_rules().size(), 0);
};

void report(ScanState& state, std::size_t rule_index, const std::string& rel, std::size_t line_no,
            const std::string& detail) {
  const SourceRule& rule = source_rules()[rule_index];
  std::size_t& count = ++state.counts[rule_index];
  if (state.options.max_per_rule > 0 && count > state.options.max_per_rule) return;
  std::string message(rule.message);
  if (!detail.empty()) message += ": " + detail;
  state.diagnostics.push_back(
      error(std::string(rule.id), rel + ":" + std::to_string(line_no), std::move(message)));
}

void scan_file(ScanState& state, const fs::path& path, const std::string& rel,
               const std::vector<bool>& enabled) {
  std::ifstream in(path);
  if (!in) {
    state.diagnostics.push_back(error("srclint-io", rel, "cannot open file"));
    return;
  }
  std::vector<std::string> raw;
  for (std::string line; std::getline(in, line);) raw.push_back(std::move(line));

  std::vector<std::string> stripped;
  stripped.reserve(raw.size());
  bool in_block = false;
  for (const auto& line : raw) stripped.push_back(strip_comments(line, in_block));

  const auto& rules = source_rules();
  std::vector<std::string> iter_names;  // lazily built for det-unordered-iter
  bool iter_names_built = false;

  for (std::size_t ri = 0; ri < rules.size(); ++ri) {
    const SourceRule& rule = rules[ri];
    if (!enabled[ri]) continue;
    if (!path_has_prefix(rel, rule.scope) || path_has_prefix(rel, rule.sanctioned)) continue;

    const bool is_iter_rule = rule.id == "det-unordered-iter";
    if (is_iter_rule && !iter_names_built) {
      iter_names = unordered_names(stripped);
      iter_names_built = true;
    }
    if (is_iter_rule && iter_names.empty()) continue;

    for (std::size_t li = 0; li < stripped.size(); ++li) {
      std::smatch m;
      if (!std::regex_search(stripped[li], m, rule.pattern)) continue;
      std::string detail = m.str(0);
      if (is_iter_rule) {
        const std::string name = trailing_identifier(m[1].str());
        if (name.empty() ||
            !std::binary_search(iter_names.begin(), iter_names.end(), name)) {
          continue;
        }
        detail = "range-for over '" + name + "'";
      }
      if (has_suppression(raw[li], rule.id)) continue;
      if (li > 0 && has_suppression(raw[li - 1], rule.id)) continue;
      report(state, ri, rel, li + 1, detail);
    }
  }
}

}  // namespace

const std::vector<SrclintRuleInfo>& srclint_rules() {
  static const std::vector<SrclintRuleInfo> infos = [] {
    std::vector<SrclintRuleInfo> out;
    for (const auto& rule : source_rules()) out.push_back({rule.id, rule.description});
    return out;
  }();
  return infos;
}

bool is_srclint_rule(std::string_view id) {
  return std::any_of(source_rules().begin(), source_rules().end(),
                     [id](const SourceRule& r) { return r.id == id; });
}

Expected<SrclintResult> srclint_scan_tree(const std::string& root, const SrclintOptions& options) {
  const fs::path base(root.empty() ? "." : root);
  std::vector<fs::path> trees;
  for (const char* sub : {"src", "tools"}) {
    std::error_code ec;
    if (fs::is_directory(base / sub, ec)) trees.push_back(base / sub);
  }
  if (trees.empty()) {
    return unexpected("no src/ or tools/ tree under '" + base.string() + "'");
  }

  // Collect candidate files as (relative path, absolute path), sorted by
  // relative path so findings are stable across filesystems.
  std::vector<std::pair<std::string, fs::path>> files;
  for (const auto& tree : trees) {
    std::error_code ec;
    for (fs::recursive_directory_iterator it(tree, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const fs::path& p = it->path();
      const std::string ext = p.extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
      files.emplace_back(fs::relative(p, base, ec).generic_string(), p);
    }
  }
  std::sort(files.begin(), files.end());

  const auto& rules = source_rules();
  std::vector<bool> enabled(rules.size(), true);
  SrclintResult result;
  for (std::size_t ri = 0; ri < rules.size(); ++ri) {
    const bool off = std::any_of(options.disabled_rules.begin(), options.disabled_rules.end(),
                                 [&](const std::string& d) { return d == rules[ri].id; });
    enabled[ri] = !off;
    (off ? result.rules_skipped : result.rules_run).emplace_back(rules[ri].id);
  }

  ScanState state{options, {}, std::vector<std::size_t>(rules.size(), 0)};
  for (const auto& [rel, abs] : files) {
    scan_file(state, abs, rel, enabled);
    ++result.files_scanned;
  }

  // Fold capped findings into one summary per rule, mirroring run_all.
  for (std::size_t ri = 0; ri < rules.size(); ++ri) {
    if (options.max_per_rule > 0 && state.counts[ri] > options.max_per_rule) {
      const std::size_t dropped = state.counts[ri] - options.max_per_rule;
      state.diagnostics.push_back(error(std::string(rules[ri].id), "srclint",
                                        "... " + std::to_string(dropped) +
                                            " further findings of this rule suppressed"));
    }
  }
  result.diagnostics = std::move(state.diagnostics);
  return result;
}

}  // namespace ecohmem::check
