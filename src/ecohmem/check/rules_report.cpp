/// \file rules_report.cpp
/// Advisor-soundness and runtime-drift rules: the placement map handed to
/// FlexMalloc must respect the configured tier capacities, name only
/// declared tiers, keep the §VII bandwidth-aware moves inside the
/// DRAM/PMEM classes, and reference only sites that exist in the trace it
/// was derived from — the "silent profile/placement drift" failure mode.

#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ecohmem/advisor/knapsack.hpp"
#include "ecohmem/bom/format.hpp"
#include "ecohmem/check/rule.hpp"
#include "ecohmem/common/strings.hpp"
#include "ecohmem/learn/model.hpp"

namespace ecohmem::check::rules {

namespace {

class NamedRule : public Rule {
 public:
  NamedRule(std::string_view id, std::string_view description)
      : id_(id), description_(description) {}

  [[nodiscard]] std::string_view id() const final { return id_; }
  [[nodiscard]] std::string_view description() const final { return description_; }

 protected:
  std::string_view id_;
  std::string_view description_;
};

/// BOM rendering that tolerates module ids outside `modules` (a report
/// parsed against a different table must not crash its own linter).
std::string render_stack(const bom::CallStack& cs, const bom::ModuleTable* modules) {
  std::string out;
  for (std::size_t i = 0; i < cs.frames.size(); ++i) {
    if (i > 0) out += bom::kFrameSeparator;
    const bom::Frame& f = cs.frames[i];
    if (modules != nullptr && f.module < modules->size()) {
      out += modules->module(f.module).name;
    } else {
      out += "module#" + std::to_string(f.module);
    }
    out += "!" + strings::to_hex(f.offset);
  }
  return out;
}

/// A stable text key for a report entry's stack (BOM or human-readable).
std::string entry_key(const flexmalloc::ReportEntry& entry) {
  if (const auto* hs = std::get_if<bom::HumanStack>(&entry.stack)) {
    return bom::format_human(*hs);
  }
  // BOM stacks render module ids directly; entries came from one report,
  // so equal stacks produce equal keys.
  return render_stack(std::get<bom::CallStack>(entry.stack), nullptr);
}

class ConfigCoefficientsRule final : public NamedRule {
 public:
  ConfigCoefficientsRule()
      : NamedRule("config-coefficients",
                  "tier coefficients must be finite and non-negative, limits positive") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.config != nullptr;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    for (const auto& tier : ctx.config->tiers) {
      const auto bad_coef = [](double c) { return !std::isfinite(c) || c < 0.0; };
      if (bad_coef(tier.load_coef)) {
        out.push_back(error(std::string(id_), ctx.config_name,
                            "tier '" + tier.name + "': load_coef " +
                                std::to_string(tier.load_coef) +
                                " is not a finite non-negative number"));
      }
      if (bad_coef(tier.store_coef)) {
        out.push_back(error(std::string(id_), ctx.config_name,
                            "tier '" + tier.name + "': store_coef " +
                                std::to_string(tier.store_coef) +
                                " is not a finite non-negative number"));
      }
      if (tier.limit == 0) {
        out.push_back(error(std::string(id_), ctx.config_name,
                            "tier '" + tier.name + "' has a zero capacity limit"));
      }
    }
    return out;
  }
};

class ReportCapacityRule final : public NamedRule {
 public:
  ReportCapacityRule()
      : NamedRule("report-capacity",
                  "per-tier footprint charges must not exceed the configured limit") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.report != nullptr && ctx.config != nullptr;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    std::unordered_map<std::string, Bytes> charged;
    for (const auto& entry : ctx.report->entries) {
      Bytes& used = charged[entry.tier];
      // Saturate instead of wrapping: a hostile report must not overflow
      // the accounting it is being checked against.
      used = entry.size > std::numeric_limits<Bytes>::max() - used
                 ? std::numeric_limits<Bytes>::max()
                 : used + entry.size;
    }
    for (const auto& tier : ctx.config->tiers) {
      const auto it = charged.find(tier.name);
      if (it == charged.end()) continue;
      if (it->second > tier.limit) {
        out.push_back(error(std::string(id_), ctx.report_name,
                            "tier '" + tier.name + "' over-committed: " +
                                strings::format_bytes(it->second) + " charged against a " +
                                strings::format_bytes(tier.limit) + " limit"));
      }
    }
    return out;
  }
};

class ReportUnknownTierRule final : public NamedRule {
 public:
  ReportUnknownTierRule()
      : NamedRule("report-unknown-tier",
                  "every tier named by the report must be declared in the config") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.report != nullptr && ctx.config != nullptr;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    std::unordered_map<std::string, std::size_t> unknown;  // tier -> entry count
    for (const auto& entry : ctx.report->entries) {
      if (ctx.config->find(entry.tier) == nullptr) ++unknown[entry.tier];
    }
    for (const auto& [tier, count] : unknown) {
      out.push_back(error(std::string(id_), ctx.report_name,
                          std::to_string(count) + " entries placed on tier '" + tier +
                              "' which is not declared in " + ctx.config_name));
    }
    if (!ctx.report->fallback_tier.empty() &&
        ctx.config->find(ctx.report->fallback_tier) == nullptr) {
      out.push_back(error(std::string(id_), ctx.report_name,
                          "fallback tier '" + ctx.report->fallback_tier +
                              "' is not declared in " + ctx.config_name));
    }
    return out;
  }
};

class ReportFallbackRule final : public NamedRule {
 public:
  ReportFallbackRule()
      : NamedRule("report-fallback",
                  "the report must declare a fallback tier for unplaced sites") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.report != nullptr;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    if (!ctx.report->fallback_tier.empty()) return {};
    return {warning(std::string(id_), ctx.report_name,
                    "no '# fallback = <tier>' header: sites missing from the report have no "
                    "defined destination at runtime")};
  }
};

class ReportDuplicateEntryRule final : public NamedRule {
 public:
  ReportDuplicateEntryRule()
      : NamedRule("report-duplicate-entry",
                  "a call stack must not be listed twice (ambiguous matching)") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.report != nullptr;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    std::unordered_map<std::string, const flexmalloc::ReportEntry*> seen;
    for (const auto& entry : ctx.report->entries) {
      const auto [it, inserted] = seen.try_emplace(entry_key(entry), &entry);
      if (inserted) continue;
      if (it->second->tier != entry.tier) {
        out.push_back(error(std::string(id_), ctx.report_name,
                            "call stack listed twice with conflicting tiers '" +
                                it->second->tier + "' and '" + entry.tier +
                                "' (FlexMalloc matching would be ambiguous)"));
      } else {
        out.push_back(warning(std::string(id_), ctx.report_name,
                              "call stack listed twice on tier '" + entry.tier +
                                  "' (redundant entry)"));
      }
    }
    return out;
  }
};

class ReportSiteInTraceRule final : public NamedRule {
 public:
  ReportSiteInTraceRule()
      : NamedRule("report-site-in-trace",
                  "every placed site must exist in the trace it was derived from") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.bundle != nullptr && ctx.report != nullptr && ctx.report->is_bom;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const trace::StackTable& stacks = ctx.bundle->trace.stacks;
    std::unordered_set<bom::CallStack, bom::CallStackHash> known;
    known.reserve(stacks.size());
    for (trace::StackId id = 0; id < stacks.size(); ++id) known.insert(stacks.stack(id));

    for (const auto& entry : ctx.report->entries) {
      const auto* cs = std::get_if<bom::CallStack>(&entry.stack);
      if (cs == nullptr || known.contains(*cs)) continue;
      out.push_back(error(std::string(id_), ctx.report_name,
                          "placed site " + render_stack(*cs, &ctx.bundle->modules) +
                              " does not exist in " + ctx.trace_name +
                              " (dangling placement: the profile and report drifted apart)"));
    }
    return out;
  }
};

class ReportBwClassesRule final : public NamedRule {
 public:
  ReportBwClassesRule()
      : NamedRule("report-bw-classes",
                  "placement moves vs the base (density) placement must stay inside the "
                  "DRAM/PMEM classes of the §VII bandwidth-aware pass") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    return ctx.analysis != nullptr && ctx.config != nullptr && ctx.report != nullptr &&
           ctx.report->is_bom && ctx.config->tiers.size() >= 2;
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const auto base = advisor::place_by_density(ctx.analysis->sites, *ctx.config);
    if (!base) {
      return {warning(std::string(id_), ctx.config_name,
                      "cannot recompute the base placement: " + base.error())};
    }

    std::unordered_map<bom::CallStack, const std::string*, bom::CallStackHash> base_tier;
    base_tier.reserve(base->decisions.size());
    for (const auto& d : base->decisions) base_tier.emplace(d.callstack, &d.tier);

    // The bandwidth-aware post-pass (Algorithm 1) only ever exchanges
    // objects between the fastest tier and the fallback tier.
    const std::string& dram_class = ctx.config->tiers.front().name;
    const std::string& pmem_class = ctx.config->fallback_tier().name;
    const auto in_classes = [&](const std::string& tier) {
      return tier == dram_class || tier == pmem_class;
    };

    for (const auto& entry : ctx.report->entries) {
      const auto* cs = std::get_if<bom::CallStack>(&entry.stack);
      if (cs == nullptr) continue;
      const auto it = base_tier.find(*cs);
      if (it == base_tier.end()) continue;  // report-site-in-trace's finding
      const std::string& from = *it->second;
      if (entry.tier == from) continue;
      if (!in_classes(from) || !in_classes(entry.tier)) {
        const std::string site =
            render_stack(*cs, ctx.bundle != nullptr ? &ctx.bundle->modules : nullptr);
        out.push_back(error(std::string(id_), ctx.report_name,
                            "site " + site + " moved '" + from + "' -> '" + entry.tier +
                                "' which leaves the " + dram_class + "/" + pmem_class +
                                " classes the bandwidth-aware pass is allowed to exchange"));
      }
    }
    return out;
  }
};

class AdvisorPolicyModelRule final : public NamedRule {
 public:
  AdvisorPolicyModelRule()
      : NamedRule("advisor-policy-model",
                  "a learned-policy report's '# model = <hash>' stamp must name the "
                  "ranking model it was produced with") {}

  [[nodiscard]] bool applicable(const CheckContext& ctx) const override {
    // Something to check: a stamped report, or a model to check one against.
    return (ctx.report != nullptr && !ctx.report->model_stamp.empty()) ||
           (ctx.report != nullptr && ctx.model != nullptr);
  }

  [[nodiscard]] std::vector<Diagnostic> run(const CheckContext& ctx) const override {
    std::vector<Diagnostic> out;
    const std::string& stamp = ctx.report->model_stamp;

    if (!stamp.empty() && !well_formed(stamp)) {
      out.push_back(error(std::string(id_), ctx.report_name,
                          "malformed model stamp '" + stamp +
                              "' (expected 0x<hex>, the content hash ecohmem-advisor "
                              "--policy learned writes)"));
      return out;
    }

    if (ctx.model == nullptr) {
      // Stamp present, nothing to compare against: not a defect, but the
      // stamp is unverified — say so for CI logs.
      out.push_back(info(std::string(id_), ctx.report_name,
                         "model stamp " + stamp +
                             " cannot be verified (re-run with --model <model.ehm>)"));
      return out;
    }

    const std::string expected = learn::model_content_hash(*ctx.model);
    if (stamp.empty()) {
      // A model was supplied but the report carries no stamp: the report
      // came from the greedy policy (or a pre-learned advisor) and does
      // not belong to this model.
      out.push_back(warning(std::string(id_), ctx.report_name,
                            "report has no model stamp; it was not produced by "
                            "--policy learned with " + ctx.model_name +
                                " (expected stamp " + expected + ")"));
    } else if (stamp != expected) {
      out.push_back(error(std::string(id_), ctx.report_name,
                          "model stamp " + stamp + " does not match " + ctx.model_name +
                              " (content hash " + expected +
                              "); the report was produced with a different model"));
    }
    return out;
  }

 private:
  static bool well_formed(const std::string& stamp) {
    if (stamp.size() <= 2 || stamp.size() > 18) return false;
    if (stamp[0] != '0' || stamp[1] != 'x') return false;
    for (std::size_t i = 2; i < stamp.size(); ++i) {
      const char c = stamp[i];
      const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
      if (!hex) return false;
    }
    return true;
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> report_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<ConfigCoefficientsRule>());
  rules.push_back(std::make_unique<ReportCapacityRule>());
  rules.push_back(std::make_unique<ReportUnknownTierRule>());
  rules.push_back(std::make_unique<ReportFallbackRule>());
  rules.push_back(std::make_unique<ReportDuplicateEntryRule>());
  rules.push_back(std::make_unique<ReportSiteInTraceRule>());
  rules.push_back(std::make_unique<ReportBwClassesRule>());
  rules.push_back(std::make_unique<AdvisorPolicyModelRule>());
  return rules;
}

}  // namespace ecohmem::check::rules
