#include "ecohmem/check/migration_log.hpp"

#include <fstream>
#include <sstream>

#include "ecohmem/common/strings.hpp"

namespace ecohmem::check {

namespace {

constexpr std::string_view kExpectedHeader = "at_ns,object,from_tier,to_tier,bytes,offset,partial";
constexpr std::size_t kColumns = 7;

Expected<std::uint64_t> row_u64(const std::string& field, std::string_view name,
                                std::size_t line_no) {
  auto v = strings::parse_u64(field);
  if (!v) {
    return unexpected("line " + std::to_string(line_no) + ": bad " + std::string(name) + ": " +
                      v.error());
  }
  return *v;
}

}  // namespace

Expected<MigrationLog> parse_migration_log(std::string_view text) {
  MigrationLog log;
  std::size_t line_no = 0;
  std::size_t start = 0;
  bool saw_header = false;

  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    std::string_view raw =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;

    const std::string_view line = strings::trim(raw);
    if (line.empty()) continue;

    if (line.front() == '#') {
      std::string_view body = strings::trim(line.substr(1));
      if (body.rfind("summary", 0) != 0) continue;
      log.has_summary = true;
      std::istringstream kv{std::string(strings::trim(body.substr(7)))};
      std::string tok;
      while (kv >> tok) {
        const std::size_t eq = tok.find('=');
        if (eq == std::string::npos) {
          return unexpected("line " + std::to_string(line_no) + ": bad summary field " + tok);
        }
        const std::string key = tok.substr(0, eq);
        const auto v = strings::parse_u64(tok.substr(eq + 1));
        if (!v) {
          return unexpected("line " + std::to_string(line_no) + ": bad summary field " + tok);
        }
        if (key == "scheduled") log.scheduled = *v;
        else if (key == "applied") log.applied = *v;
        else if (key == "partial") log.partial_moves = *v;
        else if (key == "cancelled") log.cancelled = *v;
        else if (key == "migrated_bytes") log.migrated_bytes = *v;
        else {
          return unexpected("line " + std::to_string(line_no) + ": unknown summary field '" +
                            key + "'");
        }
      }
      continue;
    }

    if (!saw_header) {
      if (line != kExpectedHeader) {
        return unexpected("line " + std::to_string(line_no) +
                          ": unexpected migration log header (column layout changed?)");
      }
      saw_header = true;
      continue;
    }

    std::vector<std::string_view> fields;
    std::size_t pos = 0;
    while (pos <= line.size()) {
      const std::size_t comma = line.find(',', pos);
      if (comma == std::string_view::npos) {
        fields.push_back(strings::trim(line.substr(pos)));
        break;
      }
      fields.push_back(strings::trim(line.substr(pos, comma - pos)));
      pos = comma + 1;
    }
    if (fields.size() != kColumns) {
      return unexpected("line " + std::to_string(line_no) + ": expected " +
                        std::to_string(kColumns) + " columns, got " +
                        std::to_string(fields.size()));
    }

    MigrationLogRow row;
    row.line = line_no;
    struct U64Field {
      std::size_t index;
      std::string_view name;
    };
    static constexpr U64Field kFields[] = {{0, "at_ns"},     {1, "object"}, {2, "from_tier"},
                                           {3, "to_tier"},   {4, "bytes"},  {5, "offset"}};
    std::uint64_t values[6] = {};
    for (const auto& f : kFields) {
      const auto v = row_u64(std::string(fields[f.index]), f.name, line_no);
      if (!v) return unexpected(v.error());
      values[f.index] = *v;
    }
    row.at = static_cast<Ns>(values[0]);
    row.object = static_cast<std::size_t>(values[1]);
    row.from_tier = static_cast<std::size_t>(values[2]);
    row.to_tier = static_cast<std::size_t>(values[3]);
    row.bytes = values[4];
    row.offset = values[5];
    if (fields[6] != "0" && fields[6] != "1") {
      return unexpected("line " + std::to_string(line_no) + ": partial must be 0 or 1, got '" +
                        std::string(fields[6]) + "'");
    }
    row.partial = fields[6] == "1";
    log.rows.push_back(row);
  }

  if (!saw_header) return unexpected("empty migration log (no header row)");
  return log;
}

Expected<MigrationLog> load_migration_log(const std::string& path) {
  std::ifstream in(path);
  if (!in) return unexpected("cannot open migration log: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_migration_log(ss.str());
}

}  // namespace ecohmem::check
