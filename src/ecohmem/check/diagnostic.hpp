#pragma once

/// \file diagnostic.hpp
/// Findings emitted by the ecohmem-lint rules.
///
/// The pipeline's offline artifacts — profile traces, analyzer site
/// reports, advisor placement maps/configs, flexmalloc runtime reports —
/// are produced by loosely-coupled stages. A `Diagnostic` records one
/// cross-artifact inconsistency found by a `Rule` (see rule.hpp), with
/// enough context to locate it: the rule id, a severity, the artifact it
/// was found in, and a human-readable message.

#include <iosfwd>
#include <string>
#include <vector>

namespace ecohmem::check {

/// How bad a finding is. `kError` findings make `ecohmem-lint` exit
/// non-zero (and fail CI); `kWarning` findings are reported but do not
/// fail the run; `kInfo` records skipped checks and context.
enum class Severity { kInfo, kWarning, kError };

[[nodiscard]] std::string to_string(Severity severity);

/// One finding of one rule.
struct Diagnostic {
  std::string rule;      ///< id of the rule that fired (e.g. "trace-alloc-pairing")
  Severity severity = Severity::kWarning;
  std::string artifact;  ///< which input it was found in (label or path)
  std::string message;   ///< what is wrong, with identifying detail
};

/// Convenience constructors.
[[nodiscard]] Diagnostic error(std::string rule, std::string artifact, std::string message);
[[nodiscard]] Diagnostic warning(std::string rule, std::string artifact, std::string message);
[[nodiscard]] Diagnostic info(std::string rule, std::string artifact, std::string message);

/// True if any diagnostic has error severity.
[[nodiscard]] bool has_errors(const std::vector<Diagnostic>& diagnostics);

/// Counts diagnostics of the given severity.
[[nodiscard]] std::size_t count_severity(const std::vector<Diagnostic>& diagnostics,
                                         Severity severity);

/// Human-readable rendering, one line per diagnostic:
///   `error: [report-capacity] report.txt: tier 'dram' over-committed ...`
void write_text(std::ostream& out, const std::vector<Diagnostic>& diagnostics);

/// Machine-readable rendering: a JSON array of objects with keys
/// `rule`, `severity`, `artifact`, `message`.
void write_json(std::ostream& out, const std::vector<Diagnostic>& diagnostics);

}  // namespace ecohmem::check
