#pragma once

/// \file migration_log.hpp
/// Re-reads the migration CSV `ecohmem-run --migration-log` writes so the
/// checker can validate the online policy's run against its counter
/// identities (docs/online.md): every applied move appears as one row
/// (with its sub-range offset for page-granular partial moves), and the
/// trailing `# summary` comment restates the RunMetrics counters the rows
/// must reproduce — applied row count, partial row count, byte total, and
/// `scheduled == applied + cancelled`.
///
/// Parsing is strict: a row with the wrong column count or an unparseable
/// numeric field is an error carrying the 1-based line number. The
/// invariant checks live in the migration-* rules (rules_migration.cpp),
/// not here.

#include <string>
#include <vector>

#include "ecohmem/common/expected.hpp"
#include "ecohmem/common/units.hpp"

namespace ecohmem::check {

/// One applied migration (a CSV data row).
struct MigrationLogRow {
  std::size_t line = 0;  ///< 1-based line number in the CSV
  Ns at = 0;             ///< simulated start time of the copy
  std::size_t object = 0;
  std::size_t from_tier = 0;
  std::size_t to_tier = 0;
  Bytes bytes = 0;   ///< bytes moved (the range length for partial moves)
  Bytes offset = 0;  ///< start of the moved range within the object
  bool partial = false;
};

struct MigrationLog {
  std::vector<MigrationLogRow> rows;

  /// From the trailing "# summary ..." comment. A log without one is
  /// truncated output; the migration-summary rule reports it.
  bool has_summary = false;
  std::uint64_t scheduled = 0;
  std::uint64_t applied = 0;
  std::uint64_t partial_moves = 0;
  std::uint64_t cancelled = 0;
  Bytes migrated_bytes = 0;
};

/// Parses migration-log text. Fails with a line number on a malformed
/// header, row shape, or numeric field.
[[nodiscard]] Expected<MigrationLog> parse_migration_log(std::string_view text);

/// Reads and parses a migration-log file.
[[nodiscard]] Expected<MigrationLog> load_migration_log(const std::string& path);

}  // namespace ecohmem::check
