#include "ecohmem/check/diagnostic.hpp"

#include <ostream>

namespace ecohmem::check {

std::string to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

Diagnostic error(std::string rule, std::string artifact, std::string message) {
  return Diagnostic{std::move(rule), Severity::kError, std::move(artifact), std::move(message)};
}

Diagnostic warning(std::string rule, std::string artifact, std::string message) {
  return Diagnostic{std::move(rule), Severity::kWarning, std::move(artifact), std::move(message)};
}

Diagnostic info(std::string rule, std::string artifact, std::string message) {
  return Diagnostic{std::move(rule), Severity::kInfo, std::move(artifact), std::move(message)};
}

bool has_errors(const std::vector<Diagnostic>& diagnostics) {
  return count_severity(diagnostics, Severity::kError) > 0;
}

std::size_t count_severity(const std::vector<Diagnostic>& diagnostics, Severity severity) {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

void write_text(std::ostream& out, const std::vector<Diagnostic>& diagnostics) {
  for (const auto& d : diagnostics) {
    out << to_string(d.severity) << ": [" << d.rule << "] " << d.artifact << ": " << d.message
        << '\n';
  }
}

namespace {

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void write_json(std::ostream& out, const std::vector<Diagnostic>& diagnostics) {
  out << "[\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out << "  {\"rule\": ";
    write_json_string(out, d.rule);
    out << ", \"severity\": ";
    write_json_string(out, to_string(d.severity));
    out << ", \"artifact\": ";
    write_json_string(out, d.artifact);
    out << ", \"message\": ";
    write_json_string(out, d.message);
    out << '}' << (i + 1 < diagnostics.size() ? "," : "") << '\n';
  }
  out << "]\n";
}

}  // namespace ecohmem::check
