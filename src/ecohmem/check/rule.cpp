#include "ecohmem/check/rule.hpp"

#include <algorithm>

namespace ecohmem::check {

RuleRegistry RuleRegistry::builtin() {
  RuleRegistry registry;
  for (auto&& factory : {rules::trace_rules, rules::sites_rules, rules::report_rules,
                         rules::online_rules, rules::migration_rules}) {
    for (auto& rule : factory()) registry.add(std::move(rule));
  }
  return registry;
}

const Rule* RuleRegistry::find(std::string_view id) const {
  for (const auto& rule : rules_) {
    if (rule->id() == id) return rule.get();
  }
  return nullptr;
}

RunResult RuleRegistry::run_all(const CheckContext& ctx, const CheckOptions& options) const {
  RunResult result;
  const auto disabled = [&options](std::string_view id) {
    return std::any_of(options.disabled_rules.begin(), options.disabled_rules.end(),
                       [id](const std::string& d) { return d == id; });
  };

  for (const auto& rule : rules_) {
    const std::string id(rule->id());
    if (disabled(rule->id()) || !rule->applicable(ctx)) {
      result.rules_skipped.push_back(id);
      continue;
    }
    result.rules_run.push_back(id);

    std::vector<Diagnostic> found = rule->run(ctx);
    if (options.max_per_rule > 0 && found.size() > options.max_per_rule) {
      const std::size_t dropped = found.size() - options.max_per_rule;
      // Keep the worst findings when truncating.
      std::stable_sort(found.begin(), found.end(), [](const Diagnostic& a, const Diagnostic& b) {
        return static_cast<int>(a.severity) > static_cast<int>(b.severity);
      });
      const Severity worst_dropped = found[options.max_per_rule].severity;
      found.resize(options.max_per_rule);
      found.push_back(Diagnostic{id, worst_dropped, "lint",
                                 "... " + std::to_string(dropped) +
                                     " further findings of this rule suppressed"});
    }
    for (auto& d : found) result.diagnostics.push_back(std::move(d));
  }
  return result;
}

}  // namespace ecohmem::check
