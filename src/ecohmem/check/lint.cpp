#include "ecohmem/check/lint.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "ecohmem/common/strings.hpp"
#include "ecohmem/learn/model.hpp"
#include "ecohmem/trace/codec.hpp"
#include "ecohmem/trace/trace_reader.hpp"

namespace ecohmem::check {

namespace {

Expected<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return unexpected("cannot open: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Leniently loads the footer index of a v3 trace so trace-v3-index can
/// re-check the raw values. Returns nullopt for v1/v2 traces, unreadable
/// files, or undecodable headers (all of which trace-load reports); only
/// a structurally unreadable *index* sets `index_error` — the caller
/// turns that into a diagnostic once it knows whether a salvage read
/// recovered the trace (which decides the severity).
std::optional<TraceIndexView> load_trace_index(const std::string& path,
                                               std::string& index_error) {
  const auto bytes = read_file(path);
  if (!bytes) return std::nullopt;
  const auto* data = reinterpret_cast<const unsigned char*>(bytes->data());
  trace::codec::ByteReader src(data, bytes->size(), 0);
  const auto header = trace::codec::decode_header(src);
  if (!header || header->version != trace::codec::kVersionIndexed) return std::nullopt;
  const auto index = trace::codec::decode_index(data, bytes->size());
  if (!index) {
    index_error = index.error();
    return std::nullopt;
  }
  TraceIndexView view;
  view.events_offset = header->events_offset;
  view.footer_offset = index->footer_offset;
  view.file_size = index->file_size;
  view.header_event_count = header->event_count;
  view.entries.reserve(index->entries.size());
  for (std::size_t i = 0; i < index->entries.size(); ++i) {
    const auto& e = index->entries[i];
    TraceIndexView::Entry v;
    v.offset = e.offset;
    v.count = e.count & trace::codec::kBlockCountMask;
    v.first_time = e.first_time;
    v.compressed = (e.count & trace::codec::kBlockCompressedFlag) != 0;
    // Peek the block body (lenient: damaged entries get a reason, not a
    // throw) so trace-block-compression can cross-check the flag and the
    // body's own declared count against the index.
    const std::uint64_t end =
        i + 1 < index->entries.size() ? index->entries[i + 1].offset : index->footer_offset;
    if (e.offset < end && end <= bytes->size()) {
      v.body_looks_compressed = data[e.offset] == trace::codec::kCompressedBlockMagic;
      if (v.compressed) {
        const auto n = trace::codec::peek_compressed_block_count(
            data + e.offset, static_cast<std::size_t>(end - e.offset), e.offset);
        if (n) {
          v.body_count = *n;
          v.body_count_ok = true;
        } else {
          v.body_error = n.error();
        }
      }
    } else if (v.compressed) {
      v.body_error = "block span lies outside the event section";
    }
    view.entries.push_back(std::move(v));
  }
  return view;
}

/// Builds a module table naming every module a BOM report mentions, so a
/// report can be structurally linted without the trace it was captured
/// against. Text sizes are unknown (0), which disables bounds checks but
/// keeps frame parsing exact.
bom::ModuleTable synthesize_modules(std::string_view report_text) {
  bom::ModuleTable modules;
  std::unordered_set<std::string> seen;
  std::size_t start = 0;
  while (start <= report_text.size()) {
    const std::size_t end = report_text.find('\n', start);
    std::string_view line = report_text.substr(
        start, end == std::string_view::npos ? std::string_view::npos : end - start);
    start = end == std::string_view::npos ? report_text.size() + 1 : end + 1;

    line = strings::trim(line);
    if (line.empty() || line.front() == '#') continue;
    if (const std::size_t at = line.rfind(" @ "); at != std::string_view::npos) {
      line = line.substr(0, at);
    }
    for (const auto& frame : strings::split(line, bom::kFrameSeparator)) {
      const std::size_t bang = frame.find("!0x");
      if (bang == std::string::npos) continue;
      std::string name = frame.substr(0, bang);
      if (!name.empty() && seen.insert(name).second) {
        modules.add_module(std::move(name), /*text_size=*/0);
      }
    }
  }
  return modules;
}

}  // namespace

const std::vector<std::string_view>& pseudo_rule_ids() {
  static const std::vector<std::string_view> ids = {
      "trace-load", "trace-index-load", "sites-load",
      "report-load", "config-load",     "online-load",
      "model-load",  "migration-log-load"};
  return ids;
}

Expected<LintResult> lint_files(const LintInputs& inputs, const CheckOptions& options) {
  return lint_files(RuleRegistry::builtin(), inputs, options);
}

Expected<LintResult> lint_files(const RuleRegistry& registry, const LintInputs& inputs,
                                const CheckOptions& options) {
  if (inputs.trace_path.empty() && inputs.sites_path.empty() && inputs.report_path.empty() &&
      inputs.config_path.empty() && inputs.online_path.empty() && inputs.model_path.empty() &&
      inputs.migration_log_path.empty()) {
    return unexpected(
        "nothing to lint: provide --trace, --sites, --report, --config, --online-policy, "
        "--model and/or --migration-log");
  }

  std::vector<Diagnostic> load_diags;
  CheckContext ctx;
  ctx.min_salvage_coverage = options.min_salvage_coverage;

  // The loaded artifacts outlive the rule run.
  std::optional<trace::TraceBundle> bundle;
  std::optional<trace::SalvageManifest> salvage_manifest;
  std::optional<analyzer::AnalysisResult> analysis;
  std::optional<SiteCsv> sites;
  std::optional<flexmalloc::ParsedReport> report;
  std::optional<advisor::AdvisorConfig> config;
  std::optional<Config> online;
  std::optional<learn::Model> model;
  std::optional<MigrationLog> migration_log;
  std::optional<bom::ModuleTable> synthetic_modules;
  std::optional<TraceIndexView> trace_index;

  if (!inputs.trace_path.empty()) {
    ctx.trace_name = inputs.trace_path;
    // The raw v3 index is loaded independently of the strict reader: a
    // broken index fails load_trace below, and trace-v3-index exists to
    // say exactly how it is broken.
    std::string index_error;
    trace_index = load_trace_index(inputs.trace_path, index_error);
    if (trace_index) ctx.trace_index = &*trace_index;
    auto loaded = trace::load_trace(inputs.trace_path);
    if (!loaded) {
      // Strict load failed: fall back to a salvage-mode read. A trace
      // with recoverable blocks lints in degraded form — the failure
      // becomes a warning, and trace-salvage-coverage gates how much
      // data may be missing (docs/robustness.md).
      const std::string strict_error = loaded.error();
      trace::TraceOpenOptions salvage_opts;
      salvage_opts.salvage = true;
      auto reader = trace::TraceReader::open(inputs.trace_path, salvage_opts);
      if (reader) {
        auto recovered = reader->read_all();
        if (recovered) {
          salvage_manifest.emplace(reader->manifest());
          ctx.salvage = &*salvage_manifest;
          load_diags.push_back(warning("trace-load", inputs.trace_path,
                                       "strict load failed (" + strict_error + "); " +
                                           salvage_manifest->summary()));
          loaded = std::move(*recovered);
        }
      }
    }
    if (!index_error.empty()) {
      // An unreadable footer index is fatal for trace-v3-index either
      // way, but once a salvage read recovered the events it is degraded
      // data, not a lint failure — trace-salvage-coverage owns the gating.
      const std::string message = "v3 footer index is structurally unreadable (" +
                                  index_error + "); trace-v3-index skipped";
      load_diags.push_back(ctx.salvage != nullptr
                               ? warning("trace-index-load", inputs.trace_path, message)
                               : error("trace-index-load", inputs.trace_path, message));
    }
    if (loaded) {
      bundle.emplace(std::move(*loaded));
      ctx.bundle = &*bundle;
      // Derive the analyzer view. A malformed trace fails the replay;
      // the trace-* rules report the specifics, so this is only noted.
      analyzer::AnalyzerOptions aopt;
      aopt.coverage = bundle->coverage;
      auto derived = analyzer::analyze(bundle->trace, aopt);
      if (derived) {
        analysis.emplace(std::move(*derived));
        ctx.analysis = &*analysis;
      } else {
        load_diags.push_back(info("trace-load", inputs.trace_path,
                                  "analyzer replay failed (" + derived.error() +
                                      "); analyzer-level rules skipped"));
      }
    } else {
      load_diags.push_back(error("trace-load", inputs.trace_path, loaded.error()));
    }
  }

  if (!inputs.config_path.empty()) {
    ctx.config_name = inputs.config_path;
    auto file = Config::load(inputs.config_path);
    if (!file) {
      load_diags.push_back(error("config-load", inputs.config_path, file.error()));
    } else {
      auto parsed = advisor::AdvisorConfig::from_config(*file);
      if (!parsed) {
        load_diags.push_back(error("config-load", inputs.config_path, parsed.error()));
      } else {
        config.emplace(std::move(*parsed));
        ctx.config = &*config;
      }
    }
  }

  if (!inputs.online_path.empty()) {
    ctx.online_name = inputs.online_path;
    auto file = Config::load(inputs.online_path);
    if (!file) {
      load_diags.push_back(error("online-load", inputs.online_path, file.error()));
    } else {
      // Kept as the raw INI: the online-* rules re-parse each key so one
      // bad value does not hide the others (unlike the strict loader).
      online.emplace(std::move(*file));
      ctx.online = &*online;
    }
  }

  if (!inputs.model_path.empty()) {
    ctx.model_name = inputs.model_path;
    // The strict loader mirrors the trace loaders (absolute byte offsets,
    // checksum); its message is the diagnostic.
    auto loaded = learn::load_model(inputs.model_path);
    if (loaded) {
      model.emplace(std::move(*loaded));
      ctx.model = &*model;
    } else {
      load_diags.push_back(error("model-load", inputs.model_path, loaded.error()));
    }
  }

  if (!inputs.migration_log_path.empty()) {
    ctx.migration_log_name = inputs.migration_log_path;
    auto loaded = load_migration_log(inputs.migration_log_path);
    if (loaded) {
      migration_log.emplace(std::move(*loaded));
      ctx.migration_log = &*migration_log;
    } else {
      load_diags.push_back(
          error("migration-log-load", inputs.migration_log_path, loaded.error()));
    }
  }

  if (!inputs.sites_path.empty()) {
    ctx.sites_name = inputs.sites_path;
    auto loaded = load_site_csv(inputs.sites_path);
    if (loaded) {
      sites.emplace(std::move(*loaded));
      ctx.sites = &*sites;
    } else {
      load_diags.push_back(error("sites-load", inputs.sites_path, loaded.error()));
    }
  }

  if (!inputs.report_path.empty()) {
    ctx.report_name = inputs.report_path;
    auto text = read_file(inputs.report_path);
    if (!text) {
      load_diags.push_back(error("report-load", inputs.report_path, text.error()));
    } else {
      const bom::ModuleTable* modules = nullptr;
      if (ctx.bundle != nullptr) {
        modules = &ctx.bundle->modules;
      } else {
        synthetic_modules.emplace(synthesize_modules(*text));
        modules = &*synthetic_modules;
        load_diags.push_back(info("report-load", inputs.report_path,
                                  "no trace given: module identities taken from the report "
                                  "itself; frame-level drift checks skipped"));
      }
      auto parsed = flexmalloc::parse_report(*text, *modules);
      if (parsed) {
        report.emplace(std::move(*parsed));
        ctx.report = &*report;
      } else {
        load_diags.push_back(error("report-load", inputs.report_path, parsed.error()));
      }
    }
  }

  RunResult run = registry.run_all(ctx, options);

  // --disable applies to the loader pseudo-rules too: a CI setup that
  // knowingly lints salvaged traces can silence trace-load without also
  // losing the real rules.
  if (!options.disabled_rules.empty()) {
    std::erase_if(load_diags, [&options](const Diagnostic& d) {
      return std::find(options.disabled_rules.begin(), options.disabled_rules.end(), d.rule) !=
             options.disabled_rules.end();
    });
  }

  LintResult result;
  result.diagnostics = std::move(load_diags);
  result.diagnostics.insert(result.diagnostics.end(),
                            std::make_move_iterator(run.diagnostics.begin()),
                            std::make_move_iterator(run.diagnostics.end()));
  result.rules_run = std::move(run.rules_run);
  result.rules_skipped = std::move(run.rules_skipped);
  return result;
}

}  // namespace ecohmem::check
